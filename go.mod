module prognosticator

go 1.22

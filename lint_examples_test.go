package prognosticator_test

import (
	"os"
	"strings"
	"testing"

	prog "prognosticator"
	"prognosticator/internal/lint"
	"prognosticator/internal/workload/rubis"
	"prognosticator/internal/workload/tpcc"
)

// Every shipped procedure — the testdata workload and the TPC-C/RUBiS
// benchmarks driven by the examples — must be lint-clean: no finding of
// warning severity or above. Info findings (pivot-key classification) are
// expected for the dependent transactions.
func TestShippedProceduresLintClean(t *testing.T) {
	cases := []struct {
		name   string
		schema *prog.Schema
		progs  []*prog.Program
	}{
		{"bank", bankTestSchema(), loadBank(t)},
		{"tpcc", tpcc.Schema(), tpcc.Programs(tpcc.DefaultConfig(10))},
		{"rubis", rubis.Schema(), rubis.Programs(rubis.Config{Users: 200, Items: 200})},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			linter := prog.NewLinter(c.schema)
			for _, p := range c.progs {
				for _, f := range linter.Run(p) {
					if f.Severity >= prog.LintWarning {
						t.Errorf("%s", f)
					} else {
						t.Logf("info: %s", f)
					}
				}
			}
		})
	}
}

// The dependent bank transactions must be classified as such: the pivot-key
// pass flags exactly transfer (guard on a stored balance) and openAccount
// (insert key allocated from a stored counter).
func TestBankPivotKeyClassification(t *testing.T) {
	linter := prog.NewLinter(bankTestSchema())
	flagged := map[string]bool{}
	for _, p := range loadBank(t) {
		for _, f := range linter.Run(p) {
			if f.Pass == "pivot-key" {
				flagged[p.Name] = true
			}
		}
	}
	for _, name := range []string{"transfer", "openAccount"} {
		if !flagged[name] {
			t.Errorf("%s not flagged as dependent", name)
		}
	}
	for _, name := range []string{"deposit", "statement"} {
		if flagged[name] {
			t.Errorf("%s flagged as dependent; its key-set is input-only", name)
		}
	}
}

// lintbad.txn is the deliberately defective fixture; pin its findings so the
// CLI output stays stable (golden findings, one per defect).
func TestLintBadFixtureGoldenFindings(t *testing.T) {
	src, err := os.ReadFile("testdata/lintbad.txn")
	if err != nil {
		t.Fatal(err)
	}
	progs, err := prog.ParseAll(string(src))
	if err != nil {
		t.Fatal(err)
	}
	linter := prog.NewLinter(prog.InferLintSchema(progs...))
	var got []string
	for _, p := range progs {
		for _, f := range linter.Run(p) {
			got = append(got, f.String())
		}
	}
	want := []string{
		`badBranch:9:5: warning: [dead-branch] condition is always false over the declared input domains: then-branch is dead`,
		`badBranch:12:5: error: [use-before-assign] local "total" may be used before assignment (not defined on every path reaching here)`,
		`badLoop:19:5: error: [loop-bound] loop "i" may run up to 500 iterations, exceeding the symbolic executor's unroll budget (64): symexec.ErrBudget risk`,
		`badSchema:params: warning: [param-domain] parameter "spare" is never used`,
		`badSchema:35:5: error: [schema] table "PAIR" expects 2 key parts, got 1`,
		`deadLocal:43:5: warning: [dead-branch] condition is always false over the declared input domains: then-branch is dead`,
		`deadInLoop:54:9: warning: [dead-branch] condition is always false over the declared input domains: then-branch is dead`,
		`deadLoopLocal:65:5: warning: [loop-bound] loop "i" never executes: upper bound ≤ lower bound over all declared inputs`,
		`directDT:76:5: info: [key-determinism] GET COUNTER: key is derivable from the transaction inputs alone (direct); predicted client-side without pivot reads`,
		`directDT:76:5: info: [pivot-key] GET result "c" influences the identity of later accesses (dependent transaction), but the traversal is pivot-free: the direct part of the key-set is predicted client-side (2 of 3 accesses direct)`,
		`directDT:78:5: info: [key-determinism] PUT ITEMS: key part(s) 0 depend on store state via "id" (pivot-dependent)`,
		`directDT:80:5: info: [key-determinism] PUT COUNTER: key is derivable from the transaction inputs alone (direct); predicted client-side without pivot reads`,
		`deadRelational:89:5: warning: [dead-branch] condition is always false over the declared input domains: then-branch is dead`,
		// relLoopBound is pinned by absence: the zone keeps the clamped bound
		// within the unroll budget, so it must contribute no findings at all.
		`eqKeyParts:117:5: info: [key-determinism] GET COUNTER: key is derivable from the transaction inputs alone (direct); predicted client-side without pivot reads`,
		`eqKeyParts:117:5: info: [pivot-key] GET result "c" influences the identity of later accesses (dependent transaction), but the traversal is pivot-free: the direct part of the key-set is predicted client-side (3 of 4 accesses direct)`,
		`eqKeyParts:118:5: info: [key-determinism] PUT AUDIT: key is derivable from the transaction inputs alone (direct); predicted client-side without pivot reads`,
		`eqKeyParts:120:5: info: [key-determinism] PUT ITEMS: key part(s) 0 depend on store state via "id" (pivot-dependent)`,
		`eqKeyParts:122:5: info: [key-determinism] PUT COUNTER: key is derivable from the transaction inputs alone (direct); predicted client-side without pivot reads`,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding %d:\n got %s\nwant %s", i, got[i], want[i])
		}
	}
}

// Every shipped profile must survive the soundness cross-validation against
// the concrete interpreter (the TPC-C sweep is capped: newOrder's list
// domains make exhaustive sampling expensive for a unit test).
func TestShippedProfilesSound(t *testing.T) {
	reg, err := prog.NewRegistry(bankTestSchema(), loadBank(t)...)
	if err != nil {
		t.Fatal(err)
	}
	for name, p := range reg.Programs {
		rep, err := prog.CheckProfileSoundness(p, reg.Profiles[name], lint.SoundnessOptions{Samples: 8})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !rep.Sound() {
			t.Errorf("%s profile unsound: over=%v under=%v errs=%v",
				name, rep.Over, rep.Under, rep.Errors)
		}
	}
}

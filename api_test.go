package prognosticator_test

import (
	"testing"

	prog "prognosticator"
)

// The facade test exercises the public API end to end the way an external
// adopter would: declare a schema, author a program, analyze, execute.

func facadeSchema() *prog.Schema {
	return prog.NewSchema(prog.TableSpec{Name: "KV", KeyArity: 1})
}

func facadeProgram() *prog.Program {
	return &prog.Program{
		Name: "bump",
		Params: []prog.Param{
			prog.IntParam("k", 0, 99),
			prog.IntParam("by", 1, 10),
		},
		Body: []prog.Stmt{
			prog.GetS("cur", "KV", prog.P("k")),
			prog.SetF("cur", "n", prog.Add(prog.Fld(prog.L("cur"), "n"), prog.P("by"))),
			prog.PutS("KV", prog.KeyExpr(prog.P("k")), prog.L("cur")),
			prog.EmitS("n", prog.Fld(prog.L("cur"), "n")),
		},
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	reg, err := prog.NewRegistry(facadeSchema(), facadeProgram())
	if err != nil {
		t.Fatal(err)
	}
	if got, err := reg.Class("bump"); err != nil || got != prog.ClassIT {
		t.Fatalf("class = %v, %v", got, err)
	}
	st := prog.NewStore()
	st.Put(0, prog.NewKey("KV", prog.Int(5)),
		prog.RecV(map[string]prog.Value{"n": prog.Int(10)}))
	eng := prog.NewEngine(reg, st, prog.EngineConfig{Workers: 2})
	res, err := eng.ExecuteBatch([]prog.Request{
		{Seq: 1, TxName: "bump", Inputs: map[string]prog.Value{
			"k": prog.Int(5), "by": prog.Int(3)}},
		{Seq: 2, TxName: "bump", Inputs: map[string]prog.Value{
			"k": prog.Int(5), "by": prog.Int(4)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborts != 0 {
		t.Fatalf("aborts = %d", res.Aborts)
	}
	if got := res.Outcomes[1].Emitted["n"].MustInt(); got != 17 {
		t.Fatalf("second bump emitted %d, want 17", got)
	}
	rec, ok := st.Get(st.Epoch(), prog.NewKey("KV", prog.Int(5)))
	if !ok {
		t.Fatal("key missing")
	}
	if n, _ := rec.Field("n"); n.MustInt() != 17 {
		t.Fatalf("final n = %v", n)
	}
}

func TestFacadeAnalysisAndProfileCodec(t *testing.T) {
	p, err := prog.AnalyzeOptimized(facadeProgram())
	if err != nil {
		t.Fatal(err)
	}
	data, err := prog.MarshalProfile(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := prog.UnmarshalProfile(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.TxName != "bump" || back.Class() != prog.ClassIT {
		t.Fatalf("round-tripped profile: %s %v", back.TxName, back.Class())
	}
	ks, err := back.Instantiate(map[string]prog.Value{
		"k": prog.Int(9), "by": prog.Int(1)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks.Writes) != 1 || ks.Writes[0].String() != "KV/i9" {
		t.Fatalf("writes = %v", ks.Writes)
	}
}

func TestFacadeBaselines(t *testing.T) {
	reg, err := prog.NewRegistry(facadeSchema(), facadeProgram())
	if err != nil {
		t.Fatal(err)
	}
	st := prog.NewStore()
	seq := prog.NewSEQ(reg, st)
	if _, err := seq.ExecuteBatch([]prog.Request{
		{Seq: 1, TxName: "bump", Inputs: map[string]prog.Value{
			"k": prog.Int(1), "by": prog.Int(2)}},
	}); err != nil {
		t.Fatal(err)
	}
	st2 := prog.NewStore()
	nodo := prog.NewNODO(reg, st2, 2)
	if nodo.Name() != "NODO" {
		t.Fatal("NODO name")
	}
	st3 := prog.NewStore()
	calvin := prog.NewCalvin(reg, st3, 2, 5, "Calvin-50")
	if calvin.Name() != "Calvin-50" {
		t.Fatal("Calvin name")
	}
}

func TestFacadeSourceFormatting(t *testing.T) {
	out := prog.FormatSource(facadeProgram())
	if len(out) == 0 {
		t.Fatal("empty formatted source")
	}
}

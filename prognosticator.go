// Package prognosticator is the public API of the Prognosticator
// deterministic database (Issa et al., "Exploiting Symbolic Execution to
// Accelerate Deterministic Databases", ICDCS 2020).
//
// The library is organized as:
//
//   - a stored-procedure language in which transactions are written
//     (re-exported from internal/lang): programs declare typed, bounded
//     parameters and access a table/key store through GET/PUT/DEL;
//   - an offline symbolic-execution analysis (internal/symexec) that
//     computes each transaction's profile — a tree mapping every possible
//     execution path to its read/write-set, with pivot (store-dependent)
//     keys identified;
//   - a deterministic multi-threaded execution engine (internal/engine)
//     that uses instantiated profiles to schedule an ordered batch through
//     a per-key lock table with maximum parallelism; plus the Calvin, NODO
//     and SEQ baselines of the paper's evaluation;
//   - a replication substrate (Raft consensus + batch sequencer + replica
//     apply loop) for running multi-replica deployments in-process.
//
// See examples/quickstart for the end-to-end flow.
package prognosticator

import (
	"prognosticator/internal/baselines"
	"prognosticator/internal/engine"
	"prognosticator/internal/lang"
	"prognosticator/internal/lint"
	"prognosticator/internal/profile"
	"prognosticator/internal/replica"
	"prognosticator/internal/store"
	"prognosticator/internal/symexec"
	"prognosticator/internal/value"
)

// Value system.
type (
	// Value is a dynamically typed database value.
	Value = value.Value
	// Key identifies one data item: table plus key tuple.
	Key = value.Key
	// Kind is the dynamic type of a Value.
	Kind = value.Kind
)

// Value constructors.
var (
	Int    = value.Int
	Str    = value.Str
	BoolV  = value.Bool
	ListV  = value.List
	RecV   = value.Record
	NewKey = value.NewKey
)

// Transaction language.
type (
	// Program is a stored procedure.
	Program = lang.Program
	// Param declares a transaction input with its domain.
	Param = lang.Param
	// Schema lists the tables a program may address.
	Schema = lang.Schema
	// TableSpec declares one table.
	TableSpec = lang.TableSpec
	// Stmt and Expr are program syntax nodes.
	Stmt = lang.Stmt
	Expr = lang.Expr
)

// Program construction helpers (see internal/lang for the full builder).
var (
	NewSchema = lang.NewSchema
	IntParam  = lang.IntParam
	StrParam  = lang.StrParam
	ListParam = lang.ListParam

	C, Cs, Cb = lang.C, lang.Cs, lang.Cb
	P, L      = lang.P, lang.L
	Add, Sub  = lang.Add, lang.Sub
	Mul, Div  = lang.Mul, lang.Div
	Mod       = lang.Mod
	Eq, Ne    = lang.Eq, lang.Ne
	Lt, Le    = lang.Lt, lang.Le
	Gt, Ge    = lang.Gt, lang.Ge
	And, Or   = lang.And, lang.Or
	Neg       = lang.Neg
	Fld, Idx  = lang.Fld, lang.Idx
	F, RecE   = lang.F, lang.RecE

	// Parse / ParseAll / MustParse read transactions from source text
	// (see internal/lang/parse.go for the grammar).
	Parse     = lang.Parse
	ParseAll  = lang.ParseAll
	MustParse = lang.MustParse

	Set, SetF    = lang.Set, lang.SetF
	GetS, PutS   = lang.GetS, lang.PutS
	DelS         = lang.DelS
	IfS, IfElse  = lang.IfS, lang.IfElse
	ForS, EmitS  = lang.ForS, lang.EmitS
	KeyExpr      = lang.Key
	FormatSource = lang.Format
)

// Symbolic execution and profiles.
type (
	// Profile is a transaction's offline analysis result.
	Profile = profile.Profile
	// KeySet is a profile instantiated with concrete inputs.
	KeySet = profile.KeySet
	// Class is the ROT/IT/DT taxonomy.
	Class = profile.Class
	// AnalysisOptions configures the symbolic execution.
	AnalysisOptions = symexec.Options
	// DirectMemo caches client-side predicted key-sets per (tx, inputs);
	// wire one into EngineConfig.DirectMemo and, via
	// Registry.DirectPrewarmer, into Dispatcher.SetPrewarm.
	DirectMemo = profile.DirectMemo
)

// Transaction classes.
const (
	ClassROT = profile.ClassROT
	ClassIT  = profile.ClassIT
	ClassDT  = profile.ClassDT
)

// Analysis entry points.
var (
	// Analyze runs the symbolic execution with explicit options.
	Analyze = symexec.Analyze
	// AnalyzeOptimized runs it with taint + pruning on (production mode).
	AnalyzeOptimized = symexec.AnalyzeOptimized
	// MarshalProfile / UnmarshalProfile serialize profiles.
	MarshalProfile   = profile.Marshal
	UnmarshalProfile = profile.Unmarshal
	// NewDirectMemo returns a bounded LRU for client-side predicted
	// key-sets (counters may be nil).
	NewDirectMemo = profile.NewDirectMemo
)

// Storage.
type (
	// Store is the multi-version key/value store.
	Store = store.Store
)

// NewStore returns an empty store at epoch 0.
var NewStore = store.New

// Execution.
type (
	// Engine is the Prognosticator deterministic executor.
	Engine = engine.Engine
	// EngineConfig selects the engine variant ({MQ,1Q} x {SF,MF} x {SE,R}).
	EngineConfig = engine.Config
	// Registry is the transaction catalog (programs + profiles).
	Registry = engine.Registry
	// Request is one ordered transaction invocation.
	Request = engine.Request
	// BatchResult reports a batch's outcomes.
	BatchResult = engine.BatchResult
	// TxOutcome reports one transaction's fate.
	TxOutcome = engine.TxOutcome
	// Executor is implemented by the engine and all baselines.
	Executor = engine.Executor
)

// Engine construction.
var (
	NewRegistry     = engine.NewRegistry
	NewRegistryWith = engine.NewRegistryWith
	NewEngine       = engine.New
)

// RegistryOptions configures registration (strict lint, soundness checks).
type RegistryOptions = engine.RegistryOptions

// Static analysis (see cmd/prognolint for the command-line front end).
type (
	// Linter runs the static-analysis passes over programs.
	Linter = lint.Linter
	// LintFinding is one positioned diagnostic.
	LintFinding = lint.Finding
	// LintSeverity grades findings (info/warning/error).
	LintSeverity = lint.Severity
	// SoundnessReport is a profile cross-validation result.
	SoundnessReport = lint.SoundnessReport
)

// Lint severities.
const (
	LintInfo    = lint.SevInfo
	LintWarning = lint.SevWarning
	LintError   = lint.SevError
)

// Static-analysis entry points.
var (
	// NewLinter builds a linter with the default pass pipeline.
	NewLinter = lint.New
	// InferLintSchema derives a schema from programs' table accesses.
	InferLintSchema = lint.InferSchema
	// CheckProfileSoundness cross-validates a profile against the concrete
	// interpreter on sampled inputs.
	CheckProfileSoundness = lint.CheckSoundness
)

// Engine variant knobs.
const (
	PrepareSE      = engine.PrepareSE
	PrepareRecon   = engine.PrepareRecon
	QueueMulti     = engine.QueueMulti
	QueueSingle    = engine.QueueSingle
	FailSequential = engine.FailSequential
	FailReenqueue  = engine.FailReenqueue
)

// Baselines of the paper's evaluation.
var (
	// NewCalvin builds the Calvin baseline (client reconnaissance N batch
	// epochs ahead).
	NewCalvin = baselines.NewCalvin
	// NewNODO builds the table-granularity baseline.
	NewNODO = baselines.NewNODO
	// NewSEQ builds the single-threaded baseline.
	NewSEQ = baselines.NewSEQ
)

// Replication.
type (
	// Cluster is an in-process replicated deployment.
	Cluster = replica.Cluster
	// ClusterConfig configures NewCluster.
	ClusterConfig = replica.ClusterConfig
	// Replica applies ordered batches deterministically.
	Replica = replica.Replica
)

// NewCluster assembles and starts an in-process cluster.
var NewCluster = replica.NewCluster

package prognosticator_test

import (
	"os"
	"testing"

	prog "prognosticator"
)

// The testdata workload exercises the full source-to-execution pipeline:
// parse → validate → analyze → classify → execute deterministically.

func loadBank(t *testing.T) []*prog.Program {
	t.Helper()
	src, err := os.ReadFile("testdata/bank.txn")
	if err != nil {
		t.Fatal(err)
	}
	progs, err := prog.ParseAll(string(src))
	if err != nil {
		t.Fatal(err)
	}
	return progs
}

func bankTestSchema() *prog.Schema {
	return prog.NewSchema(
		prog.TableSpec{Name: "ACCOUNTS", KeyArity: 1},
		prog.TableSpec{Name: "COUNTERS", KeyArity: 1},
	)
}

func TestBankWorkloadParsesAndClassifies(t *testing.T) {
	progs := loadBank(t)
	if len(progs) != 4 {
		t.Fatalf("parsed %d transactions, want 4", len(progs))
	}
	reg, err := prog.NewRegistry(bankTestSchema(), progs...)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]prog.Class{
		"transfer":    prog.ClassDT, // guard on stored balance
		"deposit":     prog.ClassIT,
		"openAccount": prog.ClassDT, // counter pivot
		"statement":   prog.ClassROT,
	}
	for tx, wantClass := range want {
		got, err := reg.Class(tx)
		if err != nil {
			t.Fatal(err)
		}
		if got != wantClass {
			t.Errorf("class(%s) = %v, want %v", tx, got, wantClass)
		}
	}
}

func TestBankWorkloadExecutes(t *testing.T) {
	progs := loadBank(t)
	reg, err := prog.NewRegistry(bankTestSchema(), progs...)
	if err != nil {
		t.Fatal(err)
	}
	st := prog.NewStore()
	for i := int64(0); i < 20; i++ {
		st.Put(0, prog.NewKey("ACCOUNTS", prog.Int(i)),
			prog.RecV(map[string]prog.Value{"bal": prog.Int(100)}))
	}
	st.Put(0, prog.NewKey("COUNTERS", prog.Str("accounts")),
		prog.RecV(map[string]prog.Value{"next": prog.Int(20)}))

	eng := prog.NewEngine(reg, st, prog.EngineConfig{Workers: 4})
	res, err := eng.ExecuteBatch([]prog.Request{
		{Seq: 1, TxName: "deposit", Inputs: map[string]prog.Value{
			"acct": prog.Int(1), "amount": prog.Int(50)}},
		{Seq: 2, TxName: "transfer", Inputs: map[string]prog.Value{
			"src": prog.Int(1), "dst": prog.Int(2), "amount": prog.Int(120)}},
		{Seq: 3, TxName: "openAccount", Inputs: map[string]prog.Value{
			"initial": prog.Int(7)}},
		{Seq: 4, TxName: "statement", Inputs: map[string]prog.Value{
			"first": prog.Int(0)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The statement (ROT) sees the PRE-batch snapshot: 10 accounts x 100.
	var stmt, open *prog.TxOutcome
	for i := range res.Outcomes {
		switch res.Outcomes[i].TxName {
		case "statement":
			stmt = &res.Outcomes[i]
		case "openAccount":
			open = &res.Outcomes[i]
		}
	}
	if stmt == nil || stmt.Emitted["total"].MustInt() != 1000 {
		t.Fatalf("statement = %+v", stmt)
	}
	if open == nil || open.Emitted["accountId"].MustInt() != 20 {
		t.Fatalf("openAccount = %+v", open)
	}
	// transfer(1->2, 120): deposit made account 1 hold 150, and the
	// transfer is enqueued as a DT AHEAD of the deposit (IT)... DT-first
	// means the transfer executes against bal=100 < 120: no transfer.
	a1, _ := st.Get(st.Epoch(), prog.NewKey("ACCOUNTS", prog.Int(1)))
	a2, _ := st.Get(st.Epoch(), prog.NewKey("ACCOUNTS", prog.Int(2)))
	b1, _ := a1.Field("bal")
	b2, _ := a2.Field("bal")
	if b1.MustInt() != 150 || b2.MustInt() != 100 {
		t.Fatalf("balances after batch: %v / %v (transfer must precede deposit under DT-first ordering)", b1, b2)
	}
	// The new account exists with its initial balance.
	a20, ok := st.Get(st.Epoch(), prog.NewKey("ACCOUNTS", prog.Int(20)))
	if !ok {
		t.Fatal("opened account missing")
	}
	if f, _ := a20.Field("bal"); f.MustInt() != 7 {
		t.Fatalf("new account bal = %v", f)
	}
}

package flowctl

import (
	"prognosticator/internal/vclock"

	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestBackoffJitterDeterministic pins the exact jitter sequence for a fixed
// seed: the backoff is a pure function of (config, seed), so chaos and soak
// runs that log a seed are reproducible down to individual sleep durations.
func TestBackoffJitterDeterministic(t *testing.T) {
	want := []time.Duration{686514, 1066000, 3208187, 4835274, 8350547, 22131092, 58012068, 44302267}
	b := NewBackoff(BackoffConfig{}, 42)
	for i, w := range want {
		if got := b.Next(); got != w {
			t.Fatalf("seed 42 step %d: got %v want %v", i, got, w)
		}
	}
	// Same seed replays the identical sequence; a different seed diverges.
	b2 := NewBackoff(BackoffConfig{}, 42)
	for i, w := range want {
		if got := b2.Next(); got != w {
			t.Fatalf("replay step %d: got %v want %v", i, got, w)
		}
	}
	b3 := NewBackoff(BackoffConfig{}, 43)
	same := true
	for _, w := range want {
		if b3.Next() != w {
			same = false
		}
	}
	if same {
		t.Fatal("seed 43 reproduced seed 42's jitter sequence")
	}
}

func TestBackoffGrowthAndCap(t *testing.T) {
	cfg := BackoffConfig{Base: time.Millisecond, Cap: 8 * time.Millisecond, Multiplier: 2, Jitter: 0.5}
	b := NewBackoff(cfg, 7)
	prevMax := time.Duration(0)
	for i := 0; i < 20; i++ {
		d := b.Next()
		// With jitter 0.5 every step lies in [step/2, step], step <= Cap.
		if d > cfg.Cap {
			t.Fatalf("step %d: %v exceeds cap %v", i, d, cfg.Cap)
		}
		if d < cfg.Base/2 {
			t.Fatalf("step %d: %v below base/2", i, d)
		}
		if d > prevMax {
			prevMax = d
		}
	}
	if prevMax < cfg.Cap/2 {
		t.Fatalf("never reached capped range: max %v", prevMax)
	}
	if got := b.Attempts(); got != 20 {
		t.Fatalf("Attempts = %d, want 20", got)
	}
	b.Reset()
	if got := b.Attempts(); got != 0 {
		t.Fatalf("Attempts after Reset = %d, want 0", got)
	}
	if d := b.Next(); d > cfg.Base {
		t.Fatalf("first step after Reset %v exceeds base %v", d, cfg.Base)
	}
}

func TestBackoffSleepDeadline(t *testing.T) {
	b := NewBackoff(BackoffConfig{Base: time.Hour, Cap: time.Hour}, 1)
	// Expired deadline: immediate typed error, no sleep.
	start := time.Now()
	if err := b.Sleep(At(time.Now().Add(-time.Second))); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("Sleep(expired) = %v, want ErrDeadlineExceeded", err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("Sleep(expired) actually slept")
	}
	// Live deadline truncates a huge backoff step to the remaining budget.
	start = time.Now()
	if err := b.Sleep(After(10 * time.Millisecond)); err != nil {
		t.Fatalf("Sleep(live) = %v", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("Sleep not truncated to deadline: slept %v", el)
	}
}

func TestDeadlineSemantics(t *testing.T) {
	var zero Deadline
	if !zero.IsZero() || zero.Expired() || zero.Check() != nil {
		t.Fatal("zero Deadline must never expire")
	}
	if zero.Remaining() <= 0 {
		t.Fatal("zero Deadline must report large Remaining")
	}
	if !None().IsZero() {
		t.Fatal("None() not zero")
	}
	past := At(time.Now().Add(-time.Minute))
	if !past.Expired() || !errors.Is(past.Check(), ErrDeadlineExceeded) || past.Remaining() > 0 {
		t.Fatal("past deadline not expired")
	}
	fut := After(time.Hour)
	if fut.Expired() || fut.Check() != nil || fut.Time().IsZero() {
		t.Fatal("future deadline misreported")
	}
	// Bound: window earlier than deadline wins; deadline earlier than window wins.
	if b := fut.Bound(time.Millisecond); b.Remaining() > time.Second {
		t.Fatalf("Bound(1ms) kept far deadline: %v", b.Remaining())
	}
	near := After(time.Millisecond)
	if b := near.Bound(time.Hour); b.Remaining() > time.Second {
		t.Fatalf("Bound(1h) extended near deadline: %v", b.Remaining())
	}
	if b := zero.Bound(time.Minute); b.IsZero() || b.Remaining() > 2*time.Minute {
		t.Fatal("Bound on zero deadline must produce the window")
	}
}

func TestNilControllerPermissive(t *testing.T) {
	var c *Controller
	release, err := c.Admit()
	if err != nil {
		t.Fatalf("nil Admit = %v", err)
	}
	release()
	if err := c.AllowRetry(); err != nil {
		t.Fatalf("nil AllowRetry = %v", err)
	}
	c.RecordSuccess()
	c.RecordRouteFailure()
	c.RecordRouteSuccess()
	if c.Counters() != nil || c.MaxQueue() != 0 || c.Inflight() != 0 || c.InflightHighWater() != 0 {
		t.Fatal("nil controller accessors not zero")
	}
	if c.RetryBudgetBalance() != -1 || c.BreakerState() != Closed {
		t.Fatal("nil controller budget/breaker not disabled")
	}
	if c.NewBackoff() == nil {
		t.Fatal("nil controller NewBackoff returned nil")
	}
}

func TestZeroConfigUnlimited(t *testing.T) {
	c := NewController(Config{})
	for i := 0; i < 100; i++ {
		if _, err := c.Admit(); err != nil {
			t.Fatalf("zero-config Admit %d = %v", i, err)
		}
		if err := c.AllowRetry(); err != nil {
			t.Fatalf("zero-config AllowRetry %d = %v", i, err)
		}
	}
	if c.BreakerState() != Closed || c.RetryBudgetBalance() != -1 {
		t.Fatal("zero config enabled a limiter")
	}
}

func TestInflightLimit(t *testing.T) {
	c := NewController(Config{MaxInflight: 2})
	r1, err := c.Admit()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Admit()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Admit(); !errors.Is(err, ErrOverload) {
		t.Fatalf("third Admit = %v, want ErrOverload", err)
	}
	if c.Inflight() != 2 || c.InflightHighWater() != 2 {
		t.Fatalf("inflight=%d hw=%d", c.Inflight(), c.InflightHighWater())
	}
	r1()
	r1() // idempotent release must not free a second slot
	if _, err := c.Admit(); err != nil {
		t.Fatalf("Admit after release = %v", err)
	}
	if _, err := c.Admit(); !errors.Is(err, ErrOverload) {
		t.Fatal("double release freed two slots")
	}
	r2()
	snap := c.Counters().Snapshot()
	if snap["admitted"] != 3 || snap["shed-inflight"] != 2 {
		t.Fatalf("counters = %v", snap)
	}
}

func TestRateLimitFakeClock(t *testing.T) {
	sim := vclock.NewSim(1)
	clk := sim.Clock()
	vclock.Hold(clk)
	defer vclock.Release(clk)
	c := NewController(Config{SubmitRate: 10, SubmitBurst: 2, Clock: clk})
	// Burst of 2 admits, third sheds.
	for i := 0; i < 2; i++ {
		rel, err := c.Admit()
		if err != nil {
			t.Fatalf("burst Admit %d = %v", i, err)
		}
		rel()
	}
	if _, err := c.Admit(); !errors.Is(err, ErrOverload) {
		t.Fatalf("over-burst Admit = %v, want ErrOverload", err)
	}
	// 100ms at 10/s refills exactly one token.
	clk.Sleep(100 * time.Millisecond)
	rel, err := c.Admit()
	if err != nil {
		t.Fatalf("post-refill Admit = %v", err)
	}
	rel()
	if _, err := c.Admit(); !errors.Is(err, ErrOverload) {
		t.Fatal("second post-refill Admit admitted")
	}
	// A long idle caps the bucket at burst, not rate*elapsed.
	clk.Sleep(time.Hour)
	for i := 0; i < 2; i++ {
		rel, err := c.Admit()
		if err != nil {
			t.Fatalf("capped-refill Admit %d = %v", i, err)
		}
		rel()
	}
	if _, err := c.Admit(); !errors.Is(err, ErrOverload) {
		t.Fatal("bucket exceeded burst after idle")
	}
	if c.Counters().Snapshot()["shed-rate"] != 3 {
		t.Fatalf("shed-rate = %v", c.Counters().Snapshot())
	}
}

func TestRetryBudget(t *testing.T) {
	c := NewController(Config{RetryBudget: 2, RetryRatio: 0.5})
	if c.RetryBudgetBalance() != 2 {
		t.Fatalf("initial balance %v", c.RetryBudgetBalance())
	}
	if err := c.AllowRetry(); err != nil {
		t.Fatal(err)
	}
	if err := c.AllowRetry(); err != nil {
		t.Fatal(err)
	}
	if err := c.AllowRetry(); !errors.Is(err, ErrRetryBudgetExhausted) {
		t.Fatalf("drained AllowRetry = %v, want ErrRetryBudgetExhausted", err)
	}
	// Two successes deposit 2×0.5 = one retry token.
	c.RecordSuccess()
	c.RecordSuccess()
	if err := c.AllowRetry(); err != nil {
		t.Fatalf("post-deposit AllowRetry = %v", err)
	}
	if err := c.AllowRetry(); !errors.Is(err, ErrRetryBudgetExhausted) {
		t.Fatal("budget refilled past deposits")
	}
	// Deposits cap at the configured budget.
	for i := 0; i < 100; i++ {
		c.RecordSuccess()
	}
	if c.RetryBudgetBalance() != 2 {
		t.Fatalf("balance after 100 deposits = %v, want cap 2", c.RetryBudgetBalance())
	}
	snap := c.Counters().Snapshot()
	if snap["retries"] != 3 || snap["retry-budget-exhausted"] != 2 {
		t.Fatalf("counters = %v", snap)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	sim := vclock.NewSim(1)
	clk := sim.Clock()
	vclock.Hold(clk)
	defer vclock.Release(clk)
	c := NewController(Config{BreakerThreshold: 3, BreakerCooldown: time.Second, Clock: clk})

	// Failures below the threshold keep the breaker closed.
	c.RecordRouteFailure()
	c.RecordRouteFailure()
	if c.BreakerState() != Closed {
		t.Fatal("tripped below threshold")
	}
	if _, err := c.Admit(); err != nil {
		t.Fatalf("closed-breaker Admit = %v", err)
	}
	// Third consecutive failure trips it open; admissions shed.
	c.RecordRouteFailure()
	if c.BreakerState() != Open {
		t.Fatal("did not trip at threshold")
	}
	if _, err := c.Admit(); !errors.Is(err, ErrOverload) || !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open-breaker Admit = %v, want ErrCircuitOpen (wrapping ErrOverload)", err)
	}
	// After the cooldown one half-open probe is admitted, a second sheds.
	clk.Sleep(2 * time.Second)
	rel, err := c.Admit()
	if err != nil {
		t.Fatalf("half-open probe Admit = %v", err)
	}
	rel()
	if c.BreakerState() != HalfOpen {
		t.Fatalf("state after probe admit = %v", c.BreakerState())
	}
	if _, err := c.Admit(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("second half-open probe admitted")
	}
	// A failed probe re-opens; cooldown restarts.
	c.RecordRouteFailure()
	if c.BreakerState() != Open {
		t.Fatal("failed probe did not re-open")
	}
	clk.Sleep(2 * time.Second)
	rel, err = c.Admit()
	if err != nil {
		t.Fatalf("second probe Admit = %v", err)
	}
	rel()
	// A successful probe closes the breaker and resets the failure count.
	c.RecordRouteSuccess()
	if c.BreakerState() != Closed {
		t.Fatal("successful probe did not close")
	}
	c.RecordRouteFailure()
	c.RecordRouteFailure()
	if c.BreakerState() != Closed {
		t.Fatal("failure count not reset after close")
	}
	snap := c.Counters().Snapshot()
	if snap["breaker-trips"] != 2 || snap["shed-breaker"] != 2 {
		t.Fatalf("counters = %v", snap)
	}
	if Closed.String() != "closed" || Open.String() != "open" || HalfOpen.String() != "half-open" {
		t.Fatal("BreakerState.String mismatch")
	}
}

func TestControllerBackoffSeeding(t *testing.T) {
	// Two controllers with the same seed hand out the same family of
	// backoff sequences; distinct instances within one controller differ.
	c1 := NewController(Config{Seed: 99})
	c2 := NewController(Config{Seed: 99})
	a1, b1 := c1.NewBackoff(), c1.NewBackoff()
	a2 := c2.NewBackoff()
	diverged := false
	for i := 0; i < 8; i++ {
		d1 := a1.Next()
		if d1 != a2.Next() {
			t.Fatalf("same-seed controllers diverged at step %d", i)
		}
		if d1 != b1.Next() {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("distinct backoff instances shared one jitter stream")
	}
}

// TestAdmitShedSequenceReplayable is the determinism contract for admission
// control: with the token bucket, breaker, and backoff all running on a
// simulated clock, two same-seed runs of an identical submit script produce
// bit-identical admit/shed sequences — the property chaos soaks rely on to
// replay a failing seed.
func TestAdmitShedSequenceReplayable(t *testing.T) {
	run := func(seed int64) string {
		sim := vclock.NewSim(seed)
		clk := sim.Clock()
		vclock.Hold(clk)
		defer vclock.Release(clk)
		c := NewController(Config{
			MaxInflight:      2,
			SubmitRate:       20,
			SubmitBurst:      3,
			BreakerThreshold: 2,
			BreakerCooldown:  40 * time.Millisecond,
			Seed:             seed,
			Clock:            clk,
		})
		bo := c.NewBackoff()
		var seq []string
		for i := 0; i < 40; i++ {
			rel, err := c.Admit()
			switch {
			case err == nil:
				seq = append(seq, "admit")
				// Route failures on a deterministic pattern to exercise the
				// breaker's open/half-open transitions.
				if vclock.Hash64(uint64(seed), uint64(i))%3 == 0 {
					c.RecordRouteFailure()
				} else {
					c.RecordRouteSuccess()
				}
				rel()
			case errors.Is(err, ErrCircuitOpen):
				seq = append(seq, "shed-breaker")
			default:
				seq = append(seq, "shed")
			}
			clk.Sleep(bo.Next())
		}
		return fmt.Sprintf("%v now=%v", seq, sim.Now().Sub(vclock.NewSim(0).Now()))
	}
	a, b := run(5), run(5)
	if a != b {
		t.Fatalf("same-seed admit/shed sequences differ:\n%s\n%s", a, b)
	}
	shed := false
	for _, w := range []string{"shed", "admit"} {
		if !strings.Contains(a, w) {
			t.Fatalf("scenario never produced %q: %s", w, a)
		}
		shed = true
	}
	if !shed {
		t.Fatal("unreachable")
	}
}

// Package flowctl is the end-to-end flow-control and retry subsystem for the
// submit path: admission control (bounded dispatcher queues, a cluster-wide
// inflight-batch limit, token-bucket rate limiting), deadline propagation (a
// Deadline carried from SubmitBatch through every wait loop so no layer waits
// past the caller's budget), and a retry policy (seeded jittered exponential
// backoff, a per-client retry budget, and a circuit breaker tripping on
// consecutive leader-routing failures).
//
// The paper's speedup only matters if the deterministic pipeline stays up
// under sustained traffic; without bounds, a slow replica or a retry stampede
// turns into unbounded memory growth instead of graceful degradation. The
// design principle is deterministic load shedding with typed errors: a caller
// can always distinguish "shed" (ErrOverload — the request was rejected
// before any proposal, and was certainly not applied) from "lost"
// (ErrDeadlineExceeded / ErrRetryBudgetExhausted after a proposal — the
// outcome is ambiguous and only the idempotency layer makes retry safe).
//
// Determinism contract: admission (Admit) never blocks — it sheds
// immediately — and every wait in the package (Backoff.Sleep, deadline
// waits) goes through the injected vclock.Clock, with jitter drawn from
// vclock.Hash64 over (seed, attempt) rather than a shared rng. Under the
// cooperative scheduler (internal/sched) those clock calls are the yield
// points, which is what makes the simulated overload soak's admit/shed
// sequence bit-replayable from a seed.
package flowctl

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"prognosticator/internal/metrics"
	"prognosticator/internal/vclock"
)

// Typed shed/loss errors. Callers match with errors.Is.
var (
	// ErrOverload marks a request shed by admission control before any
	// proposal: a full dispatcher queue, the inflight-batch limit, an empty
	// rate-limit token bucket, or an open circuit breaker. A request failing
	// with ErrOverload was certainly never applied.
	ErrOverload = errors.New("flowctl: overloaded: shed by admission control")
	// ErrDeadlineExceeded marks a wait that ran out of the caller's budget.
	// If the request had already been proposed, its outcome is ambiguous —
	// it may still commit; resubmission must reuse the idempotency ID.
	ErrDeadlineExceeded = errors.New("flowctl: deadline exceeded")
	// ErrRetryBudgetExhausted marks a retry denied because the per-client
	// retry budget ran dry — the cluster is likely unhealthy and a retry
	// storm would make it worse.
	ErrRetryBudgetExhausted = errors.New("flowctl: retry budget exhausted")
)

// ErrCircuitOpen is returned while the circuit breaker is open after too many
// consecutive leader-routing failures. It wraps ErrOverload: a breaker
// rejection happens before any proposal, so the request was never applied.
var ErrCircuitOpen = fmt.Errorf("%w: circuit breaker open", ErrOverload)

// Config parameterizes a Controller. The zero value disables every limit:
// unbounded queues and inflight, unlimited rate, unlimited retries, no
// breaker — exactly the pre-flow-control behavior, so existing deployments
// opt in knob by knob.
type Config struct {
	// MaxQueue bounds each dispatcher's buffered request queue; Submit
	// beyond it sheds with ErrOverload (0 = unbounded).
	MaxQueue int
	// MaxInflight bounds concurrently admitted submit batches cluster-wide
	// (0 = unbounded).
	MaxInflight int
	// SubmitRate is the token-bucket admission rate in batches/second; with
	// no token available the batch is shed, never queued (0 = unlimited).
	SubmitRate float64
	// SubmitBurst is the token-bucket capacity (default: max(1,
	// SubmitRate/4)).
	SubmitBurst float64
	// RetryBudget caps the stored retry tokens; every retry withdraws one
	// and every acknowledged submit deposits RetryRatio (0 = unlimited
	// retries, bounded only by the deadline).
	RetryBudget float64
	// RetryRatio is the budget deposit per acknowledged submit (default
	// 0.1: sustained retries above 10% of throughput drain the budget).
	RetryRatio float64
	// BreakerThreshold trips the circuit breaker after this many
	// consecutive leader-routing failures (0 = breaker disabled).
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before a half-open
	// probe (default 250ms).
	BreakerCooldown time.Duration
	// Backoff tunes the jittered exponential backoff used by every retry
	// and poll loop.
	Backoff BackoffConfig
	// Seed drives backoff jitter; per-use Backoff instances derive distinct
	// deterministic seeds from it.
	Seed int64
	// Clock is the time source for the token bucket, breaker cooldown, and
	// backoff sleeps. Nil uses the wall clock; a vclock.Sim clock makes every
	// admission decision a pure function of (seed, virtual time).
	Clock vclock.Clock
}

// Controller enforces one deployment's admission and retry policy. All
// methods are safe for concurrent use; a nil *Controller behaves as fully
// permissive so call sites need no guards.
type Controller struct {
	cfg      Config
	counters *metrics.CounterSet
	budget   *RetryBudget
	breaker  *Breaker
	seedCtr  atomic.Int64

	mu         sync.Mutex
	inflight   int
	inflightHW int
	tokens     float64
	lastRefill time.Time
}

// NewController builds a controller from cfg (see Config for zero-value
// semantics).
func NewController(cfg Config) *Controller {
	if cfg.RetryRatio == 0 {
		cfg.RetryRatio = 0.1
	}
	if cfg.SubmitBurst == 0 {
		cfg.SubmitBurst = cfg.SubmitRate / 4
		if cfg.SubmitBurst < 1 {
			cfg.SubmitBurst = 1
		}
	}
	if cfg.BreakerCooldown == 0 {
		cfg.BreakerCooldown = 250 * time.Millisecond
	}
	cfg.Clock = vclock.Or(cfg.Clock)
	c := &Controller{
		cfg:      cfg,
		counters: metrics.NewCounterSet(),
		tokens:   cfg.SubmitBurst,
	}
	c.lastRefill = cfg.Clock.Now()
	if cfg.RetryBudget > 0 {
		c.budget = NewRetryBudget(cfg.RetryBudget, cfg.RetryRatio)
	}
	if cfg.BreakerThreshold > 0 {
		c.breaker = NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Clock)
	}
	return c
}

// Counters returns the controller's counter set: admitted, shed-inflight,
// shed-rate, shed-breaker, retries, retry-budget-exhausted, breaker-trips.
func (c *Controller) Counters() *metrics.CounterSet {
	if c == nil {
		return nil
	}
	return c.counters
}

// MaxQueue returns the configured per-dispatcher queue bound.
func (c *Controller) MaxQueue() int {
	if c == nil {
		return 0
	}
	return c.cfg.MaxQueue
}

// Admit runs the admission pipeline — breaker, inflight limit, rate bucket —
// and returns a release func for the inflight slot, or a typed shed error
// (always wrapping ErrOverload). Shedding is deterministic: a request is
// rejected immediately when over a limit, never queued.
func (c *Controller) Admit() (release func(), err error) {
	if c == nil {
		return func() {}, nil
	}
	if c.breaker != nil {
		if err := c.breaker.Allow(); err != nil {
			c.counters.Add("shed-breaker", 1)
			return nil, err
		}
	}
	c.mu.Lock()
	if c.cfg.MaxInflight > 0 && c.inflight >= c.cfg.MaxInflight {
		c.mu.Unlock()
		c.counters.Add("shed-inflight", 1)
		return nil, fmt.Errorf("%w: %d batches inflight (limit %d)",
			ErrOverload, c.cfg.MaxInflight, c.cfg.MaxInflight)
	}
	if c.cfg.SubmitRate > 0 && !c.takeTokenLocked() {
		c.mu.Unlock()
		c.counters.Add("shed-rate", 1)
		return nil, fmt.Errorf("%w: submit rate limit (%.3g/s) exceeded",
			ErrOverload, c.cfg.SubmitRate)
	}
	c.inflight++
	if c.inflight > c.inflightHW {
		c.inflightHW = c.inflight
	}
	c.mu.Unlock()
	c.counters.Add("admitted", 1)
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			c.inflight--
			c.mu.Unlock()
		})
	}, nil
}

// takeTokenLocked refills the token bucket from the clock and withdraws one
// token, reporting whether one was available.
func (c *Controller) takeTokenLocked() bool {
	now := c.cfg.Clock.Now()
	if elapsed := now.Sub(c.lastRefill); elapsed > 0 {
		c.tokens += elapsed.Seconds() * c.cfg.SubmitRate
		if c.tokens > c.cfg.SubmitBurst {
			c.tokens = c.cfg.SubmitBurst
		}
	}
	c.lastRefill = now
	if c.tokens < 1 {
		return false
	}
	c.tokens--
	return true
}

// Inflight returns the number of currently admitted batches.
func (c *Controller) Inflight() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inflight
}

// InflightHighWater returns the highest concurrent admission observed.
func (c *Controller) InflightHighWater() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inflightHW
}

// NewBackoff returns a backoff with a deterministic per-instance seed derived
// from the controller seed (instance ordinal × a large prime), so concurrent
// waiters don't share one jitter stream but a fixed-seed run still produces a
// reproducible family of sequences.
func (c *Controller) NewBackoff() *Backoff {
	if c == nil {
		return NewBackoff(BackoffConfig{}, 1)
	}
	ord := c.seedCtr.Add(1)
	return NewBackoffClock(c.cfg.Backoff, c.cfg.Seed+ord*2654435761, c.cfg.Clock)
}

// AllowRetry withdraws one retry token, returning ErrRetryBudgetExhausted if
// the budget is dry (nil when no budget is configured).
func (c *Controller) AllowRetry() error {
	if c == nil {
		return nil
	}
	if c.budget != nil && !c.budget.Withdraw() {
		c.counters.Add("retry-budget-exhausted", 1)
		return fmt.Errorf("%w (cap %.3g, deposit %.3g per acknowledged submit)",
			ErrRetryBudgetExhausted, c.cfg.RetryBudget, c.cfg.RetryRatio)
	}
	c.counters.Add("retries", 1)
	return nil
}

// RecordSuccess reports an acknowledged submit: deposits into the retry
// budget and closes the breaker.
func (c *Controller) RecordSuccess() {
	if c == nil {
		return
	}
	if c.budget != nil {
		c.budget.Deposit()
	}
	if c.breaker != nil {
		c.breaker.Success()
	}
}

// RecordRouteFailure reports one leader-routing failure to the breaker,
// counting a trip when this failure opens it.
func (c *Controller) RecordRouteFailure() {
	if c == nil || c.breaker == nil {
		return
	}
	if c.breaker.Failure() {
		c.counters.Add("breaker-trips", 1)
	}
}

// RecordRouteSuccess reports a successful proposal route to the breaker
// (resets the consecutive-failure count, closes a half-open probe).
func (c *Controller) RecordRouteSuccess() {
	if c == nil || c.breaker == nil {
		return
	}
	c.breaker.Success()
}

// RetryBudgetBalance returns the current retry token balance (or -1 with no
// budget configured).
func (c *Controller) RetryBudgetBalance() float64 {
	if c == nil || c.budget == nil {
		return -1
	}
	return c.budget.Balance()
}

// BreakerState returns the breaker state (Closed when no breaker is
// configured).
func (c *Controller) BreakerState() BreakerState {
	if c == nil || c.breaker == nil {
		return Closed
	}
	return c.breaker.State()
}

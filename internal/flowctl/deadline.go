package flowctl

import (
	"time"

	"prognosticator/internal/vclock"
)

// Deadline is an absolute time budget threaded through the submit path: from
// SubmitBatch through leader routing, proposal flushes and apply-wait loops,
// so no layer waits past the caller's budget. The zero Deadline means "no
// deadline" and never expires.
//
// A Deadline carries the clock it was minted from, so budgets created on a
// simulated clock expire in virtual time. The zero value (and After/At) read
// the wall clock, preserving pre-clock-injection behavior.
type Deadline struct {
	at  time.Time
	clk vclock.Clock
}

// After returns a deadline d from now on the wall clock.
func After(d time.Duration) Deadline { return AfterClock(vclock.Wall, d) }

// AfterClock returns a deadline d from clk's now, expiring by clk's time.
func AfterClock(clk vclock.Clock, d time.Duration) Deadline {
	clk = vclock.Or(clk)
	return Deadline{at: clk.Now().Add(d), clk: clk}
}

// At returns a deadline at the absolute wall time t.
func At(t time.Time) Deadline { return Deadline{at: t} }

// AtClock returns a deadline at the absolute time t by clk's clock.
func AtClock(clk vclock.Clock, t time.Time) Deadline {
	return Deadline{at: t, clk: vclock.Or(clk)}
}

// None returns the zero deadline (never expires).
func None() Deadline { return Deadline{} }

// IsZero reports whether this is the no-deadline sentinel.
func (d Deadline) IsZero() bool { return d.at.IsZero() }

// Time returns the absolute deadline (zero time for None).
func (d Deadline) Time() time.Time { return d.at }

// Clock returns the clock this deadline expires by (Wall if unset).
func (d Deadline) Clock() vclock.Clock { return vclock.Or(d.clk) }

// Expired reports whether the deadline has passed.
func (d Deadline) Expired() bool {
	return !d.at.IsZero() && !d.Clock().Now().Before(d.at)
}

// Remaining returns the budget left. A zero deadline reports a very large
// remainder; an expired deadline reports <= 0.
func (d Deadline) Remaining() time.Duration {
	if d.at.IsZero() {
		return time.Duration(1<<63 - 1)
	}
	return d.at.Sub(d.Clock().Now())
}

// Check returns ErrDeadlineExceeded if the deadline has passed, else nil.
func (d Deadline) Check() error {
	if d.Expired() {
		return ErrDeadlineExceeded
	}
	return nil
}

// Bound returns the earlier of this deadline and now+window — the per-attempt
// sub-budget pattern: a proposal is waited on for at most window before
// re-routing, but never past the caller's overall deadline. The derived
// deadline keeps this deadline's clock.
func (d Deadline) Bound(window time.Duration) Deadline {
	clk := d.Clock()
	w := clk.Now().Add(window)
	if d.at.IsZero() || w.Before(d.at) {
		return Deadline{at: w, clk: clk}
	}
	return d
}

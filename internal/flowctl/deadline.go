package flowctl

import (
	"time"
)

// Deadline is an absolute time budget threaded through the submit path: from
// SubmitBatch through leader routing, proposal flushes and apply-wait loops,
// so no layer waits past the caller's budget. The zero Deadline means "no
// deadline" and never expires.
type Deadline struct {
	at time.Time
}

// After returns a deadline d from now.
func After(d time.Duration) Deadline { return Deadline{at: time.Now().Add(d)} }

// At returns a deadline at the absolute time t.
func At(t time.Time) Deadline { return Deadline{at: t} }

// None returns the zero deadline (never expires).
func None() Deadline { return Deadline{} }

// IsZero reports whether this is the no-deadline sentinel.
func (d Deadline) IsZero() bool { return d.at.IsZero() }

// Time returns the absolute deadline (zero time for None).
func (d Deadline) Time() time.Time { return d.at }

// Expired reports whether the deadline has passed.
func (d Deadline) Expired() bool {
	return !d.at.IsZero() && !time.Now().Before(d.at)
}

// Remaining returns the budget left. A zero deadline reports a very large
// remainder; an expired deadline reports <= 0.
func (d Deadline) Remaining() time.Duration {
	if d.at.IsZero() {
		return time.Duration(1<<63 - 1)
	}
	return time.Until(d.at)
}

// Check returns ErrDeadlineExceeded if the deadline has passed, else nil.
func (d Deadline) Check() error {
	if d.Expired() {
		return ErrDeadlineExceeded
	}
	return nil
}

// Bound returns the earlier of this deadline and now+window — the per-attempt
// sub-budget pattern: a proposal is waited on for at most window before
// re-routing, but never past the caller's overall deadline.
func (d Deadline) Bound(window time.Duration) Deadline {
	w := time.Now().Add(window)
	if d.at.IsZero() || w.Before(d.at) {
		return Deadline{at: w}
	}
	return d
}

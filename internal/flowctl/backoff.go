package flowctl

import (
	"math/rand"
	"sync"
	"time"

	"prognosticator/internal/vclock"
)

// BackoffConfig tunes a jittered exponential backoff. Zero values select
// defaults suited to in-process consensus timing (millisecond scale).
type BackoffConfig struct {
	// Base is the first step (default 1ms).
	Base time.Duration
	// Cap bounds the exponential growth (default 64ms).
	Cap time.Duration
	// Multiplier grows the step per attempt (default 2).
	Multiplier float64
	// Jitter in [0,1] is the fraction of each step drawn uniformly at
	// random ("equal jitter": step*(1-J) + U[0, step*J]); default 0.5.
	// Jitter decorrelates retry stampedes — concurrent clients that failed
	// together do not all retry together.
	Jitter float64
}

func (c BackoffConfig) withDefaults() BackoffConfig {
	if c.Base == 0 {
		c.Base = time.Millisecond
	}
	if c.Cap == 0 {
		c.Cap = 64 * time.Millisecond
	}
	if c.Multiplier == 0 {
		c.Multiplier = 2
	}
	if c.Jitter == 0 {
		c.Jitter = 0.5
	}
	return c
}

// Backoff produces a deterministic (seeded) jittered exponential wait
// sequence. One instance serves one wait loop; concurrent loops use separate
// instances (see Controller.NewBackoff). Safe for concurrent use anyway.
type Backoff struct {
	cfg BackoffConfig
	clk vclock.Clock

	mu      sync.Mutex
	rng     *rand.Rand
	attempt int
}

// NewBackoff returns a backoff seeded for reproducible jitter, sleeping on
// the wall clock.
func NewBackoff(cfg BackoffConfig, seed int64) *Backoff {
	return NewBackoffClock(cfg, seed, vclock.Wall)
}

// NewBackoffClock returns a backoff seeded for reproducible jitter that
// sleeps on clk — on a simulated clock every Sleep is a virtual wait, so
// retry loops replay bit-identically from the seed.
func NewBackoffClock(cfg BackoffConfig, seed int64, clk vclock.Clock) *Backoff {
	return &Backoff{cfg: cfg.withDefaults(), clk: vclock.Or(clk), rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next wait duration: exponential growth capped at Cap, with
// the configured jitter fraction drawn from the seeded rng. The sequence is a
// pure function of (config, seed).
func (b *Backoff) Next() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	step := float64(b.cfg.Base)
	for i := 0; i < b.attempt; i++ {
		step *= b.cfg.Multiplier
		if step >= float64(b.cfg.Cap) {
			step = float64(b.cfg.Cap)
			break
		}
	}
	b.attempt++
	fixed := step * (1 - b.cfg.Jitter)
	jittered := b.rng.Float64() * step * b.cfg.Jitter
	d := time.Duration(fixed + jittered)
	if d < time.Microsecond {
		d = time.Microsecond
	}
	return d
}

// Attempts returns how many waits have been produced.
func (b *Backoff) Attempts() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.attempt
}

// Reset restarts the exponential sequence (the jitter stream continues, so a
// reset backoff stays deterministic for a fixed seed).
func (b *Backoff) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.attempt = 0
}

// Sleep blocks for the next backoff step, truncated to the deadline's
// remaining budget. It returns ErrDeadlineExceeded without sleeping when the
// deadline has already passed, so a wait loop structured as
// "check condition; Sleep(dl)" re-checks its condition one final time at the
// deadline edge before giving up.
func (b *Backoff) Sleep(dl Deadline) error {
	rem := dl.Remaining()
	if rem <= 0 {
		return ErrDeadlineExceeded
	}
	d := b.Next()
	if d > rem {
		d = rem
	}
	b.clk.Sleep(d)
	return nil
}

// RetryBudget is a token bucket for retries (Finagle-style): every
// acknowledged submit deposits ratio tokens, every retry withdraws one, and
// the balance is capped. Under sustained failure the budget drains and
// retries stop — the stampede is bounded instead of amplifying the overload.
type RetryBudget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	ratio  float64
}

// NewRetryBudget returns a budget starting full (burst headroom at boot).
func NewRetryBudget(max, ratio float64) *RetryBudget {
	return &RetryBudget{tokens: max, max: max, ratio: ratio}
}

// Deposit credits one acknowledged submit's worth of budget.
func (rb *RetryBudget) Deposit() {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	rb.tokens += rb.ratio
	if rb.tokens > rb.max {
		rb.tokens = rb.max
	}
}

// Withdraw takes one retry token, reporting whether one was available.
func (rb *RetryBudget) Withdraw() bool {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.tokens < 1 {
		return false
	}
	rb.tokens--
	return true
}

// Balance returns the current token balance.
func (rb *RetryBudget) Balance() float64 {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return rb.tokens
}

// BreakerState is a circuit breaker state.
type BreakerState int

// Breaker states.
const (
	// Closed passes requests through, counting consecutive failures.
	Closed BreakerState = iota
	// Open sheds every request until the cooldown elapses.
	Open
	// HalfOpen admits a single probe; its outcome closes or re-opens.
	HalfOpen
)

// String returns the state name.
func (s BreakerState) String() string {
	switch s {
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker is a consecutive-failure circuit breaker for leader routing: when
// every routing attempt keeps landing on a non-leader (an unstable or
// partitioned cluster), the breaker trips and submit attempts shed instantly
// with ErrCircuitOpen instead of burning their deadline re-routing.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	clk       vclock.Clock

	mu          sync.Mutex
	state       BreakerState
	consecutive int
	openedAt    time.Time
	probing     bool
	trips       int64
}

// NewBreaker returns a closed breaker reading clk for its cooldown (nil =
// wall clock). The half-open probe decision is a pure function of clk's
// time, so breaker behavior replays exactly on a simulated clock.
func NewBreaker(threshold int, cooldown time.Duration, clk vclock.Clock) *Breaker {
	return &Breaker{threshold: threshold, cooldown: cooldown, clk: vclock.Or(clk)}
}

// Allow reports whether a request may proceed: nil when closed, nil for the
// single half-open probe after the cooldown, ErrCircuitOpen otherwise.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return nil
	case Open:
		if b.clk.Since(b.openedAt) >= b.cooldown {
			b.state = HalfOpen
			b.probing = true
			return nil
		}
		return ErrCircuitOpen
	default: // HalfOpen
		if !b.probing {
			b.probing = true
			return nil
		}
		return ErrCircuitOpen
	}
}

// Success reports a successful route: closes the breaker and resets the
// consecutive-failure count.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = Closed
	b.consecutive = 0
	b.probing = false
}

// Failure reports one routing failure, returning true when this failure
// trips the breaker open (from closed, or a failed half-open probe).
func (b *Breaker) Failure() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	if b.state == HalfOpen {
		b.state = Open
		b.openedAt = b.clk.Now()
		b.probing = false
		b.trips++
		return true
	}
	if b.state == Closed && b.consecutive >= b.threshold {
		b.state = Open
		b.openedAt = b.clk.Now()
		b.trips++
		return true
	}
	return false
}

// State returns the current breaker state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

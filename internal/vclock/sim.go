package vclock

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// simEpoch is the fixed virtual base time. It is a constant (not wall-clock
// derived) so everything stamped from the clock — batch-ID prefixes, token
// bucket refills, deadlines — is identical across same-seed runs.
var simEpoch = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)

// Sim is a seeded virtual clock. Obtain Clock handles with Clock(); register
// goroutine/event tokens with the package helpers (Hold/Release/Park/Wake/
// Ack/Go). Virtual time advances only when the busy counter reaches zero:
// the goroutine whose Release zeroed it pops the earliest pending timer,
// sets now to its deadline, and fires it (the fire token wakes the waiter or
// runs the AfterFunc inline).
type Sim struct {
	seed int64

	mu       sync.Mutex
	now      time.Time
	busy     int
	timers   timerHeap
	seq      uint64
	advances uint64
	// sched, when non-nil, is the attached cooperative scheduler: token
	// accounting turns off (inc/dec become no-ops) and virtual time advances
	// only from the scheduler's loop via AdvanceNext.
	sched Scheduler
}

// NewSim returns a simulated clock seeded with seed. The seed does not
// perturb the clock itself (time is driven purely by timer deadlines); it is
// carried so layers can derive decision streams via Hash64(Seed(), ...).
func NewSim(seed int64) *Sim {
	return &Sim{seed: seed, now: simEpoch}
}

// Seed returns the simulation seed.
func (s *Sim) Seed() int64 { return s.seed }

// Clock returns a Clock handle on the simulation. Handles are cheap and
// shareable; all of them observe the same virtual time.
func (s *Sim) Clock() Clock { return &SimClock{s: s} }

// Now returns the current virtual time.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Advances returns how many timer fires have driven virtual time so far. It
// is part of a run's replayable trace: two same-seed runs advance the same
// number of times.
func (s *Sim) Advances() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.advances
}

// Stats returns the busy-token count and pending-timer count, for debugging
// stalled simulations (a hang with busy > 0 and no runnable goroutine means
// a leaked token; busy == 0 with no timers means a real deadlock).
func (s *Sim) Stats() (busy, pendingTimers int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.busy, s.timers.Len()
}

// SetScheduler attaches (or, with nil, detaches) a cooperative scheduler.
// Must be called while the simulation is quiescent — before any actors run,
// or after all of them have exited.
func (s *Sim) SetScheduler(sched Scheduler) {
	s.mu.Lock()
	s.sched = sched
	s.mu.Unlock()
}

func (s *Sim) scheduler() Scheduler {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sched
}

// AdvanceNext fires the earliest pending timer on the calling goroutine —
// the cooperative scheduler's advance step, used when every actor is idle
// or sleeping. It reports whether a timer fired (false means the heap is
// empty: with no runnable actor that is a genuine deadlock, which the
// scheduler reports). AfterFunc callbacks run inline on the caller.
func (s *Sim) AdvanceNext() bool {
	s.mu.Lock()
	fn, fired := s.advanceLocked()
	s.mu.Unlock()
	if fn != nil {
		fn()
	}
	return fired
}

func (s *Sim) inc() {
	s.mu.Lock()
	if s.sched != nil {
		s.mu.Unlock()
		return
	}
	s.busy++
	s.mu.Unlock()
}

// dec retires one busy token. If the counter hits zero, this goroutine
// performs the advance: pop the earliest timer, move now, fire. Channel
// timers are delivered under the lock (buffered, never blocks); AfterFunc
// callbacks run outside the lock holding the fire token, which dec then
// retires in the next loop iteration (an AfterFunc chain is a loop, not
// recursion).
func (s *Sim) dec() {
	for {
		s.mu.Lock()
		if s.sched != nil {
			s.mu.Unlock()
			return
		}
		s.busy--
		if s.busy < 0 {
			s.mu.Unlock()
			panic("vclock: busy token released twice (Park/Release without matching Wake/Hold)")
		}
		var fn func()
		if s.busy == 0 {
			fn, _ = s.advanceLocked()
		}
		s.mu.Unlock()
		if fn == nil {
			return
		}
		fn()
	}
}

// advanceLocked fires the earliest pending timer, if any. Exactly one timer
// fires per advance; ties on the deadline fire in creation order across
// successive advances at the same virtual instant. Returns a non-nil func
// for AfterFunc timers (run it outside the lock, then release its token)
// and whether a timer fired at all.
func (s *Sim) advanceLocked() (func(), bool) {
	if s.timers.Len() == 0 {
		return nil, false
	}
	tm := heap.Pop(&s.timers).(*simTimer)
	if tm.when.After(s.now) {
		s.now = tm.when
	}
	s.advances++
	if s.sched == nil {
		s.busy++ // fire token: transferred to the waiter or retired after fn
	}
	tm.state = timerFired
	if tm.fn != nil {
		return tm.fn, true
	}
	tm.ch <- s.now // cap 1, sole pending fire: never blocks
	return nil, true
}

// SimClock is a Clock handle on a Sim. Exported only so code can detect
// simulation via type assertion; construct with (*Sim).Clock().
type SimClock struct{ s *Sim }

// Sim returns the underlying simulation.
func (c *SimClock) Sim() *Sim { return c.s }

func (c *SimClock) Now() time.Time                  { return c.s.Now() }
func (c *SimClock) Since(t time.Time) time.Duration { return c.s.Now().Sub(t) }

// Sleep blocks for d of virtual time: the caller's run token is released and
// the timer's fire token wakes it, so the busy accounting is seamless. Under
// a cooperative scheduler the calling actor parks and its wake is scheduled
// by the scheduler's advance loop.
func (c *SimClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if sched := c.s.scheduler(); sched != nil {
		sched.Sleep(d)
		return
	}
	tm := c.s.addTimer(d, nil)
	c.s.dec()
	<-tm.ch // fire token becomes our run token
}

func (c *SimClock) After(d time.Duration) <-chan time.Time { return c.NewTimer(d).C() }

func (c *SimClock) NewTimer(d time.Duration) Timer {
	return &simTimerHandle{s: c.s, t: c.s.addTimer(d, nil)}
}

func (c *SimClock) AfterFunc(d time.Duration, f func()) Timer {
	return &simTimerHandle{s: c.s, t: c.s.addTimer(d, f)}
}

func (s *Sim) addTimer(d time.Duration, fn func()) *simTimer {
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	tm := &simTimer{when: s.now.Add(d), seq: s.seq, fn: fn, state: timerPending}
	if fn == nil {
		tm.ch = make(chan time.Time, 1)
	}
	heap.Push(&s.timers, tm)
	return tm
}

type timerState int

const (
	timerPending timerState = iota
	timerFired
	timerStopped
)

type simTimer struct {
	when  time.Time
	seq   uint64
	ch    chan time.Time
	fn    func()
	state timerState
	idx   int // heap index, -1 when popped
}

type simTimerHandle struct {
	s *Sim
	t *simTimer
}

func (h *simTimerHandle) C() <-chan time.Time { return h.t.ch }

// Stop cancels a pending timer. If the timer already fired but its tick was
// never read, Stop drains the channel and retires the orphaned fire token —
// otherwise a raced `select` arm (e.g. a stop signal beating the tick) would
// stall virtual time forever.
func (h *simTimerHandle) Stop() bool {
	h.s.mu.Lock()
	t := h.t
	switch t.state {
	case timerPending:
		heap.Remove(&h.s.timers, t.idx)
		t.state = timerStopped
		h.s.mu.Unlock()
		return true
	case timerFired:
		if t.ch != nil {
			select {
			case <-t.ch:
				// Unread tick: retire its fire token (under a scheduler
				// there is none — draining the channel suffices). We hold
				// the lock, so decrement directly; busy stays > 0.
				if h.s.sched == nil {
					h.s.busy--
					if h.s.busy < 0 {
						h.s.mu.Unlock()
						panic("vclock: timer fire token released twice")
					}
				}
			default:
			}
		}
		t.state = timerStopped
		h.s.mu.Unlock()
		return false
	default:
		h.s.mu.Unlock()
		return false
	}
}

// Reset re-arms the timer for d from the current virtual now.
func (h *simTimerHandle) Reset(d time.Duration) bool {
	active := h.Stop()
	if d < 0 {
		d = 0
	}
	s := h.s
	s.mu.Lock()
	t := h.t
	s.seq++
	t.when = s.now.Add(d)
	t.seq = s.seq
	t.state = timerPending
	if t.fn == nil && t.ch == nil {
		t.ch = make(chan time.Time, 1)
	}
	heap.Push(&s.timers, t)
	s.mu.Unlock()
	return active
}

func (s *Sim) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("sim(seed=%d now=%s busy=%d timers=%d advances=%d)",
		s.seed, s.now.Format(time.RFC3339Nano), s.busy, s.timers.Len(), s.advances)
}

// timerHeap orders timers by (deadline, creation seq).
type timerHeap []*simTimer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *timerHeap) Push(x any) {
	t := x.(*simTimer)
	t.idx = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.idx = -1
	*h = old[:n-1]
	return t
}

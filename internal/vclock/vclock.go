// Package vclock abstracts time behind a Clock interface with two
// implementations: Wall (production, delegating to package time) and Sim (a
// seeded virtual clock for deterministic whole-cluster tests).
//
// The simulated clock advances virtual time only at quiescence — when every
// registered goroutine is blocked and no cross-goroutine event (network
// message, raft apply record, timer fire) is in flight. Code that runs on the
// simulated clock therefore executes in milliseconds of real time with zero
// real sleeps, and a whole run is a pure function of (seed, config).
//
// Accounting model: the Sim keeps a single busy counter. Every running
// goroutine contributes one token (Hold at spawn / Release at exit, or use
// Go), and every undelivered event contributes one token (Hold before making
// it receivable, Release/Ack after the receiver consumed it). A goroutine
// about to block on a non-clock channel Parks (releases its run token) and
// Wakes on return (re-acquires it); the clock's own Sleep/Timer primitives do
// this internally, transferring the timer-fire token to the woken goroutine.
// When the counter hits zero the releasing goroutine pops the earliest
// pending timer, moves virtual now to its deadline, and fires it.
//
// All helpers (Hold/Release/Park/Wake/Ack/Go) are no-ops on non-Sim clocks,
// so production code paths carry no simulation cost beyond an interface call.
//
// # Cooperative scheduling
//
// The token model makes the event SEQUENCE a function of the seed, but not
// the interleaving: several goroutines runnable at the same virtual instant
// are ordered by the Go runtime (select fairness), which can shift virtual
// timestamps between same-seed runs. For bit-identical replay a Scheduler
// (internal/sched) can be attached via (*Sim).SetScheduler: clock-aware
// goroutines then become cooperative actors that run one at a time, yielding
// at Sleep, Go/GoActor spawns, and the explicit Yield/Idle/Await gates, and a
// seeded picker chooses the next runnable actor. While a scheduler is
// attached the token helpers are no-ops (the scheduler subsumes them) and
// virtual time advances only from the scheduler's own loop.
package vclock

import (
	"hash/fnv"
	"time"
)

// Clock is the time source injected through raft, flowctl, memnet, tcpnet,
// and the replica layer. Implementations: Wall and (*Sim).Clock().
type Clock interface {
	// Now returns the current (wall or virtual) time.
	Now() time.Time
	// Since returns Now().Sub(t).
	Since(t time.Time) time.Duration
	// Sleep blocks for d (virtual time on Sim: the calling goroutine parks
	// and the fire token wakes it; no real time elapses).
	Sleep(d time.Duration)
	// After returns a channel that delivers the fire time after d. Prefer
	// NewTimer in long-lived loops: an abandoned After channel on the Sim
	// clock leaks its fire token and stalls virtual time.
	After(d time.Duration) <-chan time.Time
	// NewTimer returns a timer that fires once after d.
	NewTimer(d time.Duration) Timer
	// AfterFunc runs f after d on some goroutine (inline on the advancing
	// goroutine under Sim). The returned timer's Stop cancels a pending f.
	AfterFunc(d time.Duration, f func()) Timer
}

// Timer mirrors time.Timer behind an interface so the Sim can account for
// fire tokens. C returns nil for AfterFunc timers.
type Timer interface {
	C() <-chan time.Time
	// Stop cancels the timer, reporting whether it was still pending. On the
	// Sim clock Stop also consumes an already-fired-but-unread tick so the
	// fire token cannot leak.
	Stop() bool
	// Reset re-arms the timer for d, reporting whether it was still pending.
	Reset(d time.Duration) bool
}

// Scheduler is the cooperative-scheduling hook a Sim can carry (see
// internal/sched for the implementation; the interface lives here to avoid
// an import cycle). All methods except GoActor and Publish must be called
// from the currently running actor.
type Scheduler interface {
	// GoActor spawns fn as a new actor. The actor is registered
	// synchronously (so registration order — and therefore actor identity —
	// is deterministic) and starts running when the picker first selects it.
	GoActor(name string, fn func())
	// Yield parks the calling actor at a resumption gate: the scheduler may
	// run other ready actors before resuming it.
	Yield()
	// Idle parks the calling actor until the next published event or timer
	// fire. Poll loops call it when a full poll found nothing to do.
	Idle()
	// Publish marks a cross-actor event (message enqueued, channel closed,
	// actor exited): every idle actor becomes ready and will re-poll. Safe
	// from any goroutine.
	Publish()
	// Sleep blocks the calling actor for d of virtual time.
	Sleep(d time.Duration)
	// Await blocks the calling actor until pred() is true, publishing once
	// so other actors can make the predicate true. pred is evaluated only
	// while the caller holds the run baton, so it may read state written by
	// other actors without extra locking.
	Await(pred func() bool)
}

// Wall is the production clock backed by package time.
var Wall Clock = wallClock{}

type wallClock struct{}

func (wallClock) Now() time.Time                         { return time.Now() }
func (wallClock) Since(t time.Time) time.Duration        { return time.Since(t) }
func (wallClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (wallClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

func (wallClock) NewTimer(d time.Duration) Timer { return &wallTimer{t: time.NewTimer(d)} }

func (wallClock) AfterFunc(d time.Duration, f func()) Timer {
	return &wallTimer{t: time.AfterFunc(d, f)}
}

type wallTimer struct{ t *time.Timer }

func (w *wallTimer) C() <-chan time.Time        { return w.t.C }
func (w *wallTimer) Stop() bool                 { return w.t.Stop() }
func (w *wallTimer) Reset(d time.Duration) bool { return w.t.Reset(d) }

// Or returns clk if non-nil, else Wall. Config structs use it so a zero
// Clock field keeps today's wall-time behavior.
func Or(clk Clock) Clock {
	if clk == nil {
		return Wall
	}
	return clk
}

// IsSim reports whether clk is a simulated clock.
func IsSim(clk Clock) bool { _, ok := clk.(*SimClock); return ok }

// schedOf returns clk's attached cooperative scheduler, or nil.
func schedOf(clk Clock) Scheduler {
	if sc, ok := clk.(*SimClock); ok {
		return sc.s.scheduler()
	}
	return nil
}

// Scheduled reports whether clk is a simulated clock with a cooperative
// scheduler attached. Event loops switch from Park/Wake selects to
// deterministic poll-and-Idle loops when it returns true.
func Scheduled(clk Clock) bool { return schedOf(clk) != nil }

// Yield is a deterministic preemption point: under a cooperative scheduler
// the calling actor parks and the seeded picker chooses the next runnable
// actor (possibly the caller again). No-op everywhere else.
func Yield(clk Clock) {
	if s := schedOf(clk); s != nil {
		s.Yield()
	}
}

// Idle parks the calling actor until the next published event or timer
// fire; poll loops call it after a full poll found nothing. No-op without a
// scheduler.
func Idle(clk Clock) {
	if s := schedOf(clk); s != nil {
		s.Idle()
	}
}

// Publish signals a cross-actor event (message enqueued, channel closed):
// idle actors re-poll. Safe from any goroutine; no-op without a scheduler.
func Publish(clk Clock) {
	if s := schedOf(clk); s != nil {
		s.Publish()
	}
}

// Await blocks until pred() is true. Under a cooperative scheduler the
// calling actor parks between evaluations so other actors can run; without
// one it returns immediately (callers follow it with their own blocking
// wait, e.g. WaitGroup.Wait, which the scheduler-mode Await exists to make
// safe).
func Await(clk Clock, pred func() bool) {
	if s := schedOf(clk); s != nil {
		s.Await(pred)
	}
}

// Hold registers one unit of pending work (a running goroutine or an
// undelivered event) with clk's simulation; no-op on other clocks and under
// a cooperative scheduler (which subsumes token accounting). Virtual time
// cannot advance while any unit is held.
func Hold(clk Clock) {
	if sc, ok := clk.(*SimClock); ok {
		sc.s.inc()
	}
}

// Release retires a unit registered with Hold; if it was the last, the
// calling goroutine advances virtual time to the next timer deadline.
func Release(clk Clock) {
	if sc, ok := clk.(*SimClock); ok {
		sc.s.dec()
	}
}

// Park releases the calling goroutine's run token immediately before it
// blocks on a non-clock channel operation (e.g. a select over a message
// inbox). Pair with Wake on every select arm. Never call holding a lock a
// woken peer might need.
func Park(clk Clock) { Release(clk) }

// Wake re-acquires the calling goroutine's run token after a Park-ed block
// returns. Call it first on every select arm, before Ack.
func Wake(clk Clock) { Hold(clk) }

// Ack retires the event token of a message just consumed from a channel the
// sender Hold-ed for. Call after Wake (the consumer's own token keeps the
// system busy while it processes the message).
func Ack(clk Clock) { Release(clk) }

// Go runs fn on a new goroutine that counts as busy for its whole lifetime
// (the Hold happens before spawn, so there is no gap in which the sim could
// advance). Use instead of the go statement for clock-aware code. Under a
// cooperative scheduler fn becomes a new actor, registered synchronously by
// the caller so spawn order — and thus the whole interleaving — stays
// deterministic.
func Go(clk Clock, fn func()) {
	GoNamed(clk, "", fn)
}

// GoNamed is Go with an actor name for scheduler diagnostics.
func GoNamed(clk Clock, name string, fn func()) {
	if sc, ok := clk.(*SimClock); ok {
		if s := sc.s.scheduler(); s != nil {
			s.GoActor(name, fn)
			return
		}
		sc.s.inc()
		go func() {
			defer sc.s.dec()
			fn()
		}()
		return
	}
	go fn()
}

// Hash64 mixes the given values through splitmix64 into one 64-bit hash.
// Layers use it to derive per-decision randomness (raft election jitter,
// memnet per-pair loss/delay streams) as a pure function of stable
// identifiers instead of drawing from a shared rng, whose draw order would
// depend on goroutine scheduling.
func Hash64(vs ...uint64) uint64 {
	h := uint64(0x2545F4914F6CDD1D)
	for _, v := range vs {
		h = splitmix64(h ^ v)
	}
	return splitmix64(h)
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// HashString folds a string identifier (a node or endpoint name) into a
// uint64 suitable as a Hash64 input, via FNV-1a.
func HashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

package vclock

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestWallBasics(t *testing.T) {
	clk := Or(nil)
	if clk != Wall {
		t.Fatalf("Or(nil) = %v, want Wall", clk)
	}
	if IsSim(clk) {
		t.Fatal("Wall reported as sim")
	}
	t0 := clk.Now()
	clk.Sleep(time.Millisecond)
	if clk.Since(t0) <= 0 {
		t.Fatal("wall Since did not advance across Sleep")
	}
	tm := clk.NewTimer(time.Millisecond)
	select {
	case <-tm.C():
	case <-time.After(time.Second):
		t.Fatal("wall timer did not fire")
	}
	if tm.Stop() {
		t.Fatal("Stop on fired wall timer returned true")
	}
	tm.Reset(time.Millisecond)
	select {
	case <-tm.C():
	case <-time.After(time.Second):
		t.Fatal("reset wall timer did not fire")
	}
	done := make(chan struct{})
	clk.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("wall AfterFunc did not run")
	}
	<-clk.After(time.Millisecond)
	// Hold/Release/Park/Wake/Ack are no-ops on Wall.
	Hold(clk)
	Release(clk)
	Park(clk)
	Wake(clk)
	Ack(clk)
	ran := make(chan struct{})
	Go(clk, func() { close(ran) })
	<-ran
}

func TestSimSleepAdvancesVirtualTime(t *testing.T) {
	sim := NewSim(1)
	clk := sim.Clock()
	if !IsSim(clk) {
		t.Fatal("sim clock not detected by IsSim")
	}
	if clk.(*SimClock).Sim() != sim {
		t.Fatal("SimClock.Sim mismatch")
	}
	Hold(clk) // the test goroutine registers as busy
	defer Release(clk)
	start := clk.Now()
	real0 := time.Now()
	clk.Sleep(10 * time.Hour)
	if got := clk.Since(start); got != 10*time.Hour {
		t.Fatalf("virtual Sleep advanced %v, want 10h", got)
	}
	if elapsed := time.Since(real0); elapsed > 5*time.Second {
		t.Fatalf("virtual sleep took %v of real time", elapsed)
	}
	clk.Sleep(0) // no-op, must not deadlock
	if sim.Advances() != 1 {
		t.Fatalf("advances = %d, want 1", sim.Advances())
	}
	if sim.Seed() != 1 {
		t.Fatalf("seed = %d", sim.Seed())
	}
}

func TestSimTimerOrderingAcrossGoroutines(t *testing.T) {
	sim := NewSim(7)
	clk := sim.Clock()
	Hold(clk)
	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	for _, d := range []struct {
		name  string
		sleep time.Duration
	}{{"c", 30 * time.Millisecond}, {"a", 10 * time.Millisecond}, {"b", 20 * time.Millisecond}} {
		d := d
		wg.Add(1)
		Go(clk, func() {
			defer wg.Done()
			clk.Sleep(d.sleep)
			mu.Lock()
			order = append(order, fmt.Sprintf("%s@%v", d.name, clk.Since(simEpoch)))
			mu.Unlock()
		})
	}
	Release(clk) // let the sim run the three sleepers
	wg.Wait()
	want := "[a@10ms b@20ms c@30ms]"
	if got := fmt.Sprintf("%v", order); got != want {
		t.Fatalf("wake order = %v, want %v", got, want)
	}
}

func TestSimAfterFuncChain(t *testing.T) {
	sim := NewSim(2)
	clk := sim.Clock()
	Hold(clk)
	var fired []time.Duration
	clk.AfterFunc(5*time.Millisecond, func() {
		fired = append(fired, clk.Since(simEpoch))
		clk.AfterFunc(5*time.Millisecond, func() {
			fired = append(fired, clk.Since(simEpoch))
		})
	})
	// Sleep past both: the chain runs inline on this goroutine's dec loop.
	clk.Sleep(50 * time.Millisecond)
	Release(clk)
	if len(fired) != 2 || fired[0] != 5*time.Millisecond || fired[1] != 10*time.Millisecond {
		t.Fatalf("AfterFunc chain fired at %v", fired)
	}
}

func TestSimParkWakeMessagePassing(t *testing.T) {
	sim := NewSim(3)
	clk := sim.Clock()
	Hold(clk)
	inbox := make(chan int, 16)
	stop := make(chan struct{})
	got := make(chan int, 16)
	var wg sync.WaitGroup
	wg.Add(1)
	Go(clk, func() {
		defer wg.Done()
		for {
			Park(clk)
			select {
			case <-stop:
				Wake(clk)
				return
			case v := <-inbox:
				Wake(clk)
				Ack(clk)
				got <- v
			}
		}
	})
	// Delayed send: schedule via AfterFunc; the event token is held only
	// once the message is actually enqueued.
	clk.AfterFunc(time.Second, func() {
		Hold(clk)
		inbox <- 42
	})
	clk.Sleep(2 * time.Second) // advances past the delivery
	select {
	case v := <-got:
		if v != 42 {
			t.Fatalf("got %d", v)
		}
	default:
		t.Fatal("delayed message not delivered after virtual sleep")
	}
	close(stop)
	wg.Wait()
	Release(clk)
}

// TestSimTimerStopConsumesFiredToken pins the select-race guard: a timer that
// fired while its owner was parked (but whose tick the owner never read,
// because another select arm won) leaves an orphaned fire token; Stop must
// retire it, or virtual time stalls forever.
func TestSimTimerStopConsumesFiredToken(t *testing.T) {
	sim := NewSim(4)
	clk := sim.Clock()
	Hold(clk)
	tm := clk.NewTimer(time.Millisecond)
	Park(clk) // quiescence: the timer fires, tick left unread
	Wake(clk)
	if tm.Stop() {
		t.Fatal("Stop on fired timer returned true")
	}
	// The orphaned fire token must have been retired: this Sleep hangs if
	// busy never reaches zero again.
	clk.Sleep(time.Millisecond)
	// Stop on a pending timer cancels it outright.
	tm2 := clk.NewTimer(time.Hour)
	if !tm2.Stop() {
		t.Fatal("Stop on pending timer returned false")
	}
	if _, pending := sim.Stats(); pending != 0 {
		t.Fatalf("pending timers after stops: %d", pending)
	}
	// Reset re-arms at a new deadline.
	tm3 := clk.NewTimer(time.Hour)
	if !tm3.Reset(time.Millisecond) {
		t.Fatal("Reset on pending timer returned false")
	}
	Park(clk)
	at := <-tm3.C() // fire token becomes this goroutine's run token
	if got := at.Sub(simEpoch); got != 3*time.Millisecond {
		t.Fatalf("reset timer fired at +%v, want +3ms (1ms past the 2ms now)", got)
	}
	Release(clk)
}

func TestSimAfterChannel(t *testing.T) {
	sim := NewSim(5)
	clk := sim.Clock()
	Hold(clk)
	ch := clk.After(time.Minute)
	Park(clk)
	at := <-ch // woken by the fire; its token becomes our run token
	if got := at.Sub(simEpoch); got != time.Minute {
		t.Fatalf("After fired at +%v, want +1m", got)
	}
	_ = sim.String() // smoke the debug formatter
	if busy, _ := sim.Stats(); busy != 1 {
		t.Fatalf("busy = %d, want 1 (this goroutine)", busy)
	}
	Release(clk)
}

func TestSimDoubleReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	sim := NewSim(6)
	Release(sim.Clock())
}

// TestSimDeterministicTrace runs the same multi-goroutine scenario twice with
// the same seed and requires identical event traces: wake order, virtual
// timestamps, advance counts. The per-step nanosecond term makes every
// cumulative deadline unique, so the trace cannot depend on how the runtime
// schedules timer creation.
func TestSimDeterministicTrace(t *testing.T) {
	run := func(seed int64) string {
		sim := NewSim(seed)
		clk := sim.Clock()
		Hold(clk)
		var mu sync.Mutex
		var trace []string
		var wg sync.WaitGroup
		for i := 0; i < 5; i++ {
			i := i
			wg.Add(1)
			Go(clk, func() {
				defer wg.Done()
				for step := 0; step < 3; step++ {
					ms := time.Duration(Hash64(uint64(seed), uint64(i), uint64(step))%1000) * time.Millisecond
					eps := time.Duration(i+1) * time.Duration(1<<(4*(step+1))) * time.Nanosecond
					clk.Sleep(ms + eps)
					mu.Lock()
					trace = append(trace, fmt.Sprintf("g%d.%d@%v", i, step, clk.Since(simEpoch)))
					mu.Unlock()
				}
			})
		}
		Release(clk)
		wg.Wait()
		return fmt.Sprintf("%v advances=%d now=%v", trace, sim.Advances(), sim.Now().Sub(simEpoch))
	}
	a, b := run(11), run(11)
	if a != b {
		t.Fatalf("same-seed traces differ:\n%s\n%s", a, b)
	}
	if c := run(12); c == a {
		t.Fatalf("different seeds produced identical traces: %s", c)
	}
}

func TestHash64(t *testing.T) {
	if Hash64(1, 2, 3) != Hash64(1, 2, 3) {
		t.Fatal("Hash64 not deterministic")
	}
	if Hash64(1, 2, 3) == Hash64(1, 2, 4) {
		t.Fatal("Hash64 collision on adjacent inputs")
	}
	if Hash64() == Hash64(0) {
		t.Fatal("Hash64 ignores a zero element")
	}
}

package vclock

import (
	"testing"
	"time"
)

// TestSimTimerEdgeCases pins the timer-state transitions the cluster's
// backoff and election paths lean on: zero/negative durations, Reset after a
// fire (tick read or unread), Reset after Stop, and both directions of the
// select race between a tick delivery and a competing stop signal. Each case
// runs on a fresh Sim so virtual timestamps are absolute.
func TestSimTimerEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, sim *Sim, clk Clock)
	}{
		{"after-zero-fires-at-now", func(t *testing.T, sim *Sim, clk Clock) {
			ch := clk.After(0)
			Park(clk)
			at := <-ch // fire token becomes our run token
			if got := at.Sub(simEpoch); got != 0 {
				t.Fatalf("After(0) fired at +%v, want +0", got)
			}
			if sim.Advances() != 1 {
				t.Fatalf("advances = %d, want 1 (a zero-delta fire still counts)", sim.Advances())
			}
		}},
		{"after-negative-clamps-to-zero", func(t *testing.T, sim *Sim, clk Clock) {
			ch := clk.After(-time.Second)
			Park(clk)
			at := <-ch
			if got := at.Sub(simEpoch); got != 0 {
				t.Fatalf("After(-1s) fired at +%v, want +0 (clamped)", got)
			}
		}},
		{"reset-after-fire-unread", func(t *testing.T, sim *Sim, clk Clock) {
			tm := clk.NewTimer(time.Millisecond)
			Park(clk) // quiescence: fires at +1ms, tick left in the channel
			Wake(clk)
			if tm.Reset(time.Millisecond) {
				t.Fatal("Reset on fired timer returned true")
			}
			// The stale +1ms tick must have been drained: the only tick left
			// to read is the re-armed one.
			Park(clk)
			at := <-tm.C()
			if got := at.Sub(simEpoch); got != 2*time.Millisecond {
				t.Fatalf("re-armed timer fired at +%v, want +2ms", got)
			}
		}},
		{"reset-after-fire-read", func(t *testing.T, sim *Sim, clk Clock) {
			tm := clk.NewTimer(time.Millisecond)
			Park(clk)
			at := <-tm.C()
			if got := at.Sub(simEpoch); got != time.Millisecond {
				t.Fatalf("timer fired at +%v, want +1ms", got)
			}
			if tm.Reset(2 * time.Millisecond) {
				t.Fatal("Reset on fired+read timer returned true")
			}
			Park(clk)
			at = <-tm.C()
			if got := at.Sub(simEpoch); got != 3*time.Millisecond {
				t.Fatalf("re-armed timer fired at +%v, want +3ms (2ms past the 1ms now)", got)
			}
		}},
		{"reset-after-stop-rearms", func(t *testing.T, sim *Sim, clk Clock) {
			tm := clk.NewTimer(time.Hour)
			if !tm.Stop() {
				t.Fatal("Stop on pending timer returned false")
			}
			if tm.Reset(time.Millisecond) {
				t.Fatal("Reset on stopped timer returned true")
			}
			Park(clk)
			at := <-tm.C()
			if got := at.Sub(simEpoch); got != time.Millisecond {
				t.Fatalf("reset-after-stop fired at +%v, want +1ms", got)
			}
			if _, pending := sim.Stats(); pending != 0 {
				t.Fatalf("pending timers = %d, want 0", pending)
			}
		}},
		{"stop-is-idempotent", func(t *testing.T, sim *Sim, clk Clock) {
			tm := clk.NewTimer(time.Hour)
			if !tm.Stop() {
				t.Fatal("first Stop returned false")
			}
			if tm.Stop() {
				t.Fatal("second Stop on an already-stopped timer returned true")
			}
			if _, pending := sim.Stats(); pending != 0 {
				t.Fatalf("pending timers = %d, want 0", pending)
			}
		}},
		{"stop-wins-delivery-race", func(t *testing.T, sim *Sim, clk Clock) {
			// The shutdown signal arrives before the timer deadline: the
			// select takes the stop arm and Stop cancels a pending timer.
			tm := clk.NewTimer(time.Hour)
			stop := make(chan struct{}, 1)
			clk.AfterFunc(time.Millisecond, func() {
				Hold(clk)
				stop <- struct{}{}
			})
			Park(clk)
			select {
			case <-stop:
				Wake(clk)
				Ack(clk)
			case <-tm.C():
				t.Fatal("timer arm won against an earlier stop signal")
			}
			if !tm.Stop() {
				t.Fatal("Stop on still-pending timer returned false")
			}
			if _, pending := sim.Stats(); pending != 0 {
				t.Fatalf("pending timers = %d, want 0", pending)
			}
			clk.Sleep(time.Millisecond) // time must still advance cleanly
		}},
		{"delivery-wins-stop-race", func(t *testing.T, sim *Sim, clk Clock) {
			// The tick is delivered and read before the shutdown signal: the
			// event loop sees one tick, then the stop, and the final Stop on
			// the fired timer reports false without stalling virtual time.
			tm := clk.NewTimer(time.Millisecond)
			stop := make(chan struct{}, 1)
			clk.AfterFunc(2*time.Millisecond, func() {
				Hold(clk)
				stop <- struct{}{}
			})
			ticks := 0
		loop:
			for {
				Park(clk)
				select {
				case <-stop:
					Wake(clk)
					Ack(clk)
					break loop
				case at := <-tm.C(): // fire token becomes our run token
					if got := at.Sub(simEpoch); got != time.Millisecond {
						t.Fatalf("tick at +%v, want +1ms", got)
					}
					ticks++
				}
			}
			if ticks != 1 {
				t.Fatalf("ticks = %d, want 1", ticks)
			}
			if tm.Stop() {
				t.Fatal("Stop on fired+read timer returned true")
			}
			clk.Sleep(time.Millisecond) // no orphaned token: must not hang
		}},
	}
	for i, tc := range cases {
		tc, seed := tc, int64(20+i)
		t.Run(tc.name, func(t *testing.T) {
			sim := NewSim(seed)
			clk := sim.Clock()
			Hold(clk)
			defer Release(clk)
			tc.run(t, sim, clk)
		})
	}
}

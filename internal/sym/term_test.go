package sym

import (
	"math/rand"
	"testing"

	"prognosticator/internal/lang"
	"prognosticator/internal/value"
)

func iv(name string, lo, hi int64) *Var { return NewInput(name, value.KindInt, lo, hi) }

func TestStringCanonical(t *testing.T) {
	a := iv("a", 0, 9)
	term := Bin{Op: lang.OpAdd, L: a, R: Const{V: value.Int(1)}}
	if got, want := term.String(), "(a + 1)"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	n := Not{T: Bin{Op: lang.OpLt, L: a, R: Const{V: value.Int(5)}}}
	if got, want := n.String(), "!((a < 5))"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestPivotIdentity(t *testing.T) {
	a := iv("a", 0, 9)
	p1 := NewPivot("DIST", []Term{a}, "lastOrderId")
	p2 := NewPivot("DIST", []Term{iv("a", 0, 9)}, "lastOrderId")
	p3 := NewPivot("DIST", []Term{a}, "tax")
	if p1.Name != p2.Name {
		t.Fatalf("same pivot gets different names: %q vs %q", p1.Name, p2.Name)
	}
	if p1.Name == p3.Name {
		t.Fatal("different fields must give different pivot names")
	}
	if p1.Pivot.ID() != "DIST[a].lastOrderId" {
		t.Fatalf("pivot ID = %q", p1.Pivot.ID())
	}
}

func TestVarsAndPivotDetection(t *testing.T) {
	a, b := iv("a", 0, 9), iv("b", 0, 9)
	pv := NewPivot("T", []Term{a}, "f")
	term := Bin{Op: lang.OpAdd, L: Bin{Op: lang.OpMul, L: a, R: b}, R: pv}
	vars := Vars(term, nil)
	names := map[string]bool{}
	for _, v := range vars {
		names[v.Name] = true
	}
	if !names["a"] || !names["b"] || !names[pv.Name] {
		t.Fatalf("Vars = %v", names)
	}
	if !HasPivot(term) {
		t.Fatal("term contains a pivot")
	}
	if HasPivot(Bin{Op: lang.OpAdd, L: a, R: b}) {
		t.Fatal("direct term misreported as pivot-dependent")
	}
	refs := Pivots(term)
	if len(refs) != 1 || refs[0].Field != "f" {
		t.Fatalf("Pivots = %v", refs)
	}
}

func TestNestedPivotVars(t *testing.T) {
	// GET(y) where y itself came from GET(input): pivot key contains a pivot.
	a := iv("a", 0, 9)
	inner := NewPivot("T", []Term{a}, "next")
	outer := NewPivot("U", []Term{inner}, "val")
	vars := Vars(outer, nil)
	found := map[string]bool{}
	for _, v := range vars {
		found[v.Name] = true
	}
	if !found[inner.Name] || !found[outer.Name] || !found["a"] {
		t.Fatalf("nested pivot vars not collected: %v", found)
	}
	if got := len(Pivots(outer)); got != 2 {
		t.Fatalf("Pivots len = %d, want 2", got)
	}
}

func TestEval(t *testing.T) {
	a := iv("a", 0, 100)
	term := Bin{Op: lang.OpGt, L: Bin{Op: lang.OpAdd, L: a, R: Const{V: value.Int(1)}}, R: Const{V: value.Int(10)}}
	lookup := func(v *Var) (value.Value, bool) {
		if v.Name == "a" {
			return value.Int(10), true
		}
		return value.Value{}, false
	}
	got, err := Eval(term, lookup)
	if err != nil {
		t.Fatal(err)
	}
	if !got.MustBool() {
		t.Fatal("10+1 > 10 should be true")
	}
	if _, err := Eval(iv("zz", 0, 1), lookup); err == nil {
		t.Fatal("missing binding must error")
	}
	neg, err := Eval(Not{T: Const{V: value.Bool(true)}}, lookup)
	if err != nil || neg.MustBool() {
		t.Fatalf("Not eval: %v, %v", neg, err)
	}
}

func TestFoldConstants(t *testing.T) {
	c := func(i int64) Term { return Const{V: value.Int(i)} }
	a := iv("a", 0, 9)
	cases := []struct {
		in   Term
		want string
	}{
		{Bin{Op: lang.OpAdd, L: c(2), R: c(3)}, "5"},
		{Bin{Op: lang.OpAdd, L: a, R: c(0)}, "a"},
		{Bin{Op: lang.OpAdd, L: c(0), R: a}, "a"},
		{Bin{Op: lang.OpSub, L: a, R: c(0)}, "a"},
		{Bin{Op: lang.OpMul, L: a, R: c(1)}, "a"},
		{Bin{Op: lang.OpMul, L: c(1), R: a}, "a"},
		{Bin{Op: lang.OpMul, L: a, R: c(0)}, "0"},
		{Bin{Op: lang.OpAnd, L: Const{V: value.Bool(true)}, R: Bin{Op: lang.OpLt, L: a, R: c(5)}}, "(a < 5)"},
		{Bin{Op: lang.OpAnd, L: Const{V: value.Bool(false)}, R: Bin{Op: lang.OpLt, L: a, R: c(5)}}, "false"},
		{Bin{Op: lang.OpOr, L: Bin{Op: lang.OpLt, L: a, R: c(5)}, R: Const{V: value.Bool(true)}}, "true"},
		{Bin{Op: lang.OpOr, L: Bin{Op: lang.OpLt, L: a, R: c(5)}, R: Const{V: value.Bool(false)}}, "(a < 5)"},
		{Bin{Op: lang.OpEq, L: a, R: a}, "true"},
		{Bin{Op: lang.OpNe, L: a, R: a}, "false"},
		{Not{T: Not{T: Bin{Op: lang.OpLt, L: a, R: c(1)}}}, "(a < 1)"},
		{Not{T: Const{V: value.Bool(false)}}, "true"},
		{Bin{Op: lang.OpLt, L: c(3), R: c(4)}, "true"},
	}
	for i, cse := range cases {
		if got := Fold(cse.in).String(); got != cse.want {
			t.Errorf("case %d: Fold(%s) = %s, want %s", i, cse.in.String(), got, cse.want)
		}
	}
}

func TestFoldIdempotent(t *testing.T) {
	a := iv("a", 0, 9)
	term := Bin{Op: lang.OpAdd, L: Bin{Op: lang.OpMul, L: a, R: Const{V: value.Int(1)}}, R: Const{V: value.Int(0)}}
	once := Fold(term)
	twice := Fold(once)
	if !Equal(once, twice) {
		t.Fatalf("Fold not idempotent: %s vs %s", once, twice)
	}
}

func TestNegateFlipsComparisons(t *testing.T) {
	a := iv("a", 0, 9)
	c5 := Const{V: value.Int(5)}
	cases := map[lang.Op]string{
		lang.OpLt: "(a >= 5)",
		lang.OpLe: "(a > 5)",
		lang.OpGt: "(a <= 5)",
		lang.OpGe: "(a < 5)",
		lang.OpEq: "(a != 5)",
		lang.OpNe: "(a == 5)",
	}
	for op, want := range cases {
		if got := Negate(Bin{Op: op, L: a, R: c5}).String(); got != want {
			t.Errorf("Negate(a %s 5) = %s, want %s", op, got, want)
		}
	}
	// non-comparison falls back to Not
	b := NewInput("b", value.KindBool, 0, 0)
	if got := Negate(b).String(); got != "!(b)" {
		t.Errorf("Negate(b) = %s", got)
	}
}

func TestEqualByRendering(t *testing.T) {
	a1 := iv("a", 0, 9)
	a2 := iv("a", 0, 9)
	if !Equal(Bin{Op: lang.OpAdd, L: a1, R: Const{V: value.Int(1)}},
		Bin{Op: lang.OpAdd, L: a2, R: Const{V: value.Int(1)}}) {
		t.Fatal("structurally identical terms must be Equal")
	}
	if Equal(a1, Const{V: value.Int(1)}) {
		t.Fatal("different terms must not be Equal")
	}
	if !Equal(nil, nil) || Equal(nil, a1) {
		t.Fatal("nil handling")
	}
}

func randTerm(r *rand.Rand, depth int) Term {
	if depth == 0 || r.Intn(3) == 0 {
		switch r.Intn(3) {
		case 0:
			return Const{V: value.Int(r.Int63n(20) - 10)}
		case 1:
			return iv(string(rune('a'+r.Intn(3))), 0, 9)
		default:
			return NewPivot("T", []Term{iv("k", 0, 9)}, string(rune('f'+r.Intn(2))))
		}
	}
	ops := []lang.Op{lang.OpAdd, lang.OpSub, lang.OpMul, lang.OpLt, lang.OpEq}
	return Bin{Op: ops[r.Intn(len(ops))], L: randTerm(r, depth-1), R: randTerm(r, depth-1)}
}

func TestPropCodecRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		term := randTerm(r, 3)
		data, err := MarshalTerm(term)
		if err != nil {
			t.Fatalf("marshal %s: %v", term, err)
		}
		back, err := UnmarshalTerm(data)
		if err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if !Equal(term, back) {
			t.Fatalf("round trip changed term: %s -> %s", term, back)
		}
		// pivot metadata must survive
		if HasPivot(term) != HasPivot(back) {
			t.Fatalf("pivot flag lost in round trip for %s", term)
		}
	}
}

func TestCodecNil(t *testing.T) {
	data, err := MarshalTerm(nil)
	if err != nil || string(data) != "null" {
		t.Fatalf("nil marshal = %s, %v", data, err)
	}
	back, err := UnmarshalTerm(data)
	if err != nil || back != nil {
		t.Fatalf("nil unmarshal = %v, %v", back, err)
	}
}

func TestCodecErrors(t *testing.T) {
	if _, err := UnmarshalTerm([]byte(`{"t":"mystery"}`)); err == nil {
		t.Fatal("unknown tag must error")
	}
	if _, err := UnmarshalTerm([]byte(`{garbage`)); err == nil {
		t.Fatal("malformed JSON must error")
	}
	if _, err := UnmarshalTerm([]byte(`{"t":"const"}`)); err == nil {
		t.Fatal("const without value must error")
	}
}

func TestPropFoldPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 500; i++ {
		term := randTerm(r, 3)
		binding := map[string]value.Value{}
		lookup := func(v *Var) (value.Value, bool) {
			if b, ok := binding[v.Name]; ok {
				return b, true
			}
			b := value.Int(r.Int63n(10))
			binding[v.Name] = b
			return b, true
		}
		orig, errO := Eval(term, lookup)
		folded, errF := Eval(Fold(term), lookup)
		if (errO == nil) != (errF == nil) {
			// Folding may only remove errors (e.g. eliminating an
			// unevaluated operand), never introduce them.
			if errF != nil {
				t.Fatalf("fold introduced error for %s: %v", term, errF)
			}
			continue
		}
		if errO == nil && !orig.Equal(folded) {
			t.Fatalf("fold changed value of %s: %v vs %v", term, orig, folded)
		}
	}
}

package sym

import (
	"encoding/json"
	"fmt"

	"prognosticator/internal/lang"
	"prognosticator/internal/value"
)

// termJSON is the wire form of a Term. Exactly one of the payload groups is
// set, selected by T.
type termJSON struct {
	T string `json:"t"` // "const" | "var" | "bin" | "not"

	V *value.Value `json:"v,omitempty"` // const

	Name   string     `json:"name,omitempty"` // var
	Kind   value.Kind `json:"kind,omitempty"`
	Lo     int64      `json:"lo,omitempty"`
	Hi     int64      `json:"hi,omitempty"`
	Origin Origin     `json:"origin,omitempty"`
	Pivot  *pivotJSON `json:"pivot,omitempty"`
	List   string     `json:"list,omitempty"`
	Idx    int        `json:"idx,omitempty"`

	Op lang.Op         `json:"op,omitempty"` // bin
	L  json.RawMessage `json:"l,omitempty"`
	R  json.RawMessage `json:"r,omitempty"`

	Inner json.RawMessage `json:"inner,omitempty"` // not
}

type pivotJSON struct {
	Table string            `json:"table"`
	Key   []json.RawMessage `json:"key"`
	Field string            `json:"field"`
}

// MarshalTerm encodes a term to JSON. Nil terms encode as JSON null.
func MarshalTerm(t Term) ([]byte, error) {
	if t == nil {
		return []byte("null"), nil
	}
	switch x := t.(type) {
	case Const:
		v := x.V
		return json.Marshal(termJSON{T: "const", V: &v})
	case *Var:
		tj := termJSON{T: "var", Name: x.Name, Kind: x.Kind, Lo: x.Lo, Hi: x.Hi, Origin: x.Origin, List: x.List, Idx: x.Idx}
		if x.Pivot != nil {
			pj := pivotJSON{Table: x.Pivot.Table, Field: x.Pivot.Field}
			for _, k := range x.Pivot.Key {
				raw, err := MarshalTerm(k)
				if err != nil {
					return nil, err
				}
				pj.Key = append(pj.Key, raw)
			}
			tj.Pivot = &pj
		}
		return json.Marshal(tj)
	case Bin:
		l, err := MarshalTerm(x.L)
		if err != nil {
			return nil, err
		}
		r, err := MarshalTerm(x.R)
		if err != nil {
			return nil, err
		}
		return json.Marshal(termJSON{T: "bin", Op: x.Op, L: l, R: r})
	case Not:
		inner, err := MarshalTerm(x.T)
		if err != nil {
			return nil, err
		}
		return json.Marshal(termJSON{T: "not", Inner: inner})
	default:
		return nil, fmt.Errorf("sym: marshal unknown term %T", t)
	}
}

// UnmarshalTerm decodes a term encoded by MarshalTerm. JSON null decodes to
// a nil term.
func UnmarshalTerm(data []byte) (Term, error) {
	if string(data) == "null" {
		return nil, nil
	}
	var tj termJSON
	if err := json.Unmarshal(data, &tj); err != nil {
		return nil, fmt.Errorf("sym: unmarshal term: %w", err)
	}
	switch tj.T {
	case "const":
		if tj.V == nil {
			return nil, fmt.Errorf("sym: const term without value")
		}
		return Const{V: *tj.V}, nil
	case "var":
		v := &Var{Name: tj.Name, Kind: tj.Kind, Lo: tj.Lo, Hi: tj.Hi, Origin: tj.Origin, List: tj.List, Idx: tj.Idx}
		if tj.Pivot != nil {
			ref := &PivotRef{Table: tj.Pivot.Table, Field: tj.Pivot.Field}
			for _, raw := range tj.Pivot.Key {
				k, err := UnmarshalTerm(raw)
				if err != nil {
					return nil, err
				}
				ref.Key = append(ref.Key, k)
			}
			v.Pivot = ref
		}
		return v, nil
	case "bin":
		l, err := UnmarshalTerm(tj.L)
		if err != nil {
			return nil, err
		}
		r, err := UnmarshalTerm(tj.R)
		if err != nil {
			return nil, err
		}
		return Bin{Op: tj.Op, L: l, R: r}, nil
	case "not":
		inner, err := UnmarshalTerm(tj.Inner)
		if err != nil {
			return nil, err
		}
		return Not{T: inner}, nil
	default:
		return nil, fmt.Errorf("sym: unmarshal unknown term tag %q", tj.T)
	}
}

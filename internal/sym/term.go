// Package sym implements symbolic scalar terms: the expressions stored in
// symbolic stores, path constraints and transaction profiles. A term is a
// function of transaction inputs (direct) and, possibly, of pivot items —
// values that must be read from the data store (indirect, §III-B of the
// paper).
package sym

import (
	"fmt"
	"strings"

	"prognosticator/internal/lang"
	"prognosticator/internal/value"
)

// Origin classifies a symbolic variable.
type Origin int

// Variable origins: transaction inputs vs pivot items read from the store.
const (
	OriginInput Origin = iota + 1
	OriginPivot
)

// Term is a symbolic scalar expression.
type Term interface {
	termNode()
	// String returns the canonical rendering; two terms are considered
	// identical iff their renderings are equal.
	String() string
}

// Const is a concrete scalar embedded in a symbolic expression.
type Const struct{ V value.Value }

// Var is a symbolic variable: either a transaction input (with its declared
// integer domain when Kind is int) or a pivot value read from the store.
type Var struct {
	// Name is globally unique within one analysis. Input variables use the
	// parameter name (possibly with an index suffix for list elements);
	// pivot variables use a canonical "pivot:" name derived from their key.
	Name   string
	Kind   value.Kind
	Lo, Hi int64 // int domain; meaningful only for input ints
	Origin Origin
	// Pivot identifies the store item and field this variable stands for;
	// non-nil iff Origin == OriginPivot.
	Pivot *PivotRef
	// List/Idx identify an element of a list-valued input parameter: when
	// List is non-empty this variable is element Idx of parameter List.
	// Runtime instantiation resolves it by indexing the concrete input.
	List string
	Idx  int
}

// NewListElem returns the input variable standing for element idx of the
// list parameter listName. elemKind/lo/hi describe the element domain.
func NewListElem(listName string, idx int, elemKind value.Kind, lo, hi int64) *Var {
	return &Var{
		Name: fmt.Sprintf("%s[%d]", listName, idx),
		Kind: elemKind, Lo: lo, Hi: hi,
		Origin: OriginInput, List: listName, Idx: idx,
	}
}

// PivotRef names a store item field whose value a dependent transaction must
// read before its key-set is known. Key parts are themselves terms (they may
// depend on inputs or on other pivots).
type PivotRef struct {
	Table string
	Key   []Term
	Field string
}

// ID returns the canonical identity of the pivot reference.
func (p *PivotRef) ID() string {
	parts := make([]string, len(p.Key))
	for i, k := range p.Key {
		parts[i] = k.String()
	}
	return fmt.Sprintf("%s[%s].%s", p.Table, strings.Join(parts, ","), p.Field)
}

// Bin applies a binary operator to two terms.
type Bin struct {
	Op   lang.Op
	L, R Term
}

// Not negates a boolean term.
type Not struct{ T Term }

func (Const) termNode() {}
func (*Var) termNode()  {}
func (Bin) termNode()   {}
func (Not) termNode()   {}

// String implements Term.
func (c Const) String() string { return c.V.String() }

// String implements Term.
func (v *Var) String() string { return v.Name }

// String implements Term.
func (b Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L.String(), b.Op, b.R.String())
}

// String implements Term.
func (n Not) String() string { return fmt.Sprintf("!(%s)", n.T.String()) }

// NewInput returns a fresh input variable.
func NewInput(name string, kind value.Kind, lo, hi int64) *Var {
	return &Var{Name: name, Kind: kind, Lo: lo, Hi: hi, Origin: OriginInput}
}

// NewPivot returns a pivot variable for the given store item field. The
// variable's name encodes the pivot identity, so two reads of the same item
// field yield interchangeable variables.
func NewPivot(table string, key []Term, field string) *Var {
	ref := &PivotRef{Table: table, Key: key, Field: field}
	return &Var{Name: "pivot:" + ref.ID(), Kind: value.KindInvalid, Origin: OriginPivot, Pivot: ref}
}

// Equal reports structural equality via canonical rendering.
func Equal(a, b Term) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.String() == b.String()
}

// IsConst reports whether t is a concrete constant, returning its value.
func IsConst(t Term) (value.Value, bool) {
	c, ok := t.(Const)
	if !ok {
		return value.Value{}, false
	}
	return c.V, true
}

// Vars appends all distinct variables of t to out (deduplicated by name) and
// returns the extended slice.
func Vars(t Term, out []*Var) []*Var {
	switch x := t.(type) {
	case Const:
		return out
	case *Var:
		for _, v := range out {
			if v.Name == x.Name {
				return out
			}
		}
		out = append(out, x)
		if x.Pivot != nil {
			for _, k := range x.Pivot.Key {
				out = Vars(k, out)
			}
		}
		return out
	case Bin:
		return Vars(x.R, Vars(x.L, out))
	case Not:
		return Vars(x.T, out)
	default:
		return out
	}
}

// HasPivot reports whether t depends (directly or through nested pivot keys)
// on any store value. A term without pivots is "direct" in the paper's
// terminology: computable from the transaction's input alone.
func HasPivot(t Term) bool {
	for _, v := range Vars(t, nil) {
		if v.Origin == OriginPivot {
			return true
		}
	}
	return false
}

// Pivots returns the distinct pivot references in t, in first-occurrence
// order.
func Pivots(t Term) []*PivotRef {
	var refs []*PivotRef
	for _, v := range Vars(t, nil) {
		if v.Pivot != nil {
			dup := false
			for _, r := range refs {
				if r.ID() == v.Pivot.ID() {
					dup = true
					break
				}
			}
			if !dup {
				refs = append(refs, v.Pivot)
			}
		}
	}
	return refs
}

// Eval computes the concrete value of t given a binding for every variable.
// The lookup receives the variable (input or pivot) and must return its
// concrete value; Eval fails if a binding is missing or a concrete operator
// application fails.
func Eval(t Term, lookup func(*Var) (value.Value, bool)) (value.Value, error) {
	switch x := t.(type) {
	case Const:
		return x.V, nil
	case *Var:
		v, ok := lookup(x)
		if !ok {
			return value.Value{}, fmt.Errorf("sym: no binding for %s", x.Name)
		}
		return v, nil
	case Bin:
		l, err := Eval(x.L, lookup)
		if err != nil {
			return value.Value{}, err
		}
		r, err := Eval(x.R, lookup)
		if err != nil {
			return value.Value{}, err
		}
		v, err := lang.EvalBin(x.Op, l, r)
		if err != nil {
			return value.Value{}, fmt.Errorf("sym: eval %s: %w", t.String(), err)
		}
		return v, nil
	case Not:
		v, err := Eval(x.T, lookup)
		if err != nil {
			return value.Value{}, err
		}
		b, ok := v.AsBool()
		if !ok {
			return value.Value{}, fmt.Errorf("sym: ! on %s", v.Kind())
		}
		return value.Bool(!b), nil
	default:
		return value.Value{}, fmt.Errorf("sym: unknown term %T", t)
	}
}

// Fold simplifies t: constant subexpressions are evaluated, and trivial
// boolean/arithmetic identities are applied. Folding is applied bottom-up
// once; it is idempotent.
func Fold(t Term) Term {
	switch x := t.(type) {
	case Bin:
		l, r := Fold(x.L), Fold(x.R)
		lc, lok := IsConst(l)
		rc, rok := IsConst(r)
		if lok && rok {
			if v, err := lang.EvalBin(x.Op, lc, rc); err == nil {
				return Const{V: v}
			}
			return Bin{Op: x.Op, L: l, R: r}
		}
		// identity / absorbing rules
		switch x.Op {
		case lang.OpAdd:
			if lok && isZero(lc) {
				return r
			}
			if rok && isZero(rc) {
				return l
			}
		case lang.OpSub:
			if rok && isZero(rc) {
				return l
			}
		case lang.OpMul:
			if lok && isOne(lc) {
				return r
			}
			if rok && isOne(rc) {
				return l
			}
			if (lok && isZero(lc)) || (rok && isZero(rc)) {
				return Const{V: value.Int(0)}
			}
		case lang.OpAnd:
			if lok {
				if b, _ := lc.AsBool(); !b {
					return Const{V: value.Bool(false)}
				}
				return r
			}
			if rok {
				if b, _ := rc.AsBool(); !b {
					return Const{V: value.Bool(false)}
				}
				return l
			}
		case lang.OpOr:
			if lok {
				if b, _ := lc.AsBool(); b {
					return Const{V: value.Bool(true)}
				}
				return r
			}
			if rok {
				if b, _ := rc.AsBool(); b {
					return Const{V: value.Bool(true)}
				}
				return l
			}
		case lang.OpEq:
			if Equal(l, r) {
				return Const{V: value.Bool(true)}
			}
		case lang.OpNe:
			if Equal(l, r) {
				return Const{V: value.Bool(false)}
			}
		}
		return Bin{Op: x.Op, L: l, R: r}
	case Not:
		inner := Fold(x.T)
		if c, ok := IsConst(inner); ok {
			if b, bok := c.AsBool(); bok {
				return Const{V: value.Bool(!b)}
			}
		}
		if n, ok := inner.(Not); ok {
			return n.T // double negation
		}
		return Not{T: inner}
	default:
		return t
	}
}

// Negate returns the folded logical negation of t.
func Negate(t Term) Term {
	// Prefer flipping comparisons to wrapping in Not: the solver extracts
	// more precise atoms from comparisons.
	if b, ok := t.(Bin); ok {
		var flipped lang.Op
		switch b.Op {
		case lang.OpEq:
			flipped = lang.OpNe
		case lang.OpNe:
			flipped = lang.OpEq
		case lang.OpLt:
			flipped = lang.OpGe
		case lang.OpLe:
			flipped = lang.OpGt
		case lang.OpGt:
			flipped = lang.OpLe
		case lang.OpGe:
			flipped = lang.OpLt
		default:
			return Fold(Not{T: t})
		}
		return Fold(Bin{Op: flipped, L: b.L, R: b.R})
	}
	return Fold(Not{T: t})
}

func isZero(v value.Value) bool { i, ok := v.AsInt(); return ok && i == 0 }
func isOne(v value.Value) bool  { i, ok := v.AsInt(); return ok && i == 1 }

package wal

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// frame builds one validly checksummed WAL frame around payload.
func frame(payload []byte) []byte {
	out := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], frameCRC(out[0:4], payload))
	copy(out[frameHeader:], payload)
	return out
}

// writeSegments lays seg0/seg1 down as raw segment files (skipping empty
// ones), bypassing the Log so the fuzzer controls every byte on disk.
func writeSegments(t *testing.T, dir string, segs ...[]byte) {
	t.Helper()
	for i, data := range segs {
		if len(data) == 0 {
			continue
		}
		if err := os.WriteFile(filepath.Join(dir, segmentName(i)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// checkRepaired asserts the invariant Repair promises: whatever the on-disk
// bytes were, the repaired log is a strictly replayable clean prefix that a
// reopened Log can extend.
func checkRepaired(t *testing.T, dir string, intactBefore int) {
	t.Helper()
	clean, err := Verify(dir)
	if err != nil {
		t.Fatalf("verify after repair: %v", err)
	}
	if clean.Truncated {
		t.Fatalf("log still corrupt after repair: %+v", clean)
	}
	if clean.Records != intactBefore {
		t.Fatalf("repair changed the intact prefix: %d records, want %d", clean.Records, intactBefore)
	}
	replayed := 0
	if err := Replay(dir, func([]byte) error { replayed++; return nil }); err != nil {
		t.Fatalf("replay after repair: %v", err)
	}
	if replayed != intactBefore {
		t.Fatalf("replayed %d records after repair, want %d", replayed, intactBefore)
	}
	// The repaired log must accept appends that extend the clean prefix.
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open after repair: %v", err)
	}
	marker := []byte("post-repair-append")
	if err := l.Append(marker); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var last []byte
	total := 0
	if err := Replay(dir, func(p []byte) error { total++; last = append([]byte(nil), p...); return nil }); err != nil {
		t.Fatalf("replay after append: %v", err)
	}
	if total != intactBefore+1 || !bytes.Equal(last, marker) {
		t.Fatalf("append did not extend the repaired prefix: %d records, last %q", total, last)
	}
}

// FuzzWALRepair feeds arbitrary bytes to the log scanner as two on-disk
// segments: Verify and Repair must never panic, and after Repair the log must
// be a clean, strictly replayable prefix (exactly the records Verify found
// intact) that a reopened Log can extend.
func FuzzWALRepair(f *testing.F) {
	valid := frame([]byte("alpha"))
	torn := frame([]byte("beta-record"))[:10]
	flipped := frame([]byte("gamma"))
	flipped[frameHeader+2] ^= 0x40
	var hugeLen [frameHeader]byte
	binary.LittleEndian.PutUint32(hugeLen[0:4], MaxRecordSize+1)
	f.Add([]byte{}, []byte{})
	f.Add(valid, []byte{})
	f.Add(append(append([]byte{}, valid...), torn...), valid)
	f.Add(flipped, valid)
	f.Add(hugeLen[:], []byte("trailing garbage"))
	f.Add(append(append([]byte{}, valid...), valid...), append(append([]byte{}, flipped...), valid...))
	f.Fuzz(func(t *testing.T, seg0, seg1 []byte) {
		dir := t.TempDir()
		writeSegments(t, dir, seg0, seg1)
		before, err := Verify(dir)
		if err != nil {
			t.Fatalf("verify: %v", err)
		}
		repaired, err := Repair(dir)
		if err != nil {
			t.Fatalf("repair: %v", err)
		}
		if repaired.Records != before.Records || repaired.Truncated != before.Truncated {
			t.Fatalf("repair scan disagrees with verify: %+v vs %+v", repaired, before)
		}
		checkRepaired(t, dir, before.Records)
	})
}

// TestWALRepairSeededCorruption is the deterministic CI face of the fuzz
// target: seeded random corruption (bit flips, truncation, garbage splice)
// over a real multi-segment log must always leave Repair with a strictly
// replayable prefix of the original records, in order.
func TestWALRepairSeededCorruption(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		dir := t.TempDir()
		l, err := Open(dir, Options{SegmentSize: 256})
		if err != nil {
			t.Fatal(err)
		}
		var payloads [][]byte
		for i := 0; i < 40; i++ {
			p := make([]byte, 16+rng.Intn(48))
			rng.Read(p)
			payloads = append(payloads, p)
			if err := l.Append(p); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		paths, err := SegmentPaths(dir)
		if err != nil || len(paths) == 0 {
			t.Fatalf("segments: %v, %v", paths, err)
		}
		victim := paths[rng.Intn(len(paths))]
		data, err := os.ReadFile(victim)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			continue
		}
		switch rng.Intn(3) {
		case 0: // bit flip
			data[rng.Intn(len(data))] ^= 1 << uint(rng.Intn(8))
		case 1: // torn tail
			data = data[:rng.Intn(len(data))]
		case 2: // garbage splice at a random point
			at := rng.Intn(len(data))
			junk := make([]byte, 1+rng.Intn(32))
			rng.Read(junk)
			data = append(append(append([]byte{}, data[:at]...), junk...), data[at:]...)
		}
		if err := os.WriteFile(victim, data, 0o644); err != nil {
			t.Fatal(err)
		}

		if _, err := Repair(dir); err != nil {
			t.Fatalf("seed %d: repair: %v", seed, err)
		}
		i := 0
		err = Replay(dir, func(p []byte) error {
			if i >= len(payloads) || !bytes.Equal(p, payloads[i]) {
				t.Fatalf("seed %d: record %d is not a prefix of the original log", seed, i)
			}
			i++
			return nil
		})
		if err != nil {
			t.Fatalf("seed %d: replay after repair: %v", seed, err)
		}
	}
}

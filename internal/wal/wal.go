// Package wal implements a segmented append-only write-ahead log with
// CRC-framed records. Replicas (internal/replica) log each committed batch's
// write-set before applying it, so a restarted replica can rebuild its store
// deterministically. Records survive crashes up to the last fully written
// frame; a torn tail is detected by CRC/length checks and truncated on
// recovery, never propagated.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// frame layout: 4-byte little-endian payload length, 4-byte CRC32C of the
// payload, payload bytes.
const frameHeader = 8

// DefaultSegmentSize is the rotation threshold.
const DefaultSegmentSize = 4 << 20

// MaxRecordSize bounds a single record; larger appends fail.
const MaxRecordSize = 16 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: closed")

// ErrTooLarge is returned when a record exceeds MaxRecordSize.
var ErrTooLarge = errors.New("wal: record too large")

// Log is a segmented write-ahead log. All methods are safe for concurrent
// use.
type Log struct {
	mu          sync.Mutex
	dir         string
	segmentSize int64
	cur         *os.File
	curIdx      int
	curSize     int64
	closed      bool
}

// Options configures Open.
type Options struct {
	// SegmentSize is the rotation threshold; 0 means DefaultSegmentSize.
	SegmentSize int64
}

// Open opens (or creates) a log in dir. Existing segments are preserved;
// new appends go to a fresh segment after the highest existing index.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentSize == 0 {
		opts.SegmentSize = DefaultSegmentSize
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	next := 0
	if len(segs) > 0 {
		next = segs[len(segs)-1] + 1
	}
	l := &Log{dir: dir, segmentSize: opts.SegmentSize, curIdx: next}
	if err := l.openSegment(); err != nil {
		return nil, err
	}
	return l, nil
}

func segmentName(idx int) string { return fmt.Sprintf("%08d.wal", idx) }

func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list segments: %w", err)
	}
	var out []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".wal") {
			continue
		}
		idx, err := strconv.Atoi(strings.TrimSuffix(name, ".wal"))
		if err != nil {
			continue
		}
		out = append(out, idx)
	}
	sort.Ints(out)
	return out, nil
}

func (l *Log) openSegment() error {
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(l.curIdx)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	l.cur = f
	l.curSize = 0
	return nil
}

// Append writes one record and flushes it to the OS. It returns after the
// frame is fully written; rotation happens transparently.
func (l *Log) Append(payload []byte) error {
	if len(payload) > MaxRecordSize {
		return fmt.Errorf("%w (%d bytes)", ErrTooLarge, len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := l.cur.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: append header: %w", err)
	}
	if _, err := l.cur.Write(payload); err != nil {
		return fmt.Errorf("wal: append payload: %w", err)
	}
	l.curSize += int64(frameHeader + len(payload))
	if l.curSize >= l.segmentSize {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Sync forces the current segment to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.cur.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

func (l *Log) rotateLocked() error {
	if err := l.cur.Close(); err != nil {
		return fmt.Errorf("wal: rotate close: %w", err)
	}
	l.curIdx++
	return l.openSegment()
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.cur.Close(); err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}

// Replay invokes fn for every intact record across all segments in order.
// A corrupt or torn frame ends replay of that segment silently (the torn
// tail is the expected crash artifact); corruption in the middle of a
// segment also stops that segment's replay — the CRC cannot distinguish the
// two. Replay may run on an open log but only observes completed appends.
func Replay(dir string, fn func(payload []byte) error) error {
	segs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) || errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	for _, idx := range segs {
		if err := replaySegment(filepath.Join(dir, segmentName(idx)), fn); err != nil {
			return err
		}
	}
	return nil
}

func replaySegment(path string, fn func(payload []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: replay open: %w", err)
	}
	defer func() { _ = f.Close() }()
	var hdr [frameHeader]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return nil // clean EOF or torn header: stop this segment
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if n > MaxRecordSize {
			return nil // corrupt length
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return nil // torn payload
		}
		if crc32.Checksum(payload, crcTable) != crc {
			return nil // corrupt payload
		}
		if err := fn(payload); err != nil {
			return err
		}
	}
}

// Package wal implements a segmented append-only write-ahead log with
// CRC-framed records. Replicas (internal/replica) log each committed batch's
// write-set before applying it, so a restarted replica can rebuild its store
// deterministically. Records survive crashes up to the last fully written
// frame; a torn or corrupted tail is detected by per-record checksums
// (covering both the length header and the payload) and truncated on
// recovery, never propagated. Repair physically removes the damaged suffix
// so a reopened log continues from a verified-clean prefix.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// frame layout: 4-byte little-endian payload length, 4-byte CRC32C covering
// the length field and the payload, payload bytes. Including the length in
// the checksum means a bit flip in the header cannot redirect the reader
// into interpreting garbage as a validly framed record.
const frameHeader = 8

// DefaultSegmentSize is the rotation threshold.
const DefaultSegmentSize = 4 << 20

// MaxRecordSize bounds a single record; larger appends fail.
const MaxRecordSize = 16 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameCRC computes the record checksum over the length header and payload.
func frameCRC(lenField []byte, payload []byte) uint32 {
	crc := crc32.Checksum(lenField, crcTable)
	return crc32.Update(crc, crcTable, payload)
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: closed")

// ErrTooLarge is returned when a record exceeds MaxRecordSize.
var ErrTooLarge = errors.New("wal: record too large")

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncOS (the default) leaves flushing to the OS page cache: a process
	// crash loses nothing, a machine crash may lose the unsynced tail.
	SyncOS SyncPolicy = iota
	// SyncAlways fsyncs after every append — what consensus state needs
	// before communicating a promise.
	SyncAlways
	// SyncInterval fsyncs every Options.SyncEvery appends (group
	// durability: bounded loss window, amortized fsync cost).
	SyncInterval
)

// String returns the policy name.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	default:
		return "os"
	}
}

// Log is a segmented write-ahead log. All methods are safe for concurrent
// use.
type Log struct {
	mu          sync.Mutex
	dir         string
	segmentSize int64
	cur         *os.File
	curIdx      int
	curSize     int64
	closed      bool

	sync        SyncPolicy
	syncEvery   int
	sinceSync   int
	syncedCount int64
}

// Options configures Open.
type Options struct {
	// SegmentSize is the rotation threshold; 0 means DefaultSegmentSize.
	SegmentSize int64
	// Sync selects the fsync policy (default SyncOS).
	Sync SyncPolicy
	// SyncEvery is the append interval for SyncInterval; 0 means 32.
	SyncEvery int
}

// Open opens (or creates) a log in dir. Existing segments are preserved;
// new appends go to a fresh segment after the highest existing index.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentSize == 0 {
		opts.SegmentSize = DefaultSegmentSize
	}
	if opts.SyncEvery == 0 {
		opts.SyncEvery = 32
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	next := 0
	if len(segs) > 0 {
		next = segs[len(segs)-1] + 1
	}
	l := &Log{
		dir: dir, segmentSize: opts.SegmentSize, curIdx: next,
		sync: opts.Sync, syncEvery: opts.SyncEvery,
	}
	if err := l.openSegment(); err != nil {
		return nil, err
	}
	return l, nil
}

func segmentName(idx int) string { return fmt.Sprintf("%08d.wal", idx) }

func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list segments: %w", err)
	}
	var out []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".wal") {
			continue
		}
		idx, err := strconv.Atoi(strings.TrimSuffix(name, ".wal"))
		if err != nil {
			continue
		}
		out = append(out, idx)
	}
	sort.Ints(out)
	return out, nil
}

// SegmentPaths returns the absolute paths of all segments in dir, in log
// order. A missing directory yields an empty list.
func SegmentPaths(dir string) ([]string, error) {
	segs, err := listSegments(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	out := make([]string, len(segs))
	for i, idx := range segs {
		out[i] = filepath.Join(dir, segmentName(idx))
	}
	return out, nil
}

func (l *Log) openSegment() error {
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(l.curIdx)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	l.cur = f
	l.curSize = 0
	return nil
}

// Append writes one record and flushes it to the OS; the configured
// SyncPolicy decides whether it is also fsynced. It returns after the frame
// is fully written; rotation happens transparently.
func (l *Log) Append(payload []byte) error {
	if len(payload) > MaxRecordSize {
		return fmt.Errorf("%w (%d bytes)", ErrTooLarge, len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], frameCRC(hdr[0:4], payload))
	if _, err := l.cur.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: append header: %w", err)
	}
	if _, err := l.cur.Write(payload); err != nil {
		return fmt.Errorf("wal: append payload: %w", err)
	}
	l.curSize += int64(frameHeader + len(payload))
	l.sinceSync++
	if l.sync == SyncAlways || (l.sync == SyncInterval && l.sinceSync >= l.syncEvery) {
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	if l.curSize >= l.segmentSize {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Sync forces the current segment to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if err := l.cur.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.sinceSync = 0
	l.syncedCount++
	return nil
}

// Syncs returns the number of fsync calls issued so far (for tests and
// policy diagnostics).
func (l *Log) Syncs() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncedCount
}

func (l *Log) rotateLocked() error {
	if err := l.cur.Close(); err != nil {
		return fmt.Errorf("wal: rotate close: %w", err)
	}
	l.curIdx++
	return l.openSegment()
}

// Rotate forces a segment rotation: the current segment is closed and new
// appends go to a fresh segment. Snapshotting callers rotate before writing
// checkpoint records so the records land in a segment that survives a
// subsequent DropSegmentsBelow of the pre-checkpoint history.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.rotateLocked()
}

// CurrentSegment returns the index of the segment new appends go to.
func (l *Log) CurrentSegment() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.curIdx
}

// DropSegmentsBelow removes every segment with index < idx — the log-
// compaction primitive. The caller must have made the retained suffix
// self-contained first (write a checkpoint, Rotate, then drop below the new
// current segment): replay only ever sees segments in index order, so a
// crash between the checkpoint append and the drop replays old records
// followed by the checkpoint that supersedes them, never a gap.
func (l *Log) DropSegmentsBelow(idx int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if s < idx && s != l.curIdx {
			if err := os.Remove(filepath.Join(l.dir, segmentName(s))); err != nil {
				return fmt.Errorf("wal: drop segment: %w", err)
			}
		}
	}
	return nil
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.cur.Close(); err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}

// Stats describes the outcome of a verification, replay or repair scan.
type Stats struct {
	// Records is the number of intact records before any corruption point.
	Records int
	// Truncated reports whether a torn or corrupted record was found.
	Truncated bool
	// LostBytes counts the bytes at and after the corruption point, across
	// all segments (what a Repair would — or did — discard).
	LostBytes int64
	// BadSegment is the segment index holding the first corruption
	// (-1 when the log is clean).
	BadSegment int
	// BadOffset is the byte offset of the first corrupt frame within
	// BadSegment (-1 when the log is clean).
	BadOffset int64
}

// Replay invokes fn for every intact record across all segments in order.
// Replay stops at the FIRST torn or corrupted record and does not resume in
// later segments: everything after a corruption point is treated as lost,
// never silently skipped over (a mid-log gap would otherwise replay an
// inconsistent suffix). Use ReplayAll for the corruption details, and Repair
// to physically truncate the damaged suffix before appending new records.
// Replay may run on an open log but only observes completed appends.
func Replay(dir string, fn func(payload []byte) error) error {
	_, err := ReplayAll(dir, fn)
	return err
}

// ReplayAll is Replay returning scan statistics: how many records were
// intact and how much data (if any) follows the first corruption point. A
// missing directory is an empty log, not an error.
func ReplayAll(dir string, fn func(payload []byte) error) (Stats, error) {
	return scan(dir, fn)
}

// Verify scans the log without invoking any callback, locating the first
// corruption point if one exists.
func Verify(dir string) (Stats, error) {
	return scan(dir, nil)
}

// Repair truncates the log at the first corrupt or torn record: the damaged
// segment is cut back to its last intact frame and all later segments are
// removed. After Repair, Replay sees a clean log and a reopened Log appends
// records that extend the verified prefix. The returned Stats describe what
// was discarded. A clean (or missing) log is left untouched.
func Repair(dir string) (Stats, error) {
	st, err := Verify(dir)
	if err != nil || !st.Truncated {
		return st, err
	}
	if err := os.Truncate(filepath.Join(dir, segmentName(st.BadSegment)), st.BadOffset); err != nil {
		return st, fmt.Errorf("wal: repair truncate: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return st, err
	}
	for _, idx := range segs {
		if idx > st.BadSegment {
			if err := os.Remove(filepath.Join(dir, segmentName(idx))); err != nil {
				return st, fmt.Errorf("wal: repair remove segment: %w", err)
			}
		}
	}
	return st, nil
}

func scan(dir string, fn func(payload []byte) error) (Stats, error) {
	st := Stats{BadSegment: -1, BadOffset: -1}
	segs, err := listSegments(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return st, nil
		}
		return st, err
	}
	for _, idx := range segs {
		path := filepath.Join(dir, segmentName(idx))
		if st.Truncated {
			// Everything after the corruption point is lost.
			if info, err := os.Stat(path); err == nil {
				st.LostBytes += info.Size()
			}
			continue
		}
		records, badOff, size, err := scanSegment(path, fn)
		st.Records += records
		if err != nil {
			return st, err
		}
		if badOff >= 0 {
			st.Truncated = true
			st.BadSegment = idx
			st.BadOffset = badOff
			st.LostBytes += size - badOff
		}
	}
	return st, nil
}

// scanSegment replays intact frames from path. It returns the record count,
// the offset of the first corrupt frame (-1 if the segment is clean), and
// the segment size. Only callback errors are returned as err.
func scanSegment(path string, fn func(payload []byte) error) (records int, badOff int64, size int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, -1, 0, fmt.Errorf("wal: replay open: %w", err)
	}
	defer func() { _ = f.Close() }()
	info, err := f.Stat()
	if err != nil {
		return 0, -1, 0, fmt.Errorf("wal: replay stat: %w", err)
	}
	size = info.Size()
	var off int64
	var hdr [frameHeader]byte
	for {
		if _, rerr := io.ReadFull(f, hdr[:]); rerr != nil {
			if rerr == io.EOF {
				return records, -1, size, nil // clean segment end
			}
			return records, off, size, nil // torn header
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if length > MaxRecordSize {
			return records, off, size, nil // corrupt length
		}
		payload := make([]byte, length)
		if _, rerr := io.ReadFull(f, payload); rerr != nil {
			return records, off, size, nil // torn payload
		}
		if frameCRC(hdr[0:4], payload) != crc {
			return records, off, size, nil // corrupt frame
		}
		off += int64(frameHeader) + int64(length)
		records++
		if fn != nil {
			if err := fn(payload); err != nil {
				return records, -1, size, err
			}
		}
	}
}

package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	return l
}

func collect(t *testing.T, dir string) [][]byte {
	t.Helper()
	var out [][]byte
	if err := Replay(dir, func(p []byte) error {
		cp := make([]byte, len(p))
		copy(cp, p)
		out = append(out, cp)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendReplay(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	want := [][]byte{[]byte("one"), []byte("two"), []byte(""), []byte("four")}
	for _, rec := range want {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	got := collect(t, dir)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRotationAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{SegmentSize: 64})
	var want [][]byte
	for i := 0; i < 20; i++ {
		rec := []byte(fmt.Sprintf("record-%02d-padding-padding", i))
		want = append(want, rec)
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected rotation, got %d segments", len(segs))
	}
	got := collect(t, dir)
	if len(got) != len(want) {
		t.Fatalf("replayed %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestReopenAppendsNewSegment(t *testing.T) {
	dir := t.TempDir()
	l1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l1.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := l1.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := openT(t, dir, Options{})
	if err := l2.Append([]byte("second")); err != nil {
		t.Fatal(err)
	}
	got := collect(t, dir)
	if len(got) != 2 || string(got[0]) != "first" || string(got[1]) != "second" {
		t.Fatalf("replay after reopen = %q", got)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("intact")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("to-be-torn")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last frame: chop 3 bytes off the file.
	path := filepath.Join(dir, segmentName(0))
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	got := collect(t, dir)
	if len(got) != 1 || string(got[0]) != "intact" {
		t.Fatalf("replay of torn log = %q", got)
	}
}

func TestCorruptPayloadStopsSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []string{"aaaa", "bbbb", "cccc"} {
		if err := l.Append([]byte(rec)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the second record's payload.
	path := filepath.Join(dir, segmentName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := frameHeader + 4 + frameHeader // into second payload
	data[off] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got := collect(t, dir)
	if len(got) != 1 || string(got[0]) != "aaaa" {
		t.Fatalf("replay of corrupted log = %q", got)
	}
}

func TestAppendAfterClose(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close = %v", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after close = %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close = %v", err)
	}
}

func TestTooLargeRecord(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	if err := l.Append(make([]byte, MaxRecordSize+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized append = %v", err)
	}
}

func TestCorruptionStopsReplayAcrossSegments(t *testing.T) {
	// Corruption in an EARLIER segment must stop replay entirely: records in
	// later segments are unreachable until Repair, never replayed over a gap.
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := l.Append([]byte(fmt.Sprintf("record-%d-padding-padding", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("need >=3 segments, got %d", len(segs))
	}
	// Flip a payload byte in the second segment.
	path := filepath.Join(dir, segmentName(segs[1]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeader+2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got := collect(t, dir)
	if len(got) != 1 {
		t.Fatalf("replay past corruption: got %d records, want 1", len(got))
	}
	st, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Truncated || st.BadSegment != segs[1] || st.BadOffset != 0 {
		t.Fatalf("verify = %+v", st)
	}
	if st.LostBytes == 0 {
		t.Fatal("verify reported no lost bytes")
	}
}

func TestRepairTruncatesCorruptSuffix(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []string{"aaaa", "bbbb", "cccc"} {
		if err := l.Append([]byte(rec)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the second record, then repair.
	path := filepath.Join(dir, segmentName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := frameHeader + 4 + frameHeader
	data[off] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Repair(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Truncated || st.Records != 1 || st.LostBytes != 2*(frameHeader+4) {
		t.Fatalf("repair = %+v", st)
	}
	// The repaired log replays cleanly and new appends extend the prefix.
	l2 := openT(t, dir, Options{})
	if err := l2.Append([]byte("dddd")); err != nil {
		t.Fatal(err)
	}
	got := collect(t, dir)
	if len(got) != 2 || string(got[0]) != "aaaa" || string(got[1]) != "dddd" {
		t.Fatalf("replay after repair = %q", got)
	}
	st2, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Truncated {
		t.Fatalf("repaired log still corrupt: %+v", st2)
	}
}

func TestCRCCoversLengthHeader(t *testing.T) {
	// A bit flip in the length field alone must be detected even when the
	// payload bytes it frames happen to be readable.
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("abcdefgh")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("ijklmnop")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segmentName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0x04 // length 8 -> 12: would swallow the next frame's header
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, dir); len(got) != 0 {
		t.Fatalf("corrupt length field yielded records: %q", got)
	}
}

func TestSyncPolicies(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncAlways})
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Syncs(); got != 3 {
		t.Fatalf("SyncAlways issued %d fsyncs, want 3", got)
	}

	l2 := openT(t, t.TempDir(), Options{Sync: SyncInterval, SyncEvery: 2})
	for i := 0; i < 5; i++ {
		if err := l2.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := l2.Syncs(); got != 2 {
		t.Fatalf("SyncInterval(2) issued %d fsyncs after 5 appends, want 2", got)
	}

	l3 := openT(t, t.TempDir(), Options{})
	if err := l3.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := l3.Syncs(); got != 0 {
		t.Fatalf("SyncOS issued %d fsyncs, want 0", got)
	}
}

func TestSegmentPaths(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{SegmentSize: 16})
	for i := 0; i < 4; i++ {
		if err := l.Append([]byte("0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	paths, err := SegmentPaths(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 2 {
		t.Fatalf("segment paths = %v", paths)
	}
	// Missing dir: empty, no error.
	paths, err = SegmentPaths(filepath.Join(dir, "nope"))
	if err != nil || len(paths) != 0 {
		t.Fatalf("missing dir = %v, %v", paths, err)
	}
}

func TestReplayCallbackError(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	if err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop")
	err := Replay(dir, func([]byte) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("replay error = %v", err)
	}
}

func TestReplayEmptyAndMissingDir(t *testing.T) {
	if err := Replay(t.TempDir(), func([]byte) error { return errors.New("no") }); err != nil {
		t.Fatalf("empty dir replay = %v", err)
	}
	// Missing directory is not an error (fresh replica).
	if err := Replay(filepath.Join(t.TempDir(), "nope"), func([]byte) error { return nil }); err != nil {
		t.Fatalf("missing dir replay = %v", err)
	}
}

func TestIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bogus.wal"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	l := openT(t, dir, Options{})
	if err := l.Append([]byte("real")); err != nil {
		t.Fatal(err)
	}
	got := collect(t, dir)
	// bogus.wal has no valid frames; notes.txt skipped entirely.
	if len(got) != 1 || string(got[0]) != "real" {
		t.Fatalf("replay with foreign files = %q", got)
	}
}

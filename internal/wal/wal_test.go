package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	return l
}

func collect(t *testing.T, dir string) [][]byte {
	t.Helper()
	var out [][]byte
	if err := Replay(dir, func(p []byte) error {
		cp := make([]byte, len(p))
		copy(cp, p)
		out = append(out, cp)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendReplay(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	want := [][]byte{[]byte("one"), []byte("two"), []byte(""), []byte("four")}
	for _, rec := range want {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	got := collect(t, dir)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRotationAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{SegmentSize: 64})
	var want [][]byte
	for i := 0; i < 20; i++ {
		rec := []byte(fmt.Sprintf("record-%02d-padding-padding", i))
		want = append(want, rec)
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected rotation, got %d segments", len(segs))
	}
	got := collect(t, dir)
	if len(got) != len(want) {
		t.Fatalf("replayed %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestReopenAppendsNewSegment(t *testing.T) {
	dir := t.TempDir()
	l1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l1.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := l1.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := openT(t, dir, Options{})
	if err := l2.Append([]byte("second")); err != nil {
		t.Fatal(err)
	}
	got := collect(t, dir)
	if len(got) != 2 || string(got[0]) != "first" || string(got[1]) != "second" {
		t.Fatalf("replay after reopen = %q", got)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("intact")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("to-be-torn")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last frame: chop 3 bytes off the file.
	path := filepath.Join(dir, segmentName(0))
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	got := collect(t, dir)
	if len(got) != 1 || string(got[0]) != "intact" {
		t.Fatalf("replay of torn log = %q", got)
	}
}

func TestCorruptPayloadStopsSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []string{"aaaa", "bbbb", "cccc"} {
		if err := l.Append([]byte(rec)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the second record's payload.
	path := filepath.Join(dir, segmentName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := frameHeader + 4 + frameHeader // into second payload
	data[off] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got := collect(t, dir)
	if len(got) != 1 || string(got[0]) != "aaaa" {
		t.Fatalf("replay of corrupted log = %q", got)
	}
}

func TestAppendAfterClose(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close = %v", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after close = %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close = %v", err)
	}
}

func TestTooLargeRecord(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	if err := l.Append(make([]byte, MaxRecordSize+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized append = %v", err)
	}
}

func TestReplayCallbackError(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	if err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop")
	err := Replay(dir, func([]byte) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("replay error = %v", err)
	}
}

func TestReplayEmptyAndMissingDir(t *testing.T) {
	if err := Replay(t.TempDir(), func([]byte) error { return errors.New("no") }); err != nil {
		t.Fatalf("empty dir replay = %v", err)
	}
	// Missing directory is not an error (fresh replica).
	if err := Replay(filepath.Join(t.TempDir(), "nope"), func([]byte) error { return nil }); err != nil {
		t.Fatalf("missing dir replay = %v", err)
	}
}

func TestIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bogus.wal"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	l := openT(t, dir, Options{})
	if err := l.Append([]byte("real")); err != nil {
		t.Fatal(err)
	}
	got := collect(t, dir)
	// bogus.wal has no valid frames; notes.txt skipped entirely.
	if len(got) != 1 || string(got[0]) != "real" {
		t.Fatalf("replay with foreign files = %q", got)
	}
}

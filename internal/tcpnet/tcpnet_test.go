package tcpnet

import (
	"fmt"
	"testing"
	"time"

	"prognosticator/internal/raft"
)

type ping struct{ N int }

func init() {
	Register(ping{})
	Register(raft.WireTypes()...)
}

func recvWithin(t *testing.T, e *Endpoint, d time.Duration) (any, bool) {
	t.Helper()
	select {
	case m := <-e.Inbox():
		return m.Payload, true
	case <-time.After(d):
		return nil, false
	}
}

func TestSendReceiveOverTCP(t *testing.T) {
	dir := NewDirectory()
	a, err := Listen("a", "127.0.0.1:0", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen("b", "127.0.0.1:0", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	a.Send("b", ping{N: 42})
	got, ok := recvWithin(t, b, 2*time.Second)
	if !ok {
		t.Fatal("message not delivered over TCP")
	}
	if p, ok := got.(ping); !ok || p.N != 42 {
		t.Fatalf("payload = %#v", got)
	}
	// Reply flows back over a fresh connection.
	b.Send("a", ping{N: 43})
	got, ok = recvWithin(t, a, 2*time.Second)
	if !ok || got.(ping).N != 43 {
		t.Fatalf("reply = %#v, %v", got, ok)
	}
}

// TestSetFaultLossAndDelay pins the injected-fault hooks: full loss drops
// every send before it reaches a socket, injected delay still delivers, and
// clearing faults restores immediate delivery. The counters attribute every
// outcome.
func TestSetFaultLossAndDelay(t *testing.T) {
	dir := NewDirectory()
	a, err := Listen("a", "127.0.0.1:0", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen("b", "127.0.0.1:0", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Certain loss: nothing arrives, every send is counted as dropped.
	a.SetFault(1.0, 0, 0, 7)
	for i := 0; i < 5; i++ {
		a.Send("b", ping{N: i})
	}
	if _, ok := recvWithin(t, b, 100*time.Millisecond); ok {
		t.Fatal("message delivered despite loss probability 1.0")
	}
	if st := a.Stats(); st.DroppedLoss != 5 || st.Sent != 0 {
		t.Fatalf("stats after full loss = %+v, want 5 dropped, 0 sent", st)
	}

	// Delay only: the message arrives after the injected latency.
	a.SetFault(0, 5*time.Millisecond, 10*time.Millisecond, 7)
	start := time.Now()
	a.Send("b", ping{N: 99})
	got, ok := recvWithin(t, b, 2*time.Second)
	if !ok || got.(ping).N != 99 {
		t.Fatalf("delayed message = %#v, %v", got, ok)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("delivered in %v, want >= 5ms injected delay", elapsed)
	}
	if st := a.Stats(); st.Delayed != 1 || st.Sent != 1 {
		t.Fatalf("stats after delay = %+v, want 1 delayed, 1 sent", st)
	}

	// Cleared: back to immediate delivery, counters unchanged.
	a.SetFault(0, 0, 0, 0)
	a.Send("b", ping{N: 100})
	if got, ok := recvWithin(t, b, 2*time.Second); !ok || got.(ping).N != 100 {
		t.Fatalf("post-clear message = %#v, %v", got, ok)
	}
	if st := a.Stats(); st.DroppedLoss != 5 || st.Delayed != 1 || st.Sent != 2 {
		t.Fatalf("final stats = %+v", st)
	}
}

// TestSetFaultSeededLossDeterministic pins that the same seed yields the
// same drop pattern, so chaos runs over real sockets replay identically.
func TestSetFaultSeededLossDeterministic(t *testing.T) {
	pattern := func(seed int64) []bool {
		dir := NewDirectory()
		a, err := Listen("a", "127.0.0.1:0", dir)
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		b, err := Listen("b", "127.0.0.1:0", dir)
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		a.SetFault(0.5, 0, 0, seed)
		var out []bool
		last := int64(0)
		for i := 0; i < 16; i++ {
			a.Send("b", ping{N: i})
			st := a.Stats()
			out = append(out, st.DroppedLoss > last)
			last = st.DroppedLoss
		}
		return out
	}
	p1, p2 := pattern(42), pattern(42)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("drop patterns diverge at send %d under the same seed", i)
		}
	}
	diff := false
	for i, v := range pattern(43) {
		if v != p1[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical drop patterns (rng not seeded?)")
	}
}

func TestSendToUnknownPeerDropped(t *testing.T) {
	dir := NewDirectory()
	a, err := Listen("a", "127.0.0.1:0", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Send("ghost", ping{N: 1}) // must not panic or block
}

func TestSendAfterPeerClosedRedials(t *testing.T) {
	dir := NewDirectory()
	a, err := Listen("a", "127.0.0.1:0", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b1, err := Listen("b", "127.0.0.1:0", dir)
	if err != nil {
		t.Fatal(err)
	}
	a.Send("b", ping{N: 1})
	if _, ok := recvWithin(t, b1, 2*time.Second); !ok {
		t.Fatal("first message lost")
	}
	b1.Close()
	// b restarts on a new port; the stale connection fails, and a later
	// send re-dials via the directory.
	b2, err := Listen("b", "127.0.0.1:0", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	deadline := time.Now().Add(5 * time.Second)
	delivered := false
	for time.Now().Before(deadline) && !delivered {
		a.Send("b", ping{N: 2})
		select {
		case m := <-b2.Inbox():
			if m.Payload.(ping).N == 2 {
				delivered = true
			}
		case <-time.After(100 * time.Millisecond):
		}
	}
	if !delivered {
		t.Fatal("send never recovered after peer restart")
	}
}

// TestRaftOverTCP runs a real three-node Raft cluster over loopback TCP:
// election, replication, identical apply sequences.
func TestRaftOverTCP(t *testing.T) {
	dir := NewDirectory()
	ids := []string{"r0", "r1", "r2"}
	cfg := raft.Config{
		ElectionTimeoutMin: 100 * time.Millisecond,
		ElectionTimeoutMax: 200 * time.Millisecond,
		HeartbeatInterval:  30 * time.Millisecond,
	}
	eps := map[string]*Endpoint{}
	nodes := map[string]*raft.Node{}
	for i, id := range ids {
		ep, err := Listen(id, "127.0.0.1:0", dir)
		if err != nil {
			t.Fatal(err)
		}
		eps[id] = ep
		n := raft.NewNodeWithTransport(id, ids, ep, cfg, int64(i+1))
		nodes[id] = n
		n.Start()
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
		for _, ep := range eps {
			ep.Close()
		}
	}()

	var leader *raft.Node
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && leader == nil {
		for _, n := range nodes {
			if role, _ := n.Status(); role == raft.Leader {
				leader = n
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if leader == nil {
		t.Fatal("no leader elected over TCP")
	}
	var lastIdx uint64
	for i := 0; i < 5; i++ {
		idx, _, ok := leader.Propose([]byte(fmt.Sprintf("tcp-%d", i)))
		if !ok {
			t.Fatal("propose rejected")
		}
		lastIdx = idx
	}
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for _, n := range nodes {
			if n.CommitIndex() < lastIdx {
				all = false
			}
		}
		if all {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for id, n := range nodes {
		if n.CommitIndex() < lastIdx {
			t.Fatalf("node %s commit index %d < %d", id, n.CommitIndex(), lastIdx)
		}
		for i := 0; i < 5; i++ {
			select {
			case c := <-n.Apply():
				want := fmt.Sprintf("tcp-%d", i)
				if string(c.Cmd) != want {
					t.Fatalf("node %s applied %q at %d, want %q", id, c.Cmd, i, want)
				}
			case <-time.After(2 * time.Second):
				t.Fatalf("node %s missing applied entry %d", id, i)
			}
		}
	}
}

// Package tcpnet implements the raft.Transport interface over real TCP
// sockets with gob-framed messages. Where memnet simulates a network
// in-process for fault-injection tests, tcpnet carries the same envelope
// (memnet.Message) over loopback or LAN sockets, letting replicas run as
// genuinely separate networked processes.
//
// Concrete payload types must be registered with Register before use (for
// Raft: Register(raft.WireTypes()...)).
package tcpnet

import (
	"encoding/gob"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"prognosticator/internal/memnet"
	"prognosticator/internal/vclock"
)

// Register registers payload types with the gob codec; call once at startup
// on every process, with the same types in the same order.
func Register(types ...any) {
	for _, t := range types {
		gob.Register(t)
	}
}

// Directory maps endpoint names to dialable addresses. For single-process
// tests, NewDirectory + Listen fill it automatically; distributed
// deployments construct it from configuration.
type Directory struct {
	mu    sync.RWMutex
	addrs map[string]string
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{addrs: map[string]string{}}
}

// Set records the address of a named endpoint.
func (d *Directory) Set(name, addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.addrs[name] = addr
}

// Lookup resolves a name.
func (d *Directory) Lookup(name string) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	a, ok := d.addrs[name]
	return a, ok
}

// Stats counts one endpoint's send-path outcomes. Sent + DroppedLoss equals
// the Send calls that passed the closed/lookup checks; InboxOverflow counts
// inbound messages dropped because the receive queue was full — the
// backpressure signal a soak asserts stays at zero (or is at least bounded)
// under admission control.
type Stats struct {
	Sent          int64
	DroppedLoss   int64
	Delayed       int64
	InboxOverflow int64
}

// Endpoint is one TCP-backed transport endpoint. It implements
// raft.Transport.
type Endpoint struct {
	name  string
	dir   *Directory
	ln    net.Listener
	inbox chan memnet.Message

	mu       sync.Mutex
	outgoing map[string]*gob.Encoder
	conns    []net.Conn
	closed   bool
	wg       sync.WaitGroup

	// Injected fault state (chaos over real sockets): outbound messages are
	// dropped with probability lossProb and delayed uniformly in
	// [delayMin, delayMax], driven by a seeded rng for reproducible runs.
	lossProb float64
	delayMin time.Duration
	delayMax time.Duration
	rng      *rand.Rand
	clk      vclock.Clock
	stats    Stats
}

// SetClock sets the time source used for injected delays (default: wall
// clock). The sockets themselves always run in real time; only the fault
// timers are virtualized.
func (e *Endpoint) SetClock(clk vclock.Clock) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.clk = vclock.Or(clk)
}

// Listen binds a new endpoint on addr ("127.0.0.1:0" for an ephemeral port)
// and records its actual address in the directory.
func Listen(name, addr string, dir *Directory) (*Endpoint, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen %s: %w", name, err)
	}
	e := &Endpoint{
		name: name, dir: dir, ln: ln,
		inbox:    make(chan memnet.Message, 1024),
		outgoing: map[string]*gob.Encoder{},
	}
	dir.Set(name, ln.Addr().String())
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// Addr returns the endpoint's bound address.
func (e *Endpoint) Addr() string { return e.ln.Addr().String() }

// Inbox implements raft.Transport.
func (e *Endpoint) Inbox() <-chan memnet.Message { return e.inbox }

// SetFault configures injected loss and delay on this endpoint's outbound
// path (chaos testing over real sockets; memnet has the equivalent fabric-
// wide switches). loss is a drop probability in [0,1]; deliveries are
// delayed uniformly in [min, max] when max > 0. The seed makes the fault
// pattern reproducible; SetFault(0, 0, 0, 0) clears all faults.
func (e *Endpoint) SetFault(loss float64, min, max time.Duration, seed int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.lossProb = loss
	e.delayMin, e.delayMax = min, max
	if loss > 0 || max > 0 {
		e.rng = rand.New(rand.NewSource(seed))
	} else {
		e.rng = nil
	}
}

// Stats returns a snapshot of this endpoint's send/receive outcome counters.
func (e *Endpoint) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Send implements raft.Transport: best-effort datagram semantics (dial on
// demand, drop on any error — Raft tolerates loss). Injected faults
// (SetFault) apply before the socket write: lost messages are never encoded,
// delayed messages are written from a timer goroutine.
func (e *Endpoint) Send(to string, payload any) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	if e.rng != nil {
		if e.lossProb > 0 && e.rng.Float64() < e.lossProb {
			e.stats.DroppedLoss++
			e.mu.Unlock()
			return
		}
		if e.delayMax > 0 {
			d := e.delayMin + time.Duration(e.rng.Int63n(int64(e.delayMax-e.delayMin)+1))
			e.stats.Delayed++
			clk := vclock.Or(e.clk)
			e.mu.Unlock()
			clk.AfterFunc(d, func() { e.sendNow(to, payload) })
			return
		}
	}
	e.sendLocked(to, payload)
	e.mu.Unlock()
}

// sendNow is the delayed-delivery path: re-checks closed under the lock.
func (e *Endpoint) sendNow(to string, payload any) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.sendLocked(to, payload)
}

// sendLocked writes one message to the wire; e.mu must be held.
func (e *Endpoint) sendLocked(to string, payload any) {
	enc, ok := e.outgoing[to]
	if !ok {
		addr, found := e.dir.Lookup(to)
		if !found {
			return
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return
		}
		enc = gob.NewEncoder(conn)
		e.outgoing[to] = enc
		e.conns = append(e.conns, conn)
	}
	msg := memnet.Message{From: e.name, To: to, Payload: payload}
	if err := enc.Encode(&msg); err != nil {
		// Connection broken: forget it so the next Send re-dials.
		delete(e.outgoing, to)
		return
	}
	e.stats.Sent++
}

// Close shuts the endpoint down.
func (e *Endpoint) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	_ = e.ln.Close()
	for _, c := range e.conns {
		_ = c.Close()
	}
	e.mu.Unlock()
	e.wg.Wait()
}

func (e *Endpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			_ = conn.Close()
			return
		}
		e.conns = append(e.conns, conn)
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(conn)
	}
}

func (e *Endpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	dec := gob.NewDecoder(conn)
	for {
		var msg memnet.Message
		if err := dec.Decode(&msg); err != nil {
			_ = conn.Close()
			return
		}
		select {
		case e.inbox <- msg:
		default:
			// Full inbox drops, like memnet: transports are lossy by
			// contract and Raft retries. The counter is the backpressure
			// signal — a soak asserts it stays bounded under admission
			// control.
			e.mu.Lock()
			e.stats.InboxOverflow++
			e.mu.Unlock()
		}
	}
}

package solver

import (
	"testing"
	"testing/quick"

	"prognosticator/internal/lang"
	"prognosticator/internal/sym"
	"prognosticator/internal/value"
)

// testing/quick properties of the path-constraint solver.

// atomFromTriple builds a comparison atom a*x + b OP c from quick-generated
// small integers.
func atomFromTriple(x *sym.Var, a int8, b int8, c int8, opSel uint8) sym.Term {
	ops := []lang.Op{lang.OpEq, lang.OpNe, lang.OpLt, lang.OpLe, lang.OpGt, lang.OpGe}
	op := ops[int(opSel)%len(ops)]
	lhs := sym.Bin{
		Op: lang.OpAdd,
		L:  sym.Bin{Op: lang.OpMul, L: sym.Const{V: value.Int(int64(a))}, R: x},
		R:  sym.Const{V: value.Int(int64(b))},
	}
	return sym.Bin{Op: op, L: lhs, R: sym.Const{V: value.Int(int64(c))}}
}

// TestQuickSolverAgreesWithEnumeration: for single-variable linear systems
// over a small domain, the solver must agree exactly with brute force.
func TestQuickSolverAgreesWithEnumeration(t *testing.T) {
	x := sym.NewInput("x", value.KindInt, -6, 6)
	f := func(a1, b1, c1, a2, b2, c2 int8, op1, op2 uint8) bool {
		atoms := []sym.Term{
			atomFromTriple(x, a1%5, b1%7, c1%7, op1),
			atomFromTriple(x, a2%5, b2%7, c2%7, op2),
		}
		want := Unsat
		for v := int64(-6); v <= 6; v++ {
			ok := true
			for _, at := range atoms {
				got, err := sym.Eval(at, func(*sym.Var) (value.Value, bool) {
					return value.Int(v), true
				})
				if err != nil || !got.MustBool() {
					ok = false
					break
				}
			}
			if ok {
				want = Sat
				break
			}
		}
		return Check(atoms) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNegationExcludesModels: a constraint and its negation can never
// both be unsatisfiable over a non-empty domain.
func TestQuickNegationExcludesModels(t *testing.T) {
	x := sym.NewInput("x", value.KindInt, 0, 20)
	f := func(a, b, c int8, op uint8) bool {
		atom := atomFromTriple(x, a%5, b%9, c%9, op)
		pos := Check([]sym.Term{atom})
		neg := Check([]sym.Term{sym.Negate(atom)})
		return !(pos == Unsat && neg == Unsat)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickConjunctionMonotone: adding constraints can never turn Unsat into
// Sat.
func TestQuickConjunctionMonotone(t *testing.T) {
	x := sym.NewInput("x", value.KindInt, -4, 9)
	f := func(a1, b1, c1, a2, b2, c2 int8, op1, op2 uint8) bool {
		one := []sym.Term{atomFromTriple(x, a1%4, b1%6, c1%6, op1)}
		two := append(one, atomFromTriple(x, a2%4, b2%6, c2%6, op2))
		r1, r2 := Check(one), Check(two)
		if r1 == Unsat && r2 == Sat {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Package solver decides satisfiability of path constraints — conjunctions
// of boolean symbolic terms — over transaction inputs with declared bounded
// domains. It plays the role of the constraint solver behind the paper's SE
// engine (§II): the symbolic executor discards symbolic states whose path
// constraint is unsatisfiable.
//
// The decision procedure is exact for the constraint class our IR produces:
// comparisons between linear integer expressions over bounded input
// variables, boolean combinations thereof, and (dis)equalities over string
// variables. Anything beyond that degrades to Unknown, which callers treat
// as satisfiable (the path is explored — sound for reachability, possibly
// wasteful, never wrong).
package solver

import (
	"sort"

	"prognosticator/internal/lang"
	"prognosticator/internal/sym"
	"prognosticator/internal/value"
)

// Result is a three-valued satisfiability verdict.
type Result int

// Verdicts. Unknown means the solver could not decide; callers must treat it
// as possibly satisfiable.
const (
	Unsat Result = iota + 1
	Sat
	Unknown
)

// String returns the verdict name.
func (r Result) String() string {
	switch r {
	case Unsat:
		return "unsat"
	case Sat:
		return "sat"
	default:
		return "unknown"
	}
}

// unboundedLo/Hi bound variables with no declared domain (pivot values).
const (
	unboundedLo = -(int64(1) << 40)
	unboundedHi = int64(1) << 40
)

// searchBudget caps the number of assignments the backtracking search may
// enumerate before giving up with Unknown.
const searchBudget = 200_000

// propagationRounds caps interval-propagation sweeps.
const propagationRounds = 16

// Check reports whether the conjunction of the given boolean terms is
// satisfiable.
func Check(constraints []sym.Term) Result {
	s := &state{domains: map[string]iv{}, vars: map[string]*sym.Var{}}
	// Split conjunctions and fold.
	var atoms []sym.Term
	for _, c := range constraints {
		atoms = s.flatten(sym.Fold(c), atoms)
	}
	for _, a := range atoms {
		if cv, ok := sym.IsConst(a); ok {
			if b, bok := cv.AsBool(); bok {
				if !b {
					return Unsat
				}
				continue
			}
			return Unknown // non-bool constraint: ill-typed
		}
		s.atoms = append(s.atoms, a)
		for _, v := range sym.Vars(a, nil) {
			s.addVar(v)
		}
	}
	if len(s.atoms) == 0 {
		return Sat
	}
	if r := s.stringReasoning(); r != Sat {
		return r
	}
	if !s.propagate() {
		return Unsat
	}
	return s.search()
}

// iv is a closed integer interval.
type iv struct{ lo, hi int64 }

func (i iv) empty() bool { return i.lo > i.hi }

func (i iv) size() int64 {
	if i.empty() {
		return 0
	}
	return i.hi - i.lo + 1
}

type state struct {
	atoms   []sym.Term
	vars    map[string]*sym.Var
	domains map[string]iv
	// strEq / strNe hold string (dis)equality atoms handled separately.
	strEq [][2]strOperand
	strNe [][2]strOperand
}

type strOperand struct {
	isConst bool
	c       string // const payload
	v       string // var name
}

func (s *state) flatten(t sym.Term, out []sym.Term) []sym.Term {
	if b, ok := t.(sym.Bin); ok && b.Op == lang.OpAnd {
		return s.flatten(b.R, s.flatten(b.L, out))
	}
	return append(out, t)
}

func (s *state) addVar(v *sym.Var) {
	if _, ok := s.vars[v.Name]; ok {
		return
	}
	s.vars[v.Name] = v
	switch {
	case v.Kind == value.KindBool:
		s.domains[v.Name] = iv{0, 1}
	case v.Kind == value.KindInt && v.Origin == sym.OriginInput:
		s.domains[v.Name] = iv{v.Lo, v.Hi}
	case v.Kind == value.KindString:
		// string variables are handled by stringReasoning; give them a
		// placeholder unit domain so the integer machinery ignores them.
		s.domains[v.Name] = iv{0, 0}
	default:
		s.domains[v.Name] = iv{unboundedLo, unboundedHi}
	}
}

// stringReasoning handles (dis)equality atoms whose operands are string
// constants or string variables, using union-find over equalities. It
// removes those atoms from s.atoms. Returns Unsat on contradiction, Unknown
// if a string appears in an unsupported position, Sat otherwise.
func (s *state) stringReasoning() Result {
	var rest []sym.Term
	for _, a := range s.atoms {
		b, ok := a.(sym.Bin)
		if !ok || (b.Op != lang.OpEq && b.Op != lang.OpNe) {
			rest = append(rest, a)
			continue
		}
		lo, lok := strOp(b.L)
		ro, rok := strOp(b.R)
		if !lok || !rok {
			// Not a string atom; keep for integer machinery.
			rest = append(rest, a)
			continue
		}
		if b.Op == lang.OpEq {
			s.strEq = append(s.strEq, [2]strOperand{lo, ro})
		} else {
			s.strNe = append(s.strNe, [2]strOperand{lo, ro})
		}
	}
	s.atoms = rest
	if len(s.strEq) == 0 && len(s.strNe) == 0 {
		return Sat
	}
	parent := map[string]string{}
	var find func(x string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b string) { parent[find(a)] = find(b) }
	id := func(o strOperand) string {
		if o.isConst {
			return "c:" + o.c
		}
		return "v:" + o.v
	}
	for _, eq := range s.strEq {
		union(id(eq[0]), id(eq[1]))
	}
	// Two distinct constants in one class -> contradiction.
	classConst := map[string]string{}
	for _, eq := range s.strEq {
		for _, o := range eq {
			if o.isConst {
				root := find(id(o))
				if prev, ok := classConst[root]; ok && prev != o.c {
					return Unsat
				}
				classConst[root] = o.c
			}
		}
	}
	for _, ne := range s.strNe {
		if find(id(ne[0])) == find(id(ne[1])) {
			return Unsat
		}
	}
	return Sat
}

func strOp(t sym.Term) (strOperand, bool) {
	switch x := t.(type) {
	case sym.Const:
		if sv, ok := x.V.AsString(); ok {
			return strOperand{isConst: true, c: sv}, true
		}
	case *sym.Var:
		if x.Kind == value.KindString {
			return strOperand{v: x.Name}, true
		}
	}
	return strOperand{}, false
}

// linear form: sum(coeffs[name]*name) + k
type linear struct {
	coeffs map[string]int64
	k      int64
}

// linearize converts an integer term to linear form; ok is false for
// non-linear terms (Mul of two variables, Div, Mod, field projections, ...).
func linearize(t sym.Term) (linear, bool) {
	switch x := t.(type) {
	case sym.Const:
		i, ok := x.V.AsInt()
		if !ok {
			return linear{}, false
		}
		return linear{k: i}, true
	case *sym.Var:
		return linear{coeffs: map[string]int64{x.Name: 1}}, true
	case sym.Bin:
		switch x.Op {
		case lang.OpAdd, lang.OpSub:
			l, lok := linearize(x.L)
			r, rok := linearize(x.R)
			if !lok || !rok {
				return linear{}, false
			}
			sign := int64(1)
			if x.Op == lang.OpSub {
				sign = -1
			}
			out := linear{coeffs: map[string]int64{}, k: l.k + sign*r.k}
			for n, c := range l.coeffs {
				out.coeffs[n] += c
			}
			for n, c := range r.coeffs {
				out.coeffs[n] += sign * c
			}
			return out, true
		case lang.OpMul:
			l, lok := linearize(x.L)
			r, rok := linearize(x.R)
			if !lok || !rok {
				return linear{}, false
			}
			// constant * linear only
			if len(l.coeffs) == 0 {
				out := linear{coeffs: map[string]int64{}, k: l.k * r.k}
				for n, c := range r.coeffs {
					out.coeffs[n] = l.k * c
				}
				return out, true
			}
			if len(r.coeffs) == 0 {
				out := linear{coeffs: map[string]int64{}, k: l.k * r.k}
				for n, c := range l.coeffs {
					out.coeffs[n] = r.k * c
				}
				return out, true
			}
			return linear{}, false
		default:
			return linear{}, false
		}
	default:
		return linear{}, false
	}
}

// atomLinear extracts "lin OP 0" from a comparison atom, normalizing
// L OP R to (L-R) OP 0. ok is false when either side is non-linear.
func atomLinear(a sym.Term) (linear, lang.Op, bool) {
	b, ok := a.(sym.Bin)
	if !ok || !b.Op.IsComparison() {
		return linear{}, 0, false
	}
	l, lok := linearize(b.L)
	r, rok := linearize(b.R)
	if !lok || !rok {
		return linear{}, 0, false
	}
	diff := linear{coeffs: map[string]int64{}, k: l.k - r.k}
	for n, c := range l.coeffs {
		diff.coeffs[n] += c
	}
	for n, c := range r.coeffs {
		diff.coeffs[n] -= c
	}
	for n, c := range diff.coeffs {
		if c == 0 {
			delete(diff.coeffs, n)
		}
	}
	return diff, b.Op, true
}

// propagate tightens variable domains using the linear atoms. It returns
// false when some domain becomes empty (Unsat).
func (s *state) propagate() bool {
	type linAtom struct {
		lin linear
		op  lang.Op
	}
	var lins []linAtom
	for _, a := range s.atoms {
		if lin, op, ok := atomLinear(a); ok && op != lang.OpNe {
			lins = append(lins, linAtom{lin, op})
		}
	}
	for round := 0; round < propagationRounds; round++ {
		changed := false
		for _, la := range lins {
			// For each variable x with coefficient c: c*x + rest OP 0.
			// Bound c*x by the extreme values of rest over current domains.
			for name, c := range la.lin.coeffs {
				restLo, restHi, ok := s.restBounds(la.lin, name)
				if !ok {
					continue
				}
				d := s.domains[name]
				nd := tighten(d, c, restLo, restHi, la.op)
				if nd.empty() {
					return false
				}
				if nd != d {
					s.domains[name] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return true
}

// restBounds computes min/max of (lin - coeff(name)*name) over current
// domains.
func (s *state) restBounds(l linear, except string) (int64, int64, bool) {
	lo, hi := l.k, l.k
	for name, c := range l.coeffs {
		if name == except {
			continue
		}
		d, ok := s.domains[name]
		if !ok {
			return 0, 0, false
		}
		a, b := c*d.lo, c*d.hi
		if a > b {
			a, b = b, a
		}
		lo += a
		hi += b
	}
	return lo, hi, true
}

// tighten returns the subset of d for x such that c*x + rest OP 0 can hold
// for some rest in [restLo, restHi].
func tighten(d iv, c, restLo, restHi int64, op lang.Op) iv {
	if c == 0 {
		return d
	}
	// c*x OP -rest for some rest in range  =>  c*x OP' bound
	switch op {
	case lang.OpEq:
		// c*x in [-restHi, -restLo]
		return intersectScaled(d, c, -restHi, -restLo)
	case lang.OpLt:
		// c*x < -rest for some rest => c*x <= -restLo - 1
		return intersectScaled(d, c, minInt64, -restLo-1)
	case lang.OpLe:
		return intersectScaled(d, c, minInt64, -restLo)
	case lang.OpGt:
		return intersectScaled(d, c, -restHi+1, maxInt64)
	case lang.OpGe:
		return intersectScaled(d, c, -restHi, maxInt64)
	default:
		return d
	}
}

const (
	minInt64 = -(int64(1) << 62)
	maxInt64 = int64(1) << 62
)

// intersectScaled intersects domain d of x with {x : c*x in [lo, hi]}.
func intersectScaled(d iv, c, lo, hi int64) iv {
	if c < 0 {
		c, lo, hi = -c, -hi, -lo
	}
	// x in [ceil(lo/c), floor(hi/c)]
	xlo := divCeil(lo, c)
	xhi := divFloor(hi, c)
	if xlo > d.lo {
		d.lo = xlo
	}
	if xhi < d.hi {
		d.hi = xhi
	}
	return d
}

func divCeil(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a > 0) == (b > 0) {
		q++
	}
	return q
}

func divFloor(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a > 0) != (b > 0) {
		q--
	}
	return q
}

// search enumerates assignments over the (propagated) domains, evaluating
// all atoms. It returns Sat on the first satisfying assignment, Unsat when
// the full space is exhausted, Unknown when the space exceeds the budget.
func (s *state) search() Result {
	// Deterministic variable order: smallest domain first, then name.
	names := make([]string, 0, len(s.domains))
	for n := range s.domains {
		if s.vars[n].Kind == value.KindString {
			continue // strings were fully handled by stringReasoning
		}
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		di, dj := s.domains[names[i]].size(), s.domains[names[j]].size()
		if di != dj {
			return di < dj
		}
		return names[i] < names[j]
	})
	budget := int64(searchBudget)
	space := int64(1)
	for _, n := range names {
		sz := s.domains[n].size()
		if sz == 0 {
			return Unsat
		}
		space *= sz
		if space > budget || space < 0 {
			return Unknown
		}
	}
	assign := map[string]value.Value{}
	lookup := func(v *sym.Var) (value.Value, bool) {
		val, ok := assign[v.Name]
		return val, ok
	}
	// evalAtoms evaluates all atoms whose variables are fully assigned;
	// returns false if any evaluates to false (prune), true otherwise.
	evalReady := func() bool {
		for _, a := range s.atoms {
			ready := true
			for _, v := range sym.Vars(a, nil) {
				if v.Kind == value.KindString {
					// Non-(dis)equality string atoms are out of scope;
					// treat the atom as satisfiable rather than guessing.
					ready = false
					break
				}
				if _, ok := assign[v.Name]; !ok {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			got, err := sym.Eval(a, lookup)
			if err != nil {
				return false // treat evaluation failure as falsifying
			}
			if b, ok := got.AsBool(); !ok || !b {
				return false
			}
		}
		return true
	}
	var dfs func(i int) bool
	dfs = func(i int) bool {
		if i == len(names) {
			return evalReady()
		}
		n := names[i]
		d := s.domains[n]
		for x := d.lo; x <= d.hi; x++ {
			if s.vars[n].Kind == value.KindBool {
				assign[n] = value.Bool(x == 1)
			} else {
				assign[n] = value.Int(x)
			}
			if evalReady() && dfs(i+1) {
				return true
			}
		}
		delete(assign, n)
		return false
	}
	if dfs(0) {
		return Sat
	}
	return Unsat
}

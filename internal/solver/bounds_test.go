package solver

import (
	"testing"

	"prognosticator/internal/lang"
	"prognosticator/internal/sym"
	"prognosticator/internal/value"
)

func TestTermBoundsLinear(t *testing.T) {
	x := sym.NewInput("x", value.KindInt, 0, 9)
	y := sym.NewInput("y", value.KindInt, -5, 5)
	cases := []struct {
		name   string
		t      sym.Term
		lo, hi int64
		ok     bool
	}{
		{"const", sym.Const{V: value.Int(7)}, 7, 7, true},
		{"var", x, 0, 9, true},
		{"add", sym.Bin{Op: lang.OpAdd, L: x, R: y}, -5, 14, true},
		{"sub", sym.Bin{Op: lang.OpSub, L: x, R: y}, -5, 14, true},
		{"scaled", sym.Bin{Op: lang.OpMul, L: sym.Const{V: value.Int(-3)}, R: x}, -27, 0, true},
		{"x-x", sym.Bin{Op: lang.OpSub, L: x, R: x}, 0, 0, true},
		{"nonlinear", sym.Bin{Op: lang.OpMul, L: x, R: y}, 0, 0, false},
		{"div", sym.Bin{Op: lang.OpDiv, L: x, R: sym.Const{V: value.Int(2)}}, 0, 0, false},
		{"bool", sym.NewInput("b", value.KindBool, 0, 0), 0, 1, true},
		{"string", sym.NewInput("s", value.KindString, 0, 0), 0, 0, false},
	}
	for _, c := range cases {
		lo, hi, ok := TermBounds(c.t)
		if ok != c.ok || (ok && (lo != c.lo || hi != c.hi)) {
			t.Errorf("%s: TermBounds = [%d, %d], %v; want [%d, %d], %v", c.name, lo, hi, ok, c.lo, c.hi, c.ok)
		}
	}
}

func TestTermBoundsPivotUnbounded(t *testing.T) {
	piv := sym.NewPivot("T", []sym.Term{sym.Const{V: value.Int(1)}}, "n")
	if _, _, ok := TermBounds(piv); ok {
		t.Errorf("pivot term should have no derivable bounds")
	}
	mixed := sym.Bin{Op: lang.OpAdd, L: sym.NewInput("x", value.KindInt, 0, 9), R: piv}
	if _, _, ok := TermBounds(mixed); ok {
		t.Errorf("term mixing input and pivot should have no derivable bounds")
	}
}

package solver

import (
	"prognosticator/internal/sym"
	"prognosticator/internal/value"
)

// TermBounds computes a conservative interval [lo, hi] containing every
// value an integer term can take over the declared domains of its input
// variables. ok is false when the term is non-linear, mentions a pivot or an
// undomained variable, or is not an integer expression — callers must then
// treat the term as unbounded.
//
// This is the solver's interval query used by the lint abstract interpreter:
// the same linear form the satisfiability machinery normalizes constraints
// into, evaluated at the domain extremes of each variable.
func TermBounds(t sym.Term) (lo, hi int64, ok bool) {
	lin, lok := linearize(sym.Fold(t))
	if !lok {
		return 0, 0, false
	}
	lo, hi = lin.k, lin.k
	if len(lin.coeffs) == 0 {
		return lo, hi, true
	}
	vars := map[string]*sym.Var{}
	for _, v := range sym.Vars(t, nil) {
		vars[v.Name] = v
	}
	for name, c := range lin.coeffs {
		v, found := vars[name]
		if !found {
			return 0, 0, false
		}
		var d iv
		switch {
		case v.Kind == value.KindBool:
			d = iv{0, 1}
		case v.Kind == value.KindInt && v.Origin == sym.OriginInput:
			if v.Lo > v.Hi {
				return 0, 0, false
			}
			d = iv{v.Lo, v.Hi}
		default:
			// Pivot or undomained variable: unbounded.
			return 0, 0, false
		}
		a, b := c*d.lo, c*d.hi
		if a > b {
			a, b = b, a
		}
		lo += a
		hi += b
	}
	return lo, hi, true
}

package solver

import (
	"math/rand"
	"testing"

	"prognosticator/internal/lang"
	"prognosticator/internal/sym"
	"prognosticator/internal/value"
)

func v(name string, lo, hi int64) *sym.Var { return sym.NewInput(name, value.KindInt, lo, hi) }
func c(i int64) sym.Term                   { return sym.Const{V: value.Int(i)} }
func cs(s string) sym.Term                 { return sym.Const{V: value.Str(s)} }
func bin(op lang.Op, l, r sym.Term) sym.Term {
	return sym.Bin{Op: op, L: l, R: r}
}

func TestEmptyConjunctionSat(t *testing.T) {
	if got := Check(nil); got != Sat {
		t.Fatalf("Check(nil) = %v", got)
	}
}

func TestConstantConstraints(t *testing.T) {
	if got := Check([]sym.Term{sym.Const{V: value.Bool(true)}}); got != Sat {
		t.Fatalf("true => %v", got)
	}
	if got := Check([]sym.Term{sym.Const{V: value.Bool(false)}}); got != Unsat {
		t.Fatalf("false => %v", got)
	}
	if got := Check([]sym.Term{c(3)}); got != Unknown {
		t.Fatalf("ill-typed constant => %v", got)
	}
}

func TestSingleVariableIntervals(t *testing.T) {
	x := v("x", 0, 10)
	cases := []struct {
		atoms []sym.Term
		want  Result
	}{
		{[]sym.Term{bin(lang.OpGt, x, c(5))}, Sat},
		{[]sym.Term{bin(lang.OpGt, x, c(10))}, Unsat},
		{[]sym.Term{bin(lang.OpGe, x, c(10))}, Sat},
		{[]sym.Term{bin(lang.OpLt, x, c(0))}, Unsat},
		{[]sym.Term{bin(lang.OpLe, x, c(0))}, Sat},
		{[]sym.Term{bin(lang.OpEq, x, c(7))}, Sat},
		{[]sym.Term{bin(lang.OpEq, x, c(11))}, Unsat},
		{[]sym.Term{bin(lang.OpNe, x, c(7))}, Sat},
		{[]sym.Term{bin(lang.OpGt, x, c(3)), bin(lang.OpLt, x, c(5))}, Sat}, // x=4
		{[]sym.Term{bin(lang.OpGt, x, c(4)), bin(lang.OpLt, x, c(5))}, Unsat},
	}
	for i, cse := range cases {
		if got := Check(cse.atoms); got != cse.want {
			t.Errorf("case %d: got %v, want %v", i, got, cse.want)
		}
	}
}

func TestConjunctionSplitting(t *testing.T) {
	x := v("x", 0, 10)
	both := bin(lang.OpAnd, bin(lang.OpGt, x, c(4)), bin(lang.OpLt, x, c(5)))
	if got := Check([]sym.Term{both}); got != Unsat {
		t.Fatalf("x>4 && x<5 = %v", got)
	}
}

func TestMultiVariable(t *testing.T) {
	x := v("x", 0, 20)
	y := v("y", 0, 20)
	// x + y == 40 only satisfiable at x=y=20
	sum := bin(lang.OpEq, bin(lang.OpAdd, x, y), c(40))
	if got := Check([]sym.Term{sum}); got != Sat {
		t.Fatalf("x+y==40 = %v", got)
	}
	if got := Check([]sym.Term{sum, bin(lang.OpLt, x, c(20))}); got != Unsat {
		t.Fatalf("x+y==40 && x<20 = %v", got)
	}
	// x < y && y < x unsat
	if got := Check([]sym.Term{bin(lang.OpLt, x, y), bin(lang.OpLt, y, x)}); got != Unsat {
		t.Fatalf("x<y && y<x = %v", got)
	}
	// transitive chain with equality
	z := v("z", 0, 20)
	chain := []sym.Term{
		bin(lang.OpLt, x, y), bin(lang.OpLt, y, z), bin(lang.OpEq, z, c(1)),
	}
	if got := Check(chain); got != Unsat {
		t.Fatalf("x<y<z==1 over [0,20] = %v", got)
	}
	chain[2] = bin(lang.OpEq, c(2), z)
	if got := Check(chain); got != Sat {
		t.Fatalf("x<y<z==2 = %v", got)
	}
}

func TestCoefficients(t *testing.T) {
	x := v("x", 0, 10)
	// 3*x == 7 has no integer solution
	if got := Check([]sym.Term{bin(lang.OpEq, bin(lang.OpMul, c(3), x), c(7))}); got != Unsat {
		t.Fatal("3x==7 should be unsat")
	}
	if got := Check([]sym.Term{bin(lang.OpEq, bin(lang.OpMul, x, c(3)), c(9))}); got != Sat {
		t.Fatal("3x==9 should be sat")
	}
	// negative coefficient: 5 - x == 7 => x == -2, out of domain
	if got := Check([]sym.Term{bin(lang.OpEq, bin(lang.OpSub, c(5), x), c(7))}); got != Unsat {
		t.Fatal("5-x==7 over [0,10] should be unsat")
	}
}

func TestNonLinearViaSearch(t *testing.T) {
	x := v("x", 1, 6)
	y := v("y", 1, 6)
	// x*y == 35 => x=5,y=7 impossible; x=7 impossible => unsat... careful:
	// 35 = 5*7, but y<=6, so unsat.
	if got := Check([]sym.Term{bin(lang.OpEq, bin(lang.OpMul, x, y), c(35))}); got != Unsat {
		t.Fatal("x*y==35 over [1,6]^2 should be unsat")
	}
	if got := Check([]sym.Term{bin(lang.OpEq, bin(lang.OpMul, x, y), c(30))}); got != Sat {
		t.Fatal("x*y==30 (5*6) should be sat")
	}
	// Mod atom
	if got := Check([]sym.Term{bin(lang.OpEq, bin(lang.OpMod, x, c(4)), c(3))}); got != Sat {
		t.Fatal("x%4==3 should be sat (x=3)")
	}
}

func TestNotHandling(t *testing.T) {
	x := v("x", 0, 3)
	// !(x < 4) is unsat on [0,3] — Not folds via Negate only when built
	// through sym.Negate; raw Not is still evaluated in search.
	raw := sym.Not{T: bin(lang.OpLt, x, c(4))}
	if got := Check([]sym.Term{raw}); got != Unsat {
		t.Fatalf("!(x<4) = %v", got)
	}
	neg := sym.Negate(bin(lang.OpLt, x, c(4)))
	if got := Check([]sym.Term{neg}); got != Unsat {
		t.Fatalf("negated (x<4) = %v", got)
	}
}

func TestOrEvaluatedInSearch(t *testing.T) {
	x := v("x", 0, 5)
	either := bin(lang.OpOr, bin(lang.OpEq, x, c(2)), bin(lang.OpEq, x, c(9)))
	if got := Check([]sym.Term{either}); got != Sat {
		t.Fatalf("x==2 || x==9 = %v", got)
	}
	neither := bin(lang.OpOr, bin(lang.OpEq, x, c(8)), bin(lang.OpEq, x, c(9)))
	if got := Check([]sym.Term{neither}); got != Unsat {
		t.Fatalf("x==8 || x==9 over [0,5] = %v", got)
	}
}

func TestStringAtoms(t *testing.T) {
	s1 := sym.NewInput("s1", value.KindString, 0, 0)
	s2 := sym.NewInput("s2", value.KindString, 0, 0)
	eq := func(a, b sym.Term) sym.Term { return bin(lang.OpEq, a, b) }
	ne := func(a, b sym.Term) sym.Term { return bin(lang.OpNe, a, b) }
	if got := Check([]sym.Term{eq(s1, cs("a")), eq(s1, cs("b"))}); got != Unsat {
		t.Fatal("s1==a && s1==b should be unsat")
	}
	if got := Check([]sym.Term{eq(s1, cs("a")), eq(s2, cs("a")), ne(s1, s2)}); got != Unsat {
		t.Fatal("s1==a==s2 && s1!=s2 should be unsat")
	}
	if got := Check([]sym.Term{eq(s1, s2), eq(s2, cs("a"))}); got != Sat {
		t.Fatal("consistent string equalities should be sat")
	}
	if got := Check([]sym.Term{ne(s1, s2)}); got != Sat {
		t.Fatal("s1!=s2 alone should be sat")
	}
}

func TestPivotVariablesUnbounded(t *testing.T) {
	p := sym.NewPivot("T", []sym.Term{v("k", 0, 9)}, "f")
	// pivot > 10 alone: cannot decide by search (unbounded) => Unknown
	if got := Check([]sym.Term{bin(lang.OpGt, p, c(10))}); got != Unknown {
		t.Fatalf("pivot>10 = %v, want unknown", got)
	}
	// contradictory intervals on the pivot caught by propagation
	atoms := []sym.Term{bin(lang.OpGt, p, c(10)), bin(lang.OpLt, p, c(5))}
	if got := Check(atoms); got != Unsat {
		t.Fatalf("pivot>10 && pivot<5 = %v, want unsat", got)
	}
}

func TestSearchBudgetUnknown(t *testing.T) {
	// Three variables with huge domains and an atom propagation can't
	// decide: the search space exceeds the budget.
	x := v("x", 0, 1_000_000)
	y := v("y", 0, 1_000_000)
	z := v("z", 0, 1_000_000)
	atom := bin(lang.OpEq, bin(lang.OpAdd, bin(lang.OpAdd, x, y), z), c(1_500_000))
	if got := Check([]sym.Term{atom}); got != Unknown {
		t.Fatalf("huge search = %v, want unknown", got)
	}
}

func TestBoolVariables(t *testing.T) {
	b := sym.NewInput("b", value.KindBool, 0, 0)
	if got := Check([]sym.Term{b}); got != Sat {
		t.Fatalf("bool var alone = %v", got)
	}
	contra := []sym.Term{b, sym.Not{T: b}}
	if got := Check(contra); got != Unsat {
		t.Fatalf("b && !b = %v", got)
	}
}

func TestDivCeilFloor(t *testing.T) {
	cases := []struct{ a, b, ceil, floor int64 }{
		{7, 2, 4, 3}, {-7, 2, -3, -4}, {6, 2, 3, 3}, {-6, 2, -3, -3},
		{7, -2, -3, -4}, {0, 5, 0, 0},
	}
	for _, cse := range cases {
		if got := divCeil(cse.a, cse.b); got != cse.ceil {
			t.Errorf("divCeil(%d,%d) = %d, want %d", cse.a, cse.b, got, cse.ceil)
		}
		if got := divFloor(cse.a, cse.b); got != cse.floor {
			t.Errorf("divFloor(%d,%d) = %d, want %d", cse.a, cse.b, got, cse.floor)
		}
	}
}

// TestPropAgainstBruteForce cross-checks the solver against exhaustive
// enumeration on random small constraint systems.
func TestPropAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	vars := []*sym.Var{v("x", 0, 8), v("y", 0, 8)}
	randAtom := func() sym.Term {
		ops := []lang.Op{lang.OpEq, lang.OpNe, lang.OpLt, lang.OpLe, lang.OpGt, lang.OpGe}
		var l sym.Term = vars[r.Intn(2)]
		if r.Intn(3) == 0 {
			l = bin(lang.OpAdd, l, vars[r.Intn(2)])
		}
		if r.Intn(4) == 0 {
			l = bin(lang.OpMul, l, c(int64(r.Intn(3)+1)))
		}
		return bin(ops[r.Intn(len(ops))], l, c(int64(r.Intn(20)-2)))
	}
	for trial := 0; trial < 400; trial++ {
		n := 1 + r.Intn(3)
		atoms := make([]sym.Term, n)
		for i := range atoms {
			atoms[i] = randAtom()
		}
		want := Unsat
		for x := int64(0); x <= 8 && want == Unsat; x++ {
			for y := int64(0); y <= 8 && want == Unsat; y++ {
				all := true
				lookup := func(vr *sym.Var) (value.Value, bool) {
					if vr.Name == "x" {
						return value.Int(x), true
					}
					return value.Int(y), true
				}
				for _, a := range atoms {
					got, err := sym.Eval(a, lookup)
					if err != nil || !got.MustBool() {
						all = false
						break
					}
				}
				if all {
					want = Sat
				}
			}
		}
		if got := Check(atoms); got != want {
			for _, a := range atoms {
				t.Logf("atom: %s", a)
			}
			t.Fatalf("trial %d: Check = %v, brute force = %v", trial, got, want)
		}
	}
}

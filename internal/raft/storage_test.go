package raft

import (
	"fmt"
	"prognosticator/internal/vclock"
	"testing"
	"time"

	"prognosticator/internal/memnet"
)

func TestFileStorageRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFileStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.SaveState(3, "n1"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append(1, []Entry{{Term: 1, Cmd: []byte("a")}, {Term: 2, Cmd: []byte("b")}}); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append(3, []Entry{{Term: 3, Cmd: []byte("c")}}); err != nil {
		t.Fatal(err)
	}
	// Overwrite a conflicting suffix.
	if err := fs.Append(2, []Entry{{Term: 3, Cmd: []byte("B")}}); err != nil {
		t.Fatal(err)
	}
	if err := fs.SaveState(4, ""); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	fs2, err := OpenFileStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = fs2.Close() }()
	term, voted, snap, log, err := fs2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if term != 4 || voted != "" || snap.Index != 0 {
		t.Fatalf("state = %d/%q snap=%+v", term, voted, snap)
	}
	if len(log) != 2 || string(log[0].Cmd) != "a" || string(log[1].Cmd) != "B" {
		t.Fatalf("log = %+v", log)
	}
}

func TestFileStorageFreshIsEmpty(t *testing.T) {
	fs, err := OpenFileStorage(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = fs.Close() }()
	term, voted, snap, log, err := fs.Load()
	if err != nil || term != 0 || voted != "" || snap.Index != 0 || len(log) != 0 {
		t.Fatalf("fresh storage = %d %q %+v %v %v", term, voted, snap, log, err)
	}
}

// TestNodeRestartRetainsLog: a persistent node that crashes and restarts
// keeps its log and term, and the cluster keeps committing.
func TestNodeRestartRetainsLog(t *testing.T) {
	net := memnet.New(77)
	ids := []string{"n0", "n1", "n2"}
	cfg := Config{
		ElectionTimeoutMin: 50 * time.Millisecond,
		ElectionTimeoutMax: 100 * time.Millisecond,
		HeartbeatInterval:  15 * time.Millisecond,
	}
	dirs := map[string]string{}
	nodes := map[string]*Node{}
	start := func(id string, seed int64) *Node {
		n := NewNode(id, ids, net, cfg, seed)
		if dirs[id] == "" {
			dirs[id] = t.TempDir()
		}
		fs, err := OpenFileStorage(dirs[id])
		if err != nil {
			t.Fatal(err)
		}
		if err := n.UseStorage(fs); err != nil {
			t.Fatal(err)
		}
		n.Start()
		nodes[id] = n
		return n
	}
	for i, id := range ids {
		start(id, int64(i+1))
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
		net.Close()
	}()

	waitLeader := func(among ...string) *Node {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			for _, id := range among {
				if role, _ := nodes[id].Status(); role == Leader {
					return nodes[id]
				}
			}
			vclock.Wall.Sleep(5 * time.Millisecond)
		}
		t.Fatal("no leader")
		return nil
	}
	leader := waitLeader(ids...)
	var committed []uint64
	for i := 0; i < 5; i++ {
		idx, _, ok := leader.Propose([]byte(fmt.Sprintf("cmd%d", i)))
		if !ok {
			t.Fatal("propose failed")
		}
		committed = append(committed, idx)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && leader.CommitIndex() < committed[len(committed)-1] {
		vclock.Wall.Sleep(5 * time.Millisecond)
	}

	// Crash a follower and restart it from its storage.
	var followerID string
	for _, id := range ids {
		if nodes[id] != leader {
			followerID = id
			break
		}
	}
	nodes[followerID].Stop()
	restarted := start(followerID, 99)
	// Its persisted log must contain the committed prefix immediately.
	restarted.mu.Lock()
	logLen := len(restarted.log)
	term := restarted.term
	restarted.mu.Unlock()
	if logLen < int(committed[len(committed)-1]) {
		t.Fatalf("restarted node lost log entries: %d < %d", logLen, committed[len(committed)-1])
	}
	if term == 0 {
		t.Fatal("restarted node lost its term")
	}
	// The cluster continues committing with the restarted member.
	leader = waitLeader(ids...)
	idx, _, ok := leader.Propose([]byte("after-restart"))
	if !ok {
		t.Fatal("propose after restart failed")
	}
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && restarted.CommitIndex() < idx {
		vclock.Wall.Sleep(5 * time.Millisecond)
	}
	if restarted.CommitIndex() < idx {
		t.Fatal("restarted node did not catch up")
	}
}

// TestRestartDoesNotDoubleVote: election safety across restarts — a node
// that voted in term T must not vote for a different candidate in T after
// restarting.
func TestRestartDoesNotDoubleVote(t *testing.T) {
	dir := t.TempDir()
	net := memnet.New(5)
	ids := []string{"a", "b", "c"}
	cfg := Config{
		ElectionTimeoutMin: time.Hour, // no self-driven elections
		ElectionTimeoutMax: 2 * time.Hour,
		HeartbeatInterval:  time.Hour,
	}
	n := NewNode("a", ids, net, cfg, 1)
	fs, err := OpenFileStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.UseStorage(fs); err != nil {
		t.Fatal(err)
	}
	// Grant a vote to "b" in term 5 via the internal handler.
	n.mu.Lock()
	n.onRequestVote("b", RequestVote{Term: 5, Candidate: "b"})
	n.mu.Unlock()
	_ = fs.Close()

	// Restart and ask for a vote from a different candidate in the SAME term.
	n2 := NewNode("a", ids, net, cfg, 2)
	fs2, err := OpenFileStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = fs2.Close() }()
	if err := n2.UseStorage(fs2); err != nil {
		t.Fatal(err)
	}
	n2.mu.Lock()
	if n2.term != 5 || n2.votedFor != "b" {
		n2.mu.Unlock()
		t.Fatalf("restart lost vote state: term=%d voted=%q", n2.term, n2.votedFor)
	}
	n2.onRequestVote("c", RequestVote{Term: 5, Candidate: "c"})
	votedFor := n2.votedFor
	n2.mu.Unlock()
	if votedFor != "b" {
		t.Fatalf("double vote after restart: votedFor=%q", votedFor)
	}
}

package raft

import (
	"fmt"
	"prognosticator/internal/vclock"
	"testing"
	"time"

	"prognosticator/internal/memnet"
)

// cluster is a test harness over N nodes on one memnet.
type cluster struct {
	t     *testing.T
	net   *memnet.Network
	nodes map[string]*Node
	ids   []string
}

func newCluster(t *testing.T, n int, seed int64) *cluster {
	t.Helper()
	c := &cluster{t: t, net: memnet.New(seed), nodes: map[string]*Node{}}
	for i := 0; i < n; i++ {
		c.ids = append(c.ids, fmt.Sprintf("n%d", i))
	}
	for i, id := range c.ids {
		node := NewNode(id, c.ids, c.net, Config{
			ElectionTimeoutMin: 50 * time.Millisecond,
			ElectionTimeoutMax: 100 * time.Millisecond,
			HeartbeatInterval:  15 * time.Millisecond,
		}, seed+int64(i))
		c.nodes[id] = node
		node.Start()
	}
	t.Cleanup(func() {
		for _, n := range c.nodes {
			n.Stop()
		}
		c.net.Close()
	})
	return c
}

// waitLeader waits for exactly one leader among the given ids (default all).
func (c *cluster) waitLeader(within time.Duration, among ...string) *Node {
	c.t.Helper()
	if len(among) == 0 {
		among = c.ids
	}
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		var leaders []*Node
		for _, id := range among {
			if role, _ := c.nodes[id].Status(); role == Leader {
				leaders = append(leaders, c.nodes[id])
			}
		}
		if len(leaders) == 1 {
			return leaders[0]
		}
		vclock.Wall.Sleep(5 * time.Millisecond)
	}
	c.t.Fatalf("no single leader among %v within %v", among, within)
	return nil
}

// proposeAndWait proposes through the leader and waits for all live nodes in
// among to apply it.
func (c *cluster) proposeAndWait(leader *Node, cmd string, within time.Duration, among ...string) {
	c.t.Helper()
	idx, _, ok := leader.Propose([]byte(cmd))
	if !ok {
		c.t.Fatal("propose rejected by leader")
	}
	if len(among) == 0 {
		among = c.ids
	}
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		done := true
		for _, id := range among {
			if c.nodes[id].CommitIndex() < idx {
				done = false
				break
			}
		}
		if done {
			return
		}
		vclock.Wall.Sleep(5 * time.Millisecond)
	}
	c.t.Fatalf("entry %d not committed everywhere within %v", idx, within)
}

func drain(n *Node) []string {
	var out []string
	for {
		select {
		case e := <-n.Apply():
			out = append(out, string(e.Cmd))
		default:
			return out
		}
	}
}

func TestSingleNodeBecomesLeaderAndCommits(t *testing.T) {
	c := newCluster(t, 1, 1)
	leader := c.waitLeader(2 * time.Second)
	c.proposeAndWait(leader, "hello", time.Second)
	got := drain(leader)
	if len(got) != 1 || got[0] != "hello" {
		t.Fatalf("applied = %v", got)
	}
}

func TestThreeNodeElectionAndReplication(t *testing.T) {
	c := newCluster(t, 3, 2)
	leader := c.waitLeader(3 * time.Second)
	for i := 0; i < 10; i++ {
		c.proposeAndWait(leader, fmt.Sprintf("cmd-%d", i), 2*time.Second)
	}
	// Every node must apply the same sequence.
	var first []string
	for _, id := range c.ids {
		got := drain(c.nodes[id])
		if first == nil {
			first = got
		} else if len(got) != len(first) {
			t.Fatalf("node %s applied %d entries, want %d", id, len(got), len(first))
		} else {
			for i := range got {
				if got[i] != first[i] {
					t.Fatalf("node %s applied %q at %d, want %q", id, got[i], i, first[i])
				}
			}
		}
	}
	if len(first) != 10 {
		t.Fatalf("applied %d entries, want 10", len(first))
	}
}

func TestFollowerRejectsProposals(t *testing.T) {
	c := newCluster(t, 3, 3)
	leader := c.waitLeader(3 * time.Second)
	for _, id := range c.ids {
		if c.nodes[id] == leader {
			continue
		}
		if _, _, ok := c.nodes[id].Propose([]byte("x")); ok {
			t.Fatalf("follower %s accepted a proposal", id)
		}
	}
}

func TestLeaderFailover(t *testing.T) {
	c := newCluster(t, 3, 4)
	leader := c.waitLeader(3 * time.Second)
	c.proposeAndWait(leader, "before", 2*time.Second)
	// Crash the leader.
	leader.Stop()
	var rest []string
	for _, id := range c.ids {
		if c.nodes[id] != leader {
			rest = append(rest, id)
		}
	}
	newLeader := c.waitLeader(3*time.Second, rest...)
	if newLeader == leader {
		t.Fatal("old leader still leading")
	}
	// The new leader must still commit new entries among the survivors.
	c.proposeAndWait(newLeader, "after", 2*time.Second, rest...)
	for _, id := range rest {
		got := drain(c.nodes[id])
		if len(got) != 2 || got[0] != "before" || got[1] != "after" {
			t.Fatalf("node %s applied %v", id, got)
		}
	}
}

func TestPartitionedMinorityCannotCommit(t *testing.T) {
	c := newCluster(t, 5, 5)
	leader := c.waitLeader(3 * time.Second)
	c.proposeAndWait(leader, "a", 2*time.Second)
	// Partition the leader with one other node (minority).
	var minority, majority []string
	minority = append(minority, leader.id)
	for _, id := range c.ids {
		if id == leader.id {
			continue
		}
		if len(minority) < 2 {
			minority = append(minority, id)
		} else {
			majority = append(majority, id)
		}
	}
	c.net.Partition(minority, majority)
	// The old leader may accept proposals but must never commit them.
	idx, _, _ := leader.Propose([]byte("doomed"))
	vclock.Wall.Sleep(300 * time.Millisecond)
	if leader.CommitIndex() >= idx {
		t.Fatal("minority leader committed an entry")
	}
	// The majority elects a fresh leader and commits.
	newLeader := c.waitLeader(5*time.Second, majority...)
	c.proposeAndWait(newLeader, "b", 3*time.Second, majority...)
	// Heal: the doomed entry is overwritten; everyone converges.
	c.net.Heal()
	c.proposeAndWait(c.waitLeader(3*time.Second), "c", 3*time.Second)
	for _, id := range c.ids {
		got := drain(c.nodes[id])
		for _, cmd := range got {
			if cmd == "doomed" {
				t.Fatalf("node %s applied the uncommitted minority entry", id)
			}
		}
	}
}

func TestLossyNetworkStillCommits(t *testing.T) {
	c := newCluster(t, 3, 6)
	c.net.SetLoss(0.10)
	c.net.SetDelay(time.Millisecond, 5*time.Millisecond)
	leader := c.waitLeader(5 * time.Second)
	for i := 0; i < 5; i++ {
		// Under loss the first leader may be deposed; re-resolve.
		role, _ := leader.Status()
		if role != Leader {
			leader = c.waitLeader(5 * time.Second)
		}
		idx, _, ok := leader.Propose([]byte(fmt.Sprintf("l%d", i)))
		if !ok {
			leader = c.waitLeader(5 * time.Second)
			idx, _, ok = leader.Propose([]byte(fmt.Sprintf("l%d", i)))
			if !ok {
				t.Fatal("could not propose")
			}
		}
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) && leader.CommitIndex() < idx {
			vclock.Wall.Sleep(10 * time.Millisecond)
		}
		if leader.CommitIndex() < idx {
			t.Fatalf("entry %d not committed under loss", idx)
		}
	}
}

func TestApplyOrderMatchesIndex(t *testing.T) {
	c := newCluster(t, 3, 7)
	leader := c.waitLeader(3 * time.Second)
	for i := 0; i < 20; i++ {
		c.proposeAndWait(leader, fmt.Sprintf("%d", i), 2*time.Second)
	}
	for _, id := range c.ids {
		var lastIdx uint64
		node := c.nodes[id]
		for {
			select {
			case e := <-node.Apply():
				if e.Index != lastIdx+1 {
					t.Fatalf("node %s: apply index %d after %d", id, e.Index, lastIdx)
				}
				lastIdx = e.Index
				continue
			default:
			}
			break
		}
		if lastIdx != 20 {
			t.Fatalf("node %s applied %d entries", id, lastIdx)
		}
	}
}

func TestLeaderHint(t *testing.T) {
	c := newCluster(t, 3, 8)
	leader := c.waitLeader(3 * time.Second)
	c.proposeAndWait(leader, "x", 2*time.Second)
	for _, id := range c.ids {
		if hint := c.nodes[id].LeaderHint(); hint != leader.id {
			t.Fatalf("node %s leader hint = %q, want %q", id, hint, leader.id)
		}
	}
}

func TestRoleString(t *testing.T) {
	if Follower.String() != "follower" || Candidate.String() != "candidate" || Leader.String() != "leader" {
		t.Fatal("role strings")
	}
}

package raft

import (
	"encoding/json"
	"fmt"

	"prognosticator/internal/wal"
)

// Snapshot is a durable state-machine snapshot: Data is the application's
// opaque serialized state covering every log entry up to and including
// Index (whose term is Term).
type Snapshot struct {
	Index uint64 `json:"i"`
	Term  uint64 `json:"t"`
	Data  []byte `json:"d,omitempty"`
}

// Storage persists a node's durable Raft state: current term, vote,
// snapshot and the log tail above it. A node with storage survives
// crash-restart without violating election safety or log matching (it never
// re-votes in a term and never loses accepted entries).
type Storage interface {
	// SaveState durably records term and vote; called before any message
	// that communicates them.
	SaveState(term uint64, votedFor string) error
	// Append durably appends entries starting at firstIndex (1-based
	// logical index), truncating any previously stored suffix from that
	// index.
	Append(firstIndex uint64, entries []Entry) error
	// SaveSnapshot durably records snap together with the retained log
	// tail (entries with logical index > snap.Index), and may discard all
	// state below the snapshot.
	SaveSnapshot(snap Snapshot, tail []Entry) error
	// Load returns the persisted state; a fresh store returns zero values.
	// log[i] holds the entry at logical index snap.Index+1+i.
	Load() (term uint64, votedFor string, snap Snapshot, log []Entry, err error)
}

// FileStorage implements Storage as a WAL of JSON records. Each mutation is
// one framed record; Load replays them. SaveSnapshot compacts the journal:
// it rotates to a fresh segment, writes a checkpoint (state + snapshot +
// retained tail) there, and drops all older segments. A crash between the
// checkpoint and the drop is safe — replay sees the old records followed by
// the checkpoint that supersedes them, never a gap.
type FileStorage struct {
	log *wal.Log
	dir string
	// Cached so a snapshot checkpoint can re-record the current term and
	// vote without the caller threading them through.
	term  uint64
	voted string
}

// storageRecord is the journal entry format.
type storageRecord struct {
	Kind     string    `json:"k"` // "state" | "append" | "snap"
	Term     uint64    `json:"t,omitempty"`
	VotedFor string    `json:"v,omitempty"`
	First    uint64    `json:"f,omitempty"`
	Entries  []Entry   `json:"e,omitempty"`
	Snap     *Snapshot `json:"s,omitempty"`
}

// OpenFileStorage opens (or creates) persistent Raft state in dir with the
// safe default policy: every record fsynced before the append returns (a
// node must not communicate a term, vote or entry it could forget).
func OpenFileStorage(dir string) (*FileStorage, error) {
	return OpenFileStorageWith(dir, wal.Options{Sync: wal.SyncAlways})
}

// OpenFileStorageWith is OpenFileStorage with an explicit WAL configuration.
// Relaxing the sync policy below SyncAlways trades crash safety for append
// throughput and is only sound when the fault model excludes machine
// crashes (e.g. in-process chaos testing, where a "crash" stops goroutines
// but never loses page-cache writes). Any torn or corrupted tail left by a
// previous crash is truncated before the log is reopened, so new appends
// always extend a verified-clean prefix.
func OpenFileStorageWith(dir string, opts wal.Options) (*FileStorage, error) {
	if _, err := wal.Repair(dir); err != nil {
		return nil, fmt.Errorf("raft: storage repair: %w", err)
	}
	l, err := wal.Open(dir, opts)
	if err != nil {
		return nil, fmt.Errorf("raft: storage: %w", err)
	}
	return &FileStorage{log: l, dir: dir}, nil
}

// Close releases the underlying log.
func (fs *FileStorage) Close() error { return fs.log.Close() }

func (fs *FileStorage) append(rec storageRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("raft: storage encode: %w", err)
	}
	if err := fs.log.Append(data); err != nil {
		return fmt.Errorf("raft: storage append: %w", err)
	}
	// Durability is governed by the log's SyncPolicy (SyncAlways by
	// default), not an unconditional fsync here.
	return nil
}

// SaveState implements Storage.
func (fs *FileStorage) SaveState(term uint64, votedFor string) error {
	fs.term, fs.voted = term, votedFor
	return fs.append(storageRecord{Kind: "state", Term: term, VotedFor: votedFor})
}

// Append implements Storage.
func (fs *FileStorage) Append(firstIndex uint64, entries []Entry) error {
	return fs.append(storageRecord{Kind: "append", First: firstIndex, Entries: entries})
}

// SaveSnapshot implements Storage: rotate to a fresh segment, checkpoint
// everything live (current state, the snapshot, the retained tail), fsync,
// then drop all older segments.
func (fs *FileStorage) SaveSnapshot(snap Snapshot, tail []Entry) error {
	if err := fs.log.Rotate(); err != nil {
		return fmt.Errorf("raft: storage rotate: %w", err)
	}
	if err := fs.append(storageRecord{Kind: "state", Term: fs.term, VotedFor: fs.voted}); err != nil {
		return err
	}
	s := snap
	if err := fs.append(storageRecord{Kind: "snap", Snap: &s}); err != nil {
		return err
	}
	if len(tail) > 0 {
		if err := fs.append(storageRecord{Kind: "append", First: snap.Index + 1, Entries: tail}); err != nil {
			return err
		}
	}
	if err := fs.log.Sync(); err != nil {
		return fmt.Errorf("raft: storage sync: %w", err)
	}
	if err := fs.log.DropSegmentsBelow(fs.log.CurrentSegment()); err != nil {
		return fmt.Errorf("raft: storage compact: %w", err)
	}
	return nil
}

// Load implements Storage.
func (fs *FileStorage) Load() (uint64, string, Snapshot, []Entry, error) {
	var term uint64
	var voted string
	var snap Snapshot
	var log []Entry // log[i] = entry at logical index snap.Index+1+i
	err := wal.Replay(fs.dir, func(payload []byte) error {
		var rec storageRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("raft: storage decode: %w", err)
		}
		switch rec.Kind {
		case "state":
			term, voted = rec.Term, rec.VotedFor
		case "append":
			if rec.First == 0 {
				return fmt.Errorf("raft: storage: append with index 0")
			}
			first, entries := rec.First, rec.Entries
			if first <= snap.Index {
				// Prefix already covered by a later-read snapshot
				// checkpoint: keep only the part above it.
				drop := snap.Index - first + 1
				if uint64(len(entries)) <= drop {
					return nil
				}
				entries = entries[drop:]
				first = snap.Index + 1
			}
			pos := first - snap.Index // 1-based position in the tail slice
			if pos <= uint64(len(log)) {
				log = log[:pos-1]
			}
			log = append(log, entries...)
		case "snap":
			if rec.Snap == nil {
				return fmt.Errorf("raft: storage: snap record without snapshot")
			}
			// Re-base the tail: keep only entries above the new
			// snapshot index.
			if drop := rec.Snap.Index - snap.Index; drop < uint64(len(log)) {
				log = append([]Entry(nil), log[drop:]...)
			} else {
				log = nil
			}
			snap = *rec.Snap
		}
		return nil
	})
	if err != nil {
		return 0, "", Snapshot{}, nil, err
	}
	fs.term, fs.voted = term, voted
	return term, voted, snap, log, nil
}

package raft

import (
	"encoding/json"
	"fmt"

	"prognosticator/internal/wal"
)

// Storage persists a node's durable Raft state: current term, vote, and the
// log. A node with storage survives crash-restart without violating
// election safety or log matching (it never re-votes in a term and never
// loses accepted entries).
type Storage interface {
	// SaveState durably records term and vote; called before any message
	// that communicates them.
	SaveState(term uint64, votedFor string) error
	// Append durably appends entries starting at firstIndex (1-based),
	// truncating any previously stored suffix from that index.
	Append(firstIndex uint64, entries []Entry) error
	// Load returns the persisted state; a fresh store returns zero values.
	Load() (term uint64, votedFor string, log []Entry, err error)
}

// FileStorage implements Storage as a WAL of JSON records. Each mutation is
// one framed record; Load replays them. No compaction is performed — ample
// for the in-process deployments this repository targets.
type FileStorage struct {
	log *wal.Log
	dir string
}

// storageRecord is the journal entry format.
type storageRecord struct {
	Kind     string  `json:"k"` // "state" | "append"
	Term     uint64  `json:"t,omitempty"`
	VotedFor string  `json:"v,omitempty"`
	First    uint64  `json:"f,omitempty"`
	Entries  []Entry `json:"e,omitempty"`
}

// OpenFileStorage opens (or creates) persistent Raft state in dir with the
// safe default policy: every record fsynced before the append returns (a
// node must not communicate a term, vote or entry it could forget).
func OpenFileStorage(dir string) (*FileStorage, error) {
	return OpenFileStorageWith(dir, wal.Options{Sync: wal.SyncAlways})
}

// OpenFileStorageWith is OpenFileStorage with an explicit WAL configuration.
// Relaxing the sync policy below SyncAlways trades crash safety for append
// throughput and is only sound when the fault model excludes machine
// crashes (e.g. in-process chaos testing, where a "crash" stops goroutines
// but never loses page-cache writes). Any torn or corrupted tail left by a
// previous crash is truncated before the log is reopened, so new appends
// always extend a verified-clean prefix.
func OpenFileStorageWith(dir string, opts wal.Options) (*FileStorage, error) {
	if _, err := wal.Repair(dir); err != nil {
		return nil, fmt.Errorf("raft: storage repair: %w", err)
	}
	l, err := wal.Open(dir, opts)
	if err != nil {
		return nil, fmt.Errorf("raft: storage: %w", err)
	}
	return &FileStorage{log: l, dir: dir}, nil
}

// Close releases the underlying log.
func (fs *FileStorage) Close() error { return fs.log.Close() }

func (fs *FileStorage) append(rec storageRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("raft: storage encode: %w", err)
	}
	if err := fs.log.Append(data); err != nil {
		return fmt.Errorf("raft: storage append: %w", err)
	}
	// Durability is governed by the log's SyncPolicy (SyncAlways by
	// default), not an unconditional fsync here.
	return nil
}

// SaveState implements Storage.
func (fs *FileStorage) SaveState(term uint64, votedFor string) error {
	return fs.append(storageRecord{Kind: "state", Term: term, VotedFor: votedFor})
}

// Append implements Storage.
func (fs *FileStorage) Append(firstIndex uint64, entries []Entry) error {
	return fs.append(storageRecord{Kind: "append", First: firstIndex, Entries: entries})
}

// Load implements Storage.
func (fs *FileStorage) Load() (uint64, string, []Entry, error) {
	var term uint64
	var voted string
	var log []Entry
	err := wal.Replay(fs.dir, func(payload []byte) error {
		var rec storageRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("raft: storage decode: %w", err)
		}
		switch rec.Kind {
		case "state":
			term, voted = rec.Term, rec.VotedFor
		case "append":
			if rec.First == 0 {
				return fmt.Errorf("raft: storage: append with index 0")
			}
			if rec.First <= uint64(len(log)) {
				log = log[:rec.First-1]
			}
			log = append(log, rec.Entries...)
		}
		return nil
	})
	if err != nil {
		return 0, "", nil, err
	}
	return term, voted, log, nil
}

package raft

import (
	"bytes"
	"fmt"
	"prognosticator/internal/vclock"
	"testing"
	"time"

	"prognosticator/internal/memnet"
)

// newChunkCluster is newCluster with a tiny snapshot chunk size, forcing the
// chunked InstallSnapshot path for any non-trivial snapshot.
func newChunkCluster(t *testing.T, n int, seed int64, chunk int) *cluster {
	t.Helper()
	c := &cluster{t: t, net: memnet.New(seed), nodes: map[string]*Node{}}
	for i := 0; i < n; i++ {
		c.ids = append(c.ids, fmt.Sprintf("n%d", i))
	}
	for i, id := range c.ids {
		node := NewNode(id, c.ids, c.net, Config{
			ElectionTimeoutMin: 50 * time.Millisecond,
			ElectionTimeoutMax: 100 * time.Millisecond,
			HeartbeatInterval:  15 * time.Millisecond,
			SnapshotChunkSize:  chunk,
		}, seed+int64(i))
		c.nodes[id] = node
		node.Start()
	}
	t.Cleanup(func() {
		for _, n := range c.nodes {
			n.Stop()
		}
		c.net.Close()
	})
	return c
}

// isolateFollower picks a non-leader node, takes it off the network, and
// returns it with the ids of the still-live members.
func isolateFollower(c *cluster, leader *Node) (behind *Node, behindID string, live []string) {
	for _, id := range c.ids {
		if c.nodes[id] != leader && behind == nil {
			behind, behindID = c.nodes[id], id
			continue
		}
		live = append(live, id)
	}
	c.net.SetDown(behindID, true)
	return behind, behindID, live
}

// TestChunkedSnapshotTransfer drives a snapshot much larger than the chunk
// size to a far-behind follower: the transfer must stream in multiple
// offset-addressed chunks and install bit-identical data.
func TestChunkedSnapshotTransfer(t *testing.T) {
	c := newChunkCluster(t, 3, 61, 64)
	leader := c.waitLeader(3 * time.Second)
	behind, behindID, live := isolateFollower(c, leader)
	for i := 0; i < 6; i++ {
		c.proposeAndWait(leader, fmt.Sprintf("cmd-%d", i), 3*time.Second, live...)
	}
	snapData := bytes.Repeat([]byte("chunked-snapshot-state-"), 50) // ~1.1 KiB, ~18 chunks
	compactAt := leader.CommitIndex()
	// Compact on every live node: the rejoining follower may force an
	// election, and whichever node wins must be unable to append-replicate
	// the compacted prefix.
	for _, id := range live {
		if err := c.nodes[id].Compact(compactAt, snapData); err != nil {
			t.Fatal(err)
		}
	}
	c.net.Drain(behindID)
	c.net.SetDown(behindID, false)

	deadline := time.Now().Add(5 * time.Second)
	for behind.SnapshotIndex() < compactAt {
		if !time.Now().Before(deadline) {
			t.Fatalf("follower snapshot index %d, want >= %d", behind.SnapshotIndex(), compactAt)
		}
		vclock.Wall.Sleep(5 * time.Millisecond)
	}
	var sent int64
	for _, id := range live {
		sent += c.nodes[id].ChunksSent()
	}
	if sent < 2 {
		t.Fatalf("ChunksSent = %d, want >= 2 (single-shot path used for a large snapshot?)", sent)
	}
	var install *Committed
	for _, e := range drainAtLeast(t, behind, 1, 3*time.Second) {
		if e.Snapshot != nil {
			e := e
			install = &e
			break
		}
	}
	if install == nil {
		t.Fatal("follower caught up without a snapshot delivery")
	}
	if install.Index != compactAt || !bytes.Equal(install.Snapshot, snapData) {
		t.Fatalf("installed snapshot: index %d, %d bytes (want index %d, %d bytes, equal content)",
			install.Index, len(install.Snapshot), compactAt, len(snapData))
	}
	// Replication continues with ordinary appends above the snapshot (the
	// rejoin may have forced an election, so re-resolve the leader).
	c.proposeAndWait(c.waitLeader(3*time.Second), "after-chunked-install", 3*time.Second)
}

// TestChunkedSnapshotSmallFastPath pins the fast path: a snapshot at or
// below the chunk size ships as one InstallSnapshot message, no chunks.
func TestChunkedSnapshotSmallFastPath(t *testing.T) {
	c := newChunkCluster(t, 3, 67, 1<<20)
	leader := c.waitLeader(3 * time.Second)
	behind, behindID, live := isolateFollower(c, leader)
	for i := 0; i < 5; i++ {
		c.proposeAndWait(leader, fmt.Sprintf("cmd-%d", i), 3*time.Second, live...)
	}
	compactAt := leader.CommitIndex()
	for _, id := range live {
		if err := c.nodes[id].Compact(compactAt, []byte("small-state")); err != nil {
			t.Fatal(err)
		}
	}
	c.net.Drain(behindID)
	c.net.SetDown(behindID, false)
	deadline := time.Now().Add(5 * time.Second)
	for behind.SnapshotIndex() < compactAt {
		if !time.Now().Before(deadline) {
			t.Fatalf("follower snapshot index %d, want >= %d", behind.SnapshotIndex(), compactAt)
		}
		vclock.Wall.Sleep(5 * time.Millisecond)
	}
	var sent int64
	for _, id := range live {
		sent += c.nodes[id].ChunksSent()
	}
	if sent != 0 {
		t.Fatalf("ChunksSent = %d, want 0 (small snapshot must take the single-message path)", sent)
	}
}

// TestChunkedSnapshotTransferUnderLoss runs the chunked transfer over a
// lossy fabric: dropped chunks and dropped acks must be recovered by the
// heartbeat retransmitting the outstanding chunk and by the follower's
// NextOffset cursor rewinding the leader, with the transfer still completing.
func TestChunkedSnapshotTransferUnderLoss(t *testing.T) {
	c := newChunkCluster(t, 3, 71, 64)
	leader := c.waitLeader(3 * time.Second)
	behind, behindID, live := isolateFollower(c, leader)
	for i := 0; i < 6; i++ {
		c.proposeAndWait(leader, fmt.Sprintf("cmd-%d", i), 3*time.Second, live...)
	}
	snapData := bytes.Repeat([]byte("lossy-transfer-"), 60) // ~900 B, ~15 chunks
	compactAt := leader.CommitIndex()
	for _, id := range live {
		if err := c.nodes[id].Compact(compactAt, snapData); err != nil {
			t.Fatal(err)
		}
	}
	c.net.SetLoss(0.20)
	defer c.net.SetLoss(0)
	c.net.Drain(behindID)
	c.net.SetDown(behindID, false)

	deadline := time.Now().Add(10 * time.Second)
	for behind.SnapshotIndex() < compactAt {
		if !time.Now().Before(deadline) {
			t.Fatalf("follower snapshot index %d, want >= %d (transfer stalled under loss)",
				behind.SnapshotIndex(), compactAt)
		}
		vclock.Wall.Sleep(5 * time.Millisecond)
	}
	var install *Committed
	for _, e := range drainAtLeast(t, behind, 1, 5*time.Second) {
		if e.Snapshot != nil {
			e := e
			install = &e
			break
		}
	}
	if install == nil || !bytes.Equal(install.Snapshot, snapData) {
		t.Fatal("snapshot installed under loss does not match the leader's data")
	}
}

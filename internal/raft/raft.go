// Package raft implements a compact Raft consensus core — leader election,
// log replication and commitment (Ongaro & Ousterhout) — sufficient to
// totally order transaction batches across replicas, the role the paper
// assigns to its consensus layer (§III-A: clients "agree on the order of
// transactions within each batch ... by relying on a consensus algorithm
// [17], [24]").
//
// Scope: optional WAL-backed persistence of term/vote/log (see Storage),
// plus snapshot-based log compaction: the application hands the node an
// opaque snapshot of its state machine at a committed index (Compact), the
// log prefix up to that index is discarded, and followers too far behind the
// compacted log are caught up with an InstallSnapshot RPC instead of entry
// replay. Safety properties (election safety — including across restarts —
// log matching, leader completeness for committed entries) are exercised by
// the tests in this package over the memnet fault-injecting transport.
package raft

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"prognosticator/internal/memnet"
	"prognosticator/internal/vclock"
)

// Role is a Raft server state.
type Role int

// Raft roles.
const (
	Follower Role = iota + 1
	Candidate
	Leader
)

// String returns the role name.
func (r Role) String() string {
	switch r {
	case Leader:
		return "leader"
	case Candidate:
		return "candidate"
	default:
		return "follower"
	}
}

// Entry is one replicated log record.
type Entry struct {
	Term uint64
	Cmd  []byte
}

// Committed is delivered on the apply channel for each committed entry, in
// log order. When Snapshot is non-nil the record is not a log entry but an
// installed state-machine snapshot covering every index ≤ Index; the
// consumer must restore from it instead of applying Cmd.
type Committed struct {
	Index    uint64 // 1-based log index
	Term     uint64
	Cmd      []byte
	Snapshot []byte
}

// Transport moves RPC payloads between nodes. memnet.Endpoint implements it
// in-process; internal/tcpnet implements it over real sockets. Payloads are
// the exported wire types below (see WireTypes for codec registration).
type Transport interface {
	Send(to string, payload any)
	Inbox() <-chan memnet.Message
}

// RPC payload wire types.

// RequestVote solicits a vote for Candidate in Term.
type RequestVote struct {
	Term         uint64
	Candidate    string
	LastLogIndex uint64
	LastLogTerm  uint64
}

// VoteReply answers a RequestVote.
type VoteReply struct {
	Term    uint64
	Granted bool
}

// AppendEntries replicates log entries (empty = heartbeat).
type AppendEntries struct {
	Term         uint64
	Leader       string
	PrevLogIndex uint64
	PrevLogTerm  uint64
	Entries      []Entry
	LeaderCommit uint64
}

// AppendReply answers an AppendEntries.
type AppendReply struct {
	Term    uint64
	Success bool
	// MatchIndex is the highest index known replicated on the follower
	// when Success; on failure, ConflictIndex hints where to back up to.
	MatchIndex    uint64
	ConflictIndex uint64
}

// InstallSnapshot ships the leader's state-machine snapshot to a follower
// whose next needed entry has been compacted away, in a single message —
// the fast path for snapshots no larger than Config.SnapshotChunkSize.
// Larger snapshots go through InstallSnapshotChunk.
type InstallSnapshot struct {
	Term     uint64
	Leader   string
	Index    uint64 // last log index covered by the snapshot
	SnapTerm uint64 // term of that entry
	Data     []byte
}

// InstallSnapshotReply acknowledges an InstallSnapshot.
type InstallSnapshotReply struct {
	Term  uint64
	Index uint64 // follower's snapshot/commit coverage after handling
}

// InstallSnapshotChunk ships one contiguous piece of a large snapshot. The
// follower stages chunks in arrival order (Offset must equal the bytes it
// already holds) and installs once the buffer reaches Total. A chunk whose
// Offset does not match is answered with the follower's actual cursor, so a
// transfer interrupted by loss — or restarted from scratch after a follower
// crash — resumes from wherever the follower really is instead of the
// leader's guess.
type InstallSnapshotChunk struct {
	Term     uint64
	Leader   string
	Index    uint64 // last log index covered by the full snapshot
	SnapTerm uint64 // term of that entry
	Offset   uint64 // byte offset of Data within the snapshot
	Total    uint64 // full snapshot size in bytes
	Data     []byte
}

// InstallSnapshotChunkReply acknowledges one chunk. NextOffset is the
// follower's staging cursor — the byte offset it needs next — and is the
// resume point the leader continues from. Done reports the snapshot fully
// installed (NextOffset == Total).
type InstallSnapshotChunkReply struct {
	Term       uint64
	Index      uint64 // snapshot index the transfer is for
	NextOffset uint64
	Done       bool
}

// Config tunes timing. Zero values select defaults suitable for in-process
// tests (short timeouts).
type Config struct {
	ElectionTimeoutMin time.Duration
	ElectionTimeoutMax time.Duration
	HeartbeatInterval  time.Duration
	// SnapshotChunkSize is the largest snapshot shipped as a single
	// InstallSnapshot message; bigger snapshots stream as offset-addressed
	// chunks of this size with per-chunk acks and resume (default 256 KiB).
	SnapshotChunkSize int
	// Clock is the time source for election and heartbeat timers. Nil uses
	// the wall clock; a vclock.Sim clock runs the node in virtual time, where
	// the event loop participates in the simulation's token accounting.
	Clock vclock.Clock
}

func (c Config) withDefaults() Config {
	if c.ElectionTimeoutMin == 0 {
		c.ElectionTimeoutMin = 150 * time.Millisecond
	}
	if c.ElectionTimeoutMax == 0 {
		c.ElectionTimeoutMax = 300 * time.Millisecond
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 40 * time.Millisecond
	}
	if c.SnapshotChunkSize == 0 {
		c.SnapshotChunkSize = 256 << 10
	}
	return c
}

// Node is one Raft server.
type Node struct {
	id     string
	idHash uint64
	peers  []string
	cfg    Config
	ep     Transport
	clk    vclock.Clock
	seed   int64

	mu   sync.Mutex
	role Role
	term uint64

	votedFor string
	// log holds the entries AFTER snap.Index: logical index i lives at
	// log[i-snap.Index-1]. snap is the zero value until the first Compact
	// or InstallSnapshot.
	log         []Entry
	snap        Snapshot
	commitIndex uint64
	votes       map[string]bool
	nextIndex   map[string]uint64
	matchIndex  map[string]uint64
	leaderHint  string

	// Chunked snapshot transfer state. Leader side: xfers holds, per peer
	// mid-transfer, the offset of the outstanding (unacked) chunk — the
	// heartbeat retransmits it, the ack advances it. Follower side: chunkBuf
	// stages received bytes for the (chunkIndex, chunkTerm, chunkTotal)
	// transfer; a crash clears it and the mismatch reply rewinds the leader.
	xfers      map[string]uint64
	chunkIndex uint64
	chunkTerm  uint64
	chunkTotal uint64
	chunkBuf   []byte
	chunksSent int64

	storage    Storage
	persistErr error

	applyCh  chan Committed
	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	// runDone flips when the event loop returns; under the cooperative
	// scheduler Stop awaits it instead of blocking on wg.Wait while holding
	// the run baton (which would deadlock the single-threaded world).
	runDone atomic.Bool

	electionDeadline time.Time
	// jitterCtr numbers election-deadline resets; with the seed and node id
	// it indexes the deterministic jitter stream.
	jitterCtr uint64
}

// NewNode creates a node attached to the network; Start must be called to
// begin participating.
func NewNode(id string, peers []string, net *memnet.Network, cfg Config, seed int64) *Node {
	return NewNodeWithTransport(id, peers, net.Endpoint(id), cfg, seed)
}

// NewNodeWithTransport creates a node over an arbitrary transport (e.g.
// tcpnet); peers lists ALL member names including this node's.
func NewNodeWithTransport(id string, peers []string, tr Transport, cfg Config, seed int64) *Node {
	others := make([]string, 0, len(peers))
	for _, p := range peers {
		if p != id {
			others = append(others, p)
		}
	}
	cfg = cfg.withDefaults()
	return &Node{
		id: id, idHash: vclock.HashString(id), peers: others, cfg: cfg,
		ep: tr, clk: vclock.Or(cfg.Clock), seed: seed,
		role: Follower, votes: map[string]bool{},
		nextIndex: map[string]uint64{}, matchIndex: map[string]uint64{},
		xfers:   map[string]uint64{},
		applyCh: make(chan Committed, 4096),
		stopCh:  make(chan struct{}),
	}
}

// UseStorage attaches persistent state and loads any previously persisted
// term, vote, snapshot and log tail. Must be called before Start. After a
// crash-restart, committed entries above the snapshot index are re-delivered
// on Apply; consumers rebuild or deduplicate by index. The commit index
// starts at the snapshot index — everything below it is covered by the
// snapshot and is never re-delivered.
func (n *Node) UseStorage(st Storage) error {
	term, voted, snap, log, err := st.Load()
	if err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.storage = st
	n.term = term
	n.votedFor = voted
	n.snap = snap
	n.log = log
	n.commitIndex = snap.Index
	return nil
}

// Err returns the first persistence error, if any; the node stops accepting
// proposals and stops voting once persistence fails.
func (n *Node) Err() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.persistErr
}

// persistStateLocked durably saves term/vote; on failure the node wedges
// itself (it must not communicate unpersisted promises).
func (n *Node) persistStateLocked() bool {
	if n.storage == nil || n.persistErr != nil {
		return n.persistErr == nil
	}
	if err := n.storage.SaveState(n.term, n.votedFor); err != nil {
		n.persistErr = err
		return false
	}
	return true
}

func (n *Node) persistAppendLocked(first uint64, entries []Entry) bool {
	if n.storage == nil || n.persistErr != nil {
		return n.persistErr == nil
	}
	if err := n.storage.Append(first, entries); err != nil {
		n.persistErr = err
		return false
	}
	return true
}

func (n *Node) persistSnapshotLocked() bool {
	if n.storage == nil || n.persistErr != nil {
		return n.persistErr == nil
	}
	if err := n.storage.SaveSnapshot(n.snap, n.log); err != nil {
		n.persistErr = err
		return false
	}
	return true
}

// lastIndexLocked returns the logical index of the last entry (snapshot
// index if the tail is empty).
func (n *Node) lastIndexLocked() uint64 {
	return n.snap.Index + uint64(len(n.log))
}

// termAtLocked returns the term of the entry at logical index idx, or 0 if
// idx is 0, below the snapshot, or beyond the log.
func (n *Node) termAtLocked(idx uint64) uint64 {
	switch {
	case idx == n.snap.Index:
		return n.snap.Term
	case idx > n.snap.Index && idx <= n.lastIndexLocked():
		return n.log[idx-n.snap.Index-1].Term
	default:
		return 0
	}
}

// entryAtLocked returns the entry at logical index idx; idx must be in
// (snap.Index, lastIndex].
func (n *Node) entryAtLocked(idx uint64) Entry {
	return n.log[idx-n.snap.Index-1]
}

// Apply returns the channel of committed entries, delivered in log order.
func (n *Node) Apply() <-chan Committed { return n.applyCh }

// Start launches the node's event loop.
func (n *Node) Start() {
	n.mu.Lock()
	n.resetElectionDeadlineLocked()
	n.mu.Unlock()
	n.wg.Add(1)
	if vclock.Scheduled(n.clk) {
		// Cooperative scheduling: the loop becomes an actor; GoNamed
		// registers it synchronously so spawn order is deterministic.
		vclock.GoNamed(n.clk, "raft:"+n.id, n.run)
		return
	}
	vclock.Hold(n.clk) // run token, transferred to the loop goroutine
	go n.run()
}

// Stop terminates the node (crash-stop). Committed records still queued on
// the apply channel are discarded — exactly what a crash does.
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stopCh) })
	// Under the cooperative scheduler the loop actor is parked at a gate;
	// Await lets it run, observe the closed stop channel and exit before we
	// block on the WaitGroup (a plain Wait would hold the baton forever).
	vclock.Await(n.clk, n.runDone.Load)
	n.wg.Wait()
	for {
		select {
		case <-n.applyCh:
		default:
			return
		}
	}
}

// Status returns the node's current role and term.
func (n *Node) Status() (Role, uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role, n.term
}

// LeaderHint returns the most recently observed leader id.
func (n *Node) LeaderHint() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leaderHint
}

// CommitIndex returns the node's commit index.
func (n *Node) CommitIndex() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.commitIndex
}

// SnapshotIndex returns the last log index covered by the node's snapshot
// (0 if the log has never been compacted).
func (n *Node) SnapshotIndex() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.snap.Index
}

// Compact discards the log prefix up to and including index, recording data
// as the state-machine snapshot at that point. index must be committed;
// compacting at or below the current snapshot index is a no-op. The
// application calls this after it has durably captured its own state at
// index.
func (n *Node) Compact(index uint64, data []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.persistErr != nil {
		return n.persistErr
	}
	if index <= n.snap.Index || index > n.commitIndex {
		return nil
	}
	term := n.termAtLocked(index)
	n.log = append([]Entry(nil), n.log[index-n.snap.Index:]...)
	n.snap = Snapshot{Index: index, Term: term, Data: data}
	if !n.persistSnapshotLocked() {
		return n.persistErr
	}
	return nil
}

// Propose appends cmd to the log if this node is the leader. It returns the
// assigned index and term, and whether the node accepted the proposal.
// Commitment is signalled later through Apply.
func (n *Node) Propose(cmd []byte) (uint64, uint64, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role != Leader || n.persistErr != nil {
		return 0, 0, false
	}
	n.log = append(n.log, Entry{Term: n.term, Cmd: cmd})
	idx := n.lastIndexLocked()
	if !n.persistAppendLocked(idx, n.log[len(n.log)-1:]) {
		n.log = n.log[:len(n.log)-1]
		return 0, 0, false
	}
	n.matchIndex[n.id] = idx
	n.broadcastAppendLocked()
	return idx, n.term, true
}

func (n *Node) run() {
	defer n.wg.Done()
	defer n.runDone.Store(true)
	defer vclock.Release(n.clk) // run token held since Start (no-op when scheduled)
	tick := n.cfg.HeartbeatInterval / 2
	if vclock.Scheduled(n.clk) {
		n.runSched(tick)
		return
	}
	tm := n.clk.NewTimer(tick)
	defer tm.Stop()
	for {
		vclock.Park(n.clk)
		select {
		case <-n.stopCh:
			vclock.Wake(n.clk)
			return
		case msg := <-n.ep.Inbox():
			vclock.Wake(n.clk)
			vclock.Ack(n.clk) // retire the message's event token
			n.handle(msg)
		case <-tm.C():
			vclock.Wake(n.clk)
			vclock.Ack(n.clk) // retire the timer's fire token
			n.tick()
			tm.Reset(tick)
		}
	}
}

// runSched is the event loop under the cooperative scheduler. A blocking
// select would reintroduce runtime nondeterminism (Go resolves ready arms
// racily before the actor ever reaches a scheduler gate), so the loop polls
// its inputs in a fixed priority order — stop, inbox, tick — handles ONE
// event per iteration, and yields after each so the seeded picker controls
// the interleaving. A fully empty poll parks the actor until the next
// published event or timer fire.
func (n *Node) runSched(tick time.Duration) {
	tm := n.clk.NewTimer(tick)
	defer tm.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		default:
		}
		select {
		case msg := <-n.ep.Inbox():
			vclock.Ack(n.clk) // no-op under the scheduler; kept for symmetry
			n.handle(msg)
			vclock.Yield(n.clk)
			continue
		default:
		}
		select {
		case <-tm.C():
			n.tick()
			tm.Reset(tick)
			vclock.Yield(n.clk)
			continue
		default:
		}
		vclock.Idle(n.clk)
	}
}

func (n *Node) tick() {
	n.mu.Lock()
	defer n.mu.Unlock()
	switch n.role {
	case Leader:
		n.broadcastAppendLocked()
	default:
		if n.clk.Now().After(n.electionDeadline) {
			n.startElectionLocked()
		}
	}
}

// resetElectionDeadlineLocked arms a fresh randomized election timeout. The
// jitter is a hash of (seed, node id, reset ordinal) — a per-node stream
// independent of goroutine scheduling, so elections replay identically for a
// fixed seed on the simulated clock. Nanosecond resolution makes cross-node
// deadline ties (which the simulation would break arbitrarily) measure-zero.
func (n *Node) resetElectionDeadlineLocked() {
	span := n.cfg.ElectionTimeoutMax - n.cfg.ElectionTimeoutMin
	n.jitterCtr++
	jitter := vclock.Hash64(uint64(n.seed), n.idHash, n.jitterCtr) % uint64(span+1)
	n.electionDeadline = n.clk.Now().Add(n.cfg.ElectionTimeoutMin + time.Duration(jitter))
}

func (n *Node) lastLogLocked() (uint64, uint64) {
	last := n.lastIndexLocked()
	return last, n.termAtLocked(last)
}

func (n *Node) startElectionLocked() {
	if n.persistErr != nil {
		return
	}
	n.role = Candidate
	n.term++
	n.votedFor = n.id
	n.votes = map[string]bool{n.id: true}
	if !n.persistStateLocked() {
		return
	}
	n.resetElectionDeadlineLocked()
	lastIdx, lastTerm := n.lastLogLocked()
	req := RequestVote{Term: n.term, Candidate: n.id, LastLogIndex: lastIdx, LastLogTerm: lastTerm}
	for _, p := range n.peers {
		n.ep.Send(p, req)
	}
	if n.hasMajorityLocked() { // single-node cluster
		n.becomeLeaderLocked()
	}
}

func (n *Node) hasMajorityLocked() bool {
	return len(n.votes)*2 > len(n.peers)+1
}

func (n *Node) becomeLeaderLocked() {
	n.role = Leader
	n.leaderHint = n.id
	n.xfers = map[string]uint64{} // any prior leadership's transfers are void
	lastIdx, _ := n.lastLogLocked()
	for _, p := range n.peers {
		n.nextIndex[p] = lastIdx + 1
		n.matchIndex[p] = 0
	}
	n.matchIndex[n.id] = lastIdx
	n.broadcastAppendLocked()
}

func (n *Node) stepDownLocked(term uint64) {
	n.term = term
	n.role = Follower
	n.votedFor = ""
	n.votes = map[string]bool{}
	n.persistStateLocked()
	n.resetElectionDeadlineLocked()
}

func (n *Node) broadcastAppendLocked() {
	for _, p := range n.peers {
		n.sendAppendLocked(p)
	}
	n.advanceCommitLocked()
}

func (n *Node) sendAppendLocked(peer string) {
	next := n.nextIndex[peer]
	if next == 0 {
		next = 1
	}
	if next <= n.snap.Index {
		// The entries the follower needs were compacted away: ship the
		// snapshot instead and resume appends from its index. Small
		// snapshots go in one message; larger ones stream in chunks from
		// the per-peer cursor (a heartbeat lands here again and retransmits
		// the outstanding chunk if its ack was lost).
		if len(n.snap.Data) <= n.cfg.SnapshotChunkSize {
			n.ep.Send(peer, InstallSnapshot{
				Term: n.term, Leader: n.id,
				Index: n.snap.Index, SnapTerm: n.snap.Term, Data: n.snap.Data,
			})
			return
		}
		off := n.xfers[peer]
		if off >= uint64(len(n.snap.Data)) {
			// Cursor from a transfer of an older snapshot: restart.
			off = 0
		}
		n.sendChunkLocked(peer, off)
		return
	}
	prevIdx := next - 1
	prevTerm := n.termAtLocked(prevIdx)
	var entries []Entry
	if next <= n.lastIndexLocked() {
		entries = append(entries, n.log[next-n.snap.Index-1:]...)
	}
	n.ep.Send(peer, AppendEntries{
		Term: n.term, Leader: n.id,
		PrevLogIndex: prevIdx, PrevLogTerm: prevTerm,
		Entries: entries, LeaderCommit: n.commitIndex,
	})
}

func (n *Node) handle(msg memnet.Message) {
	n.mu.Lock()
	defer n.mu.Unlock()
	switch rpc := msg.Payload.(type) {
	case RequestVote:
		n.onRequestVote(msg.From, rpc)
	case VoteReply:
		n.onVoteReply(msg.From, rpc)
	case AppendEntries:
		n.onAppendEntries(msg.From, rpc)
	case AppendReply:
		n.onAppendReply(msg.From, rpc)
	case InstallSnapshot:
		n.onInstallSnapshot(msg.From, rpc)
	case InstallSnapshotReply:
		n.onInstallSnapshotReply(msg.From, rpc)
	case InstallSnapshotChunk:
		n.onInstallSnapshotChunk(msg.From, rpc)
	case InstallSnapshotChunkReply:
		n.onInstallSnapshotChunkReply(msg.From, rpc)
	}
}

func (n *Node) onRequestVote(from string, rpc RequestVote) {
	if rpc.Term > n.term {
		n.stepDownLocked(rpc.Term)
	}
	granted := false
	if rpc.Term == n.term && (n.votedFor == "" || n.votedFor == rpc.Candidate) {
		// Election restriction: candidate's log must be at least as
		// up-to-date as ours.
		lastIdx, lastTerm := n.lastLogLocked()
		if rpc.LastLogTerm > lastTerm ||
			(rpc.LastLogTerm == lastTerm && rpc.LastLogIndex >= lastIdx) {
			granted = true
			n.votedFor = rpc.Candidate
			if !n.persistStateLocked() {
				granted = false
			}
			n.resetElectionDeadlineLocked()
		}
	}
	n.ep.Send(from, VoteReply{Term: n.term, Granted: granted})
}

func (n *Node) onVoteReply(from string, rpc VoteReply) {
	if rpc.Term > n.term {
		n.stepDownLocked(rpc.Term)
		return
	}
	if n.role != Candidate || rpc.Term != n.term || !rpc.Granted {
		return
	}
	n.votes[from] = true
	if n.hasMajorityLocked() {
		n.becomeLeaderLocked()
	}
}

func (n *Node) onAppendEntries(from string, rpc AppendEntries) {
	if rpc.Term > n.term {
		n.stepDownLocked(rpc.Term)
	}
	if rpc.Term < n.term {
		n.ep.Send(from, AppendReply{Term: n.term})
		return
	}
	// Valid leader for the current term.
	n.role = Follower
	n.leaderHint = rpc.Leader
	n.resetElectionDeadlineLocked()
	// Entries at or below our snapshot index are already covered by the
	// snapshot: skip them and treat the snapshot boundary as the match
	// point for the log-matching check.
	if rpc.PrevLogIndex < n.snap.Index {
		skip := n.snap.Index - rpc.PrevLogIndex
		if uint64(len(rpc.Entries)) <= skip {
			n.ep.Send(from, AppendReply{Term: n.term, Success: true, MatchIndex: n.snap.Index})
			return
		}
		rpc.Entries = rpc.Entries[skip:]
		rpc.PrevLogIndex = n.snap.Index
		rpc.PrevLogTerm = n.snap.Term
	}
	// Log matching check.
	if rpc.PrevLogIndex > n.lastIndexLocked() {
		n.ep.Send(from, AppendReply{Term: n.term, ConflictIndex: n.lastIndexLocked() + 1})
		return
	}
	if rpc.PrevLogIndex > n.snap.Index && n.termAtLocked(rpc.PrevLogIndex) != rpc.PrevLogTerm {
		// Back up to the start of the conflicting term (never below the
		// snapshot boundary).
		ci := rpc.PrevLogIndex
		badTerm := n.termAtLocked(rpc.PrevLogIndex)
		for ci > n.snap.Index+1 && n.termAtLocked(ci-1) == badTerm {
			ci--
		}
		n.ep.Send(from, AppendReply{Term: n.term, ConflictIndex: ci})
		return
	}
	// Append / overwrite; persist from the first changed index.
	firstChanged := uint64(0)
	for i, e := range rpc.Entries {
		idx := rpc.PrevLogIndex + uint64(i) + 1
		if idx <= n.lastIndexLocked() {
			if n.entryAtLocked(idx).Term != e.Term {
				n.log = n.log[:idx-n.snap.Index-1]
				n.log = append(n.log, e)
				if firstChanged == 0 {
					firstChanged = idx
				}
			}
		} else {
			n.log = append(n.log, e)
			if firstChanged == 0 {
				firstChanged = idx
			}
		}
	}
	if firstChanged > 0 {
		if !n.persistAppendLocked(firstChanged, n.log[firstChanged-n.snap.Index-1:]) {
			n.ep.Send(from, AppendReply{Term: n.term, ConflictIndex: firstChanged})
			return
		}
	}
	match := rpc.PrevLogIndex + uint64(len(rpc.Entries))
	if rpc.LeaderCommit > n.commitIndex {
		lim := rpc.LeaderCommit
		if last := n.lastIndexLocked(); lim > last {
			lim = last
		}
		n.commitToLocked(lim)
	}
	n.ep.Send(from, AppendReply{Term: n.term, Success: true, MatchIndex: match})
}

func (n *Node) onInstallSnapshot(from string, rpc InstallSnapshot) {
	if rpc.Term > n.term {
		n.stepDownLocked(rpc.Term)
	}
	if rpc.Term < n.term {
		n.ep.Send(from, InstallSnapshotReply{Term: n.term, Index: n.snap.Index})
		return
	}
	n.role = Follower
	n.leaderHint = rpc.Leader
	n.resetElectionDeadlineLocked()
	if rpc.Index <= n.commitIndex {
		// Stale: everything the snapshot covers is already committed
		// here. Tell the leader how far we actually are.
		n.ep.Send(from, InstallSnapshotReply{Term: n.term, Index: rpc.Index})
		return
	}
	if !n.applySnapshotLocked(rpc.Index, rpc.SnapTerm, rpc.Data) {
		return
	}
	n.ep.Send(from, InstallSnapshotReply{Term: n.term, Index: rpc.Index})
}

// applySnapshotLocked installs a fully received snapshot: retains any
// matching log suffix, persists, delivers to the application in commit
// order, and advances the commit index. Shared by the single-shot and
// chunked paths.
func (n *Node) applySnapshotLocked(index, snapTerm uint64, data []byte) bool {
	if n.termAtLocked(index) == snapTerm && index <= n.lastIndexLocked() {
		// Existing entry matches the snapshot's last entry: retain the
		// suffix (Raft §7).
		n.log = append([]Entry(nil), n.log[index-n.snap.Index:]...)
	} else {
		n.log = nil
	}
	n.snap = Snapshot{Index: index, Term: snapTerm, Data: data}
	if !n.persistSnapshotLocked() {
		return false
	}
	// Deliver the snapshot to the application in commit order, then mark
	// everything it covers committed.
	if !n.deliverLocked(Committed{Index: index, Term: snapTerm, Snapshot: data}) {
		return false
	}
	n.commitIndex = index
	return true
}

// deliverLocked places one committed record on the apply channel. Returns
// false if the node stopped before delivery.
//
// Queued records deliberately carry NO simulation event token: the apply
// channel models work pending over time (a throttled consumer is a
// legitimate straggler whose backlog must not freeze virtual time), unlike
// transport inboxes whose messages are instantaneous events. Under a
// simulated clock the consumer drains this channel from a polled loop
// (replica.Start), so consumption is scheduled by timers, not by the
// Park/Wake handoff protocol.
func (n *Node) deliverLocked(c Committed) bool {
	select {
	case n.applyCh <- c:
		// Under the cooperative scheduler the consumer is a polled actor
		// (replica apply loop); publish so it re-polls without waiting for
		// unrelated traffic or the next timer fire.
		vclock.Publish(n.clk)
		return true
	case <-n.stopCh:
		return false
	}
}

// sendChunkLocked transmits the chunk starting at off and records it as the
// peer's outstanding chunk (the cursor the heartbeat retransmits from).
func (n *Node) sendChunkLocked(peer string, off uint64) {
	total := uint64(len(n.snap.Data))
	end := off + uint64(n.cfg.SnapshotChunkSize)
	if end > total {
		end = total
	}
	n.xfers[peer] = off
	n.chunksSent++
	n.ep.Send(peer, InstallSnapshotChunk{
		Term: n.term, Leader: n.id,
		Index: n.snap.Index, SnapTerm: n.snap.Term,
		Offset: off, Total: total, Data: n.snap.Data[off:end],
	})
}

// ChunksSent returns how many snapshot chunks this node has transmitted as
// leader (observability for tests asserting the chunked path actually ran).
func (n *Node) ChunksSent() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.chunksSent
}

func (n *Node) onInstallSnapshotChunk(from string, rpc InstallSnapshotChunk) {
	if rpc.Term > n.term {
		n.stepDownLocked(rpc.Term)
	}
	if rpc.Term < n.term {
		n.ep.Send(from, InstallSnapshotChunkReply{Term: n.term, Index: rpc.Index})
		return
	}
	n.role = Follower
	n.leaderHint = rpc.Leader
	n.resetElectionDeadlineLocked()
	if rpc.Index <= n.commitIndex {
		// Stale transfer: everything the snapshot covers is already
		// committed here. Report it complete so the leader moves to appends.
		n.ep.Send(from, InstallSnapshotChunkReply{
			Term: n.term, Index: rpc.Index, NextOffset: rpc.Total, Done: true,
		})
		return
	}
	if n.chunkIndex != rpc.Index || n.chunkTerm != rpc.SnapTerm || n.chunkTotal != rpc.Total {
		// First chunk of a new transfer (or the leader moved to a newer
		// snapshot mid-stream): drop any stale staging and start over. A
		// freshly restarted follower lands here too — its empty buffer makes
		// the reply below rewind the leader to offset 0.
		n.chunkIndex, n.chunkTerm, n.chunkTotal = rpc.Index, rpc.SnapTerm, rpc.Total
		n.chunkBuf = n.chunkBuf[:0]
	}
	if have := uint64(len(n.chunkBuf)); rpc.Offset == have && have < rpc.Total {
		n.chunkBuf = append(n.chunkBuf, rpc.Data...)
	}
	// Any other offset is a duplicate or a gap: the reply's NextOffset
	// (the staging cursor) tells the leader where to resume.
	if have := uint64(len(n.chunkBuf)); have < rpc.Total {
		n.ep.Send(from, InstallSnapshotChunkReply{Term: n.term, Index: rpc.Index, NextOffset: have})
		return
	}
	data := append([]byte(nil), n.chunkBuf...)
	n.chunkBuf, n.chunkIndex, n.chunkTerm, n.chunkTotal = nil, 0, 0, 0
	if !n.applySnapshotLocked(rpc.Index, rpc.SnapTerm, data) {
		return
	}
	n.ep.Send(from, InstallSnapshotChunkReply{
		Term: n.term, Index: rpc.Index, NextOffset: rpc.Total, Done: true,
	})
}

func (n *Node) onInstallSnapshotChunkReply(from string, rpc InstallSnapshotChunkReply) {
	if rpc.Term > n.term {
		n.stepDownLocked(rpc.Term)
		return
	}
	if n.role != Leader || rpc.Term != n.term {
		return
	}
	if rpc.Done {
		delete(n.xfers, from)
		if rpc.Index > n.matchIndex[from] {
			n.matchIndex[from] = rpc.Index
		}
		n.nextIndex[from] = n.matchIndex[from] + 1
		n.advanceCommitLocked()
		// Continue catch-up with regular appends above the snapshot.
		n.sendAppendLocked(from)
		return
	}
	if rpc.Index != n.snap.Index {
		// Ack for a transfer of an older snapshot: restart against the
		// current one.
		delete(n.xfers, from)
		n.sendAppendLocked(from)
		return
	}
	n.sendChunkLocked(from, rpc.NextOffset)
}

func (n *Node) onInstallSnapshotReply(from string, rpc InstallSnapshotReply) {
	if rpc.Term > n.term {
		n.stepDownLocked(rpc.Term)
		return
	}
	if n.role != Leader || rpc.Term != n.term {
		return
	}
	if rpc.Index > n.matchIndex[from] {
		n.matchIndex[from] = rpc.Index
	}
	n.nextIndex[from] = n.matchIndex[from] + 1
	n.advanceCommitLocked()
	// Continue catch-up with regular appends above the snapshot.
	n.sendAppendLocked(from)
}

func (n *Node) onAppendReply(from string, rpc AppendReply) {
	if rpc.Term > n.term {
		n.stepDownLocked(rpc.Term)
		return
	}
	if n.role != Leader || rpc.Term != n.term {
		return
	}
	if rpc.Success {
		if rpc.MatchIndex > n.matchIndex[from] {
			n.matchIndex[from] = rpc.MatchIndex
		}
		n.nextIndex[from] = n.matchIndex[from] + 1
		n.advanceCommitLocked()
		return
	}
	// Follower rejected: back up and retry.
	next := rpc.ConflictIndex
	if next == 0 {
		next = 1
	}
	if next < 1 {
		next = 1
	}
	n.nextIndex[from] = next
	n.sendAppendLocked(from)
}

// advanceCommitLocked commits the highest index replicated on a majority
// whose entry is from the current term (Raft's commitment rule).
func (n *Node) advanceCommitLocked() {
	if n.role != Leader {
		return
	}
	matches := make([]uint64, 0, len(n.peers)+1)
	matches = append(matches, n.lastIndexLocked())
	for _, p := range n.peers {
		matches = append(matches, n.matchIndex[p])
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i] > matches[j] })
	majority := matches[len(matches)/2]
	if majority > n.commitIndex && majority <= n.lastIndexLocked() &&
		n.termAtLocked(majority) == n.term {
		n.commitToLocked(majority)
	}
}

func (n *Node) commitToLocked(idx uint64) {
	for i := n.commitIndex + 1; i <= idx; i++ {
		e := n.entryAtLocked(i)
		if !n.deliverLocked(Committed{Index: i, Term: e.Term, Cmd: e.Cmd}) {
			return
		}
		n.commitIndex = i
	}
}

// WireTypes returns one zero value of every RPC payload type a Transport
// must be able to carry; wire transports register them with their codec
// (e.g. tcpnet's gob streams).
func WireTypes() []any {
	return []any{RequestVote{}, VoteReply{}, AppendEntries{}, AppendReply{},
		InstallSnapshot{}, InstallSnapshotReply{},
		InstallSnapshotChunk{}, InstallSnapshotChunkReply{}}
}

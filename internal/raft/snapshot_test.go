package raft

import (
	"fmt"
	"prognosticator/internal/vclock"
	"testing"
	"time"

	"prognosticator/internal/memnet"
	"prognosticator/internal/wal"
)

func TestFileStorageSaveSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFileStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.SaveState(3, "n1"); err != nil {
		t.Fatal(err)
	}
	var entries []Entry
	for i := 1; i <= 5; i++ {
		entries = append(entries, Entry{Term: 2, Cmd: []byte(fmt.Sprintf("e%d", i))})
	}
	if err := fs.Append(1, entries); err != nil {
		t.Fatal(err)
	}
	snap := Snapshot{Index: 3, Term: 2, Data: []byte("machine-state")}
	if err := fs.SaveSnapshot(snap, entries[3:]); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	// The checkpoint must have compacted the journal to a single segment.
	paths, err := wal.SegmentPaths(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("journal not compacted: %d segments", len(paths))
	}

	fs2, err := OpenFileStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = fs2.Close() }()
	term, voted, gotSnap, log, err := fs2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if term != 3 || voted != "n1" {
		t.Fatalf("state = (%d, %q), want (3, n1)", term, voted)
	}
	if gotSnap.Index != 3 || gotSnap.Term != 2 || string(gotSnap.Data) != "machine-state" {
		t.Fatalf("snapshot = %+v", gotSnap)
	}
	if len(log) != 2 || string(log[0].Cmd) != "e4" || string(log[1].Cmd) != "e5" {
		t.Fatalf("tail = %+v, want [e4 e5]", log)
	}
}

// TestFileStorageCheckpointSupersedesWithoutDrop models a crash between the
// snapshot checkpoint append and the old-segment drop: replay must read the
// stale records and then the checkpoint that supersedes them, never a mix.
func TestFileStorageCheckpointSupersedesWithoutDrop(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFileStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.SaveState(2, "n0"); err != nil {
		t.Fatal(err)
	}
	var entries []Entry
	for i := 1; i <= 6; i++ {
		entries = append(entries, Entry{Term: 1, Cmd: []byte(fmt.Sprintf("e%d", i))})
	}
	if err := fs.Append(1, entries); err != nil {
		t.Fatal(err)
	}
	// Checkpoint WITHOUT rotating or dropping — exactly the journal a crash
	// mid-SaveSnapshot leaves behind (old records still in front).
	snap := Snapshot{Index: 4, Term: 1, Data: []byte("s")}
	if err := fs.append(storageRecord{Kind: "state", Term: 2, VotedFor: "n0"}); err != nil {
		t.Fatal(err)
	}
	if err := fs.append(storageRecord{Kind: "snap", Snap: &snap}); err != nil {
		t.Fatal(err)
	}
	if err := fs.append(storageRecord{Kind: "append", First: 5, Entries: entries[4:]}); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, err := OpenFileStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = fs2.Close() }()
	term, _, gotSnap, log, err := fs2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if term != 2 || gotSnap.Index != 4 {
		t.Fatalf("load = term %d snap %+v, want term 2 snap index 4", term, gotSnap)
	}
	if len(log) != 2 || string(log[0].Cmd) != "e5" || string(log[1].Cmd) != "e6" {
		t.Fatalf("tail = %+v, want [e5 e6]", log)
	}
}

// waitCommit blocks until n's commit index reaches at least idx.
func waitCommit(t *testing.T, n *Node, idx uint64, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for n.CommitIndex() < idx {
		if !time.Now().Before(deadline) {
			t.Fatalf("commit index %d, want >= %d within %v", n.CommitIndex(), idx, within)
		}
		vclock.Wall.Sleep(5 * time.Millisecond)
	}
}

// drainAtLeast collects apply-channel deliveries until at least min have
// arrived and the channel has stayed idle briefly (so trailing async
// deliveries are included).
func drainAtLeast(t *testing.T, n *Node, min int, within time.Duration) []Committed {
	t.Helper()
	deadline := time.Now().Add(within)
	var out []Committed
	for {
		idle := 50 * time.Millisecond
		if len(out) < min {
			idle = time.Until(deadline)
		}
		select {
		case e := <-n.Apply():
			out = append(out, e)
		case <-vclock.Wall.After(idle):
			if len(out) >= min {
				return out
			}
			t.Fatalf("drained %d deliveries, want >= %d within %v", len(out), min, within)
		}
	}
}

func TestNodeCompactBounds(t *testing.T) {
	c := newCluster(t, 1, 41)
	leader := c.waitLeader(3 * time.Second)
	for i := 0; i < 5; i++ {
		c.proposeAndWait(leader, fmt.Sprintf("cmd-%d", i), 3*time.Second)
	}
	// Compacting above the commit index is refused (no-op): it would discard
	// entries the state machine has not covered yet.
	if err := leader.Compact(leader.CommitIndex()+1, nil); err != nil {
		t.Fatal(err)
	}
	if got := leader.SnapshotIndex(); got != 0 {
		t.Fatalf("compact above commit index took effect: snapshot index %d", got)
	}
	if err := leader.Compact(3, []byte("s3")); err != nil {
		t.Fatal(err)
	}
	if got := leader.SnapshotIndex(); got != 3 {
		t.Fatalf("snapshot index = %d, want 3", got)
	}
	// Compaction is monotone: an older snapshot is a no-op.
	if err := leader.Compact(2, []byte("s2")); err != nil {
		t.Fatal(err)
	}
	if got := leader.SnapshotIndex(); got != 3 {
		t.Fatalf("snapshot index moved backward to %d", got)
	}
	// The log still serves proposals and commits above the snapshot.
	c.proposeAndWait(leader, "after-compact", 3*time.Second)
}

// TestNodeRestartFromSnapshot restarts a compacted node from storage: the
// reloaded node resumes at the snapshot boundary and never re-delivers
// compacted entries on its apply channel.
func TestNodeRestartFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	net := memnet.New(43)
	t.Cleanup(net.Close)
	cfg := Config{
		ElectionTimeoutMin: 50 * time.Millisecond,
		ElectionTimeoutMax: 100 * time.Millisecond,
		HeartbeatInterval:  15 * time.Millisecond,
	}
	fs, err := OpenFileStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	node := NewNode("solo", []string{"solo"}, net, cfg, 43)
	if err := node.UseStorage(fs); err != nil {
		t.Fatal(err)
	}
	node.Start()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if role, _ := node.Status(); role == Leader {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatal("no leader within 3s")
		}
		vclock.Wall.Sleep(5 * time.Millisecond)
	}
	for i := 1; i <= 6; i++ {
		if _, _, ok := node.Propose([]byte(fmt.Sprintf("cmd-%d", i))); !ok {
			t.Fatal("propose rejected")
		}
	}
	waitCommit(t, node, 6, 3*time.Second)
	drainAtLeast(t, node, 6, 3*time.Second)
	if err := node.Compact(4, []byte("state@4")); err != nil {
		t.Fatal(err)
	}
	node.Stop()
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, err := OpenFileStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = fs2.Close() }()
	node2 := NewNode("solo", []string{"solo"}, net, cfg, 44)
	if err := node2.UseStorage(fs2); err != nil {
		t.Fatal(err)
	}
	if got := node2.SnapshotIndex(); got != 4 {
		t.Fatalf("reloaded snapshot index = %d, want 4", got)
	}
	node2.Start()
	defer node2.Stop()
	deadline = time.Now().Add(3 * time.Second)
	for {
		if role, _ := node2.Status(); role == Leader {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatal("no leader after restart within 3s")
		}
		vclock.Wall.Sleep(5 * time.Millisecond)
	}
	if _, _, ok := node2.Propose([]byte("post-restart")); !ok {
		t.Fatal("propose rejected after restart")
	}
	waitCommit(t, node2, 7, 3*time.Second)
	seen := drainAtLeast(t, node2, 3, 3*time.Second) // indices 5, 6, 7
	for _, e := range seen {
		if e.Index <= 4 {
			t.Fatalf("compacted entry %d re-delivered after restart", e.Index)
		}
	}
}

// TestLeaderShipsSnapshotToFarBehindFollower is the InstallSnapshot path: a
// follower that missed entries the leader has compacted away must catch up
// via a shipped snapshot, delivered on its apply channel as Snapshot != nil.
func TestLeaderShipsSnapshotToFarBehindFollower(t *testing.T) {
	c := newCluster(t, 3, 47)
	leader := c.waitLeader(3 * time.Second)
	var behindID string
	for _, id := range c.ids {
		if c.nodes[id] != leader {
			behindID = id
			break
		}
	}
	behind := c.nodes[behindID]
	c.net.SetDown(behindID, true)
	live := make([]string, 0, 2)
	for _, id := range c.ids {
		if id != behindID {
			live = append(live, id)
		}
	}
	for i := 0; i < 6; i++ {
		c.proposeAndWait(leader, fmt.Sprintf("cmd-%d", i), 3*time.Second, live...)
	}
	compactAt := leader.CommitIndex()
	if err := leader.Compact(compactAt, []byte("leader-state")); err != nil {
		t.Fatal(err)
	}
	if got := leader.SnapshotIndex(); got != compactAt {
		t.Fatalf("leader snapshot index = %d, want %d", got, compactAt)
	}
	c.net.Drain(behindID)
	c.net.SetDown(behindID, false)

	// Generous deadline: under full-suite load the snapshot resend cadence
	// can need several retries before the follower installs.
	deadline := time.Now().Add(15 * time.Second)
	for behind.SnapshotIndex() < compactAt {
		if !time.Now().Before(deadline) {
			t.Fatalf("follower snapshot index %d, want >= %d", behind.SnapshotIndex(), compactAt)
		}
		vclock.Wall.Sleep(5 * time.Millisecond)
	}
	var install *Committed
	for _, e := range drainAtLeast(t, behind, 1, 3*time.Second) {
		if e.Snapshot != nil {
			e := e
			install = &e
			break
		}
	}
	if install == nil {
		t.Fatal("follower caught up without an InstallSnapshot delivery")
	}
	if install.Index < compactAt || string(install.Snapshot) != "leader-state" {
		t.Fatalf("installed snapshot = index %d data %q", install.Index, install.Snapshot)
	}
	// The follower keeps committing normally after the install.
	c.proposeAndWait(leader, "after-install", 3*time.Second)
}

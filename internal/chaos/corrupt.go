package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"os"

	"prognosticator/internal/wal"
)

// CorruptMode selects how CorruptTail damages a WAL.
type CorruptMode int

const (
	// CorruptTorn truncates the final segment mid-record, simulating a crash
	// during an append (a torn write).
	CorruptTorn CorruptMode = iota
	// CorruptBitFlip flips one random bit in the tail region of the final
	// segment, simulating media corruption; the record's checksum catches it.
	CorruptBitFlip
)

func (m CorruptMode) String() string {
	if m == CorruptTorn {
		return "torn"
	}
	return "bitflip"
}

// ErrNothingToCorrupt is returned when the WAL directory has no non-empty
// segment to damage.
var ErrNothingToCorrupt = errors.New("chaos: no wal data to corrupt")

// CorruptTail damages the tail of the last non-empty WAL segment in dir. The
// damage is confined to the final region of the log, so recovery (which
// truncates at the first corrupt record) loses at most a bounded suffix —
// which Raft re-delivery then restores. rng drives how many bytes are torn
// off or which bit flips.
func CorruptTail(dir string, mode CorruptMode, rng *rand.Rand) error {
	segs, err := wal.SegmentPaths(dir)
	if err != nil {
		return fmt.Errorf("chaos: corrupt tail: %w", err)
	}
	// Last non-empty segment: a freshly rolled segment may be empty.
	var target string
	var size int64
	for i := len(segs) - 1; i >= 0; i-- {
		info, err := os.Stat(segs[i])
		if err != nil {
			return fmt.Errorf("chaos: corrupt tail: %w", err)
		}
		if info.Size() > 0 {
			target, size = segs[i], info.Size()
			break
		}
	}
	if target == "" {
		return ErrNothingToCorrupt
	}
	switch mode {
	case CorruptTorn:
		// Tear off 1..16 bytes (never the whole segment).
		n := int64(1 + rng.Intn(16))
		if n >= size {
			n = size - 1
		}
		if n <= 0 {
			return ErrNothingToCorrupt
		}
		if err := os.Truncate(target, size-n); err != nil {
			return fmt.Errorf("chaos: torn write: %w", err)
		}
	case CorruptBitFlip:
		data, err := os.ReadFile(target)
		if err != nil {
			return fmt.Errorf("chaos: bit flip: %w", err)
		}
		// Flip a bit in the final quarter so only the tail records are hit.
		lo := len(data) * 3 / 4
		pos := lo + rng.Intn(len(data)-lo)
		data[pos] ^= byte(1 << uint(rng.Intn(8)))
		if err := os.WriteFile(target, data, 0o644); err != nil {
			return fmt.Errorf("chaos: bit flip: %w", err)
		}
	default:
		return fmt.Errorf("chaos: unknown corrupt mode %d", int(mode))
	}
	return nil
}

package chaos

import (
	"math/rand"
	"os"
	"prognosticator/internal/vclock"
	"strconv"
	"sync"
	"testing"
	"time"

	"prognosticator/internal/engine"
	"prognosticator/internal/lang"
	"prognosticator/internal/raft"
	"prognosticator/internal/replica"
	"prognosticator/internal/sequencer"
	"prognosticator/internal/store"
	"prognosticator/internal/value"
)

const soakAccounts = 24

// bankRegistry defines the Jepsen-style bank workload: deposits create
// money, transfers move it between accounts. Transfers touch two rows, so
// batches carry real read-write conflicts for the deterministic engine to
// order.
func bankRegistry(t testing.TB) *engine.Registry {
	t.Helper()
	schema := lang.NewSchema(lang.TableSpec{Name: "ACC", KeyArity: 1})
	deposit := &lang.Program{
		Name:   "deposit",
		Params: []lang.Param{lang.IntParam("k", 0, soakAccounts-1), lang.IntParam("amt", 1, 100)},
		Body: []lang.Stmt{
			lang.GetS("a", "ACC", lang.P("k")),
			lang.SetF("a", "bal", lang.Add(lang.Fld(lang.L("a"), "bal"), lang.P("amt"))),
			lang.PutS("ACC", lang.Key(lang.P("k")), lang.L("a")),
		},
	}
	transfer := &lang.Program{
		Name: "transfer",
		Params: []lang.Param{
			lang.IntParam("src", 0, soakAccounts-1),
			lang.IntParam("dst", 0, soakAccounts-1),
			lang.IntParam("amt", 1, 50),
		},
		Body: []lang.Stmt{
			lang.GetS("s", "ACC", lang.P("src")),
			lang.GetS("d", "ACC", lang.P("dst")),
			lang.SetF("s", "bal", lang.Sub(lang.Fld(lang.L("s"), "bal"), lang.P("amt"))),
			lang.SetF("d", "bal", lang.Add(lang.Fld(lang.L("d"), "bal"), lang.P("amt"))),
			lang.PutS("ACC", lang.Key(lang.P("src")), lang.L("s")),
			lang.PutS("ACC", lang.Key(lang.P("dst")), lang.L("d")),
		},
	}
	audit := &lang.Program{
		Name:   "audit",
		Params: []lang.Param{lang.IntParam("k", 0, soakAccounts-1)},
		Body: []lang.Stmt{
			lang.GetS("a", "ACC", lang.P("k")),
			lang.EmitS("bal", lang.Fld(lang.L("a"), "bal")),
		},
	}
	reg, err := engine.NewRegistry(schema, deposit, transfer, audit)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// soakSeed returns the fault-schedule seed, overridable via CHAOS_SEED so CI
// can sweep seeds and a failing schedule can be replayed locally.
func soakSeed(t testing.TB) int64 {
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", s, err)
		}
		return v
	}
	return 1
}

// TestChaosSoak is the Jepsen-lite convergence soak: a bank workload runs
// against a 3-replica cluster while a seeded fault schedule kills and
// restarts replicas mid-batch, corrupts WAL tails, partitions the leader
// away and injects message loss and delay — with snapshotting enabled, so
// recovery paths run over compacted logs. When the dust settles, every
// replica must hash identically to a fault-free reference execution, with
// every submitted batch applied exactly once and dedup memory fully pruned.
func TestChaosSoak(t *testing.T) { soakRun(t, false) }

// TestChaosSoakTCP is the same soak over real loopback TCP sockets:
// simulated-network faults (partition, loss, delay) are skipped, while
// crash/restart faults close and re-listen real endpoints.
func TestChaosSoakTCP(t *testing.T) { soakRun(t, true) }

func soakRun(t *testing.T, tcp bool) {
	seed := soakSeed(t)
	steps, batches, txsPerBatch := 24, 48, 16
	if testing.Short() || tcp {
		steps, batches = 12, 24
	}
	t.Logf("chaos soak: seed=%d steps=%d batches=%d tcp=%v", seed, steps, batches, tcp)

	const snapshotEvery = 8
	reg := bankRegistry(t)
	c, err := replica.NewCluster(replica.ClusterConfig{
		Replicas: 3,
		Seed:     seed,
		NewExecutor: func(id string, st *store.Store) (engine.Executor, error) {
			return engine.New(reg, st, engine.Config{Workers: 4}), nil
		},
		DataDir:       t.TempDir(),
		TCP:           tcp,
		SnapshotEvery: snapshotEvery,
		// Crashed/lagging replicas catch up through Raft; waiting on a
		// majority keeps the workload moving while a victim is down.
		QuorumSubmit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	in := New(c, Config{Seed: seed, Steps: steps, Logf: t.Logf})
	t.Logf("fault plan: %v", in.Plan())

	// Fault-free reference: the same batches applied exactly once each, in
	// submission order, at synthetic indices. Absolute sequence numbers only
	// fix intra-batch order, so the reference reaches the same state the
	// cluster must converge to.
	refStore := store.New()
	refExec := engine.New(reg, refStore, engine.Config{Workers: 4})

	workRng := rand.New(rand.NewSource(seed * 31))
	makeBatch := func() []struct {
		TxName string
		Inputs map[string]value.Value
	} {
		var reqs []struct {
			TxName string
			Inputs map[string]value.Value
		}
		for i := 0; i < txsPerBatch; i++ {
			if workRng.Intn(3) == 0 {
				reqs = append(reqs, struct {
					TxName string
					Inputs map[string]value.Value
				}{"deposit", map[string]value.Value{
					"k":   value.Int(workRng.Int63n(soakAccounts)),
					"amt": value.Int(1 + workRng.Int63n(100)),
				}})
				continue
			}
			src := workRng.Int63n(soakAccounts)
			dst := workRng.Int63n(soakAccounts)
			if dst == src {
				dst = (src + 1) % soakAccounts
			}
			reqs = append(reqs, struct {
				TxName string
				Inputs map[string]value.Value
			}{"transfer", map[string]value.Value{
				"src": value.Int(src), "dst": value.Int(dst),
				"amt": value.Int(1 + workRng.Int63n(50)),
			}})
		}
		return reqs
	}

	// mirror applies one submitted batch to the reference executor (exactly
	// once, same order, synthetic index).
	refIdx := uint64(0)
	mirror := func(reqs []struct {
		TxName string
		Inputs map[string]value.Value
	}) {
		t.Helper()
		ereqs := make([]engine.Request, len(reqs))
		for i, r := range reqs {
			ereqs[i] = engine.Request{TxName: r.TxName, Inputs: r.Inputs}
		}
		data, err := sequencer.EncodeBatch(ereqs)
		if err != nil {
			t.Fatal(err)
		}
		refIdx++
		batch, err := sequencer.DecodeBatch(raft.Committed{Index: refIdx, Cmd: data})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := refExec.ExecuteBatch(batch.Requests); err != nil {
			t.Fatal(err)
		}
	}

	// Interleave: fire the next fault from a goroutine while batches are in
	// flight, so kills land mid-batch. Step serializes internally.
	var wg sync.WaitGroup
	stepIdx := 0
	stepEvery := batches / steps
	if stepEvery < 1 {
		stepEvery = 1
	}
	for b := 0; b < batches; b++ {
		if b%stepEvery == 0 && stepIdx < in.Steps() {
			i := stepIdx
			stepIdx++
			delay := time.Duration(workRng.Intn(20)) * time.Millisecond
			wg.Add(1)
			go func() {
				defer wg.Done()
				vclock.Wall.Sleep(delay)
				if err := in.Step(i); err != nil {
					t.Errorf("chaos step %d: %v", i, err)
				}
			}()
		}
		reqs := makeBatch()
		if err := c.SubmitBatch(reqs, 60*time.Second); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		mirror(reqs)
	}
	wg.Wait()

	if err := in.Quiesce(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}

	// One final batch with every replica live: its acknowledgment propagates
	// the dedup watermark everywhere, so the tables must be empty afterwards.
	final := makeBatch()
	if err := c.SubmitBatch(final, 60*time.Second); err != nil {
		t.Fatalf("final batch: %v", err)
	}
	mirror(final)
	batches++

	// Convergence: all replicas identical, and identical to the reference.
	if !c.Converged() {
		t.Fatalf("replicas diverged after quiesce: %v", c.StateHashes())
	}
	want := refStore.StateHash(refStore.Epoch())
	for i, h := range c.StateHashes() {
		if h != want {
			t.Fatalf("replica %d state %x != fault-free reference %x", i, h, want)
		}
	}
	// Exactly once: every replica's state reflects each batch a single time
	// (replayed-from-WAL + live-applied, duplicates and redeliveries
	// excluded).
	for i := 0; i < c.Size(); i++ {
		rep := c.ReplicaAt(i)
		if rep.Batches() != batches {
			t.Errorf("replica %d reflects %d batches, want %d (deduped=%d redelivered=%d)",
				i, rep.Batches(), batches, rep.Deduped(), rep.Redelivered())
		}
	}

	// Bounded dedup memory: the final all-live acknowledgment pruned every
	// entry at or below the watermark, which covers every submitted batch.
	for i := 0; i < c.Size(); i++ {
		rep := c.ReplicaAt(i)
		if size := rep.DedupSize(); size != 0 {
			t.Errorf("replica %d dedup table holds %d entries after final ack (watermark %d)",
				i, size, rep.DedupWatermark())
		}
	}

	// Snapshotting must have run: the batch count spans several snapshot
	// intervals, so replicas captured snapshots and compacted their raft logs.
	taken, compacted := 0, 0
	for i := 0; i < c.Size(); i++ {
		taken += c.ReplicaAt(i).Snapshots() + c.ReplicaAt(i).SnapshotsInstalled()
		if c.NodeAt(i).SnapshotIndex() > 0 {
			compacted++
		}
	}
	if taken == 0 {
		t.Errorf("no replica captured or installed a snapshot across %d batches (interval %d)",
			batches, snapshotEvery)
	}
	if compacted == 0 {
		t.Error("no raft log was compacted despite snapshots being enabled")
	}

	counters := in.Counters()
	t.Logf("fault counters: %s", counters)
	if int(counters.Value("skipped")) >= stepIdx {
		t.Errorf("all %d fired fault steps were skipped — the schedule exercised nothing", stepIdx)
	}
	if c.Net != nil {
		stats := c.Net.Stats()
		t.Logf("net stats: %+v", stats)
		if stats.Delivered == 0 {
			t.Fatal("network delivered nothing")
		}
		if counters.Value("partition-leader") > 0 && stats.DroppedPartition == 0 {
			t.Error("partition applied but no partition drops counted")
		}
		if counters.Value("loss") > 0 && stats.DroppedLoss == 0 {
			t.Error("loss applied but no loss drops counted")
		}
	}
	kills := counters.Value("kill-leader") + counters.Value("kill-random")
	restarts := counters.Value("restart") + counters.Value("restart-corrupt") + counters.Value("quiesce-restarts")
	if kills > restarts {
		t.Errorf("%d kills but only %d restarts — a replica was left down", kills, restarts)
	}
}

package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"prognosticator/internal/vclock"
	"sync"
	"testing"
	"time"

	"prognosticator/internal/engine"
	"prognosticator/internal/flowctl"
	"prognosticator/internal/raft"
	"prognosticator/internal/replica"
	"prognosticator/internal/sequencer"
	"prognosticator/internal/store"
	"prognosticator/internal/value"
)

// overloadHarness drives a flow-limited cluster with concurrent submit
// pressure and accounts for every outcome: admitted batches are mirrored
// into a reference executor (the workload is deposits only, so cross-batch
// order commutes and any completion order reaches the same state), shed
// batches must carry a typed flowctl error and are never mirrored.
type overloadHarness struct {
	t *testing.T
	c *replica.Cluster

	refMu   sync.Mutex
	refExec engine.Executor
	refIdx  uint64
	ref     *store.Store

	mu       sync.Mutex
	admitted int
	shed     int
	badErrs  []error
}

func newOverloadHarness(t *testing.T, c *replica.Cluster, reg *engine.Registry) *overloadHarness {
	st := store.New()
	return &overloadHarness{
		t: t, c: c, ref: st,
		refExec: engine.New(reg, st, engine.Config{Workers: 4}),
	}
}

// depositBatch builds one deposits-only batch from the given rng.
func depositBatch(rng *rand.Rand, txs int) []replica.Request {
	reqs := make([]replica.Request, 0, txs)
	for i := 0; i < txs; i++ {
		reqs = append(reqs, replica.Request{TxName: "deposit", Inputs: map[string]value.Value{
			"k":   value.Int(rng.Int63n(soakAccounts)),
			"amt": value.Int(1 + rng.Int63n(100)),
		}})
	}
	return reqs
}

// submitOne pushes one batch and classifies the outcome. Shed submits must
// surface flowctl.ErrOverload or flowctl.ErrDeadlineExceeded — anything
// else is recorded as a protocol violation and fails the test later.
func (h *overloadHarness) submitOne(reqs []replica.Request, within time.Duration) {
	err := h.c.SubmitBatch(reqs, within)
	if err == nil {
		h.mirror(reqs)
		h.mu.Lock()
		h.admitted++
		h.mu.Unlock()
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.shed++
	if !errors.Is(err, flowctl.ErrOverload) && !errors.Is(err, flowctl.ErrDeadlineExceeded) {
		h.badErrs = append(h.badErrs, err)
	}
}

// mirror applies one admitted batch to the reference executor.
func (h *overloadHarness) mirror(reqs []replica.Request) {
	ereqs := make([]engine.Request, len(reqs))
	for i, r := range reqs {
		ereqs[i] = engine.Request{TxName: r.TxName, Inputs: r.Inputs}
	}
	data, err := sequencer.EncodeBatch(ereqs)
	if err != nil {
		h.t.Error(err)
		return
	}
	h.refMu.Lock()
	defer h.refMu.Unlock()
	h.refIdx++
	batch, err := sequencer.DecodeBatch(raft.Committed{Index: h.refIdx, Cmd: data})
	if err != nil {
		h.t.Error(err)
		return
	}
	if _, err := h.refExec.ExecuteBatch(batch.Requests); err != nil {
		h.t.Error(err)
	}
}

// finalBatch retries one batch until it is admitted (the rate limiter may
// shed the first attempts): with every replica live, its acknowledgment
// propagates the dedup watermark everywhere.
func (h *overloadHarness) finalBatch(rng *rand.Rand) {
	h.t.Helper()
	reqs := depositBatch(rng, 4)
	deadline := time.Now().Add(30 * time.Second)
	for {
		err := h.c.SubmitBatch(reqs, 20*time.Second)
		if err == nil {
			h.mirror(reqs)
			h.mu.Lock()
			h.admitted++
			h.mu.Unlock()
			return
		}
		if !errors.Is(err, flowctl.ErrOverload) || !time.Now().Before(deadline) {
			h.t.Fatalf("final batch not admitted: %v", err)
		}
		vclock.Wall.Sleep(20 * time.Millisecond)
	}
}

// verify asserts the overload invariants after quiesce: typed errors only,
// exactly-once application of exactly the admitted set, bounded dispatcher
// queues, drained dedup tables, and convergence to the reference state.
func (h *overloadHarness) verify(maxQueue int) {
	h.t.Helper()
	// QuorumSubmit acks on a majority: wait for the laggard before comparing
	// all three states.
	if err := h.c.WaitCaughtUp(20 * time.Second); err != nil {
		h.t.Fatal(err)
	}
	h.mu.Lock()
	admitted, shed, bad := h.admitted, h.shed, h.badErrs
	h.mu.Unlock()
	h.t.Logf("overload: admitted=%d shed=%d flow=%s queueHW=%d inflightHW=%d",
		admitted, shed, h.c.Flow().Counters(), h.c.QueueHighWater(), h.c.Flow().InflightHighWater())
	for _, err := range bad {
		h.t.Errorf("shed submit carried a non-flowctl error: %v", err)
	}
	if shed == 0 {
		h.t.Error("sustained overload shed nothing — admission control never engaged")
	}
	if hw := h.c.QueueHighWater(); hw > maxQueue {
		h.t.Errorf("dispatcher queue high water %d exceeds bound %d", hw, maxQueue)
	}
	if !h.c.Converged() {
		h.t.Fatalf("replicas diverged: %v", h.c.StateHashes())
	}
	want := h.ref.StateHash(h.ref.Epoch())
	for i, got := range h.c.StateHashes() {
		if got != want {
			h.t.Errorf("replica %d state %x != admitted-set reference %x", i, got, want)
		}
	}
	for i := 0; i < h.c.Size(); i++ {
		rep := h.c.ReplicaAt(i)
		if rep.Batches() != admitted {
			h.t.Errorf("replica %d reflects %d batches, want exactly the %d admitted (deduped=%d redelivered=%d)",
				i, rep.Batches(), admitted, rep.Deduped(), rep.Redelivered())
		}
		if size := rep.DedupSize(); size != 0 {
			h.t.Errorf("replica %d dedup table holds %d entries after final ack", i, size)
		}
	}
}

// TestOverloadSoak is the flow-control soak: a flow-limited cluster takes
// sustained submit pressure far above its admission rate (4 unpaced workers
// plus chaos Overload bursts, against a token bucket refilling ~40/s — well
// over 2x what admission lets through), while the chaos injector also
// throttles replica apply loops and kills nodes. The cluster must shed
// deterministically with typed errors, keep every dispatcher queue under its
// bound, apply exactly the admitted batches exactly once, and converge.
func TestOverloadSoak(t *testing.T) {
	seed := soakSeed(t)
	const (
		maxQueue    = 4
		maxInflight = 3
		workers     = 4
	)
	attempts := 40
	if testing.Short() {
		attempts = 20
	}
	t.Logf("overload soak: seed=%d workers=%d attempts=%d", seed, workers, attempts)

	reg := bankRegistry(t)
	c, err := replica.NewCluster(replica.ClusterConfig{
		Replicas: 3,
		Seed:     seed,
		NewExecutor: func(id string, st *store.Store) (engine.Executor, error) {
			return engine.New(reg, st, engine.Config{Workers: 4}), nil
		},
		DataDir:      t.TempDir(),
		QuorumSubmit: true,
		// Worker pressure runs at ~40+ submits/s against a 15/s token bucket:
		// offered load stays above 2x what admission lets through, so both
		// the rate limiter and the inflight cap must shed.
		Flow: flowctl.Config{
			MaxQueue:    maxQueue,
			MaxInflight: maxInflight,
			SubmitRate:  15,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	h := newOverloadHarness(t, c, reg)
	burstRng := rand.New(rand.NewSource(seed * 131))
	var burstRngMu sync.Mutex
	var wg sync.WaitGroup
	in := New(c, Config{Seed: seed, Steps: 10, Logf: t.Logf, Burst: func(n int) {
		for i := 0; i < n; i++ {
			burstRngMu.Lock()
			reqs := depositBatch(burstRng, 4)
			burstRngMu.Unlock()
			wg.Add(1)
			go func() {
				defer wg.Done()
				h.submitOne(reqs, 60*time.Second)
			}()
		}
	}})
	t.Logf("fault plan: %v", in.Plan())

	// The fault schedule fires from its own goroutine while workers submit.
	stepDone := make(chan struct{})
	go func() {
		defer close(stepDone)
		stepRng := rand.New(rand.NewSource(seed * 17))
		for i := 0; i < in.Steps(); i++ {
			vclock.Wall.Sleep(time.Duration(10+stepRng.Intn(30)) * time.Millisecond)
			if err := in.Step(i); err != nil {
				t.Errorf("chaos step %d: %v", i, err)
			}
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*100 + int64(w)))
			for a := 0; a < attempts; a++ {
				h.submitOne(depositBatch(rng, 8), 60*time.Second)
				vclock.Wall.Sleep(time.Duration(rng.Intn(8)) * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	<-stepDone

	if err := in.Quiesce(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}

	// Exercise the dispatcher queue bound directly: the buffered Submit path
	// must shed at the bound with ErrOverload, never grow past it. Discard
	// leaves no residue for the applied-state accounting.
	li, err := c.WaitLeader(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	d := c.Dispatchers[li]
	sheds := 0
	for i := 0; i < maxQueue+3; i++ {
		if err := d.Submit("deposit", map[string]value.Value{
			"k": value.Int(0), "amt": value.Int(1),
		}); err != nil {
			if !errors.Is(err, flowctl.ErrOverload) {
				t.Fatalf("queue shed error = %v, want flowctl.ErrOverload", err)
			}
			sheds++
		}
	}
	if sheds != 3 {
		t.Errorf("queue of %d shed %d of %d excess submits, want 3", maxQueue, sheds, maxQueue+3)
	}
	d.Discard()

	h.finalBatch(rand.New(rand.NewSource(seed * 211)))
	h.verify(maxQueue)

	counters := in.Counters()
	t.Logf("fault counters: %s", counters)
	if counters.Value("overload") == 0 {
		t.Error("no overload burst fired (anchored fault missing from schedule?)")
	}
	if counters.Value("slow-apply") == 0 {
		t.Error("no slow-apply fault fired (anchored fault missing from schedule?)")
	}
}

// TestOverloadChaosProperty is the randomized invariant check: for many
// seeds, a small flow-limited cluster under concurrent overload and a
// seeded fault schedule must (a) apply every admitted batch exactly once,
// (b) never apply a shed batch, and (c) drain its dedup tables to zero
// after the final all-live acknowledgment.
func TestOverloadChaosProperty(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 8
	}
	for s := 1; s <= seeds; s++ {
		t.Run(fmt.Sprintf("seed=%d", s), func(t *testing.T) {
			overloadPropertyRun(t, int64(s))
		})
	}
}

func overloadPropertyRun(t *testing.T, seed int64) {
	const maxQueue = 4
	reg := bankRegistry(t)
	c, err := replica.NewCluster(replica.ClusterConfig{
		Replicas: 3,
		Seed:     seed,
		NewExecutor: func(id string, st *store.Store) (engine.Executor, error) {
			return engine.New(reg, st, engine.Config{Workers: 2}), nil
		},
		DataDir:      t.TempDir(),
		QuorumSubmit: true,
		Flow: flowctl.Config{
			MaxQueue:    maxQueue,
			MaxInflight: 2,
			SubmitRate:  60,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	h := newOverloadHarness(t, c, reg)
	var wg sync.WaitGroup
	var burstRngMu sync.Mutex
	burstRng := rand.New(rand.NewSource(seed * 131))
	in := New(c, Config{Seed: seed, Steps: len(anchors), Burst: func(n int) {
		for i := 0; i < n; i++ {
			burstRngMu.Lock()
			reqs := depositBatch(burstRng, 4)
			burstRngMu.Unlock()
			wg.Add(1)
			go func() {
				defer wg.Done()
				h.submitOne(reqs, 60*time.Second)
			}()
		}
	}})

	stepDone := make(chan struct{})
	go func() {
		defer close(stepDone)
		stepRng := rand.New(rand.NewSource(seed * 17))
		for i := 0; i < in.Steps(); i++ {
			vclock.Wall.Sleep(time.Duration(5+stepRng.Intn(15)) * time.Millisecond)
			if err := in.Step(i); err != nil {
				t.Errorf("chaos step %d: %v", i, err)
			}
		}
	}()

	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*100 + int64(w)))
			for a := 0; a < 10; a++ {
				h.submitOne(depositBatch(rng, 6), 60*time.Second)
				vclock.Wall.Sleep(time.Duration(rng.Intn(6)) * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	<-stepDone

	if err := in.Quiesce(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	h.finalBatch(rand.New(rand.NewSource(seed * 211)))
	h.verify(maxQueue)
}

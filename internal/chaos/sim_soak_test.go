package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"
	"time"

	"prognosticator/internal/engine"
	"prognosticator/internal/flowctl"
	"prognosticator/internal/history"
	"prognosticator/internal/profile"
	"prognosticator/internal/raft"
	"prognosticator/internal/replica"
	"prognosticator/internal/sched"
	"prognosticator/internal/sequencer"
	"prognosticator/internal/store"
	"prognosticator/internal/value"
	"prognosticator/internal/vclock"
	"prognosticator/internal/workload/tpcc"
)

// encodeDecode round-trips one batch through the sequencer codec at a
// synthetic commit index, exactly as the replica apply path would see it.
func encodeDecode(idx uint64, ereqs []engine.Request) ([]engine.Request, error) {
	data, err := sequencer.EncodeBatch(ereqs)
	if err != nil {
		return nil, err
	}
	b, err := sequencer.DecodeBatch(raft.Committed{Index: idx, Cmd: data})
	if err != nil {
		return nil, err
	}
	return b.Requests, nil
}

// bankBatch builds one mixed bank batch (deposits, transfers and read-only
// audits) from the given rng.
func bankBatch(rng *rand.Rand, txs int) []replica.Request {
	reqs := make([]replica.Request, 0, txs)
	for i := 0; i < txs; i++ {
		switch rng.Intn(6) {
		case 0, 1:
			reqs = append(reqs, replica.Request{TxName: "deposit", Inputs: map[string]value.Value{
				"k":   value.Int(rng.Int63n(soakAccounts)),
				"amt": value.Int(1 + rng.Int63n(100)),
			}})
		case 2:
			reqs = append(reqs, replica.Request{TxName: "audit", Inputs: map[string]value.Value{
				"k": value.Int(rng.Int63n(soakAccounts)),
			}})
		default:
			src := rng.Int63n(soakAccounts)
			dst := rng.Int63n(soakAccounts)
			if dst == src {
				dst = (src + 1) % soakAccounts
			}
			reqs = append(reqs, replica.Request{TxName: "transfer", Inputs: map[string]value.Value{
				"src": value.Int(src), "dst": value.Int(dst),
				"amt": value.Int(1 + rng.Int63n(50)),
			}})
		}
	}
	return reqs
}

// simTrace accumulates the replayable event log of one simulated run. Every
// line carries its virtual timestamp, and under the cooperative scheduler
// (internal/sched) the timestamps are part of the replay contract: the
// entire interleaving — which actor runs when, which message arrives first,
// when elections fire — is a pure function of the seed, so two same-seed
// runs must produce byte-identical traces, timestamps included.
type simTrace struct {
	sim *vclock.Sim
	buf bytes.Buffer
}

func (tr *simTrace) add(format string, args ...any) {
	fmt.Fprintf(&tr.buf, "t=%d ", tr.sim.Now().UnixNano())
	fmt.Fprintf(&tr.buf, format, args...)
	tr.buf.WriteByte('\n')
}

func (tr *simTrace) String() string { return tr.buf.String() }

// assertReplay requires two same-seed runs to have produced byte-identical
// event traces — virtual timestamps included — and the same final state
// hash. This is the bit-stable replay guarantee: no timestamp stripping, no
// tolerance for runtime-ordered wakeups.
func assertReplay(t *testing.T, seed int64, tr1, tr2 string, h1, h2 uint64) {
	t.Helper()
	if h1 != h2 {
		t.Errorf("same-seed runs reached different states: %x vs %x", h1, h2)
	}
	if tr1 != tr2 {
		t.Errorf("same-seed runs produced different event traces (seed %d):\n--- run 1 ---\n%s--- run 2 ---\n%s", seed, tr1, tr2)
	}
}

// runSimChaosSoak is one fully simulated chaos soak: a 3-replica cluster on
// a seeded virtual clock under the cooperative scheduler, a sequential
// client (the root actor), and the chaos fault plan fired inline at batch
// boundaries. Returns the replayable event trace and the converged state
// hash.
func runSimChaosSoak(t *testing.T, seed int64) (string, uint64) {
	t.Helper()
	const steps, batches, txsPerBatch = 12, 24, 8
	sim := vclock.NewSim(seed)
	clk := sim.Clock()
	reg := bankRegistry(t)
	dir := t.TempDir()
	tr := &simTrace{sim: sim}
	var want uint64

	if err := sched.Run(sim, func() {
		c, err := replica.NewCluster(replica.ClusterConfig{
			Replicas: 3,
			Seed:     seed,
			Clock:    clk,
			NewExecutor: func(id string, st *store.Store) (engine.Executor, error) {
				return engine.New(reg, st, engine.Config{Workers: 4}), nil
			},
			DataDir:       dir,
			SnapshotEvery: 8,
			QuorumSubmit:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Stop()

		in := New(c, Config{Seed: seed, Steps: steps, Logf: t.Logf})
		tr.add("plan %v", in.Plan())

		refStore := store.New()
		refExec := engine.New(reg, refStore, engine.Config{Workers: 4})
		refIdx := uint64(0)
		mirror := func(reqs []replica.Request) {
			t.Helper()
			if err := mirrorBatch(refExec, &refIdx, reqs); err != nil {
				t.Fatal(err)
			}
		}

		workRng := rand.New(rand.NewSource(seed * 31))
		stepIdx := 0
		stepEvery := batches / steps
		if stepEvery < 1 {
			stepEvery = 1
		}
		for b := 0; b < batches; b++ {
			if b%stepEvery == 0 && stepIdx < in.Steps() {
				if err := in.Step(stepIdx); err != nil {
					t.Fatalf("chaos step %d: %v", stepIdx, err)
				}
				tr.add("step %d %s", stepIdx, in.Plan()[stepIdx])
				stepIdx++
			}
			reqs := bankBatch(workRng, txsPerBatch)
			if err := c.SubmitBatch(reqs, 60*time.Second); err != nil {
				t.Fatalf("batch %d: %v", b, err)
			}
			mirror(reqs)
			tr.add("batch %d ok", b)
		}

		if err := in.Quiesce(60 * time.Second); err != nil {
			t.Fatal(err)
		}
		if err := c.Err(); err != nil {
			t.Fatal(err)
		}
		tr.add("quiesced")

		// Final all-live batch: propagates the dedup watermark everywhere.
		final := bankBatch(workRng, txsPerBatch)
		if err := c.SubmitBatch(final, 60*time.Second); err != nil {
			t.Fatalf("final batch: %v", err)
		}
		mirror(final)

		if !c.Converged() {
			t.Fatalf("replicas diverged after quiesce: %v", c.StateHashes())
		}
		want = refStore.StateHash(refStore.Epoch())
		hashes := c.StateHashes()
		for i, h := range hashes {
			if h != want {
				t.Fatalf("replica %d state %x != fault-free reference %x", i, h, want)
			}
		}
		for i := 0; i < c.Size(); i++ {
			if got := c.ReplicaAt(i).Batches(); got != batches+1 {
				t.Errorf("replica %d reflects %d batches, want %d", i, got, batches+1)
			}
		}
		tr.add("converged hash=%016x", want)
	}); err != nil {
		t.Fatal(err)
	}
	return tr.String(), want
}

// mirrorBatch applies one submitted batch to the fault-free reference
// executor at a synthetic index.
func mirrorBatch(exec engine.Executor, idx *uint64, reqs []replica.Request) error {
	ereqs := make([]engine.Request, len(reqs))
	for i, r := range reqs {
		ereqs[i] = engine.Request{TxName: r.TxName, Inputs: r.Inputs}
	}
	batch, err := encodeDecode(*idx+1, ereqs)
	if err != nil {
		return err
	}
	*idx++
	_, err = exec.ExecuteBatch(batch)
	return err
}

// TestSimChaosSoak runs the chaos soak twice on the same seeded virtual
// clock and requires identical replay: same event sequence, same converged
// state hash. The wall-clock TestChaosSoak remains as the real-time smoke
// variant.
func TestSimChaosSoak(t *testing.T) {
	seed := soakSeed(t)
	t.Logf("sim chaos soak: seed=%d", seed)
	tr1, h1 := runSimChaosSoak(t, seed)
	tr2, h2 := runSimChaosSoak(t, seed)
	assertReplay(t, seed, tr1, tr2, h1, h2)
}

// Golden replay pins for TestGoldenSeedReplay: the converged state hash and
// the FNV-1a hash of the full event trace for one fixed seed. These values
// are part of the determinism contract — they must reproduce on any
// machine, any GOMAXPROCS, with or without -race. They legitimately change
// only when the simulation's event sequence changes by design (scheduler
// pick function, chaos plan, workload generator, timer cadence, message
// encoding); regenerate by running
//
//	go test -run TestGoldenSeedReplay -v ./internal/chaos
//
// and copying the hashes from the failure output.
const (
	goldenSeed             = 42
	goldenStateHash uint64 = 0xbfde4f046cd3036f
	goldenTraceHash uint64 = 0x1f4f593a10dab785
)

// TestGoldenSeedReplay is the cross-machine regression pin for bit-stable
// simulation: seed 42's chaos soak must converge to exactly the golden
// state hash with exactly the golden event trace, forever. A failure here
// without an intentional simulation change means determinism regressed —
// some new code path consults the Go runtime's scheduling, a map order, or
// wall time.
func TestGoldenSeedReplay(t *testing.T) {
	tr, state := runSimChaosSoak(t, goldenSeed)
	h := fnv.New64a()
	h.Write([]byte(tr))
	traceHash := h.Sum64()
	if state != goldenStateHash || traceHash != goldenTraceHash {
		t.Errorf("golden replay diverged (seed %d):\n  state hash %#016x, want %#016x\n  trace hash %#016x, want %#016x\nIf the simulation changed BY DESIGN, update goldenStateHash/goldenTraceHash to these values.",
			goldenSeed, state, goldenStateHash, traceHash, goldenTraceHash)
	}
}

// runSimOverloadSoak drives sustained sequential submit pressure against a
// flow-limited cluster on the virtual clock: admission decisions (token
// bucket, retry budget, breaker) all run in virtual time, so the
// admit/shed sequence is part of the replayable trace.
func runSimOverloadSoak(t *testing.T, seed int64) (string, uint64) {
	t.Helper()
	const attempts, txsPerBatch = 40, 8
	sim := vclock.NewSim(seed)
	clk := sim.Clock()
	reg := bankRegistry(t)
	dir := t.TempDir()
	tr := &simTrace{sim: sim}
	var want uint64

	if err := sched.Run(sim, func() {
		c, err := replica.NewCluster(replica.ClusterConfig{
			Replicas: 3,
			Seed:     seed,
			Clock:    clk,
			NewExecutor: func(id string, st *store.Store) (engine.Executor, error) {
				return engine.New(reg, st, engine.Config{Workers: 4}), nil
			},
			DataDir:      dir,
			QuorumSubmit: true,
			Flow: flowctl.Config{
				MaxQueue:    4,
				MaxInflight: 3,
				SubmitRate:  15,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Stop()

		refStore := store.New()
		refExec := engine.New(reg, refStore, engine.Config{Workers: 4})
		refIdx := uint64(0)

		workRng := rand.New(rand.NewSource(seed * 131))
		admitted, shed := 0, 0
		for a := 0; a < attempts; a++ {
			reqs := bankBatch(workRng, txsPerBatch)
			err := c.SubmitBatch(reqs, 30*time.Second)
			switch {
			case err == nil:
				admitted++
				if merr := mirrorBatch(refExec, &refIdx, reqs); merr != nil {
					t.Fatal(merr)
				}
				tr.add("submit %d admitted", a)
			case errors.Is(err, flowctl.ErrOverload) || errors.Is(err, flowctl.ErrDeadlineExceeded):
				shed++
				tr.add("submit %d shed", a)
			default:
				t.Fatalf("submit %d: non-flowctl error: %v", a, err)
			}
		}
		if shed == 0 {
			t.Error("sustained overload shed nothing — admission control never engaged")
		}

		// Drain: wait for token-bucket refill (virtual time!) and land one final
		// batch so the dedup watermark propagates.
		var finalErr error
		for tries := 0; tries < 50; tries++ {
			reqs := bankBatch(workRng, 4)
			finalErr = c.SubmitBatch(reqs, 30*time.Second)
			if finalErr == nil {
				admitted++
				if merr := mirrorBatch(refExec, &refIdx, reqs); merr != nil {
					t.Fatal(merr)
				}
				break
			}
			if !errors.Is(finalErr, flowctl.ErrOverload) {
				t.Fatalf("final batch: %v", finalErr)
			}
			clk.Sleep(200 * time.Millisecond)
		}
		if finalErr != nil {
			t.Fatalf("final batch never admitted: %v", finalErr)
		}
		if err := c.WaitCaughtUp(30 * time.Second); err != nil {
			t.Fatal(err)
		}

		tr.add("admitted=%d shed=%d flow=%s", admitted, shed, c.Flow().Counters())
		if !c.Converged() {
			t.Fatalf("replicas diverged: %v", c.StateHashes())
		}
		want = refStore.StateHash(refStore.Epoch())
		for i, h := range c.StateHashes() {
			if h != want {
				t.Fatalf("replica %d state %x != admitted-set reference %x", i, h, want)
			}
		}
		for i := 0; i < c.Size(); i++ {
			if got := c.ReplicaAt(i).Batches(); got != admitted {
				t.Errorf("replica %d reflects %d batches, want exactly the %d admitted", i, got, admitted)
			}
		}
		tr.add("converged hash=%016x", want)
	}); err != nil {
		t.Fatal(err)
	}
	return tr.String(), want
}

// TestSimOverloadSoak replays the overload soak: two same-seed virtual-time
// runs must produce the identical admit/shed sequence and final state. The
// wall-clock TestOverloadSoak remains as the real-time smoke variant.
func TestSimOverloadSoak(t *testing.T) {
	seed := soakSeed(t)
	t.Logf("sim overload soak: seed=%d", seed)
	tr1, h1 := runSimOverloadSoak(t, seed)
	tr2, h2 := runSimOverloadSoak(t, seed)
	assertReplay(t, seed, tr1, tr2, h1, h2)
}

// TestSimSerializability records every committed transaction's read/write
// footprints from simulated cluster runs — the bank workload under network
// faults, and TPC-C over pre-populated stores — and feeds the recorded
// histories to the serializability checker. It then corrupts a recorded
// history with a textbook anomaly and requires the checker to reject it.
func TestSimSerializability(t *testing.T) {
	seed := soakSeed(t)

	t.Run("bank", func(t *testing.T) {
		rec := simSerializabilityRun(t, seed, bankRegistry(t), nil, func(rng *rand.Rand) []replica.Request {
			return bankBatch(rng, 8)
		}, true)
		if rec.Len() == 0 {
			t.Fatal("no operations recorded")
		}
		if err := rec.Check(nil); err != nil {
			t.Errorf("recorded bank history rejected: %v", err)
		}
		if len(rec.Traces()) == 0 {
			t.Fatal("no lock traces recorded")
		}
		if err := rec.CheckTraced(nil); err != nil {
			t.Errorf("lock-grant-traced bank history rejected: %v", err)
		}
	})

	t.Run("tpcc", func(t *testing.T) {
		cfg := tpcc.DefaultConfig(1)
		reg, err := engine.NewRegistry(tpcc.Schema(), tpcc.Programs(cfg)...)
		if err != nil {
			t.Fatal(err)
		}
		// Initial-state fingerprints from an identically populated scratch
		// store: TPC-C rows exist before the first recorded transaction.
		seedStore := store.New()
		tpcc.Populate(seedStore, cfg)
		initial := map[string]string{}
		seedStore.ForEach(seedStore.Epoch(), func(k value.Encoded, v value.Value) {
			initial[string(k)] = engine.Fingerprint(v)
		})
		gen := tpcc.NewGenerator(cfg, seed)
		rec := simSerializabilityRun(t, seed, reg, func(st *store.Store) {
			tpcc.Populate(st, cfg)
		}, func(rng *rand.Rand) []replica.Request {
			reqs := make([]replica.Request, 0, 6)
			for i := 0; i < 6; i++ {
				name, inputs := gen.Next()
				reqs = append(reqs, replica.Request{TxName: name, Inputs: inputs})
			}
			return reqs
		}, false)
		if rec.Len() == 0 {
			t.Fatal("no operations recorded")
		}
		if err := rec.Check(initial); err != nil {
			t.Errorf("recorded TPC-C history rejected: %v", err)
		}
		if err := rec.CheckTraced(initial); err != nil {
			t.Errorf("lock-grant-traced TPC-C history rejected: %v", err)
		}
	})

	t.Run("rejects-injected-anomaly", func(t *testing.T) {
		// A lost update spliced onto a fresh key must always be rejected,
		// whatever the surrounding recorded history looks like.
		ops := []history.Op{
			{ID: "anomaly-1", Index: 1 << 60, Seq: 1 << 60, Class: profile.ClassIT,
				Reads:  []engine.Access{{Key: "anomaly:x", Val: ""}},
				Writes: []engine.Access{{Key: "anomaly:x", Val: "a1"}}},
			{ID: "anomaly-2", Index: 1<<60 + 1, Seq: 1<<60 + 1, Class: profile.ClassIT,
				Reads:  []engine.Access{{Key: "anomaly:x", Val: ""}},
				Writes: []engine.Access{{Key: "anomaly:x", Val: "a2"}}},
		}
		if err := history.Check(ops, nil); err == nil {
			t.Fatal("checker accepted an injected lost update")
		}
	})
}

// simSerializabilityRun runs one simulated cluster with footprint recording
// on and a history recorder tapping every replica's apply path, submits
// seeded batches (with a few network faults when withFaults is set), and
// returns the recorder.
func simSerializabilityRun(t *testing.T, seed int64, reg *engine.Registry, populate func(*store.Store), makeBatch func(*rand.Rand) []replica.Request, withFaults bool) *history.Recorder {
	t.Helper()
	const batches = 16
	sim := vclock.NewSim(seed)
	clk := sim.Clock()
	dir := t.TempDir()

	rec := history.NewRecorder()
	if err := sched.Run(sim, func() {
		c, err := replica.NewCluster(replica.ClusterConfig{
			Replicas: 3,
			Seed:     seed,
			Clock:    clk,
			NewExecutor: func(id string, st *store.Store) (engine.Executor, error) {
				if populate != nil {
					populate(st)
				}
				return engine.New(reg, st, engine.Config{Workers: 4, RecordFootprints: true, TraceLocks: true}), nil
			},
			DataDir:      dir,
			QuorumSubmit: true,
			OnApply:      rec.Observe,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Stop()

		workRng := rand.New(rand.NewSource(seed * 53))
		for b := 0; b < batches; b++ {
			if withFaults {
				switch b {
				case 3:
					c.SetLoss(0.10)
				case 6:
					c.SetLoss(0)
					c.SetDelay(0, 2*time.Millisecond)
				case 9:
					c.SetDelay(0, 0)
					if li, lerr := c.WaitLeader(10 * time.Second); lerr == nil {
						ids := c.IDs()
						minority := []string{ids[li]}
						var majority []string
						for i, id := range ids {
							if i != li {
								majority = append(majority, id)
							}
						}
						c.Net.Partition(minority, majority)
					}
				case 12:
					c.Net.Heal()
				}
			}
			if err := c.SubmitBatch(makeBatch(workRng), 60*time.Second); err != nil {
				t.Fatalf("batch %d: %v", b, err)
			}
		}
		if withFaults {
			c.Net.Heal()
			c.SetLoss(0)
			c.SetDelay(0, 0)
		}
		if err := c.WaitCaughtUp(30 * time.Second); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	return rec
}

// Package chaos is a seeded, deterministic fault scheduler for the
// in-process replicated deployment (internal/replica). It kills and restarts
// replicas mid-batch, corrupts WAL tails before a rejoin, partitions the
// network around the current leader, and injects message loss and delay —
// all from a plan derived from one seed, so a failing soak run replays with
// the same fault schedule. The invariant it exists to attack: after every
// fault is lifted (Quiesce), all replicas converge to identical state hashes
// with every submitted batch applied exactly once.
package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"prognosticator/internal/metrics"
	"prognosticator/internal/replica"
	"prognosticator/internal/vclock"
)

// Fault is one schedulable fault kind.
type Fault int

const (
	// KillLeader crashes the current leader (process kill: apply loop and
	// raft node stop, files close; state survives on disk).
	KillLeader Fault = iota
	// KillRandom crashes a random live replica.
	KillRandom
	// RestartClean restarts one crashed replica: WAL replay, then Raft
	// catch-up.
	RestartClean
	// RestartCorrupt corrupts the crashed replica's WAL tail (torn write or
	// bit flip, alternating by rng) before restarting it, forcing the
	// truncate-and-catch-up recovery path. If nothing is down it first
	// crashes a random replica.
	RestartCorrupt
	// PartitionLeader isolates the current leader in a minority partition;
	// the majority side must elect a successor and keep committing.
	PartitionLeader
	// HealPartition removes all partitions.
	HealPartition
	// InjectLoss sets a random message-loss probability in [5%, 25%].
	InjectLoss
	// ClearLoss removes message loss.
	ClearLoss
	// InjectDelay sets a random per-message delivery delay up to a few ms.
	InjectDelay
	// ClearDelay removes artificial delay.
	ClearDelay
	// SlowApply throttles one live replica's apply loop by a few ms per
	// batch, making it a straggler: commit quorum advances without it and
	// its dispatcher queue feels backpressure.
	SlowApply
	// ClearSlowApply removes all apply throttles.
	ClearSlowApply
	// Overload fires a burst of concurrent submits through the Config.Burst
	// callback, driving the admission controller into shedding. Skipped when
	// no callback is configured.
	Overload
	numFaults int = iota
)

var faultNames = [...]string{
	KillLeader:      "kill-leader",
	KillRandom:      "kill-random",
	RestartClean:    "restart",
	RestartCorrupt:  "restart-corrupt",
	PartitionLeader: "partition-leader",
	HealPartition:   "heal",
	InjectLoss:      "loss",
	ClearLoss:       "clear-loss",
	InjectDelay:     "delay",
	ClearDelay:      "clear-delay",
	SlowApply:       "slow-apply",
	ClearSlowApply:  "clear-slow-apply",
	Overload:        "overload",
}

func (f Fault) String() string {
	if int(f) < len(faultNames) {
		return faultNames[f]
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// Config parameterizes an Injector.
type Config struct {
	// Seed drives both plan generation and every random choice made while
	// applying a step (victim selection, loss rate, corruption mode).
	Seed int64
	// Steps is the plan length (minimum: one of each anchor fault).
	Steps int
	// Logf, when set, receives one line per applied fault.
	Logf func(format string, args ...any)
	// Burst, when set, is called by Overload steps with a seeded burst size;
	// it should fire that many submits concurrently and tolerate
	// flow-control rejections (typed flowctl errors are the expected
	// outcome, not failures). Overload steps are skipped when nil.
	Burst func(n int)
}

// Injector drives a fault plan against one cluster. Step may be called from
// a different goroutine than the one submitting batches — that is the point:
// kills land mid-batch.
type Injector struct {
	c   *replica.Cluster
	cfg Config

	// stepMu serializes fault application: Step may be called from many
	// goroutines (to land kills mid-batch), but two overlapping kills could
	// each pass the quorum-budget check and together break quorum.
	stepMu      sync.Mutex
	partitioned bool // guarded by stepMu
	slowed      bool // guarded by stepMu: some replica has an apply throttle

	mu       sync.Mutex
	rng      *rand.Rand
	plan     []Fault
	counters *metrics.CounterSet
}

// anchors are the fault kinds every plan is guaranteed to contain at least
// once, so no soak run silently skips a recovery path.
var anchors = []Fault{KillLeader, RestartCorrupt, PartitionLeader, HealPartition, InjectLoss, ClearLoss, SlowApply, ClearSlowApply, Overload}

// New builds an injector with a deterministic plan for cluster c. The plan
// always contains every anchor fault; remaining slots are filled uniformly
// and the whole schedule is shuffled by the seeded rng.
func New(c *replica.Cluster, cfg Config) *Injector {
	if cfg.Steps < len(anchors) {
		cfg.Steps = len(anchors)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	plan := make([]Fault, 0, cfg.Steps)
	plan = append(plan, anchors...)
	for len(plan) < cfg.Steps {
		plan = append(plan, Fault(rng.Intn(numFaults)))
	}
	rng.Shuffle(len(plan), func(i, j int) { plan[i], plan[j] = plan[j], plan[i] })
	return &Injector{
		c:        c,
		cfg:      cfg,
		rng:      rng,
		plan:     plan,
		counters: metrics.NewCounterSet(),
	}
}

// Plan returns a copy of the fault schedule.
func (in *Injector) Plan() []Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Fault, len(in.plan))
	copy(out, in.plan)
	return out
}

// Steps returns the plan length.
func (in *Injector) Steps() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.plan)
}

// Counters returns the fault/outcome counters (keys are fault names plus
// "skipped" for steps that could not apply, e.g. a kill that would break
// quorum).
func (in *Injector) Counters() *metrics.CounterSet { return in.counters }

// Step applies the i-th planned fault. Steps that cannot apply in the
// current cluster state (killing below quorum, restarting with nothing
// down, healing with no partition) are counted as "skipped" and return nil;
// only real breakage returns an error.
func (in *Injector) Step(i int) error {
	in.mu.Lock()
	if i < 0 || i >= len(in.plan) {
		in.mu.Unlock()
		return fmt.Errorf("chaos: step %d out of range (plan has %d)", i, len(in.plan))
	}
	f := in.plan[i]
	in.mu.Unlock()
	// Chaos anchors are scheduler yield points: under the cooperative
	// scheduler the picker may interleave other actors before the fault
	// lands, and where it does so is itself a pure function of the seed.
	vclock.Yield(in.c.Clock())
	in.stepMu.Lock()
	applied, err := in.apply(f)
	in.stepMu.Unlock()
	if err != nil {
		return fmt.Errorf("chaos: step %d (%s): %w", i, f, err)
	}
	if applied {
		in.counters.Add(f.String(), 1)
		in.logf("chaos: step %d: %s", i, f)
	} else {
		in.counters.Add("skipped", 1)
		in.logf("chaos: step %d: %s (skipped)", i, f)
	}
	return nil
}

func (in *Injector) logf(format string, args ...any) {
	if in.cfg.Logf != nil {
		in.cfg.Logf(format, args...)
	}
}

// killBudget returns how many replicas may be down simultaneously while a
// commit quorum stays live.
func (in *Injector) killBudget() int {
	return in.c.Size() - (in.c.Size()/2 + 1)
}

func (in *Injector) apply(f Fault) (bool, error) {
	switch f {
	case KillLeader, KillRandom:
		// A kill while the leader is partitioned away could leave live
		// replicas split with no quorum on either side: the cluster would
		// stall until a heal. Keep faults composable instead of stacking
		// into a total outage.
		if in.partitioned || len(in.c.DownReplicas()) >= in.killBudget() {
			return false, nil
		}
		victim := -1
		if f == KillLeader {
			li, err := in.c.WaitLeader(3 * time.Second)
			if err != nil {
				return false, nil // no leader to kill right now
			}
			victim = li
		} else {
			victim = in.pickLive()
		}
		if victim < 0 {
			return false, nil
		}
		if err := in.c.Crash(victim); err != nil {
			return false, err
		}
		return true, nil

	case RestartClean:
		down := in.c.DownReplicas()
		if len(down) == 0 {
			return false, nil
		}
		in.mu.Lock()
		victim := down[in.rng.Intn(len(down))]
		in.mu.Unlock()
		return true, in.c.Restart(victim)

	case RestartCorrupt:
		down := in.c.DownReplicas()
		if len(down) == 0 {
			// Nothing to corrupt: take a victim first so this anchor always
			// exercises the corrupted-recovery path.
			if in.partitioned || len(in.c.DownReplicas()) >= in.killBudget() {
				return false, nil
			}
			v := in.pickLive()
			if v < 0 {
				return false, nil
			}
			if err := in.c.Crash(v); err != nil {
				return false, err
			}
			down = []int{v}
		}
		in.mu.Lock()
		victim := down[in.rng.Intn(len(down))]
		mode := CorruptTorn
		if in.rng.Intn(2) == 1 {
			mode = CorruptBitFlip
		}
		err := CorruptTail(in.c.WALDir(victim), mode, in.rng)
		in.mu.Unlock()
		if err != nil && err != ErrNothingToCorrupt {
			return false, err
		}
		if err == nil {
			in.counters.Add("wal-corruptions", 1)
		}
		return true, in.c.Restart(victim)

	case PartitionLeader:
		if in.partitioned || in.c.Net == nil {
			// Partitions, loss and delay are simulated-network faults; over
			// TCP (Net == nil) the schedule still runs, these steps just
			// count as skipped while crash/restart hit real sockets.
			return false, nil
		}
		// Partitioning with a replica already down (3-node cluster: isolated
		// leader on one side, one live + one dead on the other) would leave
		// no quorum anywhere. Bring the dead back first — a restart only adds
		// capacity — so the partition path is actually exercised.
		for _, d := range in.c.DownReplicas() {
			if err := in.c.Restart(d); err != nil {
				return false, err
			}
			in.counters.Add("restart", 1)
		}
		li, err := in.c.WaitLeader(3 * time.Second)
		if err != nil {
			return false, nil
		}
		ids := in.c.IDs()
		minority := []string{ids[li]}
		majority := make([]string, 0, len(ids)-1)
		for i, id := range ids {
			if i != li {
				majority = append(majority, id)
			}
		}
		in.c.Net.Partition(minority, majority)
		in.partitioned = true
		return true, nil

	case HealPartition:
		if !in.partitioned || in.c.Net == nil {
			return false, nil
		}
		in.c.Net.Heal()
		in.partitioned = false
		return true, nil

	case InjectLoss:
		// Loss and delay are transport-abstracted (Cluster routes them to
		// the memnet fabric or to per-endpoint TCP fault hooks), so these
		// faults hit real sockets too.
		in.mu.Lock()
		p := 0.05 + in.rng.Float64()*0.20
		in.mu.Unlock()
		in.c.SetLoss(p)
		return true, nil

	case ClearLoss:
		in.c.SetLoss(0)
		return true, nil

	case InjectDelay:
		in.mu.Lock()
		max := time.Duration(1+in.rng.Intn(4)) * time.Millisecond
		in.mu.Unlock()
		in.c.SetDelay(0, max)
		return true, nil

	case ClearDelay:
		in.c.SetDelay(0, 0)
		return true, nil

	case SlowApply:
		v := in.pickLive()
		if v < 0 {
			return false, nil
		}
		in.mu.Lock()
		d := time.Duration(1+in.rng.Intn(4)) * time.Millisecond
		in.mu.Unlock()
		in.c.SetApplyDelay(v, d)
		in.slowed = true
		return true, nil

	case ClearSlowApply:
		if !in.slowed {
			return false, nil
		}
		for i := 0; i < in.c.Size(); i++ {
			in.c.SetApplyDelay(i, 0)
		}
		in.slowed = false
		return true, nil

	case Overload:
		if in.cfg.Burst == nil {
			return false, nil
		}
		in.mu.Lock()
		n := 8 + in.rng.Intn(24)
		in.mu.Unlock()
		in.cfg.Burst(n)
		in.counters.Add("overload-submits", int64(n))
		return true, nil
	}
	return false, fmt.Errorf("unknown fault %d", int(f))
}

// pickLive returns a random live replica index, or -1.
func (in *Injector) pickLive() int {
	var live []int
	for i := 0; i < in.c.Size(); i++ {
		if !in.c.IsDown(i) {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return -1
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return live[in.rng.Intn(len(live))]
}

// Quiesce lifts every standing fault — heals partitions, clears loss and
// delay, restarts every crashed replica — and waits until all replicas have
// caught up to the leader's commit index. After a nil return the cluster
// must be convergent: identical state hashes everywhere.
func (in *Injector) Quiesce(within time.Duration) error {
	in.stepMu.Lock()
	defer in.stepMu.Unlock()
	in.partitioned = false
	if in.c.Net != nil {
		in.c.Net.Heal()
	}
	in.c.SetLoss(0)
	in.c.SetDelay(0, 0)
	if in.slowed {
		for i := 0; i < in.c.Size(); i++ {
			in.c.SetApplyDelay(i, 0)
		}
		in.slowed = false
	}
	for _, i := range in.c.DownReplicas() {
		if err := in.c.Restart(i); err != nil {
			return fmt.Errorf("chaos: quiesce restart %d: %w", i, err)
		}
		in.counters.Add("quiesce-restarts", 1)
	}
	if err := in.c.WaitCaughtUp(within); err != nil {
		return fmt.Errorf("chaos: quiesce: %w", err)
	}
	return nil
}

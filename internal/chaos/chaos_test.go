package chaos

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"prognosticator/internal/wal"
)

func TestPlanIsDeterministic(t *testing.T) {
	a := New(nil, Config{Seed: 7, Steps: 40})
	b := New(nil, Config{Seed: 7, Steps: 40})
	pa, pb := a.Plan(), b.Plan()
	if len(pa) != 40 || len(pb) != 40 {
		t.Fatalf("plan lengths %d/%d, want 40", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("plans diverge at step %d: %v vs %v", i, pa[i], pb[i])
		}
	}
	c := New(nil, Config{Seed: 8, Steps: 40})
	same := true
	for i, f := range c.Plan() {
		if f != pa[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestPlanContainsAnchors(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 99} {
		in := New(nil, Config{Seed: seed, Steps: 12})
		have := map[Fault]bool{}
		for _, f := range in.Plan() {
			have[f] = true
		}
		for _, a := range anchors {
			if !have[a] {
				t.Fatalf("seed %d: plan missing anchor %v", seed, a)
			}
		}
	}
}

func TestPlanPadsToAnchorCount(t *testing.T) {
	in := New(nil, Config{Seed: 1, Steps: 1})
	if in.Steps() != len(anchors) {
		t.Fatalf("steps = %d, want padded to %d", in.Steps(), len(anchors))
	}
}

// writeWAL fills dir with a few records and returns the record count.
func writeWAL(t *testing.T, dir string) int {
	t.Helper()
	w, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	for i := 0; i < n; i++ {
		if err := w.Append([]byte(fmt.Sprintf("record-%d-payload-with-some-bulk", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestCorruptTailTorn(t *testing.T) {
	dir := t.TempDir()
	n := writeWAL(t, dir)
	if err := CorruptTail(dir, CorruptTorn, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	stats, err := wal.Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Truncated {
		t.Fatal("torn tail not detected")
	}
	if stats.Records >= n || stats.Records == 0 {
		t.Fatalf("surviving records = %d, want a non-empty strict prefix of %d", stats.Records, n)
	}
	// Repair must leave a clean log with exactly the surviving prefix.
	rep, err := wal.Repair(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != stats.Records {
		t.Fatalf("repair kept %d records, verify saw %d", rep.Records, stats.Records)
	}
	after, err := wal.Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if after.Truncated {
		t.Fatalf("still corrupt after repair: %+v", after)
	}
}

func TestCorruptTailBitFlip(t *testing.T) {
	dir := t.TempDir()
	n := writeWAL(t, dir)
	if err := CorruptTail(dir, CorruptBitFlip, rand.New(rand.NewSource(2))); err != nil {
		t.Fatal(err)
	}
	stats, err := wal.Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Truncated {
		t.Fatal("bit flip not detected by record checksums")
	}
	if stats.Records >= n {
		t.Fatalf("surviving records = %d, want < %d", stats.Records, n)
	}
}

func TestCorruptTailEmptyLog(t *testing.T) {
	dir := t.TempDir()
	// No segments at all.
	if err := CorruptTail(dir, CorruptTorn, rand.New(rand.NewSource(3))); err != ErrNothingToCorrupt {
		t.Fatalf("err = %v, want ErrNothingToCorrupt", err)
	}
	// An opened-but-never-appended log has one empty segment.
	w, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := CorruptTail(dir, CorruptBitFlip, rand.New(rand.NewSource(3))); err != ErrNothingToCorrupt {
		t.Fatalf("err = %v, want ErrNothingToCorrupt", err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatal(err)
	}
}

package value

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindInt: "int", KindString: "string", KindBool: "bool",
		KindList: "list", KindRecord: "record", KindInvalid: "invalid",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestScalarAccessors(t *testing.T) {
	v := Int(42)
	if i, ok := v.AsInt(); !ok || i != 42 {
		t.Fatalf("AsInt = %d,%v", i, ok)
	}
	if _, ok := v.AsString(); ok {
		t.Fatal("AsString on int should fail")
	}
	if _, ok := v.AsBool(); ok {
		t.Fatal("AsBool on int should fail")
	}
	s := Str("x")
	if got, ok := s.AsString(); !ok || got != "x" {
		t.Fatalf("AsString = %q,%v", got, ok)
	}
	b := Bool(true)
	if got, ok := b.AsBool(); !ok || !got {
		t.Fatalf("AsBool = %v,%v", got, ok)
	}
}

func TestMustAccessorsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustInt on string should panic")
		}
	}()
	_ = Str("x").MustInt()
}

func TestZeroValueInvalid(t *testing.T) {
	var v Value
	if v.IsValid() {
		t.Fatal("zero Value must be invalid")
	}
	if v.Kind() != KindInvalid {
		t.Fatalf("zero Value kind = %v", v.Kind())
	}
}

func TestListOps(t *testing.T) {
	l := List(Int(1), Int(2))
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	e, ok := l.Index(1)
	if !ok || e.MustInt() != 2 {
		t.Fatalf("Index(1) = %v,%v", e, ok)
	}
	if _, ok := l.Index(2); ok {
		t.Fatal("Index out of range should fail")
	}
	if _, ok := l.Index(-1); ok {
		t.Fatal("negative index should fail")
	}
	l2 := l.Append(Int(3))
	if l.Len() != 2 || l2.Len() != 3 {
		t.Fatal("Append must not mutate the receiver")
	}
}

func TestListCopiesInput(t *testing.T) {
	src := []Value{Int(1)}
	l := List(src...)
	src[0] = Int(99)
	e, _ := l.Index(0)
	if e.MustInt() != 1 {
		t.Fatal("List must copy its input slice")
	}
}

func TestRecordOps(t *testing.T) {
	r := Record(map[string]Value{"a": Int(1), "b": Str("x")})
	f, ok := r.Field("a")
	if !ok || f.MustInt() != 1 {
		t.Fatalf("Field(a) = %v,%v", f, ok)
	}
	if _, ok := r.Field("zz"); ok {
		t.Fatal("missing field should report false")
	}
	r2 := r.WithField("a", Int(7))
	if f, _ := r.Field("a"); f.MustInt() != 1 {
		t.Fatal("WithField must not mutate the receiver")
	}
	if f, _ := r2.Field("a"); f.MustInt() != 7 {
		t.Fatal("WithField must set the field")
	}
	fields := r.Fields()
	if len(fields) != 2 || fields[0] != "a" || fields[1] != "b" {
		t.Fatalf("Fields = %v", fields)
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Int(1), Str("1"), false},
		{Str("a"), Str("a"), true},
		{Bool(true), Bool(true), true},
		{Bool(true), Bool(false), false},
		{List(Int(1)), List(Int(1)), true},
		{List(Int(1)), List(Int(1), Int(2)), false},
		{List(Int(1)), List(Int(2)), false},
		{Record(map[string]Value{"x": Int(1)}), Record(map[string]Value{"x": Int(1)}), true},
		{Record(map[string]Value{"x": Int(1)}), Record(map[string]Value{"x": Int(2)}), false},
		{Record(map[string]Value{"x": Int(1)}), Record(map[string]Value{"y": Int(1)}), false},
		{Value{}, Value{}, true},
	}
	for i, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("case %d: %v.Equal(%v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestCompareOrdering(t *testing.T) {
	ordered := []Value{
		Int(-5), Int(0), Int(7),
		Str("a"), Str("b"),
		Bool(false), Bool(true),
		List(Int(1)), List(Int(1), Int(0)), List(Int(2)),
	}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			want := cmpInt(int64(i), int64(j))
			if (got < 0) != (want < 0) || (got > 0) != (want > 0) {
				t.Errorf("Compare(%v,%v) = %d, want sign %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestHashStability(t *testing.T) {
	r := Record(map[string]Value{"a": Int(1), "b": List(Str("x"), Bool(true))})
	h1 := r.Hash()
	// Same logical record built in a different order must hash identically.
	r2 := Record(map[string]Value{"b": List(Str("x"), Bool(true)), "a": Int(1)})
	if h2 := r2.Hash(); h1 != h2 {
		t.Fatalf("hash not stable across field insertion order: %x vs %x", h1, h2)
	}
	if Int(1).Hash() == Int(2).Hash() {
		t.Fatal("distinct ints should hash differently")
	}
	if Int(1).Hash() == Str("1").Hash() {
		t.Fatal("int and string must hash differently")
	}
}

func TestStringCanonical(t *testing.T) {
	r := Record(map[string]Value{"b": Int(2), "a": Int(1)})
	if got, want := r.String(), "{a:1,b:2}"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	l := List(Int(1), Str(`x"y`))
	if got, want := l.String(), `[1,"x\"y"]`; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	vals := []Value{
		Int(-9), Str("hello/world"), Bool(true), Bool(false),
		List(Int(1), Str("a"), List(Bool(true))),
		Record(map[string]Value{"n": Int(3), "inner": Record(map[string]Value{"s": Str("")})}),
	}
	for _, v := range vals {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var back Value
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if !v.Equal(back) {
			t.Fatalf("round trip %v -> %s -> %v", v, data, back)
		}
	}
}

func TestJSONUnmarshalError(t *testing.T) {
	var v Value
	if err := v.UnmarshalJSON([]byte("{nonsense")); err == nil {
		t.Fatal("expected error on malformed JSON")
	}
}

// randomValue builds a random value of bounded depth for property tests.
func randomValue(r *rand.Rand, depth int) Value {
	k := r.Intn(5)
	if depth <= 0 {
		k = r.Intn(3)
	}
	switch k {
	case 0:
		return Int(r.Int63n(2000) - 1000)
	case 1:
		return Str(string(rune('a' + r.Intn(26))))
	case 2:
		return Bool(r.Intn(2) == 0)
	case 3:
		n := r.Intn(4)
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = randomValue(r, depth-1)
		}
		return List(elems...)
	default:
		n := r.Intn(4)
		rec := make(map[string]Value, n)
		for i := 0; i < n; i++ {
			rec[string(rune('a'+i))] = randomValue(r, depth-1)
		}
		return Record(rec)
	}
}

func TestPropEqualImpliesSameHashAndString(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		v := randomValue(r, 3)
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		var back Value
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if !v.Equal(back) {
			t.Fatalf("round trip changed value: %v vs %v", v, back)
		}
		if v.Hash() != back.Hash() {
			t.Fatalf("equal values with different hashes: %v", v)
		}
		if v.String() != back.String() {
			t.Fatalf("equal values with different renderings: %v", v)
		}
		if v.Compare(back) != 0 {
			t.Fatalf("equal values with nonzero Compare: %v", v)
		}
	}
}

func TestPropCompareAntisymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		a, b := randomValue(r, 2), randomValue(r, 2)
		if a.Compare(b) != -b.Compare(a) {
			t.Fatalf("Compare not antisymmetric for %v, %v", a, b)
		}
		if (a.Compare(b) == 0) != a.Equal(b) {
			t.Fatalf("Compare==0 disagrees with Equal for %v, %v", a, b)
		}
	}
}

func TestPropCompareTransitive(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		vs := []Value{randomValue(r, 2), randomValue(r, 2), randomValue(r, 2)}
		// sort the three and check pairwise consistency
		for x := 0; x < 3; x++ {
			for y := 0; y < 3; y++ {
				for z := 0; z < 3; z++ {
					if vs[x].Compare(vs[y]) <= 0 && vs[y].Compare(vs[z]) <= 0 {
						if vs[x].Compare(vs[z]) > 0 {
							t.Fatalf("transitivity violated: %v %v %v", vs[x], vs[y], vs[z])
						}
					}
				}
			}
		}
	}
}

func TestQuickIntRoundTrip(t *testing.T) {
	f := func(i int64) bool {
		v := Int(i)
		got, ok := v.AsInt()
		return ok && got == i && v.Equal(Int(i))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		v := Str(s)
		got, ok := v.AsString()
		if !ok || got != s {
			return false
		}
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		var back Value
		return json.Unmarshal(data, &back) == nil && back.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package value

import (
	"strconv"
	"strings"
)

// Key identifies a single data item: a table name plus a tuple of scalar key
// parts. Keys are the unit of conflict detection throughout the system
// (the paper assumes key granularity, §III-C footnote 3).
type Key struct {
	Table string
	Parts []Value
}

// NewKey builds a key from a table name and scalar parts.
func NewKey(table string, parts ...Value) Key {
	cp := make([]Value, len(parts))
	copy(cp, parts)
	return Key{Table: table, Parts: cp}
}

// Encoded is the canonical string form of a Key, usable as a map key. Two
// keys encode identically iff they identify the same data item.
type Encoded string

// Encode returns the canonical encoding of k. Table names and string parts
// are escaped so that distinct keys never collide. This sits on the hot
// path of every lock-table and overlay operation, hence the manual buffer.
func (k Key) Encode() Encoded {
	buf := make([]byte, 0, len(k.Table)+12*len(k.Parts))
	buf = append(buf, escape(k.Table)...)
	for _, p := range k.Parts {
		buf = append(buf, '/')
		switch p.Kind() {
		case KindInt:
			buf = append(buf, 'i')
			buf = strconv.AppendInt(buf, p.i, 10)
		case KindString:
			buf = append(buf, 's')
			buf = append(buf, escape(p.s)...)
		case KindBool:
			if p.b {
				buf = append(buf, 'b', '1')
			} else {
				buf = append(buf, 'b', '0')
			}
		default:
			buf = append(buf, '?')
			buf = append(buf, escape(p.String())...)
		}
	}
	return Encoded(buf)
}

func escape(s string) string {
	if !strings.ContainsAny(s, "/%") {
		return s
	}
	s = strings.ReplaceAll(s, "%", "%25")
	return strings.ReplaceAll(s, "/", "%2F")
}

// String implements fmt.Stringer.
func (k Key) String() string { return string(k.Encode()) }

// Equal reports whether two keys identify the same item.
func (k Key) Equal(o Key) bool {
	if k.Table != o.Table || len(k.Parts) != len(o.Parts) {
		return false
	}
	for i := range k.Parts {
		if !k.Parts[i].Equal(o.Parts[i]) {
			return false
		}
	}
	return true
}

// Compare orders keys by table then parts; used for deterministic iteration.
func (k Key) Compare(o Key) int {
	if c := strings.Compare(k.Table, o.Table); c != 0 {
		return c
	}
	for i := 0; i < len(k.Parts) && i < len(o.Parts); i++ {
		if c := k.Parts[i].Compare(o.Parts[i]); c != 0 {
			return c
		}
	}
	return cmpInt(int64(len(k.Parts)), int64(len(o.Parts)))
}

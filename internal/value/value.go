// Package value implements the dynamically typed value system shared by the
// stored-procedure language, the symbolic-execution engine and the data
// store. Values are immutable by convention: code that receives a Value must
// not mutate its list or record contents; use the Set*/Append helpers, which
// copy.
package value

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind int

// Value kinds. KindInvalid is the zero Kind so that the zero Value is
// distinguishable from any real value.
const (
	KindInvalid Kind = iota
	KindInt
	KindString
	KindBool
	KindList
	KindRecord
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	case KindList:
		return "list"
	case KindRecord:
		return "record"
	default:
		return "invalid"
	}
}

// Value is a dynamically typed database value. The zero Value is invalid.
type Value struct {
	kind Kind
	i    int64
	s    string
	b    bool
	list []Value
	rec  map[string]Value
}

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Str returns a string value.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// List returns a list value holding the given elements. The slice is copied.
func List(elems ...Value) Value {
	cp := make([]Value, len(elems))
	copy(cp, elems)
	return Value{kind: KindList, list: cp}
}

// Record returns a record value with the given fields. The map is copied.
func Record(fields map[string]Value) Value {
	cp := make(map[string]Value, len(fields))
	for k, v := range fields {
		cp[k] = v
	}
	return Value{kind: KindRecord, rec: cp}
}

// Kind reports the dynamic kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether v holds a value.
func (v Value) IsValid() bool { return v.kind != KindInvalid }

// AsInt returns the integer payload. It reports false if v is not an int.
func (v Value) AsInt() (int64, bool) { return v.i, v.kind == KindInt }

// AsString returns the string payload. It reports false if v is not a string.
func (v Value) AsString() (string, bool) { return v.s, v.kind == KindString }

// AsBool returns the boolean payload. It reports false if v is not a bool.
func (v Value) AsBool() (bool, bool) { return v.b, v.kind == KindBool }

// MustInt returns the integer payload or panics. Intended for tests and for
// callers that have already validated the kind.
func (v Value) MustInt() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("value: MustInt on %s", v.kind))
	}
	return v.i
}

// MustString returns the string payload or panics.
func (v Value) MustString() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("value: MustString on %s", v.kind))
	}
	return v.s
}

// MustBool returns the bool payload or panics.
func (v Value) MustBool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("value: MustBool on %s", v.kind))
	}
	return v.b
}

// Len returns the number of elements of a list or fields of a record, and 0
// for scalars.
func (v Value) Len() int {
	switch v.kind {
	case KindList:
		return len(v.list)
	case KindRecord:
		return len(v.rec)
	default:
		return 0
	}
}

// Index returns element i of a list value. It reports false when v is not a
// list or i is out of range.
func (v Value) Index(i int) (Value, bool) {
	if v.kind != KindList || i < 0 || i >= len(v.list) {
		return Value{}, false
	}
	return v.list[i], true
}

// Field returns the named field of a record value. It reports false when v
// is not a record or the field is absent.
func (v Value) Field(name string) (Value, bool) {
	if v.kind != KindRecord {
		return Value{}, false
	}
	f, ok := v.rec[name]
	return f, ok
}

// WithField returns a copy of record v with field name set to f. If v is not
// a record a fresh single-field record is returned.
func (v Value) WithField(name string, f Value) Value {
	cp := make(map[string]Value, len(v.rec)+1)
	for k, e := range v.rec {
		cp[k] = e
	}
	cp[name] = f
	return Value{kind: KindRecord, rec: cp}
}

// Fields returns the field names of a record in sorted order.
func (v Value) Fields() []string {
	if v.kind != KindRecord {
		return nil
	}
	names := make([]string, 0, len(v.rec))
	for k := range v.rec {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Elems returns a copy of the elements of a list value.
func (v Value) Elems() []Value {
	if v.kind != KindList {
		return nil
	}
	cp := make([]Value, len(v.list))
	copy(cp, v.list)
	return cp
}

// Append returns a copy of list v with elems appended.
func (v Value) Append(elems ...Value) Value {
	cp := make([]Value, 0, len(v.list)+len(elems))
	cp = append(cp, v.list...)
	cp = append(cp, elems...)
	return Value{kind: KindList, list: cp}
}

// Equal reports deep equality of two values. Values of different kinds are
// never equal.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindInt:
		return v.i == o.i
	case KindString:
		return v.s == o.s
	case KindBool:
		return v.b == o.b
	case KindList:
		if len(v.list) != len(o.list) {
			return false
		}
		for i := range v.list {
			if !v.list[i].Equal(o.list[i]) {
				return false
			}
		}
		return true
	case KindRecord:
		if len(v.rec) != len(o.rec) {
			return false
		}
		for k, e := range v.rec {
			oe, ok := o.rec[k]
			if !ok || !e.Equal(oe) {
				return false
			}
		}
		return true
	default:
		return true // two invalid values are equal
	}
}

// Compare orders two values. Values order first by kind, then by payload;
// lists lexicographically; records by sorted field name then field value.
// The result is -1, 0 or +1.
func (v Value) Compare(o Value) int {
	if v.kind != o.kind {
		return cmpInt(int64(v.kind), int64(o.kind))
	}
	switch v.kind {
	case KindInt:
		return cmpInt(v.i, o.i)
	case KindString:
		return strings.Compare(v.s, o.s)
	case KindBool:
		return cmpInt(boolInt(v.b), boolInt(o.b))
	case KindList:
		for i := 0; i < len(v.list) && i < len(o.list); i++ {
			if c := v.list[i].Compare(o.list[i]); c != 0 {
				return c
			}
		}
		return cmpInt(int64(len(v.list)), int64(len(o.list)))
	case KindRecord:
		vf, of := v.Fields(), o.Fields()
		for i := 0; i < len(vf) && i < len(of); i++ {
			if c := strings.Compare(vf[i], of[i]); c != 0 {
				return c
			}
			a, _ := v.Field(vf[i])
			b, _ := o.Field(of[i])
			if c := a.Compare(b); c != 0 {
				return c
			}
		}
		return cmpInt(int64(len(vf)), int64(len(of)))
	default:
		return 0
	}
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Hash returns a stable 64-bit hash of the value, suitable for replica state
// comparison. It is stable across processes (FNV-1a over the canonical
// encoding).
func (v Value) Hash() uint64 {
	h := fnv.New64a()
	v.hashInto(h)
	return h.Sum64()
}

type hasher interface{ Write(p []byte) (int, error) }

func (v Value) hashInto(h hasher) {
	var tag [1]byte
	tag[0] = byte(v.kind)
	_, _ = h.Write(tag[:])
	switch v.kind {
	case KindInt:
		_, _ = h.Write([]byte(strconv.FormatInt(v.i, 10)))
	case KindString:
		_, _ = h.Write([]byte(v.s))
	case KindBool:
		if v.b {
			_, _ = h.Write([]byte{1})
		} else {
			_, _ = h.Write([]byte{0})
		}
	case KindList:
		for _, e := range v.list {
			e.hashInto(h)
		}
	case KindRecord:
		for _, k := range v.Fields() {
			_, _ = h.Write([]byte(k))
			f, _ := v.Field(k)
			f.hashInto(h)
		}
	}
}

// String renders the value for debugging and key encoding. The rendering is
// canonical: equal values render identically.
func (v Value) String() string {
	var sb strings.Builder
	v.render(&sb)
	return sb.String()
}

func (v Value) render(sb *strings.Builder) {
	switch v.kind {
	case KindInt:
		sb.WriteString(strconv.FormatInt(v.i, 10))
	case KindString:
		sb.WriteString(strconv.Quote(v.s))
	case KindBool:
		sb.WriteString(strconv.FormatBool(v.b))
	case KindList:
		sb.WriteByte('[')
		for i, e := range v.list {
			if i > 0 {
				sb.WriteByte(',')
			}
			e.render(sb)
		}
		sb.WriteByte(']')
	case KindRecord:
		sb.WriteByte('{')
		for i, k := range v.Fields() {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(k)
			sb.WriteByte(':')
			f, _ := v.Field(k)
			f.render(sb)
		}
		sb.WriteByte('}')
	default:
		sb.WriteString("<invalid>")
	}
}

// jsonValue is the wire representation used by MarshalJSON/UnmarshalJSON.
// The explicit kind tag keeps int/bool/string round trips unambiguous.
type jsonValue struct {
	K Kind                  `json:"k"`
	I int64                 `json:"i,omitempty"`
	S string                `json:"s,omitempty"`
	B bool                  `json:"b,omitempty"`
	L []jsonValue           `json:"l,omitempty"`
	R map[string]*jsonValue `json:"r,omitempty"`
}

func (v Value) toJSON() jsonValue {
	jv := jsonValue{K: v.kind, I: v.i, S: v.s, B: v.b}
	if v.kind == KindList {
		jv.L = make([]jsonValue, len(v.list))
		for i, e := range v.list {
			jv.L[i] = e.toJSON()
		}
	}
	if v.kind == KindRecord {
		jv.R = make(map[string]*jsonValue, len(v.rec))
		for k, e := range v.rec {
			ejv := e.toJSON()
			jv.R[k] = &ejv
		}
	}
	return jv
}

func fromJSON(jv jsonValue) Value {
	switch jv.K {
	case KindInt:
		return Int(jv.I)
	case KindString:
		return Str(jv.S)
	case KindBool:
		return Bool(jv.B)
	case KindList:
		elems := make([]Value, len(jv.L))
		for i, e := range jv.L {
			elems[i] = fromJSON(e)
		}
		return Value{kind: KindList, list: elems}
	case KindRecord:
		rec := make(map[string]Value, len(jv.R))
		for k, e := range jv.R {
			rec[k] = fromJSON(*e)
		}
		return Value{kind: KindRecord, rec: rec}
	default:
		return Value{}
	}
}

// MarshalJSON implements json.Marshaler.
func (v Value) MarshalJSON() ([]byte, error) { return json.Marshal(v.toJSON()) }

// UnmarshalJSON implements json.Unmarshaler.
func (v *Value) UnmarshalJSON(data []byte) error {
	var jv jsonValue
	if err := json.Unmarshal(data, &jv); err != nil {
		return fmt.Errorf("value: unmarshal: %w", err)
	}
	*v = fromJSON(jv)
	return nil
}

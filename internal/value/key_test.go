package value

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKeyEncodeBasic(t *testing.T) {
	k := NewKey("STOCK", Int(3), Int(17))
	if got, want := string(k.Encode()), "STOCK/i3/i17"; got != want {
		t.Fatalf("Encode = %q, want %q", got, want)
	}
	if k.String() != "STOCK/i3/i17" {
		t.Fatalf("String = %q", k.String())
	}
}

func TestKeyEncodeKinds(t *testing.T) {
	k := NewKey("T", Str("ab"), Bool(true), Bool(false))
	if got, want := string(k.Encode()), "T/sab/b1/b0"; got != want {
		t.Fatalf("Encode = %q, want %q", got, want)
	}
}

func TestKeyEncodeEscaping(t *testing.T) {
	// A string part containing the separator must not collide with a
	// two-part key.
	a := NewKey("T", Str("x/i1"))
	b := NewKey("T", Str("x"), Int(1))
	if a.Encode() == b.Encode() {
		t.Fatalf("escaping failure: %q == %q", a.Encode(), b.Encode())
	}
	c := NewKey("T", Str("x%2Fi1"))
	if a.Encode() == c.Encode() {
		t.Fatalf("percent escaping failure: %q == %q", a.Encode(), c.Encode())
	}
}

func TestKeyEqual(t *testing.T) {
	a := NewKey("T", Int(1), Str("x"))
	b := NewKey("T", Int(1), Str("x"))
	if !a.Equal(b) {
		t.Fatal("identical keys must be equal")
	}
	if a.Equal(NewKey("U", Int(1), Str("x"))) {
		t.Fatal("different tables must differ")
	}
	if a.Equal(NewKey("T", Int(1))) {
		t.Fatal("different arity must differ")
	}
	if a.Equal(NewKey("T", Int(2), Str("x"))) {
		t.Fatal("different parts must differ")
	}
}

func TestKeyCompare(t *testing.T) {
	ks := []Key{
		NewKey("A", Int(1)),
		NewKey("A", Int(2)),
		NewKey("A", Int(2), Int(0)),
		NewKey("B"),
	}
	for i := range ks {
		for j := range ks {
			got := ks[i].Compare(ks[j])
			if (got < 0) != (i < j) || (got > 0) != (i > j) {
				t.Errorf("Compare(%v,%v) = %d", ks[i], ks[j], got)
			}
		}
	}
}

func randomKey(r *rand.Rand) Key {
	tables := []string{"A", "B", "ORDER/LINE", "C%"}
	n := r.Intn(3)
	parts := make([]Value, n)
	for i := range parts {
		if r.Intn(2) == 0 {
			parts[i] = Int(r.Int63n(50))
		} else {
			parts[i] = Str(string(rune('a' + r.Intn(4))))
		}
	}
	return NewKey(tables[r.Intn(len(tables))], parts...)
}

func TestPropKeyEncodeInjective(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		a, b := randomKey(r), randomKey(r)
		if (a.Encode() == b.Encode()) != a.Equal(b) {
			t.Fatalf("Encode injectivity violated: %v=%q vs %v=%q", a, a.Encode(), b, b.Encode())
		}
	}
}

func TestQuickKeyStringParts(t *testing.T) {
	f := func(table, part string) bool {
		a := NewKey(table, Str(part))
		b := NewKey(table, Str(part))
		return a.Encode() == b.Encode() && a.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package lint

import (
	"fmt"
	"strings"

	"prognosticator/internal/taint"
)

// --- key-determinism: per-access direct vs pivot-dependent key proofs ---
//
// The pass surfaces the taint.KeyDeterminism classification as findings, for
// dependent transactions only: an independent transaction has nothing to
// prove (every key is trivially direct), so emitting per-access records
// there would be noise. For a DT the findings are the per-access proofs the
// engine's client-side prediction rests on: each access either carries a
// witness that its key is derivable from the inputs alone, or names the
// pivot-derived variables its key flows from.

type keyDeterminismPass struct{}

func (keyDeterminismPass) Name() string { return "key-determinism" }

func (keyDeterminismPass) Run(pc *ProgContext) []Finding {
	kd := pc.KeyDet()
	dependent := kd.TraversalPivot || kd.DirectCount() < len(kd.Accesses)
	if !dependent {
		return nil
	}
	var out []Finding
	for _, a := range kd.Accesses {
		var msg string
		if a.Direct() {
			msg = fmt.Sprintf("%s %s: key is derivable from the transaction inputs alone (direct)", a.Op, a.Table)
			if kd.PivotFreeTraversal() {
				msg += "; predicted client-side without pivot reads"
			}
		} else {
			msg = fmt.Sprintf("%s %s: key part(s) %s depend on store state via %s (pivot-dependent)",
				a.Op, a.Table, partList(a), quoteList(a.Via()))
		}
		out = append(out, Finding{
			Prog: pc.Prog.Name, Pass: "key-determinism", Pos: a.Pos, Path: a.Path,
			Severity: SevInfo,
			Message:  msg,
		})
	}
	if kd.TraversalPivot {
		out = append(out, Finding{
			Prog: pc.Prog.Name, Pass: "key-determinism", Path: "keys",
			Severity: SevInfo,
			Message: "a branch or loop bound that can change the read/write-set depends on store state " +
				"(traversal pivot): client-side prediction of the direct key-set is disabled",
		})
	}
	return out
}

// partList renders the indices of the pivot-dependent key parts.
func partList(a taint.AccessClass) string {
	var idx []string
	for i, d := range a.PartDirect {
		if !d {
			idx = append(idx, fmt.Sprintf("%d", i))
		}
	}
	return strings.Join(idx, ",")
}

// quoteList renders variable names as a quoted, comma-separated list.
func quoteList(names []string) string {
	quoted := make([]string, len(names))
	for i, n := range names {
		quoted[i] = fmt.Sprintf("%q", n)
	}
	return strings.Join(quoted, ", ")
}

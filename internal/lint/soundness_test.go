package lint

import (
	"math/rand"
	"strings"
	"testing"

	"prognosticator/internal/lang"
	"prognosticator/internal/profile"
	"prognosticator/internal/sym"
	"prognosticator/internal/symexec"
	"prognosticator/internal/value"
)

func analyze(t *testing.T, src string) (*lang.Program, *profile.Profile) {
	t.Helper()
	p := mustParse(t, src)
	prof, err := symexec.AnalyzeOptimized(p)
	if err != nil {
		t.Fatalf("AnalyzeOptimized: %v", err)
	}
	return p, prof
}

const transferSrc = `
transaction transfer(src int[0..9], dst int[0..9], amount int[1..100]) {
    s = get ACCOUNTS[src]
    d = get ACCOUNTS[dst]
    if s.bal >= amount {
        s.bal = s.bal - amount
        d.bal = d.bal + amount
        put ACCOUNTS[src] = s
        put ACCOUNTS[dst] = d
    }
}`

func TestSoundnessCleanProfile(t *testing.T) {
	p, prof := analyze(t, transferSrc)
	rep, err := CheckSoundness(p, prof, SoundnessOptions{Samples: 16})
	if err != nil {
		t.Fatalf("CheckSoundness: %v", err)
	}
	if !rep.Sound() {
		t.Fatalf("SE-derived profile flagged unsound: over=%v under=%v errs=%v",
			rep.Over, rep.Under, rep.Errors)
	}
	// 4 boundary samples + 16 random, each against 2 store states.
	if rep.SamplesRun != 40 {
		t.Errorf("SamplesRun = %d, want 40", rep.SamplesRun)
	}
}

func TestSoundnessCleanLoopsAndLists(t *testing.T) {
	src := `
transaction sweep(first int[0..5], count int[1..4]) {
    total = 0
    for i = 0 .. count {
        a = get ACCOUNTS[first + i]
        total = total + a.bal
    }
    emit total = total
}`
	p, prof := analyze(t, src)
	rep, err := CheckSoundness(p, prof, SoundnessOptions{Samples: 16})
	if err != nil {
		t.Fatalf("CheckSoundness: %v", err)
	}
	if !rep.Sound() {
		t.Fatalf("loop profile flagged unsound: over=%v under=%v errs=%v",
			rep.Over, rep.Under, rep.Errors)
	}
}

func TestSoundnessCleanDependentProfile(t *testing.T) {
	// The RUBiS allocate-from-counter pattern: the written key is a pivot.
	src := `
transaction alloc(initial int[0..100]) {
    c = get COUNTERS["x"]
    id = c.next
    put ITEMS[id] = {v: initial}
    c.next = id + 1
    put COUNTERS["x"] = c
}`
	p, prof := analyze(t, src)
	if prof.Class() != profile.ClassDT {
		t.Fatalf("expected DT profile, got %v", prof.Class())
	}
	rep, err := CheckSoundness(p, prof, SoundnessOptions{Samples: 16})
	if err != nil {
		t.Fatalf("CheckSoundness: %v", err)
	}
	if !rep.Sound() {
		t.Fatalf("DT profile flagged unsound: over=%v under=%v errs=%v",
			rep.Over, rep.Under, rep.Errors)
	}
}

// corrupt deep-copies nothing: tests mutate the freshly-analyzed profile.

func TestSoundnessDetectsOverApproximation(t *testing.T) {
	p, prof := analyze(t, transferSrc)
	// Inject a phantom read the execution never performs.
	prof.Root.Seg = append(prof.Root.Seg, profile.Access{
		Table: "ACCOUNTS",
		Key:   []sym.Term{sym.Const{V: value.Int(9999)}},
	})
	rep, err := CheckSoundness(p, prof, SoundnessOptions{Samples: 8})
	if err != nil {
		t.Fatalf("CheckSoundness: %v", err)
	}
	if len(rep.Over) == 0 {
		t.Fatalf("phantom access not reported as over-approximation")
	}
	if len(rep.Under) != 0 {
		t.Errorf("unexpected under-approximations: %v", rep.Under)
	}
	m := rep.Over[0]
	if m.Kind != Over || m.Write {
		t.Errorf("mismatch %v, want an over-approximated read", m)
	}
	// Over-approximations cost parallelism, not determinism: warning.
	fs := rep.Findings()
	if MaxSeverity(fs) != SevWarning {
		t.Errorf("over-approximation findings %v, want max severity warning", fs)
	}
	if !strings.Contains(fs[0].Message, "never touches") {
		t.Errorf("unexpected message %q", fs[0].Message)
	}
}

func TestSoundnessDetectsUnderApproximation(t *testing.T) {
	p, prof := analyze(t, transferSrc)
	// Drop the first access (the read of ACCOUNTS[src]): the execution
	// touches a key the profile no longer predicts.
	if len(prof.Root.Seg) == 0 {
		t.Fatalf("profile root has no access segment to corrupt")
	}
	prof.Root.Seg = prof.Root.Seg[1:]
	rep, err := CheckSoundness(p, prof, SoundnessOptions{Samples: 8})
	if err != nil {
		t.Fatalf("CheckSoundness: %v", err)
	}
	if len(rep.Under) == 0 {
		t.Fatalf("missing access not reported as under-approximation")
	}
	// Under-approximation breaks determinism: error severity.
	fs := rep.Findings()
	if MaxSeverity(fs) != SevError {
		t.Errorf("under-approximation findings %v, want max severity error", fs)
	}
	found := false
	for _, f := range fs {
		if f.Severity == SevError && strings.Contains(f.Message, "misses a key") {
			found = true
		}
	}
	if !found {
		t.Errorf("no misses-a-key error in %v", fs)
	}
}

func TestSoundnessDetectsBadDirectMark(t *testing.T) {
	// Re-analyze the allocate-from-counter DT and corrupt a pivot-dependent
	// access with a Direct mark: the engine would then instantiate it without
	// the pivot read it needs. The checker must reject the profile.
	src := `
transaction alloc(initial int[0..100]) {
    c = get COUNTERS["x"]
    id = c.next
    put ITEMS[id] = {v: initial}
    c.next = id + 1
    put COUNTERS["x"] = c
}`
	p, prof := analyze(t, src)
	corrupted := false
	var walk func(n *profile.Node)
	walk = func(n *profile.Node) {
		if n == nil {
			return
		}
		for i, a := range n.Seg {
			if a.Indirect() && !corrupted {
				n.Seg[i].Direct = true
				corrupted = true
			}
		}
		walk(n.True)
		walk(n.False)
	}
	walk(prof.Root)
	if !corrupted {
		t.Fatalf("alloc profile has no pivot-dependent access to corrupt")
	}
	rep, err := CheckSoundness(p, prof, SoundnessOptions{Samples: 4})
	if err != nil {
		t.Fatalf("CheckSoundness: %v", err)
	}
	if rep.Sound() {
		t.Fatalf("pivot-dependent access marked Direct not rejected")
	}
	found := false
	for _, e := range rep.Errors {
		if strings.Contains(e, "marked Direct") {
			found = true
		}
	}
	if !found {
		t.Errorf("no marked-Direct error in %v", rep.Errors)
	}
}

func TestSoundnessDetectsWrongBranchSense(t *testing.T) {
	p, prof := analyze(t, transferSrc)
	// Swap the branch arms at the root condition: the profile now predicts
	// the write set exactly when the execution does not perform it.
	if prof.Root.Cond == nil {
		t.Fatalf("expected a conditional profile root")
	}
	prof.Root.True, prof.Root.False = prof.Root.False, prof.Root.True
	rep, err := CheckSoundness(p, prof, SoundnessOptions{Samples: 16})
	if err != nil {
		t.Fatalf("CheckSoundness: %v", err)
	}
	if len(rep.Over) == 0 || len(rep.Under) == 0 {
		t.Fatalf("swapped branches should produce both directions: over=%v under=%v",
			rep.Over, rep.Under)
	}
}

func TestSoundnessDeterministic(t *testing.T) {
	p, prof := analyze(t, transferSrc)
	prof.Root.Seg = append(prof.Root.Seg, profile.Access{
		Table: "ACCOUNTS",
		Key:   []sym.Term{sym.Const{V: value.Int(777)}},
		Write: true,
	})
	run := func() *SoundnessReport {
		rep, err := CheckSoundness(p, prof, SoundnessOptions{Samples: 8, Seed: 42})
		if err != nil {
			t.Fatalf("CheckSoundness: %v", err)
		}
		return rep
	}
	a, b := run(), run()
	if len(a.Over) != len(b.Over) || len(a.Under) != len(b.Under) || a.SamplesRun != b.SamplesRun {
		t.Fatalf("same seed, different reports: %+v vs %+v", a, b)
	}
	for i := range a.Over {
		if a.Over[i].Key.Encode() != b.Over[i].Key.Encode() {
			t.Fatalf("same seed, different mismatch keys")
		}
	}
}

func TestEffectiveLen(t *testing.T) {
	elem := lang.IntParam("", 0, 9)
	lst := lang.Param{Name: "ids", Kind: value.KindList, Elem: &elem, MaxLen: 5, LenParam: "n"}
	cases := []struct {
		n    value.Value
		want int
	}{
		{value.Int(0), 0},
		{value.Int(3), 3},
		{value.Int(5), 5},
		{value.Int(99), 5},  // clamped to capacity
		{value.Int(-1), 0},  // clamped to empty
		{value.Str("x"), 5}, // non-int length parameter: full capacity
	}
	for _, c := range cases {
		if got := effectiveLen(lst, map[string]value.Value{"n": c.n}); got != c.want {
			t.Errorf("effectiveLen(n=%v) = %d, want %d", c.n, got, c.want)
		}
	}
	// No length parameter declared, or not present in the assignment.
	noLen := lst
	noLen.LenParam = ""
	if got := effectiveLen(noLen, nil); got != 5 {
		t.Errorf("effectiveLen without LenParam = %d, want 5", got)
	}
	if got := effectiveLen(lst, map[string]value.Value{}); got != 5 {
		t.Errorf("effectiveLen with unassigned LenParam = %d, want 5", got)
	}
}

// TestSoundnessSamplesEffectiveListLength: sampled list lengths must track
// the sampled value of the list's length parameter (not always fill to
// MaxLen capacity), so loops bounded by the length parameter get exercised
// on short lists too.
func TestSoundnessSamplesEffectiveListLength(t *testing.T) {
	src := `
transaction batchGet(n int[0..4], ids list[int[0..9]; 8; n]) {
    total = 0
    for i = 0..n {
        a = get ACCOUNTS[ids[i]]
        total = total + a.bal
    }
    emit total = total
}`
	p := mustParse(t, src)
	check := func(inputs map[string]value.Value) {
		t.Helper()
		n := inputs["n"].MustInt()
		lst := inputs["ids"]
		if got := int64(lst.Len()); got != n {
			t.Errorf("sampled list length %d for n=%d (inputs %s)", got, n, renderInputs(inputs))
		}
	}
	for _, s := range boundarySamples(p) {
		check(s)
	}
	rng := rand.New(rand.NewSource(7))
	sawShort := false
	for i := 0; i < 32; i++ {
		s, err := randomSample(p, rng)
		if err != nil {
			t.Fatal(err)
		}
		check(s)
		if s["n"].MustInt() < 4 {
			sawShort = true
		}
	}
	if !sawShort {
		t.Error("32 random samples never drew a short list")
	}

	// End-to-end: the SE-derived profile must stay sound under
	// effective-length sampling.
	prof, err := symexec.AnalyzeOptimized(p)
	if err != nil {
		t.Fatalf("AnalyzeOptimized: %v", err)
	}
	rep, err := CheckSoundness(p, prof, SoundnessOptions{Samples: 16})
	if err != nil {
		t.Fatalf("CheckSoundness: %v", err)
	}
	if !rep.Sound() {
		t.Fatalf("length-dependent profile flagged unsound: over=%v under=%v errs=%v",
			rep.Over, rep.Under, rep.Errors)
	}
}

func TestSoundnessNilProfile(t *testing.T) {
	p := mustParse(t, transferSrc)
	if _, err := CheckSoundness(p, nil, SoundnessOptions{}); err == nil {
		t.Fatalf("nil profile accepted")
	}
}

package lint

import (
	"strings"
	"testing"

	"prognosticator/internal/lang"
	"prognosticator/internal/profile"
	"prognosticator/internal/sym"
	"prognosticator/internal/symexec"
	"prognosticator/internal/value"
)

func analyze(t *testing.T, src string) (*lang.Program, *profile.Profile) {
	t.Helper()
	p := mustParse(t, src)
	prof, err := symexec.AnalyzeOptimized(p)
	if err != nil {
		t.Fatalf("AnalyzeOptimized: %v", err)
	}
	return p, prof
}

const transferSrc = `
transaction transfer(src int[0..9], dst int[0..9], amount int[1..100]) {
    s = get ACCOUNTS[src]
    d = get ACCOUNTS[dst]
    if s.bal >= amount {
        s.bal = s.bal - amount
        d.bal = d.bal + amount
        put ACCOUNTS[src] = s
        put ACCOUNTS[dst] = d
    }
}`

func TestSoundnessCleanProfile(t *testing.T) {
	p, prof := analyze(t, transferSrc)
	rep, err := CheckSoundness(p, prof, SoundnessOptions{Samples: 16})
	if err != nil {
		t.Fatalf("CheckSoundness: %v", err)
	}
	if !rep.Sound() {
		t.Fatalf("SE-derived profile flagged unsound: over=%v under=%v errs=%v",
			rep.Over, rep.Under, rep.Errors)
	}
	// 4 boundary samples + 16 random, each against 2 store states.
	if rep.SamplesRun != 40 {
		t.Errorf("SamplesRun = %d, want 40", rep.SamplesRun)
	}
}

func TestSoundnessCleanLoopsAndLists(t *testing.T) {
	src := `
transaction sweep(first int[0..5], count int[1..4]) {
    total = 0
    for i = 0 .. count {
        a = get ACCOUNTS[first + i]
        total = total + a.bal
    }
    emit total = total
}`
	p, prof := analyze(t, src)
	rep, err := CheckSoundness(p, prof, SoundnessOptions{Samples: 16})
	if err != nil {
		t.Fatalf("CheckSoundness: %v", err)
	}
	if !rep.Sound() {
		t.Fatalf("loop profile flagged unsound: over=%v under=%v errs=%v",
			rep.Over, rep.Under, rep.Errors)
	}
}

func TestSoundnessCleanDependentProfile(t *testing.T) {
	// The RUBiS allocate-from-counter pattern: the written key is a pivot.
	src := `
transaction alloc(initial int[0..100]) {
    c = get COUNTERS["x"]
    id = c.next
    put ITEMS[id] = {v: initial}
    c.next = id + 1
    put COUNTERS["x"] = c
}`
	p, prof := analyze(t, src)
	if prof.Class() != profile.ClassDT {
		t.Fatalf("expected DT profile, got %v", prof.Class())
	}
	rep, err := CheckSoundness(p, prof, SoundnessOptions{Samples: 16})
	if err != nil {
		t.Fatalf("CheckSoundness: %v", err)
	}
	if !rep.Sound() {
		t.Fatalf("DT profile flagged unsound: over=%v under=%v errs=%v",
			rep.Over, rep.Under, rep.Errors)
	}
}

// corrupt deep-copies nothing: tests mutate the freshly-analyzed profile.

func TestSoundnessDetectsOverApproximation(t *testing.T) {
	p, prof := analyze(t, transferSrc)
	// Inject a phantom read the execution never performs.
	prof.Root.Seg = append(prof.Root.Seg, profile.Access{
		Table: "ACCOUNTS",
		Key:   []sym.Term{sym.Const{V: value.Int(9999)}},
	})
	rep, err := CheckSoundness(p, prof, SoundnessOptions{Samples: 8})
	if err != nil {
		t.Fatalf("CheckSoundness: %v", err)
	}
	if len(rep.Over) == 0 {
		t.Fatalf("phantom access not reported as over-approximation")
	}
	if len(rep.Under) != 0 {
		t.Errorf("unexpected under-approximations: %v", rep.Under)
	}
	m := rep.Over[0]
	if m.Kind != Over || m.Write {
		t.Errorf("mismatch %v, want an over-approximated read", m)
	}
	// Over-approximations cost parallelism, not determinism: warning.
	fs := rep.Findings()
	if MaxSeverity(fs) != SevWarning {
		t.Errorf("over-approximation findings %v, want max severity warning", fs)
	}
	if !strings.Contains(fs[0].Message, "never touches") {
		t.Errorf("unexpected message %q", fs[0].Message)
	}
}

func TestSoundnessDetectsUnderApproximation(t *testing.T) {
	p, prof := analyze(t, transferSrc)
	// Drop the first access (the read of ACCOUNTS[src]): the execution
	// touches a key the profile no longer predicts.
	if len(prof.Root.Seg) == 0 {
		t.Fatalf("profile root has no access segment to corrupt")
	}
	prof.Root.Seg = prof.Root.Seg[1:]
	rep, err := CheckSoundness(p, prof, SoundnessOptions{Samples: 8})
	if err != nil {
		t.Fatalf("CheckSoundness: %v", err)
	}
	if len(rep.Under) == 0 {
		t.Fatalf("missing access not reported as under-approximation")
	}
	// Under-approximation breaks determinism: error severity.
	fs := rep.Findings()
	if MaxSeverity(fs) != SevError {
		t.Errorf("under-approximation findings %v, want max severity error", fs)
	}
	found := false
	for _, f := range fs {
		if f.Severity == SevError && strings.Contains(f.Message, "misses a key") {
			found = true
		}
	}
	if !found {
		t.Errorf("no misses-a-key error in %v", fs)
	}
}

func TestSoundnessDetectsWrongBranchSense(t *testing.T) {
	p, prof := analyze(t, transferSrc)
	// Swap the branch arms at the root condition: the profile now predicts
	// the write set exactly when the execution does not perform it.
	if prof.Root.Cond == nil {
		t.Fatalf("expected a conditional profile root")
	}
	prof.Root.True, prof.Root.False = prof.Root.False, prof.Root.True
	rep, err := CheckSoundness(p, prof, SoundnessOptions{Samples: 16})
	if err != nil {
		t.Fatalf("CheckSoundness: %v", err)
	}
	if len(rep.Over) == 0 || len(rep.Under) == 0 {
		t.Fatalf("swapped branches should produce both directions: over=%v under=%v",
			rep.Over, rep.Under)
	}
}

func TestSoundnessDeterministic(t *testing.T) {
	p, prof := analyze(t, transferSrc)
	prof.Root.Seg = append(prof.Root.Seg, profile.Access{
		Table: "ACCOUNTS",
		Key:   []sym.Term{sym.Const{V: value.Int(777)}},
		Write: true,
	})
	run := func() *SoundnessReport {
		rep, err := CheckSoundness(p, prof, SoundnessOptions{Samples: 8, Seed: 42})
		if err != nil {
			t.Fatalf("CheckSoundness: %v", err)
		}
		return rep
	}
	a, b := run(), run()
	if len(a.Over) != len(b.Over) || len(a.Under) != len(b.Under) || a.SamplesRun != b.SamplesRun {
		t.Fatalf("same seed, different reports: %+v vs %+v", a, b)
	}
	for i := range a.Over {
		if a.Over[i].Key.Encode() != b.Over[i].Key.Encode() {
			t.Fatalf("same seed, different mismatch keys")
		}
	}
}

func TestSoundnessNilProfile(t *testing.T) {
	p := mustParse(t, transferSrc)
	if _, err := CheckSoundness(p, nil, SoundnessOptions{}); err == nil {
		t.Fatalf("nil profile accepted")
	}
}

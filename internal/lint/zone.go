package lint

import (
	"prognosticator/internal/lang"
	"prognosticator/internal/value"
)

// Zone (difference-bound matrix) relational abstract interpretation over the
// CFG.
//
// Where the interval domain (absint.go) tracks each scalar variable in
// isolation, the zone domain tracks pairwise difference constraints
//
//	v - w ≤ c
//
// over the program's parameters and scalar locals, plus a synthetic "zero"
// variable x0 ≡ 0 so that unary bounds are the special cases v - x0 ≤ c
// (v ≤ c) and x0 - v ≤ c (v ≥ -c). The state is an (n+1)×(n+1) matrix of
// int64 bounds with +absInf meaning "no constraint"; the canonical form is
// the shortest-path closure (Floyd–Warshall over the constraint graph), and
// the zone is empty (⊥) exactly when closure exposes a negative self-cycle.
//
// Lattice operations follow the standard zone recipe (Miné):
//
//   - join is the entrywise max of two closed matrices (the tightest zone
//     containing both);
//   - widening keeps an entry only if the incoming value does not exceed it
//     and drops unstable entries to +absInf — and, crucially for
//     termination, stored (widened) matrices are NEVER re-closed in place:
//     closure could re-derive a just-dropped bound and oscillate. Closure is
//     applied to clones, at transfer entry and at query time.
//
// Soundness contract: the zone entering a node over-approximates every
// concrete store reaching it — for every closed constraint v - w ≤ c and
// every concrete state at that point where both v and w hold defined
// integers, the inequality holds. The soundness checker replays sampled
// concrete executions through lang.RunTrace and validates exactly this;
// FuzzZoneVsInterval additionally checks the zone's unary bounds are never
// looser than the interval solution's (guaranteed by construction: merges
// clamp unary rows/columns with the completed interval solution).
//
// Two variants are solved per program (see ZoneOpts):
//
//   - the guard zone (AssumeGuards=true, interval-clamped) refines along If
//     edges and For trip-count splits; the dead-branch and loop-bound passes
//     and the soundness validator consume it;
//   - the alias zone (AssumeGuards=false, no interval coupling, assignment
//     atoms only) tracks exactly the equalities v = u + c that arise from
//     assignment chains; taint.KeyDeterminism consumes it as an equality
//     oracle to upgrade key parts to proven-direct. Restricting it to
//     assignment atoms keeps the static claim aligned with the symbolic
//     executor: an equality derived from a guard (`if v == u`) holds only on
//     one path, and one derived from interval evaluation (`v = u * 0`) may
//     not be folded by the executor, so neither may justify a Direct mark.

// Zone is one DBM: m[i*n+j] bounds var(i) - var(j) ≤ m[i*n+j], with index 0
// the zero variable. An entry ≥ absInf means unconstrained. bottom marks the
// empty zone (all constraint content is then meaningless).
type Zone struct {
	n      int
	m      []int64
	bottom bool
}

// newZone returns the top zone over n variables (diagonal 0, rest +∞).
func newZone(n int) *Zone {
	z := &Zone{n: n, m: make([]int64, n*n)}
	for i := range z.m {
		z.m[i] = absInf
	}
	for i := 0; i < n; i++ {
		z.m[i*n+i] = 0
	}
	return z
}

func (z *Zone) clone() *Zone {
	cp := &Zone{n: z.n, m: make([]int64, len(z.m)), bottom: z.bottom}
	copy(cp.m, z.m)
	return cp
}

// Bottom reports whether the zone is empty (no concrete state satisfies it).
func (z *Zone) Bottom() bool { return z.bottom }

func (z *Zone) at(i, j int) int64 { return z.m[i*z.n+j] }

// tighten strengthens var(i) - var(j) ≤ c (keeps the smaller bound).
func (z *Zone) tighten(i, j int, c int64) {
	if c < z.m[i*z.n+j] {
		z.m[i*z.n+j] = c
	}
}

// forget drops every constraint mentioning var(v) (havoc on assignment from
// an untracked expression).
func (z *Zone) forget(v int) {
	for i := 0; i < z.n; i++ {
		if i == v {
			continue
		}
		z.m[v*z.n+i] = absInf
		z.m[i*z.n+v] = absInf
	}
	z.m[v*z.n+v] = 0
}

// shift models the invertible self-assignment v = v + c: every bound
// involving v moves by ±c, nothing is forgotten.
func (z *Zone) shift(v int, c int64) {
	for i := 0; i < z.n; i++ {
		if i == v {
			continue
		}
		z.m[v*z.n+i] = dbmAdd(z.m[v*z.n+i], c)
		z.m[i*z.n+v] = dbmAdd(z.m[i*z.n+v], -c)
	}
}

// assignAtom models v = atom(j) + c after a forget of v.
func (z *Zone) assignAtom(v, j int, c int64) {
	z.forget(v)
	z.m[v*z.n+j] = c
	z.m[j*z.n+v] = -c
}

// close canonicalizes to the shortest-path closure and detects emptiness
// (negative self-cycle). Never call on a stored, widened matrix — only on
// clones (see the package comment on widening/closure interaction).
func (z *Zone) close() {
	if z.bottom {
		return
	}
	n := z.n
	for k := 0; k < n; k++ {
		ko := k * n
		for i := 0; i < n; i++ {
			ik := z.m[i*n+k]
			if ik >= absInf {
				continue
			}
			io := i * n
			for j := 0; j < n; j++ {
				if s := dbmAdd(ik, z.m[ko+j]); s < z.m[io+j] {
					z.m[io+j] = s
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if z.m[i*n+i] < 0 {
			z.bottom = true
			return
		}
	}
}

// dbmAdd adds two bounds, treating ≥ +absInf as infinity and clamping the
// result into [-absInf, absInf]. Finite operands are < absInf in magnitude,
// so the raw sum cannot overflow int64.
func dbmAdd(a, b int64) int64 {
	if a >= absInf || b >= absInf {
		return absInf
	}
	s := a + b
	if s >= absInf {
		return absInf
	}
	if s < -absInf {
		return -absInf
	}
	return s
}

// joinZ is the least upper bound of two closed zones: entrywise max, with ⊥
// as identity. It consumes its arguments (may return either).
func joinZ(a, b *Zone) *Zone {
	if a == nil || a.bottom {
		return b
	}
	if b == nil || b.bottom {
		return a
	}
	for k, bv := range b.m {
		if bv > a.m[k] {
			a.m[k] = bv
		}
	}
	return a
}

// ZoneOpts selects a zone variant.
type ZoneOpts struct {
	// AssumeGuards refines the zone along If edges (then: cond, else: ¬cond)
	// and splits For edges by provable trip count. Disabled for the alias
	// zone, whose equalities must come from assignment chains alone.
	AssumeGuards bool
	// Abs, when set, couples the zone to a completed interval solution: at
	// every merge the unary row/column of each local is clamped with the
	// interval bounds at that node. This is what makes the zone never less
	// precise than the interval domain (FuzzZoneVsInterval's invariant) and
	// caps the growth of unary entries.
	Abs *AbsState
}

// ZoneState is the zone-analysis solution: for every CFG node, the zone
// holding on entry (nil = never reached, Bottom = reached only along
// infeasible paths).
type ZoneState struct {
	cfg    *CFG
	opts   ZoneOpts
	byPath map[string]int

	// Variable indexing: index 0 is the zero variable, 1..nParams the
	// parameters in declaration order, the rest the sorted locals.
	names    []string
	nParams  int
	paramIdx map[string]int
	localIdx map[string]int

	in []*Zone

	// bodyDefs caches, per For node, the set of locals (re)assigned anywhere
	// in its body — used to require loop-invariance of relational bounds.
	bodyDefs map[int]map[string]bool

	// Iterations counts worklist visits; Capped reports the hard iteration
	// cap fired and every zone was degraded to ⊤ (sound, maximally
	// imprecise).
	Iterations int
	Capped     bool
}

// SolveZone solves the guard zone coupled to a fresh interval solution —
// the configuration the dead-branch/loop-bound passes and the soundness
// validator consume.
func SolveZone(cfg *CFG) *ZoneState {
	return SolveZoneOpts(cfg, ZoneOpts{AssumeGuards: true, Abs: SolveAbsInt(cfg)})
}

// SolveZoneOpts runs the zone analysis to a fixed point with explicit
// options.
func SolveZoneOpts(cfg *CFG, opts ZoneOpts) *ZoneState {
	zs := &ZoneState{
		cfg:      cfg,
		opts:     opts,
		byPath:   make(map[string]int, len(cfg.Nodes)),
		paramIdx: map[string]int{},
		localIdx: map[string]int{},
		in:       make([]*Zone, len(cfg.Nodes)),
		bodyDefs: map[int]map[string]bool{},
	}
	for _, n := range cfg.Nodes {
		if n.Path != "" {
			zs.byPath[n.Path] = n.ID
		}
	}
	zs.names = []string{"0"}
	for _, prm := range cfg.Prog.Params {
		zs.paramIdx[prm.Name] = len(zs.names)
		zs.names = append(zs.names, prm.Name)
	}
	zs.nParams = len(cfg.Prog.Params)
	var locals []string
	for _, n := range cfg.Nodes {
		locals = append(locals, n.Defs...)
	}
	for _, name := range sortDedup(locals) {
		zs.localIdx[name] = len(zs.names)
		zs.names = append(zs.names, name)
	}

	// Entry zone: parameters constrained to their declared domains.
	entry := newZone(len(zs.names))
	for _, prm := range cfg.Prog.Params {
		if prm.Kind == value.KindInt && prm.Lo <= prm.Hi {
			p := zs.paramIdx[prm.Name]
			entry.tighten(p, 0, prm.Hi)
			entry.tighten(0, p, -prm.Lo)
		}
	}
	zs.in[cfg.Entry] = entry

	limit := zs.maxIterations()
	work := []int{cfg.Entry}
	queued := map[int]bool{cfg.Entry: true}
	for len(work) > 0 {
		if zs.Iterations++; zs.Iterations > limit {
			zs.degradeToTop()
			return zs
		}
		id := work[0]
		work, queued[id] = work[1:], false
		n := cfg.Nodes[id]
		cur := zs.in[id]
		var base *Zone
		if !cur.bottom {
			base = cur.clone()
			base.close()
		}
		for _, succ := range n.Succs {
			var out *Zone
			if base == nil || base.bottom {
				// The node is unreachable (stored ⊥, or closure exposed a
				// contradiction): propagate ⊥ so successors still count as
				// visited, matching the interval analysis' reachable set.
				out = &Zone{n: len(zs.names), m: base0(len(zs.names)), bottom: true}
			} else {
				out = zs.transferEdge(n, succ, base.clone())
			}
			back := id >= succ
			if merged := zs.mergeInto(zs.in[succ], out, back, succ); merged != nil {
				zs.in[succ] = merged
				if !queued[succ] {
					work = append(work, succ)
					queued[succ] = true
				}
			}
		}
	}
	return zs
}

// base0 is a throwaway matrix for ⊥ placeholders.
func base0(n int) []int64 {
	m := make([]int64, n*n)
	for i := range m {
		m[i] = absInf
	}
	for i := 0; i < n; i++ {
		m[i*n+i] = 0
	}
	return m
}

// maxIterations is the hard cap, comfortably above the analytic bound: each
// matrix entry climbs monotonically and every cycle passes a widening edge.
func (zs *ZoneState) maxIterations() int {
	n := len(zs.names)
	return (len(zs.cfg.Nodes) + 1) * (n + 2) * (n + 2) * 8
}

// degradeToTop is the cap fallback: forget everything, stay sound.
func (zs *ZoneState) degradeToTop() {
	zs.Capped = true
	for i, z := range zs.in {
		if z != nil {
			zs.in[i] = newZone(len(zs.names))
		}
	}
}

// mergeInto joins src into the stored zone of succ, widening on back edges
// and clamping unary entries with the interval solution. It returns the new
// zone if anything changed, nil otherwise.
func (zs *ZoneState) mergeInto(dst, src *Zone, back bool, succ int) *Zone {
	if src == nil {
		return nil
	}
	if dst == nil || (dst.bottom && !src.bottom) {
		out := src.clone()
		zs.clamp(out, succ)
		return out
	}
	if src.bottom {
		return nil
	}
	out := dst.clone()
	for k, sv := range src.m {
		if sv > out.m[k] {
			if back {
				out.m[k] = absInf
			} else {
				out.m[k] = sv
			}
		}
	}
	zs.clamp(out, succ)
	for k := range out.m {
		if out.m[k] != dst.m[k] {
			return out
		}
	}
	return nil
}

// clamp strengthens the unary entries of every local with the interval
// bounds holding at node — the zone ⊑ interval coupling. The interval
// solution is complete and fixed, so the clamp ceiling never moves and
// stored entries still grow monotonically.
func (zs *ZoneState) clamp(z *Zone, node int) {
	if zs.opts.Abs == nil || z.bottom {
		return
	}
	env := zs.opts.Abs.in[node]
	if env == nil {
		return
	}
	for name, j := range zs.localIdx {
		v, ok := env[name]
		if !ok || v.Kind != AbsRange {
			continue
		}
		if v.Hi < absInf {
			z.tighten(j, 0, v.Hi)
		}
		if v.Lo > -absInf {
			z.tighten(0, j, -v.Lo)
		}
	}
}

// transferEdge applies node n's statement to the closed zone z for the edge
// n → succ. Edge-sensitivity only matters for If (guard assumption per arm)
// and For (trip-count split); every other statement treats all successors
// alike.
func (zs *ZoneState) transferEdge(n *Node, succ int, z *Zone) *Zone {
	switch s := n.Stmt.(type) {
	case lang.Assign:
		dst, ok := zs.localIdx[s.Dst]
		if !ok {
			return z
		}
		if j, c, aok := zs.atomOffset(s.E); aok {
			if j == dst {
				z.shift(dst, c)
			} else {
				z.assignAtom(dst, j, c)
			}
			z.close()
			return z
		}
		z.forget(dst)
		if zs.opts.AssumeGuards {
			// Fall back to interval evaluation for unary bounds on the
			// assigned variable. The alias zone skips this: an interval-
			// derived singleton (v = u * 0 → v = 0) is not an assignment
			// chain and must not feed the equality oracle.
			if v := absEval(s.E, zs.cfg.Prog, zs.absEnvOf(z)); v.Kind == AbsRange {
				if v.Hi < absInf {
					z.tighten(dst, 0, v.Hi)
				}
				if v.Lo > -absInf {
					z.tighten(0, dst, -v.Lo)
				}
				z.close()
			}
		}
		return z
	case lang.Get:
		if dst, ok := zs.localIdx[s.Dst]; ok {
			z.forget(dst)
		}
		return z
	case lang.SetField:
		if dst, ok := zs.localIdx[s.Dst]; ok {
			z.forget(dst)
		}
		return z
	case lang.If:
		if !zs.opts.AssumeGuards {
			return z
		}
		thenHead, hasThen := zs.byPath[n.Path+".then[0]"]
		elseHead, hasElse := zs.byPath[n.Path+".else[0]"]
		switch {
		case hasThen && succ == thenHead:
			return zs.assume(z, s.Cond, false)
		case hasElse && succ == elseHead:
			return zs.assume(z, s.Cond, true)
		case !hasThen && !hasElse:
			return z // no-op If: the edge carries both polarities
		case !hasThen:
			// Fall-through past an empty then-arm happens iff cond is true.
			return zs.assume(z, s.Cond, false)
		default:
			// Fall-through past an empty else-arm happens iff cond is false.
			return zs.assume(z, s.Cond, true)
		}
	case lang.For:
		v, ok := zs.localIdx[s.Var]
		if !ok {
			return z
		}
		if !zs.opts.AssumeGuards {
			z.forget(v)
			return z
		}
		bodyHead, hasBody := zs.byPath[n.Path+".body[0]"]
		isBody := (hasBody && succ == bodyHead) || (!hasBody && succ == n.ID)
		return zs.forTransfer(n, s, z, v, isBody)
	default:
		// Put/Del/Emit and the synthetic entry/exit define nothing.
		return z
	}
}

// forTransfer splits the For node's out-edges by provable trip count:
//
//   - provably empty (from ≥ to on every input): the body edge is ⊥ and the
//     exit edge keeps the incoming zone untouched — in particular the loop
//     variable retains its pre-loop constraints (zero-trip semantics: the
//     concrete interpreter never assigns it);
//   - provably entered (from < to on every input): both edges see the loop
//     zone (variable havocked, then bounded);
//   - otherwise: body sees the loop zone, exit the join of both.
func (zs *ZoneState) forTransfer(n *Node, s lang.For, z *Zone, v int, isBody bool) *Zone {
	enter := zs.assume(z.clone(), lang.Bin{Op: lang.OpLt, L: s.From, R: s.To}, false)
	if enter.bottom {
		if isBody {
			return enter
		}
		return z
	}
	skip := zs.assume(z.clone(), lang.Bin{Op: lang.OpGe, L: s.From, R: s.To}, false)
	definite := skip.bottom

	loop := z.clone()
	loop.forget(v)
	// Relational links: from and to are evaluated once, at loop entry, so
	// when a bound is an atom ± c whose base is loop-invariant (a constant,
	// a parameter, or a local never reassigned in the body), the stored
	// relation between the base and the induction variable holds on entry to
	// every iteration: var ≥ from and var ≤ to - 1.
	if j, c, ok := zs.atomOffset(s.From); ok && zs.loopInvariant(n, s, j, v) {
		loop.tighten(j, v, -c)
	}
	if j, c, ok := zs.atomOffset(s.To); ok && zs.loopInvariant(n, s, j, v) {
		loop.tighten(v, j, c-1)
	}
	// Unary interval fallback from the zone-refined bound expressions.
	if b := zs.exprBounds(z, s.From); b.Kind == AbsRange && b.Lo > -absInf {
		loop.tighten(0, v, -b.Lo)
	}
	if b := zs.exprBounds(z, s.To); b.Kind == AbsRange && b.Hi < absInf {
		loop.tighten(v, 0, b.Hi-1)
	}
	loop.close()
	if isBody || definite {
		return loop
	}
	exit := z.clone()
	return joinZ(exit, loop)
}

// loopInvariant reports whether atom index j is safe to relate to the
// induction variable across iterations: the zero variable, a parameter, or
// a local not (re)assigned anywhere in the loop body, and not the induction
// variable itself.
func (zs *ZoneState) loopInvariant(n *Node, s lang.For, j, v int) bool {
	if j == v {
		return false
	}
	if j <= zs.nParams {
		return true // zero var or parameter
	}
	defs, ok := zs.bodyDefs[n.ID]
	if !ok {
		defs = map[string]bool{}
		collectDefs(s.Body, defs)
		zs.bodyDefs[n.ID] = defs
	}
	return !defs[zs.names[j]]
}

// collectDefs gathers every local (re)assigned in a block, recursively.
func collectDefs(body []lang.Stmt, out map[string]bool) {
	for _, st := range body {
		for _, d := range stmtDefs(st) {
			out[d] = true
		}
		switch s := st.(type) {
		case lang.If:
			collectDefs(s.Then, out)
			collectDefs(s.Else, out)
		case lang.For:
			collectDefs(s.Body, out)
		}
	}
}

// assume refines z with cond (negated flips the polarity) and returns it.
// Unconvertible conditions leave z unchanged — always sound.
func (zs *ZoneState) assume(z *Zone, cond lang.Expr, negated bool) *Zone {
	if z.bottom {
		return z
	}
	switch x := cond.(type) {
	case lang.Not:
		return zs.assume(z, x.E, !negated)
	case lang.Const:
		if b, ok := x.V.AsBool(); ok && b == negated {
			z.bottom = true
		}
		return z
	case lang.Bin:
		op := x.Op
		if negated {
			switch op {
			case lang.OpAnd: // ¬(L ∧ R) = ¬L ∨ ¬R
				l := zs.assume(z.clone(), x.L, true)
				return joinZ(zs.assume(z, x.R, true), l)
			case lang.OpOr: // ¬(L ∨ R) = ¬L ∧ ¬R
				return zs.assume(zs.assume(z, x.L, true), x.R, true)
			case lang.OpLt:
				op = lang.OpGe
			case lang.OpLe:
				op = lang.OpGt
			case lang.OpGt:
				op = lang.OpLe
			case lang.OpGe:
				op = lang.OpLt
			case lang.OpEq:
				op = lang.OpNe
			case lang.OpNe:
				op = lang.OpEq
			default:
				return z
			}
		} else {
			switch op {
			case lang.OpAnd:
				return zs.assume(zs.assume(z, x.L, false), x.R, false)
			case lang.OpOr:
				l := zs.assume(z.clone(), x.L, false)
				return joinZ(zs.assume(z, x.R, false), l)
			}
		}
		return zs.assumeCmp(z, op, x.L, x.R)
	}
	return z
}

// assumeCmp refines z with the comparison L op R.
func (zs *ZoneState) assumeCmp(z *Zone, op lang.Op, L, R lang.Expr) *Zone {
	li, lc, lok := zs.atomOffset(L)
	ri, rc, rok := zs.atomOffset(R)
	switch {
	case lok && rok:
		// (var(li)+lc) op (var(ri)+rc): difference constraints both ways.
		switch op {
		case lang.OpLt:
			z.tighten(li, ri, rc-lc-1)
		case lang.OpLe:
			z.tighten(li, ri, rc-lc)
		case lang.OpGt:
			z.tighten(ri, li, lc-rc-1)
		case lang.OpGe:
			z.tighten(ri, li, lc-rc)
		case lang.OpEq:
			z.tighten(li, ri, rc-lc)
			z.tighten(ri, li, lc-rc)
		case lang.OpNe:
			// Disjunction: (L < R) ∨ (L > R), joined.
			lt := z.clone()
			lt.tighten(li, ri, rc-lc-1)
			lt.close()
			z.tighten(ri, li, lc-rc-1)
			z.close()
			return joinZ(z, lt)
		default:
			return z
		}
		z.close()
		return z
	case lok:
		return zs.assumeAtomVsExpr(z, op, li, lc, R)
	case rok:
		return zs.assumeAtomVsExpr(z, flipCmp(op), ri, rc, L)
	default:
		return z
	}
}

// flipCmp mirrors a comparison so the atom ends up on the left.
func flipCmp(op lang.Op) lang.Op {
	switch op {
	case lang.OpLt:
		return lang.OpGt
	case lang.OpLe:
		return lang.OpGe
	case lang.OpGt:
		return lang.OpLt
	case lang.OpGe:
		return lang.OpLe
	default:
		return op // Eq/Ne are symmetric
	}
}

// assumeAtomVsExpr refines z with (var(i)+c) op e where e is not an atom,
// using e's interval bounds.
func (zs *ZoneState) assumeAtomVsExpr(z *Zone, op lang.Op, i int, c int64, e lang.Expr) *Zone {
	b := zs.exprBounds(z, e)
	if b.Kind != AbsRange {
		return z
	}
	switch op {
	case lang.OpLt: // var + c < e ≤ Hi  ⇒  var ≤ Hi - c - 1
		if b.Hi < absInf {
			z.tighten(i, 0, b.Hi-1-c)
		}
	case lang.OpLe:
		if b.Hi < absInf {
			z.tighten(i, 0, b.Hi-c)
		}
	case lang.OpGt: // var + c > e ≥ Lo  ⇒  var ≥ Lo - c + 1
		if b.Lo > -absInf {
			z.tighten(0, i, c-b.Lo-1)
		}
	case lang.OpGe:
		if b.Lo > -absInf {
			z.tighten(0, i, c-b.Lo)
		}
	case lang.OpEq:
		if b.Hi < absInf {
			z.tighten(i, 0, b.Hi-c)
		}
		if b.Lo > -absInf {
			z.tighten(0, i, c-b.Lo)
		}
	default: // Ne against an interval: no refinement
		return z
	}
	z.close()
	return z
}

// atomOffset decomposes e as var(j) + c: a constant int (zero variable), a
// parameter or local reference, or such an atom plus/minus integer
// constants. Non-integer parameter/local references are atoms at offset 0
// (pure equality tracking). Offsets that would reach the sentinels fail the
// decomposition.
func (zs *ZoneState) atomOffset(e lang.Expr) (int, int64, bool) {
	switch x := e.(type) {
	case lang.Const:
		if i, ok := x.V.AsInt(); ok && i > -absInf && i < absInf {
			return 0, i, true
		}
	case lang.ParamRef:
		if j, ok := zs.paramIdx[x.Name]; ok {
			return j, 0, true
		}
	case lang.LocalRef:
		if j, ok := zs.localIdx[x.Name]; ok {
			return j, 0, true
		}
	case lang.Bin:
		if x.Op != lang.OpAdd && x.Op != lang.OpSub {
			break
		}
		if j, c, ok := zs.atomOffset(x.L); ok {
			if i, iok := constInt(x.R); iok {
				if x.Op == lang.OpSub {
					i = -i
				}
				if s := c + i; s > -absInf && s < absInf {
					return j, s, true
				}
			}
		}
		if x.Op == lang.OpAdd {
			if i, iok := constInt(x.L); iok {
				if j, c, ok := zs.atomOffset(x.R); ok {
					if s := c + i; s > -absInf && s < absInf {
						return j, s, true
					}
				}
			}
		}
	}
	return 0, 0, false
}

// constInt extracts a small integer literal.
func constInt(e lang.Expr) (int64, bool) {
	if c, ok := e.(lang.Const); ok {
		if i, iok := c.V.AsInt(); iok && i > -absInf && i < absInf {
			return i, true
		}
	}
	return 0, false
}

// exprBounds evaluates e to an interval using both the zone's unary
// constraints (which include guard refinements the interval solution lacks)
// and interval evaluation, intersected. z must be closed.
func (zs *ZoneState) exprBounds(z *Zone, e lang.Expr) AbsVal {
	ab := absEval(e, zs.cfg.Prog, zs.absEnvOf(z))
	if j, c, ok := zs.atomOffset(e); ok {
		lo, hi := -absInf, absInf
		if j == 0 {
			lo, hi = c, c
		} else {
			if ub := z.at(j, 0); ub < absInf {
				hi = dbmAdd(ub, c)
			}
			if lb := z.at(0, j); lb < absInf {
				lo = -dbmAdd(lb, -c)
			}
		}
		if ab.Kind == AbsRange {
			lo, hi = max64(lo, ab.Lo), min64(hi, ab.Hi)
		}
		if lo <= hi && (lo > -absInf || hi < absInf) {
			return AbsVal{Kind: AbsRange, Lo: lo, Hi: hi}
		}
	}
	return ab
}

// absEnvOf projects the zone's unary bounds onto an interval environment
// for absEval. Locals without finite bounds are omitted (⊤ on lookup).
func (zs *ZoneState) absEnvOf(z *Zone) AbsEnv {
	env := AbsEnv{}
	for name, j := range zs.localIdx {
		lo, hi := -absInf, absInf
		if ub := z.at(j, 0); ub < absInf {
			hi = ub
		}
		if lb := z.at(0, j); lb < absInf {
			lo = -lb
		}
		if lo > -absInf || hi < absInf {
			env[name] = absRange(lo, hi)
		}
	}
	return env
}

// --- query API ---

// NodeAt returns the CFG node ID at the given structural path.
func (zs *ZoneState) NodeAt(path string) (int, bool) {
	id, ok := zs.byPath[path]
	return id, ok
}

// At returns the closed zone on entry to the statement at path, or nil when
// the path names no node or the node was never reached.
func (zs *ZoneState) At(path string) *Zone {
	id, ok := zs.byPath[path]
	if !ok {
		return nil
	}
	return zs.zoneAt(id)
}

// zoneAt is At by node ID.
func (zs *ZoneState) zoneAt(id int) *Zone {
	if id < 0 || id >= len(zs.in) || zs.in[id] == nil {
		return nil
	}
	z := zs.in[id].clone()
	z.close()
	return z
}

// CondDead reports whether assuming cond (negated: its negation) at path is
// provably infeasible — the corresponding branch arm is dead. Unreachable
// or ⊥ nodes and capped solutions report false: the enclosing dead region
// is someone else's finding.
func (zs *ZoneState) CondDead(path string, cond lang.Expr, negated bool) bool {
	if zs.Capped {
		return false
	}
	z := zs.At(path)
	if z == nil || z.bottom {
		return false
	}
	return zs.assume(z, cond, negated).bottom
}

// ExprBoundsAt returns the interval the expression is confined to at the
// statement path, per the zone (guard-refined) and interval evaluation
// combined. ok is false at unreachable/⊥ nodes or on a capped solution.
func (zs *ZoneState) ExprBoundsAt(path string, e lang.Expr) (AbsVal, bool) {
	if zs.Capped {
		return absTop, false
	}
	z := zs.At(path)
	if z == nil || z.bottom {
		return absTop, false
	}
	return zs.exprBounds(z, e), true
}

// varBounds returns the closed unary bounds of a variable at a node, for
// the differential fuzz target. Parameters resolve through paramIdx, locals
// through localIdx (shadowing parameters, matching the interval env).
func (zs *ZoneState) varBounds(z *Zone, name string) (lo, hi int64, ok bool) {
	j, found := zs.localIdx[name]
	if !found {
		if j, found = zs.paramIdx[name]; !found {
			return 0, 0, false
		}
	}
	lo, hi = -absInf, absInf
	if ub := z.at(j, 0); ub < absInf {
		hi = ub
	}
	if lb := z.at(0, j); lb < absInf {
		lo = -lb
	}
	return lo, hi, true
}

// InputResolvable implements taint.EqualityOracle over the alias zone: the
// named local, at the given statement path, provably equals an integer
// constant or a parameter plus a constant offset on every execution
// reaching that point. Capped solutions and unreachable/⊥ nodes resolve
// nothing.
func (zs *ZoneState) InputResolvable(path, name string) bool {
	if zs.Capped {
		return false
	}
	j, ok := zs.localIdx[name]
	if !ok {
		return false
	}
	z := zs.At(path)
	if z == nil || z.bottom {
		return false
	}
	// Constant: v ≤ c and v ≥ c.
	if ub, lb := z.at(j, 0), z.at(0, j); ub < absInf && lb < absInf && ub == -lb {
		return true
	}
	// Parameter plus fixed offset: v - p ≤ c and p - v ≤ -c.
	for p := 1; p <= zs.nParams; p++ {
		if d := z.at(j, p); d < absInf && z.at(p, j) < absInf && z.at(p, j) == -d {
			return true
		}
	}
	return false
}

package lint

import "sort"

// Def identifies one definition site: the CFG node assigning Var. The
// synthetic definition with Node == UndefNode models "no assignment has
// happened yet" and is generated at the entry for every local of the
// program; its reaching a use is exactly the may-use-before-assign
// condition.
type Def struct {
	Node int
	Var  string
}

// UndefNode is the pseudo-node of synthetic "still undefined" definitions.
const UndefNode = -1

// ReachingDefs is the solution of the classic forward may-analysis
//
//	in(n)  = union of out(p) over predecessors p
//	out(n) = gen(n) ∪ (in(n) − kill(n))
//
// over the definition sites of a CFG, with gen(n) the definitions made at n
// and kill(n) every other definition of the same variables.
type ReachingDefs struct {
	cfg *CFG
	// in[nodeID] is the set of definitions reaching the node's entry.
	in []map[Def]bool
}

// SolveReachingDefs computes the reaching-definitions fixed point with a
// worklist iteration. Cost is O(nodes × defs) per round; procedure bodies
// are tiny, so no bitset machinery is warranted.
func SolveReachingDefs(cfg *CFG) *ReachingDefs {
	r := &ReachingDefs{cfg: cfg, in: make([]map[Def]bool, len(cfg.Nodes))}
	out := make([]map[Def]bool, len(cfg.Nodes))
	for i := range cfg.Nodes {
		r.in[i] = map[Def]bool{}
		out[i] = map[Def]bool{}
	}

	// defsOf[v] lists every definition site of v, for kill sets. vars also
	// includes locals that are only ever used — they have no real definition
	// site but still need a synthetic "undefined" one.
	defsOf := map[string][]Def{}
	vars := map[string]bool{}
	for _, n := range cfg.Nodes {
		for _, v := range n.Defs {
			defsOf[v] = append(defsOf[v], Def{Node: n.ID, Var: v})
			vars[v] = true
		}
		for _, v := range n.Uses {
			vars[v] = true
		}
	}
	// The entry generates the synthetic "undefined" definition of every
	// local; any real definition kills it.
	entryGen := map[Def]bool{}
	for v := range vars {
		u := Def{Node: UndefNode, Var: v}
		defsOf[v] = append(defsOf[v], u)
		entryGen[u] = true
	}

	work := make([]int, 0, len(cfg.Nodes))
	for _, n := range cfg.Nodes {
		work = append(work, n.ID)
	}
	inWork := make([]bool, len(cfg.Nodes))
	for _, id := range work {
		inWork[id] = true
	}
	for len(work) > 0 {
		id := work[0]
		work = work[1:]
		inWork[id] = false
		n := cfg.Nodes[id]

		in := map[Def]bool{}
		for _, p := range n.Preds {
			for d := range out[p] {
				in[d] = true
			}
		}
		r.in[id] = in

		newOut := map[Def]bool{}
		killed := map[string]bool{}
		for _, v := range n.Defs {
			killed[v] = true
			newOut[Def{Node: id, Var: v}] = true
		}
		if id == cfg.Entry {
			for d := range entryGen {
				newOut[d] = true
			}
		}
		for d := range in {
			if !killed[d.Var] {
				newOut[d] = true
			}
		}
		if !defSetEqual(newOut, out[id]) {
			out[id] = newOut
			for _, s := range n.Succs {
				if !inWork[s] {
					inWork[s] = true
					work = append(work, s)
				}
			}
		}
	}
	return r
}

func defSetEqual(a, b map[Def]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for d := range a {
		if !b[d] {
			return false
		}
	}
	return true
}

// In returns the definitions reaching the entry of node id, sorted.
func (r *ReachingDefs) In(id int) []Def {
	out := make([]Def, 0, len(r.in[id]))
	for d := range r.in[id] {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Var != out[j].Var {
			return out[i].Var < out[j].Var
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// DefsReaching returns the definition sites of v reaching node id, sorted by
// node. The synthetic UndefNode definition, when present, sorts first.
func (r *ReachingDefs) DefsReaching(id int, v string) []Def {
	var out []Def
	for d := range r.in[id] {
		if d.Var == v {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// MaybeUndefined reports whether the local v may still be unassigned when
// node id executes: the synthetic "undefined" definition reaches the node.
func (r *ReachingDefs) MaybeUndefined(id int, v string) bool {
	return r.in[id][Def{Node: UndefNode, Var: v}]
}

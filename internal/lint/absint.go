package lint

import (
	"fmt"

	"prognosticator/internal/lang"
	"prognosticator/internal/value"
)

// Interval/constant abstract interpretation over the CFG.
//
// Each scalar variable is mapped to an element of the lattice
//
//	⊥  <  const (bool/string)  ,  [lo,hi] (int)  <  ⊤
//
// with join at CFG merges (interval hull, equal constants) and widening on
// loop back-edges. An unstable interval bound is widened straight to the
// sentinel ±absInf, i.e. "unbounded in that direction": each variable can
// then climb the lattice at most a constant number of times (⊥ → value →
// bound widened low → bound widened high → ⊤), so the fixed point terminates
// after O(|nodes| · |vars|) worklist visits. FuzzAbsIntTermination checks the
// bound on randomly generated programs; SolveAbsInt additionally enforces a
// hard iteration cap and degrades every variable to ⊤ if it is ever hit, so
// termination does not rest on the analysis being bug-free.
//
// Soundness contract: the environment entering a node over-approximates every
// concrete store reaching that node. Consumers (the dead-branch pass, the
// loop-bound pass) may therefore substitute a local by its abstract value
// when proving UNsatisfiability — a claim over a superset of the reachable
// states holds a fortiori over the reachable ones. Values that may exceed
// ±absInf are never produced: any arithmetic that could overflow the
// sentinels goes to ⊤ instead.

// AbsKind discriminates AbsVal.
type AbsKind int

// Lattice levels. Integer constants are normalized to one-point ranges, so
// AbsConst only ever carries bool or string payloads.
const (
	AbsBot   AbsKind = iota // unreachable / never assigned
	AbsConst                // exactly the bool/string V
	AbsRange                // an int in [Lo, Hi]
	AbsTop                  // unknown
)

// absInf is the magnitude of the interval sentinels: a bound equal to
// -absInf or +absInf means "unbounded in that direction". Sentinels are what
// widening produces and what overflow clamps to; consumers must treat them
// as unusable bounds. The value leaves headroom so that Hi-Lo never
// overflows int64 even between two sentinels.
const absInf = int64(1) << 62

// AbsVal is one lattice element.
type AbsVal struct {
	Kind   AbsKind
	V      value.Value // AbsConst payload (bool or string)
	Lo, Hi int64       // AbsRange payload
}

// absTop and absBot are the lattice extremes.
var (
	absTop = AbsVal{Kind: AbsTop}
	absBot = AbsVal{Kind: AbsBot}
)

// absRange normalizes an interval, collapsing to ⊤ if the bounds are
// inverted (callers construct only non-empty intervals) or stray beyond the
// sentinels.
func absRange(lo, hi int64) AbsVal {
	if lo > hi || lo < -absInf || hi > absInf {
		return absTop
	}
	return AbsVal{Kind: AbsRange, Lo: lo, Hi: hi}
}

// absConstVal wraps a concrete value; ints become one-point ranges.
func absConstVal(v value.Value) AbsVal {
	switch v.Kind() {
	case value.KindInt:
		return absRange(v.MustInt(), v.MustInt())
	case value.KindBool, value.KindString:
		return AbsVal{Kind: AbsConst, V: v}
	default:
		// Lists and records are not scalar: ⊤.
		return absTop
	}
}

// Singleton returns the concrete value v denotes, if it denotes exactly one.
func (v AbsVal) Singleton() (value.Value, bool) {
	switch v.Kind {
	case AbsConst:
		return v.V, true
	case AbsRange:
		if v.Lo == v.Hi {
			return value.Int(v.Lo), true
		}
	}
	return value.Value{}, false
}

// Bounded reports whether v is an interval with both bounds known (no
// widening sentinel). The dead-branch pass only materializes solver
// variables for bounded locals.
func (v AbsVal) Bounded() bool {
	return v.Kind == AbsRange && v.Lo > -absInf && v.Hi < absInf
}

// String renders the lattice element for diagnostics.
func (v AbsVal) String() string {
	switch v.Kind {
	case AbsBot:
		return "⊥"
	case AbsConst:
		return v.V.String()
	case AbsRange:
		if v.Lo == v.Hi {
			return fmt.Sprintf("%d", v.Lo)
		}
		lo, hi := "-∞", "+∞"
		if v.Lo > -absInf {
			lo = fmt.Sprintf("%d", v.Lo)
		}
		if v.Hi < absInf {
			hi = fmt.Sprintf("%d", v.Hi)
		}
		return fmt.Sprintf("[%s,%s]", lo, hi)
	default:
		return "⊤"
	}
}

// join is the least upper bound.
func join(a, b AbsVal) AbsVal {
	switch {
	case a.Kind == AbsBot:
		return b
	case b.Kind == AbsBot:
		return a
	case a.Kind == AbsTop || b.Kind == AbsTop:
		return absTop
	case a.Kind == AbsConst && b.Kind == AbsConst:
		if a.V.Equal(b.V) {
			return a
		}
		return absTop
	case a.Kind == AbsRange && b.Kind == AbsRange:
		return absRange(min64(a.Lo, b.Lo), max64(a.Hi, b.Hi))
	default:
		return absTop
	}
}

// widen accelerates convergence along back edges: any bound of new that is
// not stable w.r.t. old is dropped to its sentinel. Unlike join, widen is
// not symmetric — old is the previous fixed-point candidate, new the value
// flowing in.
func widen(old, new AbsVal) AbsVal {
	if old.Kind == AbsBot {
		return new
	}
	if old.Kind != AbsRange || new.Kind != AbsRange {
		if absEq(old, new) {
			return old
		}
		return absTop
	}
	lo, hi := old.Lo, old.Hi
	if new.Lo < lo {
		lo = -absInf
	}
	if new.Hi > hi {
		hi = absInf
	}
	return absRange(lo, hi)
}

func absEq(a, b AbsVal) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case AbsConst:
		return a.V.Equal(b.V)
	case AbsRange:
		return a.Lo == b.Lo && a.Hi == b.Hi
	default:
		return true
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// satAdd adds with saturation at the sentinels, so overflow degrades to
// "unbounded" rather than wrapping.
func satAdd(a, b int64) int64 {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) || s > absInf {
		return absInf
	}
	if s < -absInf {
		return -absInf
	}
	return s
}

// AbsEnv maps variable names to abstract values. Absent names are ⊥ for
// join purposes; consumers treat them as ⊤ (the variable may be undefined,
// which the use-before-assign pass reports separately).
type AbsEnv map[string]AbsVal

// get treats absence as ⊥ (dataflow identity).
func (e AbsEnv) get(name string) AbsVal {
	if v, ok := e[name]; ok {
		return v
	}
	return absBot
}

// Lookup is the consumer-facing accessor: absence degrades to ⊤.
func (e AbsEnv) Lookup(name string) AbsVal {
	if v, ok := e[name]; ok && v.Kind != AbsBot {
		return v
	}
	return absTop
}

func (e AbsEnv) clone() AbsEnv {
	cp := make(AbsEnv, len(e))
	for k, v := range e {
		cp[k] = v
	}
	return cp
}

// AbsState is the abstract-interpretation solution: for every CFG node, the
// environment holding on entry (before the node's own statement executes —
// for If and For nodes, the environment the condition / bounds are
// evaluated in).
type AbsState struct {
	cfg *CFG
	in  []AbsEnv
	// byPath maps structural statement paths to node IDs.
	byPath map[string]int

	// Iterations counts worklist visits; FuzzAbsIntTermination asserts it
	// stays under the analytic bound.
	Iterations int
	// Capped reports that the hard iteration cap fired and every variable
	// was degraded to ⊤ (still sound, maximally imprecise).
	Capped bool
}

// EnvAt returns the entry environment of the statement at the given
// structural path ("body[2].then[0]"), or false if the path names no node.
func (a *AbsState) EnvAt(path string) (AbsEnv, bool) {
	id, ok := a.byPath[path]
	if !ok {
		return nil, false
	}
	return a.in[id], true
}

// NodeAt returns the CFG node ID at the given structural path.
func (a *AbsState) NodeAt(path string) (int, bool) {
	id, ok := a.byPath[path]
	return id, ok
}

// maxIterations is the hard cap: comfortably above the analytic bound of
// O(|nodes| · |vars| · lattice-height) worklist visits.
func (a *AbsState) maxIterations() int {
	vars := len(a.cfg.Prog.Params)
	for _, n := range a.cfg.Nodes {
		vars += len(n.Defs)
	}
	return (len(a.cfg.Nodes) + 1) * (vars + 2) * 8
}

// SolveAbsInt runs the interval analysis to a fixed point over cfg.
func SolveAbsInt(cfg *CFG) *AbsState {
	a := &AbsState{
		cfg:    cfg,
		in:     make([]AbsEnv, len(cfg.Nodes)),
		byPath: make(map[string]int, len(cfg.Nodes)),
	}
	for _, n := range cfg.Nodes {
		if n.Path != "" {
			a.byPath[n.Path] = n.ID
		}
	}

	// Entry environment: parameters at their declared domains.
	entry := AbsEnv{}
	for _, prm := range cfg.Prog.Params {
		if prm.Kind == value.KindInt && prm.Lo <= prm.Hi {
			entry[prm.Name] = absRange(prm.Lo, prm.Hi)
		} else {
			entry[prm.Name] = absTop
		}
	}
	a.in[cfg.Entry] = entry

	limit := a.maxIterations()
	work := []int{cfg.Entry}
	queued := map[int]bool{cfg.Entry: true}
	for len(work) > 0 {
		if a.Iterations++; a.Iterations > limit {
			a.degradeToTop()
			return a
		}
		id := work[0]
		work, queued[id] = work[1:], false
		n := cfg.Nodes[id]
		out := transfer(cfg.Prog, n, a.in[id])
		for _, succ := range n.Succs {
			// Construction order makes every back edge point to a
			// lower-or-equal ID (a For node precedes its body; an empty body
			// yields a self-edge). Widen there, plain-join everywhere else.
			back := id >= succ
			merged := a.mergeInto(a.in[succ], out, back)
			if merged != nil {
				a.in[succ] = merged
				if !queued[succ] {
					work = append(work, succ)
					queued[succ] = true
				}
			}
		}
	}
	return a
}

// mergeInto joins src into dst, widening when the edge is a back edge.
// It returns the new environment if anything changed, nil otherwise.
func (a *AbsState) mergeInto(dst, src AbsEnv, back bool) AbsEnv {
	if dst == nil {
		return src.clone()
	}
	var out AbsEnv
	for name, sv := range src {
		ov := dst.get(name)
		nv := join(ov, sv)
		if back {
			nv = widen(ov, nv)
		}
		if !absEq(nv, ov) {
			if out == nil {
				out = dst.clone()
			}
			out[name] = nv
		}
	}
	return out
}

// degradeToTop is the cap fallback: forget everything, stay sound.
func (a *AbsState) degradeToTop() {
	a.Capped = true
	for i, env := range a.in {
		if env == nil {
			continue
		}
		top := make(AbsEnv, len(env))
		for name := range env {
			top[name] = absTop
		}
		a.in[i] = top
	}
}

// transfer applies the node's statement to its entry environment.
func transfer(prog *lang.Program, n *Node, in AbsEnv) AbsEnv {
	if n.Stmt == nil || in == nil {
		return in
	}
	switch s := n.Stmt.(type) {
	case lang.Assign:
		out := in.clone()
		out[s.Dst] = absEval(s.E, prog, in)
		return out
	case lang.Get:
		// Store reads are unknown to the static analysis.
		out := in.clone()
		out[s.Dst] = absTop
		return out
	case lang.SetField:
		// Records are not tracked; the whole destination goes to ⊤.
		out := in.clone()
		out[s.Dst] = absTop
		return out
	case lang.For:
		// The node is the test-and-step point: successors (body head and
		// loop exit) see the induction variable within the loop interval.
		out := in.clone()
		out[s.Var] = forVarInterval(s, prog, in)
		return out
	default:
		return in
	}
}

// forVarInterval bounds a loop's induction variable: in the body it ranges
// over [from, to-1]; after the loop it holds the last body value — or, when
// the loop can be skipped entirely, whatever it held before the loop (the
// interpreter assigns the variable only inside iterations, so a zero-trip
// loop must not claim the variable landed in the loop interval).
func forVarInterval(s lang.For, prog *lang.Program, env AbsEnv) AbsVal {
	from := absEval(s.From, prog, env)
	to := absEval(s.To, prog, env)
	if from.Kind != AbsRange || to.Kind != AbsRange {
		return absTop
	}
	hi := to.Hi
	if hi > -absInf && hi < absInf {
		hi-- // i < to: the last value is at most to.Hi - 1
	}
	if hi < from.Lo {
		// The interval is empty on every input: the body never runs and the
		// variable keeps its incoming binding (⊥ when never assigned, so
		// dead-code queries inside the body see an unreachable binding).
		return env.get(s.Var)
	}
	iter := absRange(from.Lo, hi)
	if from.Hi < to.Lo {
		// At least one iteration on every input: the variable is freshly
		// bound within the loop interval.
		return iter
	}
	// The loop may be skipped on some inputs: join the zero-trip (incoming)
	// binding with the loop interval.
	return join(env.get(s.Var), iter)
}

// absEval abstractly evaluates an expression in env.
func absEval(e lang.Expr, prog *lang.Program, env AbsEnv) AbsVal {
	switch x := e.(type) {
	case lang.Const:
		return absConstVal(x.V)
	case lang.ParamRef:
		prm, ok := prog.Param(x.Name)
		if ok && prm.Kind == value.KindInt && prm.Lo <= prm.Hi {
			return absRange(prm.Lo, prm.Hi)
		}
		return absTop
	case lang.LocalRef:
		return env.Lookup(x.Name)
	case lang.Bin:
		return absBin(x.Op, absEval(x.L, prog, env), absEval(x.R, prog, env))
	case lang.Not:
		v := absEval(x.E, prog, env)
		if b, ok := v.V.AsBool(); v.Kind == AbsConst && ok {
			return absConstVal(value.Bool(!b))
		}
		return absTop
	case lang.Index:
		// Indexing a declared list parameter yields the element domain,
		// regardless of which index is read.
		if pr, ok := x.E.(lang.ParamRef); ok {
			if prm, found := prog.Param(pr.Name); found && prm.Elem != nil &&
				prm.Elem.Kind == value.KindInt && prm.Elem.Lo <= prm.Elem.Hi {
				return absRange(prm.Elem.Lo, prm.Elem.Hi)
			}
		}
		return absTop
	default:
		// Field reads, record literals: not scalar-tracked.
		return absTop
	}
}

// absBin is the abstract transfer of a binary operator.
func absBin(op lang.Op, l, r AbsVal) AbsVal {
	if l.Kind == AbsBot || r.Kind == AbsBot {
		// Unreachable operand: stay conservative rather than propagate ⊥.
		return absTop
	}
	switch op {
	case lang.OpAdd, lang.OpSub, lang.OpMul:
		if l.Kind != AbsRange || r.Kind != AbsRange {
			return absTop
		}
		return absArith(op, l, r)
	case lang.OpDiv, lang.OpMod:
		// Exactly foldable when both operands denote single values; the
		// rounding and sign subtleties of proper interval division are not
		// worth modelling beyond that.
		if lv, lok := l.Singleton(); lok {
			if rv, rok := r.Singleton(); rok {
				if v, err := lang.EvalBin(op, lv, rv); err == nil {
					return absConstVal(v)
				}
			}
		}
		return absTop
	case lang.OpLt, lang.OpLe, lang.OpGt, lang.OpGe:
		if l.Kind != AbsRange || r.Kind != AbsRange {
			return absTop
		}
		return absCompare(op, l, r)
	case lang.OpEq, lang.OpNe:
		return absEqNe(op, l, r)
	case lang.OpAnd, lang.OpOr:
		return absLogic(op, l, r)
	default:
		return absTop
	}
}

// mulLimit bounds the operands of an abstract multiplication: products of
// in-range operands then fit int64 with room to spare, and anything larger
// degrades to ⊤.
const mulLimit = int64(1) << 31

func absArith(op lang.Op, l, r AbsVal) AbsVal {
	switch op {
	case lang.OpAdd:
		return absRange(satAdd(l.Lo, r.Lo), satAdd(l.Hi, r.Hi))
	case lang.OpSub:
		return absRange(satAdd(l.Lo, -r.Hi), satAdd(l.Hi, -r.Lo))
	default: // OpMul
		if l.Lo < -mulLimit || l.Hi > mulLimit || r.Lo < -mulLimit || r.Hi > mulLimit {
			return absTop
		}
		lo, hi := l.Lo*r.Lo, l.Lo*r.Lo
		for _, p := range []int64{l.Lo * r.Hi, l.Hi * r.Lo, l.Hi * r.Hi} {
			lo, hi = min64(lo, p), max64(hi, p)
		}
		return absRange(lo, hi)
	}
}

func absCompare(op lang.Op, l, r AbsVal) AbsVal {
	// Decide the comparison when the intervals are ordered or disjoint.
	switch op {
	case lang.OpLt:
		if l.Hi < r.Lo {
			return absConstVal(value.Bool(true))
		}
		if l.Lo >= r.Hi {
			return absConstVal(value.Bool(false))
		}
	case lang.OpLe:
		if l.Hi <= r.Lo {
			return absConstVal(value.Bool(true))
		}
		if l.Lo > r.Hi {
			return absConstVal(value.Bool(false))
		}
	case lang.OpGt:
		if l.Lo > r.Hi {
			return absConstVal(value.Bool(true))
		}
		if l.Hi <= r.Lo {
			return absConstVal(value.Bool(false))
		}
	case lang.OpGe:
		if l.Lo >= r.Hi {
			return absConstVal(value.Bool(true))
		}
		if l.Hi < r.Lo {
			return absConstVal(value.Bool(false))
		}
	}
	return absTop
}

func absEqNe(op lang.Op, l, r AbsVal) AbsVal {
	eqTrue := func() AbsVal { return absConstVal(value.Bool(op == lang.OpEq)) }
	eqFalse := func() AbsVal { return absConstVal(value.Bool(op == lang.OpNe)) }
	if lv, lok := l.Singleton(); lok {
		if rv, rok := r.Singleton(); rok {
			if lv.Equal(rv) {
				return eqTrue()
			}
			return eqFalse()
		}
	}
	if l.Kind == AbsRange && r.Kind == AbsRange && (l.Hi < r.Lo || r.Hi < l.Lo) {
		return eqFalse()
	}
	return absTop
}

func absLogic(op lang.Op, l, r AbsVal) AbsVal {
	lb, lok := l.V.AsBool()
	rb, rok := r.V.AsBool()
	lok = lok && l.Kind == AbsConst
	rok = rok && r.Kind == AbsConst
	if op == lang.OpAnd {
		if (lok && !lb) || (rok && !rb) {
			return absConstVal(value.Bool(false))
		}
		if lok && rok {
			return absConstVal(value.Bool(lb && rb))
		}
		return absTop
	}
	if (lok && lb) || (rok && rb) {
		return absConstVal(value.Bool(true))
	}
	if lok && rok {
		return absConstVal(value.Bool(lb || rb))
	}
	return absTop
}

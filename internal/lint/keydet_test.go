package lint

import (
	"strings"
	"testing"
)

func TestDeadBranchThroughLocal(t *testing.T) {
	fs := findingsOf(lintSrc(t, nil, `
transaction deadlocal(x int[0..9]) {
    y = x + 1
    if y > 100 {
        emit never = 1
    }
    emit out = y
}`), "dead-branch")
	if len(fs) != 1 || !strings.Contains(fs[0].Message, "then-branch is dead") {
		t.Fatalf("findings %v, want one dead-then warning through the local", fs)
	}
}

func TestDeadBranchOnInductionVariable(t *testing.T) {
	fs := findingsOf(lintSrc(t, nil, `
transaction deadloop(x int[0..9]) {
    s = 0
    for i = 0 .. 8 {
        if i > 20 {
            s = s + 1
        }
    }
    emit out = s
}`), "dead-branch")
	if len(fs) != 1 || fs[0].Path != "body[1].body[0]" {
		t.Fatalf("findings %v, want one dead-then warning on the induction-variable condition", fs)
	}
}

func TestDeadBranchLocalSingletonAlwaysTrue(t *testing.T) {
	fs := findingsOf(lintSrc(t, nil, `
transaction constlocal(x int[0..9]) {
    c = 7
    if c == 7 {
        emit yes = 1
    } else {
        emit no = 2
    }
}`), "dead-branch")
	if len(fs) != 1 || !strings.Contains(fs[0].Message, "always true") {
		t.Fatalf("findings %v, want one always-true warning via constant local", fs)
	}
}

func TestDeadBranchFeasibleLocalSilent(t *testing.T) {
	fs := findingsOf(lintSrc(t, nil, `
transaction livelocal(x int[0..9]) {
    y = x + 1
    if y > 5 {
        emit hi = 1
    }
    emit out = y
}`), "dead-branch")
	if len(fs) != 0 {
		t.Fatalf("feasible local condition flagged: %v", fs)
	}
}

func TestDeadBranchStoreLocalStillUndecidable(t *testing.T) {
	// A local carrying a store value has abstract value ⊤: no verdict.
	fs := findingsOf(lintSrc(t, nil, `
transaction storeval(x int[0..9]) {
    r = get T[x]
    v = r.n
    if v > 100 {
        emit big = 1
    }
}`), "dead-branch")
	if len(fs) != 0 {
		t.Fatalf("store-derived condition flagged: %v", fs)
	}
}

func TestLoopBoundPassAbsIntFallback(t *testing.T) {
	// The bound is a local — outside exprInterval's fragment — but the
	// abstract interpreter bounds it to [0,3], proving the loop empty.
	fs := findingsOf(lintSrc(t, nil, `
transaction neverloop(a int[0..3]) {
    lim = a
    for i = 5 .. lim {
        emit x = i
    }
    emit out = 0
}`), "loop-bound")
	if len(fs) != 1 || !strings.Contains(fs[0].Message, "never executes") {
		t.Fatalf("findings %v, want one never-executes warning via absint bounds", fs)
	}
}

func TestKeyDeterminismPassProofs(t *testing.T) {
	fs := findingsOf(lintSrc(t, nil, `
transaction opencounter(initial int[0..100]) {
    c = get COUNTERS["accounts"]
    id = c.next
    put ACCOUNTS[id] = {bal: initial}
    c.next = id + 1
    put COUNTERS["accounts"] = c
}`), "key-determinism")
	if len(fs) != 3 {
		t.Fatalf("got %d findings, want one per access: %v", len(fs), fs)
	}
	var direct, pivot int
	for _, f := range fs {
		switch {
		case strings.Contains(f.Message, "predicted client-side"):
			direct++
		case strings.Contains(f.Message, "pivot-dependent"):
			pivot++
			if !strings.Contains(f.Message, `"id"`) {
				t.Errorf("pivot-dependent proof lacks witness: %q", f.Message)
			}
		}
	}
	if direct != 2 || pivot != 1 {
		t.Errorf("direct=%d pivot=%d, want 2 direct + 1 pivot: %v", direct, pivot, fs)
	}
}

func TestKeyDeterminismPassTraversalPivot(t *testing.T) {
	fs := findingsOf(lintSrc(t, nil, `
transaction guarded(src int[0..9], amt int[1..10]) {
    s = get ACCOUNTS[src]
    if s.bal >= amt {
        put ACCOUNTS[src] = s
    }
}`), "key-determinism")
	var tp int
	for _, f := range fs {
		if strings.Contains(f.Message, "traversal pivot") {
			tp++
			if f.Path != "keys" {
				t.Errorf("traversal-pivot finding path %q, want \"keys\"", f.Path)
			}
		}
		if strings.Contains(f.Message, "predicted client-side") {
			t.Errorf("client-side prediction claimed despite traversal pivot: %q", f.Message)
		}
	}
	if tp != 1 {
		t.Fatalf("got %d traversal-pivot findings, want 1: %v", tp, fs)
	}
}

func TestKeyDeterminismPassSilentOnIndependent(t *testing.T) {
	fs := findingsOf(lintSrc(t, nil, `
transaction indep(id int[0..9], amt int[1..100]) {
    a = get ACCOUNTS[id]
    a.bal = a.bal + amt
    put ACCOUNTS[id] = a
}`), "key-determinism")
	if len(fs) != 0 {
		t.Fatalf("independent transaction got key-determinism findings: %v", fs)
	}
}

func TestPivotKeyPassDowngradeMessage(t *testing.T) {
	fs := findingsOf(lintSrc(t, nil, `
transaction chase(id int[0..9]) {
    c = get COUNTERS[id]
    put ITEMS[c.next] = {v: 1}
}`), "pivot-key")
	if len(fs) != 1 || !strings.Contains(fs[0].Message, "predicted client-side") {
		t.Fatalf("findings %v, want downgraded pivot-key message", fs)
	}
	fs = findingsOf(lintSrc(t, nil, `
transaction guarded(src int[0..9], amt int[1..10]) {
    s = get ACCOUNTS[src]
    if s.bal >= amt {
        put ACCOUNTS[src] = s
    }
}`), "pivot-key")
	if len(fs) != 1 || !strings.Contains(fs[0].Message, "falls back to pivot reads") {
		t.Fatalf("findings %v, want fallback pivot-key message under traversal pivot", fs)
	}
}

package lint

import (
	"math/rand"
	"testing"

	"prognosticator/internal/lang"
	"prognosticator/internal/profile"
	"prognosticator/internal/sym"
	"prognosticator/internal/symexec"
	"prognosticator/internal/taint"
	"prognosticator/internal/value"
	"prognosticator/internal/workload/rubis"
	"prognosticator/internal/workload/tpcc"
)

// --- DBM primitives ---

func TestZoneClosure(t *testing.T) {
	// Three variables besides the zero var: closure must derive the
	// transitive bound v1 - 0 ≤ 8 from v1 - v2 ≤ 5 and v2 - 0 ≤ 3.
	z := newZone(3)
	z.tighten(1, 2, 5)
	z.tighten(2, 0, 3)
	z.close()
	if z.Bottom() {
		t.Fatal("consistent zone closed to ⊥")
	}
	if got := z.at(1, 0); got != 8 {
		t.Errorf("closure: v1 - 0 ≤ %d, want 8", got)
	}
	// Closure is idempotent.
	before := append([]int64(nil), z.m...)
	z.close()
	for i := range before {
		if z.m[i] != before[i] {
			t.Fatalf("closure not idempotent at entry %d: %d -> %d", i, before[i], z.m[i])
		}
	}
}

func TestZoneBottomDetection(t *testing.T) {
	// v1 - v2 ≤ -1 and v2 - v1 ≤ 0 is the empty zone (v1 < v2 ∧ v2 ≤ v1).
	z := newZone(3)
	z.tighten(1, 2, -1)
	z.tighten(2, 1, 0)
	z.close()
	if !z.Bottom() {
		t.Error("negative cycle not detected as ⊥")
	}
}

func TestZoneJoin(t *testing.T) {
	a := newZone(2)
	a.tighten(1, 0, 5)
	a.tighten(0, 1, 0) // v1 ∈ [0, 5]
	a.close()
	b := newZone(2)
	b.tighten(1, 0, 9)
	b.tighten(0, 1, -7) // v1 ∈ [7, 9]
	b.close()
	j := joinZ(a.clone(), b.clone())
	if got := j.at(1, 0); got != 9 {
		t.Errorf("join upper: v1 ≤ %d, want 9", got)
	}
	if got := j.at(0, 1); got != 0 {
		t.Errorf("join lower: -v1 ≤ %d, want 0", got)
	}
	// ⊥ is the identity of join, in both positions.
	bot := newZone(2)
	bot.bottom = true
	if j2 := joinZ(bot.clone(), a); j2.Bottom() || j2.at(1, 0) != 5 {
		t.Errorf("join(⊥, a) lost a")
	}
	if j3 := joinZ(a.clone(), bot); j3.Bottom() || j3.at(1, 0) != 5 {
		t.Errorf("join(a, ⊥) lost a")
	}
}

func TestZoneWideningTerminates(t *testing.T) {
	// The accumulator forces widening along the back edge; the relational
	// matrix must still converge without the hard cap.
	p := mustParse(t, `
transaction accum(n int[0..100]) {
    s = 0
    for i = 0 .. n {
        s = s + 1
    }
    emit out = s
}`)
	zs := SolveZone(BuildCFG(p))
	if zs.Capped {
		t.Fatalf("iteration cap fired on a 4-statement loop (Iterations=%d)", zs.Iterations)
	}
	if zs.Iterations > zs.maxIterations() {
		t.Fatalf("Iterations=%d exceeds bound %d", zs.Iterations, zs.maxIterations())
	}
	// The exit statement is reachable with a consistent zone.
	z := zs.At("body[2]")
	if z == nil || z.Bottom() {
		t.Fatalf("exit statement unreachable per zone: %v", z)
	}
}

// --- relational reasoning the interval domain cannot do ---

func TestZoneRelationalDeadBranch(t *testing.T) {
	p := mustParse(t, `
transaction deadRel(x int[0..100]) {
    y = x - 1
    if x < y {
        u = 1
    }
    emit out = y
}`)
	zs := SolveZone(BuildCFG(p))
	cond := p.Body[1].(lang.If).Cond
	if !zs.CondDead("body[1]", cond, false) {
		t.Error("x < y after y = x - 1 not proven dead")
	}
	if zs.CondDead("body[1]", cond, true) {
		t.Error("¬(x < y) wrongly proven dead")
	}
}

func TestZoneLoopBoundThroughJoin(t *testing.T) {
	// lim is n clamped to 6: the interval join of the arms keeps hi = 6 only
	// because the zone assumes the else-edge guard lim ≤ 6.
	p := mustParse(t, `
transaction relLoop(n int[1..200]) {
    lim = n
    if lim > 6 {
        lim = 6
    }
    for i = 0 .. lim {
        u = i
    }
    emit out = 0
}`)
	zs := SolveZone(BuildCFG(p))
	v, ok := zs.ExprBoundsAt("body[2]", lang.L("lim"))
	if !ok || v.Kind != AbsRange {
		t.Fatalf("no bounds for lim at the loop: %v %v", v, ok)
	}
	if v.Hi != 6 {
		t.Errorf("lim hi = %d at the loop, want 6 (guard-refined join)", v.Hi)
	}
	if v.Lo != 1 {
		t.Errorf("lim lo = %d at the loop, want 1", v.Lo)
	}
}

func TestZoneInputResolvable(t *testing.T) {
	p := mustParse(t, `
transaction res(u int[0..9]) {
    id = u
    a = get T[id]
    id = a.next
    put T[id] = a
    emit out = 0
}`)
	zs := SolveZoneOpts(BuildCFG(p), ZoneOpts{})
	if !zs.InputResolvable("body[1]", "id") {
		t.Error("id = u not resolvable at the GET")
	}
	if zs.InputResolvable("body[3]", "id") {
		t.Error("id = a.next wrongly resolvable at the PUT")
	}
}

func TestAliasZoneIgnoresGuards(t *testing.T) {
	// `if v == u` proves v = u on the then-edge for the guard zone, but the
	// alias zone must not resolve it: the equality is path-local, not an
	// assignment chain, and the symbolic executor's term for v stays a pivot.
	p := mustParse(t, `
transaction guarded(u int[0..9]) {
    a = get T[u]
    v = a.n
    if v == u {
        put T[v] = a
    }
    emit out = 0
}`)
	cfg := BuildCFG(p)
	alias := SolveZoneOpts(cfg, ZoneOpts{})
	if alias.InputResolvable("body[2].then[0]", "v") {
		t.Error("alias zone resolved a guard-derived equality")
	}
	guard := SolveZone(cfg)
	z := guard.At("body[2].then[0]")
	if z == nil || z.Bottom() {
		t.Fatal("then-arm unreachable per guard zone")
	}
	vi, ui := guard.localIdx["v"], guard.paramIdx["u"]
	if z.at(vi, ui) != 0 || z.at(ui, vi) != 0 {
		t.Errorf("guard zone should know v = u on the then-edge, got v-u ≤ %d, u-v ≤ %d",
			z.at(vi, ui), z.at(ui, vi))
	}
}

func TestKeyDetOracleUpgradesParts(t *testing.T) {
	p := mustParse(t, `
transaction eqk(u int[0..9], amt int[1..50]) {
    id = u
    c = get COUNTER[id]
    put AUDIT[id] = {v: amt}
    id = c.next
    put ITEMS[id] = {v: amt}
    emit out = 0
}`)
	plain := taint.KeyDeterminism(p)
	oracle := taint.KeyDeterminismOracle(p, SolveZoneOpts(BuildCFG(p), ZoneOpts{}))
	if plain.DirectCount() >= oracle.DirectCount() {
		t.Fatalf("oracle did not add direct accesses: plain=%d oracle=%d",
			plain.DirectCount(), oracle.DirectCount())
	}
	// The GET and the AUDIT PUT read `id` while it still equals u; the ITEMS
	// PUT reads it after `id = c.next` and must stay pivot-dependent.
	for _, a := range oracle.Accesses {
		switch a.Path {
		case "body[1]", "body[2]":
			if !a.Direct() {
				t.Errorf("%s %s at %s not upgraded to direct", a.Op, a.Table, a.Path)
			}
		case "body[4]":
			if a.Direct() {
				t.Errorf("%s %s at %s wrongly direct", a.Op, a.Table, a.Path)
			}
		}
	}
}

// --- differential fuzzing: zone vs interval vs concrete execution ---

// FuzzZoneVsInterval is the tentpole's differential target. For arbitrary
// program shapes it asserts (1) both zone variants converge without the
// hard cap, (2) the guard zone's unary bounds are never looser than the
// interval solution's, and (3) both variants are sound against traced
// concrete executions on boundary and random inputs over empty and
// populated stores.
func FuzzZoneVsInterval(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{5, 3, 0, 5, 3, 0, 5, 3, 0, 5, 3, 0, 1, 1, 1, 1})
	f.Add([]byte{4, 3, 1, 5, 0, 2, 4, 3, 1, 5, 0, 2, 4, 3, 1, 5, 0, 2, 9, 9})
	f.Add([]byte{1, 8, 2, 14, 3, 9, 1, 0, 4, 7, 21, 2, 5, 5, 5, 0, 3, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := buildFuzzProgram(data)
		cfg := BuildCFG(p)
		abs := SolveAbsInt(cfg)
		guard := SolveZoneOpts(cfg, ZoneOpts{AssumeGuards: true, Abs: abs})
		alias := SolveZoneOpts(cfg, ZoneOpts{})
		for name, zs := range map[string]*ZoneState{"guard": guard, "alias": alias} {
			if zs.Capped {
				t.Fatalf("%s zone iteration cap fired (Iterations=%d, nodes=%d)",
					name, zs.Iterations, len(cfg.Nodes))
			}
			if zs.Iterations > zs.maxIterations() {
				t.Fatalf("%s zone Iterations=%d exceeds bound %d", name, zs.Iterations, zs.maxIterations())
			}
		}

		// Precision: at every node both analyses reach, every interval-bounded
		// local must be at least as tightly bounded by the guard zone.
		for _, n := range cfg.Nodes {
			if n.Path == "" {
				continue
			}
			env, ok := abs.EnvAt(n.Path)
			if !ok || env == nil {
				continue
			}
			z := guard.At(n.Path)
			if z == nil || z.Bottom() {
				continue
			}
			for name, v := range env {
				if v.Kind != AbsRange {
					continue
				}
				lo, hi, tracked := guard.varBounds(z, name)
				if !tracked {
					t.Fatalf("local %q interval-tracked but unknown to the zone at %s", name, n.Path)
				}
				if lo < v.Lo || hi > v.Hi {
					t.Errorf("zone bounds [%d,%d] looser than interval [%d,%d] for %q at %s",
						lo, hi, v.Lo, v.Hi, name, n.Path)
				}
			}
		}

		// Soundness: traced concrete executions must satisfy every closed
		// constraint of both variants. Runs that error are still traced up to
		// the failure point; those states are reachable and count.
		zv := newZoneValidator(p)
		rep := &SoundnessReport{TxName: p.Name}
		opts := SoundnessOptions{}.withDefaults()
		rng := rand.New(rand.NewSource(1))
		samples := boundarySamples(p)
		for i := 0; i < 8; i++ {
			s, err := randomSample(p, rng)
			if err != nil {
				t.Fatalf("randomSample: %v", err)
			}
			samples = append(samples, s)
		}
		fields := fieldNames(p)
		for _, inputs := range samples {
			res, err := lang.RunTrace(p, inputs, newStoreKV(), zv.trace(inputs, rep, opts))
			if err != nil {
				continue
			}
			populated := newStoreKV()
			for _, k := range res.Reads {
				rec := map[string]value.Value{}
				for _, fn := range fields {
					rec[fn] = value.Int(rng.Int63n(maxFieldValue))
				}
				populated.Put(k, value.Record(rec))
			}
			_, _ = lang.RunTrace(p, inputs, populated, zv.trace(inputs, rep, opts))
		}
		if len(rep.ZoneViolations) > 0 {
			v := rep.ZoneViolations[0]
			t.Fatalf("zone unsound at %s: %s", v.Path, v.Msg)
		}
	})
}

// --- the oracle must stay aligned with symbolic-execution profiles ---

// TestOracleAgreesWithProfiles pins the contract behind the key-determinism
// upgrade: in every table the oracle-assisted static analysis proves
// all-direct, the symbolic-execution profile must have no pivot in any key
// term. A disagreement would mean the engine skips pivot reads a key needs.
func TestOracleAgreesWithProfiles(t *testing.T) {
	var progs []*lang.Program
	progs = append(progs, tpcc.Programs(tpcc.DefaultConfig(2))...)
	progs = append(progs, rubis.Programs(rubis.DefaultConfig())...)
	for _, p := range progs {
		prof, err := symexec.AnalyzeProfileOnly(p)
		if err != nil {
			t.Fatalf("%s: AnalyzeProfileOnly: %v", p.Name, err)
		}
		pc := &ProgContext{Prog: p}
		kd := pc.KeyDet()
		directTables := map[string]bool{}
		for _, tb := range kd.DirectTables() {
			directTables[tb] = true
		}
		var walk func(n *profile.Node)
		walk = func(n *profile.Node) {
			if n == nil {
				return
			}
			for _, a := range n.Seg {
				if !directTables[a.Table] {
					continue
				}
				for _, part := range a.Key {
					if sym.HasPivot(part) {
						t.Errorf("%s: static analysis proves table %s all-direct but profile key %v has a pivot",
							p.Name, a.Table, part)
					}
				}
			}
			walk(n.True)
			walk(n.False)
		}
		walk(prof.Root)
	}
}

package lint

import (
	"fmt"
	"sort"

	"prognosticator/internal/lang"
)

// Node is one CFG node: a single statement, or the synthetic entry/exit.
// Compound statements (If, For) contribute one node for their own
// evaluation (condition / bounds-and-test) plus nodes for their nested
// statements.
type Node struct {
	ID int
	// Stmt is nil for the entry and exit nodes.
	Stmt lang.Stmt
	// Pos is the statement's source position (zero if unknown).
	Pos lang.Pos
	// Path is the structural path, e.g. "body[2].then[0]".
	Path string
	// Succs and Preds are edge lists (node IDs), in construction order.
	Succs, Preds []int

	// Defs lists the locals this node assigns (Assign/Get/SetField dst,
	// For induction variable). Uses lists the locals whose current value
	// this node reads. Both are sorted.
	Defs, Uses []string
}

// CFG is the control-flow graph of one program body.
type CFG struct {
	Prog  *lang.Program
	Nodes []*Node
	Entry int
	Exit  int
}

// BuildCFG constructs the CFG of p. The graph is a faithful rendering of the
// structured control flow: If nodes branch to the heads of both arms (or
// past them when an arm is empty), For nodes test-and-branch to the body
// head and to the loop exit, and body tails edge back to the For node.
func BuildCFG(p *lang.Program) *CFG {
	b := &cfgBuilder{cfg: &CFG{Prog: p}}
	entry := b.newNode(nil, "")
	b.cfg.Entry = entry.ID
	frontier := b.block(p.Body, "body", []int{entry.ID})
	exit := b.newNode(nil, "")
	b.cfg.Exit = exit.ID
	b.connect(frontier, exit.ID)
	return b.cfg
}

type cfgBuilder struct {
	cfg *CFG
}

func (b *cfgBuilder) newNode(st lang.Stmt, path string) *Node {
	n := &Node{ID: len(b.cfg.Nodes), Stmt: st, Path: path}
	if st != nil {
		n.Pos = st.StmtPos()
		n.Defs, n.Uses = stmtDefs(st), stmtUses(st)
	}
	b.cfg.Nodes = append(b.cfg.Nodes, n)
	return n
}

func (b *cfgBuilder) connect(from []int, to int) {
	for _, f := range from {
		b.cfg.Nodes[f].Succs = append(b.cfg.Nodes[f].Succs, to)
		b.cfg.Nodes[to].Preds = append(b.cfg.Nodes[to].Preds, f)
	}
}

// block lays out a statement sequence, connecting preds to its head, and
// returns the frontier: the node set from which control leaves the block.
// An empty block returns preds unchanged.
func (b *cfgBuilder) block(body []lang.Stmt, label string, preds []int) []int {
	frontier := preds
	for i, st := range body {
		path := fmt.Sprintf("%s[%d]", label, i)
		n := b.newNode(st, path)
		b.connect(frontier, n.ID)
		switch s := st.(type) {
		case lang.If:
			thenF := b.block(s.Then, path+".then", []int{n.ID})
			elseF := b.block(s.Else, path+".else", []int{n.ID})
			// With an empty arm the sub-frontier is {n} itself; dedup so the
			// join does not receive duplicate edges from a no-op If.
			frontier = dedupIDs(append(append([]int{}, thenF...), elseF...))
		case lang.For:
			bodyF := b.block(s.Body, path+".body", []int{n.ID})
			// Back edge: end of the body re-tests the loop condition. When
			// the body is empty the self-edge still models re-testing.
			b.connect(bodyF, n.ID)
			frontier = []int{n.ID}
		default:
			frontier = []int{n.ID}
		}
	}
	return frontier
}

func dedupIDs(ids []int) []int {
	seen := map[int]bool{}
	out := ids[:0]
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// stmtDefs returns the locals the statement assigns.
func stmtDefs(st lang.Stmt) []string {
	switch s := st.(type) {
	case lang.Assign:
		return []string{s.Dst}
	case lang.SetField:
		return []string{s.Dst}
	case lang.Get:
		return []string{s.Dst}
	case lang.For:
		return []string{s.Var}
	default:
		return nil
	}
}

// stmtUses returns the locals whose value the statement reads at its own
// node (not in nested blocks: those have their own nodes). Parameters are
// always defined and are excluded.
func stmtUses(st lang.Stmt) []string {
	var out []string
	add := func(e lang.Expr) { out = exprLocals(e, out) }
	switch s := st.(type) {
	case lang.Assign:
		add(s.E)
	case lang.SetField:
		// Reading-and-updating: the destination record is read before the
		// field store, so it must already be defined.
		out = append(out, s.Dst)
		add(s.E)
	case lang.Get:
		for _, k := range s.Key {
			add(k)
		}
	case lang.Put:
		for _, k := range s.Key {
			add(k)
		}
		add(s.Val)
	case lang.Del:
		for _, k := range s.Key {
			add(k)
		}
	case lang.If:
		add(s.Cond)
	case lang.For:
		add(s.From)
		add(s.To)
	case lang.Emit:
		add(s.E)
	}
	return sortDedup(out)
}

// exprLocals appends the LocalRef names in e to out.
func exprLocals(e lang.Expr, out []string) []string {
	switch x := e.(type) {
	case lang.LocalRef:
		return append(out, x.Name)
	case lang.Bin:
		return exprLocals(x.R, exprLocals(x.L, out))
	case lang.Not:
		return exprLocals(x.E, out)
	case lang.Field:
		return exprLocals(x.E, out)
	case lang.Index:
		return exprLocals(x.I, exprLocals(x.E, out))
	case lang.Rec:
		for _, f := range x.Fields {
			out = exprLocals(f.E, out)
		}
		return out
	default:
		return out
	}
}

func sortDedup(names []string) []string {
	if len(names) == 0 {
		return nil
	}
	seen := map[string]bool{}
	out := names[:0]
	for _, n := range names {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

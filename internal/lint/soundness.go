package lint

import (
	"fmt"
	"math/rand"
	"sort"

	"prognosticator/internal/lang"
	"prognosticator/internal/profile"
	"prognosticator/internal/value"
)

// The soundness checker cross-validates a symbolic-execution profile
// against the concrete interpreter: for sampled inputs (domain boundaries
// plus seeded-random draws) and store states, the key-set obtained by
// instantiating the profile must exactly equal the read/write-set of the
// concrete execution. An under-approximation (a key the execution touches
// but the profile missed) breaks determinism — the scheduler would not lock
// it; an over-approximation (a predicted key never touched) only costs
// parallelism. Both are reported, separately.

// MismatchKind distinguishes the two unsoundness directions.
type MismatchKind int

// Mismatch kinds.
const (
	// Over: the profile predicts a key the concrete execution never touches.
	Over MismatchKind = iota + 1
	// Under: the concrete execution touches a key the profile missed.
	Under
)

// String returns the kind name.
func (k MismatchKind) String() string {
	if k == Under {
		return "under-approximation"
	}
	return "over-approximation"
}

// Mismatch is one disagreement between profile and oracle.
type Mismatch struct {
	Kind  MismatchKind
	Key   value.Key
	Write bool
	// Inputs is the sampled assignment that exposed the disagreement.
	Inputs map[string]value.Value
	// Populated reports whether the store was pre-populated (true) or empty
	// (false) for this sample.
	Populated bool
}

// String renders the mismatch for diagnostics.
func (m Mismatch) String() string {
	op := "read"
	if m.Write {
		op = "write"
	}
	return fmt.Sprintf("%s: %s of %s (inputs %s, populated=%v)",
		m.Kind, op, m.Key, renderInputs(m.Inputs), m.Populated)
}

func renderInputs(in map[string]value.Value) string {
	names := make([]string, 0, len(in))
	for n := range in {
		names = append(names, n)
	}
	sort.Strings(names)
	s := "{"
	for i, n := range names {
		if i > 0 {
			s += ", "
		}
		s += n + ":" + in[n].String()
	}
	return s + "}"
}

// SoundnessOptions configures CheckSoundness.
type SoundnessOptions struct {
	// Samples is the number of random input assignments per store state, in
	// addition to the deterministic boundary assignments. 0 means 32.
	Samples int
	// Seed drives the deterministic RNG. 0 means 1.
	Seed int64
	// MaxMismatches caps the reported mismatches. 0 means 32.
	MaxMismatches int
}

func (o SoundnessOptions) withDefaults() SoundnessOptions {
	if o.Samples == 0 {
		o.Samples = 32
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxMismatches == 0 {
		o.MaxMismatches = 32
	}
	return o
}

// SoundnessReport is the outcome of one profile cross-validation.
type SoundnessReport struct {
	TxName string
	// SamplesRun counts (input, store-state) pairs checked.
	SamplesRun int
	// Over and Under hold the mismatches by direction.
	Over, Under []Mismatch
	// Errors lists execution or instantiation failures hit while sampling
	// (e.g. division by zero on a boundary input); they are reported, not
	// silently skipped.
	Errors []string
	// ZoneViolations lists statements where a traced concrete execution
	// state falsified a closed zone constraint (the zone-soundness check).
	ZoneViolations []ZoneViolation
}

// ZoneViolation is one falsified zone claim: a concrete execution reached
// Path in a state that does not satisfy the closed difference-bound
// constraints the zone analysis derived there.
type ZoneViolation struct {
	Path string
	Msg  string
}

// Sound reports whether no mismatch and no error was found.
func (r *SoundnessReport) Sound() bool {
	return len(r.Over) == 0 && len(r.Under) == 0 && len(r.Errors) == 0 &&
		len(r.ZoneViolations) == 0
}

// Findings converts the report into lint findings: under-approximations are
// errors (determinism hazard), over-approximations warnings (lost
// parallelism), execution failures errors.
func (r *SoundnessReport) Findings() []Finding {
	var out []Finding
	for _, m := range r.Under {
		out = append(out, Finding{
			Prog: r.TxName, Pass: "profile-soundness", Path: "profile",
			Severity: SevError,
			Message:  "profile misses a key the execution touches: " + m.String(),
		})
	}
	for _, m := range r.Over {
		out = append(out, Finding{
			Prog: r.TxName, Pass: "profile-soundness", Path: "profile",
			Severity: SevWarning,
			Message:  "profile predicts a key the execution never touches: " + m.String(),
		})
	}
	for _, e := range r.Errors {
		out = append(out, Finding{
			Prog: r.TxName, Pass: "profile-soundness", Path: "profile",
			Severity: SevError,
			Message:  "sample execution failed: " + e,
		})
	}
	for _, v := range r.ZoneViolations {
		out = append(out, Finding{
			Prog: r.TxName, Pass: "zone-soundness", Path: v.Path,
			Severity: SevError,
			Message:  v.Msg,
		})
	}
	SortFindings(out)
	return out
}

// CheckSoundness validates prof against the concrete interpretation of p.
// Each sampled input assignment is checked against two store states: an
// empty store (all pivots read as absent) and a store whose read key-set is
// populated with records carrying seeded-random field values (pivot
// conditions exercise both outcomes).
func CheckSoundness(p *lang.Program, prof *profile.Profile, opts SoundnessOptions) (*SoundnessReport, error) {
	if prof == nil {
		return nil, fmt.Errorf("lint: soundness: no profile for %s", p.Name)
	}
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	rep := &SoundnessReport{TxName: p.Name}
	checkDirectMarks(prof, rep, opts)
	fields := fieldNames(p)
	zv := newZoneValidator(p)

	samples := boundarySamples(p)
	for i := 0; i < opts.Samples; i++ {
		s, err := randomSample(p, rng)
		if err != nil {
			return nil, err
		}
		samples = append(samples, s)
	}

	for _, inputs := range samples {
		// State 1: empty store.
		if err := checkOne(p, prof, inputs, newStoreKV(), false, rep, opts, zv); err != nil {
			return nil, err
		}
		// State 2: populate the keys the execution reads on the empty store
		// with records of random field values, then re-check. This flips
		// pivot-dependent conditions that are constant on an empty store.
		probe := newStoreKV()
		res, err := lang.Run(p, inputs, probe)
		if err != nil {
			continue // already reported by the empty-store check
		}
		populated := newStoreKV()
		for _, k := range res.Reads {
			rec := map[string]value.Value{}
			for _, f := range fields {
				rec[f] = value.Int(rng.Int63n(maxFieldValue))
			}
			populated.Put(k, value.Record(rec))
		}
		if err := checkOne(p, prof, inputs, populated, true, rep, opts, zv); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// maxFieldValue bounds random record field values; comfortably above
// typical parameter domains so comparisons go both ways.
const maxFieldValue = 1 << 12

// checkOne runs the profile and the oracle against one (inputs, store)
// pair, recording disagreements into rep. The concrete execution is traced
// statement by statement so the zone validator can falsify difference-bound
// claims against live states (states observed before an execution error are
// still reachable states, so tracing a failing run is fine).
func checkOne(p *lang.Program, prof *profile.Profile, inputs map[string]value.Value,
	st *storeKV, populated bool, rep *SoundnessReport, opts SoundnessOptions, zv *zoneValidator) error {
	rep.SamplesRun++

	// Instantiate against the pristine store: pivot reads must see the
	// state the concrete execution starts from.
	ks, ierr := prof.Instantiate(inputs, st)
	// The oracle runs on a clone; the concrete execution mutates its store.
	res, rerr := lang.RunTrace(p, inputs, st.clone(), zv.trace(inputs, rep, opts))
	switch {
	case ierr != nil && rerr != nil:
		// Both reject the input (e.g. an out-of-domain boundary combination
		// hitting a division); consistent, nothing to compare.
		return nil
	case ierr != nil:
		rep.addError(fmt.Sprintf("profile instantiation failed where execution succeeds: %v (inputs %s)",
			ierr, renderInputs(inputs)), opts)
		return nil
	case rerr != nil:
		rep.addError(fmt.Sprintf("concrete execution failed: %v (inputs %s)", rerr, renderInputs(inputs)), opts)
		return nil
	}

	diffKeySets(ks.Reads, res.Reads, false, inputs, populated, rep, opts)
	diffKeySets(ks.Writes, res.Writes, true, inputs, populated, rep, opts)
	checkSplitInstantiation(prof, inputs, st, ks, rep, opts)
	return nil
}

// checkDirectMarks validates the profile's Direct annotations against the
// symbolic keys themselves: an access marked Direct must not mention a pivot
// variable in any key part, or the engine would skip pivot reads the key
// actually needs. (A pivot-free access left unmarked is merely conservative —
// it costs the client-side-prediction optimization, not correctness — so it
// is not reported here; the symbolic executor's own cross-check catches it at
// analysis time.)
func checkDirectMarks(prof *profile.Profile, rep *SoundnessReport, opts SoundnessOptions) {
	var walk func(n *profile.Node)
	walk = func(n *profile.Node) {
		if n == nil {
			return
		}
		for _, a := range n.Seg {
			if a.Direct && a.Indirect() {
				rep.addError(fmt.Sprintf("access %s is marked Direct but its key depends on a pivot", a), opts)
			}
		}
		walk(n.True)
		walk(n.False)
	}
	walk(prof.Root)
}

// checkSplitInstantiation cross-validates the client-side prediction path:
// for pivot-free-traversal profiles the direct + indirect split must
// reproduce the full instantiation — same keys, same pivot observations, and
// no store access from the direct half.
func checkSplitInstantiation(prof *profile.Profile, inputs map[string]value.Value,
	st *storeKV, full *profile.KeySet, rep *SoundnessReport, opts SoundnessOptions) {
	if !prof.PivotFreeTraversal() {
		return
	}
	direct, err := prof.InstantiateDirect(inputs)
	if err != nil {
		rep.addError(fmt.Sprintf("direct instantiation failed where full instantiation succeeds: %v (inputs %s)",
			err, renderInputs(inputs)), opts)
		return
	}
	if len(direct.Pivots) != 0 {
		rep.addError(fmt.Sprintf("direct instantiation recorded %d pivot observations (inputs %s)",
			len(direct.Pivots), renderInputs(inputs)), opts)
	}
	indirect, err := prof.InstantiateIndirect(inputs, st)
	if err != nil {
		rep.addError(fmt.Sprintf("indirect instantiation failed where full instantiation succeeds: %v (inputs %s)",
			err, renderInputs(inputs)), opts)
		return
	}
	merged := profile.Merge(direct, indirect)
	if len(merged.Pivots) != len(full.Pivots) {
		rep.addError(fmt.Sprintf("split instantiation observed %d pivots, full observed %d (inputs %s)",
			len(merged.Pivots), len(full.Pivots), renderInputs(inputs)), opts)
	}
	sameKeySet(merged.Reads, full.Reads, "read", inputs, rep, opts)
	sameKeySet(merged.Writes, full.Writes, "write", inputs, rep, opts)
}

// --- zone validation: concrete states vs difference-bound claims ---

// zoneValidator cross-validates both zone variants against traced concrete
// executions: the guard-assuming zone behind dead-branch and loop-bound
// reasoning, and the assignment-chain-only alias zone behind the
// key-determinism oracle. Closed entry zones are cached per statement path
// (the solution is fixed; only the concrete states vary per sample).
type zoneValidator struct {
	variants []*zoneVariant
}

type zoneVariant struct {
	name   string
	zs     *ZoneState
	closed map[string]*Zone
}

func newZoneValidator(p *lang.Program) *zoneValidator {
	cfg := BuildCFG(p)
	return &zoneValidator{variants: []*zoneVariant{
		{name: "zone", zs: SolveZoneOpts(cfg, ZoneOpts{AssumeGuards: true, Abs: SolveAbsInt(cfg)}),
			closed: map[string]*Zone{}},
		{name: "alias zone", zs: SolveZoneOpts(cfg, ZoneOpts{}),
			closed: map[string]*Zone{}},
	}}
}

func (v *zoneVariant) at(path string) *Zone {
	if z, ok := v.closed[path]; ok {
		return z
	}
	z := v.zs.At(path)
	v.closed[path] = z
	return z
}

// trace returns the statement-entry hook for one sampled run.
func (zv *zoneValidator) trace(inputs map[string]value.Value, rep *SoundnessReport, opts SoundnessOptions) lang.TraceFunc {
	return func(path string, locals map[string]value.Value) {
		for _, v := range zv.variants {
			validateZone(v, path, inputs, locals, rep, opts)
		}
	}
}

// validateZone checks one variant's closed entry zone at one executed
// statement: the statement must not be claimed unreachable, and every
// finite constraint v - w ≤ c must hold for the concrete values live there
// (the zero variable is 0, parameters come from the inputs, locals from the
// live interpreter state). Variables that are unassigned or non-integer at
// the point are skipped: constraints on them are not concretely observable.
func validateZone(v *zoneVariant, path string, inputs, locals map[string]value.Value,
	rep *SoundnessReport, opts SoundnessOptions) {
	if v.zs.Capped {
		return // a capped solution claims nothing
	}
	z := v.at(path)
	if z == nil || z.Bottom() {
		rep.addZoneViolation(path, fmt.Sprintf(
			"%s claims this statement unreachable, but a concrete execution reached it (inputs %s)",
			v.name, renderInputs(inputs)), opts)
		return
	}
	vals := make([]int64, z.n)
	def := make([]bool, z.n)
	def[0] = true // the zero variable
	for i := 1; i < z.n; i++ {
		var cv value.Value
		var ok bool
		if i <= v.zs.nParams {
			cv, ok = inputs[v.zs.names[i]]
		} else {
			cv, ok = locals[v.zs.names[i]]
		}
		if !ok {
			continue
		}
		if iv, isInt := cv.AsInt(); isInt {
			vals[i], def[i] = iv, true
		}
	}
	for i := 0; i < z.n; i++ {
		if !def[i] {
			continue
		}
		for j := 0; j < z.n; j++ {
			if i == j || !def[j] {
				continue
			}
			c := z.at(i, j)
			if c >= absInf {
				continue
			}
			if vals[i]-vals[j] > c {
				rep.addZoneViolation(path, fmt.Sprintf(
					"%s claims %s - %s ≤ %d, but a concrete execution has %d - %d here (inputs %s)",
					v.name, v.zs.names[i], v.zs.names[j], c, vals[i], vals[j], renderInputs(inputs)), opts)
			}
		}
	}
}

func (r *SoundnessReport) addZoneViolation(path, msg string, opts SoundnessOptions) {
	if len(r.ZoneViolations) < opts.MaxMismatches {
		r.ZoneViolations = append(r.ZoneViolations, ZoneViolation{Path: path, Msg: msg})
	}
}

// sameKeySet reports an error for every key on which the split and full
// instantiations disagree.
func sameKeySet(split, full []value.Key, op string, inputs map[string]value.Value,
	rep *SoundnessReport, opts SoundnessOptions) {
	s, f := keySet(split), keySet(full)
	for e, k := range s {
		if _, ok := f[e]; !ok {
			rep.addError(fmt.Sprintf("split instantiation predicts %s of %s that the full instantiation does not (inputs %s)",
				op, k, renderInputs(inputs)), opts)
		}
	}
	for e, k := range f {
		if _, ok := s[e]; !ok {
			rep.addError(fmt.Sprintf("split instantiation misses %s of %s that the full instantiation predicts (inputs %s)",
				op, k, renderInputs(inputs)), opts)
		}
	}
}

// diffKeySets compares predicted against observed keys as sets (program
// order and duplicates are not part of the soundness contract).
func diffKeySets(predicted, observed []value.Key, write bool,
	inputs map[string]value.Value, populated bool, rep *SoundnessReport, opts SoundnessOptions) {
	pred := keySet(predicted)
	obs := keySet(observed)
	for _, k := range predicted {
		if _, ok := obs[k.Encode()]; !ok {
			rep.addMismatch(Mismatch{Kind: Over, Key: k, Write: write, Inputs: inputs, Populated: populated}, opts)
			obs[k.Encode()] = k // report each key once per sample
		}
	}
	for _, k := range observed {
		if _, ok := pred[k.Encode()]; !ok {
			rep.addMismatch(Mismatch{Kind: Under, Key: k, Write: write, Inputs: inputs, Populated: populated}, opts)
			pred[k.Encode()] = k
		}
	}
}

func keySet(keys []value.Key) map[value.Encoded]value.Key {
	m := make(map[value.Encoded]value.Key, len(keys))
	for _, k := range keys {
		m[k.Encode()] = k
	}
	return m
}

func (r *SoundnessReport) addMismatch(m Mismatch, opts SoundnessOptions) {
	if m.Kind == Over {
		if len(r.Over) < opts.MaxMismatches {
			r.Over = append(r.Over, m)
		}
		return
	}
	if len(r.Under) < opts.MaxMismatches {
		r.Under = append(r.Under, m)
	}
}

func (r *SoundnessReport) addError(msg string, opts SoundnessOptions) {
	if len(r.Errors) < opts.MaxMismatches {
		r.Errors = append(r.Errors, msg)
	}
}

// --- input sampling ---

// boundarySamples returns deterministic assignments exercising domain
// boundaries: all parameters at their low bound, all at their high bound,
// and the two alternating low/high patterns.
func boundarySamples(p *lang.Program) []map[string]value.Value {
	patterns := [][2]bool{
		{false, false}, // all lo
		{true, true},   // all hi
		{false, true},  // alternate lo/hi
		{true, false},  // alternate hi/lo
	}
	var out []map[string]value.Value
	for _, pat := range patterns {
		inputs := map[string]value.Value{}
		// Scalars first: a list's effective length may reference an int
		// parameter (LenParam), which must be assigned before the list is
		// built.
		for i, prm := range p.Params {
			if prm.Kind != value.KindList {
				inputs[prm.Name] = boundaryValue(prm, pat[i%2])
			}
		}
		for i, prm := range p.Params {
			if prm.Kind == value.KindList {
				inputs[prm.Name] = boundaryList(prm, pat[i%2], effectiveLen(prm, inputs))
			}
		}
		out = append(out, inputs)
	}
	return out
}

// effectiveLen returns the list length a sample should use: the sampled
// value of the declared length parameter clamped to [0, MaxLen], or the full
// MaxLen capacity when the list declares no length parameter. Sampling the
// effective length (rather than always filling to capacity) exercises the
// short-list paths a loop bounded by the length parameter takes.
func effectiveLen(prm lang.Param, inputs map[string]value.Value) int {
	if prm.LenParam == "" {
		return prm.MaxLen
	}
	v, ok := inputs[prm.LenParam]
	if !ok {
		return prm.MaxLen
	}
	n, ok := v.AsInt()
	if !ok {
		return prm.MaxLen
	}
	if n < 0 {
		return 0
	}
	if n > int64(prm.MaxLen) {
		return prm.MaxLen
	}
	return int(n)
}

// boundaryList builds an n-element list of boundary element values.
func boundaryList(prm lang.Param, hi bool, n int) value.Value {
	elems := make([]value.Value, n)
	for i := range elems {
		if prm.Elem != nil {
			elems[i] = boundaryValue(*prm.Elem, hi)
		} else {
			elems[i] = value.Int(0)
		}
	}
	return value.List(elems...)
}

func boundaryValue(prm lang.Param, hi bool) value.Value {
	switch prm.Kind {
	case value.KindInt:
		if hi {
			return value.Int(prm.Hi)
		}
		return value.Int(prm.Lo)
	case value.KindString:
		if hi {
			return value.Str("zz")
		}
		return value.Str("")
	case value.KindBool:
		return value.Bool(hi)
	case value.KindList:
		// Nested element lists have no LenParam reference of their own; fill
		// to capacity. Top-level lists go through boundaryList instead.
		return boundaryList(prm, hi, prm.MaxLen)
	default:
		return value.Int(0)
	}
}

// randomSample draws one assignment uniformly from the declared domains.
// Lists are drawn after scalars so their effective length can follow the
// sampled value of their LenParam.
func randomSample(p *lang.Program, rng *rand.Rand) (map[string]value.Value, error) {
	inputs := map[string]value.Value{}
	for _, prm := range p.Params {
		if prm.Kind == value.KindList {
			continue
		}
		v, err := randomValue(prm, rng)
		if err != nil {
			return nil, fmt.Errorf("lint: soundness: %s: %w", p.Name, err)
		}
		inputs[prm.Name] = v
	}
	for _, prm := range p.Params {
		if prm.Kind != value.KindList {
			continue
		}
		v, err := randomList(prm, rng, effectiveLen(prm, inputs))
		if err != nil {
			return nil, fmt.Errorf("lint: soundness: %s: %w", p.Name, err)
		}
		inputs[prm.Name] = v
	}
	return inputs, nil
}

// randomList draws an n-element list of random element values.
func randomList(prm lang.Param, rng *rand.Rand, n int) (value.Value, error) {
	elems := make([]value.Value, n)
	for i := range elems {
		if prm.Elem != nil {
			v, err := randomValue(*prm.Elem, rng)
			if err != nil {
				return value.Value{}, err
			}
			elems[i] = v
		} else {
			elems[i] = value.Int(0)
		}
	}
	return value.List(elems...), nil
}

func randomValue(prm lang.Param, rng *rand.Rand) (value.Value, error) {
	switch prm.Kind {
	case value.KindInt:
		if prm.Lo > prm.Hi {
			return value.Value{}, fmt.Errorf("parameter %q has empty domain [%d..%d]", prm.Name, prm.Lo, prm.Hi)
		}
		return value.Int(prm.Lo + rng.Int63n(prm.Hi-prm.Lo+1)), nil
	case value.KindString:
		return value.Str(fmt.Sprintf("s%d", rng.Intn(4))), nil
	case value.KindBool:
		return value.Bool(rng.Intn(2) == 1), nil
	case value.KindList:
		// Nested element lists fill to capacity; top-level lists go through
		// randomList with their effective length.
		return randomList(prm, rng, prm.MaxLen)
	default:
		return value.Value{}, fmt.Errorf("parameter %q has unsupported kind %s", prm.Name, prm.Kind)
	}
}

// fieldNames collects every record field name the program mentions, sorted;
// the store populator uses them to synthesize plausible records.
func fieldNames(p *lang.Program) []string {
	seen := map[string]bool{}
	var expr func(e lang.Expr)
	expr = func(e lang.Expr) {
		switch x := e.(type) {
		case lang.Field:
			seen[x.Name] = true
			expr(x.E)
		case lang.Bin:
			expr(x.L)
			expr(x.R)
		case lang.Not:
			expr(x.E)
		case lang.Index:
			expr(x.E)
			expr(x.I)
		case lang.Rec:
			for _, f := range x.Fields {
				seen[f.Name] = true
				expr(f.E)
			}
		}
	}
	walkStmts(p.Body, "body", func(st lang.Stmt, _ string) {
		switch s := st.(type) {
		case lang.Assign:
			expr(s.E)
		case lang.SetField:
			seen[s.Field] = true
			expr(s.E)
		case lang.Get:
			for _, k := range s.Key {
				expr(k)
			}
		case lang.Put:
			for _, k := range s.Key {
				expr(k)
			}
			expr(s.Val)
		case lang.Del:
			for _, k := range s.Key {
				expr(k)
			}
		case lang.If:
			expr(s.Cond)
		case lang.For:
			expr(s.From)
			expr(s.To)
		case lang.Emit:
			expr(s.E)
		}
	})
	out := make([]string, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// --- storeKV: the in-memory store used as the oracle substrate ---

// storeKV is a flat KV implementing both the interpreter's store interface
// and the profile instantiator's pivot reader.
type storeKV struct {
	m map[value.Encoded]value.Value
}

func newStoreKV() *storeKV { return &storeKV{m: map[value.Encoded]value.Value{}} }

func (kv *storeKV) clone() *storeKV {
	c := newStoreKV()
	for k, v := range kv.m {
		c.m[k] = v
	}
	return c
}

// Get implements lang.KV.
func (kv *storeKV) Get(k value.Key) (value.Value, bool) {
	v, ok := kv.m[k.Encode()]
	return v, ok
}

// Put implements lang.KV.
func (kv *storeKV) Put(k value.Key, v value.Value) { kv.m[k.Encode()] = v }

// Delete implements lang.KV.
func (kv *storeKV) Delete(k value.Key) { delete(kv.m, k.Encode()) }

// ReadPivot implements profile.PivotReader.
func (kv *storeKV) ReadPivot(k value.Key, field string) (value.Value, bool) {
	rec, ok := kv.m[k.Encode()]
	if !ok {
		return value.Value{}, false
	}
	f, ok := rec.Field(field)
	if !ok {
		return value.Value{}, false
	}
	return f, true
}

package lint

import (
	"reflect"
	"testing"

	"prognosticator/internal/lang"
)

func mustParse(t *testing.T, src string) *lang.Program {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

func TestBuildCFGStraightLine(t *testing.T) {
	p := mustParse(t, `
transaction straight(x int[0..9]) {
    a = x + 1
    b = a * 2
    emit out = b
}`)
	cfg := BuildCFG(p)
	// entry, 3 statements, exit
	if len(cfg.Nodes) != 5 {
		t.Fatalf("got %d nodes, want 5", len(cfg.Nodes))
	}
	for i := 0; i < 4; i++ {
		if !reflect.DeepEqual(cfg.Nodes[i].Succs, []int{i + 1}) {
			t.Errorf("node %d succs = %v, want [%d]", i, cfg.Nodes[i].Succs, i+1)
		}
	}
	if got := cfg.Nodes[2].Defs; !reflect.DeepEqual(got, []string{"b"}) {
		t.Errorf("node 2 defs = %v, want [b]", got)
	}
	if got := cfg.Nodes[2].Uses; !reflect.DeepEqual(got, []string{"a"}) {
		t.Errorf("node 2 uses = %v, want [a]", got)
	}
	if cfg.Nodes[1].Path != "body[0]" || cfg.Nodes[2].Path != "body[1]" {
		t.Errorf("unexpected paths %q %q", cfg.Nodes[1].Path, cfg.Nodes[2].Path)
	}
	if !cfg.Nodes[1].Pos.IsValid() {
		t.Errorf("parsed statement has no position")
	}
}

func TestBuildCFGIfJoin(t *testing.T) {
	p := mustParse(t, `
transaction branches(x int[0..9]) {
    if x > 4 {
        a = 1
    } else {
        a = 2
    }
    emit out = a
}`)
	cfg := BuildCFG(p)
	// entry(0), if(1), then a=1(2), else a=2(3), emit(4), exit(5)
	ifNode := cfg.Nodes[1]
	if !reflect.DeepEqual(ifNode.Succs, []int{2, 3}) {
		t.Fatalf("if succs = %v, want [2 3]", ifNode.Succs)
	}
	emit := cfg.Nodes[4]
	if !reflect.DeepEqual(emit.Preds, []int{2, 3}) {
		t.Fatalf("join preds = %v, want [2 3]", emit.Preds)
	}
}

func TestBuildCFGEmptyArmNoDuplicateEdges(t *testing.T) {
	p := mustParse(t, `
transaction halfif(x int[0..9]) {
    a = 0
    if x > 4 {
    }
    emit out = a
}`)
	cfg := BuildCFG(p)
	// entry(0), a=0(1), if(2), emit(3), exit(4): both arms empty, so the If
	// frontier is {if} once, not twice.
	if !reflect.DeepEqual(cfg.Nodes[3].Preds, []int{2}) {
		t.Fatalf("emit preds = %v, want [2]", cfg.Nodes[3].Preds)
	}
}

func TestBuildCFGForBackEdge(t *testing.T) {
	p := mustParse(t, `
transaction looped(n int[1..5]) {
    s = 0
    for i = 0 .. n {
        s = s + i
    }
    emit out = s
}`)
	cfg := BuildCFG(p)
	// entry(0), s=0(1), for(2), body s=s+i(3), emit(4), exit(5)
	forNode := cfg.Nodes[2]
	if !reflect.DeepEqual(forNode.Succs, []int{3, 4}) {
		t.Fatalf("for succs = %v, want [3 4]", forNode.Succs)
	}
	body := cfg.Nodes[3]
	if !reflect.DeepEqual(body.Succs, []int{2}) {
		t.Fatalf("body succs = %v, want back edge [2]", body.Succs)
	}
	if !reflect.DeepEqual(forNode.Defs, []string{"i"}) {
		t.Fatalf("for defs = %v, want [i]", forNode.Defs)
	}
}

func TestReachingDefsBranch(t *testing.T) {
	p := mustParse(t, `
transaction partial(x int[0..9]) {
    if x > 4 {
        a = 1
    }
    b = a
    emit out = b
}`)
	cfg := BuildCFG(p)
	r := SolveReachingDefs(cfg)
	// Node layout: entry(0), if(1), a=1(2), b=a(3), emit(4), exit(5).
	if !r.MaybeUndefined(3, "a") {
		t.Errorf("a should be maybe-undefined at b = a")
	}
	if r.MaybeUndefined(4, "b") {
		t.Errorf("b is defined on every path to emit")
	}
	defs := r.DefsReaching(3, "a")
	if len(defs) != 2 || defs[0].Node != UndefNode || defs[1].Node != 2 {
		t.Errorf("defs reaching = %v, want [{-1 a} {2 a}]", defs)
	}
}

func TestReachingDefsBothArms(t *testing.T) {
	p := mustParse(t, `
transaction total(x int[0..9]) {
    if x > 4 {
        a = 1
    } else {
        a = 2
    }
    b = a
}`)
	cfg := BuildCFG(p)
	r := SolveReachingDefs(cfg)
	// b = a is node 4 (entry, if, then, else, assign, exit).
	if r.MaybeUndefined(4, "a") {
		t.Errorf("a is assigned in both arms; must not be maybe-undefined")
	}
}

func TestReachingDefsLoopCarried(t *testing.T) {
	// A variable first assigned inside a loop body may be undefined when the
	// loop runs zero iterations.
	p := mustParse(t, `
transaction carry(n int[0..5]) {
    for i = 0 .. n {
        last = i
    }
    emit out = last
}`)
	cfg := BuildCFG(p)
	r := SolveReachingDefs(cfg)
	// entry(0), for(1), body last=i(2), emit(3), exit(4)
	if !r.MaybeUndefined(3, "last") {
		t.Errorf("last escapes a possibly-zero-trip loop; should be maybe-undefined")
	}
	// Inside the body on the second iteration the loop-carried def reaches.
	defs := r.DefsReaching(2, "last")
	found := false
	for _, d := range defs {
		if d.Node == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("loop-carried def should reach the body via the back edge; got %v", defs)
	}
}

package lint

import (
	"testing"

	"prognosticator/internal/lang"
)

func envAt(t *testing.T, a *AbsState, path string) AbsEnv {
	t.Helper()
	env, ok := a.EnvAt(path)
	if !ok {
		t.Fatalf("no CFG node at path %q", path)
	}
	return env
}

func wantRange(t *testing.T, v AbsVal, lo, hi int64) {
	t.Helper()
	if v.Kind != AbsRange || v.Lo != lo || v.Hi != hi {
		t.Errorf("got %s, want [%d,%d]", v, lo, hi)
	}
}

func TestAbsIntStraightLine(t *testing.T) {
	p := mustParse(t, `
transaction straight(x int[0..9]) {
    a = x + 1
    b = a * 2
    c = 7
    d = c - b
    emit out = d
}`)
	a := SolveAbsInt(BuildCFG(p))
	env := envAt(t, a, "body[4]")
	wantRange(t, env.Lookup("a"), 1, 10)
	wantRange(t, env.Lookup("b"), 2, 20)
	wantRange(t, env.Lookup("c"), 7, 7)
	wantRange(t, env.Lookup("d"), -13, 5)
	if v, ok := env.Lookup("c").Singleton(); !ok || v.MustInt() != 7 {
		t.Errorf("c singleton = %v, %v; want 7", v, ok)
	}
}

func TestAbsIntJoinAtMerge(t *testing.T) {
	p := mustParse(t, `
transaction branchy(x int[0..9], f bool) {
    if f {
        a = 1
    } else {
        a = x + 10
    }
    emit out = a
}`)
	a := SolveAbsInt(BuildCFG(p))
	// After the merge: hull of {1} and [10,19].
	wantRange(t, envAt(t, a, "body[1]").Lookup("a"), 1, 19)
}

func TestAbsIntGetAndFieldsAreTop(t *testing.T) {
	p := mustParse(t, `
transaction opaque(x int[0..9]) {
    r = get T[x]
    v = r.n
    emit out = v
}`)
	a := SolveAbsInt(BuildCFG(p))
	env := envAt(t, a, "body[2]")
	if env.Lookup("r").Kind != AbsTop || env.Lookup("v").Kind != AbsTop {
		t.Errorf("store-derived values should be ⊤, got r=%s v=%s", env.Lookup("r"), env.Lookup("v"))
	}
}

func TestAbsIntInductionVariable(t *testing.T) {
	p := mustParse(t, `
transaction loopy(n int[3..8]) {
    for i = 2 .. n {
        u = i
    }
    emit out = 0
}`)
	a := SolveAbsInt(BuildCFG(p))
	// In the body: i ∈ [2, n-1] ⊆ [2, 7].
	wantRange(t, envAt(t, a, "body[0].body[0]").Lookup("i"), 2, 7)
}

func TestAbsIntEmptyLoopInterval(t *testing.T) {
	p := mustParse(t, `
transaction never(a int[0..3]) {
    lim = a
    for i = 5 .. lim {
        u = i
    }
    emit out = 0
}`)
	a := SolveAbsInt(BuildCFG(p))
	env := envAt(t, a, "body[1]")
	wantRange(t, env.Lookup("lim"), 0, 3)
	iv := forVarInterval(p.Body[1].(lang.For), p, env)
	if iv.Kind != AbsBot {
		t.Errorf("empty trip interval should give ⊥ induction variable, got %s", iv)
	}
}

func TestAbsIntWideningTerminatesOnAccumulator(t *testing.T) {
	p := mustParse(t, `
transaction accum(n int[0..100]) {
    s = 0
    for i = 0 .. n {
        s = s + 1
    }
    emit out = s
}`)
	a := SolveAbsInt(BuildCFG(p))
	if a.Capped {
		t.Fatalf("iteration cap fired on a 4-statement loop (Iterations=%d)", a.Iterations)
	}
	// The accumulator is widened along the back edge: its lower bound is
	// stable at 0, the upper bound is not and goes to the sentinel.
	s := envAt(t, a, "body[2]").Lookup("s")
	if s.Kind != AbsRange || s.Lo != 0 || s.Bounded() {
		t.Errorf("accumulator after widening = %s, want [0,+∞]", s)
	}
}

func TestAbsIntComparisonFolding(t *testing.T) {
	p := mustParse(t, `
transaction cmp(x int[0..9]) {
    y = x + 1
    t = y < 20
    f = y > 100
    u = y == 3
    emit out = t
}`)
	a := SolveAbsInt(BuildCFG(p))
	env := envAt(t, a, "body[4]")
	if v, ok := env.Lookup("t").Singleton(); !ok || !v.MustBool() {
		t.Errorf("t = %s, want const true", env.Lookup("t"))
	}
	if v, ok := env.Lookup("f").Singleton(); !ok || v.MustBool() {
		t.Errorf("f = %s, want const false", env.Lookup("f"))
	}
	if env.Lookup("u").Kind != AbsTop {
		t.Errorf("u = %s, want ⊤ (undecidable)", env.Lookup("u"))
	}
}

func TestAbsIntListElementDomain(t *testing.T) {
	p := &lang.Program{
		Name: "lists",
		Params: []lang.Param{
			lang.IntParam("k", 0, 4),
			lang.ListParam("ids", lang.IntParam("", 1, 50), 8, ""),
		},
		Body: []lang.Stmt{
			lang.Set("id", lang.Idx(lang.P("ids"), lang.P("k"))),
			lang.EmitS("out", lang.L("id")),
		},
	}
	a := SolveAbsInt(BuildCFG(p))
	wantRange(t, envAt(t, a, "body[1]").Lookup("id"), 1, 50)
}

// buildFuzzProgram decodes an arbitrary byte stream into a syntactically
// valid program: a deterministic, always-terminating mapping so the fuzzer
// explores CFG shapes (nesting, sequencing, loop bounds) rather than parser
// behavior.
func buildFuzzProgram(data []byte) *lang.Program {
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	locals := []string{"v0", "v1", "v2", "v3"}
	var genExpr func(depth int) lang.Expr
	genExpr = func(depth int) lang.Expr {
		b := next()
		if depth >= 3 {
			return lang.C(int64(b%19) - 9)
		}
		switch b % 5 {
		case 0:
			return lang.C(int64(b%19) - 9)
		case 1:
			return lang.P([]string{"a", "b", "n"}[b%3])
		case 2:
			return lang.L(locals[b%4])
		case 3:
			ops := []lang.Op{lang.OpAdd, lang.OpSub, lang.OpMul, lang.OpLt, lang.OpGe, lang.OpEq}
			return lang.Bin{Op: ops[int(next())%len(ops)], L: genExpr(depth + 1), R: genExpr(depth + 1)}
		default:
			return lang.Neg(genExpr(depth + 1))
		}
	}
	var genBlock func(depth, maxLen int) []lang.Stmt
	genBlock = func(depth, maxLen int) []lang.Stmt {
		var body []lang.Stmt
		for len(body) < maxLen {
			b := next()
			if b%7 == 6 {
				break
			}
			switch b % 7 {
			case 0, 1:
				body = append(body, lang.Set(locals[b%4], genExpr(0)))
			case 2:
				body = append(body, lang.GetS(locals[b%4], "T", genExpr(0)))
			case 3:
				body = append(body, lang.PutS("T", lang.Key(genExpr(0)), genExpr(0)))
			case 4:
				if depth < 3 {
					body = append(body, lang.If{
						Cond: genExpr(0),
						Then: genBlock(depth+1, 3),
						Else: genBlock(depth+1, 3),
					})
				}
			default:
				if depth < 3 {
					body = append(body, lang.For{
						Var:  "i" + string('0'+rune(depth)),
						From: genExpr(0),
						To:   genExpr(0),
						Body: genBlock(depth+1, 3),
					})
				}
			}
		}
		return body
	}
	return &lang.Program{
		Name: "fuzz",
		Params: []lang.Param{
			lang.IntParam("a", 0, 9),
			lang.IntParam("b", -5, 5),
			lang.IntParam("n", 0, 100),
		},
		Body: genBlock(0, 6),
	}
}

// FuzzAbsIntTermination is the widening termination proof: on arbitrary
// program shapes the fixed point must converge naturally — within the
// analytic iteration bound, never via the hard-cap fallback.
func FuzzAbsIntTermination(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{5, 3, 0, 5, 3, 0, 5, 3, 0, 5, 3, 0, 1, 1, 1, 1})
	f.Add([]byte{4, 3, 1, 5, 0, 2, 4, 3, 1, 5, 0, 2, 4, 3, 1, 5, 0, 2, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := buildFuzzProgram(data)
		cfg := BuildCFG(p)
		a := SolveAbsInt(cfg)
		if a.Capped {
			t.Fatalf("iteration cap fired: widening failed to converge in %d iterations on %d nodes", a.Iterations, len(cfg.Nodes))
		}
		if a.Iterations > a.maxIterations() {
			t.Fatalf("Iterations=%d exceeds bound %d", a.Iterations, a.maxIterations())
		}
		// The solution must cover the entry environment everywhere reachable:
		// spot-check that no parameter ever reads ⊥ at a reachable node.
		for _, n := range cfg.Nodes {
			env, ok := a.EnvAt(n.Path)
			if !ok || env == nil {
				continue
			}
			for _, prm := range p.Params {
				if env.get(prm.Name).Kind == AbsBot {
					t.Fatalf("parameter %q is ⊥ at reachable node %s", prm.Name, n.Path)
				}
			}
		}
	})
}

// Package lint implements static analysis over the stored-procedure IR
// (internal/lang): a small dataflow framework (CFG construction, def/use,
// reaching definitions), a set of lint passes producing positioned findings,
// and a profile-soundness checker that cross-validates symbolic-execution
// profiles against the concrete interpreter.
//
// The paper's runtime trusts the offline analysis completely: an unsound
// profile silently breaks determinism, and a procedure the SE engine cannot
// handle fails at registration time with no actionable diagnostics. The lint
// passes catch both failure classes before a procedure reaches the
// sequencer. See cmd/prognolint for the command-line front end.
package lint

import (
	"encoding/json"
	"fmt"
	"sort"

	"prognosticator/internal/lang"
	"prognosticator/internal/taint"
)

// Severity grades a finding.
type Severity int

// Severities. SevError marks findings that break determinism or analysis
// (strict registration rejects them); SevWarning marks likely mistakes;
// SevInfo marks structural facts worth knowing (e.g. reliance on pivot
// reads) that are not defects.
const (
	SevInfo Severity = iota + 1
	SevWarning
	SevError
)

// String returns the lowercase severity name.
func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	default:
		return "info"
	}
}

// MarshalJSON renders the severity name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON parses a severity name.
func (s *Severity) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	sev, err := ParseSeverity(name)
	if err != nil {
		return err
	}
	*s = sev
	return nil
}

// ParseSeverity maps a severity name to its value.
func ParseSeverity(name string) (Severity, error) {
	switch name {
	case "error":
		return SevError, nil
	case "warning":
		return SevWarning, nil
	case "info":
		return SevInfo, nil
	default:
		return 0, fmt.Errorf("lint: unknown severity %q", name)
	}
}

// Finding is one positioned diagnostic.
type Finding struct {
	// Prog is the transaction name.
	Prog string `json:"prog"`
	// Pass names the lint pass that produced the finding.
	Pass string `json:"pass"`
	// Pos is the source position of the offending statement; zero for
	// programs built with the Go constructors (no source) and for
	// program-level findings (parameters, profiles).
	Pos lang.Pos `json:"pos"`
	// Path is the structural path of the statement (e.g. "body[2].then[0]"),
	// or a symbolic location like "params" or "profile" for findings not
	// anchored to a statement. It is stable across formatting changes and is
	// the position of record for builder-constructed programs.
	Path     string   `json:"path"`
	Severity Severity `json:"severity"`
	Message  string   `json:"message"`
}

// String renders "prog:line:col: severity: [pass] message", falling back to
// the structural path when no source position is known.
func (f Finding) String() string {
	loc := f.Pos.String()
	if !f.Pos.IsValid() {
		loc = f.Path
	}
	return fmt.Sprintf("%s:%s: %s: [%s] %s", f.Prog, loc, f.Severity, f.Pass, f.Message)
}

// Pass is one lint analysis. Passes are stateless; Run returns the findings
// for a single program.
type Pass interface {
	Name() string
	Run(pc *ProgContext) []Finding
}

// ProgContext carries everything passes may need, with expensive artifacts
// (CFG, reaching definitions, taint) computed once and shared.
type ProgContext struct {
	Prog   *lang.Program
	Schema *lang.Schema // may be nil: schema-dependent checks are skipped

	cfg       *CFG
	reach     *ReachingDefs
	taint     *taint.Result
	abs       *AbsState
	zone      *ZoneState
	aliasZone *ZoneState
	keydet    *taint.KeyDet
}

// CFG returns the program's control-flow graph, building it on first use.
func (pc *ProgContext) CFG() *CFG {
	if pc.cfg == nil {
		pc.cfg = BuildCFG(pc.Prog)
	}
	return pc.cfg
}

// Reach returns the reaching-definitions solution, computing it on first use.
func (pc *ProgContext) Reach() *ReachingDefs {
	if pc.reach == nil {
		pc.reach = SolveReachingDefs(pc.CFG())
	}
	return pc.reach
}

// Taint returns the relevant-variable analysis, computing it on first use.
func (pc *ProgContext) Taint() *taint.Result {
	if pc.taint == nil {
		pc.taint = taint.Analyze(pc.Prog)
	}
	return pc.taint
}

// Abs returns the interval abstract interpretation, computing it on first
// use.
func (pc *ProgContext) Abs() *AbsState {
	if pc.abs == nil {
		pc.abs = SolveAbsInt(pc.CFG())
	}
	return pc.abs
}

// Zone returns the relational zone (difference-bound matrix) analysis with
// guard assumptions and interval tightening, computing it on first use. It
// is the state dead-branch and loop-bound reasoning consult.
func (pc *ProgContext) Zone() *ZoneState {
	if pc.zone == nil {
		pc.zone = SolveZoneOpts(pc.CFG(), ZoneOpts{AssumeGuards: true, Abs: pc.Abs()})
	}
	return pc.zone
}

// AliasZone returns the assignment-chain-only zone analysis (no guard
// assumptions, no interval evaluation), computing it on first use. Its
// equalities hold by copy propagation alone, which is what makes it a safe
// taint.EqualityOracle: wherever it proves a local equal to an input-derived
// value, the symbolic executor's key term is input-only too.
func (pc *ProgContext) AliasZone() *ZoneState {
	if pc.aliasZone == nil {
		pc.aliasZone = SolveZoneOpts(pc.CFG(), ZoneOpts{})
	}
	return pc.aliasZone
}

// KeyDet returns the key-determinism classification, computing it on first
// use. The alias zone serves as the equality oracle, upgrading key parts
// that provably equal an input-derived value.
func (pc *ProgContext) KeyDet() *taint.KeyDet {
	if pc.keydet == nil {
		pc.keydet = taint.KeyDeterminismOracle(pc.Prog, pc.AliasZone())
	}
	return pc.keydet
}

// AllPasses returns the default pass pipeline, in execution order.
func AllPasses() []Pass {
	return []Pass{
		paramDomainPass{},
		schemaPass{},
		useBeforeAssignPass{},
		loopBoundPass{},
		pivotKeyPass{},
		keyDeterminismPass{},
		deadBranchPass{},
	}
}

// passDocs explains each pass for `prognolint -explain` and for SARIF rule
// metadata. Keys include "profile-soundness", which is produced by the
// soundness checker rather than a Pass.
var passDocs = map[string]string{
	"param-domain": "Checks parameter declarations: integer domains must be non-empty and\n" +
		"small enough to enumerate, list parameters need element domains, and\n" +
		"every declared parameter must be used. The symbolic executor and the\n" +
		"solver both reason over these domains; a bad domain silently weakens\n" +
		"every downstream proof.",
	"schema": "Checks every GET/PUT/DEL against the table schema: unknown tables and\n" +
		"key-arity mismatches fail at runtime inside the engine, where the error\n" +
		"surfaces as an aborted batch rather than a positioned diagnostic.",
	"use-before-assign": "Reaching-definitions check that every local read is preceded by an\n" +
		"assignment on every path. The concrete interpreter fails at runtime on\n" +
		"an unassigned local; the symbolic executor rejects the procedure.",
	"loop-bound": "Bounds loop trip counts against the declared input domains, evaluating\n" +
		"bounds with the interval abstract interpreter and tightening them with\n" +
		"the relational zone domain (difference-bound constraints survive joins,\n" +
		"so a locally-computed limit clamped against a constant stays bounded).\n" +
		"Loops the symbolic executor cannot bound exhaust its unroll budget and\n" +
		"fail registration; empty loops are reported as dead code.",
	"pivot-key": "Reports GET results that influence the identity of later accesses: the\n" +
		"transaction is dependent (DT) and its preparation needs pivot reads.\n" +
		"When the key-determinism analysis proves the traversal pivot-free, the\n" +
		"finding is downgraded: the direct part of the key-set is predicted\n" +
		"client-side and only pivot-dependent accesses touch the store during\n" +
		"preparation.",
	"key-determinism": "Per-access proof of key determinism: each GET/PUT/DEL key part is\n" +
		"classified direct (derivable from transaction inputs alone) or\n" +
		"pivot-dependent (flows from a prior GET result), with the pivot-derived\n" +
		"variables as witness. The zone domain's assignment-chain equalities act\n" +
		"as an oracle: a key part provably equal to an input-derived value is\n" +
		"upgraded to direct, and branches that only write fields which never\n" +
		"flow back into keys are discharged as traversal pivots. Direct accesses\n" +
		"of a pivot-free-traversal DT are instantiated client-side without store\n" +
		"reads (the paper's §III-C optimization).",
	"dead-branch": "Proves branches dead over the declared input domains, by two\n" +
		"complementary means: substituting locals by their abstract\n" +
		"interval/constant values and discharging path constraints with the\n" +
		"solver, and asking the relational zone domain whether assuming the\n" +
		"condition yields an infeasible (negative-cycle) state — which decides\n" +
		"guards comparing two locals, e.g. `if x < y` after `y = x - 1`. Dead\n" +
		"branches inflate profiles with unreachable subtrees and usually\n" +
		"indicate a logic error.",
	"profile-soundness": "Differential check of the symbolic-execution profile against the\n" +
		"concrete interpreter on boundary and random inputs: a profile that\n" +
		"misses a key breaks determinism (error); one that over-predicts only\n" +
		"costs spurious locks (warning).",
	"zone-soundness": "Differential check of the relational zone abstract domain against\n" +
		"concrete executions: every sampled run is traced statement by\n" +
		"statement, and each closed difference-bound constraint v - w ≤ c at a\n" +
		"program point must hold for the concrete values live there (both the\n" +
		"guard-assuming zone and the assignment-chain-only alias zone are\n" +
		"validated). A violation means the domain over-claimed and every\n" +
		"zone-backed verdict is suspect (error).",
}

// Explain returns the documentation paragraph for a pass name.
func Explain(pass string) (string, bool) {
	doc, ok := passDocs[pass]
	return doc, ok
}

// PassNames returns every documented pass name, sorted.
func PassNames() []string {
	names := make([]string, 0, len(passDocs))
	for n := range passDocs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Linter runs a pass pipeline over programs.
type Linter struct {
	// Schema is the data model programs are checked against; nil skips
	// schema-dependent checks.
	Schema *lang.Schema
	// Passes is the pipeline; nil means AllPasses.
	Passes []Pass
}

// New returns a Linter with the default pass pipeline.
func New(schema *lang.Schema) *Linter { return &Linter{Schema: schema} }

// Run lints one program, returning findings in deterministic order
// (by position, then structural path, then pass, then message).
func (l *Linter) Run(p *lang.Program) []Finding {
	passes := l.Passes
	if passes == nil {
		passes = AllPasses()
	}
	pc := &ProgContext{Prog: p, Schema: l.Schema}
	var out []Finding
	for _, pass := range passes {
		out = append(out, pass.Run(pc)...)
	}
	SortFindings(out)
	return out
}

// RunAll lints several programs and concatenates their findings (each
// program's findings sorted, programs in argument order).
func (l *Linter) RunAll(progs ...*lang.Program) []Finding {
	var out []Finding
	for _, p := range progs {
		out = append(out, l.Run(p)...)
	}
	return out
}

// SortFindings orders findings deterministically.
func SortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Message < b.Message
	})
}

// MaxSeverity returns the highest severity present, or zero for no findings.
func MaxSeverity(fs []Finding) Severity {
	var max Severity
	for _, f := range fs {
		if f.Severity > max {
			max = f.Severity
		}
	}
	return max
}

// InferSchema derives a schema from the table accesses of the given
// programs: each referenced table with the key arity of its first access.
// Conflicting arities surface later as key-arity findings against the
// inferred spec. It lets prognolint check source files that carry no schema
// declaration.
func InferSchema(progs ...*lang.Program) *lang.Schema {
	arity := map[string]int{}
	var order []string
	record := func(table string, key []lang.Expr) {
		if _, ok := arity[table]; !ok {
			arity[table] = len(key)
			order = append(order, table)
		}
	}
	var walk func(body []lang.Stmt)
	walk = func(body []lang.Stmt) {
		for _, st := range body {
			switch s := st.(type) {
			case lang.Get:
				record(s.Table, s.Key)
			case lang.Put:
				record(s.Table, s.Key)
			case lang.Del:
				record(s.Table, s.Key)
			case lang.If:
				walk(s.Then)
				walk(s.Else)
			case lang.For:
				walk(s.Body)
			}
		}
	}
	for _, p := range progs {
		walk(p.Body)
	}
	specs := make([]lang.TableSpec, 0, len(order))
	for _, t := range order {
		specs = append(specs, lang.TableSpec{Name: t, KeyArity: arity[t]})
	}
	return lang.NewSchema(specs...)
}

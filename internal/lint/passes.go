package lint

import (
	"fmt"

	"prognosticator/internal/lang"
	"prognosticator/internal/solver"
	"prognosticator/internal/sym"
	"prognosticator/internal/symexec"
	"prognosticator/internal/value"
)

// walkStmts visits every statement with its structural path, recursing into
// If arms and For bodies.
func walkStmts(body []lang.Stmt, label string, fn func(st lang.Stmt, path string)) {
	for i, st := range body {
		path := fmt.Sprintf("%s[%d]", label, i)
		fn(st, path)
		switch s := st.(type) {
		case lang.If:
			walkStmts(s.Then, path+".then", fn)
			walkStmts(s.Else, path+".else", fn)
		case lang.For:
			walkStmts(s.Body, path+".body", fn)
		}
	}
}

// --- schema: unknown tables and key-arity mismatches, positioned ---

type schemaPass struct{}

func (schemaPass) Name() string { return "schema" }

func (schemaPass) Run(pc *ProgContext) []Finding {
	if pc.Schema == nil {
		return nil
	}
	var out []Finding
	check := func(table string, key []lang.Expr, st lang.Stmt, path string) {
		spec, ok := pc.Schema.Table(table)
		if !ok {
			out = append(out, Finding{
				Prog: pc.Prog.Name, Pass: "schema", Pos: st.StmtPos(), Path: path,
				Severity: SevError,
				Message:  fmt.Sprintf("unknown table %q", table),
			})
			return
		}
		if len(key) != spec.KeyArity {
			out = append(out, Finding{
				Prog: pc.Prog.Name, Pass: "schema", Pos: st.StmtPos(), Path: path,
				Severity: SevError,
				Message: fmt.Sprintf("table %q expects %d key parts, got %d",
					table, spec.KeyArity, len(key)),
			})
		}
	}
	walkStmts(pc.Prog.Body, "body", func(st lang.Stmt, path string) {
		switch s := st.(type) {
		case lang.Get:
			check(s.Table, s.Key, st, path)
		case lang.Put:
			check(s.Table, s.Key, st, path)
		case lang.Del:
			check(s.Table, s.Key, st, path)
		}
	})
	return out
}

// --- use-before-assign: dataflow over the CFG ---

type useBeforeAssignPass struct{}

func (useBeforeAssignPass) Name() string { return "use-before-assign" }

func (useBeforeAssignPass) Run(pc *ProgContext) []Finding {
	cfg := pc.CFG()
	reach := pc.Reach()
	var out []Finding
	for _, n := range cfg.Nodes {
		if n.Stmt == nil {
			continue
		}
		for _, v := range n.Uses {
			if reach.MaybeUndefined(n.ID, v) {
				out = append(out, Finding{
					Prog: pc.Prog.Name, Pass: "use-before-assign", Pos: n.Pos, Path: n.Path,
					Severity: SevError,
					Message:  fmt.Sprintf("local %q may be used before assignment (not defined on every path reaching here)", v),
				})
			}
		}
	}
	return out
}

// --- loop-bound: unrolling must be bounded by the declared input domains ---

type loopBoundPass struct{}

func (loopBoundPass) Name() string { return "loop-bound" }

func (loopBoundPass) Run(pc *ProgContext) []Finding {
	var out []Finding
	walkStmts(pc.Prog.Body, "body", func(st lang.Stmt, path string) {
		s, ok := st.(lang.For)
		if !ok {
			return
		}
		// Bounds are evaluated on the abstract-domain API: the interval
		// environment handles constants, declared parameter domains, and
		// locals through assignments and joins; the relational zone tightens
		// the result with difference-bound facts that survive joins (e.g. a
		// limit clamped against a constant on one path only).
		evalAt := func(e lang.Expr) AbsVal {
			env, found := pc.Abs().EnvAt(path)
			if !found || env == nil {
				env = AbsEnv{}
			}
			v := absEval(e, pc.Prog, env)
			if zv, found := pc.Zone().ExprBoundsAt(path, e); found && zv.Bounded() {
				if !v.Bounded() {
					v = zv
				} else {
					v = absRange(max64(v.Lo, zv.Lo), min64(v.Hi, zv.Hi))
				}
			}
			return v
		}
		fromV, toV := evalAt(s.From), evalAt(s.To)
		fromLo, fromOK := fromV.Lo, fromV.Bounded()
		toHi, toOK := toV.Hi, toV.Bounded()
		if !fromOK || !toOK {
			out = append(out, Finding{
				Prog: pc.Prog.Name, Pass: "loop-bound", Pos: s.Pos, Path: path,
				Severity: SevError,
				Message: fmt.Sprintf("bounds of loop %q are not derivable from declared input domains; "+
					"the symbolic executor cannot bound its unrolling (symexec.ErrBudget risk)", s.Var),
			})
			return
		}
		// A lower bound the abstract domains prove to be a single constant on
		// every path is concrete to the symbolic executor too.
		fromC, single := fromV.Singleton()
		isConst := single && fromC.Kind() == value.KindInt
		if !isConst && pc.Taint().BlockTouchesKeys(s.Body) {
			out = append(out, Finding{
				Prog: pc.Prog.Name, Pass: "loop-bound", Pos: s.Pos, Path: path,
				Severity: SevError,
				Message: fmt.Sprintf("loop %q touches keys but its lower bound is not a constant; "+
					"the symbolic executor requires a concrete lower bound", s.Var),
			})
		}
		if maxTrip := toHi - fromLo; maxTrip > int64(symexec.DefaultMaxLoopUnroll) {
			out = append(out, Finding{
				Prog: pc.Prog.Name, Pass: "loop-bound", Pos: s.Pos, Path: path,
				Severity: SevError,
				Message: fmt.Sprintf("loop %q may run up to %d iterations, exceeding the symbolic executor's "+
					"unroll budget (%d): symexec.ErrBudget risk", s.Var, maxTrip, symexec.DefaultMaxLoopUnroll),
			})
		} else if toHi <= fromLo {
			out = append(out, Finding{
				Prog: pc.Prog.Name, Pass: "loop-bound", Pos: s.Pos, Path: path,
				Severity: SevWarning,
				Message:  fmt.Sprintf("loop %q never executes: upper bound ≤ lower bound over all declared inputs", s.Var),
			})
		}
	})
	return out
}

// --- pivot-key: GET results flowing into key identity (profile fallback) ---

type pivotKeyPass struct{}

func (pivotKeyPass) Name() string { return "pivot-key" }

func (pivotKeyPass) Run(pc *ProgContext) []Finding {
	tr := pc.Taint()
	kd := pc.KeyDet()
	var out []Finding
	walkStmts(pc.Prog.Body, "body", func(st lang.Stmt, path string) {
		s, ok := st.(lang.Get)
		if !ok {
			return
		}
		if !tr.Relevant(s.Dst) {
			return
		}
		msg := fmt.Sprintf("GET result %q influences the identity of later accesses: the key-set depends "+
			"on store state (dependent transaction; preparation falls back to pivot reads)", s.Dst)
		if kd.PivotFreeTraversal() {
			// Key-determinism proof: no key-relevant branch or loop bound
			// depends on store state, so the profile tree is walked from the
			// inputs alone and every direct access skips its pivot reads.
			msg = fmt.Sprintf("GET result %q influences the identity of later accesses (dependent transaction), "+
				"but the traversal is pivot-free: the direct part of the key-set is predicted client-side "+
				"(%d of %d accesses direct)", s.Dst, kd.DirectCount(), len(kd.Accesses))
		}
		out = append(out, Finding{
			Prog: pc.Prog.Name, Pass: "pivot-key", Pos: s.Pos, Path: path,
			Severity: SevInfo,
			Message:  msg,
		})
	})
	return out
}

// --- dead-branch: conditions decidable over the declared input domains ---

type deadBranchPass struct{}

func (deadBranchPass) Name() string { return "dead-branch" }

func (deadBranchPass) Run(pc *ProgContext) []Finding {
	var out []Finding
	deadBranchWalk(pc, pc.Prog.Body, "body", nil, &out)
	return out
}

// deadBranchWalk threads the path constraint through nested conditionals so
// that e.g. the inner branch of `if x < 5 { if x > 7 {...} }` is reported.
// Conditions over locals are handled two ways, each sound on its own:
// substituting each local with its abstract interval/constant value at the
// statement's CFG node and asking the solver (the interval relaxation
// over-approximates every reachable value, so Unsat verdicts carry over),
// and assuming the condition in the relational zone state, where guards
// comparing two locals — invisible to the interval relaxation — become
// negative-cycle infeasibilities.
func deadBranchWalk(pc *ProgContext, body []lang.Stmt, label string, cons []sym.Term, out *[]Finding) {
	prog := pc.Prog
	for i, st := range body {
		path := fmt.Sprintf("%s[%d]", label, i)
		switch s := st.(type) {
		case lang.If:
			thenDead := pc.Zone().CondDead(path, s.Cond, false)
			elseDead := pc.Zone().CondDead(path, s.Cond, true)
			report := func(thenDead, elseDead bool) {
				if thenDead {
					*out = append(*out, Finding{
						Prog: prog.Name, Pass: "dead-branch", Pos: s.Pos, Path: path,
						Severity: SevWarning,
						Message:  "condition is always false over the declared input domains: then-branch is dead",
					})
				}
				if elseDead {
					msg := "condition is always true over the declared input domains"
					if len(s.Else) > 0 {
						msg += ": else-branch is dead"
					}
					*out = append(*out, Finding{
						Prog: prog.Name, Pass: "dead-branch", Pos: s.Pos, Path: path,
						Severity: SevWarning,
						Message:  msg,
					})
				}
			}
			cond, ok := exprTermEnv(s.Cond, pc, path)
			if !ok {
				// Condition depends on store state or unbounded locals: the
				// solver cannot see it, but the zone verdicts still apply.
				report(thenDead, elseDead)
				deadBranchWalk(pc, s.Then, path+".then", cons, out)
				deadBranchWalk(pc, s.Else, path+".else", cons, out)
				continue
			}
			cond = sym.Fold(cond)
			neg := sym.Negate(cond)
			thenCons := append(append([]sym.Term{}, cons...), cond)
			elseCons := append(append([]sym.Term{}, cons...), neg)
			report(thenDead || solver.Check(thenCons) == solver.Unsat,
				elseDead || solver.Check(elseCons) == solver.Unsat)
			deadBranchWalk(pc, s.Then, path+".then", thenCons, out)
			deadBranchWalk(pc, s.Else, path+".else", elseCons, out)
		case lang.For:
			// The induction variable gets its interval from the abstract
			// environment inside the body, so conditions on it are decidable
			// when the bounds are. Empty-interval loops are the loop-bound
			// pass's report ("never executes"), not duplicated here.
			deadBranchWalk(pc, s.Body, path+".body", cons, out)
		}
	}
}

// exprTerm converts a side-effect-free expression over constants and scalar
// parameters to a symbolic term for the solver. ok is false when the
// expression touches locals, store values, lists or records.
func exprTerm(e lang.Expr, prog *lang.Program) (sym.Term, bool) {
	switch x := e.(type) {
	case lang.Const:
		return sym.Const{V: x.V}, true
	case lang.ParamRef:
		prm, ok := prog.Param(x.Name)
		if !ok {
			return nil, false
		}
		switch prm.Kind {
		case value.KindInt, value.KindString, value.KindBool:
			return sym.NewInput(prm.Name, prm.Kind, prm.Lo, prm.Hi), true
		default:
			return nil, false
		}
	case lang.Bin:
		l, lok := exprTerm(x.L, prog)
		r, rok := exprTerm(x.R, prog)
		if !lok || !rok {
			return nil, false
		}
		return sym.Bin{Op: x.Op, L: l, R: r}, true
	case lang.Not:
		t, ok := exprTerm(x.E, prog)
		if !ok {
			return nil, false
		}
		return sym.Not{T: t}, true
	default:
		return nil, false
	}
}

// exprTermEnv extends exprTerm with locals whose abstract value at the
// statement's CFG node is a single constant or a bounded interval. Interval
// locals become fresh solver variables named "local@nodeID": distinct
// statements never share a variable (a local may be reassigned between
// them), while multiple mentions within one condition do (the local has one
// value per evaluation). The interval relaxation only ever widens the
// feasible set, so Unsat verdicts remain sound.
func exprTermEnv(e lang.Expr, pc *ProgContext, path string) (sym.Term, bool) {
	env, okEnv := pc.Abs().EnvAt(path)
	id, okNode := pc.Abs().NodeAt(path)
	var conv func(e lang.Expr) (sym.Term, bool)
	conv = func(e lang.Expr) (sym.Term, bool) {
		switch x := e.(type) {
		case lang.LocalRef:
			if !okEnv || !okNode || env == nil {
				return nil, false
			}
			v := env.Lookup(x.Name)
			if c, single := v.Singleton(); single {
				return sym.Const{V: c}, true
			}
			if v.Bounded() {
				return sym.NewInput(fmt.Sprintf("%s@%d", x.Name, id), value.KindInt, v.Lo, v.Hi), true
			}
			return nil, false
		case lang.Bin:
			l, lok := conv(x.L)
			r, rok := conv(x.R)
			if !lok || !rok {
				return nil, false
			}
			return sym.Bin{Op: x.Op, L: l, R: r}, true
		case lang.Not:
			t, ok := conv(x.E)
			if !ok {
				return nil, false
			}
			return sym.Not{T: t}, true
		default:
			return exprTerm(e, pc.Prog)
		}
	}
	return conv(e)
}

// --- param-domain: declarations the analyses depend on ---

type paramDomainPass struct{}

func (paramDomainPass) Name() string { return "param-domain" }

func (paramDomainPass) Run(pc *ProgContext) []Finding {
	var out []Finding
	report := func(sev Severity, format string, args ...any) {
		out = append(out, Finding{
			Prog: pc.Prog.Name, Pass: "param-domain", Path: "params",
			Severity: sev, Message: fmt.Sprintf(format, args...),
		})
	}
	used := paramRefs(pc.Prog)
	for _, prm := range pc.Prog.Params {
		switch prm.Kind {
		case value.KindInt:
			checkIntDomain(prm.Name, prm.Lo, prm.Hi, report)
		case value.KindList:
			if prm.MaxLen <= 0 {
				report(SevError, "list parameter %q has no capacity (MaxLen %d)", prm.Name, prm.MaxLen)
			}
			if prm.Elem == nil {
				report(SevError, "list parameter %q has no element specification", prm.Name)
			} else if prm.Elem.Kind == value.KindInt {
				checkIntDomain(prm.Name+" (element)", prm.Elem.Lo, prm.Elem.Hi, report)
			}
			if prm.LenParam != "" {
				lp, ok := pc.Prog.Param(prm.LenParam)
				switch {
				case !ok:
					// Schema.Validate reports unknown length parameters; no
					// duplicate finding here.
				case lp.Kind != value.KindInt:
					report(SevError, "list parameter %q: length parameter %q is %s, want int",
						prm.Name, prm.LenParam, lp.Kind)
				case lp.Hi > int64(prm.MaxLen):
					report(SevError, "list parameter %q: length parameter %q can reach %d, beyond capacity %d "+
						"(runtime index out of range)", prm.Name, prm.LenParam, lp.Hi, prm.MaxLen)
				case lp.Lo < 0:
					report(SevError, "list parameter %q: length parameter %q can be negative (%d)",
						prm.Name, prm.LenParam, lp.Lo)
				}
			}
		}
		if !used[prm.Name] {
			report(SevWarning, "parameter %q is never used", prm.Name)
		}
	}
	return out
}

func checkIntDomain(name string, lo, hi int64, report func(Severity, string, ...any)) {
	switch {
	case lo > hi:
		report(SevError, "int parameter %q has empty domain [%d..%d]", name, lo, hi)
	case lo == 0 && hi == 0:
		report(SevWarning, "int parameter %q has no declared domain (defaults to [0..0]); "+
			"declare the benchmark bounds so the analyses can use them", name)
	}
}

// paramRefs returns the parameter names referenced anywhere in the program,
// including use as a list length parameter.
func paramRefs(p *lang.Program) map[string]bool {
	used := map[string]bool{}
	var expr func(e lang.Expr)
	expr = func(e lang.Expr) {
		switch x := e.(type) {
		case lang.ParamRef:
			used[x.Name] = true
		case lang.Bin:
			expr(x.L)
			expr(x.R)
		case lang.Not:
			expr(x.E)
		case lang.Field:
			expr(x.E)
		case lang.Index:
			expr(x.E)
			expr(x.I)
		case lang.Rec:
			for _, f := range x.Fields {
				expr(f.E)
			}
		}
	}
	walkStmts(p.Body, "body", func(st lang.Stmt, _ string) {
		switch s := st.(type) {
		case lang.Assign:
			expr(s.E)
		case lang.SetField:
			expr(s.E)
		case lang.Get:
			for _, k := range s.Key {
				expr(k)
			}
		case lang.Put:
			for _, k := range s.Key {
				expr(k)
			}
			expr(s.Val)
		case lang.Del:
			for _, k := range s.Key {
				expr(k)
			}
		case lang.If:
			expr(s.Cond)
		case lang.For:
			expr(s.From)
			expr(s.To)
		case lang.Emit:
			expr(s.E)
		}
	})
	for _, prm := range p.Params {
		if prm.LenParam != "" {
			used[prm.LenParam] = true
		}
	}
	return used
}

package lint

import (
	"encoding/json"
	"sort"
	"strings"
	"testing"

	"prognosticator/internal/lang"
	"prognosticator/internal/value"
)

// findingsOf filters by pass name.
func findingsOf(fs []Finding, pass string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Pass == pass {
			out = append(out, f)
		}
	}
	return out
}

func lintSrc(t *testing.T, schema *lang.Schema, src string) []Finding {
	t.Helper()
	return New(schema).Run(mustParse(t, src))
}

func TestSchemaPassUnknownTable(t *testing.T) {
	schema := lang.NewSchema(lang.TableSpec{Name: "ACCOUNTS", KeyArity: 1})
	fs := findingsOf(lintSrc(t, schema, `
transaction ghost(id int[0..9]) {
    x = get NOPE[id]
    emit out = x
}`), "schema")
	if len(fs) != 1 {
		t.Fatalf("got %d schema findings, want 1: %v", len(fs), fs)
	}
	f := fs[0]
	if f.Severity != SevError || !strings.Contains(f.Message, `unknown table "NOPE"`) {
		t.Errorf("unexpected finding %v", f)
	}
	if f.Pos.Line != 3 {
		t.Errorf("finding at line %d, want 3", f.Pos.Line)
	}
	if f.Path != "body[0]" {
		t.Errorf("finding path %q, want body[0]", f.Path)
	}
}

func TestSchemaPassKeyArity(t *testing.T) {
	schema := lang.NewSchema(lang.TableSpec{Name: "ORDERS", KeyArity: 2})
	fs := findingsOf(lintSrc(t, schema, `
transaction arity(w int[0..9], d int[0..9]) {
    o = get ORDERS[w]
    put ORDERS[w, d] = o
}`), "schema")
	if len(fs) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(fs), fs)
	}
	if want := `table "ORDERS" expects 2 key parts, got 1`; !strings.Contains(fs[0].Message, want) {
		t.Errorf("message %q does not contain %q", fs[0].Message, want)
	}
}

func TestSchemaPassNestedPosition(t *testing.T) {
	schema := lang.NewSchema(lang.TableSpec{Name: "T", KeyArity: 1})
	fs := findingsOf(lintSrc(t, schema, `
transaction nested(x int[0..9]) {
    if x > 4 {
        del BAD[x]
    }
}`), "schema")
	if len(fs) != 1 || fs[0].Path != "body[0].then[0]" {
		t.Fatalf("findings %v, want one at body[0].then[0]", fs)
	}
}

func TestUseBeforeAssignPass(t *testing.T) {
	fs := findingsOf(lintSrc(t, nil, `
transaction partial(x int[0..9]) {
    if x > 4 {
        a = 1
    }
    emit out = a
}`), "use-before-assign")
	if len(fs) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(fs), fs)
	}
	if !strings.Contains(fs[0].Message, `local "a" may be used before assignment`) {
		t.Errorf("unexpected message %q", fs[0].Message)
	}
	if fs[0].Severity != SevError {
		t.Errorf("severity %v, want error", fs[0].Severity)
	}
}

func TestUseBeforeAssignNeverDefined(t *testing.T) {
	// A local with no definition site anywhere must still be flagged: the
	// synthetic undefined def covers used-only variables too.
	fs := findingsOf(lintSrc(t, nil, `
transaction ghostvar(x int[0..9]) {
    put T[v] = {a: 1}
}`), "use-before-assign")
	if len(fs) != 1 || !strings.Contains(fs[0].Message, `local "v"`) {
		t.Fatalf("findings %v, want one for never-defined v", fs)
	}
}

func TestUseBeforeAssignCleanOnBothArms(t *testing.T) {
	fs := findingsOf(lintSrc(t, nil, `
transaction total(x int[0..9]) {
    if x > 4 {
        a = 1
    } else {
        a = 2
    }
    emit out = a
}`), "use-before-assign")
	if len(fs) != 0 {
		t.Fatalf("false positives: %v", fs)
	}
}

func TestLoopBoundPassOverBudget(t *testing.T) {
	fs := findingsOf(lintSrc(t, nil, `
transaction big(n int[0..1000]) {
    s = 0
    for i = 0 .. n {
        s = s + i
    }
    emit out = s
}`), "loop-bound")
	if len(fs) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(fs), fs)
	}
	if !strings.Contains(fs[0].Message, "symexec.ErrBudget") {
		t.Errorf("message should mention symexec.ErrBudget: %q", fs[0].Message)
	}
}

func TestLoopBoundPassWithinBudget(t *testing.T) {
	fs := findingsOf(lintSrc(t, nil, `
transaction small(n int[1..10]) {
    s = 0
    for i = 0 .. n {
        s = s + i
    }
    emit out = s
}`), "loop-bound")
	if len(fs) != 0 {
		t.Fatalf("false positives: %v", fs)
	}
}

func TestLoopBoundPassUnderivable(t *testing.T) {
	// The bound comes from the store, not from a declared domain.
	fs := findingsOf(lintSrc(t, nil, `
transaction storebound(id int[0..9]) {
    c = get T[id]
    s = 0
    for i = 0 .. c.n {
        s = s + i
    }
    emit out = s
}`), "loop-bound")
	if len(fs) != 1 || !strings.Contains(fs[0].Message, "not derivable from declared input domains") {
		t.Fatalf("findings %v, want one underivable-bound error", fs)
	}
}

func TestLoopBoundPassNeverExecutes(t *testing.T) {
	fs := findingsOf(lintSrc(t, nil, `
transaction empty(n int[0..9]) {
    s = 0
    for i = 9 .. n {
        s = s + i
    }
    emit out = s
}`), "loop-bound")
	if len(fs) != 1 || fs[0].Severity != SevWarning || !strings.Contains(fs[0].Message, "never executes") {
		t.Fatalf("findings %v, want one never-executes warning", fs)
	}
}

func TestPivotKeyPassFlagsDependentGet(t *testing.T) {
	fs := findingsOf(lintSrc(t, nil, `
transaction chase(id int[0..9]) {
    c = get COUNTERS[id]
    put ITEMS[c.next] = {v: 1}
}`), "pivot-key")
	if len(fs) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(fs), fs)
	}
	if fs[0].Severity != SevInfo {
		t.Errorf("pivot-key severity %v, want info (DT is a classification, not a defect)", fs[0].Severity)
	}
	if !strings.Contains(fs[0].Message, "dependent transaction") {
		t.Errorf("unexpected message %q", fs[0].Message)
	}
}

func TestPivotKeyPassSilentOnIndependent(t *testing.T) {
	fs := findingsOf(lintSrc(t, nil, `
transaction indep(id int[0..9], amt int[1..100]) {
    a = get ACCOUNTS[id]
    a.bal = a.bal + amt
    put ACCOUNTS[id] = a
}`), "pivot-key")
	if len(fs) != 0 {
		t.Fatalf("independent transaction flagged: %v", fs)
	}
}

func TestDeadBranchPassAlwaysFalse(t *testing.T) {
	fs := findingsOf(lintSrc(t, nil, `
transaction dead(x int[0..9]) {
    if x > 100 {
        emit never = 1
    }
    emit out = x
}`), "dead-branch")
	if len(fs) != 1 || !strings.Contains(fs[0].Message, "then-branch is dead") {
		t.Fatalf("findings %v, want one dead-then warning", fs)
	}
}

func TestDeadBranchPassAlwaysTrue(t *testing.T) {
	fs := findingsOf(lintSrc(t, nil, `
transaction taut(x int[0..9]) {
    if x < 100 {
        emit a = 1
    } else {
        emit b = 2
    }
}`), "dead-branch")
	if len(fs) != 1 || !strings.Contains(fs[0].Message, "always true") {
		t.Fatalf("findings %v, want one always-true warning", fs)
	}
}

func TestDeadBranchPassNestedContradiction(t *testing.T) {
	// Feasible outer condition, contradictory inner one: requires threading
	// the path constraint.
	fs := findingsOf(lintSrc(t, nil, `
transaction nestdead(x int[0..9]) {
    if x < 5 {
        if x > 7 {
            emit never = 1
        }
    }
}`), "dead-branch")
	var dead []Finding
	for _, f := range fs {
		if strings.Contains(f.Message, "then-branch is dead") && f.Path == "body[0].then[0]" {
			dead = append(dead, f)
		}
	}
	if len(dead) != 1 {
		t.Fatalf("findings %v, want the nested contradiction flagged", fs)
	}
}

func TestDeadBranchPassFeasibleSilent(t *testing.T) {
	fs := findingsOf(lintSrc(t, nil, `
transaction live(x int[0..9]) {
    if x > 4 {
        emit hi = 1
    } else {
        emit lo = 2
    }
}`), "dead-branch")
	if len(fs) != 0 {
		t.Fatalf("feasible branches flagged: %v", fs)
	}
}

func TestParamDomainPassMissingDomain(t *testing.T) {
	// Builder-constructed program: no source positions, path-only findings.
	p := &lang.Program{
		Name:   "nodomain",
		Params: []lang.Param{{Name: "x", Kind: value.KindInt}},
		Body: []lang.Stmt{
			lang.EmitS("out", lang.P("x")),
		},
	}
	fs := findingsOf(New(nil).Run(p), "param-domain")
	if len(fs) != 1 || fs[0].Severity != SevWarning || !strings.Contains(fs[0].Message, "no declared domain") {
		t.Fatalf("findings %v, want one no-domain warning", fs)
	}
	if fs[0].Pos.IsValid() {
		t.Errorf("builder program finding should have no source position")
	}
	if fs[0].Path != "params" {
		t.Errorf("path %q, want params", fs[0].Path)
	}
}

func TestParamDomainPassEmptyDomain(t *testing.T) {
	p := &lang.Program{
		Name:   "empty",
		Params: []lang.Param{lang.IntParam("x", 5, 1)},
		Body:   []lang.Stmt{lang.EmitS("out", lang.P("x"))},
	}
	fs := findingsOf(New(nil).Run(p), "param-domain")
	if len(fs) != 1 || fs[0].Severity != SevError || !strings.Contains(fs[0].Message, "empty domain") {
		t.Fatalf("findings %v, want one empty-domain error", fs)
	}
}

func TestParamDomainPassUnusedParam(t *testing.T) {
	fs := findingsOf(lintSrc(t, nil, `
transaction unused(x int[0..9], y int[0..9]) {
    emit out = x
}`), "param-domain")
	if len(fs) != 1 || !strings.Contains(fs[0].Message, `parameter "y" is never used`) {
		t.Fatalf("findings %v, want one unused-param warning", fs)
	}
}

func TestParamDomainPassLenParamBeyondCapacity(t *testing.T) {
	elem := lang.IntParam("", 0, 9)
	p := &lang.Program{
		Name: "overlen",
		Params: []lang.Param{
			lang.IntParam("n", 1, 20),
			{Name: "items", Kind: value.KindList, Elem: &elem, MaxLen: 10, LenParam: "n"},
		},
		Body: []lang.Stmt{
			lang.EmitS("out", lang.Idx(lang.P("items"), lang.C(0))),
		},
	}
	fs := findingsOf(New(nil).Run(p), "param-domain")
	if len(fs) != 1 || !strings.Contains(fs[0].Message, "beyond capacity") {
		t.Fatalf("findings %v, want one beyond-capacity error", fs)
	}
}

func TestFindingStringAndJSON(t *testing.T) {
	f := Finding{Prog: "t", Pass: "schema", Pos: lang.Pos{Line: 3, Col: 5},
		Path: "body[0]", Severity: SevError, Message: "boom"}
	if got, want := f.String(), "t:3:5: error: [schema] boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	f.Pos = lang.Pos{}
	if got, want := f.String(), "t:body[0]: error: [schema] boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}

	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"severity":"error"`) {
		t.Errorf("JSON severity not symbolic: %s", data)
	}
	var back Finding
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Severity != SevError {
		t.Errorf("roundtrip severity %v", back.Severity)
	}
}

func TestFindingsSortedDeterministically(t *testing.T) {
	src := `
transaction multi(x int[0..9], unused int[0..9]) {
    if x > 100 {
        a = get NOPE[x]
        emit never = a
    }
}`
	schema := lang.NewSchema(lang.TableSpec{Name: "T", KeyArity: 1})
	first := New(schema).Run(mustParse(t, src))
	if len(first) < 3 {
		t.Fatalf("expected several findings, got %v", first)
	}
	if !sort.SliceIsSorted(first, func(i, j int) bool {
		a, b := first[i], first[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return true
	}) {
		t.Errorf("findings not ordered by line: %v", first)
	}
	for i := 0; i < 5; i++ {
		again := New(schema).Run(mustParse(t, src))
		if len(again) != len(first) {
			t.Fatalf("non-deterministic finding count")
		}
		for j := range again {
			if again[j] != first[j] {
				t.Fatalf("non-deterministic order at %d: %v vs %v", j, again[j], first[j])
			}
		}
	}
}

func TestMaxSeverity(t *testing.T) {
	if got := MaxSeverity(nil); got != 0 {
		t.Errorf("MaxSeverity(nil) = %v, want 0", got)
	}
	fs := []Finding{{Severity: SevInfo}, {Severity: SevError}, {Severity: SevWarning}}
	if got := MaxSeverity(fs); got != SevError {
		t.Errorf("MaxSeverity = %v, want error", got)
	}
}

func TestInferSchema(t *testing.T) {
	progs, err := lang.ParseAll(`
transaction a(x int[0..9]) {
    v = get T1[x]
    put T2[x, x] = v
}
transaction b(y int[0..9]) {
    del T1[y]
}`)
	if err != nil {
		t.Fatal(err)
	}
	s := InferSchema(progs...)
	t1, ok := s.Table("T1")
	if !ok || t1.KeyArity != 1 {
		t.Errorf("T1 = %+v, %v", t1, ok)
	}
	t2, ok := s.Table("T2")
	if !ok || t2.KeyArity != 2 {
		t.Errorf("T2 = %+v, %v", t2, ok)
	}
	if _, ok := s.Table("T3"); ok {
		t.Errorf("phantom table inferred")
	}
}

// Package sched implements a single-threaded cooperative scheduler over the
// vclock actor set — the missing piece between "same event sequence" and
// bit-identical replay. The token model in internal/vclock already pins the
// ORDER of virtual-time advances to the seed, but whenever several
// goroutines are runnable at the same virtual instant the Go runtime orders
// them (select fairness, channel wakeup order), which can shift virtual
// timestamps and message interleavings between same-seed runs.
//
// Under this scheduler exactly one actor runs at a time. An actor is a
// clock-aware goroutine spawned through vclock.Go/GoNamed; it runs until it
// reaches a gate — a virtual Sleep, an explicit Yield after handling one
// event, or Idle when a full poll of its inputs found nothing — and then
// hands the run baton back. The scheduler picks the next runnable actor
// with a seeded hash over the ready set (sorted by spawn order, itself
// deterministic because actors register synchronously in their spawner),
// so the ENTIRE interleaving is a pure function of the seed.
//
// Virtual time advances only when every actor is idle or sleeping: the
// scheduler fires the earliest timer (vclock.Sim.AdvanceNext), wakes the
// sleeper it belongs to or runs the AfterFunc inline, and re-readies every
// idle actor so poll loops observe the fire. Cross-actor events that do not
// go through the clock — a message placed in an inbox, a channel closed —
// are announced with Publish, which also re-readies every idle actor. The
// re-ready-everyone rule is deliberately coarse: an actor whose poll finds
// nothing goes idle again immediately, and coarse wakeups cannot break
// determinism because wakeup ORDER is still the picker's choice.
//
// Two kinds of goroutines intentionally stay OUTSIDE the scheduler: pure
// compute workers that never touch the clock (the engine's batch workers —
// their results are made deterministic by the lock table, and they run to
// completion while the spawning actor holds the baton), and anything on the
// wall clock. A scheduled actor must never hold a mutex across a gate: the
// baton holder blocking on a mutex owned by a gated actor would deadlock
// the world. Gates in this codebase are only ever reached between lock
// regions (Sleep in backoff loops, Yield/Idle at poll-loop tops).
package sched

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"prognosticator/internal/vclock"
)

type state int

const (
	ready state = iota // runnable, waiting for the picker
	running
	idle     // parked until the next Publish or timer fire
	sleeping // parked until its own wake timer fires
	exited
)

func (s state) String() string {
	switch s {
	case ready:
		return "ready"
	case running:
		return "running"
	case idle:
		return "idle"
	case sleeping:
		return "sleeping"
	default:
		return "exited"
	}
}

type actor struct {
	id     int
	name   string
	state  state
	resume chan struct{}
}

// Scheduler runs a set of cooperative actors over one vclock.Sim. Create it
// implicitly with Run; it implements vclock.Scheduler.
type Scheduler struct {
	sim  *vclock.Sim
	clk  vclock.Clock
	seed int64

	mu        sync.Mutex
	actors    []*actor
	exitCount int
	current   *actor
	advancing bool

	gate    chan struct{} // actor -> scheduler: "I am parked at a gate"
	pickCtr uint64
}

// Run attaches a scheduler to sim, runs root as the first actor ("main"),
// and drives the actor set until every actor has exited. It returns an
// error on deadlock: every live actor idle or sleeping with no pending
// timer. The scheduler is detached from sim before Run returns, so a Sim
// can be reused (though tests normally build a fresh one per run).
func Run(sim *vclock.Sim, root func()) error {
	s := &Scheduler{
		sim:  sim,
		clk:  sim.Clock(),
		seed: sim.Seed(),
		gate: make(chan struct{}),
	}
	sim.SetScheduler(s)
	defer sim.SetScheduler(nil)
	s.GoActor("main", root)
	return s.loop()
}

// loop is the scheduler's main loop, run on the goroutine that called Run.
func (s *Scheduler) loop() error {
	for {
		s.mu.Lock()
		if s.exitCount == len(s.actors) {
			s.mu.Unlock()
			return nil
		}
		var readySet []*actor
		for _, a := range s.actors { // spawn order: deterministic
			if a.state == ready {
				readySet = append(readySet, a)
			}
		}
		if len(readySet) > 0 {
			n := vclock.Hash64(uint64(s.seed), s.pickCtr) % uint64(len(readySet))
			s.pickCtr++
			a := readySet[n]
			a.state = running
			s.current = a
			s.mu.Unlock()
			a.resume <- struct{}{} // grant the baton
			<-s.gate               // wait for the next gate (or exit)
			continue
		}
		// Nobody runnable: advance virtual time. AfterFunc callbacks (e.g.
		// delayed network deliveries) run inline here; gates called from
		// them are no-ops (see advancing) and Publish just flips states.
		s.current = nil
		s.advancing = true
		s.mu.Unlock()
		fired := s.sim.AdvanceNext()
		s.mu.Lock()
		s.advancing = false
		if !fired {
			dump := s.dumpLocked()
			s.mu.Unlock()
			return fmt.Errorf("sched: deadlock — no runnable actor and no pending timer\n%s", dump)
		}
		// A fire is an observable event: re-ready every idle actor so poll
		// loops can observe delivered ticks and newly enqueued messages.
		for _, a := range s.actors {
			if a.state == idle {
				a.state = ready
			}
		}
		s.mu.Unlock()
	}
}

func (s *Scheduler) dumpLocked() string {
	var b strings.Builder
	for _, a := range s.actors {
		fmt.Fprintf(&b, "  actor %d %q: %s\n", a.id, a.name, a.state)
	}
	return b.String()
}

// GoActor implements vclock.Scheduler: fn becomes a new actor, registered
// synchronously (the spawner still holds the baton, so registration order
// is deterministic) and started when the picker first selects it.
func (s *Scheduler) GoActor(name string, fn func()) {
	s.mu.Lock()
	a := &actor{id: len(s.actors), name: name, state: ready, resume: make(chan struct{})}
	if name == "" {
		a.name = fmt.Sprintf("actor-%d", a.id)
	}
	s.actors = append(s.actors, a)
	s.mu.Unlock()
	go func() {
		<-a.resume // first baton grant
		defer s.exit(a)
		fn()
	}()
}

// exit retires an actor and publishes the exit (an Await-ing actor must
// re-poll its predicate), then returns the baton for good.
func (s *Scheduler) exit(a *actor) {
	s.mu.Lock()
	a.state = exited
	s.exitCount++
	for _, o := range s.actors {
		if o.state == idle {
			o.state = ready
		}
	}
	s.mu.Unlock()
	s.gate <- struct{}{}
}

// park moves the current actor into st, returns the baton, and blocks until
// the picker resumes the actor.
func (s *Scheduler) park(a *actor, st state) {
	s.mu.Lock()
	a.state = st
	s.mu.Unlock()
	s.gate <- struct{}{}
	<-a.resume
}

// gateActor returns the running actor for a gate call, nil if the call came
// from an AfterFunc running inline on the scheduler goroutine during a time
// advance (gates are no-ops there: nothing to park).
func (s *Scheduler) gateActor(op string) *actor {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.advancing {
		return nil
	}
	if s.current == nil {
		panic(fmt.Sprintf("sched: %s from a goroutine that is not a scheduled actor", op))
	}
	return s.current
}

// Yield implements vclock.Scheduler: a deterministic preemption point.
func (s *Scheduler) Yield() {
	if a := s.gateActor("Yield"); a != nil {
		s.park(a, ready)
	}
}

// Idle implements vclock.Scheduler: park until the next published event or
// timer fire.
func (s *Scheduler) Idle() {
	if a := s.gateActor("Idle"); a != nil {
		s.park(a, idle)
	}
}

// Publish implements vclock.Scheduler: every idle actor becomes ready. Safe
// from any goroutine (running actor, AfterFunc on the scheduler goroutine,
// or an unscheduled helper).
func (s *Scheduler) Publish() {
	s.mu.Lock()
	for _, a := range s.actors {
		if a.state == idle {
			a.state = ready
		}
	}
	s.mu.Unlock()
}

// Sleep implements vclock.Scheduler: the calling actor parks until a timer
// at now+d fires for it.
func (s *Scheduler) Sleep(d time.Duration) {
	a := s.gateActor("Sleep")
	if a == nil {
		panic("sched: Sleep from an AfterFunc callback (would block the advance loop)")
	}
	s.clk.AfterFunc(d, func() { s.wake(a) })
	s.park(a, sleeping)
}

func (s *Scheduler) wake(a *actor) {
	s.mu.Lock()
	if a.state == sleeping {
		a.state = ready
	}
	s.mu.Unlock()
}

// Await implements vclock.Scheduler: park until pred() is true. It
// publishes once so the actors that will make pred true get to run even if
// they were idle (e.g. a stop-signal poll loop after its channel closed).
// pred runs only while the caller holds the baton.
func (s *Scheduler) Await(pred func() bool) {
	a := s.gateActor("Await")
	if a == nil {
		panic("sched: Await from an AfterFunc callback (would block the advance loop)")
	}
	first := true
	for !pred() {
		if first {
			s.Publish()
			first = false
		}
		s.park(a, idle)
	}
}

// Picks returns how many scheduling decisions have been made — part of a
// run's replayable signature: two same-seed runs pick identically.
func (s *Scheduler) Picks() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pickCtr
}

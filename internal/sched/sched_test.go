package sched

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"prognosticator/internal/vclock"
)

// TestRunSingleActor: a lone actor that sleeps and exits drives virtual
// time itself.
func TestRunSingleActor(t *testing.T) {
	sim := vclock.NewSim(1)
	clk := sim.Clock()
	var woke time.Time
	if err := Run(sim, func() {
		clk.Sleep(5 * time.Second)
		woke = clk.Now()
	}); err != nil {
		t.Fatal(err)
	}
	if got := woke.Sub(vclock.NewSim(1).Now()); got != 5*time.Second {
		t.Fatalf("slept %v of virtual time, want 5s", got)
	}
	if sim.Advances() == 0 {
		t.Error("sleep did not advance virtual time")
	}
}

// TestInterleavingIsSeedStable: the order in which concurrently runnable
// actors execute is a pure function of the seed — run twice, compare the
// full execution trace.
func TestInterleavingIsSeedStable(t *testing.T) {
	run := func(seed int64) string {
		sim := vclock.NewSim(seed)
		clk := sim.Clock()
		var trace strings.Builder
		if err := Run(sim, func() {
			for i := 0; i < 4; i++ {
				i := i
				vclock.GoNamed(clk, fmt.Sprintf("worker-%d", i), func() {
					for j := 0; j < 3; j++ {
						fmt.Fprintf(&trace, "w%d.%d@%d ", i, j, clk.Now().UnixNano())
						vclock.Yield(clk)
						clk.Sleep(time.Duration(i+1) * time.Millisecond)
					}
				})
			}
		}); err != nil {
			t.Fatal(err)
		}
		return trace.String()
	}
	for _, seed := range []int64{1, 7, 42} {
		a, b := run(seed), run(seed)
		if a != b {
			t.Errorf("seed %d: two runs diverged:\n%s\n%s", seed, a, b)
		}
	}
	// Different seeds should (for this workload) order the yield points
	// differently — otherwise the picker is not actually consulted.
	if run(1) == run(7) && run(1) == run(42) {
		t.Error("three different seeds produced identical interleavings — picker looks unused")
	}
}

// TestPublishWakesIdler: an actor idle-parked in a poll loop is re-readied
// by a Publish from another actor.
func TestPublishWakesIdler(t *testing.T) {
	sim := vclock.NewSim(3)
	clk := sim.Clock()
	var got atomic.Int64
	if err := Run(sim, func() {
		ch := make(chan int64, 8)
		vclock.GoNamed(clk, "consumer", func() {
			for {
				select {
				case v := <-ch:
					if v < 0 {
						return
					}
					got.Add(v)
					vclock.Yield(clk)
					continue
				default:
				}
				vclock.Idle(clk)
			}
		})
		for i := int64(1); i <= 5; i++ {
			ch <- i
			vclock.Publish(clk)
			vclock.Yield(clk)
		}
		ch <- -1
		vclock.Publish(clk)
	}); err != nil {
		t.Fatal(err)
	}
	if got.Load() != 15 {
		t.Fatalf("consumer summed %d, want 15", got.Load())
	}
}

// TestAwait: stop-style shutdown — close a channel, Await the loop actor's
// exit flag, then WaitGroup-wait without deadlocking the baton.
func TestAwait(t *testing.T) {
	sim := vclock.NewSim(9)
	clk := sim.Clock()
	if err := Run(sim, func() {
		stop := make(chan struct{})
		var done atomic.Bool
		vclock.GoNamed(clk, "loop", func() {
			defer done.Store(true)
			for {
				select {
				case <-stop:
					return
				default:
				}
				vclock.Idle(clk)
			}
		})
		vclock.Yield(clk) // let the loop reach its idle gate at least once
		close(stop)
		vclock.Await(clk, done.Load)
		if !done.Load() {
			t.Error("Await returned before the loop exited")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestAwaitImmediate: a predicate that is already true returns without
// parking.
func TestAwaitImmediate(t *testing.T) {
	sim := vclock.NewSim(4)
	clk := sim.Clock()
	if err := Run(sim, func() {
		vclock.Await(clk, func() bool { return true })
	}); err != nil {
		t.Fatal(err)
	}
}

// TestDeadlockDetected: all actors idle with no pending timers is reported
// as an error, not a hang.
func TestDeadlockDetected(t *testing.T) {
	sim := vclock.NewSim(5)
	clk := sim.Clock()
	err := Run(sim, func() {
		for {
			vclock.Idle(clk) // idles forever; no timers exist
		}
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock error, got %v", err)
	}
}

// TestAfterFuncRunsInAdvance: AfterFunc callbacks fire inline during time
// advances and may Publish to wake idle actors.
func TestAfterFuncRunsInAdvance(t *testing.T) {
	sim := vclock.NewSim(6)
	clk := sim.Clock()
	var delivered atomic.Bool
	if err := Run(sim, func() {
		var ping atomic.Bool
		clk.AfterFunc(10*time.Millisecond, func() {
			ping.Store(true)
			vclock.Publish(clk)
		})
		vclock.Await(clk, ping.Load)
		delivered.Store(true)
	}); err != nil {
		t.Fatal(err)
	}
	if !delivered.Load() {
		t.Fatal("AfterFunc never woke the awaiting actor")
	}
}

// TestNestedSpawn: actors spawned from actors (the compaction pattern) run
// and exit cleanly, and their registration order is deterministic.
func TestNestedSpawn(t *testing.T) {
	run := func() string {
		sim := vclock.NewSim(11)
		clk := sim.Clock()
		var order strings.Builder
		if err := Run(sim, func() {
			for i := 0; i < 3; i++ {
				i := i
				vclock.GoNamed(clk, fmt.Sprintf("outer-%d", i), func() {
					fmt.Fprintf(&order, "o%d ", i)
					vclock.GoNamed(clk, fmt.Sprintf("inner-%d", i), func() {
						fmt.Fprintf(&order, "i%d ", i)
					})
					vclock.Yield(clk)
				})
			}
		}); err != nil {
			t.Fatal(err)
		}
		return order.String()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nested spawn order diverged: %q vs %q", a, b)
	}
}

// TestPicksCounted: the scheduler makes at least one pick per actor and the
// count replays.
func TestPicksCounted(t *testing.T) {
	picks := func() uint64 {
		sim := vclock.NewSim(13)
		clk := sim.Clock()
		s := &Scheduler{sim: sim, clk: clk, seed: sim.Seed(), gate: make(chan struct{})}
		sim.SetScheduler(s)
		defer sim.SetScheduler(nil)
		s.GoActor("main", func() {
			for i := 0; i < 3; i++ {
				vclock.Yield(clk)
			}
		})
		if err := s.loop(); err != nil {
			t.Fatal(err)
		}
		return s.Picks()
	}
	a, b := picks(), picks()
	if a == 0 || a != b {
		t.Fatalf("picks %d vs %d: want equal and nonzero", a, b)
	}
}

// TestGatesNoopDuringAdvance: Yield/Idle called from an AfterFunc callback
// (which runs inline on the scheduler goroutine during a time advance) are
// no-ops rather than deadlocks; Publish from there is fully functional.
func TestGatesNoopDuringAdvance(t *testing.T) {
	sim := vclock.NewSim(8)
	clk := sim.Clock()
	var ran atomic.Bool
	if err := Run(sim, func() {
		clk.AfterFunc(time.Millisecond, func() {
			vclock.Yield(clk)
			vclock.Idle(clk)
			ran.Store(true)
			vclock.Publish(clk)
		})
		clk.Sleep(5 * time.Millisecond)
	}); err != nil {
		t.Fatal(err)
	}
	if !ran.Load() {
		t.Fatal("AfterFunc did not run during the advance")
	}
}

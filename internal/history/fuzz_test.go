package history

import (
	"fmt"
	"prognosticator/internal/engine"
	"testing"
)

// FuzzHistoryCheck drives the serializability checker from both sides with a
// deterministic mini-executor. The fuzz input encodes a transaction schedule
// (RMWs, blind writes, read-only transactions, batch boundaries over a
// 4-key space) that is executed serially in agreed order, so the resulting
// history is serializable by construction and Check/CheckTraced must accept
// it. The first input byte optionally selects an anomaly to inject into the
// accepted history — a fractured read, a lost update, or a write skew — and
// the checkers must then reject it. Soundness and completeness are thus
// fuzzed together: no false alarms on clean histories, no misses on planted
// anomalies.
func FuzzHistoryCheck(f *testing.F) {
	f.Add([]byte("\x00\x00\x00\x01\x00\x02\x01\x03\x02\x05\x01")) // clean mixed schedule
	f.Add([]byte("\x01\x00\x00\x00\x00"))                         // fractured-read injection
	f.Add([]byte("\x02\x00\x00\x00\x00\x00\x00"))                 // lost-update injection
	f.Add([]byte("\x03\x03\x00\x03\x01"))                         // write-skew injection
	f.Add([]byte("\x00\x00\x00\x07\x00\x03\x01\x05\x06\x01\x02")) // batch boundary
	f.Add([]byte("\x02\x00\x00\x07\x00\x00\x00\x07\x00\x00\x00")) // lost update across batches
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		mutation := data[0] % 4
		ops := buildFuzzHistory(data[1:])
		if err := Check(ops, nil); err != nil {
			t.Fatalf("checker rejected a serially executed history: %v\nops: %+v", err, ops)
		}
		if err := CheckTraced(ops, nil, nil); err != nil {
			t.Fatalf("traced checker rejected a serially executed history: %v\nops: %+v", err, ops)
		}
		if mutation == 0 {
			return
		}
		name, ok := injectAnomaly(ops, mutation)
		if !ok {
			return // schedule lacks the structure this anomaly needs
		}
		if Check(ops, nil) == nil {
			t.Fatalf("checker accepted a history with an injected %s\nops: %+v", name, ops)
		}
		if CheckTraced(ops, nil, nil) == nil {
			t.Fatalf("traced checker accepted a history with an injected %s\nops: %+v", name, ops)
		}
	})
}

// buildFuzzHistory decodes byte pairs into transactions and executes them
// serially against an in-memory fingerprint store. Every write fingerprint is
// unique (v<seq>), so read attribution in the checker is exact. Op kinds:
// 0-2 read-modify-write, 3-4 blind write, 5-6 read-only over two keys,
// 7 batch boundary (bumps the apply index, emits no op).
func buildFuzzHistory(data []byte) []Op {
	cur := map[string]string{}
	var ops []Op
	seq, index := uint64(0), uint64(1)
	for i := 0; i+1 < len(data) && len(ops) < 48; i += 2 {
		kind := data[i] % 8
		key := fuzzKey(data[i+1])
		if kind == 7 {
			index++
			continue
		}
		seq++
		op := Op{
			ID:    fmt.Sprintf("b%d/%d", index, seq),
			Index: index,
			Seq:   seq,
			Name:  "fuzz",
		}
		val := fmt.Sprintf("v%d", seq)
		switch {
		case kind <= 2: // RMW
			op.Reads = []engine.Access{{Key: key, Val: cur[key]}}
			op.Writes = []engine.Access{{Key: key, Val: val}}
			cur[key] = val
		case kind <= 4: // blind write
			op.Writes = []engine.Access{{Key: key, Val: val}}
			cur[key] = val
		default: // read-only over up to two keys
			op.Reads = []engine.Access{{Key: key, Val: cur[key]}}
			if k2 := fuzzKey(data[i+1] / 4); k2 != key {
				op.Reads = append(op.Reads, engine.Access{Key: k2, Val: cur[k2]})
			}
		}
		ops = append(ops, op)
	}
	return ops
}

func fuzzKey(b byte) string { return string(rune('a' + int(b%4))) }

// injectAnomaly corrupts the (serial, valid) history in place with one of
// the classic non-serializable patterns, returning its name and whether the
// schedule had the structure to host it.
func injectAnomaly(ops []Op, mutation byte) (string, bool) {
	switch mutation {
	case 1:
		// Fractured read: a read observes a fingerprint no write produced.
		for j := range ops {
			if len(ops[j].Reads) > 0 {
				ops[j].Reads[0].Val = "\x00never-committed"
				return "fractured read", true
			}
		}
		return "fractured read", false
	case 2:
		// Lost update: an RMW's read is rolled back one version, so it read
		// the state from before the previous writer — WW says the previous
		// writer came first, RW says it came second.
		vs := keyVersions(ops)
		for j := range ops {
			for ri, r := range ops[j].Reads {
				if !writesKey(ops[j], r.Key) {
					continue
				}
				kv := vs[r.Key]
				for p := 1; p < len(kv); p++ {
					if kv[p].val == r.Val && kv[p].op < j {
						ops[j].Reads[ri].Val = kv[p-1].val
						return "lost update", true
					}
				}
			}
		}
		return "lost update", false
	case 3:
		// Write skew: two transactions each read the key the other writes,
		// both observing the pre-transaction state — each anti-depends on
		// the other, a cycle with no stale read on the first edge.
		vs := keyVersions(ops)
		for i := range ops {
			if len(ops[i].Writes) == 0 {
				continue
			}
			a := ops[i].Writes[0].Key
			for j := i + 1; j < len(ops); j++ {
				if len(ops[j].Writes) == 0 {
					continue
				}
				b := ops[j].Writes[0].Key
				if b == a || readsKey(ops[i], b) || readsKey(ops[j], a) {
					continue
				}
				if writerBetween(ops, i, j, b) {
					continue // j must be b's next writer after i
				}
				ops[i].Reads = append(ops[i].Reads, engine.Access{Key: b, Val: prevVal(vs[b], j)})
				ops[j].Reads = append(ops[j].Reads, engine.Access{Key: a, Val: prevVal(vs[a], i)})
				return "write skew", true
			}
		}
		return "write skew", false
	}
	return "", false
}

// versionRec is one committed version of a key: the index of the writing op
// in construction order (-1 for the initial state) and its fingerprint.
type versionRec struct {
	op  int
	val string
}

func keyVersions(ops []Op) map[string][]versionRec {
	vs := map[string][]versionRec{}
	for i, o := range ops {
		for _, w := range o.Writes {
			if len(vs[w.Key]) == 0 {
				vs[w.Key] = []versionRec{{op: -1, val: ""}}
			}
			vs[w.Key] = append(vs[w.Key], versionRec{op: i, val: w.Val})
		}
	}
	return vs
}

// prevVal returns the fingerprint of the version immediately preceding the
// one written by op j.
func prevVal(kv []versionRec, j int) string {
	for p := 1; p < len(kv); p++ {
		if kv[p].op == j {
			return kv[p-1].val
		}
	}
	return ""
}

func writesKey(o Op, k string) bool {
	for _, w := range o.Writes {
		if w.Key == k {
			return true
		}
	}
	return false
}

func readsKey(o Op, k string) bool {
	for _, r := range o.Reads {
		if r.Key == k {
			return true
		}
	}
	return false
}

func writerBetween(ops []Op, i, j int, k string) bool {
	for m := i + 1; m < j; m++ {
		if writesKey(ops[m], k) {
			return true
		}
	}
	return false
}

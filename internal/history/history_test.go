package history

import (
	"strings"
	"testing"

	"prognosticator/internal/engine"
	"prognosticator/internal/profile"
)

func acc(pairs ...string) []engine.Access {
	if len(pairs)%2 != 0 {
		panic("acc: odd pairs")
	}
	out := make([]engine.Access, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, engine.Access{Key: pairs[i], Val: pairs[i+1]})
	}
	return out
}

func op(id string, index, seq uint64, class profile.Class, round int, reads, writes []engine.Access) Op {
	return Op{ID: id, Index: index, Seq: seq, Name: id, Class: class, Round: round, Reads: reads, Writes: writes}
}

func TestCheckEmptyHistory(t *testing.T) {
	if err := Check(nil, nil); err != nil {
		t.Fatalf("empty history: %v", err)
	}
}

func TestCheckConformantHistory(t *testing.T) {
	ops := []Op{
		// Batch 1: create x and y.
		op("b1/0", 1, 0, profile.ClassIT, 0, acc("x", ""), acc("x", "v1")),
		op("b1/1", 1, 1, profile.ClassIT, 0, acc("y", ""), acc("y", "v1")),
		// Batch 2: read-modify-write x; read y.
		op("b2/2", 2, 2, profile.ClassIT, 0, acc("x", "v1"), acc("x", "v2")),
		op("b2/3", 2, 3, profile.ClassROT, 0, acc("y", "v1"), nil),
	}
	if err := Check(ops, nil); err != nil {
		t.Fatalf("conformant history rejected: %v", err)
	}
}

func TestCheckROTReadsBatchStartSnapshot(t *testing.T) {
	// The ROT has a higher seq than the update in the same batch, but reads
	// the beginning-of-batch state — that is the engine's contract, and the
	// checker must order it before the batch's updates.
	ops := []Op{
		op("b1/0", 1, 0, profile.ClassIT, 0, nil, acc("x", "v1")),
		op("b2/1", 2, 1, profile.ClassIT, 0, acc("x", "v1"), acc("x", "v2")),
		op("b2/2", 2, 2, profile.ClassROT, 0, acc("x", "v1"), nil),
	}
	if err := Check(ops, nil); err != nil {
		t.Fatalf("ROT snapshot read rejected: %v", err)
	}
}

func TestCheckRound0DTBeforeIT(t *testing.T) {
	// Lock-table enqueue order is DTs before ITs, so a lower-seq IT that
	// conflicts with a higher-seq DT reads the DT's write.
	ops := []Op{
		op("b1/0", 1, 0, profile.ClassIT, 0, nil, acc("x", "v0")),
		op("b2/1", 2, 1, profile.ClassIT, 0, acc("x", "vDT"), acc("x", "v2")),
		op("b2/2", 2, 2, profile.ClassDT, 0, acc("x", "v0"), acc("x", "vDT")),
	}
	if err := Check(ops, nil); err != nil {
		t.Fatalf("DT-before-IT order rejected: %v", err)
	}
}

func TestCheckRetryRoundOrdering(t *testing.T) {
	// A DT that aborted once (Round 1) commits after every round-0 commit,
	// including higher-seq ones, and observes their writes.
	ops := []Op{
		op("b1/0", 1, 0, profile.ClassIT, 0, nil, acc("x", "v0")),
		op("b2/1", 2, 1, profile.ClassDT, 1, acc("x", "v2"), acc("x", "v3")),
		op("b2/2", 2, 2, profile.ClassIT, 0, acc("x", "v0"), acc("x", "v2")),
	}
	if err := Check(ops, nil); err != nil {
		t.Fatalf("retry-round order rejected: %v", err)
	}
}

func TestCheckInitialState(t *testing.T) {
	ops := []Op{
		op("b1/0", 1, 0, profile.ClassIT, 0, acc("x", "seeded"), acc("x", "v1")),
	}
	if err := Check(ops, map[string]string{"x": "seeded"}); err != nil {
		t.Fatalf("initial-state read rejected: %v", err)
	}
	if err := Check(ops, nil); err == nil {
		t.Fatal("read of unseeded value accepted")
	}
}

func TestCheckLostUpdate(t *testing.T) {
	// Both transactions read the initial x and blind-write their increment:
	// the classic lost update. WW says T1 -> T2; T2's read of the initial
	// version says T2 -> T1 (anti-dependency). Cycle.
	ops := []Op{
		op("t1", 1, 0, profile.ClassIT, 0, acc("x", ""), acc("x", "v1")),
		op("t2", 2, 1, profile.ClassIT, 0, acc("x", ""), acc("x", "v2")),
	}
	err := Check(ops, nil)
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("lost update not detected as cycle: %v", err)
	}
}

func TestCheckWriteSkew(t *testing.T) {
	// T1 reads x,y and writes x; T2 reads x,y and writes y — each misses
	// the other's write. Two anti-dependencies form a cycle.
	ops := []Op{
		op("t1", 1, 0, profile.ClassIT, 0, acc("x", "v0", "y", "v0"), acc("x", "v1")),
		op("t2", 2, 1, profile.ClassIT, 0, acc("x", "v0", "y", "v0"), acc("y", "v1")),
	}
	err := Check(ops, map[string]string{"x": "v0", "y": "v0"})
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("write skew not detected as cycle: %v", err)
	}
}

func TestCheckStaleRead(t *testing.T) {
	// T2 reads the initial x even though T1 overwrote it: serializable in
	// the order T2,T1 — but not in the agreed commit order, which is the
	// property a deterministic database promises.
	ops := []Op{
		op("t1", 1, 0, profile.ClassIT, 0, nil, acc("x", "v1")),
		op("t2", 2, 1, profile.ClassROT, 0, acc("x", ""), nil),
	}
	err := Check(ops, nil)
	if err == nil || !strings.Contains(err.Error(), "stale read") {
		t.Fatalf("stale read not detected: %v", err)
	}
}

func TestCheckFracturedRead(t *testing.T) {
	ops := []Op{
		op("t1", 1, 0, profile.ClassIT, 0, nil, acc("x", "v1")),
		op("t2", 2, 1, profile.ClassROT, 0, acc("x", "never-written"), nil),
	}
	err := Check(ops, nil)
	if err == nil || !strings.Contains(err.Error(), "fractured read") {
		t.Fatalf("fractured read not detected: %v", err)
	}
}

func TestCheckDeleteRoundTrip(t *testing.T) {
	// A delete is a write with an empty fingerprint; a later read must see
	// not-found again.
	ops := []Op{
		op("t1", 1, 0, profile.ClassIT, 0, nil, acc("x", "v1")),
		op("t2", 2, 1, profile.ClassIT, 0, acc("x", "v1"), acc("x", "")),
		op("t3", 3, 2, profile.ClassROT, 0, acc("x", ""), nil),
	}
	if err := Check(ops, nil); err != nil {
		t.Fatalf("delete round-trip rejected: %v", err)
	}
}

func TestRecorderDedupAndPending(t *testing.T) {
	rec := NewRecorder()
	res := &engine.BatchResult{Outcomes: []engine.TxOutcome{
		{Seq: 0, TxName: "a", Class: profile.ClassIT, WriteSet: acc("x", "v1")},
		{Seq: 1, TxName: "b", Class: profile.ClassIT, Pending: true},
	}}
	rec.Observe("r1", 7, "batch-1", nil, res)
	rec.Observe("r2", 7, "batch-1", nil, res) // duplicate from another replica
	if got := rec.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1 (dedup by batch ID, pending skipped)", got)
	}
	ops := rec.Ops()
	if ops[0].ID != "batch-1/0" || ops[0].Index != 7 || ops[0].Round != 0 {
		t.Fatalf("unexpected op: %+v", ops[0])
	}
	if err := rec.Check(nil); err != nil {
		t.Fatalf("recorded history rejected: %v", err)
	}
}

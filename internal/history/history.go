// Package history records the read/write footprints of committed
// transactions from a running cluster and checks the recorded history for
// serializability.
//
// The recorder taps the replica apply path (replica.ClusterConfig.OnApply):
// every replica reports every applied batch, and the recorder deduplicates
// by batch ID — replicas are deterministic, so any one replica's report of a
// batch is as good as another's. Footprints come from the engine's
// RecordFootprints mode: per committed transaction, the first read of each
// key (a value fingerprint observed in committed state) and the final write
// per key.
//
// The checker exploits the known commit order instead of searching over
// permutations: a deterministic database promises equivalence to one
// specific serial order, so the checker replays that order and verifies
// every read, and independently builds the direct serialization graph
// (WR/WW/RW edges) and searches it for cycles. See Check.
package history

import (
	"fmt"
	"sort"
	"sync"

	"prognosticator/internal/engine"
	"prognosticator/internal/locktable"
	"prognosticator/internal/profile"
)

// Op is one committed transaction in the recorded history.
type Op struct {
	// ID identifies the op for error reporting: "<batchID>/<seq>".
	ID string
	// Index is the raft apply index of the containing batch: the coarse
	// commit order.
	Index uint64
	// Seq is the transaction's position in the agreed total order.
	Seq uint64
	// Name is the transaction name (diagnostics only).
	Name string
	// Class is the paper's taxonomy (ROT/IT/DT); it determines the
	// transaction's serialization point within the batch.
	Class profile.Class
	// Round is the batch-internal commit round: 0 for transactions that
	// committed on first execution, r for transactions re-executed after r
	// aborted attempts. Equal to TxOutcome.Aborts.
	Round int
	// Reads and Writes are the recorded footprints (engine.Access values:
	// key plus value fingerprint; empty fingerprint = absent/deleted).
	Reads  []engine.Access
	Writes []engine.Access
}

// rank orders ops within one batch. ROTs run against the beginning-of-batch
// snapshot, so they serialize first. Round-0 updates are enqueued into the
// lock table DTs-before-ITs and conflicting transactions are granted in
// enqueue order, so the round-0 serial order is DTs (by seq) then ITs (by
// seq). Each retry round re-enqueues its transactions in seq order and runs
// after all earlier rounds' commits.
func (o Op) rank() int {
	switch {
	case o.Class == profile.ClassROT:
		return 0
	case o.Round == 0 && o.Class == profile.ClassDT:
		return 1
	default:
		return 2 + o.Round
	}
}

// sortEffective returns the ops in the engine's effective serial order:
// (apply index, batch-internal rank, seq).
func sortEffective(ops []Op) []Op {
	out := append([]Op(nil), ops...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Index != b.Index {
			return a.Index < b.Index
		}
		if ar, br := a.rank(), b.rank(); ar != br {
			return ar < br
		}
		return a.Seq < b.Seq
	})
	return out
}

// Recorder accumulates ops from replica apply callbacks. Safe for
// concurrent use; its Observe method matches replica.ClusterConfig.OnApply.
type Recorder struct {
	mu     sync.Mutex
	seen   map[string]bool
	ops    []Op
	traces map[uint64][]locktable.Record
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{seen: map[string]bool{}, traces: map[uint64][]locktable.Record{}}
}

// Observe records one applied batch. Every replica reports every batch it
// applies; only the first report of a batch ID is kept. Pending outcomes
// (carry-over transactions that did not commit in this batch) are skipped.
func (r *Recorder) Observe(replicaID string, index uint64, batchID string, reqs []engine.Request, res *engine.BatchResult) {
	_ = replicaID
	_ = reqs
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seen[batchID] {
		return
	}
	r.seen[batchID] = true
	if len(res.LockTrace) > 0 {
		// Engines running with Config.TraceLocks report the batch's lock
		// grant/release records; kept per apply index for CheckTraced. Any
		// replica's report will do: per-key GRANT order is deterministic
		// (FIFO), and the checker ignores the timing-dependent releases.
		r.traces[index] = res.LockTrace
	}
	for i := range res.Outcomes {
		o := &res.Outcomes[i]
		if o.Pending {
			continue
		}
		r.ops = append(r.ops, Op{
			ID:     fmt.Sprintf("%s/%d", batchID, o.Seq),
			Index:  index,
			Seq:    o.Seq,
			Name:   o.TxName,
			Class:  o.Class,
			Round:  o.Aborts,
			Reads:  o.ReadSet,
			Writes: o.WriteSet,
		})
	}
}

// Len returns the number of recorded ops.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops)
}

// Ops returns a copy of the recorded ops in observation order.
func (r *Recorder) Ops() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Op(nil), r.ops...)
}

// Check verifies the recorded history; see the package-level Check.
func (r *Recorder) Check(initial map[string]string) error {
	return Check(r.Ops(), initial)
}

// Traces returns a copy of the recorded per-batch lock traces.
func (r *Recorder) Traces() map[uint64][]locktable.Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[uint64][]locktable.Record, len(r.traces))
	for k, v := range r.traces {
		out[k] = v
	}
	return out
}

// CheckTraced verifies the recorded history against the recorded lock
// traces; see the package-level CheckTraced.
func (r *Recorder) CheckTraced(initial map[string]string) error {
	return CheckTraced(r.Ops(), r.Traces(), initial)
}

package history

import (
	"fmt"
	"strings"
	"testing"

	"prognosticator/internal/engine"
	"prognosticator/internal/lang"
	"prognosticator/internal/locktable"
	"prognosticator/internal/store"
	"prognosticator/internal/value"
)

// blindRegistry defines a single blind-write transaction: no reads, one
// unconditional overwrite. Blind writes are the blind spot of the untraced
// checker — without reads there is nothing to be fractured or stale, and
// WW edges are inferred FROM the assumed order, so any per-key write order
// looks consistent.
func blindRegistry(t testing.TB) *engine.Registry {
	t.Helper()
	schema := lang.NewSchema(lang.TableSpec{Name: "ACC", KeyArity: 1})
	set := &lang.Program{
		Name: "set",
		Params: []lang.Param{
			lang.IntParam("k", 0, 7),
			lang.IntParam("v", 0, 1000),
		},
		Body: []lang.Stmt{
			lang.PutS("ACC", lang.Key(lang.P("k")), lang.RecE(lang.F("bal", lang.P("v")))),
		},
	}
	reg, err := engine.NewRegistry(schema, set)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// runBlindBatch executes one batch of three conflicting blind writes to the
// same key and converts the result into a recorded history plus lock trace.
func runBlindBatch(t *testing.T, lifo bool) ([]Op, map[uint64][]locktable.Record, int64) {
	t.Helper()
	reg := blindRegistry(t)
	st := store.New()
	e := engine.New(reg, st, engine.Config{Workers: 4, RecordFootprints: true, TraceLocks: true})
	e.LockTable().SetUnsafeLIFOGrants(lifo)

	batch := []engine.Request{
		{Seq: 1, TxName: "set", Inputs: map[string]value.Value{"k": value.Int(0), "v": value.Int(101)}},
		{Seq: 2, TxName: "set", Inputs: map[string]value.Value{"k": value.Int(0), "v": value.Int(102)}},
		{Seq: 3, TxName: "set", Inputs: map[string]value.Value{"k": value.Int(0), "v": value.Int(103)}},
	}
	res, err := e.ExecuteBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LockTrace) == 0 {
		t.Fatal("TraceLocks produced no lock trace")
	}

	ops := make([]Op, 0, len(res.Outcomes))
	for i := range res.Outcomes {
		o := &res.Outcomes[i]
		ops = append(ops, Op{
			ID:     fmt.Sprintf("b1/%d", o.Seq),
			Index:  1,
			Seq:    o.Seq,
			Name:   o.TxName,
			Class:  o.Class,
			Round:  o.Aborts,
			Reads:  o.ReadSet,
			Writes: o.WriteSet,
		})
	}
	rec, ok := st.Get(st.Epoch(), value.NewKey("ACC", value.Int(0)))
	if !ok {
		t.Fatal("key not written")
	}
	final, _ := rec.Field("bal")
	return ops, map[uint64][]locktable.Record{1: res.LockTrace}, final.MustInt()
}

// TestCheckTracedCatchesLIFOGrants is the mutation-style negative test for
// the serializability oracle: a deliberately planted lock-table ordering
// bug (LIFO grants instead of FIFO) makes three conflicting blind writes
// commit in the order 1,3,2 — so the replica's final state disagrees with
// the agreed order, the exact failure a deterministic database must never
// exhibit. The untraced checker accepts the corrupted history (blind writes
// give it nothing to detect with); the lock-grant-traced checker must
// reject it as a DSG cycle.
func TestCheckTracedCatchesLIFOGrants(t *testing.T) {
	// Healthy FIFO table: both checkers accept, final state is seq 3's.
	ops, traces, final := runBlindBatch(t, false)
	if err := Check(ops, nil); err != nil {
		t.Fatalf("untraced checker rejected a correct run: %v", err)
	}
	if err := CheckTraced(ops, traces, nil); err != nil {
		t.Fatalf("traced checker rejected a correct run: %v", err)
	}
	if final != 103 {
		t.Fatalf("correct run final value = %d, want the agreed-last write 103", final)
	}

	// Planted bug: the untraced checker MUST miss it (that is what makes
	// the traced variant worth building), the traced one MUST flag it.
	ops, traces, final = runBlindBatch(t, true)
	if err := Check(ops, nil); err != nil {
		t.Fatalf("untraced checker unexpectedly caught the LIFO bug (test premise broken): %v", err)
	}
	err := CheckTraced(ops, traces, nil)
	if err == nil {
		t.Fatal("traced checker accepted a history executed under LIFO lock grants")
	}
	if !strings.Contains(err.Error(), "DSG cycle") {
		t.Fatalf("traced checker rejected for the wrong reason: %v", err)
	}
	if final != 102 {
		t.Fatalf("LIFO run final value = %d, want 102 (seq 2 committed last under reversed grants)", final)
	}
}

// TestCheckTracedConsistentWithUntraced: on a workload with reads, a trace
// in agreed order must not change the verdict.
func TestCheckTracedEmptyTrace(t *testing.T) {
	// Ops without any lock trace fall back to agreed (Seq) order: the
	// traced checker degenerates to the untraced one.
	ops := []Op{
		{ID: "a", Index: 1, Seq: 1, Writes: []engine.Access{{Key: "x", Val: "v1"}}},
		{ID: "b", Index: 1, Seq: 2, Reads: []engine.Access{{Key: "x", Val: "v1"}},
			Writes: []engine.Access{{Key: "x", Val: "v2"}}},
	}
	if err := CheckTraced(ops, nil, nil); err != nil {
		t.Fatalf("traced checker with no traces rejected a serial history: %v", err)
	}
}

package history

import (
	"fmt"
	"sort"

	"prognosticator/internal/locktable"
)

// CheckTraced verifies the recorded history like Check, but instead of
// TRUSTING that the engine executed conflicting transactions in the agreed
// order, it reconstructs the effective serial order from the lock table's
// own grant records (engine Config.TraceLocks) and cross-checks the two.
//
// traces maps each batch's apply index to its lock grant/release records.
// Per batch and execution round, conflicting transactions are ordered by
// their per-key lock-GRANT order — what the lock table actually did —
// topologically sorted with Seq as the tie-break for unordered pairs;
// transactions with no trace records (no keys, or sequential fallback
// execution) fall back to Seq order. Only grant records are used: per-key
// grant order is deterministic under FIFO granting, while release order
// depends on worker timing.
//
// The serialization graph is then built over the traced order (so read
// conformance is judged against what actually ran first), and for every
// conflicting pair an additional AGREED-order edge (lower effective
// position -> higher) is added. A lock manager that granted conflicting
// locks out of agreed order — a queue-jump, LIFO grants, a lost FIFO
// invariant — shows up as a traced edge opposing an agreed edge: a DSG
// cycle. The untraced Check cannot see this class of bug on blind-write
// workloads, where no read ever witnesses the inverted order.
func CheckTraced(ops []Op, traces map[uint64][]locktable.Record, initial map[string]string) error {
	sorted, err := tracedOrder(ops, traces)
	if err != nil {
		return err
	}
	adj, fractured, stale := buildGraph(sorted, initial)
	addAgreedEdges(sorted, adj)
	if cyc := findCycle(adj); cyc != nil {
		return fmt.Errorf("history: traced serializability violation: DSG cycle %s (lock-grant order contradicts the agreed order)",
			cycleIDs(sorted, cyc))
	}
	if fractured != nil {
		return fractured
	}
	return stale
}

// tracedOrder rebuilds the effective serial order from lock-grant records:
// batches by apply index; within a batch, ROTs (by seq) then execution
// rounds ascending, each round's commits in traced grant order.
func tracedOrder(ops []Op, traces map[uint64][]locktable.Record) ([]Op, error) {
	byIndex := map[uint64][]Op{}
	var indexes []uint64
	for _, o := range ops {
		if _, ok := byIndex[o.Index]; !ok {
			indexes = append(indexes, o.Index)
		}
		byIndex[o.Index] = append(byIndex[o.Index], o)
	}
	sort.Slice(indexes, func(i, j int) bool { return indexes[i] < indexes[j] })

	var sorted []Op
	for _, idx := range indexes {
		var rots []Op
		rounds := map[int][]Op{}
		maxRound := 0
		for _, o := range byIndex[idx] {
			if o.rank() == 0 {
				rots = append(rots, o)
				continue
			}
			rounds[o.Round] = append(rounds[o.Round], o)
			if o.Round > maxRound {
				maxRound = o.Round
			}
		}
		sort.SliceStable(rots, func(i, j int) bool { return rots[i].Seq < rots[j].Seq })
		sorted = append(sorted, rots...)
		for r := 0; r <= maxRound; r++ {
			group := rounds[r]
			if len(group) == 0 {
				continue
			}
			var recs []locktable.Record
			for _, rec := range traces[idx] {
				if rec.Round == r && rec.Grant {
					recs = append(recs, rec)
				}
			}
			ordered, err := tracedGroupOrder(group, recs)
			if err != nil {
				return nil, fmt.Errorf("history: batch index %d round %d: %w", idx, r, err)
			}
			sorted = append(sorted, ordered...)
		}
	}
	return sorted, nil
}

// tracedGroupOrder topologically sorts one round's committed transactions
// by their per-key lock-grant order, breaking ties (and ordering untraced
// transactions) by Seq. recs must be this round's GRANT records; records
// for transactions outside the group (aborted attempts whose commit landed
// in a later round) are ignored.
func tracedGroupOrder(group []Op, recs []locktable.Record) ([]Op, error) {
	bySeq := map[uint64]int{}
	for i, o := range group {
		bySeq[o.Seq] = i
	}
	n := len(group)
	adj := make([][]int, n)
	indeg := make([]int, n)
	seen := map[[2]int]bool{}
	addEdge := func(a, b int) {
		if a == b || seen[[2]int{a, b}] {
			return
		}
		seen[[2]int{a, b}] = true
		adj[a] = append(adj[a], b)
		indeg[b]++
	}

	perKey := map[string][]locktable.Record{}
	for _, r := range recs {
		if _, ok := bySeq[r.Seq]; !ok {
			continue
		}
		perKey[r.Key] = append(perKey[r.Key], r)
	}
	for _, krecs := range perKey {
		sort.Slice(krecs, func(i, j int) bool { return krecs[i].Pos < krecs[j].Pos })
		for i := 0; i < len(krecs); i++ {
			for j := i + 1; j < len(krecs); j++ {
				if !krecs[i].Write && !krecs[j].Write {
					continue // read grants commute
				}
				addEdge(bySeq[krecs[i].Seq], bySeq[krecs[j].Seq])
			}
		}
	}

	// Kahn's algorithm, always emitting the lowest-Seq available node so
	// grant-unordered transactions keep the agreed order.
	out := make([]Op, 0, n)
	done := make([]bool, n)
	for len(out) < n {
		pick := -1
		for i := 0; i < n; i++ {
			if !done[i] && indeg[i] == 0 && (pick < 0 || group[i].Seq < group[pick].Seq) {
				pick = i
			}
		}
		if pick < 0 {
			return nil, fmt.Errorf("lock-grant order is itself cyclic across keys")
		}
		done[pick] = true
		out = append(out, group[pick])
		for _, b := range adj[pick] {
			indeg[b]--
		}
	}
	return out, nil
}

// addAgreedEdges adds, for every pair of ops conflicting on some key (at
// least one side writes it), an edge from the earlier op in the AGREED
// effective order to the later — determinism's promised serial order. In a
// correct run these agree with the graph's traced WR/WW/RW edges; when the
// lock table ran conflicts out of order, an agreed edge opposes a traced
// edge and closes a cycle.
func addAgreedEdges(sorted []Op, adj [][]int) {
	type keyUse struct {
		pos   int
		write bool
	}
	uses := map[string][]keyUse{}
	for i := range sorted {
		mode := map[string]bool{}
		for _, r := range sorted[i].Reads {
			if _, ok := mode[r.Key]; !ok {
				mode[r.Key] = false
			}
		}
		for _, w := range sorted[i].Writes {
			mode[w.Key] = true
		}
		for k, write := range mode {
			uses[k] = append(uses[k], keyUse{pos: i, write: write})
		}
	}
	for _, us := range uses {
		for a := 0; a < len(us); a++ {
			for b := a + 1; b < len(us); b++ {
				if !us[a].write && !us[b].write {
					continue
				}
				i, j := us[a].pos, us[b].pos
				switch {
				case agreedLess(sorted[i], sorted[j]):
					adj[i] = append(adj[i], j)
				case agreedLess(sorted[j], sorted[i]):
					adj[j] = append(adj[j], i)
				}
			}
		}
	}
}

// agreedLess is the sortEffective comparator: (apply index, batch-internal
// rank, seq).
func agreedLess(a, b Op) bool {
	if a.Index != b.Index {
		return a.Index < b.Index
	}
	if ar, br := a.rank(), b.rank(); ar != br {
		return ar < br
	}
	return a.Seq < b.Seq
}

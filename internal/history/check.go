package history

import (
	"fmt"
	"sort"
	"strings"
)

// version is one committed value of a key: the index (into the effective
// order) of the op that wrote it, or -1 for the initial state.
type version struct {
	op  int
	val string
}

// Check verifies that the recorded history is serializable AND equivalent
// to the known commit order — the full guarantee of a deterministic
// database. initial maps keys to their fingerprints before the first
// recorded op; keys absent from it start as not-found (fingerprint ""),
// which is exact when all data is created through recorded transactions.
//
// Two properties are verified over the effective serial order (see
// sortEffective):
//
//  1. Read conformance: every read observed the value written by the
//     latest preceding write of that key (or the initial state). A read of
//     an older version is a "stale read" — the history may still be
//     serializable in some other order, but it breaks determinism's
//     promise that the agreed order IS the equivalent serial order.
//  2. Acyclicity: the direct serialization graph — WR (read-from), WW
//     (version order) and RW (anti-dependency) edges, with each read
//     attributed to the nearest preceding write producing its fingerprint —
//     has no cycle. A cycle means no serial order at all explains the
//     history (lost update, write skew, …).
//
// A read whose fingerprint matches no preceding write at all is reported
// as a "fractured read" (it observed a value that was never committed).
// Fractured reads are reported first, then cycles, then stale reads; nil
// means the history is exactly serializable in commit order.
func Check(ops []Op, initial map[string]string) error {
	sorted := sortEffective(ops)
	adj, fractured, stale := buildGraph(sorted, initial)
	if fractured != nil {
		return fractured
	}
	if cyc := findCycle(adj); cyc != nil {
		return fmt.Errorf("history: serializability violation: dependency cycle %s", cycleIDs(sorted, cyc))
	}
	return stale
}

// buildGraph builds the direct serialization graph of the history under the
// GIVEN order: per-key version lists, read attribution (nearest preceding
// matching fingerprint), and WR/WW/RW edges. It returns the adjacency list
// plus the first fractured-read and stale-read findings (nil when clean);
// fractured reads contribute no edges but do not stop graph construction,
// so callers may still run cycle detection on the rest.
func buildGraph(sorted []Op, initial map[string]string) (adj [][]int, fractured, stale error) {
	// Each op's write set holds at most one (final) write per key, so
	// versions are strictly ordered by writer position.
	versions := map[string][]version{}
	verOf := func(k string) []version {
		if vs, ok := versions[k]; ok {
			return vs
		}
		vs := []version{{op: -1, val: initial[k]}}
		versions[k] = vs
		return vs
	}
	for i := range sorted {
		for _, w := range sorted[i].Writes {
			versions[w.Key] = append(verOf(w.Key), version{op: i, val: w.Val})
		}
	}

	adj = make([][]int, len(sorted))
	addEdge := func(from, to int) {
		if from != to {
			adj[from] = append(adj[from], to)
		}
	}

	for i := range sorted {
		for _, r := range sorted[i].Reads {
			vs := verOf(r.Key)
			// Latest version committed before op i (index 0 is the initial
			// version with op -1, so j >= 0 always).
			j := sort.Search(len(vs), func(j int) bool { return vs[j].op >= i }) - 1
			// Attribute the read: nearest preceding version with a matching
			// fingerprint (the charitable choice when values repeat).
			m := j
			for m >= 0 && vs[m].val != r.Val {
				m--
			}
			if m < 0 {
				if fractured == nil {
					fractured = fmt.Errorf("history: fractured read: op %s read %s=%q, which no preceding write produced",
						sorted[i].ID, r.Key, r.Val)
				}
				continue
			}
			if m != j && stale == nil {
				stale = fmt.Errorf("history: stale read: op %s read %s from op %s, but the latest preceding write is op %s",
					sorted[i].ID, r.Key, opID(sorted, vs[m].op), opID(sorted, vs[j].op))
			}
			if vs[m].op >= 0 {
				addEdge(vs[m].op, i) // WR: read-from
			}
			// RW anti-dependency: the read of version m precedes the write
			// of the next version (skipping the op's own overwrite).
			for n := m + 1; n < len(vs); n++ {
				if vs[n].op != i {
					addEdge(i, vs[n].op)
					break
				}
			}
		}
	}
	// WW: version order per key.
	for _, vs := range versions {
		prev := -1
		for _, v := range vs {
			if v.op < 0 {
				continue
			}
			if prev >= 0 {
				addEdge(prev, v.op)
			}
			prev = v.op
		}
	}
	return adj, fractured, stale
}

// cycleIDs renders a findCycle result as "a -> b -> c".
func cycleIDs(sorted []Op, cyc []int) string {
	ids := make([]string, len(cyc))
	for i, n := range cyc {
		ids[i] = sorted[n].ID
	}
	return strings.Join(ids, " -> ")
}

func opID(sorted []Op, i int) string {
	if i < 0 {
		return "<initial>"
	}
	return sorted[i].ID
}

// findCycle runs an iterative three-color DFS and returns the node indices
// of one cycle (in edge order), or nil if the graph is acyclic.
func findCycle(adj [][]int) []int {
	const (
		white = 0 // unvisited
		gray  = 1 // on the current DFS path
		black = 2 // fully explored
	)
	color := make([]int, len(adj))
	parent := make([]int, len(adj))
	for root := range adj {
		if color[root] != white {
			continue
		}
		parent[root] = -1
		// Stack frames: (node, next edge index to explore).
		type frame struct{ node, edge int }
		stack := []frame{{root, 0}}
		color[root] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.edge < len(adj[f.node]) {
				next := adj[f.node][f.edge]
				f.edge++
				switch color[next] {
				case white:
					color[next] = gray
					parent[next] = f.node
					stack = append(stack, frame{next, 0})
				case gray:
					// Back edge: walk parents from f.node back to next.
					cyc := []int{next}
					for n := f.node; n != next; n = parent[n] {
						cyc = append(cyc, n)
					}
					// Reverse into edge order: next -> ... -> f.node.
					for l, r := 1, len(cyc)-1; l < r; l, r = l+1, r-1 {
						cyc[l], cyc[r] = cyc[r], cyc[l]
					}
					return cyc
				}
			} else {
				color[f.node] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

package taint

import (
	"testing"

	"prognosticator/internal/lang"
	"prognosticator/internal/value"
)

func TestKeyVariablesAreRelevant(t *testing.T) {
	p := &lang.Program{
		Name: "t",
		Params: []lang.Param{
			lang.IntParam("k", 0, 9),
			lang.IntParam("amount", 0, 9),
		},
		Body: []lang.Stmt{
			lang.GetS("rec", "ACC", lang.P("k")),
			lang.SetF("rec", "bal", lang.Add(lang.Fld(lang.L("rec"), "bal"), lang.P("amount"))),
			lang.PutS("ACC", lang.Key(lang.P("k")), lang.L("rec")),
		},
	}
	r := Analyze(p)
	if !r.Relevant("k") {
		t.Fatal("key parameter must be relevant")
	}
	if r.Relevant("amount") {
		t.Fatal("value-only parameter must be irrelevant")
	}
}

// This is the newOrder shape from the paper's Algorithm 2: the branch on
// item.quantity only affects the value written, so item quantity inputs are
// irrelevant while the id list and count are relevant.
func TestNewOrderShape(t *testing.T) {
	p := &lang.Program{
		Name: "newOrder",
		Params: []lang.Param{
			lang.IntParam("districtId", 1, 10),
			lang.IntParam("olCnt", 5, 15),
			lang.ListParam("olIds", lang.IntParam("", 1, 100), 15, "olCnt"),
			lang.ListParam("olQty", lang.IntParam("", 1, 10), 15, "olCnt"),
		},
		Body: []lang.Stmt{
			lang.GetS("dist", "DIST", lang.P("districtId")),
			lang.PutS("DIST", lang.Key(lang.P("districtId")), lang.L("dist")),
			lang.ForS("i", lang.C(0), lang.P("olCnt"),
				lang.Set("itemId", lang.Idx(lang.P("olIds"), lang.L("i"))),
				lang.GetS("item", "STOCK", lang.L("itemId")),
				lang.IfElse(lang.Le(lang.Fld(lang.L("item"), "qty"), lang.Idx(lang.P("olQty"), lang.L("i"))),
					[]lang.Stmt{lang.SetF("item", "qty",
						lang.Sub(lang.Fld(lang.L("item"), "qty"), lang.Idx(lang.P("olQty"), lang.L("i"))))},
					[]lang.Stmt{lang.SetF("item", "qty",
						lang.Add(lang.Sub(lang.Fld(lang.L("item"), "qty"), lang.Idx(lang.P("olQty"), lang.L("i"))), lang.C(91)))},
				),
				lang.PutS("STOCK", lang.Key(lang.L("itemId")), lang.L("item")),
			),
		},
	}
	r := Analyze(p)
	for _, want := range []string{"districtId", "olCnt", "olIds", "itemId", "i"} {
		if !r.Relevant(want) {
			t.Errorf("%q must be relevant", want)
		}
	}
	// olQty only affects written values; item holds the stock record whose
	// fields are only written back, never used as a key.
	for _, wantNot := range []string{"olQty", "item"} {
		if r.Relevant(wantNot) {
			t.Errorf("%q must be irrelevant", wantNot)
		}
	}
}

func TestExplicitFlowChain(t *testing.T) {
	// c flows to b flows to a, and a is a key ⇒ all relevant.
	p := &lang.Program{
		Name:   "chain",
		Params: []lang.Param{lang.IntParam("c", 0, 9), lang.IntParam("noise", 0, 9)},
		Body: []lang.Stmt{
			lang.Set("b", lang.Add(lang.P("c"), lang.C(1))),
			lang.Set("a", lang.Mul(lang.L("b"), lang.C(2))),
			lang.Set("junk", lang.P("noise")),
			lang.GetS("x", "T", lang.L("a")),
		},
	}
	r := Analyze(p)
	for _, want := range []string{"a", "b", "c"} {
		if !r.Relevant(want) {
			t.Errorf("%q must be relevant via explicit flow", want)
		}
	}
	if r.Relevant("junk") || r.Relevant("noise") {
		t.Error("unrelated variables must stay irrelevant")
	}
}

func TestImplicitFlowThroughBranch(t *testing.T) {
	// The branch condition decides WHICH key is written ⇒ cond var relevant.
	p := &lang.Program{
		Name:   "branchy",
		Params: []lang.Param{lang.IntParam("sel", 0, 1), lang.IntParam("pay", 0, 9)},
		Body: []lang.Stmt{
			lang.IfElse(lang.Eq(lang.P("sel"), lang.C(0)),
				[]lang.Stmt{lang.PutS("T", lang.Key(lang.C(1)), lang.RecE(lang.F("v", lang.P("pay"))))},
				[]lang.Stmt{lang.PutS("T", lang.Key(lang.C(2)), lang.RecE(lang.F("v", lang.P("pay"))))},
			),
		},
	}
	r := Analyze(p)
	if !r.Relevant("sel") {
		t.Fatal("branch selector guarding PUTs must be relevant (implicit flow)")
	}
	if r.Relevant("pay") {
		t.Fatal("written value must be irrelevant")
	}
}

func TestImplicitFlowThroughRelevantAssignment(t *testing.T) {
	// The branch assigns a variable later used as a key.
	p := &lang.Program{
		Name:   "condassign",
		Params: []lang.Param{lang.IntParam("sel", 0, 1)},
		Body: []lang.Stmt{
			lang.Set("k", lang.C(1)),
			lang.IfS(lang.Eq(lang.P("sel"), lang.C(1)),
				lang.Set("k", lang.C(2))),
			lang.GetS("x", "T", lang.L("k")),
		},
	}
	r := Analyze(p)
	if !r.Relevant("sel") {
		t.Fatal("condition guarding a key-variable assignment must be relevant")
	}
	if !r.Relevant("k") {
		t.Fatal("key variable must be relevant")
	}
}

func TestBranchWithoutKeyEffectIrrelevant(t *testing.T) {
	p := &lang.Program{
		Name:   "pure",
		Params: []lang.Param{lang.IntParam("sel", 0, 1)},
		Body: []lang.Stmt{
			lang.Set("v", lang.C(0)),
			lang.IfS(lang.Eq(lang.P("sel"), lang.C(1)),
				lang.Set("v", lang.C(9))),
			lang.PutS("T", lang.Key(lang.C(1)), lang.RecE(lang.F("v", lang.L("v")))),
		},
	}
	r := Analyze(p)
	if r.Relevant("sel") {
		t.Fatal("branch only affecting written values must be irrelevant")
	}
	if r.Relevant("v") {
		t.Fatal("written-value variable must be irrelevant")
	}
}

func TestLoopBoundRelevantWhenBodyAccessesStore(t *testing.T) {
	p := &lang.Program{
		Name:   "loopy",
		Params: []lang.Param{lang.IntParam("n", 1, 5), lang.IntParam("m", 1, 5)},
		Body: []lang.Stmt{
			lang.ForS("i", lang.C(0), lang.P("n"),
				lang.PutS("T", lang.Key(lang.L("i")), lang.RecE(lang.F("v", lang.C(0))))),
			lang.Set("acc", lang.C(0)),
			lang.ForS("j", lang.C(0), lang.P("m"),
				lang.Set("acc", lang.Add(lang.L("acc"), lang.L("j")))),
			lang.EmitS("acc", lang.L("acc")),
		},
	}
	r := Analyze(p)
	if !r.Relevant("n") {
		t.Fatal("loop bound controlling PUT count must be relevant")
	}
	if r.Relevant("m") {
		t.Fatal("loop bound of a pure accumulation must be irrelevant")
	}
}

func TestPivotChainRelevance(t *testing.T) {
	// y = GET(k); GET(y.next): y is relevant because its field forms a key.
	p := &lang.Program{
		Name:   "pivot",
		Params: []lang.Param{lang.IntParam("k", 0, 9)},
		Body: []lang.Stmt{
			lang.GetS("y", "T", lang.P("k")),
			lang.GetS("z", "U", lang.Fld(lang.L("y"), "next")),
			lang.EmitS("out", lang.Fld(lang.L("z"), "val")),
		},
	}
	r := Analyze(p)
	if !r.Relevant("y") {
		t.Fatal("pivot-carrying local must be relevant")
	}
	if r.Relevant("z") {
		t.Fatal("final read result must be irrelevant")
	}
}

func TestFixpointNeedsMultiplePasses(t *testing.T) {
	// Relevance must propagate backwards across statement order:
	// a is assigned BEFORE the statement that makes b relevant.
	p := &lang.Program{
		Name:   "multipass",
		Params: []lang.Param{lang.IntParam("src", 0, 9)},
		Body: []lang.Stmt{
			lang.Set("a", lang.P("src")),
			lang.Set("b", lang.L("a")),
			lang.Set("c", lang.L("b")),
			lang.GetS("x", "T", lang.L("c")),
		},
	}
	r := Analyze(p)
	for _, want := range []string{"a", "b", "c", "src"} {
		if !r.Relevant(want) {
			t.Errorf("%q must be relevant after fixpoint", want)
		}
	}
}

func TestDelKeyRelevant(t *testing.T) {
	p := &lang.Program{
		Name:   "del",
		Params: []lang.Param{lang.IntParam("k", 0, 9)},
		Body:   []lang.Stmt{lang.DelS("T", lang.P("k"))},
	}
	if !Analyze(p).Relevant("k") {
		t.Fatal("DEL key must be relevant")
	}
}

func TestRelevantNames(t *testing.T) {
	p := &lang.Program{
		Name:   "names",
		Params: []lang.Param{lang.IntParam("k", 0, 9)},
		Body:   []lang.Stmt{lang.GetS("x", "T", lang.P("k"))},
	}
	names := Analyze(p).RelevantNames()
	if len(names) != 1 || names[0] != "k" {
		t.Fatalf("RelevantNames = %v", names)
	}
}

func TestRelevantNamesSorted(t *testing.T) {
	// Several relevant names: the result must come back sorted regardless of
	// map iteration order.
	p := &lang.Program{
		Name: "sorted",
		Params: []lang.Param{
			lang.IntParam("z", 0, 9),
			lang.IntParam("a", 0, 9),
			lang.IntParam("m", 0, 9),
		},
		Body: []lang.Stmt{
			lang.GetS("x", "T", lang.P("z")),
			lang.GetS("y", "T", lang.P("a")),
			lang.GetS("w", "T", lang.P("m")),
		},
	}
	want := []string{"a", "m", "z"}
	for i := 0; i < 10; i++ {
		got := Analyze(p).RelevantNames()
		if len(got) != len(want) {
			t.Fatalf("RelevantNames = %v, want %v", got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("RelevantNames = %v, want %v", got, want)
			}
		}
	}
}

func TestSampleValue(t *testing.T) {
	if got := SampleValue(lang.IntParam("x", 5, 15)); got.MustInt() != 5 {
		t.Fatalf("int sample = %v", got)
	}
	if got := SampleValue(lang.StrParam("s")); got.MustString() != "" {
		t.Fatalf("string sample = %v", got)
	}
	lst := SampleValue(lang.ListParam("xs", lang.IntParam("", 3, 9), 4, ""))
	if lst.Len() != 4 {
		t.Fatalf("list sample len = %d", lst.Len())
	}
	e, _ := lst.Index(0)
	if e.MustInt() != 3 {
		t.Fatalf("list elem sample = %v", e)
	}
	b := SampleValue(lang.Param{Name: "b", Kind: value.KindBool})
	if b.MustBool() {
		t.Fatalf("bool sample = %v", b)
	}
}

// Package taint implements the static information-flow analysis the paper
// performs with Soot (§III-B, "Avoiding irrelevant paths"): it identifies
// the *relevant* variables — those with explicit (assignment) or implicit
// (control-flow) information flow into the identity of any data item read or
// written — so the symbolic executor can mark every other variable as
// concrete (concolic execution), collapsing branches that cannot affect the
// read-/write-set.
package taint

import (
	"sort"

	"prognosticator/internal/lang"
	"prognosticator/internal/value"
)

// Result reports the relevant-variable set of one program.
type Result struct {
	relevant map[string]bool
}

// Relevant reports whether the named parameter or local can influence the
// identity of any key accessed by the program.
func (r *Result) Relevant(name string) bool { return r.relevant[name] }

// RelevantNames returns all relevant names in sorted order.
func (r *Result) RelevantNames() []string {
	out := make([]string, 0, len(r.relevant))
	for n := range r.relevant {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Analyze computes the relevant-variable set of p with a backward fixed
// point. The analysis is variable-granular (field-insensitive) and
// conservative: everything that might flow into a key is relevant.
//
// Rules, applied until no change:
//   - seed: every variable appearing in a key expression of GET/PUT/DEL;
//   - explicit flow: if the destination of an assignment (or field store, or
//     GET result) is relevant, the variables of the assigned expression (or
//     GET key) are relevant;
//   - implicit flow: if a branch guards any store operation or any
//     assignment to a relevant variable, the variables of its condition are
//     relevant; similarly a loop whose body performs a store operation or a
//     relevant assignment makes its bound expressions relevant (the
//     iteration count decides how many items are accessed).
func Analyze(p *lang.Program) *Result {
	r := &Result{relevant: map[string]bool{}}
	for {
		if !r.pass(p.Body) {
			break
		}
	}
	return r
}

// pass walks the body once, returning true if the relevant set grew.
func (r *Result) pass(body []lang.Stmt) bool {
	changed := false
	for _, st := range body {
		if r.stmt(st) {
			changed = true
		}
	}
	return changed
}

func (r *Result) stmt(st lang.Stmt) bool {
	switch s := st.(type) {
	case lang.Assign:
		if r.relevant[s.Dst] {
			return r.markExpr(s.E)
		}
		return false
	case lang.SetField:
		if r.relevant[s.Dst] {
			return r.markExpr(s.E)
		}
		return false
	case lang.Get:
		changed := r.markKey(s.Key)
		// The GET result is a potential pivot: if it is relevant, the key
		// identifying it is already marked above; nothing further flows.
		return changed
	case lang.Put:
		// Only the key identity matters; the stored value does not flow
		// into any key by itself (that is the whole point of the
		// optimization: value-only variables are irrelevant).
		return r.markKey(s.Key)
	case lang.Del:
		return r.markKey(s.Key)
	case lang.If:
		changed := r.pass(s.Then)
		if r.pass(s.Else) {
			changed = true
		}
		if blockTouchesKeys(s.Then, r) || blockTouchesKeys(s.Else, r) {
			if r.markExpr(s.Cond) {
				changed = true
			}
		}
		return changed
	case lang.For:
		changed := r.pass(s.Body)
		if blockTouchesKeys(s.Body, r) {
			if r.markExpr(s.From) {
				changed = true
			}
			if r.markExpr(s.To) {
				changed = true
			}
		}
		return changed
	case lang.Emit:
		return false
	default:
		return false
	}
}

// BlockTouchesKeys reports whether the block contains any store operation
// or any assignment to a relevant variable — i.e. whether executing or
// skipping the block can change the RWS. The symbolic executor uses it to
// avoid forking at branches that provably cannot affect the profile even
// when their condition is symbolic (e.g. TPC-C's remote-warehouse counter
// update: the condition involves key variables, but both arms only touch
// written values).
func (r *Result) BlockTouchesKeys(body []lang.Stmt) bool {
	return blockTouchesKeys(body, r)
}

// blockTouchesKeys reports whether the block contains any store operation or
// any assignment to a currently-relevant variable — i.e. whether executing
// or skipping the block can change the RWS.
func blockTouchesKeys(body []lang.Stmt, r *Result) bool {
	for _, st := range body {
		switch s := st.(type) {
		case lang.Get, lang.Put, lang.Del:
			return true
		case lang.Assign:
			if r.relevant[s.Dst] {
				return true
			}
		case lang.SetField:
			if r.relevant[s.Dst] {
				return true
			}
		case lang.If:
			if blockTouchesKeys(s.Then, r) || blockTouchesKeys(s.Else, r) {
				return true
			}
		case lang.For:
			if blockTouchesKeys(s.Body, r) {
				return true
			}
		}
	}
	return false
}

func (r *Result) markKey(key []lang.Expr) bool {
	changed := false
	for _, e := range key {
		if r.markExpr(e) {
			changed = true
		}
	}
	return changed
}

// markExpr marks every variable mentioned by e as relevant, returning true
// if the set grew.
func (r *Result) markExpr(e lang.Expr) bool {
	switch x := e.(type) {
	case lang.Const:
		return false
	case lang.ParamRef:
		return r.mark(x.Name)
	case lang.LocalRef:
		return r.mark(x.Name)
	case lang.Bin:
		c1 := r.markExpr(x.L)
		c2 := r.markExpr(x.R)
		return c1 || c2
	case lang.Not:
		return r.markExpr(x.E)
	case lang.Field:
		return r.markExpr(x.E)
	case lang.Index:
		c1 := r.markExpr(x.E)
		c2 := r.markExpr(x.I)
		return c1 || c2
	case lang.Rec:
		changed := false
		for _, f := range x.Fields {
			if r.markExpr(f.E) {
				changed = true
			}
		}
		return changed
	default:
		return false
	}
}

func (r *Result) mark(name string) bool {
	if r.relevant[name] {
		return false
	}
	r.relevant[name] = true
	return true
}

// SampleValue returns a deterministic concrete value for an irrelevant
// parameter: the low bound for ints, an empty string, false, or a list of
// element samples at full capacity. The concrete choice cannot affect the
// RWS — that is exactly what irrelevance guarantees — so any fixed value is
// correct.
func SampleValue(p lang.Param) value.Value {
	switch p.Kind {
	case value.KindInt:
		return value.Int(p.Lo)
	case value.KindString:
		return value.Str("")
	case value.KindBool:
		return value.Bool(false)
	case value.KindList:
		elems := make([]value.Value, p.MaxLen)
		for i := range elems {
			if p.Elem != nil {
				elems[i] = SampleValue(*p.Elem)
			} else {
				elems[i] = value.Int(0)
			}
		}
		return value.List(elems...)
	default:
		return value.Int(0)
	}
}

package taint

import (
	"fmt"
	"sort"

	"prognosticator/internal/lang"
)

// Key-determinism classification (§III-C): for each store access, decide
// statically whether its key is *direct* — derivable from the transaction
// inputs alone — or *pivot-dependent* — its identity flows from a prior GET
// result. Together with traversal-pivot detection (does any branch that can
// change the RWS depend on a GET result?) this proves, per procedure,
// whether the direct part of the key-set can be predicted client-side
// without touching the store.
//
// The analysis is a forward flow-insensitive fixed point over the
// pivot-derived variable set, the dual of the relevant-variable analysis in
// this package: Analyze asks "what flows INTO keys", KeyDeterminism asks
// "what flows OUT OF store reads". Flow-insensitivity (one set for the whole
// procedure, no kill on reassignment) makes the result a sound
// over-approximation: a variable is only classified input-derived when no
// assignment anywhere can make it depend on store state.

// AccessOp names the store operation of an AccessClass.
type AccessOp string

// Store operations.
const (
	OpGet AccessOp = "GET"
	OpPut AccessOp = "PUT"
	OpDel AccessOp = "DEL"
)

// AccessClass is the per-access key-determinism verdict: one record per
// GET/PUT/DEL, with a per-key-part direct/pivot-dependent classification and,
// for pivot-dependent parts, the set of pivot-derived variables the part
// mentions (the proof witness).
type AccessClass struct {
	// Path is the structural statement path (e.g. "body[2].then[0]"); Pos
	// its source position (zero for builder-constructed programs).
	Path string
	Pos  lang.Pos

	Table string
	Op    AccessOp
	Write bool

	// PartDirect[i] reports whether key part i is derivable from the inputs
	// alone. PartVia[i] lists the pivot-derived variables part i mentions
	// (sorted; empty iff PartDirect[i]).
	PartDirect []bool
	PartVia    [][]string
}

// Direct reports whether every key part is input-derived.
func (a AccessClass) Direct() bool {
	for _, d := range a.PartDirect {
		if !d {
			return false
		}
	}
	return true
}

// Via returns the union of pivot-derived variables across all key parts,
// sorted.
func (a AccessClass) Via() []string {
	seen := map[string]bool{}
	var out []string
	for _, vs := range a.PartVia {
		for _, v := range vs {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Strings(out)
	return out
}

// KeyDet is the key-determinism analysis result for one program.
type KeyDet struct {
	// Accesses holds one record per store operation, in statement order.
	Accesses []AccessClass
	// PivotDerived is the set of variables whose value may depend on store
	// state (GET results and everything computed from them, including the
	// induction variables of loops with pivot-derived bounds).
	PivotDerived map[string]bool
	// TraversalPivot reports whether some branch or loop bound that can
	// change the RWS depends on a pivot-derived variable: the profile tree
	// then cannot be traversed from the inputs alone, and the direct subset
	// of the key-set is not predictable client-side.
	TraversalPivot bool
}

// DirectCount returns how many accesses are fully direct.
func (kd *KeyDet) DirectCount() int {
	n := 0
	for _, a := range kd.Accesses {
		if a.Direct() {
			n++
		}
	}
	return n
}

// PivotFreeTraversal reports whether the profile tree of this program can be
// walked with inputs alone: no RWS-relevant branch or loop bound depends on
// store state. When true, every access classified Direct here is predictable
// client-side (the §III-C optimization).
func (kd *KeyDet) PivotFreeTraversal() bool { return !kd.TraversalPivot }

// DirectTables returns the tables for which EVERY access in the program is
// direct, sorted. The symbolic executor cross-checks its per-access Direct
// marks against this set: a profile access with a pivot in its key, in a
// table this analysis proves all-direct, indicates an analysis bug.
func (kd *KeyDet) DirectTables() []string {
	direct := map[string]bool{}
	for _, a := range kd.Accesses {
		if prev, ok := direct[a.Table]; ok {
			direct[a.Table] = prev && a.Direct()
		} else {
			direct[a.Table] = a.Direct()
		}
	}
	var out []string
	for t, d := range direct {
		if d {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}

// KeyDeterminism classifies every store access of p.
func KeyDeterminism(p *lang.Program) *KeyDet {
	kd := &KeyDet{PivotDerived: map[string]bool{}}

	// Fixed point: GET results are pivot-derived; any assignment whose RHS
	// mentions a pivot-derived variable propagates (field stores taint the
	// whole record — the analysis is field-insensitive, like Analyze); a
	// loop with a pivot-derived bound taints its induction variable.
	for changed := true; changed; {
		changed = false
		mark := func(name string) {
			if !kd.PivotDerived[name] {
				kd.PivotDerived[name] = true
				changed = true
			}
		}
		var walk func(body []lang.Stmt)
		walk = func(body []lang.Stmt) {
			for _, st := range body {
				switch s := st.(type) {
				case lang.Get:
					mark(s.Dst)
				case lang.Assign:
					if exprMentions(s.E, kd.PivotDerived) {
						mark(s.Dst)
					}
				case lang.SetField:
					if exprMentions(s.E, kd.PivotDerived) {
						mark(s.Dst)
					}
				case lang.If:
					walk(s.Then)
					walk(s.Else)
				case lang.For:
					if exprMentions(s.From, kd.PivotDerived) || exprMentions(s.To, kd.PivotDerived) {
						mark(s.Var)
					}
					walk(s.Body)
				}
			}
		}
		walk(p.Body)
	}

	// Traversal pivots: a condition (or loop bound) that mentions a
	// pivot-derived variable AND guards a block that can change the RWS.
	// RWS-irrelevance is decided by the relevant-variable analysis — the
	// same criterion the symbolic executor uses to skip the fork, so a
	// branch it would not fork on cannot become a traversal pivot here.
	rel := Analyze(p)
	var scan func(body []lang.Stmt)
	scan = func(body []lang.Stmt) {
		for _, st := range body {
			switch s := st.(type) {
			case lang.If:
				if exprMentions(s.Cond, kd.PivotDerived) &&
					(blockTouchesKeys(s.Then, rel) || blockTouchesKeys(s.Else, rel)) {
					kd.TraversalPivot = true
				}
				scan(s.Then)
				scan(s.Else)
			case lang.For:
				if (exprMentions(s.From, kd.PivotDerived) || exprMentions(s.To, kd.PivotDerived)) &&
					blockTouchesKeys(s.Body, rel) {
					kd.TraversalPivot = true
				}
				scan(s.Body)
			}
		}
	}
	scan(p.Body)

	// Per-access classification, in statement order.
	classify := func(table string, op AccessOp, write bool, key []lang.Expr, pos lang.Pos, path string) {
		ac := AccessClass{Path: path, Pos: pos, Table: table, Op: op, Write: write,
			PartDirect: make([]bool, len(key)), PartVia: make([][]string, len(key))}
		for i, k := range key {
			via := mentionsOf(k, kd.PivotDerived)
			ac.PartDirect[i] = len(via) == 0
			ac.PartVia[i] = via
		}
		kd.Accesses = append(kd.Accesses, ac)
	}
	var walkPath func(body []lang.Stmt, label string)
	walkPath = func(body []lang.Stmt, label string) {
		for i, st := range body {
			path := fmt.Sprintf("%s[%d]", label, i)
			switch s := st.(type) {
			case lang.Get:
				classify(s.Table, OpGet, false, s.Key, s.Pos, path)
			case lang.Put:
				classify(s.Table, OpPut, true, s.Key, s.Pos, path)
			case lang.Del:
				classify(s.Table, OpDel, true, s.Key, s.Pos, path)
			case lang.If:
				walkPath(s.Then, path+".then")
				walkPath(s.Else, path+".else")
			case lang.For:
				walkPath(s.Body, path+".body")
			}
		}
	}
	walkPath(p.Body, "body")
	return kd
}

// exprMentions reports whether e mentions any variable in set.
func exprMentions(e lang.Expr, set map[string]bool) bool {
	return len(mentionsOf(e, set)) > 0
}

// mentionsOf returns the variables of e that are in set, sorted.
func mentionsOf(e lang.Expr, set map[string]bool) []string {
	seen := map[string]bool{}
	var walk func(e lang.Expr)
	walk = func(e lang.Expr) {
		switch x := e.(type) {
		case lang.ParamRef:
			if set[x.Name] {
				seen[x.Name] = true
			}
		case lang.LocalRef:
			if set[x.Name] {
				seen[x.Name] = true
			}
		case lang.Bin:
			walk(x.L)
			walk(x.R)
		case lang.Not:
			walk(x.E)
		case lang.Field:
			walk(x.E)
		case lang.Index:
			walk(x.E)
			walk(x.I)
		case lang.Rec:
			for _, f := range x.Fields {
				walk(f.E)
			}
		}
	}
	walk(e)
	if len(seen) == 0 {
		return nil
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

package taint

import (
	"fmt"
	"sort"

	"prognosticator/internal/lang"
)

// Key-determinism classification (§III-C): for each store access, decide
// statically whether its key is *direct* — derivable from the transaction
// inputs alone — or *pivot-dependent* — its identity flows from a prior GET
// result. Together with traversal-pivot detection (does any branch that can
// change the RWS depend on a GET result?) this proves, per procedure,
// whether the direct part of the key-set can be predicted client-side
// without touching the store.
//
// The analysis is a forward flow-insensitive fixed point over the
// pivot-derived variable set, the dual of the relevant-variable analysis in
// this package: Analyze asks "what flows INTO keys", KeyDeterminism asks
// "what flows OUT OF store reads". Flow-insensitivity (one set for the whole
// procedure, no kill on reassignment) makes the result a sound
// over-approximation: a variable is only classified input-derived when no
// assignment anywhere can make it depend on store state.

// AccessOp names the store operation of an AccessClass.
type AccessOp string

// Store operations.
const (
	OpGet AccessOp = "GET"
	OpPut AccessOp = "PUT"
	OpDel AccessOp = "DEL"
)

// AccessClass is the per-access key-determinism verdict: one record per
// GET/PUT/DEL, with a per-key-part direct/pivot-dependent classification and,
// for pivot-dependent parts, the set of pivot-derived variables the part
// mentions (the proof witness).
type AccessClass struct {
	// Path is the structural statement path (e.g. "body[2].then[0]"); Pos
	// its source position (zero for builder-constructed programs).
	Path string
	Pos  lang.Pos

	Table string
	Op    AccessOp
	Write bool

	// PartDirect[i] reports whether key part i is derivable from the inputs
	// alone. PartVia[i] lists the pivot-derived variables part i mentions
	// (sorted; empty iff PartDirect[i]).
	PartDirect []bool
	PartVia    [][]string
}

// Direct reports whether every key part is input-derived.
func (a AccessClass) Direct() bool {
	for _, d := range a.PartDirect {
		if !d {
			return false
		}
	}
	return true
}

// Via returns the union of pivot-derived variables across all key parts,
// sorted.
func (a AccessClass) Via() []string {
	seen := map[string]bool{}
	var out []string
	for _, vs := range a.PartVia {
		for _, v := range vs {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Strings(out)
	return out
}

// KeyDet is the key-determinism analysis result for one program.
type KeyDet struct {
	// Accesses holds one record per store operation, in statement order.
	Accesses []AccessClass
	// PivotDerived is the set of variables whose value may depend on store
	// state (GET results and everything computed from them, including the
	// induction variables of loops with pivot-derived bounds).
	PivotDerived map[string]bool
	// TraversalPivot reports whether some branch or loop bound that can
	// change the RWS depends on a pivot-derived variable: the profile tree
	// then cannot be traversed from the inputs alone, and the direct subset
	// of the key-set is not predictable client-side.
	TraversalPivot bool
}

// DirectCount returns how many accesses are fully direct.
func (kd *KeyDet) DirectCount() int {
	n := 0
	for _, a := range kd.Accesses {
		if a.Direct() {
			n++
		}
	}
	return n
}

// PivotFreeTraversal reports whether the profile tree of this program can be
// walked with inputs alone: no RWS-relevant branch or loop bound depends on
// store state. When true, every access classified Direct here is predictable
// client-side (the §III-C optimization).
func (kd *KeyDet) PivotFreeTraversal() bool { return !kd.TraversalPivot }

// DirectTables returns the tables for which EVERY access in the program is
// direct, sorted. The symbolic executor cross-checks its per-access Direct
// marks against this set: a profile access with a pivot in its key, in a
// table this analysis proves all-direct, indicates an analysis bug.
func (kd *KeyDet) DirectTables() []string {
	direct := map[string]bool{}
	for _, a := range kd.Accesses {
		if prev, ok := direct[a.Table]; ok {
			direct[a.Table] = prev && a.Direct()
		} else {
			direct[a.Table] = a.Direct()
		}
	}
	var out []string
	for t, d := range direct {
		if d {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}

// EqualityOracle answers relational queries the flow-insensitive analysis
// cannot: whether a local, at a given structural statement path, provably
// equals an integer constant or a parameter plus a constant offset on every
// execution reaching that point. The lint package's alias-zone solution
// implements it; the contract is that such equalities derive from
// assignment chains alone (never from guards or interval evaluation), so
// the symbolic executor's per-path key term is input-only wherever the
// oracle says resolvable — static Direct claims stay aligned with profile
// Direct marks.
type EqualityOracle interface {
	InputResolvable(path, name string) bool
}

// KeyDeterminism classifies every store access of p without relational
// facts (equivalent to KeyDeterminismOracle with a nil oracle).
func KeyDeterminism(p *lang.Program) *KeyDet {
	return KeyDeterminismOracle(p, nil)
}

// allResolvable reports whether the oracle proves every named variable
// input-resolvable at the path.
func allResolvable(oracle EqualityOracle, path string, names []string) bool {
	if oracle == nil {
		return false
	}
	for _, n := range names {
		if !oracle.InputResolvable(path, n) {
			return false
		}
	}
	return len(names) > 0
}

// KeyDeterminismOracle classifies every store access of p, consulting the
// oracle (when non-nil) to upgrade pivot-dependent key parts that provably
// equal an input-derived value, and to discharge traversal pivots whose
// condition variables are all input-resolvable.
func KeyDeterminismOracle(p *lang.Program, oracle EqualityOracle) *KeyDet {
	kd := &KeyDet{PivotDerived: map[string]bool{}}

	// Fixed point: GET results are pivot-derived; any assignment whose RHS
	// mentions a pivot-derived variable propagates (field stores taint the
	// whole record — the analysis is field-insensitive, like Analyze); a
	// loop with a pivot-derived bound taints its induction variable.
	for changed := true; changed; {
		changed = false
		mark := func(name string) {
			if !kd.PivotDerived[name] {
				kd.PivotDerived[name] = true
				changed = true
			}
		}
		var walk func(body []lang.Stmt)
		walk = func(body []lang.Stmt) {
			for _, st := range body {
				switch s := st.(type) {
				case lang.Get:
					mark(s.Dst)
				case lang.Assign:
					if exprMentions(s.E, kd.PivotDerived) {
						mark(s.Dst)
					}
				case lang.SetField:
					if exprMentions(s.E, kd.PivotDerived) {
						mark(s.Dst)
					}
				case lang.If:
					walk(s.Then)
					walk(s.Else)
				case lang.For:
					if exprMentions(s.From, kd.PivotDerived) || exprMentions(s.To, kd.PivotDerived) {
						mark(s.Var)
					}
					walk(s.Body)
				}
			}
		}
		walk(p.Body)
	}

	// Traversal pivots: a condition (or loop bound) that mentions a
	// pivot-derived variable AND guards a block that can change the RWS.
	// RWS-irrelevance is decided by the relevant-variable analysis — the
	// same criterion the symbolic executor uses to skip the fork, so a
	// branch it would not fork on cannot become a traversal pivot here —
	// refined field-sensitively: arms that only write inert record fields
	// (fields whose stored value provably never flows back into the RWS)
	// cannot change the key-set either, mirroring the executor's merge of
	// identical fork subtrees. A pivot condition is also discharged when
	// the oracle proves every pivot-derived variable it mentions equal to
	// an input-derived value at that point.
	rel := Analyze(p)
	inert := inertFields(p, rel)
	var scan func(body []lang.Stmt, label string)
	scan = func(body []lang.Stmt, label string) {
		for i, st := range body {
			path := fmt.Sprintf("%s[%d]", label, i)
			switch s := st.(type) {
			case lang.If:
				if via := mentionsOf(s.Cond, kd.PivotDerived); len(via) > 0 &&
					!(rwsInert(s.Then, rel, inert) && rwsInert(s.Else, rel, inert)) &&
					!allResolvable(oracle, path, via) {
					kd.TraversalPivot = true
				}
				scan(s.Then, path+".then")
				scan(s.Else, path+".else")
			case lang.For:
				via := mentionsOf(s.From, kd.PivotDerived)
				via = append(via, mentionsOf(s.To, kd.PivotDerived)...)
				if len(via) > 0 && !rwsInert(s.Body, rel, inert) &&
					!allResolvable(oracle, path, via) {
					kd.TraversalPivot = true
				}
				scan(s.Body, path+".body")
			}
		}
	}
	scan(p.Body, "body")

	// Per-access classification, in statement order.
	classify := func(table string, op AccessOp, write bool, key []lang.Expr, pos lang.Pos, path string) {
		ac := AccessClass{Path: path, Pos: pos, Table: table, Op: op, Write: write,
			PartDirect: make([]bool, len(key)), PartVia: make([][]string, len(key))}
		for i, k := range key {
			via := mentionsOf(k, kd.PivotDerived)
			if len(via) > 0 && allResolvable(oracle, path, via) {
				// Every pivot-derived variable in this part provably equals
				// an input-derived value at this point: the part is direct
				// after all, and the witness set is empty.
				via = nil
			}
			ac.PartDirect[i] = len(via) == 0
			ac.PartVia[i] = via
		}
		kd.Accesses = append(kd.Accesses, ac)
	}
	var walkPath func(body []lang.Stmt, label string)
	walkPath = func(body []lang.Stmt, label string) {
		for i, st := range body {
			path := fmt.Sprintf("%s[%d]", label, i)
			switch s := st.(type) {
			case lang.Get:
				classify(s.Table, OpGet, false, s.Key, s.Pos, path)
			case lang.Put:
				classify(s.Table, OpPut, true, s.Key, s.Pos, path)
			case lang.Del:
				classify(s.Table, OpDel, true, s.Key, s.Pos, path)
			case lang.If:
				walkPath(s.Then, path+".then")
				walkPath(s.Else, path+".else")
			case lang.For:
				walkPath(s.Body, path+".body")
			}
		}
	}
	walkPath(p.Body, "body")
	return kd
}

// fieldKey identifies one (record local, field) pair for the
// field-sensitive inertness refinement.
type fieldKey struct{ rec, field string }

// inertFields computes the greatest set of (local, field) pairs whose
// stored value provably cannot influence this transaction's read/write
// set. Writing such a field is RWS-inert, so a branch whose arms only
// write inert fields is not a traversal pivot even when its condition is
// pivot-derived — the symbolic executor reaches the same conclusion
// dynamically by merging the identical fork subtrees.
//
// The set starts at every SetField target and a leak pass deletes each
// pair whose field value can flow back toward the RWS: reads in key
// expressions, assignment and loop-bound right-hand sides, conditions
// guarding non-inert work, and PUT values that a later GET of the same
// table may re-read. Reads feeding an inert SetField target stay
// contained (if that target is ever itself read in a leaking position,
// its deletion re-triggers the pass). Emitted values leave the
// transaction and cannot re-enter the read/write set. Iterating to a
// fixed point makes the result coinductively sound: any concrete
// influence chain from a field to the RWS ends in a leaking read, and
// the deletions propagate backward along the chain.
func inertFields(p *lang.Program, rel *Result) map[fieldKey]bool {
	inert := map[fieldKey]bool{}
	var seed func(body []lang.Stmt)
	seed = func(body []lang.Stmt) {
		for _, st := range body {
			switch s := st.(type) {
			case lang.SetField:
				inert[fieldKey{s.Dst, s.Field}] = true
			case lang.If:
				seed(s.Then)
				seed(s.Else)
			case lang.For:
				seed(s.Body)
			}
		}
	}
	seed(p.Body)
	if len(inert) == 0 {
		return inert
	}

	// Pre-order statement numbering: a PUT value can be re-read only by a
	// same-table GET later in program order, or by any same-table GET when
	// the PUT sits inside a loop (a later iteration's GET follows it).
	maxGetOrder := map[string]int{}
	order := 0
	var number func(body []lang.Stmt)
	number = func(body []lang.Stmt) {
		for _, st := range body {
			order++
			switch s := st.(type) {
			case lang.Get:
				if order > maxGetOrder[s.Table] {
					maxGetOrder[s.Table] = order
				}
			case lang.If:
				number(s.Then)
				number(s.Else)
			case lang.For:
				number(s.Body)
			}
		}
	}
	number(p.Body)

	for changed := true; changed; {
		changed = false
		drop := func(k fieldKey) {
			if inert[k] {
				delete(inert, k)
				changed = true
			}
		}
		// leakExpr drops every field pair e reads: a direct Field read of a
		// local drops that pair; a bare local read exposes all its fields.
		var leakExpr func(e lang.Expr)
		leakExpr = func(e lang.Expr) {
			switch x := e.(type) {
			case lang.LocalRef:
				for k := range inert {
					if k.rec == x.Name {
						drop(k)
					}
				}
			case lang.Field:
				if base, ok := x.E.(lang.LocalRef); ok {
					drop(fieldKey{base.Name, x.Name})
					return
				}
				leakExpr(x.E)
			case lang.Bin:
				leakExpr(x.L)
				leakExpr(x.R)
			case lang.Not:
				leakExpr(x.E)
			case lang.Index:
				leakExpr(x.E)
				leakExpr(x.I)
			case lang.Rec:
				for _, f := range x.Fields {
					leakExpr(f.E)
				}
			}
		}
		pos := 0
		var walk func(body []lang.Stmt, inLoop bool)
		walk = func(body []lang.Stmt, inLoop bool) {
			for _, st := range body {
				pos++
				switch s := st.(type) {
				case lang.Get:
					for _, k := range s.Key {
						leakExpr(k)
					}
				case lang.Put:
					for _, k := range s.Key {
						leakExpr(k)
					}
					if maxGetOrder[s.Table] > pos || (inLoop && maxGetOrder[s.Table] > 0) {
						leakExpr(s.Val)
					}
				case lang.Del:
					for _, k := range s.Key {
						leakExpr(k)
					}
				case lang.Assign:
					leakExpr(s.E)
				case lang.SetField:
					if !inert[fieldKey{s.Dst, s.Field}] {
						leakExpr(s.E)
					}
				case lang.If:
					if !rwsInert(s.Then, rel, inert) || !rwsInert(s.Else, rel, inert) {
						leakExpr(s.Cond)
					}
					walk(s.Then, inLoop)
					walk(s.Else, inLoop)
				case lang.For:
					if !rwsInert(s.Body, rel, inert) {
						leakExpr(s.From)
						leakExpr(s.To)
					}
					walk(s.Body, true)
				}
			}
		}
		walk(p.Body, false)
	}
	return inert
}

// rwsInert reports whether executing body provably cannot change the
// read/write set, under the current inert-field set. It is never stricter
// than the negation of blockTouchesKeys — a SetField passes when its
// target pair is inert OR its destination is RWS-irrelevant — so the
// refinement can only discharge traversal pivots, never introduce them.
func rwsInert(body []lang.Stmt, rel *Result, inert map[fieldKey]bool) bool {
	for _, st := range body {
		switch s := st.(type) {
		case lang.Get, lang.Put, lang.Del:
			return false
		case lang.Assign:
			if rel.Relevant(s.Dst) {
				return false
			}
		case lang.SetField:
			if !inert[fieldKey{s.Dst, s.Field}] && rel.Relevant(s.Dst) {
				return false
			}
		case lang.If:
			if !rwsInert(s.Then, rel, inert) || !rwsInert(s.Else, rel, inert) {
				return false
			}
		case lang.For:
			if !rwsInert(s.Body, rel, inert) {
				return false
			}
		}
	}
	return true
}

// exprMentions reports whether e mentions any variable in set.
func exprMentions(e lang.Expr, set map[string]bool) bool {
	return len(mentionsOf(e, set)) > 0
}

// mentionsOf returns the variables of e that are in set, sorted.
func mentionsOf(e lang.Expr, set map[string]bool) []string {
	seen := map[string]bool{}
	var walk func(e lang.Expr)
	walk = func(e lang.Expr) {
		switch x := e.(type) {
		case lang.ParamRef:
			if set[x.Name] {
				seen[x.Name] = true
			}
		case lang.LocalRef:
			if set[x.Name] {
				seen[x.Name] = true
			}
		case lang.Bin:
			walk(x.L)
			walk(x.R)
		case lang.Not:
			walk(x.E)
		case lang.Field:
			walk(x.E)
		case lang.Index:
			walk(x.E)
			walk(x.I)
		case lang.Rec:
			for _, f := range x.Fields {
				walk(f.E)
			}
		}
	}
	walk(e)
	if len(seen) == 0 {
		return nil
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

package taint

import (
	"reflect"
	"testing"

	"prognosticator/internal/lang"
)

// counterProg is the RUBiS/openAccount pattern: the insert key is a pivot,
// the counter accesses themselves are direct, and no branch depends on store
// state.
func counterProg() *lang.Program {
	return &lang.Program{
		Name:   "counter",
		Params: []lang.Param{lang.IntParam("initial", 0, 100)},
		Body: []lang.Stmt{
			lang.GetS("c", "COUNTERS", lang.Cs("accounts")),
			lang.Set("id", lang.Fld(lang.L("c"), "next")),
			lang.PutS("ACCOUNTS", lang.Key(lang.L("id")), lang.RecE(lang.F("bal", lang.P("initial")))),
			lang.SetF("c", "next", lang.Add(lang.L("id"), lang.C(1))),
			lang.PutS("COUNTERS", lang.Key(lang.Cs("accounts")), lang.L("c")),
		},
	}
}

func TestKeyDeterminismCounterPattern(t *testing.T) {
	kd := KeyDeterminism(counterProg())
	if kd.TraversalPivot {
		t.Fatalf("no branch depends on store state, but TraversalPivot is set")
	}
	if len(kd.Accesses) != 3 {
		t.Fatalf("got %d accesses, want 3: %+v", len(kd.Accesses), kd.Accesses)
	}
	// GET COUNTERS["accounts"] and PUT COUNTERS["accounts"] are direct;
	// PUT ACCOUNTS[id] is pivot-dependent via id (and transitively c).
	if !kd.Accesses[0].Direct() || kd.Accesses[0].Table != "COUNTERS" {
		t.Errorf("access 0 = %+v, want direct GET COUNTERS", kd.Accesses[0])
	}
	if kd.Accesses[1].Direct() || kd.Accesses[1].Table != "ACCOUNTS" {
		t.Errorf("access 1 = %+v, want pivot-dependent PUT ACCOUNTS", kd.Accesses[1])
	}
	if got, want := kd.Accesses[1].Via(), []string{"id"}; !reflect.DeepEqual(got, want) {
		t.Errorf("access 1 via = %v, want %v", got, want)
	}
	if !kd.Accesses[2].Direct() {
		t.Errorf("access 2 = %+v, want direct PUT COUNTERS", kd.Accesses[2])
	}
	if got := kd.DirectCount(); got != 2 {
		t.Errorf("DirectCount = %d, want 2", got)
	}
	if got, want := kd.DirectTables(), []string{"COUNTERS"}; !reflect.DeepEqual(got, want) {
		t.Errorf("DirectTables = %v, want %v", got, want)
	}
	if !kd.PivotFreeTraversal() {
		t.Errorf("PivotFreeTraversal = false, want true")
	}
}

func TestKeyDeterminismTraversalPivotBranch(t *testing.T) {
	// transfer pattern: a branch on a GET-result field guards PUTs.
	p := &lang.Program{
		Name:   "guarded",
		Params: []lang.Param{lang.IntParam("src", 0, 9), lang.IntParam("amt", 1, 10)},
		Body: []lang.Stmt{
			lang.GetS("s", "ACCOUNTS", lang.P("src")),
			lang.IfS(lang.Ge(lang.Fld(lang.L("s"), "bal"), lang.P("amt")),
				lang.PutS("ACCOUNTS", lang.Key(lang.P("src")), lang.L("s")),
			),
		},
	}
	kd := KeyDeterminism(p)
	if !kd.TraversalPivot {
		t.Fatalf("branch on pivot-derived s guards a PUT; TraversalPivot should be set")
	}
	// Both accesses still classify direct: the keys are input-only.
	for i, a := range kd.Accesses {
		if !a.Direct() {
			t.Errorf("access %d = %+v, want direct key", i, a)
		}
	}
}

func TestKeyDeterminismValueOnlyBranchIgnored(t *testing.T) {
	// newOrder's stock-quantity pattern: the branch condition depends on a
	// GET result, but both arms only update written values — the symbolic
	// executor never forks there, so it is not a traversal pivot.
	p := &lang.Program{
		Name:   "valueonly",
		Params: []lang.Param{lang.IntParam("id", 0, 9), lang.IntParam("qty", 1, 10)},
		Body: []lang.Stmt{
			lang.GetS("stock", "STOCK", lang.P("id")),
			lang.IfElse(lang.Gt(lang.Fld(lang.L("stock"), "quantity"), lang.P("qty")),
				[]lang.Stmt{lang.SetF("stock", "quantity", lang.Sub(lang.Fld(lang.L("stock"), "quantity"), lang.P("qty")))},
				[]lang.Stmt{lang.SetF("stock", "quantity", lang.C(91))},
			),
			lang.PutS("STOCK", lang.Key(lang.P("id")), lang.L("stock")),
		},
	}
	kd := KeyDeterminism(p)
	if kd.TraversalPivot {
		t.Fatalf("value-only branch misclassified as traversal pivot")
	}
	if kd.DirectCount() != 2 {
		t.Errorf("DirectCount = %d, want 2 (all keys input-only)", kd.DirectCount())
	}
}

func TestKeyDeterminismPivotLoopBound(t *testing.T) {
	// A loop bound read from the store taints the induction variable and is
	// a traversal pivot when the body touches the store.
	p := &lang.Program{
		Name:   "pivotloop",
		Params: []lang.Param{lang.IntParam("id", 0, 9)},
		Body: []lang.Stmt{
			lang.GetS("c", "T", lang.P("id")),
			lang.ForS("i", lang.C(0), lang.Fld(lang.L("c"), "n"),
				lang.GetS("x", "ITEMS", lang.L("i")),
			),
		},
	}
	kd := KeyDeterminism(p)
	if !kd.TraversalPivot {
		t.Fatalf("pivot-bounded loop over store accesses should be a traversal pivot")
	}
	if !kd.PivotDerived["i"] {
		t.Errorf("induction variable of a pivot-bounded loop should be pivot-derived")
	}
	// GET ITEMS[i] is keyed by the tainted induction variable.
	if kd.Accesses[1].Direct() {
		t.Errorf("access keyed by pivot-bounded induction variable classified direct")
	}
}

func TestKeyDeterminismPerPartClassification(t *testing.T) {
	p := &lang.Program{
		Name:   "parts",
		Params: []lang.Param{lang.IntParam("a", 0, 9)},
		Body: []lang.Stmt{
			lang.GetS("r", "SRC", lang.P("a")),
			lang.Set("slot", lang.Fld(lang.L("r"), "n")),
			lang.PutS("DST", lang.Key(lang.P("a"), lang.L("slot")), lang.L("r")),
		},
	}
	kd := KeyDeterminism(p)
	put := kd.Accesses[1]
	if put.Op != OpPut || len(put.PartDirect) != 2 {
		t.Fatalf("unexpected access %+v", put)
	}
	if !put.PartDirect[0] || put.PartDirect[1] {
		t.Errorf("PartDirect = %v, want [true false]", put.PartDirect)
	}
	if got, want := put.PartVia[1], []string{"slot"}; !reflect.DeepEqual(got, want) {
		t.Errorf("PartVia[1] = %v, want %v", got, want)
	}
}

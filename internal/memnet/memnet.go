// Package memnet provides an in-process message network with configurable
// delay, loss, partitions and per-node down states. It is the transport
// substrate under the Raft implementation (internal/raft), letting consensus
// and chaos tests exercise leader failure, crash/restart, partition and heal
// scenarios deterministically within one process. Delivery and drop counters
// distinguish every drop cause, so tests assert on observable network state
// instead of sleeping.
//
// All time flows through an injected vclock.Clock: artificial delays are
// clock timers (virtual under simulation — zero real sleeps), every enqueued
// message holds a simulation event token until its receiver acknowledges it,
// and loss/delay decisions come from per-(from,to) hash streams rather than a
// shared rng, so the fault pattern each link sees is independent of goroutine
// scheduling — the property whole-cluster seed replay rests on.
package memnet

import (
	"sync"
	"time"

	"prognosticator/internal/vclock"
)

// Message is one delivered datagram.
type Message struct {
	From    string
	To      string
	Payload any
}

// Stats counts delivery outcomes since the network was created. Every Send
// increments exactly one field, so Delivered plus all drop counters equals
// the number of Send calls whose destination was registered.
type Stats struct {
	// Delivered counts messages placed in a destination inbox.
	Delivered int64
	// DroppedLoss counts drops from the configured loss probability.
	DroppedLoss int64
	// DroppedOverflow counts drops from a full destination inbox
	// (backpressure-as-loss, as UDP would behave).
	DroppedOverflow int64
	// DroppedPartition counts drops across a partition boundary.
	DroppedPartition int64
	// DroppedDown counts drops to or from a node marked down, including
	// in-flight delayed messages canceled when their destination went down.
	DroppedDown int64
	// DroppedClosed counts drops after the network was closed.
	DroppedClosed int64
	// DroppedCanceled counts in-flight delayed messages canceled by Drain —
	// a restarting node must not receive datagrams addressed to its previous
	// life, even ones already "on the wire".
	DroppedCanceled int64
}

// Network is the in-process fabric. All methods are safe for concurrent
// use.
type Network struct {
	clk  vclock.Clock
	seed int64

	mu        sync.Mutex
	endpoints map[string]*Endpoint
	dropProb  float64
	minDelay  time.Duration
	maxDelay  time.Duration
	// blocked holds unordered name pairs that cannot communicate.
	blocked map[[2]string]bool
	// down holds nodes that are crashed: no traffic in or out.
	down   map[string]bool
	closed bool
	stats  Stats
	// pairCtr numbers each (from,to) link's fault decisions; together with
	// the seed it indexes a deterministic hash stream per link.
	pairCtr map[[2]string]uint64
	// pending tracks undelivered delayed sends by destination so Drain and
	// SetDown can cancel them before they fire.
	pending    map[string]map[uint64]*delayedSend
	pendingSeq uint64
}

// New returns a wall-clock network with no loss, no delay and no partitions.
// The seed drives loss and delay decisions, keeping fault scenarios
// reproducible.
func New(seed int64) *Network { return NewWithClock(seed, nil) }

// NewWithClock returns a network whose artificial delays run on clk (nil =
// wall clock). Under a vclock.Sim clock, delivery holds simulation event
// tokens: receivers must vclock.Ack each message consumed from an Inbox.
func NewWithClock(seed int64, clk vclock.Clock) *Network {
	return &Network{
		clk:       vclock.Or(clk),
		seed:      seed,
		endpoints: map[string]*Endpoint{},
		blocked:   map[[2]string]bool{},
		down:      map[string]bool{},
		pairCtr:   map[[2]string]uint64{},
		pending:   map[string]map[uint64]*delayedSend{},
	}
}

// Clock returns the network's time source.
func (n *Network) Clock() vclock.Clock { return n.clk }

// Endpoint registers (or returns) the named endpoint.
func (n *Network) Endpoint(name string) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if e, ok := n.endpoints[name]; ok {
		return e
	}
	e := &Endpoint{name: name, net: n, inbox: make(chan Message, 1024)}
	n.endpoints[name] = e
	return e
}

// SetLoss sets the per-message drop probability in [0,1].
func (n *Network) SetLoss(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dropProb = p
}

// SetDelay sets the min/max artificial delivery delay.
func (n *Network) SetDelay(min, max time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.minDelay, n.maxDelay = min, max
}

// SetDown marks a node crashed (true) or recovered (false). A down node
// neither sends nor receives; drops are counted as DroppedDown. Taking a node
// down also discards its queued inbox and cancels in-flight delayed messages
// addressed to it — a crashed process loses its socket buffers, and under
// simulation their event tokens must be released or virtual time would stall
// waiting on a receiver that no longer exists.
func (n *Network) SetDown(name string, down bool) {
	n.mu.Lock()
	if down {
		n.down[name] = true
		n.cancelPendingLocked(name, &n.stats.DroppedDown)
	} else {
		delete(n.down, name)
	}
	e := n.endpoints[name]
	n.mu.Unlock()
	if down && e != nil {
		n.drainInbox(e)
	}
}

// Drain discards all messages queued in the named endpoint's inbox, cancels
// in-flight delayed messages addressed to it, and returns how many queued
// messages were discarded. A restarting node drains its inbox so the fresh
// process does not observe datagrams addressed to its previous life.
func (n *Network) Drain(name string) int {
	n.mu.Lock()
	e, ok := n.endpoints[name]
	if ok {
		n.cancelPendingLocked(name, &n.stats.DroppedCanceled)
	}
	n.mu.Unlock()
	if !ok {
		return 0
	}
	return n.drainInbox(e)
}

// drainInbox empties e's inbox, releasing each message's event token.
func (n *Network) drainInbox(e *Endpoint) int {
	dropped := 0
	for {
		select {
		case <-e.inbox:
			vclock.Release(n.clk)
			dropped++
		default:
			return dropped
		}
	}
}

// cancelPendingLocked cancels every undelivered delayed send to name,
// crediting counter once per canceled message. No event tokens are held for
// messages still riding a timer, so cancellation only stops the timers.
func (n *Network) cancelPendingLocked(name string, counter *int64) {
	for id, ds := range n.pending[name] {
		ds.canceled = true
		if ds.tm != nil {
			ds.tm.Stop()
		}
		delete(n.pending[name], id)
		*counter++
	}
}

// Stats returns a snapshot of the delivery/drop counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Partition splits the network into groups; messages only flow within a
// group. Any previous partition is replaced.
func (n *Network) Partition(groups ...[]string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked = map[[2]string]bool{}
	groupOf := map[string]int{}
	for gi, g := range groups {
		for _, name := range g {
			groupOf[name] = gi
		}
	}
	names := make([]string, 0, len(n.endpoints))
	for name := range n.endpoints {
		names = append(names, name)
	}
	for i, a := range names {
		for _, b := range names[i+1:] {
			if groupOf[a] != groupOf[b] {
				n.blocked[pair(a, b)] = true
			}
		}
	}
}

// Heal removes all partitions.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked = map[[2]string]bool{}
}

// Close stops delivery; subsequent sends are dropped.
func (n *Network) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.closed = true
}

func pair(a, b string) [2]string {
	if a < b {
		return [2]string{a, b}
	}
	return [2]string{b, a}
}

func strHash(s string) uint64 { return vclock.HashString(s) }

// Endpoint is one addressable node on the network.
type Endpoint struct {
	name      string
	net       *Network
	inbox     chan Message
	overflows int64 // guarded by net.mu
}

// Name returns the endpoint's address.
func (e *Endpoint) Name() string { return e.name }

// Inbox returns the delivery channel. Under a simulated clock, consumers must
// call vclock.Ack for every message received (after vclock.Wake), retiring
// the event token the sender holds on its behalf.
func (e *Endpoint) Inbox() <-chan Message { return e.inbox }

// Overflows returns how many inbound messages were dropped because THIS
// endpoint's inbox was full — the per-node backpressure signal (the
// network-wide total is Stats.DroppedOverflow).
func (e *Endpoint) Overflows() int64 {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	return e.overflows
}

// delayedSend is one message riding a delay timer toward its destination.
type delayedSend struct {
	id       uint64
	msg      Message
	dst      *Endpoint
	tm       vclock.Timer
	canceled bool
}

// Send delivers payload to the named endpoint, subject to the network's
// loss, delay, partition and down configuration. Delivery is asynchronous; a
// full inbox drops the message (backpressure-as-loss, as UDP would).
//
// Loss and delay are drawn from a hash stream indexed by (seed, from, to,
// ordinal): each link sees a deterministic fault pattern regardless of how
// sends on different links interleave.
func (e *Endpoint) Send(to string, payload any) {
	n := e.net
	n.mu.Lock()
	if n.closed {
		n.stats.DroppedClosed++
		n.mu.Unlock()
		return
	}
	if n.down[e.name] || n.down[to] {
		n.stats.DroppedDown++
		n.mu.Unlock()
		return
	}
	if n.blocked[pair(e.name, to)] {
		n.stats.DroppedPartition++
		n.mu.Unlock()
		return
	}
	link := [2]string{e.name, to}
	ctr := n.pairCtr[link]
	n.pairCtr[link] = ctr + 1
	if n.dropProb > 0 {
		h := vclock.Hash64(uint64(n.seed), strHash(e.name), strHash(to), ctr, 0)
		if float64(h%(1<<53))/(1<<53) < n.dropProb {
			n.stats.DroppedLoss++
			n.mu.Unlock()
			return
		}
	}
	dst, ok := n.endpoints[to]
	if !ok {
		n.mu.Unlock()
		return
	}
	var delay time.Duration
	if n.maxDelay > 0 {
		h := vclock.Hash64(uint64(n.seed), strHash(e.name), strHash(to), ctr, 1)
		delay = n.minDelay + time.Duration(h%uint64(n.maxDelay-n.minDelay+1))
	}
	msg := Message{From: e.name, To: to, Payload: payload}
	if delay == 0 {
		n.enqueueLocked(dst, msg)
		return
	}
	n.pendingSeq++
	ds := &delayedSend{id: n.pendingSeq, msg: msg, dst: dst}
	// The AfterFunc is created under n.mu: timer creation never runs the
	// callback inline, and holding the lock closes the window in which a
	// Drain could miss a not-yet-registered timer.
	ds.tm = n.clk.AfterFunc(delay, func() { n.deliverDelayed(ds) })
	if n.pending[to] == nil {
		n.pending[to] = map[uint64]*delayedSend{}
	}
	n.pending[to][ds.id] = ds
	n.mu.Unlock()
}

// enqueueLocked places msg in dst's inbox (or drops on overflow), holding a
// simulation event token across the handoff. Callers hold n.mu; the lock is
// released before the overflow token release, which may advance virtual time
// and re-enter the network from a timer callback.
func (n *Network) enqueueLocked(dst *Endpoint, msg Message) {
	vclock.Hold(n.clk) // before the receiver can possibly consume it
	delivered := false
	select {
	case dst.inbox <- msg:
		n.stats.Delivered++
		delivered = true
	default:
		n.stats.DroppedOverflow++
		dst.overflows++
	}
	n.mu.Unlock()
	if !delivered {
		vclock.Release(n.clk)
		return
	}
	// Cooperative scheduling: an enqueued message is a published event —
	// idle poll-loop actors (the receiver among them) re-poll their inboxes.
	vclock.Publish(n.clk)
}

// deliverDelayed is the delay-timer callback: re-check the fault state at
// fire time (a partition, crash or close that happened while the message was
// "on the wire" still applies) and deliver.
func (n *Network) deliverDelayed(ds *delayedSend) {
	n.mu.Lock()
	if m := n.pending[ds.msg.To]; m != nil {
		delete(m, ds.id)
	}
	switch {
	case ds.canceled:
		// Counted by the canceling site (Drain or SetDown).
		n.mu.Unlock()
	case n.closed:
		n.stats.DroppedClosed++
		n.mu.Unlock()
	case n.down[ds.msg.From] || n.down[ds.msg.To]:
		n.stats.DroppedDown++
		n.mu.Unlock()
	case n.blocked[pair(ds.msg.From, ds.msg.To)]:
		n.stats.DroppedPartition++
		n.mu.Unlock()
	default:
		n.enqueueLocked(ds.dst, ds.msg)
	}
}

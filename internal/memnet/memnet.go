// Package memnet provides an in-process message network with configurable
// delay, loss, partitions and per-node down states. It is the transport
// substrate under the Raft implementation (internal/raft), letting consensus
// and chaos tests exercise leader failure, crash/restart, partition and heal
// scenarios deterministically within one process. Delivery and drop counters
// distinguish every drop cause, so tests assert on observable network state
// instead of sleeping.
package memnet

import (
	"math/rand"
	"sync"
	"time"
)

// Message is one delivered datagram.
type Message struct {
	From    string
	To      string
	Payload any
}

// Stats counts delivery outcomes since the network was created. Every Send
// increments exactly one field, so Delivered plus all drop counters equals
// the number of Send calls whose destination was registered.
type Stats struct {
	// Delivered counts messages placed in a destination inbox.
	Delivered int64
	// DroppedLoss counts drops from the configured loss probability.
	DroppedLoss int64
	// DroppedOverflow counts drops from a full destination inbox
	// (backpressure-as-loss, as UDP would behave).
	DroppedOverflow int64
	// DroppedPartition counts drops across a partition boundary.
	DroppedPartition int64
	// DroppedDown counts drops to or from a node marked down.
	DroppedDown int64
	// DroppedClosed counts drops after the network was closed.
	DroppedClosed int64
}

// Network is the in-process fabric. All methods are safe for concurrent
// use.
type Network struct {
	mu        sync.Mutex
	rng       *rand.Rand
	endpoints map[string]*Endpoint
	dropProb  float64
	minDelay  time.Duration
	maxDelay  time.Duration
	// blocked holds unordered name pairs that cannot communicate.
	blocked map[[2]string]bool
	// down holds nodes that are crashed: no traffic in or out.
	down   map[string]bool
	closed bool
	stats  Stats
}

// New returns a network with no loss, no delay and no partitions. The seed
// drives loss and delay decisions, keeping fault scenarios reproducible.
func New(seed int64) *Network {
	return &Network{
		rng:       rand.New(rand.NewSource(seed)),
		endpoints: map[string]*Endpoint{},
		blocked:   map[[2]string]bool{},
		down:      map[string]bool{},
	}
}

// Endpoint registers (or returns) the named endpoint.
func (n *Network) Endpoint(name string) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if e, ok := n.endpoints[name]; ok {
		return e
	}
	e := &Endpoint{name: name, net: n, inbox: make(chan Message, 1024)}
	n.endpoints[name] = e
	return e
}

// SetLoss sets the per-message drop probability in [0,1].
func (n *Network) SetLoss(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dropProb = p
}

// SetDelay sets the min/max artificial delivery delay.
func (n *Network) SetDelay(min, max time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.minDelay, n.maxDelay = min, max
}

// SetDown marks a node crashed (true) or recovered (false). A down node
// neither sends nor receives; drops are counted as DroppedDown.
func (n *Network) SetDown(name string, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if down {
		n.down[name] = true
	} else {
		delete(n.down, name)
	}
}

// Drain discards all messages queued in the named endpoint's inbox and
// returns how many were discarded. A restarting node drains its inbox so the
// fresh process does not observe datagrams addressed to its previous life.
func (n *Network) Drain(name string) int {
	n.mu.Lock()
	e, ok := n.endpoints[name]
	n.mu.Unlock()
	if !ok {
		return 0
	}
	dropped := 0
	for {
		select {
		case <-e.inbox:
			dropped++
		default:
			return dropped
		}
	}
}

// Stats returns a snapshot of the delivery/drop counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Partition splits the network into groups; messages only flow within a
// group. Any previous partition is replaced.
func (n *Network) Partition(groups ...[]string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked = map[[2]string]bool{}
	groupOf := map[string]int{}
	for gi, g := range groups {
		for _, name := range g {
			groupOf[name] = gi
		}
	}
	names := make([]string, 0, len(n.endpoints))
	for name := range n.endpoints {
		names = append(names, name)
	}
	for i, a := range names {
		for _, b := range names[i+1:] {
			if groupOf[a] != groupOf[b] {
				n.blocked[pair(a, b)] = true
			}
		}
	}
}

// Heal removes all partitions.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked = map[[2]string]bool{}
}

// Close stops delivery; subsequent sends are dropped.
func (n *Network) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.closed = true
}

func pair(a, b string) [2]string {
	if a < b {
		return [2]string{a, b}
	}
	return [2]string{b, a}
}

// Endpoint is one addressable node on the network.
type Endpoint struct {
	name      string
	net       *Network
	inbox     chan Message
	overflows int64 // guarded by net.mu
}

// Name returns the endpoint's address.
func (e *Endpoint) Name() string { return e.name }

// Inbox returns the delivery channel.
func (e *Endpoint) Inbox() <-chan Message { return e.inbox }

// Overflows returns how many inbound messages were dropped because THIS
// endpoint's inbox was full — the per-node backpressure signal (the
// network-wide total is Stats.DroppedOverflow).
func (e *Endpoint) Overflows() int64 {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	return e.overflows
}

// Send delivers payload to the named endpoint, subject to the network's
// loss, delay, partition and down configuration. Delivery is asynchronous; a
// full inbox drops the message (backpressure-as-loss, as UDP would).
func (e *Endpoint) Send(to string, payload any) {
	n := e.net
	n.mu.Lock()
	if n.closed {
		n.stats.DroppedClosed++
		n.mu.Unlock()
		return
	}
	if n.down[e.name] || n.down[to] {
		n.stats.DroppedDown++
		n.mu.Unlock()
		return
	}
	if n.blocked[pair(e.name, to)] {
		n.stats.DroppedPartition++
		n.mu.Unlock()
		return
	}
	if n.dropProb > 0 && n.rng.Float64() < n.dropProb {
		n.stats.DroppedLoss++
		n.mu.Unlock()
		return
	}
	dst, ok := n.endpoints[to]
	if !ok {
		n.mu.Unlock()
		return
	}
	var delay time.Duration
	if n.maxDelay > 0 {
		delay = n.minDelay + time.Duration(n.rng.Int63n(int64(n.maxDelay-n.minDelay)+1))
	}
	msg := Message{From: e.name, To: to, Payload: payload}
	if delay == 0 {
		select {
		case dst.inbox <- msg:
			n.stats.Delivered++
		default:
			n.stats.DroppedOverflow++
			dst.overflows++
		}
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	time.AfterFunc(delay, func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		switch {
		case n.closed:
			n.stats.DroppedClosed++
		case n.down[msg.From] || n.down[msg.To]:
			n.stats.DroppedDown++
		case n.blocked[pair(msg.From, msg.To)]:
			n.stats.DroppedPartition++
		default:
			select {
			case dst.inbox <- msg:
				n.stats.Delivered++
			default:
				n.stats.DroppedOverflow++
				dst.overflows++
			}
		}
	})
}

package memnet

import (
	"testing"
	"time"
)

func recvWithin(t *testing.T, e *Endpoint, d time.Duration) (Message, bool) {
	t.Helper()
	select {
	case m := <-e.Inbox():
		return m, true
	case <-time.After(d):
		return Message{}, false
	}
}

func TestBasicDelivery(t *testing.T) {
	n := New(1)
	a, b := n.Endpoint("a"), n.Endpoint("b")
	a.Send("b", "hi")
	m, ok := recvWithin(t, b, time.Second)
	if !ok || m.From != "a" || m.To != "b" || m.Payload.(string) != "hi" {
		t.Fatalf("got %+v, %v", m, ok)
	}
}

func TestEndpointIdentity(t *testing.T) {
	n := New(1)
	if n.Endpoint("x") != n.Endpoint("x") {
		t.Fatal("Endpoint must be idempotent")
	}
	if n.Endpoint("x").Name() != "x" {
		t.Fatal("name mismatch")
	}
}

func TestUnknownDestinationDropped(t *testing.T) {
	n := New(1)
	a := n.Endpoint("a")
	a.Send("ghost", "x") // must not panic or block
}

func TestPartitionBlocksAndHealRestores(t *testing.T) {
	n := New(2)
	a, b := n.Endpoint("a"), n.Endpoint("b")
	n.Partition([]string{"a"}, []string{"b"})
	a.Send("b", "blocked")
	if _, ok := recvWithin(t, b, 50*time.Millisecond); ok {
		t.Fatal("partitioned message delivered")
	}
	n.Heal()
	a.Send("b", "open")
	if m, ok := recvWithin(t, b, time.Second); !ok || m.Payload.(string) != "open" {
		t.Fatal("healed network did not deliver")
	}
}

func TestPartitionWithinGroupFlows(t *testing.T) {
	n := New(3)
	a, b, c := n.Endpoint("a"), n.Endpoint("b"), n.Endpoint("c")
	_ = c
	n.Partition([]string{"a", "b"}, []string{"c"})
	a.Send("b", "peer")
	if _, ok := recvWithin(t, b, time.Second); !ok {
		t.Fatal("same-group message dropped")
	}
}

func TestFullLoss(t *testing.T) {
	n := New(4)
	a, b := n.Endpoint("a"), n.Endpoint("b")
	n.SetLoss(1.0)
	for i := 0; i < 10; i++ {
		a.Send("b", i)
	}
	if _, ok := recvWithin(t, b, 50*time.Millisecond); ok {
		t.Fatal("message survived 100% loss")
	}
}

func TestDelayedDelivery(t *testing.T) {
	n := New(5)
	a, b := n.Endpoint("a"), n.Endpoint("b")
	n.SetDelay(20*time.Millisecond, 40*time.Millisecond)
	start := time.Now()
	a.Send("b", "slow")
	if _, ok := recvWithin(t, b, time.Second); !ok {
		t.Fatal("delayed message lost")
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("delivered too fast: %v", elapsed)
	}
}

func TestCloseStopsDelivery(t *testing.T) {
	n := New(6)
	a, b := n.Endpoint("a"), n.Endpoint("b")
	n.Close()
	a.Send("b", "dead")
	if _, ok := recvWithin(t, b, 50*time.Millisecond); ok {
		t.Fatal("closed network delivered")
	}
}

func TestDelayedMessageRespectsLatePartition(t *testing.T) {
	n := New(7)
	a, b := n.Endpoint("a"), n.Endpoint("b")
	n.SetDelay(50*time.Millisecond, 60*time.Millisecond)
	a.Send("b", "in-flight")
	n.Partition([]string{"a"}, []string{"b"})
	if _, ok := recvWithin(t, b, 200*time.Millisecond); ok {
		t.Fatal("in-flight message crossed a partition applied before delivery")
	}
}

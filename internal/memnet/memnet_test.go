package memnet

import (
	"testing"
	"time"

	"prognosticator/internal/vclock"
)

func recvWithin(t *testing.T, e *Endpoint, d time.Duration) (Message, bool) {
	t.Helper()
	select {
	case m := <-e.Inbox():
		return m, true
	case <-vclock.Wall.After(d):
		return Message{}, false
	}
}

func TestBasicDelivery(t *testing.T) {
	n := New(1)
	a, b := n.Endpoint("a"), n.Endpoint("b")
	a.Send("b", "hi")
	m, ok := recvWithin(t, b, time.Second)
	if !ok || m.From != "a" || m.To != "b" || m.Payload.(string) != "hi" {
		t.Fatalf("got %+v, %v", m, ok)
	}
}

func TestEndpointIdentity(t *testing.T) {
	n := New(1)
	if n.Endpoint("x") != n.Endpoint("x") {
		t.Fatal("Endpoint must be idempotent")
	}
	if n.Endpoint("x").Name() != "x" {
		t.Fatal("name mismatch")
	}
}

func TestUnknownDestinationDropped(t *testing.T) {
	n := New(1)
	a := n.Endpoint("a")
	a.Send("ghost", "x") // must not panic or block
}

func TestPartitionBlocksAndHealRestores(t *testing.T) {
	n := New(2)
	a, b := n.Endpoint("a"), n.Endpoint("b")
	n.Partition([]string{"a"}, []string{"b"})
	a.Send("b", "blocked")
	if _, ok := recvWithin(t, b, 50*time.Millisecond); ok {
		t.Fatal("partitioned message delivered")
	}
	n.Heal()
	a.Send("b", "open")
	if m, ok := recvWithin(t, b, time.Second); !ok || m.Payload.(string) != "open" {
		t.Fatal("healed network did not deliver")
	}
}

func TestPartitionWithinGroupFlows(t *testing.T) {
	n := New(3)
	a, b, c := n.Endpoint("a"), n.Endpoint("b"), n.Endpoint("c")
	_ = c
	n.Partition([]string{"a", "b"}, []string{"c"})
	a.Send("b", "peer")
	if _, ok := recvWithin(t, b, time.Second); !ok {
		t.Fatal("same-group message dropped")
	}
}

func TestFullLoss(t *testing.T) {
	n := New(4)
	a, b := n.Endpoint("a"), n.Endpoint("b")
	n.SetLoss(1.0)
	for i := 0; i < 10; i++ {
		a.Send("b", i)
	}
	if _, ok := recvWithin(t, b, 50*time.Millisecond); ok {
		t.Fatal("message survived 100% loss")
	}
}

func TestDelayedDelivery(t *testing.T) {
	n := New(5)
	a, b := n.Endpoint("a"), n.Endpoint("b")
	n.SetDelay(20*time.Millisecond, 40*time.Millisecond)
	start := time.Now()
	a.Send("b", "slow")
	if _, ok := recvWithin(t, b, time.Second); !ok {
		t.Fatal("delayed message lost")
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("delivered too fast: %v", elapsed)
	}
}

func TestCloseStopsDelivery(t *testing.T) {
	n := New(6)
	a, b := n.Endpoint("a"), n.Endpoint("b")
	n.Close()
	a.Send("b", "dead")
	if _, ok := recvWithin(t, b, 50*time.Millisecond); ok {
		t.Fatal("closed network delivered")
	}
}

func TestStatsDistinguishDropCauses(t *testing.T) {
	n := New(8)
	a, b := n.Endpoint("a"), n.Endpoint("b")

	a.Send("b", 1)
	if _, ok := recvWithin(t, b, time.Second); !ok {
		t.Fatal("delivery failed")
	}

	n.Partition([]string{"a"}, []string{"b"})
	a.Send("b", 2)
	n.Heal()

	n.SetLoss(1.0)
	a.Send("b", 3)
	n.SetLoss(0)

	n.SetDown("b", true)
	a.Send("b", 4)
	n.SetDown("b", false)

	s := n.Stats()
	if s.Delivered != 1 || s.DroppedPartition != 1 || s.DroppedLoss != 1 || s.DroppedDown != 1 {
		t.Fatalf("stats = %+v, want exactly one delivery and one drop per cause", s)
	}
	if s.DroppedOverflow != 0 || s.DroppedClosed != 0 {
		t.Fatalf("unexpected overflow/closed drops: %+v", s)
	}

	n.Close()
	a.Send("b", 5)
	if got := n.Stats().DroppedClosed; got != 1 {
		t.Fatalf("DroppedClosed = %d, want 1", got)
	}
}

func TestStatsCountOverflowSeparatelyFromLoss(t *testing.T) {
	n := New(9)
	a := n.Endpoint("a")
	n.Endpoint("b")    // registered, never read: the inbox fills up
	const total = 1100 // inbox capacity is 1024
	for i := 0; i < total; i++ {
		a.Send("b", i)
	}
	s := n.Stats()
	if s.Delivered != 1024 {
		t.Fatalf("Delivered = %d, want 1024 (inbox capacity)", s.Delivered)
	}
	if s.DroppedOverflow != total-1024 {
		t.Fatalf("DroppedOverflow = %d, want %d", s.DroppedOverflow, total-1024)
	}
	if s.DroppedLoss != 0 {
		t.Fatalf("overflow drops misattributed to loss: %+v", s)
	}
}

func TestSetDownBlocksBothDirections(t *testing.T) {
	n := New(10)
	a, b := n.Endpoint("a"), n.Endpoint("b")
	n.SetDown("a", true)
	a.Send("b", "from-down")
	b.Send("a", "to-down")
	if _, ok := recvWithin(t, b, 50*time.Millisecond); ok {
		t.Fatal("down node sent")
	}
	if _, ok := recvWithin(t, a, 50*time.Millisecond); ok {
		t.Fatal("down node received")
	}
	if got := n.Stats().DroppedDown; got != 2 {
		t.Fatalf("DroppedDown = %d, want 2", got)
	}
	n.SetDown("a", false)
	a.Send("b", "recovered")
	if _, ok := recvWithin(t, b, time.Second); !ok {
		t.Fatal("recovered node cannot send")
	}
}

func TestDelayedMessageToDownNodeDropped(t *testing.T) {
	n := New(11)
	a, b := n.Endpoint("a"), n.Endpoint("b")
	n.SetDelay(50*time.Millisecond, 60*time.Millisecond)
	a.Send("b", "in-flight")
	n.SetDown("b", true)
	if _, ok := recvWithin(t, b, 200*time.Millisecond); ok {
		t.Fatal("in-flight message reached a node that crashed before delivery")
	}
	if got := n.Stats().DroppedDown; got != 1 {
		t.Fatalf("DroppedDown = %d, want 1", got)
	}
}

func TestDrainEmptiesInbox(t *testing.T) {
	n := New(12)
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	for i := 0; i < 5; i++ {
		a.Send("b", i)
	}
	if got := n.Drain("b"); got != 5 {
		t.Fatalf("Drain discarded %d, want 5", got)
	}
	if _, ok := recvWithin(t, b, 20*time.Millisecond); ok {
		t.Fatal("message survived drain")
	}
	if got := n.Drain("ghost"); got != 0 {
		t.Fatalf("Drain of unknown endpoint = %d, want 0", got)
	}
}

func TestDelayedMessageRespectsLatePartition(t *testing.T) {
	n := New(7)
	a, b := n.Endpoint("a"), n.Endpoint("b")
	n.SetDelay(50*time.Millisecond, 60*time.Millisecond)
	a.Send("b", "in-flight")
	n.Partition([]string{"a"}, []string{"b"})
	if _, ok := recvWithin(t, b, 200*time.Millisecond); ok {
		t.Fatal("in-flight message crossed a partition applied before delivery")
	}
}

// Regression: a delayed send used to ride a raw goroutine timer that could
// fire after Drain, leaking a previous life's datagram into a restarted
// node's inbox. Drain must cancel in-flight delayed sends, not just empty the
// inbox.
func TestDrainCancelsInFlightDelayedSends(t *testing.T) {
	n := New(13)
	a, b := n.Endpoint("a"), n.Endpoint("b")
	n.SetDelay(30*time.Millisecond, 40*time.Millisecond)
	a.Send("b", "stale")
	if got := n.Drain("b"); got != 0 {
		t.Fatalf("Drain discarded %d queued messages, want 0 (message was in flight)", got)
	}
	if _, ok := recvWithin(t, b, 150*time.Millisecond); ok {
		t.Fatal("delayed message leaked past Drain into the next life")
	}
	if got := n.Stats().DroppedCanceled; got != 1 {
		t.Fatalf("DroppedCanceled = %d, want 1", got)
	}
}

// Same cancellation property under the simulated clock: after Drain, pushing
// virtual time far past the delay must deliver nothing and leak no event
// token (a leaked token would stall the advance and hang the Sleep below).
func TestSimDrainCancelsDelayedSend(t *testing.T) {
	sim := vclock.NewSim(1)
	clk := sim.Clock()
	vclock.Hold(clk)
	defer vclock.Release(clk)

	n := NewWithClock(1, clk)
	a, b := n.Endpoint("a"), n.Endpoint("b")
	n.SetDelay(50*time.Millisecond, 60*time.Millisecond)
	a.Send("b", "in-flight")
	if got := n.Drain("b"); got != 0 {
		t.Fatalf("Drain discarded %d queued messages, want 0", got)
	}
	clk.Sleep(500 * time.Millisecond)
	select {
	case m := <-b.Inbox():
		t.Fatalf("canceled delayed message delivered: %+v", m)
	default:
	}
	if got := n.Stats().DroppedCanceled; got != 1 {
		t.Fatalf("DroppedCanceled = %d, want 1", got)
	}
}

// Delayed delivery on the simulated clock: the delay elapses in virtual time
// (no real sleeping), and the message's event token hands off cleanly from
// the timer callback to the receiver's Ack.
func TestSimDelayedDelivery(t *testing.T) {
	sim := vclock.NewSim(2)
	clk := sim.Clock()
	vclock.Hold(clk)
	defer vclock.Release(clk)

	n := NewWithClock(2, clk)
	a, b := n.Endpoint("a"), n.Endpoint("b")
	n.SetDelay(20*time.Millisecond, 40*time.Millisecond)
	start := clk.Now()
	a.Send("b", "slow")

	vclock.Park(clk)
	m := <-b.Inbox()
	vclock.Wake(clk)
	vclock.Ack(clk)

	if m.Payload.(string) != "slow" {
		t.Fatalf("payload = %v", m.Payload)
	}
	elapsed := clk.Since(start)
	if elapsed < 20*time.Millisecond || elapsed > 40*time.Millisecond {
		t.Fatalf("virtual delay = %v, want within [20ms, 40ms]", elapsed)
	}
	if got := n.Stats().Delivered; got != 1 {
		t.Fatalf("Delivered = %d, want 1", got)
	}
}

// SetDown must discard the crashed node's queued inbox and cancel in-flight
// delayed sends, releasing their event tokens — otherwise virtual time would
// stall waiting on a receiver that no longer exists.
func TestSimSetDownReleasesQueuedTokens(t *testing.T) {
	sim := vclock.NewSim(3)
	clk := sim.Clock()
	vclock.Hold(clk)
	defer vclock.Release(clk)

	n := NewWithClock(3, clk)
	a, b := n.Endpoint("a"), n.Endpoint("b")
	a.Send("b", "queued") // immediate: holds an event token in b's inbox
	n.SetDelay(50*time.Millisecond, 60*time.Millisecond)
	a.Send("b", "in-flight")
	n.SetDown("b", true)
	// If either the queued token or the delayed timer survived, this Sleep
	// would hang: busy would never reach zero, or the fired delivery would
	// hold a token no one acknowledges.
	clk.Sleep(time.Second)
	select {
	case m := <-b.Inbox():
		t.Fatalf("crashed node received %+v", m)
	default:
	}
	s := n.Stats()
	if s.DroppedDown != 1 {
		t.Fatalf("DroppedDown = %d, want 1 (the canceled in-flight send)", s.DroppedDown)
	}
}

// Package locktable implements the deterministic scheduling structure at
// the core of Prognosticator's concurrency control (§III-C, Fig. 2): one
// FIFO queue per key, a per-transaction outstanding-lock counter, and
// grant-on-queue-order semantics. Transactions are enqueued in the
// deterministically agreed order; a transaction may execute exactly when it
// has been granted all its locks, which guarantees that concurrently
// executing transactions are pairwise compatible.
//
// Locks are reader/writer: reads at the front of a queue are granted
// together, writes exclusively — the same FIFO read/write discipline as
// Calvin's lock manager. (The paper's Fig. 2 sketches plain queues; with
// purely exclusive queues, hot catalog reads — e.g. TPC-C's NURand-skewed
// ITEM lookups — would serialize the whole workload, which contradicts the
// paper's measured parallelism, so shared read grants are clearly intended.
// An exclusive-only mode is kept for the ablation benchmarks.) Grants never
// jump the queue, so the relative order of conflicting transactions is
// exactly their enqueue order and determinism is preserved: concurrently
// granted transactions are read-compatible and therefore commute.
package locktable

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"prognosticator/internal/value"
)

// Record is one lock-table event in a grant/release trace. Grant records
// are the ground truth of the effective serial order: for each key, the
// sequence of write grants (and the read groups between them) IS the order
// in which conflicting transactions actually touched that key, independent
// of what their Seq numbers claim.
type Record struct {
	// Seq is the transaction's agreed-order position (Entry.Seq).
	Seq uint64
	// Key is the encoded key this event happened on (same encoding as
	// engine.Access.Key).
	Key string
	// Write reports the lock mode.
	Write bool
	// Grant distinguishes grants (true) from releases (false).
	Grant bool
	// Pos is the event's ordinal within its key queue: the per-key total
	// order of grants and releases.
	Pos int
	// Round is the engine execution round this trace belongs to (0 for the
	// optimistic round, 1.. for re-executions); stamped by CollectTrace.
	Round int
}

// LockKey is one lock request: a key plus its mode.
type LockKey struct {
	Key   value.Encoded
	Write bool
}

// Entry is one transaction's participation in the lock table.
type Entry struct {
	// Seq is the transaction's position in the agreed order; used for
	// deterministic tie-breaking and diagnostics (the queue insertion
	// order is what schedules).
	Seq uint64
	// Keys is the deduplicated set of lock requests.
	Keys []LockKey
	// Payload carries the engine's transaction object through the table.
	Payload any

	remaining atomic.Int32
}

// Remaining returns the number of locks not yet granted (the paper's total
// locks counter).
func (e *Entry) Remaining() int32 { return e.remaining.Load() }

// BuildKeys constructs a deduplicated lock-request list from read and write
// key sets; a key in both takes a write lock. First-occurrence order is
// preserved (reads first).
func BuildKeys(reads, writes []value.Key) []LockKey {
	idx := make(map[value.Encoded]int, len(reads)+len(writes))
	out := make([]LockKey, 0, len(reads)+len(writes))
	for _, k := range reads {
		e := k.Encode()
		if _, ok := idx[e]; !ok {
			idx[e] = len(out)
			out = append(out, LockKey{Key: e})
		}
	}
	for _, k := range writes {
		e := k.Encode()
		if i, ok := idx[e]; ok {
			out[i].Write = true
			continue
		}
		idx[e] = len(out)
		out = append(out, LockKey{Key: e, Write: true})
	}
	return out
}

// ExclusiveKeys builds an all-write lock list (the ablation mode and the
// table-granularity baselines).
func ExclusiveKeys(keys []value.Encoded) []LockKey {
	out := make([]LockKey, len(keys))
	for i, k := range keys {
		out[i] = LockKey{Key: k, Write: true}
	}
	return out
}

// tableShards is the number of queue-map shards.
const tableShards = 64

// Table is the lock table. Enqueue is intended to be called by the single
// Queuer; Release may be called concurrently by workers. The two may
// overlap: per-queue locking keeps grant hand-offs atomic.
type Table struct {
	shards [tableShards]tableShard

	// traceOn enables grant/release record collection. Set it before a
	// batch starts executing (EnableTrace); it must not be toggled while
	// Enqueue/Release are running.
	traceOn bool
	// unsafeLIFO is a test-only mutation hook (SetUnsafeLIFOGrants): grant
	// the NEWEST compatible waiter instead of the FIFO prefix. Mutual
	// exclusion is preserved — only the conflict ORDER is corrupted — so
	// the bug is invisible to state-hash checks on commutative workloads
	// and to the untraced serializability checker, but a lock-grant-traced
	// checker must catch it.
	unsafeLIFO bool
}

type tableShard struct {
	mu     sync.Mutex
	queues map[value.Encoded]*keyQueue
}

// qent is one entry's position in one key queue.
type qent struct {
	e        *Entry
	write    bool
	granted  bool
	released bool
}

type keyQueue struct {
	mu   sync.Mutex
	key  value.Encoded
	ents []qent
	head int // first non-released position

	recs []Record // grant/release trace, when the table has tracing on
	pos  int      // next Record.Pos for this queue
}

// New returns an empty lock table.
func New() *Table {
	t := &Table{}
	for i := range t.shards {
		t.shards[i].queues = make(map[value.Encoded]*keyQueue)
	}
	return t
}

// Len returns the number of key queues currently materialized.
func (t *Table) Len() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += len(sh.queues)
		sh.mu.Unlock()
	}
	return n
}

func shardOf(k value.Encoded) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(k); i++ {
		h ^= uint32(k[i])
		h *= 16777619
	}
	return h & (tableShards - 1)
}

func (t *Table) queueFor(k value.Encoded) *keyQueue {
	sh := &t.shards[shardOf(k)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	q, ok := sh.queues[k]
	if !ok {
		q = &keyQueue{key: k}
		sh.queues[k] = q
	}
	return q
}

// record appends one trace event. Must be called with q.mu held.
func (q *keyQueue) record(seq uint64, write, grant bool) {
	q.recs = append(q.recs, Record{Seq: seq, Key: string(q.key), Write: write, Grant: grant, Pos: q.pos})
	q.pos++
}

// grantScan grants the longest compatible FIFO prefix. It must be called
// with q.mu held; it returns the entries whose LAST outstanding lock was
// granted by this scan (now ready to run). The table is passed for the
// trace flag and the test-only LIFO mutation.
func (q *keyQueue) grantScan(t *Table) []*Entry {
	if t.unsafeLIFO {
		return q.grantScanLIFO(t)
	}
	var ready []*Entry
	grantedWrites, grantedReads := 0, 0
	for i := q.head; i < len(q.ents); i++ {
		en := &q.ents[i]
		if en.released {
			continue
		}
		if en.granted {
			if en.write {
				grantedWrites++
			} else {
				grantedReads++
			}
			continue
		}
		// FIFO: grant only while compatible with everything granted ahead.
		if grantedWrites > 0 || (en.write && grantedReads > 0) {
			break
		}
		en.granted = true
		if t.traceOn {
			q.record(en.e.Seq, en.write, true)
		}
		if en.write {
			grantedWrites++
		} else {
			grantedReads++
		}
		if en.e.remaining.Add(-1) == 0 {
			ready = append(ready, en.e)
		}
		if en.write {
			break // a granted write blocks everything behind it
		}
	}
	return ready
}

// grantScanLIFO is the planted-bug variant behind SetUnsafeLIFOGrants: it
// grants at most one waiter per scan, choosing the NEWEST compatible one.
// Grants remain mutually exclusive (a write is granted only when nothing is
// granted; a read only when no write is granted), so execution atomicity is
// intact — but conflicting transactions run in reverse arrival order, which
// silently breaks determinism's agreed serial order.
func (q *keyQueue) grantScanLIFO(t *Table) []*Entry {
	grantedWrites, grantedReads := 0, 0
	for i := q.head; i < len(q.ents); i++ {
		en := &q.ents[i]
		if en.released || !en.granted {
			continue
		}
		if en.write {
			grantedWrites++
		} else {
			grantedReads++
		}
	}
	for i := len(q.ents) - 1; i >= q.head; i-- {
		en := &q.ents[i]
		if en.released || en.granted {
			continue
		}
		if grantedWrites > 0 || (en.write && grantedReads > 0) {
			continue // incompatible; try an even older waiter
		}
		en.granted = true
		if t.traceOn {
			q.record(en.e.Seq, en.write, true)
		}
		if en.e.remaining.Add(-1) == 0 {
			return []*Entry{en.e}
		}
		return nil
	}
	return nil
}

// Enqueue inserts e at the tail of every queue in e.Keys and initializes
// its outstanding-lock counter. It reports whether e is immediately ready
// (all locks granted). Entries with no keys are ready trivially.
func (t *Table) Enqueue(e *Entry) bool {
	e.remaining.Store(int32(len(e.Keys)))
	if len(e.Keys) == 0 {
		return true
	}
	ready := false
	for _, lk := range e.Keys {
		q := t.queueFor(lk.Key)
		q.mu.Lock()
		q.ents = append(q.ents, qent{e: e, write: lk.Write})
		granted := q.grantScan(t)
		q.mu.Unlock()
		for _, g := range granted {
			if g == e {
				ready = true
			}
			// Appending can only ever grant the appended entry: earlier
			// entries' grant states are unchanged by a new tail.
		}
	}
	return ready
}

// Release returns e's locks on all its queues. For every queue where
// successors thereby acquire their last outstanding lock, they are passed
// to onReady. Release panics if e does not hold a granted lock on one of
// its queues — that would be a scheduling bug, not a recoverable condition.
func (t *Table) Release(e *Entry, onReady func(*Entry)) {
	for _, lk := range e.Keys {
		q := t.queueFor(lk.Key)
		q.mu.Lock()
		found := false
		for i := q.head; i < len(q.ents); i++ {
			en := &q.ents[i]
			if en.e == e && !en.released {
				if !en.granted {
					break // found but not granted: bug, reported below
				}
				en.released = true
				en.e = nil // release for GC
				if t.traceOn {
					q.record(e.Seq, en.write, false)
				}
				found = true
				break
			}
		}
		if !found {
			q.mu.Unlock()
			panic(fmt.Sprintf("locktable: release of tx %d without granted lock on %s", e.Seq, lk.Key))
		}
		for q.head < len(q.ents) && q.ents[q.head].released {
			q.head++
		}
		granted := q.grantScan(t)
		q.mu.Unlock()
		for _, g := range granted {
			onReady(g)
		}
	}
}

// EnableTrace turns grant/release record collection on or off. It must be
// called while the table is quiescent (no Enqueue/Release in flight) —
// normally once, right after New.
func (t *Table) EnableTrace(on bool) { t.traceOn = on }

// SetUnsafeLIFOGrants plants a deliberate ordering bug for mutation
// testing: grant scans pick the NEWEST compatible waiter instead of the
// FIFO prefix (see grantScanLIFO). Only safe for single-key workloads —
// multi-key transactions can deadlock under reversed grant order, which is
// one of the reasons the real table is FIFO. Test-only.
func (t *Table) SetUnsafeLIFOGrants(on bool) { t.unsafeLIFO = on }

// CollectTrace returns every grant/release record accumulated since the
// last Reset, stamped with the given engine round and sorted by (Key, Pos)
// so the output is deterministic regardless of shard-map iteration order.
// Returns nil when tracing is off.
func (t *Table) CollectTrace(round int) []Record {
	if !t.traceOn {
		return nil
	}
	var out []Record
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, q := range sh.queues {
			q.mu.Lock()
			out = append(out, q.recs...)
			q.mu.Unlock()
		}
		sh.mu.Unlock()
	}
	for i := range out {
		out[i].Round = round
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Pos < out[j].Pos
	})
	return out
}

// Reset clears all queues (and any accumulated trace records — collect
// before resetting). The engine calls it between rounds; it must not race
// with Enqueue/Release.
func (t *Table) Reset() {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for k := range sh.queues {
			delete(sh.queues, k)
		}
		sh.mu.Unlock()
	}
}

// PendingKeys returns the number of queues that still hold unreleased
// entries; used by tests to assert full drainage.
func (t *Table) PendingKeys() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, q := range sh.queues {
			q.mu.Lock()
			if q.head < len(q.ents) {
				n++
			}
			q.mu.Unlock()
		}
		sh.mu.Unlock()
	}
	return n
}

// DedupKeys builds an encoded-key list from raw keys, removing duplicates
// while preserving first-occurrence order.
func DedupKeys(keys []value.Key) []value.Encoded {
	seen := make(map[value.Encoded]bool, len(keys))
	out := make([]value.Encoded, 0, len(keys))
	for _, k := range keys {
		e := k.Encode()
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	return out
}

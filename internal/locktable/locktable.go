// Package locktable implements the deterministic scheduling structure at
// the core of Prognosticator's concurrency control (§III-C, Fig. 2): one
// FIFO queue per key, a per-transaction outstanding-lock counter, and
// grant-on-queue-order semantics. Transactions are enqueued in the
// deterministically agreed order; a transaction may execute exactly when it
// has been granted all its locks, which guarantees that concurrently
// executing transactions are pairwise compatible.
//
// Locks are reader/writer: reads at the front of a queue are granted
// together, writes exclusively — the same FIFO read/write discipline as
// Calvin's lock manager. (The paper's Fig. 2 sketches plain queues; with
// purely exclusive queues, hot catalog reads — e.g. TPC-C's NURand-skewed
// ITEM lookups — would serialize the whole workload, which contradicts the
// paper's measured parallelism, so shared read grants are clearly intended.
// An exclusive-only mode is kept for the ablation benchmarks.) Grants never
// jump the queue, so the relative order of conflicting transactions is
// exactly their enqueue order and determinism is preserved: concurrently
// granted transactions are read-compatible and therefore commute.
package locktable

import (
	"fmt"
	"sync"
	"sync/atomic"

	"prognosticator/internal/value"
)

// LockKey is one lock request: a key plus its mode.
type LockKey struct {
	Key   value.Encoded
	Write bool
}

// Entry is one transaction's participation in the lock table.
type Entry struct {
	// Seq is the transaction's position in the agreed order; used for
	// deterministic tie-breaking and diagnostics (the queue insertion
	// order is what schedules).
	Seq uint64
	// Keys is the deduplicated set of lock requests.
	Keys []LockKey
	// Payload carries the engine's transaction object through the table.
	Payload any

	remaining atomic.Int32
}

// Remaining returns the number of locks not yet granted (the paper's total
// locks counter).
func (e *Entry) Remaining() int32 { return e.remaining.Load() }

// BuildKeys constructs a deduplicated lock-request list from read and write
// key sets; a key in both takes a write lock. First-occurrence order is
// preserved (reads first).
func BuildKeys(reads, writes []value.Key) []LockKey {
	idx := make(map[value.Encoded]int, len(reads)+len(writes))
	out := make([]LockKey, 0, len(reads)+len(writes))
	for _, k := range reads {
		e := k.Encode()
		if _, ok := idx[e]; !ok {
			idx[e] = len(out)
			out = append(out, LockKey{Key: e})
		}
	}
	for _, k := range writes {
		e := k.Encode()
		if i, ok := idx[e]; ok {
			out[i].Write = true
			continue
		}
		idx[e] = len(out)
		out = append(out, LockKey{Key: e, Write: true})
	}
	return out
}

// ExclusiveKeys builds an all-write lock list (the ablation mode and the
// table-granularity baselines).
func ExclusiveKeys(keys []value.Encoded) []LockKey {
	out := make([]LockKey, len(keys))
	for i, k := range keys {
		out[i] = LockKey{Key: k, Write: true}
	}
	return out
}

// tableShards is the number of queue-map shards.
const tableShards = 64

// Table is the lock table. Enqueue is intended to be called by the single
// Queuer; Release may be called concurrently by workers. The two may
// overlap: per-queue locking keeps grant hand-offs atomic.
type Table struct {
	shards [tableShards]tableShard
}

type tableShard struct {
	mu     sync.Mutex
	queues map[value.Encoded]*keyQueue
}

// qent is one entry's position in one key queue.
type qent struct {
	e        *Entry
	write    bool
	granted  bool
	released bool
}

type keyQueue struct {
	mu   sync.Mutex
	ents []qent
	head int // first non-released position
}

// New returns an empty lock table.
func New() *Table {
	t := &Table{}
	for i := range t.shards {
		t.shards[i].queues = make(map[value.Encoded]*keyQueue)
	}
	return t
}

// Len returns the number of key queues currently materialized.
func (t *Table) Len() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += len(sh.queues)
		sh.mu.Unlock()
	}
	return n
}

func shardOf(k value.Encoded) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(k); i++ {
		h ^= uint32(k[i])
		h *= 16777619
	}
	return h & (tableShards - 1)
}

func (t *Table) queueFor(k value.Encoded) *keyQueue {
	sh := &t.shards[shardOf(k)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	q, ok := sh.queues[k]
	if !ok {
		q = &keyQueue{}
		sh.queues[k] = q
	}
	return q
}

// grantScan grants the longest compatible FIFO prefix. It must be called
// with q.mu held; it returns the entries whose LAST outstanding lock was
// granted by this scan (now ready to run).
func (q *keyQueue) grantScan() []*Entry {
	var ready []*Entry
	grantedWrites, grantedReads := 0, 0
	for i := q.head; i < len(q.ents); i++ {
		en := &q.ents[i]
		if en.released {
			continue
		}
		if en.granted {
			if en.write {
				grantedWrites++
			} else {
				grantedReads++
			}
			continue
		}
		// FIFO: grant only while compatible with everything granted ahead.
		if grantedWrites > 0 || (en.write && grantedReads > 0) {
			break
		}
		en.granted = true
		if en.write {
			grantedWrites++
		} else {
			grantedReads++
		}
		if en.e.remaining.Add(-1) == 0 {
			ready = append(ready, en.e)
		}
		if en.write {
			break // a granted write blocks everything behind it
		}
	}
	return ready
}

// Enqueue inserts e at the tail of every queue in e.Keys and initializes
// its outstanding-lock counter. It reports whether e is immediately ready
// (all locks granted). Entries with no keys are ready trivially.
func (t *Table) Enqueue(e *Entry) bool {
	e.remaining.Store(int32(len(e.Keys)))
	if len(e.Keys) == 0 {
		return true
	}
	ready := false
	for _, lk := range e.Keys {
		q := t.queueFor(lk.Key)
		q.mu.Lock()
		q.ents = append(q.ents, qent{e: e, write: lk.Write})
		granted := q.grantScan()
		q.mu.Unlock()
		for _, g := range granted {
			if g == e {
				ready = true
			}
			// Appending can only ever grant the appended entry: earlier
			// entries' grant states are unchanged by a new tail.
		}
	}
	return ready
}

// Release returns e's locks on all its queues. For every queue where
// successors thereby acquire their last outstanding lock, they are passed
// to onReady. Release panics if e does not hold a granted lock on one of
// its queues — that would be a scheduling bug, not a recoverable condition.
func (t *Table) Release(e *Entry, onReady func(*Entry)) {
	for _, lk := range e.Keys {
		q := t.queueFor(lk.Key)
		q.mu.Lock()
		found := false
		for i := q.head; i < len(q.ents); i++ {
			en := &q.ents[i]
			if en.e == e && !en.released {
				if !en.granted {
					break // found but not granted: bug, reported below
				}
				en.released = true
				en.e = nil // release for GC
				found = true
				break
			}
		}
		if !found {
			q.mu.Unlock()
			panic(fmt.Sprintf("locktable: release of tx %d without granted lock on %s", e.Seq, lk.Key))
		}
		for q.head < len(q.ents) && q.ents[q.head].released {
			q.head++
		}
		granted := q.grantScan()
		q.mu.Unlock()
		for _, g := range granted {
			onReady(g)
		}
	}
}

// Reset clears all queues. The engine calls it between batches; it must not
// race with Enqueue/Release.
func (t *Table) Reset() {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for k := range sh.queues {
			delete(sh.queues, k)
		}
		sh.mu.Unlock()
	}
}

// PendingKeys returns the number of queues that still hold unreleased
// entries; used by tests to assert full drainage.
func (t *Table) PendingKeys() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, q := range sh.queues {
			q.mu.Lock()
			if q.head < len(q.ents) {
				n++
			}
			q.mu.Unlock()
		}
		sh.mu.Unlock()
	}
	return n
}

// DedupKeys builds an encoded-key list from raw keys, removing duplicates
// while preserving first-occurrence order.
func DedupKeys(keys []value.Key) []value.Encoded {
	seen := make(map[value.Encoded]bool, len(keys))
	out := make([]value.Encoded, 0, len(keys))
	for _, k := range keys {
		e := k.Encode()
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	return out
}

package locktable

import (
	"fmt"
	"reflect"
	"testing"
)

// collectGrantSeqs extracts the Seq of every grant record in trace order.
func collectGrantSeqs(recs []Record) []uint64 {
	var out []uint64
	for _, r := range recs {
		if r.Grant {
			out = append(out, r.Seq)
		}
	}
	return out
}

func TestTraceRecordsGrantReleaseOrder(t *testing.T) {
	lt := New()
	lt.EnableTrace(true)
	w1 := rentry(1, nil, []string{"x"})
	r2 := rentry(2, []string{"x"}, nil)
	r3 := rentry(3, []string{"x"}, nil)
	w4 := rentry(4, nil, []string{"x"})
	if !lt.Enqueue(w1) || lt.Enqueue(r2) || lt.Enqueue(r3) || lt.Enqueue(w4) {
		t.Fatal("only w1 should be immediately ready")
	}
	release := func(e *Entry) { lt.Release(e, func(*Entry) {}) }
	release(w1) // grants r2 and r3 together
	release(r3) // released out of grant order: w4 still blocked by r2
	release(r2) // grants w4
	release(w4)

	got := lt.CollectTrace(2)
	x := string(ek("x"))
	want := []Record{
		{Seq: 1, Key: x, Write: true, Grant: true, Pos: 0, Round: 2},
		{Seq: 1, Key: x, Write: true, Grant: false, Pos: 1, Round: 2},
		{Seq: 2, Key: x, Write: false, Grant: true, Pos: 2, Round: 2},
		{Seq: 3, Key: x, Write: false, Grant: true, Pos: 3, Round: 2},
		{Seq: 3, Key: x, Write: false, Grant: false, Pos: 4, Round: 2},
		{Seq: 2, Key: x, Write: false, Grant: false, Pos: 5, Round: 2},
		{Seq: 4, Key: x, Write: true, Grant: true, Pos: 6, Round: 2},
		{Seq: 4, Key: x, Write: true, Grant: false, Pos: 7, Round: 2},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("trace mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	// Releases are timing-dependent in a concurrent run; the grant sequence
	// is the deterministic part the checker relies on.
	if seqs := collectGrantSeqs(got); !reflect.DeepEqual(seqs, []uint64{1, 2, 3, 4}) {
		t.Fatalf("grant order = %v, want FIFO 1,2,3,4", seqs)
	}
}

func TestCollectTraceNilWhenOff(t *testing.T) {
	lt := New()
	a := entry(1, "x")
	lt.Enqueue(a)
	lt.Release(a, func(*Entry) {})
	if recs := lt.CollectTrace(0); recs != nil {
		t.Fatalf("tracing off, CollectTrace = %+v, want nil", recs)
	}
	lt.EnableTrace(true)
	lt.EnableTrace(false)
	b := entry(2, "x")
	lt.Enqueue(b)
	if recs := lt.CollectTrace(0); recs != nil {
		t.Fatalf("tracing re-disabled, CollectTrace = %+v, want nil", recs)
	}
}

func TestCollectTraceSortedAcrossKeys(t *testing.T) {
	lt := New()
	lt.EnableTrace(true)
	// Interleave activity across keys so per-shard gather order cannot
	// accidentally be the sorted order for all of them.
	var ents []*Entry
	for i := 0; i < 8; i++ {
		e := entry(uint64(i+1), fmt.Sprintf("k%d", i%4))
		ents = append(ents, e)
		lt.Enqueue(e)
	}
	for _, e := range ents {
		lt.Release(e, func(*Entry) {})
	}
	recs := lt.CollectTrace(0)
	if len(recs) != 16 { // 8 grants + 8 releases
		t.Fatalf("record count = %d, want 16", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		a, b := recs[i-1], recs[i]
		if a.Key > b.Key || (a.Key == b.Key && a.Pos >= b.Pos) {
			t.Fatalf("records not sorted by (Key, Pos): %+v before %+v", a, b)
		}
	}
}

func TestResetClearsTrace(t *testing.T) {
	lt := New()
	lt.EnableTrace(true)
	a := entry(1, "x")
	lt.Enqueue(a)
	lt.Release(a, func(*Entry) {})
	if len(lt.CollectTrace(0)) == 0 {
		t.Fatal("no records before Reset")
	}
	lt.Reset()
	if recs := lt.CollectTrace(0); len(recs) != 0 {
		t.Fatalf("records survived Reset: %+v", recs)
	}
}

// TestLIFOGrantsReverseConflictOrder pins the planted bug's observable
// behavior: under SetUnsafeLIFOGrants the newest compatible waiter is
// granted on each release, so three conflicting writers enqueued 1,2,3
// execute 1,3,2 — atomicity preserved, agreed order broken, and the trace
// records exactly that inversion.
func TestLIFOGrantsReverseConflictOrder(t *testing.T) {
	lt := New()
	lt.EnableTrace(true)
	lt.SetUnsafeLIFOGrants(true)
	w1, w2, w3 := entry(1, "x"), entry(2, "x"), entry(3, "x")
	if !lt.Enqueue(w1) {
		t.Fatal("w1 should be granted on an empty queue")
	}
	if lt.Enqueue(w2) || lt.Enqueue(w3) {
		t.Fatal("w2/w3 must wait while w1 holds x")
	}
	var order []uint64
	onReady := func(e *Entry) { order = append(order, e.Seq) }
	lt.Release(w1, onReady)
	if len(order) != 1 || order[0] != 3 {
		t.Fatalf("after releasing w1, ready = %v, want [3] (newest first)", order)
	}
	lt.Release(w3, onReady)
	lt.Release(w2, onReady)
	if want := []uint64{3, 2}; !reflect.DeepEqual(order, want) {
		t.Fatalf("ready order = %v, want %v", order, want)
	}
	if seqs := collectGrantSeqs(lt.CollectTrace(0)); !reflect.DeepEqual(seqs, []uint64{1, 3, 2}) {
		t.Fatalf("grant order = %v, want the LIFO inversion 1,3,2", seqs)
	}
	if lt.PendingKeys() != 0 {
		t.Fatalf("pending keys = %d", lt.PendingKeys())
	}
}

// TestLIFOPartialGrantNotReady covers the LIFO scan on an entry that still
// has outstanding locks elsewhere: a grant that is not the last lock must
// not report the entry ready.
func TestLIFOPartialGrantNotReady(t *testing.T) {
	lt := New()
	lt.SetUnsafeLIFOGrants(true)
	w1 := entry(1, "x")
	b := entry(2, "x", "y") // y granted at enqueue, x held by w1
	if !lt.Enqueue(w1) {
		t.Fatal("w1 ready")
	}
	if lt.Enqueue(b) {
		t.Fatal("b must wait on x")
	}
	if b.Remaining() != 1 {
		t.Fatalf("b remaining = %d, want 1 (y granted, x pending)", b.Remaining())
	}
	var ready []*Entry
	lt.Release(w1, func(e *Entry) { ready = append(ready, e) })
	if len(ready) != 1 || ready[0] != b {
		t.Fatalf("releasing w1 must ready b, got %v", ready)
	}
	lt.Release(b, func(*Entry) { t.Fatal("nothing follows b") })
}

package locktable

import (
	"math/rand"
	"sync"
	"testing"

	"prognosticator/internal/value"
)

func ek(s string) value.Encoded { return value.NewKey(s).Encode() }

// entry builds an all-write (exclusive) entry, the mode the original tests
// exercise; RW-specific tests build LockKeys directly.
func entry(seq uint64, keys ...string) *Entry {
	ks := make([]value.Encoded, len(keys))
	for i, k := range keys {
		ks[i] = ek(k)
	}
	return &Entry{Seq: seq, Keys: ExclusiveKeys(ks)}
}

func rentry(seq uint64, reads, writes []string) *Entry {
	var lks []LockKey
	for _, k := range reads {
		lks = append(lks, LockKey{Key: ek(k)})
	}
	for _, k := range writes {
		lks = append(lks, LockKey{Key: ek(k), Write: true})
	}
	return &Entry{Seq: seq, Keys: lks}
}

func TestDisjointTransactionsReadyImmediately(t *testing.T) {
	lt := New()
	a := entry(1, "x", "y")
	b := entry(2, "z")
	if !lt.Enqueue(a) {
		t.Fatal("a should be ready (empty table)")
	}
	if !lt.Enqueue(b) {
		t.Fatal("b should be ready (disjoint keys)")
	}
}

func TestConflictingTransactionsSerialize(t *testing.T) {
	lt := New()
	a := entry(1, "x", "y")
	b := entry(2, "y", "z")
	c := entry(3, "z")
	if !lt.Enqueue(a) {
		t.Fatal("a ready")
	}
	if lt.Enqueue(b) {
		t.Fatal("b must wait for a (shares y)")
	}
	if lt.Enqueue(c) {
		t.Fatal("c must wait for b (shares z)")
	}
	if b.Remaining() != 1 || c.Remaining() != 1 {
		t.Fatalf("remaining: b=%d c=%d", b.Remaining(), c.Remaining())
	}
	var ready []*Entry
	lt.Release(a, func(e *Entry) { ready = append(ready, e) })
	if len(ready) != 1 || ready[0] != b {
		t.Fatalf("after releasing a, ready = %v", ready)
	}
	ready = nil
	lt.Release(b, func(e *Entry) { ready = append(ready, e) })
	if len(ready) != 1 || ready[0] != c {
		t.Fatalf("after releasing b, ready = %v", ready)
	}
	lt.Release(c, func(*Entry) { t.Fatal("nothing should follow c") })
	if lt.PendingKeys() != 0 {
		t.Fatalf("pending keys = %d", lt.PendingKeys())
	}
}

func TestFigure2Scenario(t *testing.T) {
	// Tx1 and Tx2 are at the heads of disjoint queues; Tx3 waits on both.
	lt := New()
	tx1 := entry(1, "a", "b")
	tx2 := entry(2, "c")
	tx3 := entry(3, "b", "c")
	if !lt.Enqueue(tx1) || !lt.Enqueue(tx2) {
		t.Fatal("tx1 and tx2 must be concurrently ready")
	}
	if lt.Enqueue(tx3) {
		t.Fatal("tx3 conflicts with both")
	}
	if tx3.Remaining() != 2 {
		t.Fatalf("tx3 remaining = %d, want 2", tx3.Remaining())
	}
	var ready []*Entry
	lt.Release(tx1, func(e *Entry) { ready = append(ready, e) })
	if len(ready) != 0 {
		t.Fatal("tx3 still waits for tx2")
	}
	lt.Release(tx2, func(e *Entry) { ready = append(ready, e) })
	if len(ready) != 1 || ready[0] != tx3 {
		t.Fatal("tx3 must become ready after both predecessors")
	}
}

func TestEmptyKeysReadyTrivially(t *testing.T) {
	lt := New()
	e := entry(1)
	if !lt.Enqueue(e) {
		t.Fatal("keyless entry must be ready")
	}
	lt.Release(e, func(*Entry) { t.Fatal("no successors") })
}

func TestDuplicateKeyPanicsAvoidedByDedup(t *testing.T) {
	raw := []value.Key{
		value.NewKey("T", value.Int(1)),
		value.NewKey("T", value.Int(2)),
		value.NewKey("T", value.Int(1)),
	}
	keys := DedupKeys(raw)
	if len(keys) != 2 {
		t.Fatalf("DedupKeys = %v", keys)
	}
	if keys[0] != raw[0].Encode() || keys[1] != raw[1].Encode() {
		t.Fatal("DedupKeys must preserve first-occurrence order")
	}
}

func TestBuildKeysWriteWins(t *testing.T) {
	r := []value.Key{value.NewKey("T", value.Int(1)), value.NewKey("T", value.Int(2))}
	w := []value.Key{value.NewKey("T", value.Int(2)), value.NewKey("T", value.Int(3))}
	lks := BuildKeys(r, w)
	if len(lks) != 3 {
		t.Fatalf("BuildKeys = %v", lks)
	}
	want := map[string]bool{"T/i1": false, "T/i2": true, "T/i3": true}
	for _, lk := range lks {
		if want[string(lk.Key)] != lk.Write {
			t.Fatalf("lock %s write=%v", lk.Key, lk.Write)
		}
	}
}

func TestSharedReadsGrantTogether(t *testing.T) {
	lt := New()
	r1 := rentry(1, []string{"item"}, []string{"a"})
	r2 := rentry(2, []string{"item"}, []string{"b"})
	r3 := rentry(3, []string{"item"}, []string{"c"})
	if !lt.Enqueue(r1) || !lt.Enqueue(r2) || !lt.Enqueue(r3) {
		t.Fatal("read-sharing entries must all be ready immediately")
	}
}

func TestWriteBlocksReaders(t *testing.T) {
	lt := New()
	w := rentry(1, nil, []string{"item"})
	r := rentry(2, []string{"item"}, nil)
	if !lt.Enqueue(w) {
		t.Fatal("writer first must be ready")
	}
	if lt.Enqueue(r) {
		t.Fatal("reader behind writer must wait")
	}
	var ready []*Entry
	lt.Release(w, func(e *Entry) { ready = append(ready, e) })
	if len(ready) != 1 || ready[0] != r {
		t.Fatalf("reader not granted after writer release: %v", ready)
	}
	lt.Release(r, func(*Entry) { t.Fatal("no successors") })
}

func TestReadersBlockWriterUntilAllRelease(t *testing.T) {
	lt := New()
	r1 := rentry(1, []string{"item"}, nil)
	r2 := rentry(2, []string{"item"}, nil)
	w := rentry(3, nil, []string{"item"})
	if !lt.Enqueue(r1) || !lt.Enqueue(r2) {
		t.Fatal("readers must share")
	}
	if lt.Enqueue(w) {
		t.Fatal("writer behind readers must wait")
	}
	var ready []*Entry
	// Release out of order: r2 first, then r1.
	lt.Release(r2, func(e *Entry) { ready = append(ready, e) })
	if len(ready) != 0 {
		t.Fatal("writer granted while a reader still holds")
	}
	lt.Release(r1, func(e *Entry) { ready = append(ready, e) })
	if len(ready) != 1 || ready[0] != w {
		t.Fatalf("writer not granted after all readers released: %v", ready)
	}
}

func TestNoJumpingFIFO(t *testing.T) {
	// reader, writer, reader: the trailing reader must NOT share with the
	// leading one across the waiting writer (FIFO fairness keeps
	// determinism).
	lt := New()
	r1 := rentry(1, []string{"k"}, nil)
	w := rentry(2, nil, []string{"k"})
	r2 := rentry(3, []string{"k"}, nil)
	if !lt.Enqueue(r1) {
		t.Fatal("first reader ready")
	}
	if lt.Enqueue(w) {
		t.Fatal("writer must wait")
	}
	if lt.Enqueue(r2) {
		t.Fatal("trailing reader must not jump the writer")
	}
	var ready []*Entry
	lt.Release(r1, func(e *Entry) { ready = append(ready, e) })
	if len(ready) != 1 || ready[0] != w {
		t.Fatalf("after r1: ready=%v", ready)
	}
	ready = nil
	lt.Release(w, func(e *Entry) { ready = append(ready, e) })
	if len(ready) != 1 || ready[0] != r2 {
		t.Fatalf("after w: ready=%v", ready)
	}
	lt.Release(r2, func(*Entry) {})
	if lt.PendingKeys() != 0 {
		t.Fatal("not drained")
	}
}

func TestReleaseNotAtHeadPanics(t *testing.T) {
	lt := New()
	a := entry(1, "x")
	b := entry(2, "x")
	lt.Enqueue(a)
	lt.Enqueue(b)
	defer func() {
		if recover() == nil {
			t.Fatal("releasing a non-head entry must panic")
		}
	}()
	lt.Release(b, func(*Entry) {})
}

func TestReset(t *testing.T) {
	lt := New()
	lt.Enqueue(entry(1, "x"))
	lt.Enqueue(entry(2, "x"))
	lt.Reset()
	if lt.Len() != 0 {
		t.Fatalf("Len after reset = %d", lt.Len())
	}
	// Fresh entries start clean after reset.
	if !lt.Enqueue(entry(3, "x")) {
		t.Fatal("first entry after reset must be ready")
	}
}

// TestPropSchedulingMatchesQueueOrder drives random workloads through the
// table and asserts the fundamental invariants: (1) every transaction is
// eventually ready exactly once, (2) at no time are two transactions with a
// common key simultaneously "executing", and (3) conflicting transactions
// become ready in enqueue order.
func TestPropSchedulingMatchesQueueOrder(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		lt := New()
		n := 2 + r.Intn(60)
		entries := make([]*Entry, n)
		ready := make(chan *Entry, n)
		for i := range entries {
			nk := 1 + r.Intn(4)
			keys := map[string]bool{}
			for len(keys) < nk {
				keys[string(rune('a'+r.Intn(8)))] = true
			}
			var ks []string
			for k := range keys {
				ks = append(ks, k)
			}
			entries[i] = entry(uint64(i), ks...)
		}
		for _, e := range entries {
			if lt.Enqueue(e) {
				ready <- e
			}
		}
		// Simulate execution: repeatedly pick a ready entry (randomly,
		// like racing workers would), check invariants, release.
		holding := map[value.Encoded]*Entry{}
		completedOrder := map[value.Encoded][]uint64{}
		done := 0
		var pool []*Entry
		for done < n {
			for {
				select {
				case e := <-ready:
					pool = append(pool, e)
					continue
				default:
				}
				break
			}
			if len(pool) == 0 {
				t.Fatalf("trial %d: deadlock with %d/%d done", trial, done, n)
			}
			idx := r.Intn(len(pool))
			e := pool[idx]
			pool = append(pool[:idx], pool[idx+1:]...)
			for _, lk := range e.Keys {
				if other, busy := holding[lk.Key]; busy {
					t.Fatalf("trial %d: txs %d and %d concurrently hold %s", trial, e.Seq, other.Seq, lk.Key)
				}
				holding[lk.Key] = e
			}
			// "execute"
			for _, lk := range e.Keys {
				completedOrder[lk.Key] = append(completedOrder[lk.Key], e.Seq)
				delete(holding, lk.Key)
			}
			lt.Release(e, func(nx *Entry) { ready <- nx })
			done++
		}
		// Per-key completion order must equal enqueue (Seq) order.
		for k, seqs := range completedOrder {
			for i := 1; i < len(seqs); i++ {
				if seqs[i] < seqs[i-1] {
					t.Fatalf("trial %d: key %s executed out of order: %v", trial, k, seqs)
				}
			}
		}
		if lt.PendingKeys() != 0 {
			t.Fatalf("trial %d: table not drained", trial)
		}
	}
}

// TestConcurrentWorkersDrainTable exercises Release from many goroutines.
func TestConcurrentWorkersDrainTable(t *testing.T) {
	lt := New()
	const n = 500
	ready := make(chan *Entry, n)
	for i := 0; i < n; i++ {
		e := entry(uint64(i),
			string(rune('a'+i%7)), string(rune('h'+i%5)))
		if lt.Enqueue(e) {
			ready <- e
		}
	}
	var done sync.WaitGroup
	var count atomic64
	workers := 8
	done.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer done.Done()
			for e := range ready {
				lt.Release(e, func(nx *Entry) { ready <- nx })
				if count.inc() == n {
					close(ready)
				}
			}
		}()
	}
	done.Wait()
	if count.get() != n {
		t.Fatalf("completed %d, want %d", count.get(), n)
	}
	if lt.PendingKeys() != 0 {
		t.Fatal("table not drained")
	}
}

type atomic64 struct {
	mu sync.Mutex
	v  int
}

func (a *atomic64) inc() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.v++
	return a.v
}

func (a *atomic64) get() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.v
}

package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"prognosticator/internal/lang"
	"prognosticator/internal/locktable"
	"prognosticator/internal/profile"
	"prognosticator/internal/store"
	"prognosticator/internal/value"
)

// Engine is the Prognosticator executor. One goroutine (the caller of
// ExecuteBatch) plays the Queuer; Config.Workers worker goroutines execute
// transactions. Batches must be executed one at a time.
type Engine struct {
	reg *Registry
	st  *store.Store
	cfg Config
	lt  *locktable.Table
}

var _ Executor = (*Engine)(nil)

// New returns an engine over the given catalog and store.
func New(reg *Registry, st *store.Store, cfg Config) *Engine {
	e := &Engine{reg: reg, st: st, cfg: cfg.withDefaults(), lt: locktable.New()}
	e.lt.EnableTrace(e.cfg.TraceLocks)
	return e
}

// LockTable exposes the engine's lock table. Tests use it to plant
// mutations (locktable.Table.SetUnsafeLIFOGrants) and inspect traces; the
// engine owns it and resets it every execution round.
func (e *Engine) LockTable() *locktable.Table { return e.lt }

// Name implements Executor.
func (e *Engine) Name() string { return e.cfg.VariantName() }

// Store returns the underlying store (for state-hash checks).
func (e *Engine) Store() *store.Store { return e.st }

// txRuntime carries one request through the batch pipeline.
type txRuntime struct {
	req   Request
	prog  *lang.Program
	prof  *profile.Profile
	class profile.Class
	ks    *profile.KeySet
	entry *locktable.Entry
	out   *TxOutcome
	// Operation counts of the most recent execution attempt and of the
	// preparation, for the virtual-time cost model (sim.go), plus the
	// accumulated virtual durations.
	lastReads, lastWrites int
	prepReads, prepWrites int
	prepFull              bool // preparation ran the full logic (recon)
	vExec, vPrep          time.Duration
	// directKS caches the input-only part of a pivot-free DT's key-set: it
	// never changes across MF re-preparation rounds, so only the indirect
	// part is re-instantiated against the updated store state.
	directKS *profile.KeySet
}

// ExecuteBatch implements Executor. Phases (§III-C):
//
//  1. Workers drain their round-robin ROT queues against the
//     previous-batch snapshot while, concurrently, indirect keys are
//     prepared (by Queuer + Workers in MQ mode, Queuer alone in 1Q mode).
//  2. The Queuer enqueues update transactions into the lock table — DTs
//     ahead of ITs — seeding the ready queue.
//  3. Workers drain the ready queue: DTs validate their pivot observations
//     first and abort into the failed list on any change; executions are
//     buffered and flushed before lock release.
//  4. Failed transactions are re-executed sequentially (SF) or re-prepared
//     and re-enqueued in rounds (MF).
func (e *Engine) ExecuteBatch(batch []Request) (*BatchResult, error) {
	start := time.Now()
	epoch := e.st.BeginEpoch()
	snap := e.st.ViewAt(epoch - 1)
	writer := e.st.WriterAt(epoch)
	res := &BatchResult{Epoch: epoch, Start: start, Outcomes: make([]TxOutcome, len(batch))}

	rotQueues := make([][]*txRuntime, e.cfg.Workers)
	var dts, its []*txRuntime
	rotIdx := 0
	for i, req := range batch {
		prog, ok := e.reg.Programs[req.TxName]
		if !ok {
			return nil, fmt.Errorf("engine: unknown transaction %q", req.TxName)
		}
		prof := e.reg.Profiles[req.TxName]
		class := e.reg.Classes[req.TxName]
		res.Outcomes[i] = TxOutcome{Seq: req.Seq, TxName: req.TxName, Class: class}
		tx := &txRuntime{req: req, prog: prog, prof: prof, class: class, out: &res.Outcomes[i]}
		switch class {
		case profile.ClassROT:
			// Round-robin distribution into per-worker local queues keeps
			// ROT execution coordination-free (§III-C).
			rotQueues[rotIdx%e.cfg.Workers] = append(rotQueues[rotIdx%e.cfg.Workers], tx)
			rotIdx++
			res.ROTs++
		case profile.ClassDT:
			dts = append(dts, tx)
			res.Updates++
		default:
			its = append(its, tx)
			res.Updates++
		}
	}
	// DTs ahead of ITs so they execute earlier, shrinking the window in
	// which their pivot predictions can go stale.
	updates := make([]*txRuntime, 0, len(dts)+len(its))
	updates = append(updates, dts...)
	updates = append(updates, its...)

	var errOnce sync.Once
	var firstErr error
	reportErr := func(err error) {
		errOnce.Do(func() { firstErr = err })
	}

	// Phase 1: ROT execution overlapped with key-set preparation.
	prepCh := make(chan *txRuntime, len(updates)+1)
	for _, tx := range updates {
		prepCh <- tx
	}
	close(prepCh)
	var wg sync.WaitGroup
	for w := 0; w < e.cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, rot := range rotQueues[w] {
				if err := e.execROT(rot, snap); err != nil {
					reportErr(err)
				}
			}
			if e.cfg.Queue == QueueMulti {
				for tx := range prepCh {
					if err := e.prepare(tx, snap); err != nil {
						reportErr(err)
					}
				}
			}
		}(w)
	}
	// The Queuer always participates in preparation; in 1Q mode it is the
	// only preparer.
	for tx := range prepCh {
		if err := e.prepare(tx, snap); err != nil {
			reportErr(err)
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// Phases 2+3: enqueue and execute.
	failed, trace, err := e.executeRound(updates, writer, 0)
	if err != nil {
		return nil, err
	}
	res.LockTrace = trace

	// Phase 4: failed transactions.
	switch e.cfg.Fail {
	case FailSequential:
		if len(failed) > 0 {
			res.FailRound = 1
			sortBySeq(failed)
			for _, tx := range failed {
				if err := e.execDirect(tx, writer); err != nil {
					return nil, err
				}
			}
		}
	default: // FailReenqueue
		for round := 0; len(failed) > 0; round++ {
			res.FailRound = round + 1
			sortBySeq(failed)
			// Re-prepare against the current (partially executed) state.
			for _, tx := range failed {
				if err := e.prepareWith(tx, writer); err != nil {
					return nil, err
				}
			}
			prev := len(failed)
			failed, trace, err = e.executeRound(failed, writer, round+1)
			if err != nil {
				return nil, err
			}
			res.LockTrace = append(res.LockTrace, trace...)
			// Robustness fallback: a round that commits nothing means the
			// profile mispredicts persistently (e.g. read-own-write
			// aliasing outside the profile's model). Sequential unguarded
			// re-execution is always correct and deterministic.
			if len(failed) >= prev || round >= maxFailRounds {
				sortBySeq(failed)
				for _, tx := range failed {
					if err := e.execDirect(tx, writer); err != nil {
						return nil, err
					}
				}
				failed = nil
			}
		}
	}

	// Version GC sweeps every key, so amortize it over gcEvery batches.
	if epoch%gcEvery == 0 {
		if horizon := e.cfg.GCHorizon; epoch > horizon {
			e.st.GC(epoch - horizon)
		}
	}
	for i := range res.Outcomes {
		res.Aborts += res.Outcomes[i].Aborts
	}
	res.End = time.Now()
	return res, nil
}

// gcEvery is the store-GC cadence in batches.
const gcEvery = 16

// maxFailRounds bounds MF convergence; each round commits at least the
// first failed transaction of every conflict chain, so hitting this limit
// indicates a bug rather than contention.
const maxFailRounds = 1000

func sortBySeq(txs []*txRuntime) {
	sort.Slice(txs, func(i, j int) bool { return txs[i].req.Seq < txs[j].req.Seq })
}

// executeRound enqueues the given transactions (in slice order) and drains
// the ready queue with the worker pool. It returns the transactions that
// failed pivot validation or key-set guarding, plus — with
// Config.TraceLocks — the round's lock grant/release trace. Sequential
// fallback execution (execDirect) takes no locks and leaves no trace.
func (e *Engine) executeRound(txs []*txRuntime, writer *store.WriteView, round int) ([]*txRuntime, []locktable.Record, error) {
	if len(txs) == 0 {
		return nil, nil, nil
	}
	e.lt.Reset()
	readyCh := make(chan *locktable.Entry, len(txs)+1)
	for _, tx := range txs {
		if e.lt.Enqueue(tx.entry) {
			readyCh <- tx.entry
		}
	}
	var remaining atomic.Int32
	remaining.Store(int32(len(txs)))
	var failedMu sync.Mutex
	var failed []*txRuntime
	var errOnce sync.Once
	var firstErr error
	var wg sync.WaitGroup
	for w := 0; w < e.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for entry := range readyCh {
				tx := entry.Payload.(*txRuntime)
				ok, err := e.execUpdate(tx, writer)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
				}
				if err == nil && !ok {
					tx.out.Aborts++
					failedMu.Lock()
					failed = append(failed, tx)
					failedMu.Unlock()
				}
				e.lt.Release(entry, func(n *locktable.Entry) { readyCh <- n })
				if remaining.Add(-1) == 0 {
					close(readyCh)
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, nil, firstErr
	}
	return failed, e.lt.CollectTrace(round), nil
}

// execROT runs a read-only transaction against the snapshot; no locks, no
// writes, results discarded (a real deployment would return them to the
// client).
func (e *Engine) execROT(tx *txRuntime, snap *store.ReadView) error {
	t0 := time.Now()
	var kv lang.KV = snap
	var ov *Overlay
	if e.cfg.RecordFootprints {
		ov = NewOverlay(snap)
		ov.Record()
		kv = ov
	}
	resu, err := lang.Run(tx.prog, tx.req.Inputs, kv)
	if err != nil {
		return fmt.Errorf("engine: ROT %s(seq %d): %w", tx.req.TxName, tx.req.Seq, err)
	}
	if ov != nil {
		tx.out.ReadSet, _ = ov.Footprints()
	}
	tx.lastReads, tx.lastWrites = len(resu.Reads), 0
	tx.out.Emitted = resu.Emitted
	tx.out.Exec += time.Since(t0)
	tx.out.Done = time.Now()
	return nil
}

// prepare computes the key-set of an update transaction against the
// beginning-of-batch snapshot.
func (e *Engine) prepare(tx *txRuntime, snap *store.ReadView) error {
	return e.prepareReader(tx, snap, snap)
}

// prepareWith re-prepares against the current batch state (MF rounds).
func (e *Engine) prepareWith(tx *txRuntime, writer *store.WriteView) error {
	return e.prepareReader(tx, writer, writer)
}

// prepareReader computes the key-set using kv for reconnaissance reads and
// pr for pivot reads, then builds the lock-table entry.
func (e *Engine) prepareReader(tx *txRuntime, kv lang.KV, pr profile.PivotReader) error {
	t0 := time.Now()
	defer func() { tx.out.Prepare += time.Since(t0) }()
	switch e.cfg.Prepare {
	case PrepareRecon:
		// OLLP-style reconnaissance: run the full transaction logic on the
		// snapshot, buffering (and discarding) its writes, to discover the
		// key-set. This is the structural cost of the -R variants: a full
		// execution per preparation, vs only pivot reads for SE profiles.
		ov := NewOverlay(kv)
		resu, err := lang.Run(tx.prog, tx.req.Inputs, ov)
		if err != nil {
			return fmt.Errorf("engine: reconnaissance %s(seq %d): %w", tx.req.TxName, tx.req.Seq, err)
		}
		tx.ks = &profile.KeySet{Reads: resu.Reads, Writes: resu.Writes}
		tx.prepReads, tx.prepWrites, tx.prepFull = len(resu.Reads), len(resu.Writes), true
	default:
		var ks *profile.KeySet
		if e.reg.PivotFree[tx.req.TxName] {
			// §III-C client-side prediction: the traversal is proven
			// pivot-free, so the direct part of the key-set is instantiated
			// from the inputs alone — computed once and reused across MF
			// re-preparation rounds — and only pivot-dependent accesses
			// touch the store.
			if tx.directKS == nil {
				var direct *profile.KeySet
				var err error
				if e.cfg.DirectMemo != nil {
					direct, err = e.cfg.DirectMemo.InstantiateDirect(tx.prof, tx.req.Inputs)
				} else {
					direct, err = tx.prof.InstantiateDirect(tx.req.Inputs)
				}
				if err != nil {
					return fmt.Errorf("engine: instantiate direct %s(seq %d): %w", tx.req.TxName, tx.req.Seq, err)
				}
				tx.directKS = direct
			}
			indirect, err := tx.prof.InstantiateIndirect(tx.req.Inputs, pr)
			if err != nil {
				return fmt.Errorf("engine: instantiate indirect %s(seq %d): %w", tx.req.TxName, tx.req.Seq, err)
			}
			ks = profile.Merge(tx.directKS, indirect)
			tx.out.DirectKeys = len(tx.directKS.Reads) + len(tx.directKS.Writes)
		} else {
			full, err := tx.prof.Instantiate(tx.req.Inputs, pr)
			if err != nil {
				return fmt.Errorf("engine: instantiate %s(seq %d): %w", tx.req.TxName, tx.req.Seq, err)
			}
			ks = full
		}
		tx.ks = ks
		tx.prepReads, tx.prepWrites, tx.prepFull = len(ks.Pivots), 0, false
	}
	lockKeys := locktable.BuildKeys(tx.ks.Reads, tx.ks.Writes)
	if e.cfg.ExclusiveLocks {
		for i := range lockKeys {
			lockKeys[i].Write = true
		}
	}
	tx.entry = &locktable.Entry{Seq: tx.req.Seq, Keys: lockKeys, Payload: tx}
	return nil
}

// execUpdate validates and executes one update transaction while it holds
// all its locks. It returns ok=false when the transaction must abort
// (stale pivot observation or key-set guard violation).
func (e *Engine) execUpdate(tx *txRuntime, writer *store.WriteView) (bool, error) {
	t0 := time.Now()
	defer func() { tx.out.Exec += time.Since(t0) }()
	// Pivot validation (§III-C): the keys this DT locked were derived from
	// pivot values read at prepare time; if any pivot changed since, the
	// derived key-set may be wrong and the transaction must abort.
	if e.cfg.Prepare == PrepareSE {
		for _, obs := range tx.ks.Pivots {
			cur, found := writer.ReadPivot(obs.Key, obs.Field)
			if !found {
				cur = value.Int(0)
			}
			if !cur.Equal(obs.Value) {
				// Aborted during validation: only the pivot re-reads were
				// performed.
				tx.lastReads, tx.lastWrites = len(tx.ks.Pivots), 0
				return false, nil
			}
		}
	}
	ov := NewOverlay(writer)
	ov.Guard(tx.ks.Reads, tx.ks.Writes)
	if e.cfg.RecordFootprints {
		ov.Record()
	}
	resu, err := lang.Run(tx.prog, tx.req.Inputs, ov)
	if err != nil {
		return false, fmt.Errorf("engine: execute %s(seq %d): %w", tx.req.TxName, tx.req.Seq, err)
	}
	tx.lastReads = len(tx.ks.Pivots) + len(resu.Reads)
	tx.lastWrites = len(resu.Writes)
	if ov.Violated() {
		return false, nil
	}
	ov.Flush(writer)
	if e.cfg.RecordFootprints {
		tx.out.ReadSet, tx.out.WriteSet = ov.Footprints()
	}
	tx.out.Emitted = resu.Emitted
	tx.out.Done = time.Now()
	return true, nil
}

// execDirect runs a transaction with exclusive access (SF re-execution): no
// guard, no validation — sequential execution cannot conflict.
func (e *Engine) execDirect(tx *txRuntime, writer *store.WriteView) error {
	t0 := time.Now()
	ov := NewOverlay(writer)
	if e.cfg.RecordFootprints {
		ov.Record()
	}
	resu, err := lang.Run(tx.prog, tx.req.Inputs, ov)
	if err != nil {
		return fmt.Errorf("engine: sequential re-exec %s(seq %d): %w", tx.req.TxName, tx.req.Seq, err)
	}
	tx.lastReads, tx.lastWrites = len(resu.Reads), len(resu.Writes)
	ov.Flush(writer)
	if e.cfg.RecordFootprints {
		tx.out.ReadSet, tx.out.WriteSet = ov.Footprints()
	}
	tx.out.Emitted = resu.Emitted
	tx.out.Exec += time.Since(t0)
	tx.out.Done = time.Now()
	return nil
}

package engine

import (
	"testing"

	"prognosticator/internal/metrics"
	"prognosticator/internal/profile"
	"prognosticator/internal/store"
	"prognosticator/internal/value"
	"prognosticator/internal/workload/rubis"
)

// TestDirectMemoStoreBid runs the RUBiS storeBid DT through a memoized
// engine with a dispatcher-style prewarm: the prewarmer's instantiation must
// be the only miss, preparation must hit the cache, and the outcome must
// still report the client-side predicted keys.
func TestDirectMemoStoreBid(t *testing.T) {
	wcfg := rubis.Config{Users: 50, Items: 50}
	reg, err := NewRegistry(rubis.Schema(), rubis.Programs(wcfg)...)
	if err != nil {
		t.Fatal(err)
	}
	if !reg.PivotFree["storeBid"] {
		t.Fatal("storeBid must be a pivot-free DT")
	}
	counters := metrics.NewCounterSet()
	memo := profile.NewDirectMemo(128, counters)
	prewarm := reg.DirectPrewarmer(memo)

	inputs := ival("itemId", 3, "userId", 5, "amount", 100)
	prewarm("storeBid", inputs)
	if memo.Len() != 1 {
		t.Fatalf("memo Len = %d after prewarm, want 1", memo.Len())
	}
	// Transactions outside the catalog (and, via PivotFree, any non-split
	// class) are skipped by the prewarmer.
	prewarm("unknownTx", nil)
	if memo.Len() != 1 {
		t.Fatalf("memo Len = %d after skipped prewarm, want 1", memo.Len())
	}

	st := rubisStore(t, wcfg)
	e := New(reg, st, Config{Workers: 2, DirectMemo: memo})
	res, err := e.ExecuteBatch([]Request{req(1, "storeBid", inputs)})
	if err != nil {
		t.Fatal(err)
	}
	if hits := counters.Value("direct_memo_hit"); hits < 1 {
		t.Errorf("preparation did not hit the prewarmed entry (hits=%d)", hits)
	}
	if misses := counters.Value("direct_memo_miss"); misses != 1 {
		t.Errorf("misses = %d, want exactly the prewarm", misses)
	}
	// storeBid: GET ITEMS and the final PUT ITEMS are direct; PUT BIDS keys
	// on the pivot slot.
	if res.Outcomes[0].DirectKeys != 2 {
		t.Errorf("DirectKeys = %d, want 2", res.Outcomes[0].DirectKeys)
	}

	// A repeat of the same request is a pure hit; new inputs miss once.
	if _, err := e.ExecuteBatch([]Request{req(2, "storeBid", inputs)}); err != nil {
		t.Fatal(err)
	}
	if misses := counters.Value("direct_memo_miss"); misses != 1 {
		t.Errorf("repeat request missed (misses=%d)", misses)
	}
	if _, err := e.ExecuteBatch([]Request{req(3, "storeBid", ival("itemId", 4, "userId", 5, "amount", 7))}); err != nil {
		t.Fatal(err)
	}
	if misses := counters.Value("direct_memo_miss"); misses != 2 {
		t.Errorf("misses = %d after new inputs, want 2", misses)
	}
}

// rubisStore seeds ITEMS so storeBid's pivot reads see a record.
func rubisStore(t *testing.T, cfg rubis.Config) *store.Store {
	t.Helper()
	st := store.New()
	for i := int64(1); i <= int64(cfg.Items); i++ {
		st.Put(0, value.NewKey(rubis.TItems, value.Int(i)), value.Record(map[string]value.Value{
			"nbBids": value.Int(0), "maxBid": value.Int(0), "nbBuyNow": value.Int(0), "qty": value.Int(10),
		}))
	}
	return st
}

package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"prognosticator/internal/lang"
	"prognosticator/internal/profile"
	"prognosticator/internal/store"
	"prognosticator/internal/value"
)

// The test workload is a miniature bank with a dependent "chase" transaction
// (follows a pointer read from the store — classic DT), an independent
// "deposit" (IT) and a read-only "audit" (ROT).

func bankSchema() *lang.Schema {
	return lang.NewSchema(
		lang.TableSpec{Name: "ACC", KeyArity: 1},
		lang.TableSpec{Name: "PTR", KeyArity: 1},
		lang.TableSpec{Name: "LOG", KeyArity: 2},
	)
}

// deposit adds amt to account k. IT: key-set depends only on inputs.
func depositProg() *lang.Program {
	return &lang.Program{
		Name:   "deposit",
		Params: []lang.Param{lang.IntParam("k", 0, 99), lang.IntParam("amt", 1, 100)},
		Body: []lang.Stmt{
			lang.GetS("a", "ACC", lang.P("k")),
			lang.SetF("a", "bal", lang.Add(lang.Fld(lang.L("a"), "bal"), lang.P("amt"))),
			lang.PutS("ACC", lang.Key(lang.P("k")), lang.L("a")),
		},
	}
}

// chase reads PTR/p to find a target account, then deposits there. DT: the
// written key depends on the pivot PTR/p.target.
func chaseProg() *lang.Program {
	return &lang.Program{
		Name:   "chase",
		Params: []lang.Param{lang.IntParam("p", 0, 9), lang.IntParam("amt", 1, 100)},
		Body: []lang.Stmt{
			lang.GetS("ptr", "PTR", lang.P("p")),
			lang.Set("tgt", lang.Fld(lang.L("ptr"), "target")),
			lang.GetS("a", "ACC", lang.L("tgt")),
			lang.SetF("a", "bal", lang.Add(lang.Fld(lang.L("a"), "bal"), lang.P("amt"))),
			lang.PutS("ACC", lang.Key(lang.L("tgt")), lang.L("a")),
		},
	}
}

// repoint changes PTR/p to a new target. IT, but invalidates chase pivots.
func repointProg() *lang.Program {
	return &lang.Program{
		Name:   "repoint",
		Params: []lang.Param{lang.IntParam("p", 0, 9), lang.IntParam("to", 0, 99)},
		Body: []lang.Stmt{
			lang.GetS("ptr", "PTR", lang.P("p")),
			lang.SetF("ptr", "target", lang.P("to")),
			lang.PutS("PTR", lang.Key(lang.P("p")), lang.L("ptr")),
		},
	}
}

// redirect is a DT that both follows PTR/p (pivot) and repoints it: it
// increments the current target account, then retargets the pointer. Used
// to invalidate the pivot predictions of later dependent transactions.
func redirectProg() *lang.Program {
	return &lang.Program{
		Name:   "redirect",
		Params: []lang.Param{lang.IntParam("p", 0, 9), lang.IntParam("to", 0, 99)},
		Body: []lang.Stmt{
			lang.GetS("ptr", "PTR", lang.P("p")),
			lang.Set("tgt", lang.Fld(lang.L("ptr"), "target")),
			lang.GetS("a", "ACC", lang.L("tgt")),
			lang.SetF("a", "bal", lang.Add(lang.Fld(lang.L("a"), "bal"), lang.C(1))),
			lang.PutS("ACC", lang.Key(lang.L("tgt")), lang.L("a")),
			lang.SetF("ptr", "target", lang.P("to")),
			lang.PutS("PTR", lang.Key(lang.P("p")), lang.L("ptr")),
		},
	}
}

// audit reads one account. ROT.
func auditProg() *lang.Program {
	return &lang.Program{
		Name:   "audit",
		Params: []lang.Param{lang.IntParam("k", 0, 99)},
		Body: []lang.Stmt{
			lang.GetS("a", "ACC", lang.P("k")),
			lang.EmitS("bal", lang.Fld(lang.L("a"), "bal")),
		},
	}
}

func bankRegistry(t testing.TB) *Registry {
	t.Helper()
	reg, err := NewRegistry(bankSchema(), depositProg(), chaseProg(), repointProg(), redirectProg(), auditProg())
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func bankStore() *store.Store {
	st := store.New()
	for i := int64(0); i < 100; i++ {
		st.Put(0, value.NewKey("ACC", value.Int(i)),
			value.Record(map[string]value.Value{"bal": value.Int(100)}))
	}
	for p := int64(0); p < 10; p++ {
		st.Put(0, value.NewKey("PTR", value.Int(p)),
			value.Record(map[string]value.Value{"target": value.Int(p * 10)}))
	}
	return st
}

func req(seq uint64, tx string, inputs map[string]value.Value) Request {
	return Request{Seq: seq, TxName: tx, Inputs: inputs}
}

func ival(pairs ...any) map[string]value.Value {
	m := map[string]value.Value{}
	for i := 0; i+1 < len(pairs); i += 2 {
		m[pairs[i].(string)] = value.Int(int64(pairs[i+1].(int)))
	}
	return m
}

func bal(t *testing.T, st *store.Store, acct int64) int64 {
	t.Helper()
	rec, ok := st.Get(st.Epoch(), value.NewKey("ACC", value.Int(acct)))
	if !ok {
		t.Fatalf("account %d missing", acct)
	}
	f, _ := rec.Field("bal")
	return f.MustInt()
}

func TestRegistryClassification(t *testing.T) {
	reg := bankRegistry(t)
	cases := map[string]profile.Class{
		"deposit": profile.ClassIT,
		"chase":   profile.ClassDT,
		"repoint": profile.ClassIT,
		"audit":   profile.ClassROT,
	}
	for tx, want := range cases {
		got, err := reg.Class(tx)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("class(%s) = %v, want %v", tx, got, want)
		}
	}
	if _, err := reg.Class("nope"); err == nil {
		t.Fatal("unknown tx class must error")
	}
	if tables := reg.Tables["chase"]; len(tables) != 2 || tables[0] != "ACC" || tables[1] != "PTR" {
		t.Fatalf("chase tables = %v", tables)
	}
}

func TestSimpleBatchCommits(t *testing.T) {
	reg := bankRegistry(t)
	st := bankStore()
	e := New(reg, st, Config{Workers: 4})
	res, err := e.ExecuteBatch([]Request{
		req(1, "deposit", ival("k", 1, "amt", 10)),
		req(2, "deposit", ival("k", 2, "amt", 20)),
		req(3, "deposit", ival("k", 1, "amt", 5)), // conflicts with seq 1
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborts != 0 {
		t.Fatalf("aborts = %d", res.Aborts)
	}
	if res.Updates != 3 || res.ROTs != 0 {
		t.Fatalf("counts = %d/%d", res.Updates, res.ROTs)
	}
	if got := bal(t, st, 1); got != 115 {
		t.Fatalf("acc1 = %d", got)
	}
	if got := bal(t, st, 2); got != 120 {
		t.Fatalf("acc2 = %d", got)
	}
	for _, o := range res.Outcomes {
		if o.Done.IsZero() || o.Pending {
			t.Fatalf("outcome not committed: %+v", o)
		}
	}
}

func TestROTSeesPreviousBatchSnapshot(t *testing.T) {
	reg := bankRegistry(t)
	st := bankStore()
	e := New(reg, st, Config{Workers: 2})
	// Batch 1 deposits into account 7.
	if _, err := e.ExecuteBatch([]Request{req(1, "deposit", ival("k", 7, "amt", 50))}); err != nil {
		t.Fatal(err)
	}
	// Batch 2 deposits again AND audits: the audit must see the state
	// after batch 1 (150), not after batch 2's own deposit (200).
	res, err := e.ExecuteBatch([]Request{
		req(2, "deposit", ival("k", 7, "amt", 50)),
		req(3, "audit", ival("k", 7)),
	})
	if err != nil {
		t.Fatal(err)
	}
	var audit *TxOutcome
	for i := range res.Outcomes {
		if res.Outcomes[i].TxName == "audit" {
			audit = &res.Outcomes[i]
		}
	}
	if audit == nil || audit.Emitted == nil {
		t.Fatal("audit outcome missing")
	}
	if got := audit.Emitted["bal"].MustInt(); got != 150 {
		t.Fatalf("audit saw %d, want 150 (previous-batch snapshot)", got)
	}
	if got := bal(t, st, 7); got != 200 {
		t.Fatalf("final balance = %d", got)
	}
}

func TestDependentTransactionCommits(t *testing.T) {
	reg := bankRegistry(t)
	st := bankStore()
	e := New(reg, st, Config{Workers: 4})
	// chase p=3 follows PTR/3 -> ACC/30.
	res, err := e.ExecuteBatch([]Request{req(1, "chase", ival("p", 3, "amt", 25))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborts != 0 {
		t.Fatalf("aborts = %d", res.Aborts)
	}
	if got := bal(t, st, 30); got != 125 {
		t.Fatalf("ACC/30 = %d", got)
	}
}

// TestDTFirstReorderingAvoidsAbort: an IT (repoint) that invalidates a
// chase's pivot does NOT cause an abort, because DTs are enqueued ahead of
// ITs exactly to shrink this window (§III-C). The chase lands on the OLD
// target and the repoint applies afterwards.
func TestDTFirstReorderingAvoidsAbort(t *testing.T) {
	reg := bankRegistry(t)
	st := bankStore()
	e := New(reg, st, Config{Workers: 4})
	res, err := e.ExecuteBatch([]Request{
		req(1, "repoint", ival("p", 3, "to", 55)),
		req(2, "chase", ival("p", 3, "amt", 25)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborts != 0 {
		t.Fatalf("aborts = %d, want 0 (DT-first reordering)", res.Aborts)
	}
	if got := bal(t, st, 30); got != 125 {
		t.Fatalf("ACC/30 = %d, want 125 (chase executed before repoint)", got)
	}
	// The pointer still ends up redirected.
	ptr, _ := st.Get(st.Epoch(), value.NewKey("PTR", value.Int(3)))
	if f, _ := ptr.Field("target"); f.MustInt() != 55 {
		t.Fatalf("PTR/3 = %v", ptr)
	}
}

// TestPivotInvalidationAborts builds the paper's core abort scenario: an
// earlier DT (redirect) changes the pivot a later chase depends on, so the
// chase must fail validation and be re-executed against the new target.
func TestPivotInvalidationAborts(t *testing.T) {
	for _, failMode := range []FailMode{FailSequential, FailReenqueue} {
		t.Run(failMode.String(), func(t *testing.T) {
			reg := bankRegistry(t)
			st := bankStore()
			e := New(reg, st, Config{Workers: 4, Fail: failMode})
			// Initial PTR/3 -> ACC/30. redirect(seq1) bumps ACC/30 and
			// repoints PTR/3 -> ACC/55; chase(seq2) prepared against the
			// pre-batch snapshot (target 30) shares the PTR/3 queue, so it
			// executes after redirect and sees target 55 != 30 -> abort.
			res, err := e.ExecuteBatch([]Request{
				req(1, "redirect", ival("p", 3, "to", 55)),
				req(2, "chase", ival("p", 3, "amt", 25)),
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Aborts != 1 {
				t.Fatalf("aborts = %d, want 1", res.Aborts)
			}
			if res.FailRound == 0 {
				t.Fatal("expected a failed-transaction round")
			}
			// redirect bumped the old target; the retried chase must land
			// on the NEW target.
			if got := bal(t, st, 30); got != 101 {
				t.Fatalf("ACC/30 = %d, want 101", got)
			}
			if got := bal(t, st, 55); got != 125 {
				t.Fatalf("ACC/55 = %d, want 125", got)
			}
			chase := res.Outcomes[1]
			if chase.Aborts != 1 || chase.Done.IsZero() {
				t.Fatalf("chase outcome = %+v", chase)
			}
		})
	}
}

func TestReconModeDetectsStaleKeySet(t *testing.T) {
	reg := bankRegistry(t)
	st := bankStore()
	e := New(reg, st, Config{Workers: 4, Prepare: PrepareRecon, Fail: FailReenqueue})
	res, err := e.ExecuteBatch([]Request{
		req(1, "redirect", ival("p", 3, "to", 55)),
		req(2, "chase", ival("p", 3, "amt", 25)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborts != 1 {
		t.Fatalf("aborts = %d, want 1 (guard violation)", res.Aborts)
	}
	if got := bal(t, st, 55); got != 125 {
		t.Fatalf("ACC/55 = %d, want 125", got)
	}
}

func TestVariantNamesAndDefaults(t *testing.T) {
	cases := map[string]Config{
		"MQ-MF":   {Queue: QueueMulti, Fail: FailReenqueue},
		"MQ-SF":   {Queue: QueueMulti, Fail: FailSequential},
		"1Q-MF":   {Queue: QueueSingle, Fail: FailReenqueue},
		"1Q-SF-R": {Queue: QueueSingle, Fail: FailSequential, Prepare: PrepareRecon},
	}
	for want, cfg := range cases {
		if got := cfg.withDefaults().VariantName(); got != want {
			t.Errorf("VariantName = %q, want %q", got, want)
		}
	}
	def := Config{}.withDefaults()
	if def.Workers != 4 || def.Prepare != PrepareSE || def.Queue != QueueMulti || def.Fail != FailReenqueue {
		t.Fatalf("defaults = %+v", def)
	}
}

func TestUnknownTransactionErrors(t *testing.T) {
	reg := bankRegistry(t)
	e := New(reg, bankStore(), Config{})
	if _, err := e.ExecuteBatch([]Request{req(1, "ghost", nil)}); err == nil {
		t.Fatal("unknown transaction must error")
	}
}

// randomBatches builds a deterministic random workload mixing all four
// transaction types, heavy on pointer churn to force aborts.
func randomBatches(seed int64, batches, perBatch int) [][]Request {
	r := rand.New(rand.NewSource(seed))
	var out [][]Request
	seq := uint64(0)
	for b := 0; b < batches; b++ {
		var batch []Request
		for i := 0; i < perBatch; i++ {
			seq++
			switch r.Intn(10) {
			case 0, 1:
				batch = append(batch, req(seq, "redirect", ival("p", r.Intn(10), "to", r.Intn(100))))
			case 2:
				batch = append(batch, req(seq, "repoint", ival("p", r.Intn(10), "to", r.Intn(100))))
			case 3, 4, 5, 6:
				batch = append(batch, req(seq, "chase", ival("p", r.Intn(10), "amt", 1+r.Intn(50))))
			case 7, 8:
				batch = append(batch, req(seq, "deposit", ival("k", r.Intn(100), "amt", 1+r.Intn(50))))
			default:
				batch = append(batch, req(seq, "audit", ival("k", r.Intn(100))))
			}
		}
		out = append(out, batch)
	}
	return out
}

func runAll(t *testing.T, ex Executor, st *store.Store, batches [][]Request) (uint64, int) {
	t.Helper()
	aborts := 0
	for _, b := range batches {
		res, err := ex.ExecuteBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		aborts += res.Aborts
	}
	return st.StateHash(st.Epoch()), aborts
}

// TestDeterminismAcrossWorkerCounts is the central replica-consistency
// property: the same batch sequence must produce the identical state hash
// regardless of worker parallelism, scheduling noise, or variant-internal
// concurrency.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	batches := randomBatches(42, 12, 40)
	type variant struct {
		name string
		cfg  Config
	}
	variants := []variant{
		{"MQ-MF", Config{Queue: QueueMulti, Fail: FailReenqueue}},
		{"MQ-SF", Config{Queue: QueueMulti, Fail: FailSequential}},
		{"1Q-MF", Config{Queue: QueueSingle, Fail: FailReenqueue}},
		{"MQ-MF-R", Config{Queue: QueueMulti, Fail: FailReenqueue, Prepare: PrepareRecon}},
	}
	reg := bankRegistry(t)
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			var hashes []uint64
			var aborts []int
			for _, workers := range []int{1, 2, 8} {
				cfg := v.cfg
				cfg.Workers = workers
				st := bankStore()
				h, a := runAll(t, New(reg, st, cfg), st, batches)
				hashes = append(hashes, h)
				aborts = append(aborts, a)
			}
			for i := 1; i < len(hashes); i++ {
				if hashes[i] != hashes[0] {
					t.Fatalf("state diverged across worker counts: %x vs %x", hashes[0], hashes[i])
				}
				if aborts[i] != aborts[0] {
					t.Fatalf("abort counts diverged across worker counts: %v", aborts)
				}
			}
		})
	}
}

// TestDeterminismRepeatedRuns re-runs one configuration many times; any
// scheduling-order dependence would show up as hash flapping.
func TestDeterminismRepeatedRuns(t *testing.T) {
	batches := randomBatches(7, 8, 60)
	reg := bankRegistry(t)
	var first uint64
	for run := 0; run < 5; run++ {
		st := bankStore()
		e := New(reg, st, Config{Workers: 8, Fail: FailReenqueue})
		h, _ := runAll(t, e, st, batches)
		if run == 0 {
			first = h
		} else if h != first {
			t.Fatalf("run %d diverged: %x vs %x", run, h, first)
		}
	}
}

// TestConservationInvariant: deposits and chases only add money; the total
// balance after every batch must equal initial + sum of committed amounts.
func TestConservationInvariant(t *testing.T) {
	reg := bankRegistry(t)
	st := bankStore()
	e := New(reg, st, Config{Workers: 6})
	total := func() int64 {
		var sum int64
		st.ForEach(st.Epoch(), func(k value.Encoded, v value.Value) {
			if f, ok := v.Field("bal"); ok {
				sum += f.MustInt()
			}
		})
		return sum
	}
	before := total()
	var expect int64
	batches := randomBatches(3, 6, 30)
	for _, b := range batches {
		for _, r := range b {
			switch r.TxName {
			case "deposit", "chase":
				expect += r.Inputs["amt"].MustInt()
			case "redirect":
				expect++ // redirect bumps its current target by 1
			}
		}
		if _, err := e.ExecuteBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if got := total(); got != before+expect {
		t.Fatalf("conservation violated: got %d, want %d", got, before+expect)
	}
}

func TestEmptyBatch(t *testing.T) {
	reg := bankRegistry(t)
	e := New(reg, bankStore(), Config{})
	res, err := e.ExecuteBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 0 || res.Aborts != 0 {
		t.Fatalf("empty batch result = %+v", res)
	}
}

func TestOverlayGuardAndFlush(t *testing.T) {
	st := bankStore()
	w := st.WriterAt(st.BeginEpoch())
	ov := NewOverlay(w)
	kA := value.NewKey("ACC", value.Int(1))
	kB := value.NewKey("ACC", value.Int(2))
	ov.Guard([]value.Key{kA}, []value.Key{kA})
	if _, ok := ov.Get(kA); !ok {
		t.Fatal("guarded read of allowed key failed")
	}
	ov.Put(kA, value.Record(map[string]value.Value{"bal": value.Int(7)}))
	if v, ok := ov.Get(kA); !ok {
		t.Fatal("read-own-write failed")
	} else if f, _ := v.Field("bal"); f.MustInt() != 7 {
		t.Fatalf("own write = %v", v)
	}
	// Store unchanged before flush.
	if got, _ := st.Get(1, kA); func() int64 { f, _ := got.Field("bal"); return f.MustInt() }() != 100 {
		t.Fatal("write leaked before flush")
	}
	// Out-of-set access trips the guard.
	if _, ok := ov.Get(kB); ok {
		t.Fatal("out-of-set read should fail")
	}
	if !ov.Violated() {
		t.Fatal("violation not recorded")
	}
	// After violation everything reads empty and writes are ignored.
	ov.Put(kA, value.Record(map[string]value.Value{"bal": value.Int(999)}))
	if _, ok := ov.Get(kA); ok {
		t.Fatal("post-violation read should fail")
	}
}

func TestOverlayDeleteFlush(t *testing.T) {
	st := bankStore()
	e := st.BeginEpoch()
	w := st.WriterAt(e)
	ov := NewOverlay(w)
	kA := value.NewKey("ACC", value.Int(3))
	ov.Delete(kA)
	if _, ok := ov.Get(kA); ok {
		t.Fatal("overlay delete not visible")
	}
	ov.Flush(w)
	if _, ok := st.Get(e, kA); ok {
		t.Fatal("delete not flushed")
	}
}

func TestOverlayWriteGuardViolation(t *testing.T) {
	st := bankStore()
	w := st.WriterAt(st.BeginEpoch())
	ov := NewOverlay(w)
	kA := value.NewKey("ACC", value.Int(1))
	kB := value.NewKey("ACC", value.Int(2))
	// kB readable but not writable.
	ov.Guard([]value.Key{kA, kB}, []value.Key{kA})
	ov.Put(kB, value.Record(nil))
	if !ov.Violated() {
		t.Fatal("write outside write-set must violate")
	}
	ov2 := NewOverlay(w)
	ov2.Guard([]value.Key{kA, kB}, []value.Key{kA})
	ov2.Delete(kB)
	if !ov2.Violated() {
		t.Fatal("delete outside write-set must violate")
	}
}

func TestPrepareTimesRecorded(t *testing.T) {
	reg := bankRegistry(t)
	st := bankStore()
	e := New(reg, st, Config{Workers: 2})
	res, err := e.ExecuteBatch([]Request{req(1, "chase", ival("p", 1, "amt", 5))})
	if err != nil {
		t.Fatal(err)
	}
	o := res.Outcomes[0]
	if o.Prepare <= 0 {
		t.Fatalf("prepare time not recorded: %+v", o)
	}
	if o.Exec <= 0 {
		t.Fatalf("exec time not recorded: %+v", o)
	}
}

func TestManyConflictingChainsDrain(t *testing.T) {
	// A long chain of deposits on the same account must serialize and all
	// commit, regardless of worker count.
	reg := bankRegistry(t)
	st := bankStore()
	e := New(reg, st, Config{Workers: 8})
	var batch []Request
	for i := 0; i < 200; i++ {
		batch = append(batch, req(uint64(i+1), "deposit", ival("k", 5, "amt", 1)))
	}
	res, err := e.ExecuteBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborts != 0 {
		t.Fatalf("aborts = %d", res.Aborts)
	}
	if got := bal(t, st, 5); got != 300 {
		t.Fatalf("balance = %d, want 300", got)
	}
}

func TestBatchResultEpochAdvances(t *testing.T) {
	reg := bankRegistry(t)
	st := bankStore()
	e := New(reg, st, Config{})
	r1, err := e.ExecuteBatch([]Request{req(1, "deposit", ival("k", 1, "amt", 1))})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.ExecuteBatch([]Request{req(2, "deposit", ival("k", 1, "amt", 1))})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Epoch != r1.Epoch+1 {
		t.Fatalf("epochs %d -> %d", r1.Epoch, r2.Epoch)
	}
	if fmt.Sprintf("%s", e.Name()) != "MQ-MF" {
		t.Fatalf("Name = %s", e.Name())
	}
}

package engine

import (
	"strings"
	"testing"

	"prognosticator/internal/lang"
	"prognosticator/internal/profile"
)

// TestRegistryRejectsSchemaMisuse exercises the lang.Schema.Validate path
// end-to-end: registration (with or without strict lint) must reject unknown
// tables and key-arity mismatches before any analysis runs.
func TestRegistryRejectsSchemaMisuse(t *testing.T) {
	unknown := &lang.Program{
		Name:   "ghost",
		Params: []lang.Param{lang.IntParam("id", 0, 9)},
		Body:   []lang.Stmt{lang.GetS("x", "NOPE", lang.P("id"))},
	}
	if _, err := NewRegistry(bankSchema(), unknown); err == nil || !strings.Contains(err.Error(), "unknown table") {
		t.Fatalf("unknown table not rejected: %v", err)
	}

	arity := &lang.Program{
		Name:   "arity",
		Params: []lang.Param{lang.IntParam("id", 0, 9)},
		Body:   []lang.Stmt{lang.GetS("x", "ACC", lang.P("id"), lang.P("id"))},
	}
	if _, err := NewRegistry(bankSchema(), arity); err == nil || !strings.Contains(err.Error(), "expects 1 key part") {
		t.Fatalf("key-arity mismatch not rejected: %v", err)
	}
}

func TestStrictLintRejectsErrorFindings(t *testing.T) {
	// Over-unroll loop: passes schema.Validate (textual checks only) but
	// carries an error-severity lint finding.
	hot := &lang.Program{
		Name:   "hot",
		Params: []lang.Param{lang.IntParam("n", 0, 1000)},
		Body: []lang.Stmt{
			lang.Set("s", lang.C(0)),
			lang.ForS("i", lang.C(0), lang.P("n"),
				lang.Set("s", lang.Add(lang.L("s"), lang.L("i")))),
			lang.EmitS("out", lang.L("s")),
		},
	}
	// Default registration succeeds only per schema.Validate; it would then
	// hit the symbolic executor's budget. Strict lint rejects up front with a
	// diagnostic instead.
	_, err := NewRegistryWith(bankSchema(), RegistryOptions{StrictLint: true}, hot)
	if err == nil || !strings.Contains(err.Error(), "rejected by strict lint") {
		t.Fatalf("strict lint did not reject: %v", err)
	}
	if !strings.Contains(err.Error(), "loop-bound") {
		t.Errorf("rejection should name the failing pass: %v", err)
	}
}

func TestStrictLintAcceptsCleanPrograms(t *testing.T) {
	r, err := NewRegistryWith(bankSchema(),
		RegistryOptions{StrictLint: true, SoundnessSamples: 8}, depositProg())
	if err != nil {
		t.Fatalf("clean program rejected: %v", err)
	}
	if r.Classes["deposit"] != profile.ClassIT {
		t.Errorf("deposit class = %v, want IT", r.Classes["deposit"])
	}
}

func TestStrictLintAllowsWarnings(t *testing.T) {
	// An unused parameter is warning severity; strict mode must still accept.
	warned := depositProg()
	warned.Params = append(warned.Params, lang.IntParam("spare", 0, 9))
	if _, err := NewRegistryWith(bankSchema(), RegistryOptions{StrictLint: true}, warned); err != nil {
		t.Fatalf("warning-only program rejected: %v", err)
	}
}

package engine

import (
	"container/heap"
	"fmt"
	"time"

	"prognosticator/internal/locktable"
	"prognosticator/internal/profile"
	"prognosticator/internal/store"
)

// This file implements the virtual-time scheduling simulator.
//
// The paper evaluates on a 20-core Xeon over RocksDB; reproduction hosts
// may have a single core, which makes real thread parallelism unobservable
// and wall-clock measurement hopelessly noisy. The simulator substitutes
// that testbed: every transaction still executes FOR REAL (so state
// evolution, pivot validation and aborts are bit-identical to the
// multi-threaded engine), but execution is scheduled event-driven across N
// *virtual* workers whose clocks advance by a deterministic COST MODEL of
// the work performed — a fixed per-transaction dispatch cost plus per-
// store-read and per-store-write costs, calibrated to a fast persistent KV
// store. Batch makespans, per-transaction completion times, and hence
// throughput/latency figures are read off the virtual clocks, completely
// reproducibly. The scheduling discipline is exactly the engine's:
// lock-table order, ready-queue dispatch to the earliest-available worker,
// phase barriers, SF/MF failed handling and MQ/1Q preparation. Crucially,
// the cost model makes the paper's central asymmetry structural:
// reconnaissance preparation pays a full execution, SE preparation pays
// only the pivot reads.
type CostModel struct {
	// PerTx is the fixed dispatch/bookkeeping cost of one execution.
	PerTx time.Duration
	// PerRead / PerWrite are per-store-operation costs.
	PerRead  time.Duration
	PerWrite time.Duration
	// PrepareBase is the fixed cost of instantiating a profile
	// (tree traversal); pivot reads add PerRead each.
	PrepareBase time.Duration
}

// DefaultCostModel calibrates to a RocksDB-class embedded store: ~20µs
// fixed per transaction, 4µs per read, 8µs per write.
func DefaultCostModel() CostModel {
	return CostModel{
		PerTx:       20 * time.Microsecond,
		PerRead:     4 * time.Microsecond,
		PerWrite:    8 * time.Microsecond,
		PrepareBase: 5 * time.Microsecond,
	}
}

// ExecCost prices one execution attempt.
func (c CostModel) ExecCost(reads, writes int) time.Duration {
	return c.PerTx + time.Duration(reads)*c.PerRead + time.Duration(writes)*c.PerWrite
}

// PrepareCost prices one preparation: full execution pricing for
// reconnaissance, tree traversal plus pivot reads for SE profiles.
func (c CostModel) PrepareCost(full bool, reads, writes int) time.Duration {
	if full {
		return c.ExecCost(reads, writes)
	}
	return c.PrepareBase + time.Duration(reads)*c.PerRead
}

// SimTask is one schedulable unit in a simulation round.
type SimTask struct {
	Entry *locktable.Entry
	// Exec runs the transaction for real, reporting whether it committed
	// (false = abort) and its virtual cost — called exactly once per
	// round, in a lock-order-compatible sequence.
	Exec func() (ok bool, cost time.Duration, err error)
	Out  *TxOutcome
}

// workerHeap is a min-heap of virtual worker free-times.
type workerHeap []time.Duration

func (h workerHeap) Len() int           { return len(h) }
func (h workerHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h workerHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *workerHeap) Push(x any)        { *h = append(*h, x.(time.Duration)) }
func (h *workerHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// readyItem is an entry that has reached the head of all its queues.
type readyItem struct {
	task  *SimTask
	ready time.Duration // virtual instant it became ready
	seq   uint64
}

// readyHeap orders ready items by (ready, seq) for deterministic dispatch.
type readyHeap []readyItem

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) Less(i, j int) bool {
	if h[i].ready != h[j].ready {
		return h[i].ready < h[j].ready
	}
	return h[i].seq < h[j].seq
}
func (h readyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x any)   { *h = append(*h, x.(readyItem)) }
func (h *readyHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// SimulateRound enqueues the tasks (in slice order) into lt and plays the
// engine's ready-queue discipline on `workers` virtual workers, all free at
// phaseStart. Each task's Exec runs exactly when the simulation schedules
// it, so conflicting transactions observe each other's effects in lock
// order, exactly as on real hardware. It returns the aborted tasks and the
// virtual instant the last worker finishes.
func SimulateRound(lt *locktable.Table, tasks []*SimTask, workers int, phaseStart time.Duration) ([]*SimTask, time.Duration, error) {
	if len(tasks) == 0 {
		return nil, phaseStart, nil
	}
	lt.Reset()
	byEntry := make(map[*locktable.Entry]*SimTask, len(tasks))
	var ready readyHeap
	for _, t := range tasks {
		byEntry[t.Entry] = t
		if lt.Enqueue(t.Entry) {
			heap.Push(&ready, readyItem{task: t, ready: phaseStart, seq: t.Entry.Seq})
		}
	}
	free := make(workerHeap, workers)
	for i := range free {
		free[i] = phaseStart
	}
	heap.Init(&free)

	var failed []*SimTask
	end := phaseStart
	remaining := len(tasks)
	for remaining > 0 {
		if ready.Len() == 0 {
			return nil, 0, fmt.Errorf("engine: simulation stalled with %d tasks pending", remaining)
		}
		item := heap.Pop(&ready).(readyItem)
		w := heap.Pop(&free).(time.Duration)
		start := item.ready
		if w > start {
			start = w
		}
		ok, cost, err := item.task.Exec()
		if err != nil {
			return nil, 0, err
		}
		done := start + cost
		heap.Push(&free, done)
		if done > end {
			end = done
		}
		item.task.Out.VDone = done
		if !ok {
			item.task.Out.Aborts++
			failed = append(failed, item.task)
		}
		lt.Release(item.task.Entry, func(n *locktable.Entry) {
			heap.Push(&ready, readyItem{task: byEntry[n], ready: done, seq: n.Seq})
		})
		remaining--
	}
	return failed, end, nil
}

// distribute assigns task costs greedily to the earliest-loaded clock
// (list scheduling); used for the ROT and prepare phases.
func distribute(clocks []time.Duration, costs []time.Duration) {
	for _, c := range costs {
		mi := 0
		for i := 1; i < len(clocks); i++ {
			if clocks[i] < clocks[mi] {
				mi = i
			}
		}
		clocks[mi] += c
	}
}

func maxClock(clocks []time.Duration) time.Duration {
	var m time.Duration
	for _, c := range clocks {
		if c > m {
			m = c
		}
	}
	return m
}

// SimEngine is the virtual-time counterpart of Engine: identical semantics
// and deterministic state evolution, with timing accounted on Config.Workers
// virtual workers under a deterministic cost model. It implements Executor;
// results carry VDone / VirtualMakespan, and Prepare/Exec hold virtual (not
// wall-clock) durations.
type SimEngine struct {
	reg  *Registry
	st   *store.Store
	cfg  Config
	cost CostModel
	lt   *locktable.Table
}

var _ Executor = (*SimEngine)(nil)

// NewSim returns a virtual-time engine with the default cost model.
func NewSim(reg *Registry, st *store.Store, cfg Config) *SimEngine {
	return &SimEngine{reg: reg, st: st, cfg: cfg.withDefaults(),
		cost: DefaultCostModel(), lt: locktable.New()}
}

// SetCostModel overrides the cost model (for ablations).
func (e *SimEngine) SetCostModel(c CostModel) { e.cost = c }

// Name implements Executor.
func (e *SimEngine) Name() string { return e.cfg.VariantName() }

// Store returns the underlying store.
func (e *SimEngine) Store() *store.Store { return e.st }

// ExecuteBatch implements Executor with virtual-time phase accounting that
// mirrors Engine.ExecuteBatch step for step.
func (e *SimEngine) ExecuteBatch(batch []Request) (*BatchResult, error) {
	start := time.Now()
	epoch := e.st.BeginEpoch()
	snap := e.st.ViewAt(epoch - 1)
	writer := e.st.WriterAt(epoch)
	res := &BatchResult{Epoch: epoch, Start: start, Outcomes: make([]TxOutcome, len(batch))}

	// The real engine's helper methods do the semantic work; a shadow
	// Engine shares our configuration.
	real := &Engine{reg: e.reg, st: e.st, cfg: e.cfg, lt: e.lt}

	rotQueues := make([][]*txRuntime, e.cfg.Workers)
	var dts, its []*txRuntime
	rotIdx := 0
	for i, req := range batch {
		prog, ok := e.reg.Programs[req.TxName]
		if !ok {
			return nil, fmt.Errorf("engine: unknown transaction %q", req.TxName)
		}
		prof := e.reg.Profiles[req.TxName]
		class := e.reg.Classes[req.TxName]
		res.Outcomes[i] = TxOutcome{Seq: req.Seq, TxName: req.TxName, Class: class}
		tx := &txRuntime{req: req, prog: prog, prof: prof, class: class, out: &res.Outcomes[i]}
		switch class {
		case profile.ClassROT:
			rotQueues[rotIdx%e.cfg.Workers] = append(rotQueues[rotIdx%e.cfg.Workers], tx)
			rotIdx++
			res.ROTs++
		case profile.ClassDT:
			dts = append(dts, tx)
			res.Updates++
		default:
			its = append(its, tx)
			res.Updates++
		}
	}
	updates := make([]*txRuntime, 0, len(dts)+len(its))
	updates = append(updates, dts...)
	updates = append(updates, its...)

	// Phase 1 (virtual): workers run their ROT queues; preparation costs
	// land on the Queuer's clock (1Q) or are distributed over Queuer +
	// workers after their ROTs (MQ).
	workerClocks := make([]time.Duration, e.cfg.Workers)
	for w, rots := range rotQueues {
		for _, rot := range rots {
			if err := real.execROT(rot, snap); err != nil {
				return nil, err
			}
			c := e.cost.ExecCost(rot.lastReads, 0)
			workerClocks[w] += c
			rot.out.Exec = c
			rot.out.VDone = workerClocks[w]
		}
	}
	var queuerClock time.Duration
	prepCosts := make([]time.Duration, len(updates))
	for i, tx := range updates {
		if err := real.prepare(tx, snap); err != nil {
			return nil, err
		}
		prepCosts[i] = e.cost.PrepareCost(tx.prepFull, tx.prepReads, tx.prepWrites)
		tx.vPrep += prepCosts[i]
	}
	if e.cfg.Queue == QueueSingle {
		for _, c := range prepCosts {
			queuerClock += c
		}
	} else {
		clocks := append([]time.Duration{queuerClock}, workerClocks...)
		distribute(clocks, prepCosts)
		queuerClock = clocks[0]
		copy(workerClocks, clocks[1:])
	}
	phase1End := maxClock(append([]time.Duration{queuerClock}, workerClocks...))

	// Phases 2+3 (virtual): enqueue + event-driven update execution.
	tasks := make([]*SimTask, len(updates))
	for i, tx := range updates {
		tx := tx
		tasks[i] = &SimTask{
			Entry: tx.entry,
			Out:   tx.out,
			Exec: func() (bool, time.Duration, error) {
				ok, err := real.execUpdate(tx, writer)
				cost := e.cost.ExecCost(tx.lastReads, tx.lastWrites)
				tx.vExec += cost
				return ok, cost, err
			},
		}
	}
	failedTasks, phase3End, err := SimulateRound(e.lt, tasks, e.cfg.Workers, phase1End)
	if err != nil {
		return nil, err
	}

	// Phase 4 (virtual): failed handling.
	clock := phase3End
	switch e.cfg.Fail {
	case FailSequential:
		if len(failedTasks) > 0 {
			res.FailRound = 1
			txs := tasksToTxs(failedTasks)
			sortBySeq(txs)
			for _, tx := range txs {
				if err := real.execDirect(tx, writer); err != nil {
					return nil, err
				}
				c := e.cost.ExecCost(tx.lastReads, tx.lastWrites)
				clock += c
				tx.vExec += c
				tx.out.VDone = clock
			}
		}
	default: // FailReenqueue
		for round := 0; len(failedTasks) > 0; round++ {
			res.FailRound = round + 1
			txs := tasksToTxs(failedTasks)
			sortBySeq(txs)
			// Re-preparation: Queuer clock (1Q) or distributed (MQ).
			reprep := make([]time.Duration, len(txs))
			for i, tx := range txs {
				if err := real.prepareWith(tx, writer); err != nil {
					return nil, err
				}
				reprep[i] = e.cost.PrepareCost(tx.prepFull, tx.prepReads, tx.prepWrites)
				tx.vPrep += reprep[i]
			}
			if e.cfg.Queue == QueueSingle {
				for _, c := range reprep {
					clock += c
				}
			} else {
				clocks := make([]time.Duration, e.cfg.Workers)
				for i := range clocks {
					clocks[i] = clock
				}
				distribute(clocks, reprep)
				clock = maxClock(clocks)
			}
			next := make([]*SimTask, len(txs))
			for i, tx := range txs {
				tx := tx
				next[i] = &SimTask{Entry: tx.entry, Out: tx.out,
					Exec: func() (bool, time.Duration, error) {
						ok, err := real.execUpdate(tx, writer)
						cost := e.cost.ExecCost(tx.lastReads, tx.lastWrites)
						tx.vExec += cost
						return ok, cost, err
					}}
			}
			prev := len(next)
			failedTasks, clock, err = SimulateRound(e.lt, next, e.cfg.Workers, clock)
			if err != nil {
				return nil, err
			}
			// Same no-progress fallback as the threaded engine: commit the
			// stragglers sequentially and unguarded.
			if len(failedTasks) >= prev || round >= maxFailRounds {
				txs := tasksToTxs(failedTasks)
				sortBySeq(txs)
				for _, tx := range txs {
					if err := real.execDirect(tx, writer); err != nil {
						return nil, err
					}
					c := e.cost.ExecCost(tx.lastReads, tx.lastWrites)
					clock += c
					tx.vExec += c
					tx.out.VDone = clock
				}
				failedTasks = nil
			}
		}
	}

	if epoch%gcEvery == 0 {
		if horizon := e.cfg.GCHorizon; epoch > horizon {
			e.st.GC(epoch - horizon)
		}
	}
	// Replace wall-clock accounting (polluted by the shadow engine's
	// helpers) with the virtual costs.
	for _, tx := range updates {
		tx.out.Prepare = tx.vPrep
		tx.out.Exec = tx.vExec
	}
	for i := range res.Outcomes {
		res.Aborts += res.Outcomes[i].Aborts
		res.Outcomes[i].Done = time.Now() // wall stamp kept for interface compat
	}
	res.VirtualMakespan = clock
	res.End = time.Now()
	return res, nil
}

func tasksToTxs(tasks []*SimTask) []*txRuntime {
	txs := make([]*txRuntime, len(tasks))
	for i, t := range tasks {
		txs[i] = t.Entry.Payload.(*txRuntime)
	}
	return txs
}

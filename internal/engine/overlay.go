package engine

import (
	"fmt"
	"hash/fnv"

	"prognosticator/internal/lang"
	"prognosticator/internal/store"
	"prognosticator/internal/value"
)

// Overlay buffers a transaction's writes on top of a base view and
// optionally guards accesses against the predicted key-set. Buffering gives
// atomicity (nothing reaches the store until Flush) and the guard implements
// OLLP-style validation: an access outside the locked key-set means the
// prediction was stale, so the transaction must abort — without having
// published any effect and without reading unlocked (hence racy) state.
// It implements lang.KV and is shared with the Calvin baseline.
type Overlay struct {
	base lang.KV
	// writes holds buffered effects; order preserves first-write order.
	writes map[value.Encoded]overlayWrite
	order  []value.Encoded
	// allowedRead/allowedWrite are the guard sets; nil disables guarding.
	allowedRead  map[value.Encoded]bool
	allowedWrite map[value.Encoded]bool
	violated     bool
	// rec, when non-nil, logs the first base read of each key (reads served
	// from the transaction's own buffered writes are not observations of
	// committed state and are skipped).
	rec *footprintRecorder
}

type footprintRecorder struct {
	seen  map[value.Encoded]bool
	reads []Access
}

type overlayWrite struct {
	key     value.Key
	val     value.Value
	deleted bool
}

// NewOverlay returns an overlay reading through to base.
func NewOverlay(base lang.KV) *Overlay {
	return &Overlay{base: base, writes: map[value.Encoded]overlayWrite{}}
}

// Guard restricts reads to reads ∪ writes and writes to the write set.
func (o *Overlay) Guard(reads, writes []value.Key) {
	o.allowedRead = make(map[value.Encoded]bool, len(reads)+len(writes))
	o.allowedWrite = make(map[value.Encoded]bool, len(writes))
	for _, k := range reads {
		o.allowedRead[k.Encode()] = true
	}
	for _, k := range writes {
		e := k.Encode()
		o.allowedRead[e] = true
		o.allowedWrite[e] = true
	}
}

// Violated reports whether any access fell outside the guard sets.
func (o *Overlay) Violated() bool { return o.violated }

// Get implements lang.KV. After a guard violation every read returns
// not-found so execution completes deterministically without observing
// unlocked state.
func (o *Overlay) Get(k value.Key) (value.Value, bool) {
	e := k.Encode()
	if o.violated {
		return value.Value{}, false
	}
	if o.allowedRead != nil && !o.allowedRead[e] {
		o.violated = true
		return value.Value{}, false
	}
	if w, ok := o.writes[e]; ok {
		if w.deleted {
			return value.Value{}, false
		}
		return w.val, true
	}
	v, ok := o.base.Get(k)
	if o.rec != nil && !o.rec.seen[e] {
		o.rec.seen[e] = true
		a := Access{Key: string(e)}
		if ok {
			a.Val = Fingerprint(v)
		}
		o.rec.reads = append(o.rec.reads, a)
	}
	return v, ok
}

// Record enables footprint logging: the first base read of every key and, at
// Footprints time, the final buffered write per key.
func (o *Overlay) Record() {
	o.rec = &footprintRecorder{seen: map[value.Encoded]bool{}}
}

// Footprints returns the recorded read observations (first read per key, in
// read order) and the final write per key (in first-write order). Both nil
// unless Record was called.
func (o *Overlay) Footprints() (reads, writes []Access) {
	if o.rec == nil {
		return nil, nil
	}
	writes = make([]Access, 0, len(o.order))
	for _, e := range o.order {
		w := o.writes[e]
		a := Access{Key: string(e)}
		if !w.deleted {
			a.Val = Fingerprint(w.val)
		}
		writes = append(writes, a)
	}
	return o.rec.reads, writes
}

// Fingerprint returns a short stable fingerprint of a value, used to match a
// read observation to the write that produced it without retaining whole
// values in recorded histories.
func Fingerprint(v value.Value) string {
	h := fnv.New64a()
	fmt.Fprint(h, v.String())
	return fmt.Sprintf("%016x", h.Sum64())
}

// Put implements lang.KV.
func (o *Overlay) Put(k value.Key, v value.Value) {
	e := k.Encode()
	if o.violated {
		return
	}
	if o.allowedWrite != nil && !o.allowedWrite[e] {
		o.violated = true
		return
	}
	if _, ok := o.writes[e]; !ok {
		o.order = append(o.order, e)
	}
	o.writes[e] = overlayWrite{key: k, val: v}
}

// Delete implements lang.KV.
func (o *Overlay) Delete(k value.Key) {
	e := k.Encode()
	if o.violated {
		return
	}
	if o.allowedWrite != nil && !o.allowedWrite[e] {
		o.violated = true
		return
	}
	if _, ok := o.writes[e]; !ok {
		o.order = append(o.order, e)
	}
	o.writes[e] = overlayWrite{key: k, deleted: true}
}

// Flush publishes the buffered writes to the store in first-write order.
// Callers flush only after a violation-free execution and while still
// holding the transaction's locks.
func (o *Overlay) Flush(w *store.WriteView) {
	for _, e := range o.order {
		wr := o.writes[e]
		if wr.deleted {
			w.Delete(wr.key)
		} else {
			w.Put(wr.key, wr.val)
		}
	}
}

package engine

import (
	"testing"
	"time"

	"prognosticator/internal/locktable"
	"prognosticator/internal/value"
)

// TestSimMatchesRealEngineState: the virtual-time engine must evolve the
// store EXACTLY like the multi-threaded engine — same final hash, same
// abort counts — because the simulator's scheduling discipline is the same
// lock-table order.
func TestSimMatchesRealEngineState(t *testing.T) {
	reg := bankRegistry(t)
	batches := randomBatches(77, 10, 50)
	for _, variant := range []Config{
		{Queue: QueueMulti, Fail: FailReenqueue},
		{Queue: QueueMulti, Fail: FailSequential},
		{Queue: QueueSingle, Fail: FailReenqueue},
		{Queue: QueueMulti, Fail: FailReenqueue, Prepare: PrepareRecon},
	} {
		t.Run(variant.VariantName(), func(t *testing.T) {
			stReal := bankStore()
			real := New(reg, stReal, variant)
			stSim := bankStore()
			sim := NewSim(reg, stSim, variant)
			realAborts, simAborts := 0, 0
			for _, b := range batches {
				r1, err := real.ExecuteBatch(b)
				if err != nil {
					t.Fatal(err)
				}
				r2, err := sim.ExecuteBatch(b)
				if err != nil {
					t.Fatal(err)
				}
				realAborts += r1.Aborts
				simAborts += r2.Aborts
			}
			if stReal.StateHash(stReal.Epoch()) != stSim.StateHash(stSim.Epoch()) {
				t.Fatal("sim engine diverged from real engine")
			}
			if realAborts != simAborts {
				t.Fatalf("abort counts differ: real=%d sim=%d", realAborts, simAborts)
			}
		})
	}
}

// TestSimMakespanScalesWithWorkers: on a low-contention batch, more virtual
// workers must shrink the virtual makespan substantially — the property the
// single-core host cannot show with real threads.
func TestSimMakespanScalesWithWorkers(t *testing.T) {
	reg := bankRegistry(t)
	mkBatch := func() []Request {
		var batch []Request
		for i := 0; i < 200; i++ {
			batch = append(batch, req(uint64(i+1), "deposit",
				ival("k", i%100, "amt", 5))) // 100 distinct accounts
		}
		return batch
	}
	makespan := func(workers int) time.Duration {
		st := bankStore()
		sim := NewSim(reg, st, Config{Workers: workers})
		res, err := sim.ExecuteBatch(mkBatch())
		if err != nil {
			t.Fatal(err)
		}
		if res.VirtualMakespan <= 0 {
			t.Fatal("no virtual makespan recorded")
		}
		return res.VirtualMakespan
	}
	m1 := makespan(1)
	m8 := makespan(8)
	speedup := float64(m1) / float64(m8)
	if speedup < 3 {
		t.Fatalf("8 virtual workers speedup = %.2fx over 1 (m1=%v m8=%v), want >= 3x",
			speedup, m1, m8)
	}
}

// TestSimSerializedChainNoSpeedup: a fully conflicting chain cannot go
// faster with more workers.
func TestSimSerializedChainNoSpeedup(t *testing.T) {
	reg := bankRegistry(t)
	mkBatch := func() []Request {
		var batch []Request
		for i := 0; i < 100; i++ {
			batch = append(batch, req(uint64(i+1), "deposit", ival("k", 7, "amt", 1)))
		}
		return batch
	}
	run := func(workers int) time.Duration {
		st := bankStore()
		sim := NewSim(reg, st, Config{Workers: workers})
		res, err := sim.ExecuteBatch(mkBatch())
		if err != nil {
			t.Fatal(err)
		}
		return res.VirtualMakespan
	}
	m1, m8 := run(1), run(8)
	// Timing noise allowed, but no structural speedup.
	if float64(m1)/float64(m8) > 1.7 {
		t.Fatalf("conflicting chain sped up %vx with workers — scheduling bug", float64(m1)/float64(m8))
	}
}

// TestSimVDoneMonotoneOnConflicts: conflicting transactions' virtual
// completion times must respect queue order.
func TestSimVDoneMonotoneOnConflicts(t *testing.T) {
	reg := bankRegistry(t)
	st := bankStore()
	sim := NewSim(reg, st, Config{Workers: 4})
	var batch []Request
	for i := 0; i < 20; i++ {
		batch = append(batch, req(uint64(i+1), "deposit", ival("k", 3, "amt", 1)))
	}
	res, err := sim.ExecuteBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Outcomes); i++ {
		if res.Outcomes[i].VDone <= res.Outcomes[i-1].VDone {
			t.Fatalf("conflicting tx %d completed at %v, before predecessor's %v",
				i, res.Outcomes[i].VDone, res.Outcomes[i-1].VDone)
		}
	}
	if res.VirtualMakespan < res.Outcomes[len(res.Outcomes)-1].VDone {
		t.Fatal("makespan below last completion")
	}
}

func TestSimulateRoundEmpty(t *testing.T) {
	lt := locktable.New()
	failed, end, err := SimulateRound(lt, nil, 4, 5*time.Millisecond)
	if err != nil || len(failed) != 0 || end != 5*time.Millisecond {
		t.Fatalf("empty round = %v %v %v", failed, end, err)
	}
}

func TestDistribute(t *testing.T) {
	clocks := []time.Duration{0, 0}
	distribute(clocks, []time.Duration{4, 3, 2, 1})
	// greedy: w0=4, w1=3, w1=3+2=5, w0=4+1=5
	if clocks[0] != 5 || clocks[1] != 5 {
		t.Fatalf("clocks = %v", clocks)
	}
	if maxClock(clocks) != 5 {
		t.Fatal("maxClock")
	}
}

func TestSimROTsDontBlockVirtualTime(t *testing.T) {
	// A batch with only ROTs: makespan ≈ max over workers of their ROT
	// queues, and every outcome gets a VDone.
	reg := bankRegistry(t)
	st := bankStore()
	sim := NewSim(reg, st, Config{Workers: 4})
	var batch []Request
	for i := 0; i < 40; i++ {
		batch = append(batch, req(uint64(i+1), "audit", ival("k", i%100)))
	}
	res, err := sim.ExecuteBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.ROTs != 40 {
		t.Fatalf("ROTs = %d", res.ROTs)
	}
	for _, o := range res.Outcomes {
		if o.VDone <= 0 {
			t.Fatalf("ROT outcome without VDone: %+v", o)
		}
		if o.Emitted == nil {
			t.Fatalf("ROT outcome without results: %+v", o)
		}
	}
}

// TestSimDeterministicState: repeated sim runs land on the same state even
// though service-time measurements differ run to run (timing affects only
// virtual durations, never the schedule's effects).
func TestSimDeterministicState(t *testing.T) {
	reg := bankRegistry(t)
	batches := randomBatches(5, 6, 40)
	var firstHash uint64
	firstAborts := -1
	for run := 0; run < 3; run++ {
		st := bankStore()
		sim := NewSim(reg, st, Config{Workers: 8})
		aborts := 0
		for _, b := range batches {
			res, err := sim.ExecuteBatch(b)
			if err != nil {
				t.Fatal(err)
			}
			aborts += res.Aborts
		}
		h := st.StateHash(st.Epoch())
		if firstAborts < 0 {
			firstHash, firstAborts = h, aborts
			continue
		}
		if h != firstHash || aborts != firstAborts {
			t.Fatalf("sim run %d diverged (hash %x vs %x, aborts %d vs %d)",
				run, h, firstHash, aborts, firstAborts)
		}
	}
}

func TestSimName(t *testing.T) {
	sim := NewSim(bankRegistry(t), bankStore(), Config{Queue: QueueSingle, Fail: FailSequential})
	if sim.Name() != "1Q-SF" {
		t.Fatalf("name = %q", sim.Name())
	}
	if sim.Store() == nil {
		t.Fatal("store accessor")
	}
	_ = value.Int(0)
}

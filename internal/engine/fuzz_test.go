package engine

import (
	"math/rand"
	"testing"

	"prognosticator/internal/lang"
	"prognosticator/internal/store"
	"prognosticator/internal/value"
)

// Engine-level fuzzing: programs with arbitrary read/write interleavings —
// including read-own-write aliasing the profiles cannot always predict —
// must still execute to completion deterministically. Profile mispredicts
// surface as guard violations; the MF no-progress fallback (sequential
// unguarded re-execution) guarantees liveness; determinism must survive all
// of it.

// selfRefProg reads a cell, writes a cell derived from it, then reads THAT
// cell back and writes its derivative — a two-hop chain whose second hop
// aliases the transaction's own first write whenever the store links them.
func selfRefProg() *lang.Program {
	return &lang.Program{
		Name:   "selfref",
		Params: []lang.Param{lang.IntParam("k", 0, 15), lang.IntParam("v", 0, 15)},
		Body: []lang.Stmt{
			lang.GetS("a", "G", lang.P("k")),
			lang.Set("k2", lang.Mod(lang.Fld(lang.L("a"), "v"), lang.C(16))),
			lang.PutS("G", lang.Key(lang.L("k2")), lang.RecE(lang.F("v", lang.P("v")))),
			// Read back a cell that may or may not be the one just written.
			lang.GetS("b", "G", lang.Mod(lang.Add(lang.L("k2"), lang.P("v")), lang.C(16))),
			lang.PutS("G", lang.Key(lang.Mod(lang.Fld(lang.L("b"), "v"), lang.C(16))),
				lang.RecE(lang.F("v", lang.Add(lang.P("v"), lang.C(1))))),
		},
	}
}

func fuzzEngineRegistry(t testing.TB) *Registry {
	t.Helper()
	schema := lang.NewSchema(lang.TableSpec{Name: "G", KeyArity: 1})
	reg, err := NewRegistry(schema, selfRefProg())
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func fuzzStore() *store.Store {
	st := store.New()
	r := rand.New(rand.NewSource(1234))
	for i := int64(0); i < 16; i++ {
		st.Put(0, value.NewKey("G", value.Int(i)),
			value.Record(map[string]value.Value{"v": value.Int(r.Int63n(16))}))
	}
	return st
}

func fuzzBatches(seed int64, batches, perBatch int) [][]Request {
	r := rand.New(rand.NewSource(seed))
	var out [][]Request
	seq := uint64(0)
	for b := 0; b < batches; b++ {
		var batch []Request
		for i := 0; i < perBatch; i++ {
			seq++
			batch = append(batch, Request{Seq: seq, TxName: "selfref",
				Inputs: map[string]value.Value{
					"k": value.Int(r.Int63n(16)), "v": value.Int(r.Int63n(16)),
				}})
		}
		out = append(out, batch)
	}
	return out
}

// TestFuzzEngineSurvivesMispredictions: the aliasing workload must complete
// every batch (fallback liveness) with a deterministic outcome across
// worker counts, fail modes and repeated runs.
func TestFuzzEngineSurvivesMispredictions(t *testing.T) {
	reg := fuzzEngineRegistry(t)
	batches := fuzzBatches(9, 8, 25)
	for _, fail := range []FailMode{FailReenqueue, FailSequential} {
		t.Run(fail.String(), func(t *testing.T) {
			var first uint64
			firstAborts := -1
			for _, workers := range []int{1, 4, 8} {
				st := fuzzStore()
				e := New(reg, st, Config{Workers: workers, Fail: fail})
				aborts := 0
				for _, b := range batches {
					res, err := e.ExecuteBatch(b)
					if err != nil {
						t.Fatal(err)
					}
					aborts += res.Aborts
					for _, o := range res.Outcomes {
						if o.Done.IsZero() || o.Pending {
							t.Fatalf("uncommitted outcome %+v", o)
						}
					}
				}
				h := st.StateHash(st.Epoch())
				if firstAborts < 0 {
					first, firstAborts = h, aborts
					continue
				}
				if h != first {
					t.Fatalf("state diverged with %d workers", workers)
				}
				if aborts != firstAborts {
					t.Fatalf("aborts diverged: %d vs %d", aborts, firstAborts)
				}
			}
		})
	}
}

// TestFuzzSimMatchesEngineUnderMispredictions: the virtual-time simulator
// must track the threaded engine through the fallback path too.
func TestFuzzSimMatchesEngineUnderMispredictions(t *testing.T) {
	reg := fuzzEngineRegistry(t)
	batches := fuzzBatches(21, 6, 20)
	stReal := fuzzStore()
	real := New(reg, stReal, Config{Workers: 4})
	stSim := fuzzStore()
	sim := NewSim(reg, stSim, Config{Workers: 4})
	for _, b := range batches {
		r1, err := real.ExecuteBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := sim.ExecuteBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Aborts != r2.Aborts {
			t.Fatalf("abort counts differ: %d vs %d", r1.Aborts, r2.Aborts)
		}
	}
	if stReal.StateHash(stReal.Epoch()) != stSim.StateHash(stSim.Epoch()) {
		t.Fatal("sim diverged from engine under misprediction fallback")
	}
}

// TestReadOwnWriteExactMatchPredicted: the direct (syntactically identical
// key) read-own-write pattern must be handled by the profile itself — no
// aborts at all.
func TestReadOwnWriteExactMatchPredicted(t *testing.T) {
	schema := lang.NewSchema(lang.TableSpec{Name: "G", KeyArity: 1})
	p := &lang.Program{
		Name:   "rmw",
		Params: []lang.Param{lang.IntParam("k", 0, 15)},
		Body: []lang.Stmt{
			lang.PutS("G", lang.Key(lang.P("k")), lang.RecE(lang.F("v", lang.C(7)))),
			lang.GetS("a", "G", lang.P("k")), // reads own write: v == 7
			lang.PutS("G", lang.Key(lang.Fld(lang.L("a"), "v")),
				lang.RecE(lang.F("v", lang.C(1)))),
		},
	}
	reg, err := NewRegistry(schema, p)
	if err != nil {
		t.Fatal(err)
	}
	// The second write's key is statically 7: the profile needs no pivot.
	if reg.Classes["rmw"] != 2 { // ClassIT
		t.Fatalf("class = %v, want IT (own write resolved symbolically)", reg.Classes["rmw"])
	}
	st := fuzzStore()
	e := New(reg, st, Config{Workers: 2})
	res, err := e.ExecuteBatch([]Request{{Seq: 1, TxName: "rmw",
		Inputs: map[string]value.Value{"k": value.Int(3)}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborts != 0 {
		t.Fatalf("aborts = %d, want 0", res.Aborts)
	}
	rec, _ := st.Get(st.Epoch(), value.NewKey("G", value.Int(7)))
	if f, _ := rec.Field("v"); f.MustInt() != 1 {
		t.Fatalf("G/7 = %v", rec)
	}
}

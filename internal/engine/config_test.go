package engine

import (
	"testing"

	"prognosticator/internal/value"
)

// TestExclusiveLocksSerializeSharedReads: the ablation mode must force
// read-read conflicts to serialize — observable through virtual makespan.
func TestExclusiveLocksSerializeSharedReads(t *testing.T) {
	reg := bankRegistry(t)
	// chase transactions on distinct pointers targeting distinct accounts
	// share nothing but... build a workload that shares only READS: many
	// audits cannot be used (ROTs bypass locks), so use chases with the
	// same pivot pointer (read PTR/1) but... chase writes depend on the
	// pivot; all write the same target. Instead use deposits reading a
	// common reference: craft with chase reads of PTR/1 but targeting the
	// same account anyway. Simplest observable: deposits to DISTINCT
	// accounts share no keys, so exclusive mode changes nothing; chases
	// through the same pointer contend on the pivot read only.
	mk := func(exclusive bool) int32 {
		st := bankStore()
		sim := NewSim(reg, st, Config{Workers: 8, ExclusiveLocks: exclusive})
		var batch []Request
		for i := 0; i < 12; i++ {
			batch = append(batch, req(uint64(i+1), "chase", ival("p", 1, "amt", 1)))
		}
		res, err := sim.ExecuteBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		_ = res
		// Return remaining abort info not needed; use makespan compare.
		return int32(res.VirtualMakespan.Microseconds())
	}
	shared := mk(false)
	exclusive := mk(true)
	// All 12 chases read PTR/1 and write ACC/10: the write conflict
	// dominates either way, so makespans are close — but exclusive can
	// never be FASTER.
	if exclusive < shared {
		t.Fatalf("exclusive (%dµs) faster than shared (%dµs)?", exclusive, shared)
	}
}

func TestExclusiveLocksStillDeterministic(t *testing.T) {
	reg := bankRegistry(t)
	batches := randomBatches(50, 6, 40)
	var first uint64
	for run := 0; run < 2; run++ {
		st := bankStore()
		e := New(reg, st, Config{Workers: 8, ExclusiveLocks: true})
		for _, b := range batches {
			if _, err := e.ExecuteBatch(b); err != nil {
				t.Fatal(err)
			}
		}
		h := st.StateHash(st.Epoch())
		if run == 0 {
			first = h
		} else if h != first {
			t.Fatal("exclusive-lock mode diverged across runs")
		}
	}
}

// TestGCHorizonRetainsHistory: a nonzero horizon must keep old versions
// readable for stale-snapshot consumers.
func TestGCHorizonRetainsHistory(t *testing.T) {
	reg := bankRegistry(t)
	st := bankStore()
	e := New(reg, st, Config{Workers: 2, GCHorizon: 20})
	for i := 0; i < 18; i++ { // cross the gcEvery=16 boundary
		if _, err := e.ExecuteBatch([]Request{
			req(uint64(i+1), "deposit", ival("k", 1, "amt", 1)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Epoch 18 now; horizon 20 > 18 means nothing was GC'd: epoch-3
	// history is still visible.
	rec, ok := st.Get(3, value.NewKey("ACC", value.Int(1)))
	if !ok {
		t.Fatal("historical version lost despite GC horizon")
	}
	if f, _ := rec.Field("bal"); f.MustInt() != 103 {
		t.Fatalf("epoch-3 balance = %v, want 103", f)
	}
}

func TestSimExclusiveMatchesRealExclusive(t *testing.T) {
	reg := bankRegistry(t)
	batches := randomBatches(51, 5, 30)
	cfg := Config{Workers: 4, ExclusiveLocks: true}
	stReal := bankStore()
	real := New(reg, stReal, cfg)
	stSim := bankStore()
	sim := NewSim(reg, stSim, cfg)
	for _, b := range batches {
		if _, err := real.ExecuteBatch(b); err != nil {
			t.Fatal(err)
		}
		if _, err := sim.ExecuteBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if stReal.StateHash(stReal.Epoch()) != stSim.StateHash(stSim.Epoch()) {
		t.Fatal("exclusive-mode sim diverged from real engine")
	}
}

// Package engine implements Prognosticator's deterministic multi-threaded
// transaction execution layer (§III-C of the paper): a single Queuer and N
// Workers cooperating through the lock table to execute an ordered batch of
// transactions with maximum parallelism while guaranteeing that every
// replica reaches the same state.
package engine

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"prognosticator/internal/lang"
	"prognosticator/internal/lint"
	"prognosticator/internal/locktable"
	"prognosticator/internal/profile"
	"prognosticator/internal/symexec"
	"prognosticator/internal/value"
)

// Request is one transaction invocation, already ordered by consensus.
type Request struct {
	// Seq is the position in the agreed total order (unique within a
	// batch; monotonically increasing across batches by convention).
	Seq    uint64
	TxName string
	Inputs map[string]value.Value
}

// PrepareMode selects how update-transaction key-sets are obtained.
type PrepareMode int

// Prepare modes: symbolic-execution profiles (the paper's contribution) vs
// reconnaissance (run the transaction logic against the snapshot, the
// OLLP-style "-R" variants of §IV-C).
const (
	PrepareSE PrepareMode = iota + 1
	PrepareRecon
)

// String returns the variant suffix used in the paper's figures.
func (m PrepareMode) String() string {
	if m == PrepareRecon {
		return "R"
	}
	return "SE"
}

// QueueMode selects who prepares indirect keys.
type QueueMode int

// Queue modes: MQ lets idle workers help the Queuer prepare; 1Q leaves all
// preparation to the single Queuer thread.
const (
	QueueMulti QueueMode = iota + 1
	QueueSingle
)

// String returns the variant prefix used in the paper's figures.
func (m QueueMode) String() string {
	if m == QueueSingle {
		return "1Q"
	}
	return "MQ"
}

// FailMode selects the failed-transaction strategy.
type FailMode int

// Fail modes: SF re-executes failed transactions sequentially on a single
// thread; MF re-prepares and re-enqueues them into the lock table.
const (
	FailSequential FailMode = iota + 1
	FailReenqueue
)

// String returns the variant suffix used in the paper's figures.
func (m FailMode) String() string {
	if m == FailReenqueue {
		return "MF"
	}
	return "SF"
}

// Config selects an engine variant. The paper's §IV-C grid is
// {MQ,1Q} x {SF,MF} x {SE,R}.
type Config struct {
	Workers int
	Prepare PrepareMode
	Queue   QueueMode
	Fail    FailMode
	// GCHorizon is how many epochs of history to retain behind the
	// current one (baselines with stale reads need more than the default).
	GCHorizon uint64
	// ExclusiveLocks disables shared read grants in the lock table — the
	// literal reading of the paper's Fig. 2, kept as an ablation: hot
	// catalog reads then serialize the workload (see the
	// BenchmarkAblationLockSharing results).
	ExclusiveLocks bool
	// DirectMemo, when non-nil, caches InstantiateDirect results for
	// pivot-free DTs across requests (and across executors sharing the
	// memo). The direct key-set is a pure function of the inputs, so the
	// cache never goes stale; a dispatcher-side prewarmer (see
	// Registry.DirectPrewarmer) can populate it before batches arrive.
	DirectMemo *profile.DirectMemo
	// RecordFootprints makes every committed execution record its observed
	// read footprint and final write footprint (key → value fingerprint)
	// into TxOutcome.ReadSet/WriteSet — the raw material for the
	// serializability history checker (internal/history). Off by default:
	// recording allocates per transaction.
	RecordFootprints bool
	// TraceLocks makes every execution round emit its lock grant/release
	// records into BatchResult.LockTrace. Combined with RecordFootprints,
	// the trace lets the serializability checker reconstruct the EFFECTIVE
	// serial order from what the lock table actually did, rather than
	// trusting the agreed order (see history.CheckTraced). Off by default.
	TraceLocks bool
}

// VariantName renders the configuration the way the paper labels it, e.g.
// "MQ-MF" or "1Q-SF-R".
func (c Config) VariantName() string {
	name := c.Queue.String() + "-" + c.Fail.String()
	if c.Prepare == PrepareRecon {
		name += "-R"
	}
	return name
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Prepare == 0 {
		c.Prepare = PrepareSE
	}
	if c.Queue == 0 {
		c.Queue = QueueMulti
	}
	if c.Fail == 0 {
		c.Fail = FailReenqueue
	}
	return c
}

// TxOutcome reports the fate of one request.
type TxOutcome struct {
	Seq     uint64
	TxName  string
	Class   profile.Class
	Aborts  int           // failed execution attempts
	Prepare time.Duration // time spent preparing the key-set (all attempts)
	Exec    time.Duration // time spent executing successfully
	// Done is when the transaction finally committed, for latency
	// accounting (zero when the transaction is still pending, which only
	// Calvin's carry-over produces).
	Done time.Time
	// Pending marks a transaction that did not commit in this batch and
	// was carried over (Calvin's client-retry path).
	Pending bool
	// Emitted holds the transaction's Emit outputs (its result set).
	Emitted map[string]value.Value
	// DirectKeys counts the key-set entries instantiated client-side
	// without pivot reads (pivot-free DTs only; zero elsewhere).
	DirectKeys int
	// VDone is the transaction's completion offset in VIRTUAL time from
	// the batch start; set only by the virtual-time simulator (sim.go),
	// which models an N-core replica on whatever host runs it.
	VDone time.Duration
	// ReadSet and WriteSet are the committed execution's observed read
	// footprint (first read per key, before any own write) and final write
	// footprint, recorded only with Config.RecordFootprints. Values are
	// fingerprints (see Fingerprint); an empty Val is a not-found read or a
	// delete.
	ReadSet  []Access
	WriteSet []Access
}

// Access is one recorded key access: the encoded key and a fingerprint of
// the value observed (reads) or produced (writes). An empty Val marks a
// not-found read or a deleting write.
type Access struct {
	Key string
	Val string
}

// BatchResult is the outcome of executing one ordered batch.
type BatchResult struct {
	Epoch     uint64
	Outcomes  []TxOutcome
	Aborts    int
	Start     time.Time
	End       time.Time
	ROTs      int
	Updates   int
	FailRound int // number of re-execution rounds needed
	// VirtualMakespan is the batch's span in virtual time (simulator only).
	VirtualMakespan time.Duration
	// LockTrace is the batch's lock grant/release record stream across all
	// execution rounds, recorded only with Config.TraceLocks.
	LockTrace []locktable.Record
}

// Executor is the interface shared by the Prognosticator engine and the
// Calvin/NODO/SEQ baselines: execute ordered batches deterministically.
type Executor interface {
	// ExecuteBatch runs one batch to completion and returns per-request
	// outcomes. Implementations must be deterministic: the same sequence
	// of batches yields the same store state on every run.
	ExecuteBatch(batch []Request) (*BatchResult, error)
	// Name returns the system/variant label used in figures.
	Name() string
}

// Registry is the transaction catalog: validated programs plus their
// offline symbolic-execution profiles, shared by all executors (the paper
// gives NODO and Calvin the benefit of the same SE analysis, §IV-B).
type Registry struct {
	Schema   *lang.Schema
	Programs map[string]*lang.Program
	Profiles map[string]*profile.Profile
	// Classes caches each transaction's ROT/IT/DT classification
	// (classifying walks the whole profile tree, far too expensive to do
	// per request).
	Classes map[string]profile.Class
	// Tables caches, per transaction, the set of tables it may touch —
	// NODO's conflict classes. TableLocks is the same information as
	// ready-made table-granularity lock requests (write mode for tables
	// the transaction may write).
	Tables     map[string][]string
	TableLocks map[string][]locktable.LockKey
	// PivotFree marks DT profiles whose tree traversal never depends on a
	// pivot: preparation splits into an input-only direct part (predicted
	// client-side, no store reads) and a pivot-dependent remainder
	// (§III-C). ITs/ROTs are excluded — their whole key-set is direct
	// already and the split would be pure overhead.
	PivotFree map[string]bool
}

// RegistryOptions configures registration.
type RegistryOptions struct {
	// StrictLint runs the static-analysis passes (internal/lint) over each
	// program before analysis and rejects registration on any error-severity
	// finding — use-before-assign, schema misuse, unbounded loops. Opt-in:
	// warnings and info findings never block registration.
	StrictLint bool
	// SoundnessSamples, when positive with StrictLint, additionally
	// cross-validates each derived profile against the concrete interpreter
	// on that many random samples (plus boundary samples) and rejects
	// registration when the profile under- or over-approximates the
	// read/write-set.
	SoundnessSamples int
}

// NewRegistry validates and analyzes the given programs with the optimized
// symbolic execution (taint + pruning), building the shared catalog.
func NewRegistry(schema *lang.Schema, programs ...*lang.Program) (*Registry, error) {
	return NewRegistryWith(schema, RegistryOptions{}, programs...)
}

// NewRegistryWith is NewRegistry with explicit options.
func NewRegistryWith(schema *lang.Schema, opts RegistryOptions, programs ...*lang.Program) (*Registry, error) {
	var linter *lint.Linter
	if opts.StrictLint {
		linter = lint.New(schema)
	}
	r := &Registry{
		Schema:     schema,
		Programs:   make(map[string]*lang.Program, len(programs)),
		Profiles:   make(map[string]*profile.Profile, len(programs)),
		Classes:    make(map[string]profile.Class, len(programs)),
		Tables:     make(map[string][]string, len(programs)),
		TableLocks: make(map[string][]locktable.LockKey, len(programs)),
		PivotFree:  make(map[string]bool, len(programs)),
	}
	for _, p := range programs {
		if err := schema.Validate(p); err != nil {
			return nil, fmt.Errorf("engine: registry: %w", err)
		}
		if linter != nil {
			if fs := linter.Run(p); lint.MaxSeverity(fs) >= lint.SevError {
				return nil, fmt.Errorf("engine: registry: %s rejected by strict lint:\n%s",
					p.Name, formatErrorFindings(fs))
			}
		}
		prof, err := symexec.AnalyzeProfileOnly(p)
		if err != nil {
			return nil, fmt.Errorf("engine: registry: analyze %s: %w", p.Name, err)
		}
		if linter != nil && opts.SoundnessSamples > 0 {
			rep, err := lint.CheckSoundness(p, prof, lint.SoundnessOptions{Samples: opts.SoundnessSamples})
			if err != nil {
				return nil, fmt.Errorf("engine: registry: soundness %s: %w", p.Name, err)
			}
			if !rep.Sound() {
				return nil, fmt.Errorf("engine: registry: %s rejected by strict lint:\n%s",
					p.Name, formatErrorFindings(rep.Findings()))
			}
		}
		r.Programs[p.Name] = p
		r.Profiles[p.Name] = prof
		r.Classes[p.Name] = prof.Class()
		r.PivotFree[p.Name] = prof.Class() == profile.ClassDT && prof.PivotFreeTraversal()
		tbls := profileTables(prof)
		names := make([]string, 0, len(tbls))
		for t := range tbls {
			names = append(names, t)
		}
		sort.Strings(names)
		r.Tables[p.Name] = names
		locks := make([]locktable.LockKey, 0, len(names))
		for _, t := range names {
			locks = append(locks, locktable.LockKey{Key: value.NewKey(t).Encode(), Write: tbls[t]})
		}
		r.TableLocks[p.Name] = locks
	}
	return r, nil
}

// DirectPrewarmer returns a hook suitable for a dispatcher's submit path:
// for pivot-free DTs it instantiates the direct key-set into memo, so the
// engine's later preparation is a cache hit. Other classes are skipped (their
// preparation never calls InstantiateDirect) and instantiation errors are
// ignored — preparation will surface them with full request context.
func (r *Registry) DirectPrewarmer(memo *profile.DirectMemo) func(txName string, inputs map[string]value.Value) {
	return func(txName string, inputs map[string]value.Value) {
		if memo == nil || !r.PivotFree[txName] {
			return
		}
		if prof, ok := r.Profiles[txName]; ok {
			_, _ = memo.InstantiateDirect(prof, inputs)
		}
	}
}

// formatErrorFindings renders the error-severity findings, one per line.
func formatErrorFindings(fs []lint.Finding) string {
	var lines []string
	for _, f := range fs {
		if f.Severity >= lint.SevError {
			lines = append(lines, "\t"+f.String())
		}
	}
	return strings.Join(lines, "\n")
}

// Class returns the class of the named transaction.
func (r *Registry) Class(txName string) (profile.Class, error) {
	c, ok := r.Classes[txName]
	if !ok {
		return 0, fmt.Errorf("engine: unknown transaction %q", txName)
	}
	return c, nil
}

// profileTables collects the distinct tables touched anywhere in a profile,
// with true marking tables the transaction may write.
func profileTables(p *profile.Profile) map[string]bool {
	seen := map[string]bool{}
	var walk func(n *profile.Node)
	walk = func(n *profile.Node) {
		if n == nil {
			return
		}
		for _, a := range n.Seg {
			seen[a.Table] = seen[a.Table] || a.Write
		}
		walk(n.True)
		walk(n.False)
	}
	walk(p.Root)
	return seen
}

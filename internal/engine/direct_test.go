package engine

import (
	"reflect"
	"testing"

	"prognosticator/internal/profile"
	"prognosticator/internal/value"
)

// Tests for §III-C client-side prediction: pivot-free DTs split preparation
// into an input-only direct part and a pivot-dependent remainder, and the
// split path must be bit-identical to the full pivot-read path.

func TestRegistryPivotFreeClassification(t *testing.T) {
	reg := bankRegistry(t)
	want := map[string]bool{
		"chase":    true,  // straight-line DT: traversal trivially pivot-free
		"redirect": true,  // same, with a write-back of the pivot record
		"deposit":  false, // IT: nothing to split
		"repoint":  false, // IT
		"audit":    false, // ROT
	}
	for tx, w := range want {
		if got := reg.PivotFree[tx]; got != w {
			t.Errorf("PivotFree[%s] = %v, want %v", tx, got, w)
		}
	}
}

// countingReader wraps a PivotReader and counts ReadPivot calls.
type countingReader struct {
	inner profile.PivotReader
	calls int
}

func (c *countingReader) ReadPivot(k value.Key, field string) (value.Value, bool) {
	c.calls++
	if c.inner == nil {
		return value.Value{}, false
	}
	return c.inner.ReadPivot(k, field)
}

// TestSplitInstantiationMatchesFull checks, at the profile level, that
// direct + indirect instantiation reproduces the full instantiation: same
// key multiset, same pivot observations, and zero pivot reads for the
// direct half.
func TestSplitInstantiationMatchesFull(t *testing.T) {
	reg := bankRegistry(t)
	st := bankStore()
	prof := reg.Profiles["chase"]
	if !prof.PivotFreeTraversal() {
		t.Fatal("chase profile should have a pivot-free traversal")
	}
	inputs := ival("p", 3, "amt", 10)
	snap := st.ViewAt(st.Epoch())

	full, err := prof.Instantiate(inputs, snap)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := prof.InstantiateDirect(inputs)
	if err != nil {
		t.Fatal(err)
	}
	counting := &countingReader{inner: snap}
	indirect, err := prof.InstantiateIndirect(inputs, counting)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Pivots) != 0 {
		t.Fatalf("direct part recorded pivot observations: %v", direct.Pivots)
	}
	if counting.calls == 0 {
		t.Fatal("indirect part read no pivots; chase must read PTR")
	}
	merged := profile.Merge(direct, indirect)
	if !reflect.DeepEqual(merged.Pivots, full.Pivots) {
		t.Fatalf("pivot observations differ:\nsplit: %v\nfull:  %v", merged.Pivots, full.Pivots)
	}
	if got, want := keyEncSet(merged.Reads), keyEncSet(full.Reads); !reflect.DeepEqual(got, want) {
		t.Fatalf("read sets differ: %v vs %v", got, want)
	}
	if got, want := keyEncSet(merged.Writes), keyEncSet(full.Writes); !reflect.DeepEqual(got, want) {
		t.Fatalf("write sets differ: %v vs %v", got, want)
	}
	if len(direct.Reads)+len(direct.Writes) == 0 {
		t.Fatal("chase has direct accesses (GET PTR[p]); direct part is empty")
	}
}

func keyEncSet(keys []value.Key) map[value.Encoded]int {
	m := map[value.Encoded]int{}
	for _, k := range keys {
		m[k.Encode()]++
	}
	return m
}

// TestDirectPreparationBitIdentical executes the same randomized batch
// sequence on the split-preparation engine and on an engine forced onto the
// full pivot-read path, and requires identical store state and abort counts
// — across fail modes, so MF re-preparation rounds also go through the
// direct-key cache.
func TestDirectPreparationBitIdentical(t *testing.T) {
	batches := randomBatches(7, 10, 40)
	for _, cfg := range []Config{
		{Queue: QueueMulti, Fail: FailReenqueue, Workers: 4},
		{Queue: QueueMulti, Fail: FailSequential, Workers: 4},
		{Queue: QueueSingle, Fail: FailReenqueue, Workers: 2},
		// Memoized direct instantiation must be invisible to the state: the
		// cached key-sets are pure functions of the inputs.
		{Queue: QueueMulti, Fail: FailReenqueue, Workers: 4,
			DirectMemo: profile.NewDirectMemo(16, nil)},
	} {
		regSplit := bankRegistry(t)
		stSplit := bankStore()
		hashSplit, abortsSplit := runAll(t, New(regSplit, stSplit, cfg), stSplit, batches)

		regFull := bankRegistry(t)
		for tx := range regFull.PivotFree {
			regFull.PivotFree[tx] = false
		}
		stFull := bankStore()
		hashFull, abortsFull := runAll(t, New(regFull, stFull, cfg), stFull, batches)

		if hashSplit != hashFull {
			t.Errorf("%s: state hash differs: split %x vs full %x", cfg.VariantName(), hashSplit, hashFull)
		}
		if abortsSplit != abortsFull {
			t.Errorf("%s: aborts differ: split %d vs full %d", cfg.VariantName(), abortsSplit, abortsFull)
		}
	}
}

// TestDirectKeysReported checks the outcome accounting: pivot-free DTs
// report their client-side predicted keys, everything else reports zero.
func TestDirectKeysReported(t *testing.T) {
	reg := bankRegistry(t)
	st := bankStore()
	e := New(reg, st, Config{Workers: 2})
	res, err := e.ExecuteBatch([]Request{
		req(1, "chase", ival("p", 2, "amt", 5)),
		req(2, "deposit", ival("k", 7, "amt", 5)),
	})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]TxOutcome{}
	for _, o := range res.Outcomes {
		byName[o.TxName] = o
	}
	// chase: GET PTR[p] is direct; GET/PUT ACC[tgt] are pivot-dependent.
	if byName["chase"].DirectKeys != 1 {
		t.Errorf("chase DirectKeys = %d, want 1", byName["chase"].DirectKeys)
	}
	if byName["deposit"].DirectKeys != 0 {
		t.Errorf("deposit DirectKeys = %d, want 0 (IT does not use the split)", byName["deposit"].DirectKeys)
	}
}

package symexec

import (
	"math/rand"
	"testing"

	"prognosticator/internal/lang"
	"prognosticator/internal/profile"
	"prognosticator/internal/value"
)

// Program-level fuzzing: generate random well-formed programs, analyze them
// optimized AND unoptimized, and check — for many random inputs and store
// states — that each profile's predicted key-set covers exactly the keys
// the concrete interpreter touches. This is the soundness property the
// whole system rests on.

// progGen builds random programs over a small schema. Programs follow the
// read-phase-then-write-phase OLTP shape: once the first PUT is emitted no
// further GETs occur, so profiles are exactly sound (reads never observe
// the transaction's own writes; see the engine-level fuzz for arbitrary
// interleavings, which exercise the misprediction fallback instead).
type progGen struct {
	r       *rand.Rand
	params  []lang.Param
	locals  []string
	depth   int
	writing bool
}

func (g *progGen) intExpr(allowLocals bool) lang.Expr {
	switch g.r.Intn(6) {
	case 0:
		return lang.C(int64(g.r.Intn(8)))
	case 1, 2:
		if len(g.params) > 0 {
			p := g.params[g.r.Intn(len(g.params))]
			return lang.P(p.Name)
		}
		return lang.C(1)
	case 3:
		if allowLocals && len(g.locals) > 0 {
			return lang.L(g.locals[g.r.Intn(len(g.locals))])
		}
		return lang.C(2)
	case 4:
		return lang.Add(g.intExpr(allowLocals), g.intExpr(false))
	default:
		return lang.Mod(g.intExpr(allowLocals), lang.C(int64(3+g.r.Intn(5))))
	}
}

func (g *progGen) condExpr() lang.Expr {
	ops := []func(l, r lang.Expr) lang.Expr{lang.Lt, lang.Le, lang.Gt, lang.Ge, lang.Eq, lang.Ne}
	return ops[g.r.Intn(len(ops))](g.intExpr(true), g.intExpr(true))
}

func (g *progGen) block(n int) []lang.Stmt {
	var out []lang.Stmt
	for i := 0; i < n; i++ {
		switch g.r.Intn(7) {
		case 0, 1: // GET while in the read phase, possibly a pivot chain
			if g.writing {
				out = append(out, lang.PutS("T", lang.Key(g.keyExpr()),
					lang.RecE(lang.F("v", g.intExpr(true)))))
				continue
			}
			dst := g.newLocal()
			out = append(out, lang.GetS(dst, "T", g.keyExpr()))
		case 2, 3: // PUT; enters the write phase
			g.writing = true
			out = append(out, lang.PutS("T", lang.Key(g.keyExpr()),
				lang.RecE(lang.F("v", g.intExpr(true)))))
		case 4: // assignment
			dst := g.newLocal()
			out = append(out, lang.Set(dst, g.intExpr(true)))
		case 5: // branch
			if g.depth < 3 {
				g.depth++
				thenB := g.block(1 + g.r.Intn(2))
				var elseB []lang.Stmt
				if g.r.Intn(2) == 0 {
					elseB = g.block(1 + g.r.Intn(2))
				}
				g.depth--
				out = append(out, lang.IfElse(g.condExpr(), thenB, elseB))
			}
		default: // bounded loop with concrete bounds
			if g.depth < 2 {
				g.depth++
				body := g.block(1 + g.r.Intn(2))
				g.depth--
				out = append(out, lang.ForS(g.newLocal(), lang.C(0), lang.C(int64(1+g.r.Intn(3))), body...))
			}
		}
	}
	return out
}

// keyExpr builds a key that may depend on params, locals (possibly GET
// results — pivots), or constants, wrapped in Mod to keep the space small.
func (g *progGen) keyExpr() lang.Expr {
	base := g.intExpr(true)
	if g.r.Intn(2) == 0 {
		// project a field of a record local with some probability: pivots
		if len(g.locals) > 0 {
			l := g.locals[g.r.Intn(len(g.locals))]
			base = lang.Fld(lang.L(l), "v")
		}
	}
	return lang.Mod(base, lang.C(16))
}

func (g *progGen) newLocal() string {
	// Local names stay in a..o so they can never collide with the
	// parameter names (p, q, r) — keeps Format/Parse round trips clean.
	name := string(rune('a' + len(g.locals)%15))
	g.locals = append(g.locals, name)
	return name
}

func randomProgram(seed int64) *lang.Program {
	r := rand.New(rand.NewSource(seed))
	g := &progGen{r: r}
	nParams := 1 + r.Intn(3)
	for i := 0; i < nParams; i++ {
		g.params = append(g.params, lang.IntParam(string(rune('p'+i)), 0, int64(4+r.Intn(12))))
	}
	return &lang.Program{
		Name:   "fuzz",
		Params: g.params,
		Body:   g.block(3 + r.Intn(4)),
	}
}

// Some generated programs index Mod on locals holding records (Fld of a
// missing field reads 0 — fine) or divide by zero (never: Mod constants are
// >= 3). Validation failures are skipped.

func fuzzSchema() *lang.Schema {
	return lang.NewSchema(lang.TableSpec{Name: "T", KeyArity: 1})
}

func TestFuzzProfilesCoverConcreteExecution(t *testing.T) {
	schema := fuzzSchema()
	tried, analyzed := 0, 0
	for seed := int64(0); seed < 300; seed++ {
		p := randomProgram(seed)
		if err := schema.Validate(p); err != nil {
			continue
		}
		tried++
		for _, opts := range []Options{
			{UseTaint: true, Prune: true, SkipUnoptimized: true},
			{Prune: true, SkipUnoptimized: true},
			{SkipUnoptimized: true},
		} {
			prof, err := Analyze(p, opts)
			if err != nil {
				// Budget or unsupported constructs: acceptable for fuzz
				// programs, but must be an explicit error, not a panic.
				continue
			}
			analyzed++
			for trial := int64(0); trial < 6; trial++ {
				inputs := randomInputs(p, seed*31+trial)
				kv := randomStore(seed*17 + trial)
				// Predict BEFORE executing (as the Queuer does): the
				// profile is instantiated against the pre-batch snapshot.
				ks, instErr := prof.Instantiate(inputs, kv)
				res, runErr := lang.Run(p, inputs, kv)
				if runErr != nil {
					// Fuzz programs may be dynamically ill-typed for some
					// states (e.g. a record stored where a later key
					// expects an int); such runs are outside the engine's
					// contract — skip, but instantiation must not have
					// succeeded with garbage silently.
					continue
				}
				if instErr != nil {
					t.Fatalf("seed %d: instantiate failed where execution succeeds: %v\n%s",
						seed, instErr, lang.Format(p))
				}
				assertCover(t, seed, p, inputs, res, ks)
			}
		}
	}
	if tried < 100 || analyzed < 150 {
		t.Fatalf("fuzz coverage too thin: %d programs, %d analyses", tried, analyzed)
	}
}

func assertCover(t *testing.T, seed int64, p *lang.Program, inputs map[string]value.Value, res *lang.Result, ks *profile.KeySet) {
	t.Helper()
	predictedW := map[string]bool{}
	for _, k := range ks.Writes {
		predictedW[k.String()] = true
	}
	for _, k := range res.Writes {
		if !predictedW[k.String()] {
			t.Fatalf("seed %d: write %s not predicted (writes %v reads %v)\ninputs=%v\n%s",
				seed, k, ks.Writes, ks.Reads, inputs, lang.Format(p))
		}
	}
	predictedR := map[string]bool{}
	for _, k := range ks.Reads {
		predictedR[k.String()] = true
	}
	for _, k := range res.Reads {
		if !predictedR[k.String()] {
			t.Fatalf("seed %d: read %s not predicted (reads %v)\ninputs=%v\n%s",
				seed, k, ks.Reads, inputs, lang.Format(p))
		}
	}
}

// randomStore populates a store with random records over the fuzz key
// space, so pivots read meaningful values.
func randomStore(seed int64) *storeKV {
	r := rand.New(rand.NewSource(seed))
	kv := newStoreKV()
	for i := int64(0); i < 16; i++ {
		if r.Intn(3) != 0 { // leave some keys missing
			kv.Put(value.NewKey("T", value.Int(i)),
				value.Record(map[string]value.Value{"v": value.Int(r.Int63n(16))}))
		}
	}
	return kv
}

// TestFuzzFormatParseRoundTrip: for every generated program, Format output
// re-parses to a program with the identical profile tree — the printer and
// parser agree on the language.
func TestFuzzFormatParseRoundTrip(t *testing.T) {
	schema := fuzzSchema()
	checked := 0
	for seed := int64(0); seed < 200; seed++ {
		p := randomProgram(seed)
		if err := schema.Validate(p); err != nil {
			continue
		}
		src := lang.Format(p)
		back, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: Format output failed to parse: %v\n%s", seed, err, src)
		}
		if err := schema.Validate(back); err != nil {
			t.Fatalf("seed %d: re-parsed program invalid: %v", seed, err)
		}
		a, errA := AnalyzeOptimized(p)
		b, errB := AnalyzeOptimized(back)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("seed %d: analyze disagreement after round trip", seed)
		}
		if errA == nil && !treesEqual(a.Root, b.Root) {
			t.Fatalf("seed %d: profile changed across Format/Parse:\n%s", seed, src)
		}
		checked++
	}
	if checked < 80 {
		t.Fatalf("only %d programs round-tripped", checked)
	}
}

// TestFuzzDeterministicProfiles: analyzing the same program twice yields
// structurally identical profiles (analysis itself is deterministic).
func TestFuzzDeterministicProfiles(t *testing.T) {
	schema := fuzzSchema()
	for seed := int64(0); seed < 50; seed++ {
		p := randomProgram(seed)
		if err := schema.Validate(p); err != nil {
			continue
		}
		a, errA := AnalyzeOptimized(p)
		b, errB := AnalyzeOptimized(p)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("seed %d: nondeterministic analyze error", seed)
		}
		if errA != nil {
			continue
		}
		if !treesEqual(a.Root, b.Root) {
			t.Fatalf("seed %d: nondeterministic profile tree", seed)
		}
	}
}

package symexec

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"prognosticator/internal/lang"
	"prognosticator/internal/profile"
	"prognosticator/internal/solver"
	"prognosticator/internal/sym"
	"prognosticator/internal/taint"
	"prognosticator/internal/value"
)

// Options configures one analysis run.
type Options struct {
	// UseTaint enables the irrelevant-variable (concolic) optimization.
	UseTaint bool
	// Prune enables merging of sibling subtrees that produce identical
	// RWS (the paper's depth-first pruning).
	Prune bool
	// MaxStates caps the number of symbolic states; 0 means DefaultMaxStates.
	MaxStates int
	// MaxLoopUnroll caps iterations of any single loop; 0 means
	// DefaultMaxLoopUnroll.
	MaxLoopUnroll int
	// FixedInputs pins selected parameters to concrete values (e.g. fixing
	// olCnt to reproduce the per-iteration rows of Table I).
	FixedInputs map[string]value.Value
	// TruncateOnBudget stops forking (exploring only the true arm) once
	// the state budget is reached instead of failing. The resulting
	// profile is INCOMPLETE and must only be used for cost measurement
	// (Table I extrapolation), never for scheduling.
	TruncateOnBudget bool
	// SkipUnoptimized suppresses the comparison run that fills the
	// unoptimized columns of Stats.
	SkipUnoptimized bool
}

// Default budget values. UnoptComparisonBudget caps the automatic
// unoptimized comparison run (see Analyze); callers wanting deeper
// unoptimized exploration run Analyze without optimizations themselves.
const (
	DefaultMaxStates      = 1 << 20
	DefaultMaxLoopUnroll  = 64
	UnoptComparisonBudget = 1 << 13
)

// ErrBudget is wrapped by analysis errors caused by exhausting the state
// budget.
var ErrBudget = fmt.Errorf("symexec: state budget exhausted")

// Analyze symbolically executes p and returns its transaction profile. With
// Options zero value the analysis runs unoptimized; production callers want
// UseTaint and Prune (see AnalyzeOptimized).
func Analyze(p *lang.Program, opts Options) (*profile.Profile, error) {
	if opts.MaxStates == 0 {
		opts.MaxStates = DefaultMaxStates
	}
	if opts.MaxLoopUnroll == 0 {
		opts.MaxLoopUnroll = DefaultMaxLoopUnroll
	}
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now()

	a := &analysis{prog: p, opts: opts}
	if opts.UseTaint {
		a.taint = taint.Analyze(p)
	}
	st := &state{a: a, locals: map[string]symval{}}
	if err := a.bindParams(st); err != nil {
		return nil, err
	}
	root, err := st.execBlock(p.Body, leafKont)
	if err != nil {
		return nil, fmt.Errorf("symexec: %s: %w", p.Name, err)
	}
	if root == nil {
		root = &profile.Node{}
	}

	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)

	// Cross-check the per-access Direct marks against the static
	// key-determinism analysis: a pivot-keyed access in a table the static
	// analysis proves all-direct means one of the two analyses is wrong, and
	// trusting either would be unsound.
	if err := checkDirectMarks(p, root); err != nil {
		return nil, fmt.Errorf("symexec: %s: %w", p.Name, err)
	}

	prof := &profile.Profile{TxName: p.Name, Root: root}
	prof.Stats = profile.Stats{
		StatesExplored: 2*a.forks + 1,
		TotalStates:    pow2(a.depthMax),
		Depth:          a.depthForks,
		DepthMax:       a.depthMax,
		UniqueKeySets:  countUniqueKeySets(root),
		IndirectKeys:   countIndirectKeys(root),
		MemoryBytes:    memAfter.TotalAlloc - memBefore.TotalAlloc,
		Duration:       time.Since(start),
		Truncated:      a.truncated,
	}

	// Comparison run without the optimizations, for the Table I columns.
	// Its budget is capped: beyond UnoptComparisonBudget states the
	// unoptimized analysis is exactly the infeasible case the paper
	// reports by extrapolation (newOrder at 15 iterations would take ~35
	// days under JPF), so the columns are left at zero and the caller
	// extrapolates from TotalStates.
	if (opts.UseTaint || opts.Prune) && !opts.SkipUnoptimized {
		unopt := opts
		unopt.UseTaint = false
		unopt.Prune = false
		unopt.SkipUnoptimized = true
		unopt.TruncateOnBudget = true
		if unopt.MaxStates > UnoptComparisonBudget {
			unopt.MaxStates = UnoptComparisonBudget
		}
		if up, err := Analyze(p, unopt); err == nil {
			prof.Stats.MemoryBytesUnopt = up.Stats.MemoryBytes
			prof.Stats.DurationUnopt = up.Stats.Duration
			prof.Stats.StatesUnopt = up.Stats.StatesExplored
			prof.Stats.UnoptTruncated = up.Stats.Truncated
		}
		// Budget exhaustion in the unoptimized run leaves the columns at
		// zero; callers report the analytic TotalStates instead, as the
		// paper does for the infeasible newOrder runs.
	}
	return prof, nil
}

// AnalyzeOptimized runs Analyze with both optimizations on.
func AnalyzeOptimized(p *lang.Program) (*profile.Profile, error) {
	return Analyze(p, Options{UseTaint: true, Prune: true})
}

// AnalyzeProfileOnly runs the optimized analysis WITHOUT the capped
// unoptimized comparison run that fills the Table I columns of Stats. The
// resulting profile is identical to AnalyzeOptimized's; only the comparison
// statistics are missing. This is the right entry point for callers that
// need the profile and not the paper's measurements — soundness linting, the
// engine registry — where the comparison run is pure overhead (for loop-heavy
// transactions like TPC-C newOrder it dominates the analysis by orders of
// magnitude).
func AnalyzeProfileOnly(p *lang.Program) (*profile.Profile, error) {
	return Analyze(p, Options{UseTaint: true, Prune: true, SkipUnoptimized: true})
}

func pow2(n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= 2
	}
	return out
}

// analysis is the per-run shared context.
type analysis struct {
	prog  *lang.Program
	opts  Options
	taint *taint.Result

	states     int // symbolic states created
	truncated  bool
	forks      int
	depthForks int // max symbolic forks on any path
	depthMax   int // max conditional evaluations on any path
	pruned     int // subtree merges performed
}

// bindParams initializes the symbolic store from the parameter declarations.
func (a *analysis) bindParams(st *state) error {
	for _, prm := range a.prog.Params {
		if fixed, ok := a.opts.FixedInputs[prm.Name]; ok {
			st.locals[prm.Name] = concreteSymval(fixed)
			continue
		}
		if a.opts.UseTaint && !a.taint.Relevant(prm.Name) {
			st.locals[prm.Name] = concreteSymval(taint.SampleValue(prm))
			continue
		}
		switch prm.Kind {
		case value.KindInt, value.KindString, value.KindBool:
			st.locals[prm.Name] = termVal{t: sym.NewInput(prm.Name, prm.Kind, prm.Lo, prm.Hi)}
		case value.KindList:
			elems := make([]symval, prm.MaxLen)
			for i := range elems {
				ek, lo, hi := value.KindInt, int64(0), int64(0)
				if prm.Elem != nil {
					ek, lo, hi = prm.Elem.Kind, prm.Elem.Lo, prm.Elem.Hi
				}
				elems[i] = termVal{t: sym.NewListElem(prm.Name, i, ek, lo, hi)}
			}
			st.locals[prm.Name] = listVal{elems: elems}
		default:
			return fmt.Errorf("symexec: %s: unsupported parameter kind %s", a.prog.Name, prm.Kind)
		}
	}
	return nil
}

// state is one symbolic state: the symbolic store, the path constraint and
// the access segment collected since the last fork.
type state struct {
	a      *analysis
	locals map[string]symval
	pc     []sym.Term
	// writes is the symbolic write buffer for read-own-write resolution:
	// a GET whose key is syntactically identical to an earlier PUT's key
	// returns the symbolic value written, not a pivot (the store cannot
	// serve a transaction's uncommitted write). Non-identical same-table
	// writes that the solver cannot prove non-aliasing make the read
	// ambiguous; it conservatively falls back to a pivot, and the
	// engine's guard/fallback machinery covers the residual misprediction.
	writes []symWrite
	// nForks / nConds count symbolic forks and conditional evaluations on
	// the path leading to this state.
	nForks, nConds int
	seg            []profile.Access
}

type symWrite struct {
	table string
	key   []sym.Term
	val   symval
}

// lookupOwnWrite resolves a GET against the symbolic write buffer. It
// returns (value, true) on a definite hit; (nil, false) when the store
// must be consulted (no hit, or ambiguity).
func (s *state) lookupOwnWrite(table string, key []sym.Term) (symval, bool) {
	for i := len(s.writes) - 1; i >= 0; i-- {
		w := s.writes[i]
		if w.table != table || len(w.key) != len(key) {
			continue
		}
		equal := true
		for j := range key {
			if !sym.Equal(w.key[j], key[j]) {
				equal = false
				break
			}
		}
		if equal {
			return w.val, true
		}
		// Different expression: can it alias? If the solver proves the
		// keys differ under the current path constraint, keep scanning
		// older writes; otherwise the read is ambiguous.
		if s.provablyDistinct(w.key, key) {
			continue
		}
		return nil, false
	}
	return nil, false
}

// provablyDistinct reports whether two key tuples cannot be equal under the
// current path constraint.
func (s *state) provablyDistinct(a, b []sym.Term) bool {
	conj := append([]sym.Term{}, s.pc...)
	for j := range a {
		conj = append(conj, sym.Fold(sym.Bin{Op: lang.OpEq, L: a[j], R: b[j]}))
	}
	return solver.Check(conj) == solver.Unsat
}

// clone copies the state for a fork child.
func (s *state) clone() *state {
	locals := make(map[string]symval, len(s.locals))
	for k, v := range s.locals {
		locals[k] = v
	}
	pc := make([]sym.Term, len(s.pc))
	copy(pc, s.pc)
	writes := make([]symWrite, len(s.writes))
	copy(writes, s.writes)
	return &state{a: s.a, locals: locals, pc: pc, writes: writes, nForks: s.nForks, nConds: s.nConds}
}

// kont is the continuation of execution: invoked when the current block
// (and everything syntactically before it) has been executed.
type kont func(*state) (*profile.Node, error)

// leafKont terminates a path, producing a leaf node.
func leafKont(s *state) (*profile.Node, error) {
	if s.nForks > s.a.depthForks {
		s.a.depthForks = s.nForks
	}
	if s.nConds > s.a.depthMax {
		s.a.depthMax = s.nConds
	}
	return &profile.Node{Seg: s.seg}, nil
}

func (s *state) execBlock(stmts []lang.Stmt, k kont) (*profile.Node, error) {
	if len(stmts) == 0 {
		return k(s)
	}
	rest := stmts[1:]
	restK := func(s2 *state) (*profile.Node, error) { return s2.execBlock(rest, k) }
	switch st := stmts[0].(type) {
	case lang.Assign:
		v, err := s.eval(st.E)
		if err != nil {
			return nil, err
		}
		s.locals[st.Dst] = v
		return restK(s)
	case lang.SetField:
		cur, ok := s.locals[st.Dst]
		if !ok {
			return nil, fmt.Errorf("SetField on undefined local %q", st.Dst)
		}
		fv, err := s.eval(st.E)
		if err != nil {
			return nil, err
		}
		nv, err := setField(cur, st.Field, fv)
		if err != nil {
			return nil, err
		}
		s.locals[st.Dst] = nv
		return restK(s)
	case lang.Get:
		key, err := s.keyTerms(st.Key)
		if err != nil {
			return nil, err
		}
		s.seg = append(s.seg, profile.Access{Table: st.Table, Key: key, Direct: keyDirect(key)})
		if own, ok := s.lookupOwnWrite(st.Table, key); ok {
			// Read-own-write: the value is the transaction's earlier
			// symbolic write, not a pivot.
			s.locals[st.Dst] = own
			return restK(s)
		}
		dstConcrete := s.a.opts.UseTaint && !s.a.taint.Relevant(st.Dst)
		s.locals[st.Dst] = &pivotRecVal{table: st.Table, key: key, concrete: dstConcrete}
		return restK(s)
	case lang.Put:
		key, err := s.keyTerms(st.Key)
		if err != nil {
			return nil, err
		}
		// The stored value is evaluated both to surface type errors and to
		// serve later read-own-write resolutions.
		val, err := s.eval(st.Val)
		if err != nil {
			return nil, err
		}
		s.seg = append(s.seg, profile.Access{Table: st.Table, Key: key, Write: true, Direct: keyDirect(key)})
		s.writes = append(s.writes, symWrite{table: st.Table, key: key, val: val})
		return restK(s)
	case lang.Del:
		key, err := s.keyTerms(st.Key)
		if err != nil {
			return nil, err
		}
		s.seg = append(s.seg, profile.Access{Table: st.Table, Key: key, Write: true, Direct: keyDirect(key)})
		// A deleted item reads back as an empty record (missing fields are
		// integer zero), matching the interpreter.
		s.writes = append(s.writes, symWrite{table: st.Table, key: key, val: recVal{}})
		return restK(s)
	case lang.Emit:
		if _, err := s.eval(st.E); err != nil {
			return nil, err
		}
		return restK(s)
	case lang.If:
		condV, err := s.eval(st.Cond)
		if err != nil {
			return nil, err
		}
		cond, err := scalarTerm(condV)
		if err != nil {
			return nil, err
		}
		// RWS-irrelevant branch: when neither arm performs a store
		// operation or assigns a relevant variable, the branch cannot
		// affect the profile, so a symbolic condition need not fork —
		// either arm yields the same RWS for the rest of the execution.
		// This is the branch-level counterpart of the paper's irrelevant-
		// variable concolic rule and is what keeps e.g. TPC-C newOrder's
		// remote-warehouse conditional from exploding the analysis.
		if _, isConst := sym.IsConst(cond); !isConst && s.a.opts.UseTaint &&
			!s.a.taint.BlockTouchesKeys(st.Then) && !s.a.taint.BlockTouchesKeys(st.Else) {
			s.nConds++
			return s.execBlock(st.Then, restK)
		}
		return s.branch(cond,
			func(t *state) (*profile.Node, error) { return t.execBlock(st.Then, restK) },
			func(f *state) (*profile.Node, error) { return f.execBlock(st.Else, restK) },
		)
	case lang.For:
		fromV, err := s.eval(st.From)
		if err != nil {
			return nil, err
		}
		fromT, err := scalarTerm(fromV)
		if err != nil {
			return nil, err
		}
		fromC, ok := sym.IsConst(fromT)
		if !ok {
			return nil, fmt.Errorf("loop %q: symbolic lower bound unsupported", st.Var)
		}
		from, ok := fromC.AsInt()
		if !ok {
			return nil, fmt.Errorf("loop %q: non-integer lower bound", st.Var)
		}
		toV, err := s.eval(st.To)
		if err != nil {
			return nil, err
		}
		toT, err := scalarTerm(toV)
		if err != nil {
			return nil, err
		}
		return s.execLoop(st, from, from, toT, restK)
	default:
		return nil, fmt.Errorf("unknown statement %T", stmts[0])
	}
}

// execLoop executes one iteration test of a For statement with concrete
// induction value i (bounds are evaluated once at loop entry).
func (s *state) execLoop(st lang.For, from, i int64, to sym.Term, k kont) (*profile.Node, error) {
	if i-from > int64(s.a.opts.MaxLoopUnroll) {
		return nil, fmt.Errorf("loop %q: exceeded unroll bound %d", st.Var, s.a.opts.MaxLoopUnroll)
	}
	cond := sym.Fold(sym.Bin{Op: lang.OpLt, L: sym.Const{V: value.Int(i)}, R: to})
	iterate := func(t *state) (*profile.Node, error) {
		t.locals[st.Var] = termVal{t: sym.Const{V: value.Int(i)}}
		return t.execBlock(st.Body, func(s2 *state) (*profile.Node, error) {
			return s2.execLoop(st, from, i+1, to, k)
		})
	}
	return s.branch(cond, iterate, k)
}

// branch handles a conditional: concrete conditions follow one arm; symbolic
// conditions fork (subject to path-constraint satisfiability) and build a
// tree node, merging identical sibling subtrees when pruning is on.
func (s *state) branch(cond sym.Term, onTrue, onFalse kont) (*profile.Node, error) {
	s.nConds++
	if cv, ok := sym.IsConst(cond); ok {
		b, bok := cv.AsBool()
		if !bok {
			return nil, fmt.Errorf("condition folded to %s, want bool", cv.Kind())
		}
		if b {
			return onTrue(s)
		}
		return onFalse(s)
	}
	negCond := sym.Negate(cond)
	trueSat := solver.Check(append(append([]sym.Term{}, s.pc...), cond)) != solver.Unsat
	falseSat := solver.Check(append(append([]sym.Term{}, s.pc...), negCond)) != solver.Unsat
	switch {
	case trueSat && !falseSat:
		s.pc = append(s.pc, cond)
		return onTrue(s)
	case !trueSat && falseSat:
		s.pc = append(s.pc, negCond)
		return onFalse(s)
	case !trueSat && !falseSat:
		// Contradictory path constraint: the whole path is infeasible.
		// Treat as an empty leaf; it is unreachable at run time.
		return &profile.Node{Seg: s.seg}, nil
	}
	// Both sides feasible: fork.
	s.a.forks++
	s.a.states += 2
	if s.a.states > s.a.opts.MaxStates {
		if s.a.opts.TruncateOnBudget {
			s.a.truncated = true
			s.pc = append(s.pc, cond)
			return onTrue(s)
		}
		return nil, fmt.Errorf("%w (limit %d)", ErrBudget, s.a.opts.MaxStates)
	}
	seg := s.seg

	tState := s.clone()
	tState.nForks++
	tState.pc = append(tState.pc, cond)
	tTree, err := onTrue(tState)
	if err != nil {
		return nil, err
	}
	fState := s.clone()
	fState.nForks++
	fState.pc = append(fState.pc, negCond)
	fTree, err := onFalse(fState)
	if err != nil {
		return nil, err
	}
	if s.a.opts.Prune && treesEqual(tTree, fTree) {
		// Both outcomes produce the same accesses: the conditional cannot
		// affect the RWS. Graft the (identical) subtree onto the current
		// segment, discarding the condition — the paper's pruning rule.
		s.a.pruned++
		merged := *tTree
		merged.Seg = append(append([]profile.Access{}, seg...), tTree.Seg...)
		return &merged, nil
	}
	return &profile.Node{Seg: seg, Cond: cond, True: tTree, False: fTree}, nil
}

func (s *state) keyTerms(key []lang.Expr) ([]sym.Term, error) {
	out := make([]sym.Term, len(key))
	for i, e := range key {
		v, err := s.eval(e)
		if err != nil {
			return nil, err
		}
		t, err := scalarTerm(v)
		if err != nil {
			return nil, fmt.Errorf("key part %d: %w", i, err)
		}
		out[i] = t
	}
	return out, nil
}

// eval evaluates an expression to a symval. Expressions never fork.
func (s *state) eval(e lang.Expr) (symval, error) {
	switch x := e.(type) {
	case lang.Const:
		return concreteSymval(x.V), nil
	case lang.ParamRef:
		v, ok := s.locals[x.Name]
		if !ok {
			return nil, fmt.Errorf("unknown parameter %q", x.Name)
		}
		return v, nil
	case lang.LocalRef:
		v, ok := s.locals[x.Name]
		if !ok {
			return nil, fmt.Errorf("undefined local %q", x.Name)
		}
		return v, nil
	case lang.Bin:
		l, err := s.eval(x.L)
		if err != nil {
			return nil, err
		}
		r, err := s.eval(x.R)
		if err != nil {
			return nil, err
		}
		lt, err := scalarTerm(l)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", x.Op, err)
		}
		rt, err := scalarTerm(r)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", x.Op, err)
		}
		return termVal{t: sym.Fold(sym.Bin{Op: x.Op, L: lt, R: rt})}, nil
	case lang.Not:
		v, err := s.eval(x.E)
		if err != nil {
			return nil, err
		}
		t, err := scalarTerm(v)
		if err != nil {
			return nil, err
		}
		return termVal{t: sym.Fold(sym.Not{T: t})}, nil
	case lang.Field:
		v, err := s.eval(x.E)
		if err != nil {
			return nil, err
		}
		return fieldOf(v, x.Name)
	case lang.Index:
		v, err := s.eval(x.E)
		if err != nil {
			return nil, err
		}
		lst, ok := v.(listVal)
		if !ok {
			return nil, fmt.Errorf("index of non-list %T", v)
		}
		iv, err := s.eval(x.I)
		if err != nil {
			return nil, err
		}
		it, err := scalarTerm(iv)
		if err != nil {
			return nil, err
		}
		ic, ok := sym.IsConst(it)
		if !ok {
			return nil, fmt.Errorf("symbolic list index %s unsupported", it)
		}
		idx, ok := ic.AsInt()
		if !ok {
			return nil, fmt.Errorf("non-integer list index")
		}
		if idx < 0 || int(idx) >= len(lst.elems) {
			return nil, fmt.Errorf("list index %d out of range (len %d)", idx, len(lst.elems))
		}
		return lst.elems[idx], nil
	case lang.Rec:
		fields := make(map[string]symval, len(x.Fields))
		for _, f := range x.Fields {
			v, err := s.eval(f.E)
			if err != nil {
				return nil, err
			}
			fields[f.Name] = v
		}
		return recVal{fields: fields}, nil
	default:
		return nil, fmt.Errorf("unknown expression %T", e)
	}
}

// treesEqual compares two profile subtrees structurally.
func treesEqual(a, b *profile.Node) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if len(a.Seg) != len(b.Seg) {
		return false
	}
	for i := range a.Seg {
		if !accessEqual(a.Seg[i], b.Seg[i]) {
			return false
		}
	}
	if !sym.Equal(a.Cond, b.Cond) {
		return false
	}
	return treesEqual(a.True, b.True) && treesEqual(a.False, b.False)
}

func accessEqual(a, b profile.Access) bool {
	if a.Table != b.Table || a.Write != b.Write || len(a.Key) != len(b.Key) {
		return false
	}
	for i := range a.Key {
		if !sym.Equal(a.Key[i], b.Key[i]) {
			return false
		}
	}
	return true
}

// countUniqueKeySets counts distinct cumulative RWS over all root-to-leaf
// paths (the paper's "unique key-sets" column).
func countUniqueKeySets(root *profile.Node) int {
	seen := map[string]bool{}
	var walk func(n *profile.Node, prefix []profile.Access)
	walk = func(n *profile.Node, prefix []profile.Access) {
		if n == nil {
			return
		}
		acc := append(append([]profile.Access{}, prefix...), n.Seg...)
		if n.Cond == nil {
			strs := make([]string, len(acc))
			for i, a := range acc {
				strs[i] = a.String()
			}
			sort.Strings(strs)
			seen[strings.Join(strs, ";")] = true
			return
		}
		walk(n.True, acc)
		walk(n.False, acc)
	}
	walk(root, nil)
	return len(seen)
}

// countIndirectKeys counts distinct pivot references appearing anywhere in
// the tree (key expressions and conditions).
func countIndirectKeys(root *profile.Node) int {
	seen := map[string]bool{}
	var addTerm func(t sym.Term)
	addTerm = func(t sym.Term) {
		for _, ref := range sym.Pivots(t) {
			seen[ref.ID()] = true
		}
	}
	var walk func(n *profile.Node)
	walk = func(n *profile.Node) {
		if n == nil {
			return
		}
		for _, a := range n.Seg {
			for _, k := range a.Key {
				addTerm(k)
			}
		}
		if n.Cond != nil {
			addTerm(n.Cond)
			walk(n.True)
			walk(n.False)
		}
	}
	walk(root)
	return len(seen)
}

// keyDirect reports whether no key part depends on a pivot: the access is
// derivable from the transaction inputs alone.
func keyDirect(key []sym.Term) bool {
	for _, k := range key {
		if sym.HasPivot(k) {
			return false
		}
	}
	return true
}

// checkDirectMarks validates the symbolic executor's Direct marks against
// taint.KeyDeterminism: every access in a table the static analysis proves
// all-direct must be marked Direct in the profile tree. The oracle-less
// classification is deliberate: taint.KeyDeterminismOracle with the alias
// zone (internal/lint, which depends on this package) proves a superset of
// tables direct, so checking the plain subset here is the conservative
// direction — any table it proves must still be pivot-free in the profile.
// The lint layer cross-checks the oracle-upgraded classification against
// these profiles over the workload catalogs (TestOracleAgreesWithProfiles).
func checkDirectMarks(p *lang.Program, root *profile.Node) error {
	direct := map[string]bool{}
	for _, t := range taint.KeyDeterminism(p).DirectTables() {
		direct[t] = true
	}
	var walk func(n *profile.Node) error
	walk = func(n *profile.Node) error {
		if n == nil {
			return nil
		}
		for _, a := range n.Seg {
			if direct[a.Table] && !a.Direct {
				return fmt.Errorf("access %s has a pivot-dependent key, but the key-determinism analysis proves table %q direct", a, a.Table)
			}
		}
		if err := walk(n.True); err != nil {
			return err
		}
		return walk(n.False)
	}
	return walk(root)
}

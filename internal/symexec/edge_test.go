package symexec

import (
	"strings"
	"testing"

	"prognosticator/internal/lang"
	"prognosticator/internal/profile"
	"prognosticator/internal/value"
)

// Edge-case coverage: unsupported constructs must fail cleanly with
// descriptive errors, and less-common supported shapes must analyze
// correctly.

func TestSymbolicListIndexRejected(t *testing.T) {
	p := &lang.Program{
		Name: "symidx",
		Params: []lang.Param{
			lang.IntParam("i", 0, 3),
			lang.ListParam("xs", lang.IntParam("", 0, 9), 4, ""),
		},
		Body: []lang.Stmt{
			lang.GetS("r", "T", lang.Idx(lang.P("xs"), lang.P("i"))),
		},
	}
	_, err := AnalyzeOptimized(p)
	if err == nil || !strings.Contains(err.Error(), "symbolic list index") {
		t.Fatalf("err = %v", err)
	}
}

func TestSymbolicLoopLowerBoundRejected(t *testing.T) {
	p := &lang.Program{
		Name:   "symfrom",
		Params: []lang.Param{lang.IntParam("a", 0, 3)},
		Body: []lang.Stmt{
			lang.ForS("i", lang.P("a"), lang.C(5),
				lang.PutS("T", lang.Key(lang.L("i")), lang.RecE(lang.F("v", lang.C(0))))),
		},
	}
	_, err := AnalyzeOptimized(p)
	if err == nil || !strings.Contains(err.Error(), "lower bound") {
		t.Fatalf("err = %v", err)
	}
}

func TestRecordInArithmeticRejected(t *testing.T) {
	p := &lang.Program{
		Name:   "recmath",
		Params: []lang.Param{lang.IntParam("k", 0, 3)},
		Body: []lang.Stmt{
			lang.GetS("r", "T", lang.P("k")),
			lang.Set("bad", lang.Add(lang.L("r"), lang.C(1))),
			lang.PutS("T", lang.Key(lang.L("bad")), lang.RecE(lang.F("v", lang.C(0)))),
		},
	}
	if _, err := AnalyzeOptimized(p); err == nil {
		t.Fatal("record operand in + must be rejected")
	}
}

func TestStringKeyedTables(t *testing.T) {
	// RUBiS-style singleton counters keyed by string constants.
	p := &lang.Program{
		Name:   "counter",
		Params: []lang.Param{lang.IntParam("dummy", 0, 1)},
		Body: []lang.Stmt{
			lang.GetS("ids", "IDS", lang.Cs("users")),
			lang.Set("next", lang.Fld(lang.L("ids"), "next")),
			lang.PutS("USERS", lang.Key(lang.L("next")), lang.RecE(lang.F("ok", lang.C(1)))),
			lang.SetF("ids", "next", lang.Add(lang.L("next"), lang.C(1))),
			lang.PutS("IDS", lang.Key(lang.Cs("users")), lang.L("ids")),
		},
	}
	prof, err := AnalyzeOptimized(p)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Class() != profile.ClassDT {
		t.Fatalf("class = %v", prof.Class())
	}
	pr := &staticPivots{m: map[string]value.Value{"IDS/susers.next": value.Int(42)}}
	ks, err := prof.Instantiate(map[string]value.Value{"dummy": value.Int(0)}, pr)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range ks.Writes {
		if w.String() == "USERS/i42" {
			found = true
		}
	}
	if !found {
		t.Fatalf("writes = %v", ks.Writes)
	}
}

func TestStringEqualityBranch(t *testing.T) {
	p := &lang.Program{
		Name:   "strbranch",
		Params: []lang.Param{lang.StrParam("mode")},
		Body: []lang.Stmt{
			lang.IfElse(lang.Eq(lang.P("mode"), lang.Cs("hot")),
				[]lang.Stmt{lang.PutS("T", lang.Key(lang.C(1)), lang.RecE(lang.F("v", lang.C(0))))},
				[]lang.Stmt{lang.PutS("T", lang.Key(lang.C(2)), lang.RecE(lang.F("v", lang.C(0))))},
			),
		},
	}
	prof, err := AnalyzeOptimized(p)
	if err != nil {
		t.Fatal(err)
	}
	if prof.NumLeaves() != 2 {
		t.Fatalf("leaves = %d", prof.NumLeaves())
	}
	for mode, want := range map[string]string{"hot": "T/i1", "cold": "T/i2"} {
		ks, err := prof.Instantiate(map[string]value.Value{"mode": value.Str(mode)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(ks.Writes) != 1 || ks.Writes[0].String() != want {
			t.Fatalf("mode=%s writes=%v", mode, ks.Writes)
		}
	}
}

func TestNestedPivotChainProgram(t *testing.T) {
	// y = GET(HEAD/k); z = GET(NODE/y.next); write NODE/z.next — a
	// two-level pivot chain.
	p := &lang.Program{
		Name:   "chain2",
		Params: []lang.Param{lang.IntParam("k", 0, 3)},
		Body: []lang.Stmt{
			lang.GetS("y", "HEAD", lang.P("k")),
			lang.GetS("z", "NODE", lang.Fld(lang.L("y"), "next")),
			lang.PutS("NODE", lang.Key(lang.Fld(lang.L("z"), "next")), lang.RecE(lang.F("v", lang.C(1)))),
		},
	}
	prof, err := AnalyzeOptimized(p)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Stats.IndirectKeys != 2 {
		t.Fatalf("indirect keys = %d, want 2 (nested chain)", prof.Stats.IndirectKeys)
	}
	pr := &staticPivots{m: map[string]value.Value{
		"HEAD/i1.next": value.Int(7),
		"NODE/i7.next": value.Int(9),
	}}
	ks, err := prof.Instantiate(map[string]value.Value{"k": value.Int(1)}, pr)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks.Writes) != 1 || ks.Writes[0].String() != "NODE/i9" {
		t.Fatalf("writes = %v", ks.Writes)
	}
	if len(ks.Pivots) != 2 {
		t.Fatalf("pivot observations = %v", ks.Pivots)
	}
}

func TestDeleteTrackedAsWrite(t *testing.T) {
	p := &lang.Program{
		Name:   "del",
		Params: []lang.Param{lang.IntParam("k", 0, 3)},
		Body:   []lang.Stmt{lang.DelS("T", lang.P("k"))},
	}
	prof, err := AnalyzeOptimized(p)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Class() != profile.ClassIT {
		t.Fatalf("class = %v", prof.Class())
	}
	ks, err := prof.Instantiate(map[string]value.Value{"k": value.Int(2)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks.Writes) != 1 || ks.Writes[0].String() != "T/i2" {
		t.Fatalf("writes = %v", ks.Writes)
	}
}

func TestEmptyProgramProfile(t *testing.T) {
	p := &lang.Program{Name: "empty"}
	prof, err := AnalyzeOptimized(p)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Class() != profile.ClassROT || prof.NumLeaves() != 1 {
		t.Fatalf("empty profile: %v leaves=%d", prof.Class(), prof.NumLeaves())
	}
}

func TestBoolParam(t *testing.T) {
	p := &lang.Program{
		Name:   "flag",
		Params: []lang.Param{{Name: "b", Kind: value.KindBool}},
		Body: []lang.Stmt{
			lang.IfElse(lang.P("b"),
				[]lang.Stmt{lang.PutS("T", lang.Key(lang.C(1)), lang.RecE(lang.F("v", lang.C(0))))},
				[]lang.Stmt{lang.PutS("T", lang.Key(lang.C(2)), lang.RecE(lang.F("v", lang.C(0))))},
			),
		},
	}
	prof, err := AnalyzeOptimized(p)
	if err != nil {
		t.Fatal(err)
	}
	if prof.NumLeaves() != 2 {
		t.Fatalf("leaves = %d", prof.NumLeaves())
	}
	ks, err := prof.Instantiate(map[string]value.Value{"b": value.Bool(true)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ks.Writes[0].String() != "T/i1" {
		t.Fatalf("writes = %v", ks.Writes)
	}
}

// Package symexec implements the symbolic-execution engine at the heart of
// Prognosticator (§II and §III-B of the paper). It interprets a stored
// procedure (internal/lang) with symbolic inputs, forks at conditionals,
// checks path-constraint satisfiability with internal/solver, intercepts
// GET/PUT/DEL to collect symbolic read-/write-sets, detects pivot items, and
// assembles the transaction profile tree (internal/profile) with
// redundant-subtree pruning. A static taint analysis (internal/taint)
// optionally drives concolic execution: variables that provably cannot flow
// into any key identity are given concrete values, so branches over them
// never fork — the paper's "irrelevant variables" optimization.
package symexec

import (
	"fmt"

	"prognosticator/internal/sym"
	"prognosticator/internal/value"
)

// symval is the symbolic counterpart of value.Value: what a local variable
// may hold during symbolic execution.
type symval interface{ isSymval() }

// termVal holds a scalar symbolic term (which may be a concrete constant).
type termVal struct{ t sym.Term }

// listVal holds a list whose elements are symvals. Produced only for
// list-valued input parameters.
type listVal struct{ elems []symval }

// pivotRecVal is the result of a GET: a record whose fields are unknown
// until run time. Projecting a field yields a pivot variable. When concrete
// is true (concolic mode, irrelevant destination) fields read as the
// concrete default instead, so no pivots and no forks arise from it.
type pivotRecVal struct {
	table    string
	key      []sym.Term
	concrete bool
}

// recVal is a record built by the program (record literal or SetField
// overlay on top of a fetched record).
type recVal struct {
	fields map[string]symval
	base   *pivotRecVal // non-nil when overlaying a fetched record
}

func (termVal) isSymval()      {}
func (listVal) isSymval()      {}
func (*pivotRecVal) isSymval() {}
func (recVal) isSymval()       {}

// field projects a record-like symval.
func fieldOf(v symval, name string) (symval, error) {
	switch x := v.(type) {
	case *pivotRecVal:
		if x.concrete {
			// Concrete default record: every field reads as integer zero.
			// Irrelevance guarantees the choice cannot affect the RWS.
			return termVal{t: sym.Const{V: value.Int(0)}}, nil
		}
		return termVal{t: sym.NewPivot(x.table, x.key, name)}, nil
	case recVal:
		if f, ok := x.fields[name]; ok {
			return f, nil
		}
		if x.base != nil {
			return fieldOf(x.base, name)
		}
		return termVal{t: sym.Const{V: value.Int(0)}}, nil
	default:
		return nil, fmt.Errorf("symexec: field %q of non-record %T", name, v)
	}
}

// setField returns a copy of v with one field overridden.
func setField(v symval, name string, f symval) (symval, error) {
	switch x := v.(type) {
	case *pivotRecVal:
		return recVal{fields: map[string]symval{name: f}, base: x}, nil
	case recVal:
		cp := make(map[string]symval, len(x.fields)+1)
		for k, e := range x.fields {
			cp[k] = e
		}
		cp[name] = f
		return recVal{fields: cp, base: x.base}, nil
	default:
		return nil, fmt.Errorf("symexec: SetField on non-record %T", v)
	}
}

// scalarTerm extracts the term of a scalar symval.
func scalarTerm(v symval) (sym.Term, error) {
	tv, ok := v.(termVal)
	if !ok {
		return nil, fmt.Errorf("symexec: expected scalar, got %T", v)
	}
	return tv.t, nil
}

// concreteSymval lifts a concrete value into a symval.
func concreteSymval(v value.Value) symval {
	switch v.Kind() {
	case value.KindList:
		elems := make([]symval, v.Len())
		for i := range elems {
			e, _ := v.Index(i)
			elems[i] = concreteSymval(e)
		}
		return listVal{elems: elems}
	case value.KindRecord:
		fields := make(map[string]symval, v.Len())
		for _, name := range v.Fields() {
			f, _ := v.Field(name)
			fields[name] = concreteSymval(f)
		}
		return recVal{fields: fields}
	default:
		return termVal{t: sym.Const{V: v}}
	}
}

package symexec

import (
	"errors"
	"testing"

	"prognosticator/internal/lang"
	"prognosticator/internal/profile"
	"prognosticator/internal/value"
)

// progStraight: unconditional read-modify-write; pure IT.
func progStraight() *lang.Program {
	return &lang.Program{
		Name:   "straight",
		Params: []lang.Param{lang.IntParam("k", 0, 9), lang.IntParam("amt", 0, 9)},
		Body: []lang.Stmt{
			lang.GetS("r", "ACC", lang.P("k")),
			lang.SetF("r", "bal", lang.Add(lang.Fld(lang.L("r"), "bal"), lang.P("amt"))),
			lang.PutS("ACC", lang.Key(lang.P("k")), lang.L("r")),
		},
	}
}

// progBranchKey: the branch selects WHICH key is written.
func progBranchKey() *lang.Program {
	return &lang.Program{
		Name:   "branchkey",
		Params: []lang.Param{lang.IntParam("sel", 0, 1)},
		Body: []lang.Stmt{
			lang.IfElse(lang.Eq(lang.P("sel"), lang.C(0)),
				[]lang.Stmt{lang.PutS("T", lang.Key(lang.C(1)), lang.RecE(lang.F("v", lang.C(0))))},
				[]lang.Stmt{lang.PutS("T", lang.Key(lang.C(2)), lang.RecE(lang.F("v", lang.C(0))))},
			),
		},
	}
}

// progBranchValue: the branch only changes the written value (newOrder's
// Algorithm 2 shape).
func progBranchValue() *lang.Program {
	return &lang.Program{
		Name:   "branchval",
		Params: []lang.Param{lang.IntParam("k", 0, 9), lang.IntParam("q", 0, 9)},
		Body: []lang.Stmt{
			lang.GetS("item", "STOCK", lang.P("k")),
			lang.IfElse(lang.Le(lang.Fld(lang.L("item"), "qty"), lang.P("q")),
				[]lang.Stmt{lang.SetF("item", "qty", lang.Sub(lang.Fld(lang.L("item"), "qty"), lang.P("q")))},
				[]lang.Stmt{lang.SetF("item", "qty", lang.Add(lang.Fld(lang.L("item"), "qty"), lang.C(91)))},
			),
			lang.PutS("STOCK", lang.Key(lang.P("k")), lang.L("item")),
		},
	}
}

// progPivotKey: writes to a key derived from a fetched value (classic DT).
func progPivotKey() *lang.Program {
	return &lang.Program{
		Name:   "pivotkey",
		Params: []lang.Param{lang.IntParam("d", 1, 3)},
		Body: []lang.Stmt{
			lang.GetS("dist", "DIST", lang.P("d")),
			lang.Set("oid", lang.Add(lang.Fld(lang.L("dist"), "lastOrderId"), lang.C(1))),
			lang.SetF("dist", "lastOrderId", lang.L("oid")),
			lang.PutS("DIST", lang.Key(lang.P("d")), lang.L("dist")),
			lang.PutS("ORDER", lang.Key(lang.P("d"), lang.L("oid")), lang.RecE(lang.F("ok", lang.C(1)))),
		},
	}
}

// progLoop: writes n items, n symbolic in [lo,hi].
func progLoop(lo, hi int64) *lang.Program {
	return &lang.Program{
		Name: "loopy",
		Params: []lang.Param{
			lang.IntParam("n", lo, hi),
			lang.ListParam("ids", lang.IntParam("", 0, 99), int(hi), "n"),
		},
		Body: []lang.Stmt{
			lang.ForS("i", lang.C(0), lang.P("n"),
				lang.Set("id", lang.Idx(lang.P("ids"), lang.L("i"))),
				lang.PutS("T", lang.Key(lang.L("id")), lang.RecE(lang.F("v", lang.C(0)))),
			),
		},
	}
}

func TestStraightLineProfile(t *testing.T) {
	p, err := AnalyzeOptimized(progStraight())
	if err != nil {
		t.Fatal(err)
	}
	if p.Class() != profile.ClassIT {
		t.Fatalf("class = %v, want IT", p.Class())
	}
	if p.NumLeaves() != 1 {
		t.Fatalf("leaves = %d", p.NumLeaves())
	}
	if p.Stats.StatesExplored != 1 || p.Stats.Depth != 0 {
		t.Fatalf("stats = %+v", p.Stats)
	}
	ks, err := p.Instantiate(map[string]value.Value{"k": value.Int(3), "amt": value.Int(1)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks.Reads) != 1 || ks.Reads[0].String() != "ACC/i3" {
		t.Fatalf("reads = %v", ks.Reads)
	}
	if len(ks.Writes) != 1 || ks.Writes[0].String() != "ACC/i3" {
		t.Fatalf("writes = %v", ks.Writes)
	}
}

func TestBranchOnKeyForks(t *testing.T) {
	p, err := AnalyzeOptimized(progBranchKey())
	if err != nil {
		t.Fatal(err)
	}
	if p.NumLeaves() != 2 {
		t.Fatalf("leaves = %d, want 2 (branch decides the key)", p.NumLeaves())
	}
	if p.Stats.UniqueKeySets != 2 {
		t.Fatalf("unique key-sets = %d", p.Stats.UniqueKeySets)
	}
	for sel, want := range map[int64]string{0: "T/i1", 1: "T/i2"} {
		ks, err := p.Instantiate(map[string]value.Value{"sel": value.Int(sel)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(ks.Writes) != 1 || ks.Writes[0].String() != want {
			t.Fatalf("sel=%d: writes=%v want %s", sel, ks.Writes, want)
		}
	}
}

func TestValueBranchConcolicNoForks(t *testing.T) {
	// With taint: the condition depends only on irrelevant data, so the
	// branch never forks and the profile is a single node.
	p, err := AnalyzeOptimized(progBranchValue())
	if err != nil {
		t.Fatal(err)
	}
	if p.NumLeaves() != 1 {
		t.Fatalf("leaves = %d, want 1 (concolic collapse)", p.NumLeaves())
	}
	if p.Stats.StatesExplored != 1 {
		t.Fatalf("states = %d, want 1", p.Stats.StatesExplored)
	}
	// DepthMax still records the conditional the unoptimized run would
	// fork on.
	if p.Stats.DepthMax != 1 {
		t.Fatalf("depthMax = %d, want 1", p.Stats.DepthMax)
	}
	if p.Class() != profile.ClassIT {
		t.Fatalf("class = %v, want IT (pivot only feeds values)", p.Class())
	}
}

func TestValueBranchPruningMergesWithoutTaint(t *testing.T) {
	// Without taint the branch forks (condition is symbolic via the
	// pivot), but both sides produce the same RWS so pruning merges them.
	p, err := Analyze(progBranchValue(), Options{Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumLeaves() != 1 {
		t.Fatalf("leaves = %d, want 1 after pruning", p.NumLeaves())
	}
	if p.Stats.StatesExplored != 3 { // one fork: 2 children + root
		t.Fatalf("states = %d, want 3", p.Stats.StatesExplored)
	}
	// Without pruning the tree keeps both (identical) subtrees.
	u, err := Analyze(progBranchValue(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if u.NumLeaves() != 2 {
		t.Fatalf("unpruned leaves = %d, want 2", u.NumLeaves())
	}
}

func TestPivotKeyDetection(t *testing.T) {
	p, err := AnalyzeOptimized(progPivotKey())
	if err != nil {
		t.Fatal(err)
	}
	if p.Class() != profile.ClassDT {
		t.Fatalf("class = %v, want DT", p.Class())
	}
	if p.Stats.IndirectKeys != 1 {
		t.Fatalf("indirect keys = %d, want 1", p.Stats.IndirectKeys)
	}
	pr := &staticPivots{m: map[string]value.Value{"DIST/i2.lastOrderId": value.Int(7)}}
	ks, err := p.Instantiate(map[string]value.Value{"d": value.Int(2)}, pr)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range ks.Writes {
		if w.String() == "ORDER/i2/i8" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected ORDER/i2/i8 in writes, got %v", ks.Writes)
	}
	if len(ks.Pivots) != 1 || ks.Pivots[0].Key.String() != "DIST/i2" {
		t.Fatalf("pivots = %v", ks.Pivots)
	}
}

type staticPivots struct{ m map[string]value.Value }

func (s *staticPivots) ReadPivot(k value.Key, field string) (value.Value, bool) {
	v, ok := s.m[string(k.Encode())+"."+field]
	return v, ok
}

func TestSymbolicLoopBoundEnumeratesLengths(t *testing.T) {
	p, err := AnalyzeOptimized(progLoop(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	// Paths for n=2,3,4.
	if p.NumLeaves() != 3 {
		t.Fatalf("leaves = %d, want 3", p.NumLeaves())
	}
	for n := int64(2); n <= 4; n++ {
		ids := value.List(value.Int(10), value.Int(11), value.Int(12), value.Int(13))
		ks, err := p.Instantiate(map[string]value.Value{"n": value.Int(n), "ids": ids}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(ks.Writes)) != n {
			t.Fatalf("n=%d: writes=%v", n, ks.Writes)
		}
	}
}

func TestFixedInputsCollapseLoop(t *testing.T) {
	p, err := Analyze(progLoop(2, 4), Options{
		UseTaint: true, Prune: true,
		FixedInputs: map[string]value.Value{"n": value.Int(3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumLeaves() != 1 {
		t.Fatalf("leaves = %d, want 1 with fixed n", p.NumLeaves())
	}
	ks, err := p.Instantiate(map[string]value.Value{
		"n":   value.Int(3),
		"ids": value.List(value.Int(1), value.Int(2), value.Int(3), value.Int(4)),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks.Writes) != 3 {
		t.Fatalf("writes = %v", ks.Writes)
	}
}

func TestInfeasiblePathsPruned(t *testing.T) {
	// Second condition is implied by the first: no fork for it.
	p := &lang.Program{
		Name:   "implied",
		Params: []lang.Param{lang.IntParam("x", 0, 10)},
		Body: []lang.Stmt{
			lang.IfS(lang.Gt(lang.P("x"), lang.C(5)),
				lang.IfS(lang.Gt(lang.P("x"), lang.C(2)), // always true here
					lang.PutS("T", lang.Key(lang.C(1)), lang.RecE(lang.F("v", lang.C(0)))),
				),
			),
		},
	}
	prof, err := Analyze(p, Options{Prune: false})
	if err != nil {
		t.Fatal(err)
	}
	// Only the outer condition forks: x>2 is entailed under x>5 and
	// unsatisfiable-to-violate, so leaves = 2 not 3.
	if prof.NumLeaves() != 2 {
		t.Fatalf("leaves = %d, want 2 (inner branch entailed)", prof.NumLeaves())
	}
	if prof.Stats.StatesExplored != 3 {
		t.Fatalf("states = %d, want 3", prof.Stats.StatesExplored)
	}
}

func TestContradictoryRangeNoFork(t *testing.T) {
	p := &lang.Program{
		Name:   "never",
		Params: []lang.Param{lang.IntParam("x", 0, 4)},
		Body: []lang.Stmt{
			lang.IfS(lang.Gt(lang.P("x"), lang.C(100)),
				lang.PutS("T", lang.Key(lang.C(1)), lang.RecE(lang.F("v", lang.C(0)))),
			),
			lang.PutS("T", lang.Key(lang.C(2)), lang.RecE(lang.F("v", lang.C(0)))),
		},
	}
	prof, err := AnalyzeOptimized(p)
	if err != nil {
		t.Fatal(err)
	}
	if prof.NumLeaves() != 1 {
		t.Fatalf("leaves = %d, want 1 (condition unsatisfiable)", prof.NumLeaves())
	}
	ks, err := prof.Instantiate(map[string]value.Value{"x": value.Int(1)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks.Writes) != 1 || ks.Writes[0].String() != "T/i2" {
		t.Fatalf("writes = %v", ks.Writes)
	}
}

func TestStateBudgetExceeded(t *testing.T) {
	// 8 independent forking branches with a budget of 4 states.
	var body []lang.Stmt
	for i := 0; i < 8; i++ {
		body = append(body, lang.IfS(lang.Gt(lang.P("x"), lang.C(int64(i))),
			lang.PutS("T", lang.Key(lang.C(int64(i))), lang.RecE(lang.F("v", lang.C(0))))))
	}
	p := &lang.Program{Name: "wide", Params: []lang.Param{lang.IntParam("x", 0, 100)}, Body: body}
	_, err := Analyze(p, Options{MaxStates: 4})
	if err == nil || !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want budget error", err)
	}
}

func TestLoopUnrollBound(t *testing.T) {
	p := progLoop(2, 4)
	if _, err := Analyze(p, Options{MaxLoopUnroll: 2}); err == nil {
		t.Fatal("expected unroll bound error")
	}
}

func TestUnoptimizedComparisonRun(t *testing.T) {
	p, err := Analyze(progBranchValue(), Options{UseTaint: true, Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats.StatesUnopt <= p.Stats.StatesExplored {
		t.Fatalf("unoptimized states (%d) should exceed optimized (%d)",
			p.Stats.StatesUnopt, p.Stats.StatesExplored)
	}
	if p.Stats.DurationUnopt == 0 {
		t.Fatal("unoptimized duration not recorded")
	}
	// TotalStates is the analytic 2^depthMax.
	if p.Stats.TotalStates != 2 {
		t.Fatalf("totalStates = %v, want 2", p.Stats.TotalStates)
	}
}

func TestExponentialCollapseLikeNewOrder(t *testing.T) {
	// The Algorithm 2 shape: a loop of n iterations each with a
	// value-only branch. Unoptimized: 2^n paths. Optimized: 1 path.
	n := 8
	p := &lang.Program{
		Name: "newOrderish",
		Params: []lang.Param{
			lang.IntParam("q", 0, 9),
			lang.ListParam("ids", lang.IntParam("", 0, 99), n, ""),
		},
		Body: []lang.Stmt{
			lang.ForS("i", lang.C(0), lang.C(int64(n)),
				lang.Set("id", lang.Idx(lang.P("ids"), lang.L("i"))),
				lang.GetS("item", "STOCK", lang.L("id")),
				lang.IfElse(lang.Le(lang.Fld(lang.L("item"), "qty"), lang.P("q")),
					[]lang.Stmt{lang.SetF("item", "qty", lang.C(0))},
					[]lang.Stmt{lang.SetF("item", "qty", lang.C(91))},
				),
				lang.PutS("STOCK", lang.Key(lang.L("id")), lang.L("item")),
			),
		},
	}
	opt, err := Analyze(p, Options{UseTaint: true, Prune: true, SkipUnoptimized: true})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Stats.StatesExplored != 1 || opt.NumLeaves() != 1 {
		t.Fatalf("optimized: states=%d leaves=%d, want 1/1",
			opt.Stats.StatesExplored, opt.NumLeaves())
	}
	unopt, err := Analyze(p, Options{SkipUnoptimized: true})
	if err != nil {
		t.Fatal(err)
	}
	wantStates := 2*(1<<n-1) + 1 // full binary tree of forks
	if unopt.Stats.StatesExplored != wantStates {
		t.Fatalf("unoptimized states = %d, want %d", unopt.Stats.StatesExplored, wantStates)
	}
	// Pruning alone (no taint) still collapses the tree to one leaf.
	pruned, err := Analyze(p, Options{Prune: true, SkipUnoptimized: true})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.NumLeaves() != 1 {
		t.Fatalf("pruned leaves = %d, want 1", pruned.NumLeaves())
	}
	if pruned.Stats.StatesExplored != wantStates {
		t.Fatalf("pruning must not reduce explored states (memory only): %d", pruned.Stats.StatesExplored)
	}
}

func TestProfileMatchesConcreteExecution(t *testing.T) {
	// Property: for every input, the key-set predicted by the profile
	// equals the keys the concrete interpreter actually touches.
	progs := []*lang.Program{progStraight(), progBranchKey(), progBranchValue(), progLoop(1, 3)}
	for _, pg := range progs {
		prof, err := AnalyzeOptimized(pg)
		if err != nil {
			t.Fatalf("%s: %v", pg.Name, err)
		}
		for seed := int64(0); seed < 20; seed++ {
			inputs := randomInputs(pg, seed)
			kv := newStoreKV()
			res, err := lang.Run(pg, inputs, kv)
			if err != nil {
				t.Fatalf("%s: run: %v", pg.Name, err)
			}
			ks, err := prof.Instantiate(inputs, kv)
			if err != nil {
				t.Fatalf("%s: instantiate: %v", pg.Name, err)
			}
			assertKeyCover(t, pg.Name, res, ks)
		}
	}
}

// randomInputs derives deterministic pseudo-random inputs for a program.
func randomInputs(p *lang.Program, seed int64) map[string]value.Value {
	in := map[string]value.Value{}
	h := seed*2654435761 + 17
	next := func(lo, hi int64) int64 {
		h = h*6364136223846793005 + 1442695040888963407
		span := hi - lo + 1
		v := h % span
		if v < 0 {
			v += span
		}
		return lo + v
	}
	for _, prm := range p.Params {
		switch prm.Kind {
		case value.KindInt:
			in[prm.Name] = value.Int(next(prm.Lo, prm.Hi))
		case value.KindList:
			elems := make([]value.Value, prm.MaxLen)
			for i := range elems {
				lo, hi := int64(0), int64(9)
				if prm.Elem != nil {
					lo, hi = prm.Elem.Lo, prm.Elem.Hi
				}
				elems[i] = value.Int(next(lo, hi))
			}
			in[prm.Name] = value.List(elems...)
		case value.KindString:
			in[prm.Name] = value.Str("s")
		case value.KindBool:
			in[prm.Name] = value.Bool(next(0, 1) == 1)
		}
	}
	return in
}

// storeKV is a map KV that doubles as a PivotReader.
type storeKV struct{ m map[value.Encoded]value.Value }

func newStoreKV() *storeKV { return &storeKV{m: map[value.Encoded]value.Value{}} }

func (s *storeKV) Get(k value.Key) (value.Value, bool) { v, ok := s.m[k.Encode()]; return v, ok }
func (s *storeKV) Put(k value.Key, v value.Value)      { s.m[k.Encode()] = v }
func (s *storeKV) Delete(k value.Key)                  { delete(s.m, k.Encode()) }
func (s *storeKV) ReadPivot(k value.Key, field string) (value.Value, bool) {
	rec, ok := s.m[k.Encode()]
	if !ok {
		return value.Value{}, false
	}
	f, ok := rec.Field(field)
	return f, ok
}

func assertKeyCover(t *testing.T, name string, res *lang.Result, ks *profile.KeySet) {
	t.Helper()
	predictedW := map[string]bool{}
	for _, k := range ks.Writes {
		predictedW[k.String()] = true
	}
	for _, k := range res.Writes {
		if !predictedW[k.String()] {
			t.Fatalf("%s: write %s not predicted (predicted %v)", name, k, ks.Writes)
		}
	}
	predictedR := map[string]bool{}
	for _, k := range ks.Reads {
		predictedR[k.String()] = true
	}
	for _, k := range res.Reads {
		if !predictedR[k.String()] {
			t.Fatalf("%s: read %s not predicted (predicted %v)", name, k, ks.Reads)
		}
	}
}

package lang

import (
	"fmt"
	"strings"

	"prognosticator/internal/value"
)

// Format renders the program as canonical source text in the language's own
// syntax: Parse(Format(p)) reproduces an equivalent program (tested as a
// round-trip property). It is the inverse of Parse up to formatting.
func Format(p *Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "transaction %s(", p.Name)
	for i, prm := range p.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(prm.Name)
		sb.WriteByte(' ')
		sb.WriteString(formatParamType(prm))
	}
	sb.WriteString(") {\n")
	formatBlock(&sb, p.Body, 1)
	sb.WriteString("}\n")
	return sb.String()
}

func formatParamType(prm Param) string {
	switch prm.Kind {
	case value.KindInt:
		return fmt.Sprintf("int[%d..%d]", prm.Lo, prm.Hi)
	case value.KindString:
		return "string"
	case value.KindBool:
		return "bool"
	case value.KindList:
		elem := "int[0..0]"
		if prm.Elem != nil {
			elem = formatParamType(*prm.Elem)
		}
		if prm.LenParam != "" {
			return fmt.Sprintf("list[%s; %d; %s]", elem, prm.MaxLen, prm.LenParam)
		}
		return fmt.Sprintf("list[%s; %d]", elem, prm.MaxLen)
	default:
		return "int[0..0]"
	}
}

func formatBlock(sb *strings.Builder, body []Stmt, depth int) {
	ind := strings.Repeat("    ", depth)
	for _, st := range body {
		switch s := st.(type) {
		case Assign:
			fmt.Fprintf(sb, "%s%s = %s\n", ind, s.Dst, FormatExpr(s.E))
		case SetField:
			fmt.Fprintf(sb, "%s%s.%s = %s\n", ind, s.Dst, s.Field, FormatExpr(s.E))
		case Get:
			fmt.Fprintf(sb, "%s%s = get %s\n", ind, s.Dst, formatKey(s.Table, s.Key))
		case Put:
			fmt.Fprintf(sb, "%sput %s = %s\n", ind, formatKey(s.Table, s.Key), FormatExpr(s.Val))
		case Del:
			fmt.Fprintf(sb, "%sdel %s\n", ind, formatKey(s.Table, s.Key))
		case If:
			fmt.Fprintf(sb, "%sif %s {\n", ind, FormatExpr(s.Cond))
			formatBlock(sb, s.Then, depth+1)
			if len(s.Else) > 0 {
				fmt.Fprintf(sb, "%s} else {\n", ind)
				formatBlock(sb, s.Else, depth+1)
			}
			fmt.Fprintf(sb, "%s}\n", ind)
		case For:
			fmt.Fprintf(sb, "%sfor %s = %s..%s {\n", ind, s.Var, FormatExpr(s.From), FormatExpr(s.To))
			formatBlock(sb, s.Body, depth+1)
			fmt.Fprintf(sb, "%s}\n", ind)
		case Emit:
			fmt.Fprintf(sb, "%semit %s = %s\n", ind, s.Name, FormatExpr(s.E))
		default:
			fmt.Fprintf(sb, "%s// unknown statement %T\n", ind, st)
		}
	}
}

func formatKey(table string, key []Expr) string {
	parts := make([]string, len(key))
	for i, e := range key {
		parts[i] = FormatExpr(e)
	}
	return table + "[" + strings.Join(parts, ", ") + "]"
}

// FormatExpr renders an expression in the parseable source syntax.
func FormatExpr(e Expr) string {
	switch x := e.(type) {
	case Const:
		return x.V.String()
	case ParamRef:
		return x.Name
	case LocalRef:
		return x.Name
	case Bin:
		return fmt.Sprintf("(%s %s %s)", FormatExpr(x.L), x.Op, FormatExpr(x.R))
	case Not:
		return fmt.Sprintf("!(%s)", FormatExpr(x.E))
	case Field:
		return fmt.Sprintf("%s.%s", FormatExpr(x.E), x.Name)
	case Index:
		return fmt.Sprintf("%s[%s]", FormatExpr(x.E), FormatExpr(x.I))
	case Rec:
		parts := make([]string, len(x.Fields))
		for i, f := range x.Fields {
			parts[i] = fmt.Sprintf("%s: %s", f.Name, FormatExpr(f.E))
		}
		return "{" + strings.Join(parts, ", ") + "}"
	default:
		return fmt.Sprintf("/*?%T*/0", e)
	}
}

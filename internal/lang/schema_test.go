package lang

import (
	"strings"
	"testing"

	"prognosticator/internal/value"
)

func TestValidateAcceptsWellFormed(t *testing.T) {
	if err := testSchema.Validate(transferProg()); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		p    *Program
		want string
	}{
		{
			"unknown table",
			&Program{Name: "t", Body: []Stmt{GetS("x", "NOPE", C(1))}},
			"unknown table",
		},
		{
			"wrong arity",
			&Program{Name: "t", Body: []Stmt{GetS("x", "PAIR", C(1))}},
			"expects 2 key parts",
		},
		{
			"unknown param",
			&Program{Name: "t", Body: []Stmt{EmitS("x", P("ghost"))}},
			"unknown parameter",
		},
		{
			"undefined local",
			&Program{Name: "t", Body: []Stmt{EmitS("x", L("ghost"))}},
			"undefined local",
		},
		{
			"local used before assignment",
			&Program{Name: "t", Body: []Stmt{
				EmitS("x", L("y")),
				Set("y", C(1)),
			}},
			"undefined local",
		},
		{
			"duplicate param",
			&Program{Name: "t", Params: []Param{IntParam("a", 0, 1), IntParam("a", 0, 1)}},
			"duplicate parameter",
		},
		{
			"empty param name",
			&Program{Name: "t", Params: []Param{IntParam("", 0, 1)}},
			"empty name",
		},
		{
			"bad len param",
			&Program{Name: "t", Params: []Param{ListParam("xs", IntParam("", 0, 1), 3, "n")}},
			"unknown length parameter",
		},
		{
			"setfield before def",
			&Program{Name: "t", Body: []Stmt{SetF("r", "f", C(1))}},
			"undefined local",
		},
		{
			"assign to loop var",
			&Program{Name: "t", Body: []Stmt{ForS("i", C(0), C(3), Set("i", C(9)))}},
			"loop variable",
		},
		{
			"invalid const",
			&Program{Name: "t", Body: []Stmt{EmitS("x", Const{})}},
			"invalid constant",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := testSchema.Validate(c.p)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestValidateScoping(t *testing.T) {
	// Loop variable usable inside the loop; a local defined in a branch is
	// (conservatively) considered defined afterwards — the validator checks
	// textual order, not path feasibility, mirroring common static checks.
	p := &Program{
		Name:   "scope",
		Params: []Param{IntParam("n", 0, 3)},
		Body: []Stmt{
			ForS("i", C(0), P("n"), Set("acc", L("i"))),
			IfS(Gt(P("n"), C(1)), Set("b", C(1))),
			EmitS("x", L("b")),
		},
	}
	if err := testSchema.Validate(p); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestSchemaTables(t *testing.T) {
	s := NewSchema(TableSpec{Name: "B", KeyArity: 1}, TableSpec{Name: "A", KeyArity: 2})
	got := s.Tables()
	if len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Fatalf("Tables = %v", got)
	}
	spec, ok := s.Table("A")
	if !ok || spec.KeyArity != 2 {
		t.Fatalf("Table(A) = %+v,%v", spec, ok)
	}
	if _, ok := s.Table("Z"); ok {
		t.Fatal("unknown table must report false")
	}
}

func TestFormatRendersProgram(t *testing.T) {
	out := Format(transferProg())
	for _, want := range []string{
		"transaction transfer(", "s = get ACC[src]", "if (s.bal >= amount)",
		"put ACC[src] = s", "emit ok = true", "amount int[1..50]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
}

// TestFormatParseRoundTrip: Format emits the parse syntax; re-parsing must
// give a program that validates and behaves identically.
func TestFormatParseRoundTrip(t *testing.T) {
	orig := transferProg()
	back, err := Parse(Format(orig))
	if err != nil {
		t.Fatalf("re-parse of Format output: %v\n%s", err, Format(orig))
	}
	if err := testSchema.Validate(back); err != nil {
		t.Fatal(err)
	}
	inputs := map[string]value.Value{
		"src": value.Int(1), "dst": value.Int(2), "amount": value.Int(30),
	}
	kv1 := newMapKV()
	kv1.Put(value.NewKey("ACC", value.Int(1)), acct(100))
	kv1.Put(value.NewKey("ACC", value.Int(2)), acct(5))
	kv2 := newMapKV()
	kv2.Put(value.NewKey("ACC", value.Int(1)), acct(100))
	kv2.Put(value.NewKey("ACC", value.Int(2)), acct(5))
	if _, err := Run(orig, inputs, kv1); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(back, inputs, kv2); err != nil {
		t.Fatal(err)
	}
	for k, v := range kv1.m {
		if !kv2.m[k].Equal(v) {
			t.Fatalf("round-tripped program diverged at %s", k)
		}
	}
	// Idempotence: formatting the re-parsed program is a fixed point.
	if Format(back) != Format(orig) {
		t.Fatalf("Format not canonical:\n%s\nvs\n%s", Format(back), Format(orig))
	}
}

func TestFormatExprForms(t *testing.T) {
	cases := map[string]Expr{
		"(a + 1)":      Add(P("a"), C(1)),
		"!((a == b))":  Neg(Eq(P("a"), P("b"))),
		"xs[i]":        Idx(P("xs"), L("i")),
		"{bal: 0}":     RecE(F("bal", C(0))),
		`"s"`:          Cs("s"),
		"r.f":          Fld(L("r"), "f"),
		"(x % 10)":     Mod(L("x"), C(10)),
		"(p && q)":     And(L("p"), L("q")),
		"(p || q)":     Or(L("p"), L("q")),
		"(a >= b)":     Ge(P("a"), P("b")),
		"(a <= b)":     Le(P("a"), P("b")),
		"(a != b)":     Ne(P("a"), P("b")),
		"(a * b)":      Mul(P("a"), P("b")),
		"(a / b)":      Div(P("a"), P("b")),
		"(a - b)":      Sub(P("a"), P("b")),
		"(a < b)":      Lt(P("a"), P("b")),
		"(a > b)":      Gt(P("a"), P("b")),
		"true":         Cb(true),
		"{a: 1, b: 2}": RecE(F("a", C(1)), F("b", C(2))),
	}
	for want, e := range cases {
		if got := FormatExpr(e); got != want {
			t.Errorf("FormatExpr = %q, want %q", got, want)
		}
	}
}

func TestEvalBinErrors(t *testing.T) {
	if _, err := EvalBin(OpLt, value.Bool(true), value.Bool(false)); err == nil {
		t.Fatal("< on bools must error")
	}
	if _, err := EvalBin(OpAnd, value.Int(1), value.Bool(true)); err == nil {
		t.Fatal("&& on int must error")
	}
	if _, err := EvalBin(Op(99), value.Int(1), value.Int(1)); err == nil {
		t.Fatal("unknown op must error")
	}
	v, err := EvalBin(OpLt, value.Str("a"), value.Str("b"))
	if err != nil || !v.MustBool() {
		t.Fatalf("string compare: %v, %v", v, err)
	}
}

package lang

import (
	"prognosticator/internal/value"
)

// Param declares a transaction input. Integer parameters carry a domain
// [Lo, Hi] taken from the benchmark specification (e.g. TPC-C bounds olCnt
// to [5,15]); the symbolic executor uses the domain to bound path
// exploration and the solver uses it to decide path-constraint
// satisfiability. List parameters carry an element spec and a maximum
// length; their effective length may be tied to another integer parameter
// via LenParam (e.g. the olIds list has length olCnt).
type Param struct {
	Name     string
	Kind     value.Kind
	Lo, Hi   int64  // int domain; ignored for other kinds
	Elem     *Param // list element spec (Name ignored)
	MaxLen   int    // list capacity
	LenParam string // optional int param giving the effective list length
}

// IntParam declares an integer input with the given inclusive domain.
func IntParam(name string, lo, hi int64) Param {
	return Param{Name: name, Kind: value.KindInt, Lo: lo, Hi: hi}
}

// StrParam declares a string input.
func StrParam(name string) Param {
	return Param{Name: name, Kind: value.KindString}
}

// ListParam declares a list input of at most maxLen elements, each described
// by elem. If lenParam is non-empty, the effective length of the list equals
// the value of that integer parameter.
func ListParam(name string, elem Param, maxLen int, lenParam string) Param {
	e := elem
	return Param{Name: name, Kind: value.KindList, Elem: &e, MaxLen: maxLen, LenParam: lenParam}
}

// Expr is a side-effect-free expression.
type Expr interface{ exprNode() }

// Const is a literal value.
type Const struct{ V value.Value }

// ParamRef reads a transaction input.
type ParamRef struct{ Name string }

// LocalRef reads a local variable.
type LocalRef struct{ Name string }

// Bin applies a binary operator.
type Bin struct {
	Op   Op
	L, R Expr
}

// Not negates a boolean expression.
type Not struct{ E Expr }

// Field projects a record field.
type Field struct {
	E    Expr
	Name string
}

// Index selects a list element.
type Index struct {
	E Expr
	I Expr
}

// FieldInit is one field of a record literal. Order is preserved for
// deterministic printing, but has no semantic meaning.
type FieldInit struct {
	Name string
	E    Expr
}

// Rec builds a record value.
type Rec struct{ Fields []FieldInit }

func (Const) exprNode()    {}
func (ParamRef) exprNode() {}
func (LocalRef) exprNode() {}
func (Bin) exprNode()      {}
func (Not) exprNode()      {}
func (Field) exprNode()    {}
func (Index) exprNode()    {}
func (Rec) exprNode()      {}

// Stmt is a statement.
type Stmt interface{ stmtNode() }

// Assign sets local Dst to the value of E.
type Assign struct {
	Dst string
	E   Expr
}

// SetField sets one field of the record held in local Dst.
type SetField struct {
	Dst   string
	Field string
	E     Expr
}

// Get reads the item identified by (Table, Key...) into local Dst. A missing
// item yields an empty record.
type Get struct {
	Dst   string
	Table string
	Key   []Expr
}

// Put writes Val (a record) to the item identified by (Table, Key...).
type Put struct {
	Table string
	Key   []Expr
	Val   Expr
}

// Del deletes the item identified by (Table, Key...).
type Del struct {
	Table string
	Key   []Expr
}

// If branches on a boolean condition.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// For runs Body with Var bound to From, From+1, ..., To-1.
type For struct {
	Var      string
	From, To Expr
	Body     []Stmt
}

// Emit records a named output of the transaction (read-only results).
type Emit struct {
	Name string
	E    Expr
}

func (Assign) stmtNode()   {}
func (SetField) stmtNode() {}
func (Get) stmtNode()      {}
func (Put) stmtNode()      {}
func (Del) stmtNode()      {}
func (If) stmtNode()       {}
func (For) stmtNode()      {}
func (Emit) stmtNode()     {}

// Program is a complete stored procedure.
type Program struct {
	Name   string
	Params []Param
	Body   []Stmt
}

// Param returns the declaration of the named parameter, or false.
func (p *Program) Param(name string) (Param, bool) {
	for _, pr := range p.Params {
		if pr.Name == name {
			return pr, true
		}
	}
	return Param{}, false
}

// IsReadOnly reports whether the program contains no Put or Del anywhere.
func (p *Program) IsReadOnly() bool { return !anyWrite(p.Body) }

func anyWrite(body []Stmt) bool {
	for _, s := range body {
		switch st := s.(type) {
		case Put, Del:
			return true
		case If:
			if anyWrite(st.Then) || anyWrite(st.Else) {
				return true
			}
		case For:
			if anyWrite(st.Body) {
				return true
			}
		}
	}
	return false
}

package lang

import (
	"fmt"

	"prognosticator/internal/value"
)

// Param declares a transaction input. Integer parameters carry a domain
// [Lo, Hi] taken from the benchmark specification (e.g. TPC-C bounds olCnt
// to [5,15]); the symbolic executor uses the domain to bound path
// exploration and the solver uses it to decide path-constraint
// satisfiability. List parameters carry an element spec and a maximum
// length; their effective length may be tied to another integer parameter
// via LenParam (e.g. the olIds list has length olCnt).
type Param struct {
	Name     string
	Kind     value.Kind
	Lo, Hi   int64  // int domain; ignored for other kinds
	Elem     *Param // list element spec (Name ignored)
	MaxLen   int    // list capacity
	LenParam string // optional int param giving the effective list length
}

// IntParam declares an integer input with the given inclusive domain.
func IntParam(name string, lo, hi int64) Param {
	return Param{Name: name, Kind: value.KindInt, Lo: lo, Hi: hi}
}

// StrParam declares a string input.
func StrParam(name string) Param {
	return Param{Name: name, Kind: value.KindString}
}

// ListParam declares a list input of at most maxLen elements, each described
// by elem. If lenParam is non-empty, the effective length of the list equals
// the value of that integer parameter.
func ListParam(name string, elem Param, maxLen int, lenParam string) Param {
	e := elem
	return Param{Name: name, Kind: value.KindList, Elem: &e, MaxLen: maxLen, LenParam: lenParam}
}

// Expr is a side-effect-free expression.
type Expr interface{ exprNode() }

// Const is a literal value.
type Const struct{ V value.Value }

// ParamRef reads a transaction input.
type ParamRef struct{ Name string }

// LocalRef reads a local variable.
type LocalRef struct{ Name string }

// Bin applies a binary operator.
type Bin struct {
	Op   Op
	L, R Expr
}

// Not negates a boolean expression.
type Not struct{ E Expr }

// Field projects a record field.
type Field struct {
	E    Expr
	Name string
}

// Index selects a list element.
type Index struct {
	E Expr
	I Expr
}

// FieldInit is one field of a record literal. Order is preserved for
// deterministic printing, but has no semantic meaning.
type FieldInit struct {
	Name string
	E    Expr
}

// Rec builds a record value.
type Rec struct{ Fields []FieldInit }

func (Const) exprNode()    {}
func (ParamRef) exprNode() {}
func (LocalRef) exprNode() {}
func (Bin) exprNode()      {}
func (Not) exprNode()      {}
func (Field) exprNode()    {}
func (Index) exprNode()    {}
func (Rec) exprNode()      {}

// Pos is a source position. The zero value means "unknown" — programs built
// with the Go constructors (builder.go) carry no positions; programs parsed
// from source carry the line/column of each statement's first token.
type Pos struct {
	Line int `json:"line"`
	Col  int `json:"col"`
}

// IsValid reports whether the position carries real source coordinates.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String renders "line:col", or "-" for an unknown position.
func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Stmt is a statement.
type Stmt interface {
	stmtNode()
	// StmtPos returns the statement's source position (zero if unknown).
	StmtPos() Pos
}

// Assign sets local Dst to the value of E.
type Assign struct {
	Dst string
	E   Expr
	Pos Pos
}

// SetField sets one field of the record held in local Dst.
type SetField struct {
	Dst   string
	Field string
	E     Expr
	Pos   Pos
}

// Get reads the item identified by (Table, Key...) into local Dst. A missing
// item yields an empty record.
type Get struct {
	Dst   string
	Table string
	Key   []Expr
	Pos   Pos
}

// Put writes Val (a record) to the item identified by (Table, Key...).
type Put struct {
	Table string
	Key   []Expr
	Val   Expr
	Pos   Pos
}

// Del deletes the item identified by (Table, Key...).
type Del struct {
	Table string
	Key   []Expr
	Pos   Pos
}

// If branches on a boolean condition.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Pos  Pos
}

// For runs Body with Var bound to From, From+1, ..., To-1.
type For struct {
	Var      string
	From, To Expr
	Body     []Stmt
	Pos      Pos
}

// Emit records a named output of the transaction (read-only results).
type Emit struct {
	Name string
	E    Expr
	Pos  Pos
}

func (Assign) stmtNode()   {}
func (SetField) stmtNode() {}
func (Get) stmtNode()      {}
func (Put) stmtNode()      {}
func (Del) stmtNode()      {}
func (If) stmtNode()       {}
func (For) stmtNode()      {}
func (Emit) stmtNode()     {}

// StmtPos implements Stmt.
func (s Assign) StmtPos() Pos { return s.Pos }

// StmtPos implements Stmt.
func (s SetField) StmtPos() Pos { return s.Pos }

// StmtPos implements Stmt.
func (s Get) StmtPos() Pos { return s.Pos }

// StmtPos implements Stmt.
func (s Put) StmtPos() Pos { return s.Pos }

// StmtPos implements Stmt.
func (s Del) StmtPos() Pos { return s.Pos }

// StmtPos implements Stmt.
func (s If) StmtPos() Pos { return s.Pos }

// StmtPos implements Stmt.
func (s For) StmtPos() Pos { return s.Pos }

// StmtPos implements Stmt.
func (s Emit) StmtPos() Pos { return s.Pos }

// Program is a complete stored procedure.
type Program struct {
	Name   string
	Params []Param
	Body   []Stmt
}

// Param returns the declaration of the named parameter, or false.
func (p *Program) Param(name string) (Param, bool) {
	for _, pr := range p.Params {
		if pr.Name == name {
			return pr, true
		}
	}
	return Param{}, false
}

// IsReadOnly reports whether the program contains no Put or Del anywhere.
func (p *Program) IsReadOnly() bool { return !anyWrite(p.Body) }

func anyWrite(body []Stmt) bool {
	for _, s := range body {
		switch st := s.(type) {
		case Put, Del:
			return true
		case If:
			if anyWrite(st.Then) || anyWrite(st.Else) {
				return true
			}
		case For:
			if anyWrite(st.Body) {
				return true
			}
		}
	}
	return false
}

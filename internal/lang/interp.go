package lang

import (
	"fmt"

	"prognosticator/internal/value"
)

// KV is the data-store interface a transaction executes against. Get reports
// false when the item does not exist.
type KV interface {
	Get(k value.Key) (value.Value, bool)
	Put(k value.Key, v value.Value)
	Delete(k value.Key)
}

// Result captures the observable effects of one concrete execution.
type Result struct {
	// Emitted holds the outputs produced by Emit statements.
	Emitted map[string]value.Value
	// Reads and Writes list the keys touched, in program order with
	// duplicates preserved. Reconnaissance mode uses them as the
	// discovered key-set.
	Reads  []value.Key
	Writes []value.Key
}

// MaxLoopIterations bounds any single For statement during concrete
// execution; exceeding it is a programming error surfaced as an execution
// error rather than a hang.
const MaxLoopIterations = 1 << 16

// Run executes p concretely with the given inputs against kv. Inputs must
// contain a value for every declared parameter. The interpreter is
// deterministic: identical inputs and store state produce identical effects.
func Run(p *Program, inputs map[string]value.Value, kv KV) (*Result, error) {
	return RunTrace(p, inputs, kv, nil)
}

// TraceFunc observes one statement about to execute: its structural path
// (matching the lint CFG's node paths, e.g. "body[2].then[0]"; loop bodies
// are reported once per iteration) and the locals live at that point. The
// map is the interpreter's own state — callbacks must not mutate or retain
// it. The statement has not executed yet when the callback fires, so the
// locals are the statement's entry state.
type TraceFunc func(path string, locals map[string]value.Value)

// RunTrace is Run with a statement-entry trace hook; the lint soundness
// checker uses it to validate abstract states against concrete executions.
// A nil trace is exactly Run (no per-statement path bookkeeping).
func RunTrace(p *Program, inputs map[string]value.Value, kv KV, trace TraceFunc) (*Result, error) {
	for _, prm := range p.Params {
		if _, ok := inputs[prm.Name]; !ok {
			return nil, fmt.Errorf("lang: %s: missing input %q", p.Name, prm.Name)
		}
	}
	in := &interp{prog: p, inputs: inputs, kv: kv, trace: trace,
		locals: map[string]value.Value{},
		res:    &Result{Emitted: map[string]value.Value{}},
	}
	if err := in.block(p.Body, "body"); err != nil {
		return nil, err
	}
	return in.res, nil
}

type interp struct {
	prog   *Program
	inputs map[string]value.Value
	kv     KV
	locals map[string]value.Value
	res    *Result
	trace  TraceFunc
}

func (in *interp) block(body []Stmt, label string) error {
	for i, st := range body {
		var path string
		if in.trace != nil {
			path = fmt.Sprintf("%s[%d]", label, i)
		}
		if err := in.stmt(st, path); err != nil {
			return err
		}
	}
	return nil
}

// sub extends a structural path; it avoids allocations when not tracing.
func (in *interp) sub(path, suffix string) string {
	if in.trace == nil {
		return ""
	}
	return path + suffix
}

func (in *interp) stmt(st Stmt, path string) error {
	if in.trace != nil {
		in.trace(path, in.locals)
	}
	switch s := st.(type) {
	case Assign:
		v, err := in.eval(s.E)
		if err != nil {
			return err
		}
		in.locals[s.Dst] = v
		return nil
	case SetField:
		rec, ok := in.locals[s.Dst]
		if !ok {
			return fmt.Errorf("lang: %s: SetField on undefined local %q", in.prog.Name, s.Dst)
		}
		v, err := in.eval(s.E)
		if err != nil {
			return err
		}
		in.locals[s.Dst] = rec.WithField(s.Field, v)
		return nil
	case Get:
		k, err := in.key(s.Table, s.Key)
		if err != nil {
			return err
		}
		in.res.Reads = append(in.res.Reads, k)
		v, ok := in.kv.Get(k)
		if !ok {
			v = value.Record(nil)
		}
		in.locals[s.Dst] = v
		return nil
	case Put:
		k, err := in.key(s.Table, s.Key)
		if err != nil {
			return err
		}
		v, err := in.eval(s.Val)
		if err != nil {
			return err
		}
		in.res.Writes = append(in.res.Writes, k)
		in.kv.Put(k, v)
		return nil
	case Del:
		k, err := in.key(s.Table, s.Key)
		if err != nil {
			return err
		}
		in.res.Writes = append(in.res.Writes, k)
		in.kv.Delete(k)
		return nil
	case If:
		c, err := in.eval(s.Cond)
		if err != nil {
			return err
		}
		b, ok := c.AsBool()
		if !ok {
			return fmt.Errorf("lang: %s: if condition is %s, want bool", in.prog.Name, c.Kind())
		}
		if b {
			return in.block(s.Then, in.sub(path, ".then"))
		}
		return in.block(s.Else, in.sub(path, ".else"))
	case For:
		from, err := in.evalInt(s.From)
		if err != nil {
			return err
		}
		to, err := in.evalInt(s.To)
		if err != nil {
			return err
		}
		if to-from > MaxLoopIterations {
			return fmt.Errorf("lang: %s: loop %q exceeds %d iterations", in.prog.Name, s.Var, MaxLoopIterations)
		}
		for i := from; i < to; i++ {
			in.locals[s.Var] = value.Int(i)
			if err := in.block(s.Body, in.sub(path, ".body")); err != nil {
				return err
			}
		}
		return nil
	case Emit:
		v, err := in.eval(s.E)
		if err != nil {
			return err
		}
		in.res.Emitted[s.Name] = v
		return nil
	default:
		return fmt.Errorf("lang: %s: unknown statement %T", in.prog.Name, st)
	}
}

func (in *interp) key(table string, parts []Expr) (value.Key, error) {
	vals := make([]value.Value, len(parts))
	for i, e := range parts {
		v, err := in.eval(e)
		if err != nil {
			return value.Key{}, err
		}
		vals[i] = v
	}
	return value.NewKey(table, vals...), nil
}

func (in *interp) evalInt(e Expr) (int64, error) {
	v, err := in.eval(e)
	if err != nil {
		return 0, err
	}
	i, ok := v.AsInt()
	if !ok {
		return 0, fmt.Errorf("lang: %s: expected int, got %s", in.prog.Name, v.Kind())
	}
	return i, nil
}

func (in *interp) eval(e Expr) (value.Value, error) {
	switch x := e.(type) {
	case Const:
		return x.V, nil
	case ParamRef:
		v, ok := in.inputs[x.Name]
		if !ok {
			return value.Value{}, fmt.Errorf("lang: %s: missing input %q", in.prog.Name, x.Name)
		}
		return v, nil
	case LocalRef:
		v, ok := in.locals[x.Name]
		if !ok {
			return value.Value{}, fmt.Errorf("lang: %s: undefined local %q", in.prog.Name, x.Name)
		}
		return v, nil
	case Bin:
		l, err := in.eval(x.L)
		if err != nil {
			return value.Value{}, err
		}
		// Short-circuit logical operators.
		if x.Op.IsLogical() {
			lb, ok := l.AsBool()
			if !ok {
				return value.Value{}, fmt.Errorf("lang: %s: %s on %s", in.prog.Name, x.Op, l.Kind())
			}
			if x.Op == OpAnd && !lb {
				return value.Bool(false), nil
			}
			if x.Op == OpOr && lb {
				return value.Bool(true), nil
			}
			r, err := in.eval(x.R)
			if err != nil {
				return value.Value{}, err
			}
			rb, ok := r.AsBool()
			if !ok {
				return value.Value{}, fmt.Errorf("lang: %s: %s on %s", in.prog.Name, x.Op, r.Kind())
			}
			return value.Bool(rb), nil
		}
		r, err := in.eval(x.R)
		if err != nil {
			return value.Value{}, err
		}
		return EvalBin(x.Op, l, r)
	case Not:
		v, err := in.eval(x.E)
		if err != nil {
			return value.Value{}, err
		}
		b, ok := v.AsBool()
		if !ok {
			return value.Value{}, fmt.Errorf("lang: %s: ! on %s", in.prog.Name, v.Kind())
		}
		return value.Bool(!b), nil
	case Field:
		v, err := in.eval(x.E)
		if err != nil {
			return value.Value{}, err
		}
		f, ok := v.Field(x.Name)
		if !ok {
			// Missing fields of existing records read as integer zero;
			// this mirrors a schemaless store where records created by
			// population may lack fields later code initializes lazily.
			return value.Int(0), nil
		}
		return f, nil
	case Index:
		v, err := in.eval(x.E)
		if err != nil {
			return value.Value{}, err
		}
		iv, err := in.eval(x.I)
		if err != nil {
			return value.Value{}, err
		}
		i, ok := iv.AsInt()
		if !ok {
			return value.Value{}, fmt.Errorf("lang: %s: index is %s, want int", in.prog.Name, iv.Kind())
		}
		el, ok := v.Index(int(i))
		if !ok {
			return value.Value{}, fmt.Errorf("lang: %s: index %d out of range (len %d)", in.prog.Name, i, v.Len())
		}
		return el, nil
	case Rec:
		fields := make(map[string]value.Value, len(x.Fields))
		for _, f := range x.Fields {
			v, err := in.eval(f.E)
			if err != nil {
				return value.Value{}, err
			}
			fields[f.Name] = v
		}
		return value.Record(fields), nil
	default:
		return value.Value{}, fmt.Errorf("lang: %s: unknown expression %T", in.prog.Name, e)
	}
}

// EvalBin applies a non-logical binary operator to two concrete values. It
// is shared by the concrete interpreter and by the symbolic executor's
// constant folding.
func EvalBin(op Op, l, r value.Value) (value.Value, error) {
	switch {
	case op.IsArithmetic():
		li, lok := l.AsInt()
		ri, rok := r.AsInt()
		if !lok || !rok {
			return value.Value{}, fmt.Errorf("lang: %s on %s,%s", op, l.Kind(), r.Kind())
		}
		switch op {
		case OpAdd:
			return value.Int(li + ri), nil
		case OpSub:
			return value.Int(li - ri), nil
		case OpMul:
			return value.Int(li * ri), nil
		case OpDiv:
			if ri == 0 {
				return value.Value{}, fmt.Errorf("lang: division by zero")
			}
			return value.Int(li / ri), nil
		default: // OpMod
			if ri == 0 {
				return value.Value{}, fmt.Errorf("lang: modulo by zero")
			}
			return value.Int(li % ri), nil
		}
	case op.IsComparison():
		if op == OpEq {
			return value.Bool(l.Equal(r)), nil
		}
		if op == OpNe {
			return value.Bool(!l.Equal(r)), nil
		}
		if l.Kind() != r.Kind() || (l.Kind() != value.KindInt && l.Kind() != value.KindString) {
			return value.Value{}, fmt.Errorf("lang: %s on %s,%s", op, l.Kind(), r.Kind())
		}
		c := l.Compare(r)
		switch op {
		case OpLt:
			return value.Bool(c < 0), nil
		case OpLe:
			return value.Bool(c <= 0), nil
		case OpGt:
			return value.Bool(c > 0), nil
		default: // OpGe
			return value.Bool(c >= 0), nil
		}
	case op.IsLogical():
		lb, lok := l.AsBool()
		rb, rok := r.AsBool()
		if !lok || !rok {
			return value.Value{}, fmt.Errorf("lang: %s on %s,%s", op, l.Kind(), r.Kind())
		}
		if op == OpAnd {
			return value.Bool(lb && rb), nil
		}
		return value.Bool(lb || rb), nil
	default:
		return value.Value{}, fmt.Errorf("lang: unknown operator %v", op)
	}
}

package lang

import "prognosticator/internal/value"

// This file provides terse constructors used by the workload definitions
// (internal/workload/*). They exist purely to keep hand-written transaction
// code readable; they add no semantics.

// C is an integer constant expression.
func C(i int64) Expr { return Const{V: value.Int(i)} }

// Cs is a string constant expression.
func Cs(s string) Expr { return Const{V: value.Str(s)} }

// Cb is a boolean constant expression.
func Cb(b bool) Expr { return Const{V: value.Bool(b)} }

// P references a parameter.
func P(name string) Expr { return ParamRef{Name: name} }

// L references a local.
func L(name string) Expr { return LocalRef{Name: name} }

// Add returns l + r.
func Add(l, r Expr) Expr { return Bin{Op: OpAdd, L: l, R: r} }

// Sub returns l - r.
func Sub(l, r Expr) Expr { return Bin{Op: OpSub, L: l, R: r} }

// Mul returns l * r.
func Mul(l, r Expr) Expr { return Bin{Op: OpMul, L: l, R: r} }

// Div returns l / r.
func Div(l, r Expr) Expr { return Bin{Op: OpDiv, L: l, R: r} }

// Mod returns l % r.
func Mod(l, r Expr) Expr { return Bin{Op: OpMod, L: l, R: r} }

// Eq returns l == r.
func Eq(l, r Expr) Expr { return Bin{Op: OpEq, L: l, R: r} }

// Ne returns l != r.
func Ne(l, r Expr) Expr { return Bin{Op: OpNe, L: l, R: r} }

// Lt returns l < r.
func Lt(l, r Expr) Expr { return Bin{Op: OpLt, L: l, R: r} }

// Le returns l <= r.
func Le(l, r Expr) Expr { return Bin{Op: OpLe, L: l, R: r} }

// Gt returns l > r.
func Gt(l, r Expr) Expr { return Bin{Op: OpGt, L: l, R: r} }

// Ge returns l >= r.
func Ge(l, r Expr) Expr { return Bin{Op: OpGe, L: l, R: r} }

// And returns l && r.
func And(l, r Expr) Expr { return Bin{Op: OpAnd, L: l, R: r} }

// Or returns l || r.
func Or(l, r Expr) Expr { return Bin{Op: OpOr, L: l, R: r} }

// Neg returns !e.
func Neg(e Expr) Expr { return Not{E: e} }

// Fld projects a record field.
func Fld(e Expr, name string) Expr { return Field{E: e, Name: name} }

// Idx selects a list element.
func Idx(e, i Expr) Expr { return Index{E: e, I: i} }

// F names one field of a record literal.
func F(name string, e Expr) FieldInit { return FieldInit{Name: name, E: e} }

// RecE builds a record literal.
func RecE(fields ...FieldInit) Expr { return Rec{Fields: fields} }

// Set assigns an expression to a local.
func Set(dst string, e Expr) Stmt { return Assign{Dst: dst, E: e} }

// SetF sets a field of a record local.
func SetF(dst, field string, e Expr) Stmt { return SetField{Dst: dst, Field: field, E: e} }

// GetS reads (table, key...) into dst.
func GetS(dst, table string, key ...Expr) Stmt { return Get{Dst: dst, Table: table, Key: key} }

// PutS writes val to (table, key...). key must be the full key tuple.
func PutS(table string, key []Expr, val Expr) Stmt { return Put{Table: table, Key: key, Val: val} }

// DelS deletes (table, key...).
func DelS(table string, key ...Expr) Stmt { return Del{Table: table, Key: key} }

// IfS branches with no else.
func IfS(cond Expr, then ...Stmt) Stmt { return If{Cond: cond, Then: then} }

// IfElse branches with both arms.
func IfElse(cond Expr, then, els []Stmt) Stmt { return If{Cond: cond, Then: then, Else: els} }

// ForS loops v from from (inclusive) to to (exclusive).
func ForS(v string, from, to Expr, body ...Stmt) Stmt {
	return For{Var: v, From: from, To: to, Body: body}
}

// EmitS records a named output.
func EmitS(name string, e Expr) Stmt { return Emit{Name: name, E: e} }

// Key builds a key-expression tuple.
func Key(parts ...Expr) []Expr { return parts }

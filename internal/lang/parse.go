package lang

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"prognosticator/internal/value"
)

// This file implements a parser for the stored-procedure language, so that
// transactions can be written as source text instead of Go builder calls:
//
//	transaction transfer(src int[0..999], dst int[0..999], amount int[1..1000]) {
//	    s = get ACCOUNTS[src]
//	    d = get ACCOUNTS[dst]
//	    if s.bal >= amount {
//	        s.bal = s.bal - amount
//	        d.bal = d.bal + amount
//	        put ACCOUNTS[src] = s
//	        put ACCOUNTS[dst] = d
//	        emit ok = true
//	    }
//	}
//
// Parameter types: `int[lo..hi]`, `string`, `bool`, and
// `list[elemType; maxLen]` or `list[elemType; maxLen; lenParam]`.
// Statements: assignment, field assignment (`x.f = e`), `get`/`put`/`del`,
// `if`/`else`, `for i = a..b { }` (half-open), `emit name = e`.
// Expressions use the usual precedence: `||` < `&&` < comparisons < `+ -`
// < `* / %` < unary `!` < postfix `.field` / `[index]`.

// Parse parses a single transaction definition.
func Parse(src string) (*Program, error) {
	progs, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(progs) != 1 {
		return nil, fmt.Errorf("lang: expected exactly one transaction, found %d", len(progs))
	}
	return progs[0], nil
}

// ParseAll parses a source file containing any number of transaction
// definitions. Line comments start with //.
func ParseAll(src string) ([]*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var progs []*Program
	for !p.atEOF() {
		prog, err := p.program()
		if err != nil {
			return nil, err
		}
		progs = append(progs, prog)
	}
	if len(progs) == 0 {
		return nil, fmt.Errorf("lang: no transactions in source")
	}
	return progs, nil
}

// MustParse parses or panics; for tests and static program tables.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// --- lexer ---

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokString
	tokPunct // single/double char punctuation, Text holds it
)

type token struct {
	kind tokKind
	text string
	num  int64
	line int
	col  int
}

func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	advance := func(n int) {
		for j := 0; j < n; j++ {
			if src[i+j] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += n
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				advance(1)
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			startLine, startCol := line, col
			for i < len(src) && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				advance(1)
			}
			toks = append(toks, token{kind: tokIdent, text: src[start:i], line: startLine, col: startCol})
		case unicode.IsDigit(rune(c)):
			start := i
			startLine, startCol := line, col
			for i < len(src) && unicode.IsDigit(rune(src[i])) {
				advance(1)
			}
			n, err := strconv.ParseInt(src[start:i], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("lang: %d:%d: bad integer %q", startLine, startCol, src[start:i])
			}
			toks = append(toks, token{kind: tokInt, num: n, text: src[start:i], line: startLine, col: startCol})
		case c == '"':
			startLine, startCol := line, col
			advance(1)
			var sb strings.Builder
			for i < len(src) && src[i] != '"' {
				if src[i] == '\\' && i+1 < len(src) {
					advance(1)
					switch src[i] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					default:
						sb.WriteByte(src[i])
					}
					advance(1)
					continue
				}
				sb.WriteByte(src[i])
				advance(1)
			}
			if i >= len(src) {
				return nil, fmt.Errorf("lang: %d:%d: unterminated string", startLine, startCol)
			}
			advance(1) // closing quote
			toks = append(toks, token{kind: tokString, text: sb.String(), line: startLine, col: startCol})
		default:
			startLine, startCol := line, col
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "..", "==", "!=", "<=", ">=", "&&", "||":
				toks = append(toks, token{kind: tokPunct, text: two, line: startLine, col: startCol})
				advance(2)
				continue
			}
			switch c {
			case '(', ')', '[', ']', '{', '}', ',', ';', ':', '.', '=', '<', '>', '+', '-', '*', '/', '%', '!':
				toks = append(toks, token{kind: tokPunct, text: string(c), line: startLine, col: startCol})
				advance(1)
			default:
				return nil, fmt.Errorf("lang: %d:%d: unexpected character %q", startLine, startCol, string(c))
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line, col: col})
	return toks, nil
}

// --- parser ---

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("lang: %d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

func (p *parser) accept(text string) bool {
	t := p.cur()
	if (t.kind == tokPunct || t.kind == tokIdent) && t.text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errf("expected %q, found %q", text, p.cur().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, found %q", t.text)
	}
	p.pos++
	return t.text, nil
}

func (p *parser) intLit() (int64, error) {
	neg := false
	if p.cur().kind == tokPunct && p.cur().text == "-" {
		neg = true
		p.pos++
	}
	t := p.cur()
	if t.kind != tokInt {
		return 0, p.errf("expected integer, found %q", t.text)
	}
	p.pos++
	if neg {
		return -t.num, nil
	}
	return t.num, nil
}

func (p *parser) program() (*Program, error) {
	if err := p.expect("transaction"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var params []Param
	for !p.accept(")") {
		if len(params) > 0 {
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
		prm, err := p.param()
		if err != nil {
			return nil, err
		}
		params = append(params, prm)
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	prog := &Program{Name: name, Params: params, Body: body}
	// The grammar cannot distinguish parameter references from locals, so
	// the parser emits LocalRef everywhere and this pass rewrites the
	// names that match declared parameters. Parameters are immutable:
	// assigning to one (or shadowing one with a loop variable) is an
	// error.
	paramSet := map[string]bool{}
	for _, prm := range params {
		paramSet[prm.Name] = true
	}
	if err := rewriteParams(prog.Body, paramSet, name); err != nil {
		return nil, err
	}
	return prog, nil
}

func rewriteParams(body []Stmt, params map[string]bool, progName string) error {
	for i, st := range body {
		switch s := st.(type) {
		case Assign:
			if params[s.Dst] {
				return fmt.Errorf("lang: %s: assignment to parameter %q", progName, s.Dst)
			}
			s.E = rewriteExpr(s.E, params)
			body[i] = s
		case SetField:
			if params[s.Dst] {
				return fmt.Errorf("lang: %s: field assignment to parameter %q", progName, s.Dst)
			}
			s.E = rewriteExpr(s.E, params)
			body[i] = s
		case Get:
			if params[s.Dst] {
				return fmt.Errorf("lang: %s: get into parameter %q", progName, s.Dst)
			}
			for j := range s.Key {
				s.Key[j] = rewriteExpr(s.Key[j], params)
			}
			body[i] = s
		case Put:
			for j := range s.Key {
				s.Key[j] = rewriteExpr(s.Key[j], params)
			}
			s.Val = rewriteExpr(s.Val, params)
			body[i] = s
		case Del:
			for j := range s.Key {
				s.Key[j] = rewriteExpr(s.Key[j], params)
			}
			body[i] = s
		case If:
			s.Cond = rewriteExpr(s.Cond, params)
			if err := rewriteParams(s.Then, params, progName); err != nil {
				return err
			}
			if err := rewriteParams(s.Else, params, progName); err != nil {
				return err
			}
			body[i] = s
		case For:
			if params[s.Var] {
				return fmt.Errorf("lang: %s: loop variable %q shadows a parameter", progName, s.Var)
			}
			s.From = rewriteExpr(s.From, params)
			s.To = rewriteExpr(s.To, params)
			if err := rewriteParams(s.Body, params, progName); err != nil {
				return err
			}
			body[i] = s
		case Emit:
			s.E = rewriteExpr(s.E, params)
			body[i] = s
		}
	}
	return nil
}

func rewriteExpr(e Expr, params map[string]bool) Expr {
	switch x := e.(type) {
	case LocalRef:
		if params[x.Name] {
			return ParamRef{Name: x.Name}
		}
		return x
	case Bin:
		x.L = rewriteExpr(x.L, params)
		x.R = rewriteExpr(x.R, params)
		return x
	case Not:
		x.E = rewriteExpr(x.E, params)
		return x
	case Field:
		x.E = rewriteExpr(x.E, params)
		return x
	case Index:
		x.E = rewriteExpr(x.E, params)
		x.I = rewriteExpr(x.I, params)
		return x
	case Rec:
		for i := range x.Fields {
			x.Fields[i].E = rewriteExpr(x.Fields[i].E, params)
		}
		return x
	default:
		return e
	}
}

func (p *parser) param() (Param, error) {
	name, err := p.ident()
	if err != nil {
		return Param{}, err
	}
	prm, err := p.paramType()
	if err != nil {
		return Param{}, err
	}
	prm.Name = name
	return prm, nil
}

func (p *parser) paramType() (Param, error) {
	kind, err := p.ident()
	if err != nil {
		return Param{}, err
	}
	switch kind {
	case "int":
		if err := p.expect("["); err != nil {
			return Param{}, err
		}
		lo, err := p.intLit()
		if err != nil {
			return Param{}, err
		}
		if err := p.expect(".."); err != nil {
			return Param{}, err
		}
		hi, err := p.intLit()
		if err != nil {
			return Param{}, err
		}
		if err := p.expect("]"); err != nil {
			return Param{}, err
		}
		return Param{Kind: value.KindInt, Lo: lo, Hi: hi}, nil
	case "string":
		return Param{Kind: value.KindString}, nil
	case "bool":
		return Param{Kind: value.KindBool}, nil
	case "list":
		if err := p.expect("["); err != nil {
			return Param{}, err
		}
		elem, err := p.paramType()
		if err != nil {
			return Param{}, err
		}
		if err := p.expect(";"); err != nil {
			return Param{}, err
		}
		maxLen, err := p.intLit()
		if err != nil {
			return Param{}, err
		}
		lenParam := ""
		if p.accept(";") {
			lenParam, err = p.ident()
			if err != nil {
				return Param{}, err
			}
		}
		if err := p.expect("]"); err != nil {
			return Param{}, err
		}
		e := elem
		return Param{Kind: value.KindList, Elem: &e, MaxLen: int(maxLen), LenParam: lenParam}, nil
	default:
		return Param{}, p.errf("unknown type %q", kind)
	}
}

func (p *parser) block() ([]Stmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var out []Stmt
	for !p.accept("}") {
		st, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

func (p *parser) keyList() (string, []Expr, error) {
	table, err := p.ident()
	if err != nil {
		return "", nil, err
	}
	if err := p.expect("["); err != nil {
		return "", nil, err
	}
	var key []Expr
	for !p.accept("]") {
		if len(key) > 0 {
			if err := p.expect(","); err != nil {
				return "", nil, err
			}
		}
		e, err := p.expr()
		if err != nil {
			return "", nil, err
		}
		key = append(key, e)
	}
	return table, key, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	pos := Pos{Line: t.line, Col: t.col}
	if t.kind != tokIdent {
		return nil, p.errf("expected statement, found %q", t.text)
	}
	switch t.text {
	case "put":
		p.pos++
		table, key, err := p.keyList()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		return Put{Table: table, Key: key, Val: val, Pos: pos}, nil
	case "del":
		p.pos++
		table, key, err := p.keyList()
		if err != nil {
			return nil, err
		}
		return Del{Table: table, Key: key, Pos: pos}, nil
	case "if":
		p.pos++
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		thenB, err := p.block()
		if err != nil {
			return nil, err
		}
		var elseB []Stmt
		if p.cur().kind == tokIdent && p.cur().text == "else" {
			p.pos++
			elseB, err = p.block()
			if err != nil {
				return nil, err
			}
		}
		return If{Cond: cond, Then: thenB, Else: elseB, Pos: pos}, nil
	case "for":
		p.pos++
		v, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		from, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(".."); err != nil {
			return nil, err
		}
		to, err := p.expr()
		if err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return For{Var: v, From: from, To: to, Body: body, Pos: pos}, nil
	case "emit":
		p.pos++
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return Emit{Name: name, E: e, Pos: pos}, nil
	}
	// IDENT-led: assignment, field assignment, or get.
	name, _ := p.ident()
	if p.accept(".") {
		field, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return SetField{Dst: name, Field: field, E: e, Pos: pos}, nil
	}
	if err := p.expect("="); err != nil {
		return nil, err
	}
	if p.cur().kind == tokIdent && p.cur().text == "get" {
		p.pos++
		table, key, err := p.keyList()
		if err != nil {
			return nil, err
		}
		return Get{Dst: name, Table: table, Key: key, Pos: pos}, nil
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	return Assign{Dst: name, E: e, Pos: pos}, nil
}

// --- expressions, precedence climbing ---

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept("||") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = Bin{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.accept("&&") {
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = Bin{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

var cmpOps = map[string]Op{
	"==": OpEq, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if t := p.cur(); t.kind == tokPunct {
		if op, ok := cmpOps[t.text]; ok {
			p.pos++
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return Bin{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("+"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = Bin{Op: OpAdd, L: l, R: r}
		case p.accept("-"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = Bin{Op: OpSub, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op Op
		switch {
		case p.accept("*"):
			op = OpMul
		case p.accept("/"):
			op = OpDiv
		case p.accept("%"):
			op = OpMod
		default:
			return l, nil
		}
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = Bin{Op: op, L: l, R: r}
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.accept("!") {
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return Not{E: e}, nil
	}
	if p.cur().kind == tokPunct && p.cur().text == "-" && p.peek().kind == tokInt {
		p.pos++
		t := p.cur()
		p.pos++
		return Const{V: value.Int(-t.num)}, nil
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() (Expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("."):
			f, err := p.ident()
			if err != nil {
				return nil, err
			}
			e = Field{E: e, Name: f}
		case p.accept("["):
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			e = Index{E: e, I: idx}
		default:
			return e, nil
		}
	}
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt:
		p.pos++
		return Const{V: value.Int(t.num)}, nil
	case t.kind == tokString:
		p.pos++
		return Const{V: value.Str(t.text)}, nil
	case t.kind == tokIdent && t.text == "true":
		p.pos++
		return Const{V: value.Bool(true)}, nil
	case t.kind == tokIdent && t.text == "false":
		p.pos++
		return Const{V: value.Bool(false)}, nil
	case t.kind == tokIdent:
		p.pos++
		// The validator distinguishes params from locals; the parser emits
		// LocalRef and a post-pass rewrites names that match parameters.
		return LocalRef{Name: t.text}, nil
	case t.kind == tokPunct && t.text == "(":
		p.pos++
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokPunct && t.text == "{":
		p.pos++
		var fields []FieldInit
		for !p.accept("}") {
			if len(fields) > 0 {
				if err := p.expect(","); err != nil {
					return nil, err
				}
			}
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expect(":"); err != nil {
				return nil, err
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			fields = append(fields, FieldInit{Name: name, E: e})
		}
		return Rec{Fields: fields}, nil
	default:
		return nil, p.errf("expected expression, found %q", t.text)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

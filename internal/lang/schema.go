package lang

import (
	"fmt"
	"sort"
)

// TableSpec describes one table of the data model: its name and the number
// of scalar parts in its keys. Records are schemaless (field sets are by
// convention), matching the GET/PUT key/value interface the paper assumes.
type TableSpec struct {
	Name     string
	KeyArity int
}

// Schema is the set of tables a program may address.
type Schema struct {
	tables map[string]TableSpec
}

// NewSchema builds a schema from table specs.
func NewSchema(tables ...TableSpec) *Schema {
	m := make(map[string]TableSpec, len(tables))
	for _, t := range tables {
		m[t.Name] = t
	}
	return &Schema{tables: m}
}

// Table returns the spec of the named table.
func (s *Schema) Table(name string) (TableSpec, bool) {
	t, ok := s.tables[name]
	return t, ok
}

// Tables returns all table names in sorted order.
func (s *Schema) Tables() []string {
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Validate checks a program against the schema: every referenced name must
// be a declared parameter, the loop variable of an enclosing For, or a local
// assigned earlier; every table access must name a known table with the
// right key arity; loop variables must not be reassigned. It returns the
// first problem found.
func (s *Schema) Validate(p *Program) error {
	v := &validator{schema: s, prog: p, defined: map[string]bool{}}
	for _, prm := range p.Params {
		if prm.Name == "" {
			return fmt.Errorf("lang: %s: parameter with empty name", p.Name)
		}
		if v.defined[prm.Name] {
			return fmt.Errorf("lang: %s: duplicate parameter %q", p.Name, prm.Name)
		}
		v.defined[prm.Name] = true
		if prm.LenParam != "" {
			if _, ok := p.Param(prm.LenParam); !ok {
				return fmt.Errorf("lang: %s: list %q: unknown length parameter %q", p.Name, prm.Name, prm.LenParam)
			}
		}
	}
	return v.block(p.Body)
}

type validator struct {
	schema  *Schema
	prog    *Program
	defined map[string]bool
	loops   []string
}

func (v *validator) block(body []Stmt) error {
	for _, st := range body {
		if err := v.stmt(st); err != nil {
			return err
		}
	}
	return nil
}

func (v *validator) stmt(st Stmt) error {
	switch s := st.(type) {
	case Assign:
		if err := v.expr(s.E); err != nil {
			return err
		}
		if v.isLoopVar(s.Dst) {
			return fmt.Errorf("lang: %s: assignment to loop variable %q", v.prog.Name, s.Dst)
		}
		v.defined[s.Dst] = true
		return nil
	case SetField:
		if !v.defined[s.Dst] {
			return fmt.Errorf("lang: %s: SetField on undefined local %q", v.prog.Name, s.Dst)
		}
		return v.expr(s.E)
	case Get:
		if err := v.key(s.Table, s.Key); err != nil {
			return err
		}
		v.defined[s.Dst] = true
		return nil
	case Put:
		if err := v.key(s.Table, s.Key); err != nil {
			return err
		}
		return v.expr(s.Val)
	case Del:
		return v.key(s.Table, s.Key)
	case If:
		if err := v.expr(s.Cond); err != nil {
			return err
		}
		if err := v.block(s.Then); err != nil {
			return err
		}
		return v.block(s.Else)
	case For:
		if err := v.expr(s.From); err != nil {
			return err
		}
		if err := v.expr(s.To); err != nil {
			return err
		}
		v.defined[s.Var] = true
		v.loops = append(v.loops, s.Var)
		err := v.block(s.Body)
		v.loops = v.loops[:len(v.loops)-1]
		return err
	case Emit:
		return v.expr(s.E)
	default:
		return fmt.Errorf("lang: %s: unknown statement %T", v.prog.Name, st)
	}
}

func (v *validator) key(table string, key []Expr) error {
	spec, ok := v.schema.Table(table)
	if !ok {
		return fmt.Errorf("lang: %s: unknown table %q", v.prog.Name, table)
	}
	if len(key) != spec.KeyArity {
		return fmt.Errorf("lang: %s: table %q expects %d key parts, got %d",
			v.prog.Name, table, spec.KeyArity, len(key))
	}
	for _, e := range key {
		if err := v.expr(e); err != nil {
			return err
		}
	}
	return nil
}

func (v *validator) expr(e Expr) error {
	switch x := e.(type) {
	case Const:
		if !x.V.IsValid() {
			return fmt.Errorf("lang: %s: invalid constant", v.prog.Name)
		}
		return nil
	case ParamRef:
		if _, ok := v.prog.Param(x.Name); !ok {
			return fmt.Errorf("lang: %s: unknown parameter %q", v.prog.Name, x.Name)
		}
		return nil
	case LocalRef:
		if !v.defined[x.Name] {
			return fmt.Errorf("lang: %s: use of undefined local %q", v.prog.Name, x.Name)
		}
		return nil
	case Bin:
		if err := v.expr(x.L); err != nil {
			return err
		}
		return v.expr(x.R)
	case Not:
		return v.expr(x.E)
	case Field:
		return v.expr(x.E)
	case Index:
		if err := v.expr(x.E); err != nil {
			return err
		}
		return v.expr(x.I)
	case Rec:
		for _, f := range x.Fields {
			if err := v.expr(f.E); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("lang: %s: unknown expression %T", v.prog.Name, e)
	}
}

func (v *validator) isLoopVar(name string) bool {
	for _, lv := range v.loops {
		if lv == name {
			return true
		}
	}
	return false
}

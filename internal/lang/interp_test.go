package lang

import (
	"strings"
	"testing"

	"prognosticator/internal/value"
)

// mapKV is a trivial KV used by interpreter tests.
type mapKV struct{ m map[value.Encoded]value.Value }

func newMapKV() *mapKV { return &mapKV{m: map[value.Encoded]value.Value{}} }

func (kv *mapKV) Get(k value.Key) (value.Value, bool) {
	v, ok := kv.m[k.Encode()]
	return v, ok
}
func (kv *mapKV) Put(k value.Key, v value.Value) { kv.m[k.Encode()] = v }
func (kv *mapKV) Delete(k value.Key)             { delete(kv.m, k.Encode()) }

var testSchema = NewSchema(
	TableSpec{Name: "ACC", KeyArity: 1},
	TableSpec{Name: "PAIR", KeyArity: 2},
)

// transferProg moves amount from account src to dst if funds suffice.
func transferProg() *Program {
	return &Program{
		Name: "transfer",
		Params: []Param{
			IntParam("src", 0, 100),
			IntParam("dst", 0, 100),
			IntParam("amount", 1, 50),
		},
		Body: []Stmt{
			GetS("s", "ACC", P("src")),
			GetS("d", "ACC", P("dst")),
			IfS(Ge(Fld(L("s"), "bal"), P("amount")),
				SetF("s", "bal", Sub(Fld(L("s"), "bal"), P("amount"))),
				SetF("d", "bal", Add(Fld(L("d"), "bal"), P("amount"))),
				PutS("ACC", Key(P("src")), L("s")),
				PutS("ACC", Key(P("dst")), L("d")),
				EmitS("ok", Cb(true)),
			),
		},
	}
}

func acct(bal int64) value.Value {
	return value.Record(map[string]value.Value{"bal": value.Int(bal)})
}

func TestTransferExecutes(t *testing.T) {
	if err := testSchema.Validate(transferProg()); err != nil {
		t.Fatalf("validate: %v", err)
	}
	kv := newMapKV()
	kv.Put(value.NewKey("ACC", value.Int(1)), acct(100))
	kv.Put(value.NewKey("ACC", value.Int(2)), acct(5))
	res, err := Run(transferProg(), map[string]value.Value{
		"src": value.Int(1), "dst": value.Int(2), "amount": value.Int(30),
	}, kv)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := kv.Get(value.NewKey("ACC", value.Int(1)))
	d, _ := kv.Get(value.NewKey("ACC", value.Int(2)))
	if b, _ := s.Field("bal"); b.MustInt() != 70 {
		t.Fatalf("src bal = %v", b)
	}
	if b, _ := d.Field("bal"); b.MustInt() != 35 {
		t.Fatalf("dst bal = %v", b)
	}
	if len(res.Reads) != 2 || len(res.Writes) != 2 {
		t.Fatalf("reads/writes = %d/%d", len(res.Reads), len(res.Writes))
	}
	if ok, found := res.Emitted["ok"]; !found || !ok.MustBool() {
		t.Fatalf("emitted = %v", res.Emitted)
	}
}

func TestTransferInsufficientFunds(t *testing.T) {
	kv := newMapKV()
	kv.Put(value.NewKey("ACC", value.Int(1)), acct(10))
	kv.Put(value.NewKey("ACC", value.Int(2)), acct(0))
	res, err := Run(transferProg(), map[string]value.Value{
		"src": value.Int(1), "dst": value.Int(2), "amount": value.Int(30),
	}, kv)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Writes) != 0 {
		t.Fatalf("expected no writes, got %v", res.Writes)
	}
	if _, found := res.Emitted["ok"]; found {
		t.Fatal("ok should not be emitted")
	}
}

func TestMissingItemReadsAsEmptyRecord(t *testing.T) {
	p := &Program{
		Name:   "probe",
		Params: []Param{IntParam("k", 0, 10)},
		Body: []Stmt{
			GetS("x", "ACC", P("k")),
			EmitS("bal", Fld(L("x"), "bal")),
		},
	}
	res, err := Run(p, map[string]value.Value{"k": value.Int(7)}, newMapKV())
	if err != nil {
		t.Fatal(err)
	}
	if res.Emitted["bal"].MustInt() != 0 {
		t.Fatalf("missing field should read 0, got %v", res.Emitted["bal"])
	}
}

func TestForLoopAndIndex(t *testing.T) {
	p := &Program{
		Name: "batchput",
		Params: []Param{
			IntParam("n", 1, 5),
			ListParam("ids", IntParam("", 0, 99), 5, "n"),
		},
		Body: []Stmt{
			Set("sum", C(0)),
			ForS("i", C(0), P("n"),
				Set("id", Idx(P("ids"), L("i"))),
				PutS("ACC", Key(L("id")), RecE(F("bal", L("i")))),
				Set("sum", Add(L("sum"), L("id"))),
			),
			EmitS("sum", L("sum")),
		},
	}
	if err := testSchema.Validate(p); err != nil {
		t.Fatalf("validate: %v", err)
	}
	kv := newMapKV()
	res, err := Run(p, map[string]value.Value{
		"n":   value.Int(3),
		"ids": value.List(value.Int(4), value.Int(8), value.Int(15)),
	}, kv)
	if err != nil {
		t.Fatal(err)
	}
	if res.Emitted["sum"].MustInt() != 27 {
		t.Fatalf("sum = %v", res.Emitted["sum"])
	}
	if len(res.Writes) != 3 {
		t.Fatalf("writes = %v", res.Writes)
	}
	v, ok := kv.Get(value.NewKey("ACC", value.Int(15)))
	if !ok {
		t.Fatal("key 15 missing")
	}
	if b, _ := v.Field("bal"); b.MustInt() != 2 {
		t.Fatalf("bal = %v", b)
	}
}

func TestArithmeticAndLogic(t *testing.T) {
	p := &Program{
		Name:   "math",
		Params: []Param{IntParam("a", -100, 100), IntParam("b", 1, 100)},
		Body: []Stmt{
			EmitS("add", Add(P("a"), P("b"))),
			EmitS("sub", Sub(P("a"), P("b"))),
			EmitS("mul", Mul(P("a"), P("b"))),
			EmitS("div", Div(P("a"), P("b"))),
			EmitS("mod", Mod(P("a"), P("b"))),
			EmitS("lt", Lt(P("a"), P("b"))),
			EmitS("and", And(Gt(P("a"), C(0)), Gt(P("b"), C(0)))),
			EmitS("or", Or(Lt(P("a"), C(0)), Lt(P("b"), C(0)))),
			EmitS("not", Neg(Eq(P("a"), P("b")))),
		},
	}
	res, err := Run(p, map[string]value.Value{"a": value.Int(-7), "b": value.Int(3)}, newMapKV())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]value.Value{
		"add": value.Int(-4), "sub": value.Int(-10), "mul": value.Int(-21),
		"div": value.Int(-2), "mod": value.Int(-1),
		"lt": value.Bool(true), "and": value.Bool(false),
		"or": value.Bool(true), "not": value.Bool(true),
	}
	for k, w := range want {
		if got := res.Emitted[k]; !got.Equal(w) {
			t.Errorf("%s = %v, want %v", k, got, w)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// The right operand indexes out of range; short-circuit must avoid it.
	p := &Program{
		Name:   "sc",
		Params: []Param{ListParam("xs", IntParam("", 0, 9), 3, "")},
		Body: []Stmt{
			IfS(Or(Cb(true), Gt(Idx(P("xs"), C(99)), C(0))),
				EmitS("or", Cb(true))),
			IfS(And(Cb(false), Gt(Idx(P("xs"), C(99)), C(0))),
				EmitS("bad", Cb(true))),
		},
	}
	res, err := Run(p, map[string]value.Value{"xs": value.List(value.Int(1))}, newMapKV())
	if err != nil {
		t.Fatalf("short circuit failed: %v", err)
	}
	if _, found := res.Emitted["bad"]; found {
		t.Fatal("false && ... must not run then-branch")
	}
	if _, found := res.Emitted["or"]; !found {
		t.Fatal("true || ... must run then-branch")
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name string
		p    *Program
		in   map[string]value.Value
		want string
	}{
		{
			name: "missing input",
			p: &Program{Name: "t", Params: []Param{IntParam("a", 0, 1)},
				Body: []Stmt{EmitS("x", P("a"))}},
			in:   map[string]value.Value{},
			want: "missing input",
		},
		{
			name: "div by zero",
			p: &Program{Name: "t",
				Body: []Stmt{EmitS("x", Div(C(1), C(0)))}},
			in:   map[string]value.Value{},
			want: "division by zero",
		},
		{
			name: "mod by zero",
			p: &Program{Name: "t",
				Body: []Stmt{EmitS("x", Mod(C(1), C(0)))}},
			in:   map[string]value.Value{},
			want: "modulo by zero",
		},
		{
			name: "bad if cond",
			p: &Program{Name: "t",
				Body: []Stmt{IfS(C(3), EmitS("x", C(1)))}},
			in:   map[string]value.Value{},
			want: "want bool",
		},
		{
			name: "undefined local",
			p: &Program{Name: "t",
				Body: []Stmt{EmitS("x", L("nope"))}},
			in:   map[string]value.Value{},
			want: "undefined local",
		},
		{
			name: "index out of range",
			p: &Program{Name: "t", Params: []Param{ListParam("xs", IntParam("", 0, 9), 2, "")},
				Body: []Stmt{EmitS("x", Idx(P("xs"), C(5)))}},
			in:   map[string]value.Value{"xs": value.List(value.Int(1))},
			want: "out of range",
		},
		{
			name: "arith on string",
			p: &Program{Name: "t",
				Body: []Stmt{EmitS("x", Add(Cs("a"), C(1)))}},
			in:   map[string]value.Value{},
			want: "+ on string,int",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Run(c.p, c.in, newMapKV())
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestLoopBound(t *testing.T) {
	p := &Program{
		Name: "bigloop",
		Body: []Stmt{ForS("i", C(0), C(MaxLoopIterations+2), Set("x", L("i")))},
	}
	if _, err := Run(p, map[string]value.Value{}, newMapKV()); err == nil {
		t.Fatal("expected loop bound error")
	}
}

func TestIsReadOnly(t *testing.T) {
	if transferProg().IsReadOnly() {
		t.Fatal("transfer writes and is not read-only")
	}
	ro := &Program{Name: "ro", Params: []Param{IntParam("k", 0, 9)},
		Body: []Stmt{GetS("x", "ACC", P("k")), EmitS("v", L("x"))}}
	if !ro.IsReadOnly() {
		t.Fatal("pure GET program should be read-only")
	}
	nested := &Program{Name: "n", Params: []Param{IntParam("k", 0, 9)},
		Body: []Stmt{IfS(Cb(true), ForS("i", C(0), C(2), DelS("ACC", L("i"))))}}
	if nested.IsReadOnly() {
		t.Fatal("nested DEL must make the program read-write")
	}
}

func TestEqNeAcrossKinds(t *testing.T) {
	p := &Program{Name: "eq",
		Body: []Stmt{
			EmitS("a", Eq(Cs("x"), Cs("x"))),
			EmitS("b", Eq(Cs("x"), C(1))),
			EmitS("c", Ne(Cs("x"), C(1))),
		}}
	res, err := Run(p, map[string]value.Value{}, newMapKV())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Emitted["a"].MustBool() || res.Emitted["b"].MustBool() || !res.Emitted["c"].MustBool() {
		t.Fatalf("emitted = %v", res.Emitted)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (map[string]value.Value, map[value.Encoded]value.Value) {
		kv := newMapKV()
		kv.Put(value.NewKey("ACC", value.Int(1)), acct(100))
		kv.Put(value.NewKey("ACC", value.Int(2)), acct(5))
		res, err := Run(transferProg(), map[string]value.Value{
			"src": value.Int(1), "dst": value.Int(2), "amount": value.Int(30),
		}, kv)
		if err != nil {
			t.Fatal(err)
		}
		return res.Emitted, kv.m
	}
	e1, m1 := run()
	e2, m2 := run()
	if len(e1) != len(e2) || len(m1) != len(m2) {
		t.Fatal("nondeterministic execution")
	}
	for k, v := range m1 {
		if !m2[k].Equal(v) {
			t.Fatalf("state diverged at %s", k)
		}
	}
}

package lang

import (
	"strings"
	"testing"

	"prognosticator/internal/value"
)

const transferSrc = `
// A classic balance transfer with a guard.
transaction transfer(src int[0..999], dst int[0..999], amount int[1..1000]) {
    s = get ACC[src]
    d = get ACC[dst]
    if s.bal >= amount {
        s.bal = s.bal - amount
        d.bal = d.bal + amount
        put ACC[src] = s
        put ACC[dst] = d
        emit ok = true
    }
}
`

func TestParseTransfer(t *testing.T) {
	p, err := Parse(transferSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "transfer" || len(p.Params) != 3 {
		t.Fatalf("parsed %s with %d params", p.Name, len(p.Params))
	}
	if p.Params[2].Name != "amount" || p.Params[2].Lo != 1 || p.Params[2].Hi != 1000 {
		t.Fatalf("amount param = %+v", p.Params[2])
	}
	if err := testSchema.Validate(p); err != nil {
		t.Fatalf("validate: %v", err)
	}
	// Parsed program must behave exactly like the builder version.
	kv := newMapKV()
	kv.Put(value.NewKey("ACC", value.Int(1)), acct(100))
	kv.Put(value.NewKey("ACC", value.Int(2)), acct(5))
	res, err := Run(p, map[string]value.Value{
		"src": value.Int(1), "dst": value.Int(2), "amount": value.Int(30),
	}, kv)
	if err != nil {
		t.Fatal(err)
	}
	if ok := res.Emitted["ok"]; !ok.MustBool() {
		t.Fatalf("emitted = %v", res.Emitted)
	}
	s, _ := kv.Get(value.NewKey("ACC", value.Int(1)))
	if b, _ := s.Field("bal"); b.MustInt() != 70 {
		t.Fatalf("src bal = %v", b)
	}
}

func TestParseAllConstructs(t *testing.T) {
	src := `
transaction kitchen(n int[1..5], ids list[int[0..99]; 5; n], name string, flag bool) {
    total = 0
    for i = 0..n {
        id = ids[i]
        rec = get PAIR[id, i]
        if rec.v > 3 && !(rec.v == 9) || flag {
            rec.v = rec.v * 2 + 1
        } else {
            rec.v = rec.v / 2 - 1
        }
        put PAIR[id, i] = rec
        total = total + rec.v % 7
    }
    del ACC[n]
    put ACC[0] = {v: total, tag: name, neg: -3}
    emit total = total
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := testSchema.Validate(p); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if p.Params[1].Kind != value.KindList || p.Params[1].LenParam != "n" || p.Params[1].MaxLen != 5 {
		t.Fatalf("list param = %+v", p.Params[1])
	}
	// Execute it.
	kv := newMapKV()
	res, err := Run(p, map[string]value.Value{
		"n":    value.Int(2),
		"ids":  value.List(value.Int(4), value.Int(7)),
		"name": value.Str("x"),
		"flag": value.Bool(false),
	}, kv)
	if err != nil {
		t.Fatal(err)
	}
	if _, found := res.Emitted["total"]; !found {
		t.Fatal("total not emitted")
	}
	rec, ok := kv.Get(value.NewKey("ACC", value.Int(0)))
	if !ok {
		t.Fatal("ACC/0 missing")
	}
	if f, _ := rec.Field("neg"); f.MustInt() != -3 {
		t.Fatalf("neg = %v", f)
	}
}

func TestParsePrecedence(t *testing.T) {
	p := MustParse(`transaction t(a int[0..9], b int[0..9]) {
        emit x = a + b * 2
        emit y = (a + b) * 2
        emit z = a < 3 || b < 3 && a == b
    }`)
	res, err := Run(p, map[string]value.Value{
		"a": value.Int(1), "b": value.Int(2),
	}, newMapKV())
	if err != nil {
		t.Fatal(err)
	}
	if res.Emitted["x"].MustInt() != 5 {
		t.Fatalf("x = %v (mul must bind tighter than add)", res.Emitted["x"])
	}
	if res.Emitted["y"].MustInt() != 6 {
		t.Fatalf("y = %v", res.Emitted["y"])
	}
	// a<3 || (b<3 && a==b) = true || ... = true
	if !res.Emitted["z"].MustBool() {
		t.Fatalf("z = %v (&& must bind tighter than ||)", res.Emitted["z"])
	}
}

func TestParseAllMultipleTransactions(t *testing.T) {
	src := `
transaction first(a int[0..1]) { emit x = a }
transaction second(b int[0..1]) { emit y = b }
`
	progs, err := ParseAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 2 || progs[0].Name != "first" || progs[1].Name != "second" {
		t.Fatalf("parsed %d programs", len(progs))
	}
}

func TestParseRoundTripThroughFormat(t *testing.T) {
	// Format output is not the parse syntax, but parsing + validating +
	// running must agree between builder-built and parsed versions of the
	// same logic.
	parsed := MustParse(transferSrc)
	built := transferProg()
	built.Name = "transfer"
	for _, inputs := range []map[string]value.Value{
		{"src": value.Int(1), "dst": value.Int(2), "amount": value.Int(30)},
		{"src": value.Int(1), "dst": value.Int(2), "amount": value.Int(500)},
	} {
		kv1 := newMapKV()
		kv1.Put(value.NewKey("ACC", value.Int(1)), acct(100))
		kv1.Put(value.NewKey("ACC", value.Int(2)), acct(5))
		kv2 := newMapKV()
		kv2.Put(value.NewKey("ACC", value.Int(1)), acct(100))
		kv2.Put(value.NewKey("ACC", value.Int(2)), acct(5))
		r1, err1 := Run(parsed, inputs, kv1)
		r2, err2 := Run(built, inputs, kv2)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("errors differ: %v vs %v", err1, err2)
		}
		if len(r1.Writes) != len(r2.Writes) {
			t.Fatalf("writes differ: %v vs %v", r1.Writes, r2.Writes)
		}
		for k, v := range kv1.m {
			if !kv2.m[k].Equal(v) {
				t.Fatalf("state differs at %s", k)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"empty", "", "no transactions"},
		{"missing keyword", "transact t() {}", `expected "transaction"`},
		{"bad type", "transaction t(a float) {}", "unknown type"},
		{"unterminated string", `transaction t() { emit x = "abc }`, "unterminated string"},
		{"bad char", "transaction t() { emit x = 1 @ 2 }", "unexpected character"},
		{"assign to param", "transaction t(a int[0..1]) { a = 2 }", "assignment to parameter"},
		{"setfield on param", "transaction t(a int[0..1]) { a.f = 2 }", "field assignment to parameter"},
		{"get into param", "transaction t(a int[0..1]) { a = get ACC[1] }", "get into parameter"},
		{"loop shadows param", "transaction t(a int[0..1]) { for a = 0..2 { emit x = 1 } }", "shadows a parameter"},
		{"missing brace", "transaction t() { emit x = 1", `expected statement`},
		{"two exprs", "transaction t() { emit x = }", "expected expression"},
		{"stray token", "transaction t() {} garbage", `expected "transaction"`},
		{"bad int range", "transaction t(a int[0..x]) {}", "expected integer"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseAll(c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("transaction t() {\n  emit x = @\n}")
	if err == nil || !strings.Contains(err.Error(), "2:") {
		t.Fatalf("error should carry the line number: %v", err)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse must panic on bad input")
		}
	}()
	MustParse("nope")
}

func TestParseComments(t *testing.T) {
	p := MustParse(`
// leading comment
transaction t(a int[0..5]) { // trailing
    // inner
    emit x = a // after
}`)
	if p.Name != "t" {
		t.Fatal("comment handling broke parsing")
	}
}

func TestParseNegativeBounds(t *testing.T) {
	p := MustParse(`transaction t(a int[-5..5]) { emit x = a + -3 }`)
	if p.Params[0].Lo != -5 {
		t.Fatalf("lo = %d", p.Params[0].Lo)
	}
	res, err := Run(p, map[string]value.Value{"a": value.Int(-2)}, newMapKV())
	if err != nil {
		t.Fatal(err)
	}
	if res.Emitted["x"].MustInt() != -5 {
		t.Fatalf("x = %v", res.Emitted["x"])
	}
}

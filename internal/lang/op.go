// Package lang defines the stored-procedure intermediate representation (IR)
// in which transactions are written. The paper's transactions are Java
// stored procedures analysed by JPF; this repository substitutes a small IR
// with exactly the constructs those procedures use — assignment, integer and
// boolean expressions, record field access, bounded loops, branches, and a
// GET/PUT key/value interface — so that both a concrete interpreter
// (internal/lang) and a symbolic executor (internal/symexec) can run them.
package lang

import "fmt"

// Op enumerates binary operators.
type Op int

// Binary operators. Arithmetic operators apply to ints; comparison operators
// to ints and strings; logical operators to bools.
const (
	OpAdd Op = iota + 1
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

// String returns the operator's source form.
func (o Op) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpEq:
		return "=="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "&&"
	case OpOr:
		return "||"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// IsComparison reports whether o yields a boolean from two scalars.
func (o Op) IsComparison() bool { return o >= OpEq && o <= OpGe }

// IsArithmetic reports whether o is an integer arithmetic operator.
func (o Op) IsArithmetic() bool { return o >= OpAdd && o <= OpMod }

// IsLogical reports whether o combines two booleans.
func (o Op) IsLogical() bool { return o == OpAnd || o == OpOr }

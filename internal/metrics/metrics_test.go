package metrics

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("Count = %d", got)
	}
	if got := h.Percentile(50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := h.Percentile(99); got != 99*time.Millisecond {
		t.Fatalf("p99 = %v", got)
	}
	if got := h.Percentile(100); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v", got)
	}
	if got := h.Max(); got != 100*time.Millisecond {
		t.Fatalf("Max = %v", got)
	}
	if got := h.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("Mean = %v", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Percentile(99) != 0 || h.Mean() != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramObserveAfterPercentile(t *testing.T) {
	// Percentile sorts lazily; later observations must re-sort.
	h := NewHistogram()
	h.Observe(5 * time.Millisecond)
	_ = h.Percentile(50)
	h.Observe(1 * time.Millisecond)
	if got := h.Percentile(1); got != 1*time.Millisecond {
		t.Fatalf("p1 after re-observe = %v", got)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Percentile(99) != 0 {
		t.Fatal("reset did not clear samples")
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Millisecond)
	if s := h.String(); !strings.Contains(s, "n=1") {
		t.Fatalf("String = %q", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
				_ = h.Percentile(99)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestQuickPercentileWithinRange(t *testing.T) {
	f := func(samples []uint16, p uint8) bool {
		if len(samples) == 0 {
			return true
		}
		h := NewHistogram()
		min, max := time.Duration(samples[0]), time.Duration(samples[0])
		for _, s := range samples {
			d := time.Duration(s)
			h.Observe(d)
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		pct := float64(p%100) + 1
		got := h.Percentile(pct)
		return got >= min && got <= max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPercentileMonotone(t *testing.T) {
	f := func(samples []uint16) bool {
		if len(samples) < 2 {
			return true
		}
		h := NewHistogram()
		for _, s := range samples {
			h.Observe(time.Duration(s))
		}
		return h.Percentile(25) <= h.Percentile(50) &&
			h.Percentile(50) <= h.Percentile(99) &&
			h.Percentile(99) <= h.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("Counter = %d", c.Value())
	}
}

// Package metrics provides the small set of measurement utilities the
// benchmark harness needs: latency histograms with percentile queries and
// monotonic counters. Implementations favour determinism and zero
// allocation on the hot path.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Histogram records duration samples with exact storage (the harness deals
// in at most a few hundred thousand samples per run, so keeping them beats
// bucketing error). Safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = append(h.samples, d)
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Percentile returns the p-th percentile (0 < p <= 100) using
// nearest-rank. It returns 0 for an empty histogram.
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	rank := int(math.Ceil(p / 100 * float64(len(h.samples))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(h.samples) {
		rank = len(h.samples)
	}
	return h.samples[rank-1]
}

// Mean returns the arithmetic mean of the samples.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range h.samples {
		sum += s
	}
	return sum / time.Duration(len(h.samples))
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	var m time.Duration
	for _, s := range h.samples {
		if s > m {
			m = s
		}
	}
	return m
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = h.samples[:0]
	h.sorted = false
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d p50=%v p99=%v max=%v", h.Count(), h.Percentile(50), h.Percentile(99), h.Max())
}

// Counter is a concurrency-safe monotonic counter.
type Counter struct {
	mu sync.Mutex
	v  int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) {
	c.mu.Lock()
	c.v += delta
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a concurrency-safe instantaneous value (dedup table size, WAL
// segment count, snapshot index, ...). Unlike Counter it can move both ways.
type Gauge struct {
	mu sync.Mutex
	v  int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// CounterSet is a named collection of counters, created on first use. The
// chaos harness and the replica layer use one set per deployment to account
// for faults injected and recoveries performed (kills, restarts, partitions,
// WAL corruptions, deduplicated batches, replayed batches, ...). Safe for
// concurrent use.
type CounterSet struct {
	mu sync.Mutex
	m  map[string]*Counter
}

// NewCounterSet returns an empty set.
func NewCounterSet() *CounterSet {
	return &CounterSet{m: map[string]*Counter{}}
}

// Counter returns the named counter, creating it at zero if needed.
func (s *CounterSet) Counter(name string) *Counter {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.m[name]
	if !ok {
		c = &Counter{}
		s.m[name] = c
	}
	return c
}

// Add increments the named counter by delta.
func (s *CounterSet) Add(name string, delta int64) { s.Counter(name).Add(delta) }

// Value returns the named counter's count (zero if never touched).
func (s *CounterSet) Value(name string) int64 { return s.Counter(name).Value() }

// Snapshot returns a point-in-time copy of every counter.
func (s *CounterSet) Snapshot() map[string]int64 {
	s.mu.Lock()
	names := make([]string, 0, len(s.m))
	for n := range s.m {
		names = append(names, n)
	}
	counters := make([]*Counter, len(names))
	for i, n := range names {
		counters[i] = s.m[n]
	}
	s.mu.Unlock()
	out := make(map[string]int64, len(names))
	for i, n := range names {
		out[n] = counters[i].Value()
	}
	return out
}

// String renders the counters as sorted name=value pairs.
func (s *CounterSet) String() string {
	snap := s.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%d", n, snap[n])
	}
	return strings.Join(parts, " ")
}

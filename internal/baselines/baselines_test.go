package baselines

import (
	"math/rand"
	"testing"

	"prognosticator/internal/engine"
	"prognosticator/internal/lang"
	"prognosticator/internal/store"
	"prognosticator/internal/value"
)

// Shared mini-workload: the same bank shapes as the engine tests.

func schema() *lang.Schema {
	return lang.NewSchema(
		lang.TableSpec{Name: "ACC", KeyArity: 1},
		lang.TableSpec{Name: "PTR", KeyArity: 1},
	)
}

func programs() []*lang.Program {
	deposit := &lang.Program{
		Name:   "deposit",
		Params: []lang.Param{lang.IntParam("k", 0, 99), lang.IntParam("amt", 1, 100)},
		Body: []lang.Stmt{
			lang.GetS("a", "ACC", lang.P("k")),
			lang.SetF("a", "bal", lang.Add(lang.Fld(lang.L("a"), "bal"), lang.P("amt"))),
			lang.PutS("ACC", lang.Key(lang.P("k")), lang.L("a")),
		},
	}
	chase := &lang.Program{
		Name:   "chase",
		Params: []lang.Param{lang.IntParam("p", 0, 9), lang.IntParam("amt", 1, 100)},
		Body: []lang.Stmt{
			lang.GetS("ptr", "PTR", lang.P("p")),
			lang.Set("tgt", lang.Fld(lang.L("ptr"), "target")),
			lang.GetS("a", "ACC", lang.L("tgt")),
			lang.SetF("a", "bal", lang.Add(lang.Fld(lang.L("a"), "bal"), lang.P("amt"))),
			lang.PutS("ACC", lang.Key(lang.L("tgt")), lang.L("a")),
		},
	}
	redirect := &lang.Program{
		Name:   "redirect",
		Params: []lang.Param{lang.IntParam("p", 0, 9), lang.IntParam("to", 0, 99)},
		Body: []lang.Stmt{
			lang.GetS("ptr", "PTR", lang.P("p")),
			lang.Set("tgt", lang.Fld(lang.L("ptr"), "target")),
			lang.GetS("a", "ACC", lang.L("tgt")),
			lang.SetF("a", "bal", lang.Add(lang.Fld(lang.L("a"), "bal"), lang.C(1))),
			lang.PutS("ACC", lang.Key(lang.L("tgt")), lang.L("a")),
			lang.SetF("ptr", "target", lang.P("to")),
			lang.PutS("PTR", lang.Key(lang.P("p")), lang.L("ptr")),
		},
	}
	audit := &lang.Program{
		Name:   "audit",
		Params: []lang.Param{lang.IntParam("k", 0, 99)},
		Body: []lang.Stmt{
			lang.GetS("a", "ACC", lang.P("k")),
			lang.EmitS("bal", lang.Fld(lang.L("a"), "bal")),
		},
	}
	return []*lang.Program{deposit, chase, redirect, audit}
}

func registry(t testing.TB) *engine.Registry {
	t.Helper()
	reg, err := engine.NewRegistry(schema(), programs()...)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func freshStore() *store.Store {
	st := store.New()
	for i := int64(0); i < 100; i++ {
		st.Put(0, value.NewKey("ACC", value.Int(i)),
			value.Record(map[string]value.Value{"bal": value.Int(100)}))
	}
	for p := int64(0); p < 10; p++ {
		st.Put(0, value.NewKey("PTR", value.Int(p)),
			value.Record(map[string]value.Value{"target": value.Int(p * 10)}))
	}
	return st
}

func ival(pairs ...any) map[string]value.Value {
	m := map[string]value.Value{}
	for i := 0; i+1 < len(pairs); i += 2 {
		m[pairs[i].(string)] = value.Int(int64(pairs[i+1].(int)))
	}
	return m
}

func bal(t *testing.T, st *store.Store, acct int64) int64 {
	t.Helper()
	rec, ok := st.Get(st.Epoch(), value.NewKey("ACC", value.Int(acct)))
	if !ok {
		t.Fatalf("account %d missing", acct)
	}
	f, _ := rec.Field("bal")
	return f.MustInt()
}

func randomBatches(seed int64, batches, perBatch int) [][]engine.Request {
	r := rand.New(rand.NewSource(seed))
	var out [][]engine.Request
	seq := uint64(0)
	for b := 0; b < batches; b++ {
		var batch []engine.Request
		for i := 0; i < perBatch; i++ {
			seq++
			switch r.Intn(10) {
			case 0, 1:
				batch = append(batch, engine.Request{Seq: seq, TxName: "redirect",
					Inputs: ival("p", r.Intn(10), "to", r.Intn(100))})
			case 2, 3, 4, 5:
				batch = append(batch, engine.Request{Seq: seq, TxName: "chase",
					Inputs: ival("p", r.Intn(10), "amt", 1+r.Intn(50))})
			case 6, 7, 8:
				batch = append(batch, engine.Request{Seq: seq, TxName: "deposit",
					Inputs: ival("k", r.Intn(100), "amt", 1+r.Intn(50))})
			default:
				batch = append(batch, engine.Request{Seq: seq, TxName: "audit",
					Inputs: ival("k", r.Intn(100))})
			}
		}
		out = append(out, batch)
	}
	return out
}

func TestSEQBasics(t *testing.T) {
	reg := registry(t)
	st := freshStore()
	seq := NewSEQ(reg, st)
	if seq.Name() != "SEQ" {
		t.Fatalf("name = %q", seq.Name())
	}
	res, err := seq.ExecuteBatch([]engine.Request{
		{Seq: 1, TxName: "deposit", Inputs: ival("k", 1, "amt", 10)},
		{Seq: 2, TxName: "chase", Inputs: ival("p", 0, "amt", 5)},
		{Seq: 3, TxName: "audit", Inputs: ival("k", 1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborts != 0 || res.Updates != 2 || res.ROTs != 1 {
		t.Fatalf("result = %+v", res)
	}
	if got := bal(t, st, 1); got != 110 {
		t.Fatalf("acc1 = %d", got)
	}
	if got := bal(t, st, 0); got != 105 {
		t.Fatalf("acc0 = %d", got)
	}
	if _, err := seq.ExecuteBatch([]engine.Request{{Seq: 9, TxName: "nope"}}); err == nil {
		t.Fatal("unknown tx must error")
	}
}

func TestNODONeverAborts(t *testing.T) {
	reg := registry(t)
	st := freshStore()
	nodo := NewNODO(reg, st, 8)
	if nodo.Name() != "NODO" {
		t.Fatalf("name = %q", nodo.Name())
	}
	for _, batch := range randomBatches(5, 6, 50) {
		res, err := nodo.ExecuteBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		if res.Aborts != 0 {
			t.Fatalf("NODO aborted %d transactions", res.Aborts)
		}
		for _, o := range res.Outcomes {
			if o.Done.IsZero() || o.Pending {
				t.Fatalf("NODO left tx pending: %+v", o)
			}
		}
	}
}

// TestNODOMatchesSEQ: NODO's table-level conflict classes serialize every
// pair of same-table transactions in arrival order, and different-table
// transactions commute, so NODO's final state must equal SEQ's.
func TestNODOMatchesSEQ(t *testing.T) {
	reg := registry(t)
	batches := randomBatches(11, 8, 40)
	stSeq := freshStore()
	seq := NewSEQ(reg, stSeq)
	stNodo := freshStore()
	nodo := NewNODO(reg, stNodo, 8)
	for _, b := range batches {
		if _, err := seq.ExecuteBatch(b); err != nil {
			t.Fatal(err)
		}
		if _, err := nodo.ExecuteBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if stSeq.StateHash(stSeq.Epoch()) != stNodo.StateHash(stNodo.Epoch()) {
		t.Fatal("NODO state diverged from SEQ")
	}
}

func TestNODODeterministicAcrossWorkers(t *testing.T) {
	reg := registry(t)
	batches := randomBatches(13, 6, 40)
	var first uint64
	for i, workers := range []int{1, 4, 8} {
		st := freshStore()
		nodo := NewNODO(reg, st, workers)
		for _, b := range batches {
			if _, err := nodo.ExecuteBatch(b); err != nil {
				t.Fatal(err)
			}
		}
		h := st.StateHash(st.Epoch())
		if i == 0 {
			first = h
		} else if h != first {
			t.Fatalf("NODO diverged with %d workers", workers)
		}
	}
}

func TestCalvinStalenessCausesAborts(t *testing.T) {
	reg := registry(t)
	st := freshStore()
	calvin := NewCalvin(reg, st, 4, 2, "Calvin-20")
	if calvin.Name() != "Calvin-20" {
		t.Fatalf("name = %q", calvin.Name())
	}
	// Batch 1: redirect PTR/3 from ACC/30 to ACC/55.
	if _, err := calvin.ExecuteBatch([]engine.Request{
		{Seq: 1, TxName: "redirect", Inputs: ival("p", 3, "to", 55)},
	}); err != nil {
		t.Fatal(err)
	}
	// Batch 2: chase via PTR/3. Calvin prepares it against a snapshot 2
	// epochs old — BEFORE the redirect — so the predicted target is 30,
	// execution reads 55, and the guard aborts it into the carry queue.
	res, err := calvin.ExecuteBatch([]engine.Request{
		{Seq: 2, TxName: "chase", Inputs: ival("p", 3, "amt", 25)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborts != 1 {
		t.Fatalf("aborts = %d, want 1", res.Aborts)
	}
	if calvin.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", calvin.Pending())
	}
	var chase *engine.TxOutcome
	for i := range res.Outcomes {
		if res.Outcomes[i].TxName == "chase" {
			chase = &res.Outcomes[i]
		}
	}
	if chase == nil || !chase.Pending {
		t.Fatalf("chase outcome = %+v", chase)
	}
	// Batches 3..N: the carried chase is re-prepared each batch; once its
	// reconnaissance snapshot includes the redirect, it commits on ACC/55.
	committed := false
	for b := 0; b < 5 && !committed; b++ {
		res, err := calvin.ExecuteBatch(nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range res.Outcomes {
			if o.TxName == "chase" && !o.Pending {
				committed = true
			}
		}
	}
	if !committed {
		t.Fatal("carried chase never committed")
	}
	if got := bal(t, st, 55); got != 125 { // +25 chase (redirect bumped the old target)
		t.Fatalf("ACC/55 = %d, want 125", got)
	}
	if got := bal(t, st, 30); got != 101 { // +1 redirect before repointing
		t.Fatalf("ACC/30 = %d, want 101", got)
	}
}

func TestCalvinZeroStalenessNoAborts(t *testing.T) {
	// With staleness 0 Calvin prepares against the previous batch — only
	// same-batch invalidations can abort. A cross-batch redirect+chase
	// must commit cleanly.
	reg := registry(t)
	st := freshStore()
	calvin := NewCalvin(reg, st, 4, 0, "Calvin-0")
	if _, err := calvin.ExecuteBatch([]engine.Request{
		{Seq: 1, TxName: "redirect", Inputs: ival("p", 3, "to", 55)},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := calvin.ExecuteBatch([]engine.Request{
		{Seq: 2, TxName: "chase", Inputs: ival("p", 3, "amt", 25)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborts != 0 {
		t.Fatalf("aborts = %d, want 0", res.Aborts)
	}
	if got := bal(t, st, 55); got != 125 {
		t.Fatalf("ACC/55 = %d", got)
	}
}

func TestCalvinDeterministicAcrossWorkers(t *testing.T) {
	reg := registry(t)
	batches := randomBatches(17, 10, 40)
	var first uint64
	var firstAborts int
	for i, workers := range []int{1, 4, 8} {
		st := freshStore()
		calvin := NewCalvin(reg, st, workers, 3, "Calvin-30")
		aborts := 0
		for _, b := range batches {
			res, err := calvin.ExecuteBatch(b)
			if err != nil {
				t.Fatal(err)
			}
			aborts += res.Aborts
		}
		// Drain the carry queue.
		for calvin.Pending() > 0 {
			if _, err := calvin.ExecuteBatch(nil); err != nil {
				t.Fatal(err)
			}
		}
		h := st.StateHash(st.Epoch())
		if i == 0 {
			first, firstAborts = h, aborts
		} else {
			if h != first {
				t.Fatalf("Calvin diverged with %d workers", workers)
			}
			if aborts != firstAborts {
				t.Fatalf("Calvin abort count diverged: %d vs %d", aborts, firstAborts)
			}
		}
	}
}

// TestCalvinAbortsGrowWithStaleness reproduces the paper's Calvin-N trend:
// higher reconnaissance staleness, more aborts (Fig. 3b).
func TestCalvinAbortsGrowWithStaleness(t *testing.T) {
	reg := registry(t)
	batches := randomBatches(23, 15, 60)
	abortsAt := func(staleness uint64) int {
		st := freshStore()
		calvin := NewCalvin(reg, st, 4, staleness, "Calvin")
		total := 0
		for _, b := range batches {
			res, err := calvin.ExecuteBatch(b)
			if err != nil {
				t.Fatal(err)
			}
			total += res.Aborts
		}
		return total
	}
	low, high := abortsAt(0), abortsAt(8)
	if high <= low {
		t.Fatalf("aborts did not grow with staleness: %d (N=0) vs %d (N=8)", low, high)
	}
}

// TestEngineLowerAbortsThanCalvin reproduces the headline claim of §IV-B:
// Prognosticator's fresh server-side preparation aborts far less than
// Calvin's stale client-side reconnaissance on the same workload.
func TestEngineLowerAbortsThanCalvin(t *testing.T) {
	reg := registry(t)
	batches := randomBatches(29, 12, 60)
	stE := freshStore()
	eng := engine.New(reg, stE, engine.Config{Workers: 4})
	engAborts := 0
	for _, b := range batches {
		res, err := eng.ExecuteBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		engAborts += res.Aborts
	}
	stC := freshStore()
	calvin := NewCalvin(reg, stC, 4, 10, "Calvin-100")
	calvinAborts := 0
	for _, b := range batches {
		res, err := calvin.ExecuteBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		calvinAborts += res.Aborts
	}
	if engAborts >= calvinAborts {
		t.Fatalf("engine aborts (%d) should be below Calvin-100 aborts (%d)", engAborts, calvinAborts)
	}
}

package baselines

import (
	"fmt"
	"sort"
	"time"

	"prognosticator/internal/engine"
	"prognosticator/internal/lang"
	"prognosticator/internal/locktable"
	"prognosticator/internal/profile"
	"prognosticator/internal/store"
)

// Virtual-time counterparts of the baselines (see internal/engine/sim.go
// for the rationale): execution is real, scheduling is simulated on N
// virtual workers so the paper's 20-core figures reproduce on any host.

// SimSEQ is the virtual-time sequential baseline: one virtual worker.
type SimSEQ struct {
	reg  *engine.Registry
	st   *store.Store
	cost engine.CostModel
}

var _ engine.Executor = (*SimSEQ)(nil)

// NewSimSEQ returns a virtual-time sequential executor.
func NewSimSEQ(reg *engine.Registry, st *store.Store) *SimSEQ {
	return &SimSEQ{reg: reg, st: st, cost: engine.DefaultCostModel()}
}

// Name implements engine.Executor.
func (s *SimSEQ) Name() string { return "SEQ" }

// ExecuteBatch implements engine.Executor.
func (s *SimSEQ) ExecuteBatch(batch []engine.Request) (*engine.BatchResult, error) {
	start := time.Now()
	epoch := s.st.BeginEpoch()
	writer := s.st.WriterAt(epoch)
	res := &engine.BatchResult{Epoch: epoch, Start: start,
		Outcomes: make([]engine.TxOutcome, len(batch))}
	var clock time.Duration
	for i, req := range batch {
		prog, ok := s.reg.Programs[req.TxName]
		if !ok {
			return nil, fmt.Errorf("seq: unknown transaction %q", req.TxName)
		}
		class := s.reg.Classes[req.TxName]
		res.Outcomes[i] = engine.TxOutcome{Seq: req.Seq, TxName: req.TxName, Class: class}
		if class == profile.ClassROT {
			res.ROTs++
		} else {
			res.Updates++
		}
		resu, err := lang.Run(prog, req.Inputs, writer)
		if err != nil {
			return nil, fmt.Errorf("seq: execute %s(seq %d): %w", req.TxName, req.Seq, err)
		}
		cost := s.cost.ExecCost(len(resu.Reads), len(resu.Writes))
		clock += cost
		res.Outcomes[i].Exec = cost
		res.Outcomes[i].VDone = clock
		res.Outcomes[i].Done = time.Now()
	}
	if epoch%16 == 0 && epoch > 1 {
		s.st.GC(epoch - 1)
	}
	res.VirtualMakespan = clock
	res.End = time.Now()
	return res, nil
}

// SimNODO is the virtual-time NODO baseline: table-granularity conflict
// classes scheduled over N virtual workers.
type SimNODO struct {
	reg     *engine.Registry
	st      *store.Store
	workers int
	cost    engine.CostModel
	lt      *locktable.Table
}

var _ engine.Executor = (*SimNODO)(nil)

// NewSimNODO returns a virtual-time NODO executor.
func NewSimNODO(reg *engine.Registry, st *store.Store, workers int) *SimNODO {
	if workers <= 0 {
		workers = 4
	}
	return &SimNODO{reg: reg, st: st, workers: workers,
		cost: engine.DefaultCostModel(), lt: locktable.New()}
}

// Name implements engine.Executor.
func (n *SimNODO) Name() string { return "NODO" }

// ExecuteBatch implements engine.Executor.
func (n *SimNODO) ExecuteBatch(batch []engine.Request) (*engine.BatchResult, error) {
	start := time.Now()
	epoch := n.st.BeginEpoch()
	writer := n.st.WriterAt(epoch)
	res := &engine.BatchResult{Epoch: epoch, Start: start,
		Outcomes: make([]engine.TxOutcome, len(batch))}
	tasks := make([]*engine.SimTask, len(batch))
	for i, req := range batch {
		prog, ok := n.reg.Programs[req.TxName]
		if !ok {
			return nil, fmt.Errorf("nodo: unknown transaction %q", req.TxName)
		}
		class := n.reg.Classes[req.TxName]
		res.Outcomes[i] = engine.TxOutcome{Seq: req.Seq, TxName: req.TxName, Class: class}
		if class == profile.ClassROT {
			res.ROTs++
		} else {
			res.Updates++
		}
		tasks[i] = &engine.SimTask{
			Entry: &locktable.Entry{Seq: req.Seq, Keys: n.reg.TableLocks[req.TxName]},
			Out:   &res.Outcomes[i],
			Exec: func() (bool, time.Duration, error) {
				ov := engine.NewOverlay(writer)
				resu, err := lang.Run(prog, req.Inputs, ov)
				if err != nil {
					return false, 0, fmt.Errorf("nodo: execute %s(seq %d): %w", req.TxName, req.Seq, err)
				}
				ov.Flush(writer)
				cost := n.cost.ExecCost(len(resu.Reads), len(resu.Writes))
				res.Outcomes[i].Exec += cost
				return true, cost, nil
			},
		}
		tasks[i].Entry.Payload = tasks[i]
	}
	_, makespan, err := engine.SimulateRound(n.lt, tasks, n.workers, 0)
	if err != nil {
		return nil, err
	}
	for i := range res.Outcomes {
		res.Outcomes[i].Done = time.Now()
	}
	if epoch%16 == 0 && epoch > 1 {
		n.st.GC(epoch - 1)
	}
	res.VirtualMakespan = makespan
	res.End = time.Now()
	return res, nil
}

// SimCalvin is the virtual-time Calvin baseline: stale client-side
// reconnaissance (free for the replica), strict in-order locks, aborted
// transactions carried to the next batch.
type SimCalvin struct {
	reg       *engine.Registry
	st        *store.Store
	workers   int
	staleness uint64
	cost      engine.CostModel
	lt        *locktable.Table
	carry     []*calvinTx
	label     string
}

var _ engine.Executor = (*SimCalvin)(nil)

// NewSimCalvin returns a virtual-time Calvin executor.
func NewSimCalvin(reg *engine.Registry, st *store.Store, workers int, stalenessEpochs uint64, label string) *SimCalvin {
	if workers <= 0 {
		workers = 4
	}
	return &SimCalvin{reg: reg, st: st, workers: workers,
		staleness: stalenessEpochs, cost: engine.DefaultCostModel(),
		lt: locktable.New(), label: label}
}

// Name implements engine.Executor.
func (c *SimCalvin) Name() string { return c.label }

// Pending returns the carried-over transaction count.
func (c *SimCalvin) Pending() int { return len(c.carry) }

// ExecuteBatch implements engine.Executor.
func (c *SimCalvin) ExecuteBatch(batch []engine.Request) (*engine.BatchResult, error) {
	start := time.Now()
	epoch := c.st.BeginEpoch()
	writer := c.st.WriterAt(epoch)
	prepEpoch := uint64(0)
	if epoch-1 > c.staleness {
		prepEpoch = epoch - 1 - c.staleness
	}
	snap := c.st.ViewAt(prepEpoch)

	txs := make([]*calvinTx, 0, len(c.carry)+len(batch))
	txs = append(txs, c.carry...)
	c.carry = nil
	for _, req := range batch {
		prog, ok := c.reg.Programs[req.TxName]
		if !ok {
			return nil, fmt.Errorf("calvin: unknown transaction %q", req.TxName)
		}
		txs = append(txs, &calvinTx{req: req, prog: prog,
			prof: c.reg.Profiles[req.TxName], class: c.reg.Classes[req.TxName]})
	}
	res := &engine.BatchResult{Epoch: epoch, Start: start,
		Outcomes: make([]engine.TxOutcome, len(txs))}
	for i, tx := range txs {
		res.Outcomes[i] = engine.TxOutcome{Seq: tx.req.Seq, TxName: tx.req.TxName, Class: tx.class}
		tx.out = &res.Outcomes[i]
		if tx.class == profile.ClassROT {
			res.ROTs++
		} else {
			res.Updates++
		}
	}
	// Client-side reconnaissance: off the replica's critical path (a
	// dedicated client thread prepared these N ms ago), so it contributes
	// no virtual time — only the stale snapshot matters.
	for _, tx := range txs {
		ks, err := tx.prof.Instantiate(tx.req.Inputs, snap)
		if err != nil {
			return nil, fmt.Errorf("calvin: instantiate %s(seq %d): %w", tx.req.TxName, tx.req.Seq, err)
		}
		tx.ks = ks
		tx.entry = &locktable.Entry{Seq: tx.req.Seq, Keys: locktable.BuildKeys(ks.Reads, ks.Writes)}
	}
	sort.Slice(txs, func(i, j int) bool { return txs[i].req.Seq < txs[j].req.Seq })
	tasks := make([]*engine.SimTask, len(txs))
	for i, tx := range txs {
		tx := tx
		tasks[i] = &engine.SimTask{Entry: tx.entry, Out: tx.out,
			Exec: func() (bool, time.Duration, error) {
				ov := engine.NewOverlay(writer)
				ov.Guard(tx.ks.Reads, tx.ks.Writes)
				resu, err := lang.Run(tx.prog, tx.req.Inputs, ov)
				if err != nil {
					return false, 0, fmt.Errorf("calvin: execute %s(seq %d): %w", tx.req.TxName, tx.req.Seq, err)
				}
				cost := c.cost.ExecCost(len(resu.Reads), len(resu.Writes))
				tx.out.Exec += cost
				if ov.Violated() {
					return false, cost, nil
				}
				ov.Flush(writer)
				tx.out.Pending = false
				return true, cost, nil
			}}
		tasks[i].Entry.Payload = tx
	}
	failedTasks, makespan, err := engine.SimulateRound(c.lt, tasks, c.workers, 0)
	if err != nil {
		return nil, err
	}
	failed := make([]*calvinTx, 0, len(failedTasks))
	for _, ft := range failedTasks {
		failed = append(failed, ft.Entry.Payload.(*calvinTx))
	}
	sort.Slice(failed, func(i, j int) bool { return failed[i].req.Seq < failed[j].req.Seq })
	for _, tx := range failed {
		tx.out.Pending = true
		tx.aborts++
		c.carry = append(c.carry, tx)
	}
	for i := range res.Outcomes {
		res.Aborts += res.Outcomes[i].Aborts
		res.Outcomes[i].Done = time.Now()
	}
	if epoch%16 == 0 && epoch > c.staleness+1 {
		c.st.GC(epoch - c.staleness - 1)
	}
	res.VirtualMakespan = makespan
	res.End = time.Now()
	return res, nil
}

package baselines

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"prognosticator/internal/engine"
	"prognosticator/internal/lang"
	"prognosticator/internal/locktable"
	"prognosticator/internal/profile"
	"prognosticator/internal/store"
)

// NODO schedules transactions by the tables they access (§V, [26]): the
// conflict classes are coarse (table-level), so no transaction ever aborts —
// every transaction is an IT — but transactions touching different keys of
// the same table serialize needlessly, capping parallelism.
type NODO struct {
	reg     *engine.Registry
	st      *store.Store
	workers int
	lt      *locktable.Table
}

var _ engine.Executor = (*NODO)(nil)

// NewNODO returns a NODO executor.
func NewNODO(reg *engine.Registry, st *store.Store, workers int) *NODO {
	if workers <= 0 {
		workers = 4
	}
	return &NODO{reg: reg, st: st, workers: workers, lt: locktable.New()}
}

// Name implements engine.Executor.
func (n *NODO) Name() string { return "NODO" }

type nodoTx struct {
	req   engine.Request
	prog  *lang.Program
	entry *locktable.Entry
	out   *engine.TxOutcome
}

// ExecuteBatch implements engine.Executor.
func (n *NODO) ExecuteBatch(batch []engine.Request) (*engine.BatchResult, error) {
	start := time.Now()
	epoch := n.st.BeginEpoch()
	writer := n.st.WriterAt(epoch)
	res := &engine.BatchResult{Epoch: epoch, Start: start,
		Outcomes: make([]engine.TxOutcome, len(batch))}

	txs := make([]*nodoTx, len(batch))
	for i, req := range batch {
		prog, ok := n.reg.Programs[req.TxName]
		if !ok {
			return nil, fmt.Errorf("nodo: unknown transaction %q", req.TxName)
		}
		class := n.reg.Classes[req.TxName]
		res.Outcomes[i] = engine.TxOutcome{Seq: req.Seq, TxName: req.TxName, Class: class}
		if class == profile.ClassROT {
			res.ROTs++
		} else {
			res.Updates++
		}
		// Conflict class = set of tables; lock keys are table names with
		// read/write modes from the static analysis.
		txs[i] = &nodoTx{req: req, prog: prog, out: &res.Outcomes[i],
			entry: &locktable.Entry{Seq: req.Seq, Keys: n.reg.TableLocks[req.TxName]}}
		txs[i].entry.Payload = txs[i]
	}

	n.lt.Reset()
	readyCh := make(chan *locktable.Entry, len(txs)+1)
	for _, tx := range txs {
		if n.lt.Enqueue(tx.entry) {
			readyCh <- tx.entry
		}
	}
	if len(txs) == 0 {
		close(readyCh)
	}
	var remaining atomic.Int32
	remaining.Store(int32(len(txs)))
	var errOnce sync.Once
	var firstErr error
	var wg sync.WaitGroup
	for w := 0; w < n.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for entry := range readyCh {
				tx := entry.Payload.(*nodoTx)
				t0 := time.Now()
				ov := engine.NewOverlay(writer)
				if _, err := lang.Run(tx.prog, tx.req.Inputs, ov); err != nil {
					errOnce.Do(func() {
						firstErr = fmt.Errorf("nodo: execute %s(seq %d): %w", tx.req.TxName, tx.req.Seq, err)
					})
				} else {
					ov.Flush(writer)
				}
				tx.out.Exec += time.Since(t0)
				tx.out.Done = time.Now()
				n.lt.Release(entry, func(nx *locktable.Entry) { readyCh <- nx })
				if remaining.Add(-1) == 0 {
					close(readyCh)
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if epoch%16 == 0 && epoch > 1 {
		n.st.GC(epoch - 1)
	}
	res.End = time.Now()
	return res, nil
}

// SEQ executes every transaction of the batch sequentially on a single
// thread, in the agreed order — the trivially correct deterministic
// baseline (§IV-B).
type SEQ struct {
	reg *engine.Registry
	st  *store.Store
}

var _ engine.Executor = (*SEQ)(nil)

// NewSEQ returns a sequential executor.
func NewSEQ(reg *engine.Registry, st *store.Store) *SEQ {
	return &SEQ{reg: reg, st: st}
}

// Name implements engine.Executor.
func (s *SEQ) Name() string { return "SEQ" }

// ExecuteBatch implements engine.Executor.
func (s *SEQ) ExecuteBatch(batch []engine.Request) (*engine.BatchResult, error) {
	start := time.Now()
	epoch := s.st.BeginEpoch()
	writer := s.st.WriterAt(epoch)
	res := &engine.BatchResult{Epoch: epoch, Start: start,
		Outcomes: make([]engine.TxOutcome, len(batch))}
	for i, req := range batch {
		prog, ok := s.reg.Programs[req.TxName]
		if !ok {
			return nil, fmt.Errorf("seq: unknown transaction %q", req.TxName)
		}
		class := s.reg.Classes[req.TxName]
		res.Outcomes[i] = engine.TxOutcome{Seq: req.Seq, TxName: req.TxName, Class: class}
		if class == profile.ClassROT {
			res.ROTs++
		} else {
			res.Updates++
		}
		t0 := time.Now()
		if _, err := lang.Run(prog, req.Inputs, writer); err != nil {
			return nil, fmt.Errorf("seq: execute %s(seq %d): %w", req.TxName, req.Seq, err)
		}
		res.Outcomes[i].Exec = time.Since(t0)
		res.Outcomes[i].Done = time.Now()
	}
	if epoch%16 == 0 && epoch > 1 {
		s.st.GC(epoch - 1)
	}
	res.End = time.Now()
	return res, nil
}

// Package baselines implements the systems Prognosticator is evaluated
// against in §IV-B of the paper: Calvin (client-side reconnaissance, strict
// in-order lock acquisition, client re-submission of failed dependent
// transactions), NODO (table-granularity conflict classes, no aborts) and
// SEQ (single-threaded in-order execution). All three share the same lock
// table, store and SE-derived transaction profiles as the Prognosticator
// engine, so measured differences isolate the scheduling design — exactly
// the methodology the paper uses.
package baselines

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"prognosticator/internal/engine"
	"prognosticator/internal/lang"
	"prognosticator/internal/locktable"
	"prognosticator/internal/profile"
	"prognosticator/internal/store"
)

// Calvin models the paper's Calvin-N baselines. Dependent transactions are
// prepared by the client N milliseconds before delivery; with a 10 ms batch
// interval that is Staleness = N/10 batch epochs. A transaction whose
// execution strays outside the key-set predicted by that stale
// reconnaissance aborts and is re-submitted by the client in the next batch.
type Calvin struct {
	reg     *engine.Registry
	st      *store.Store
	workers int
	// staleness in batch epochs between reconnaissance and delivery.
	staleness uint64
	lt        *locktable.Table
	carry     []*calvinTx
	label     string
}

var _ engine.Executor = (*Calvin)(nil)

type calvinTx struct {
	req    engine.Request
	prog   *lang.Program
	prof   *profile.Profile
	class  profile.Class
	ks     *profile.KeySet
	entry  *locktable.Entry
	aborts int
	out    *engine.TxOutcome
}

// NewCalvin returns a Calvin executor with the given reconnaissance
// staleness in batch epochs (the paper's Calvin-100/Calvin-200 use N ms /
// 10 ms batches = 10 and 20 epochs).
func NewCalvin(reg *engine.Registry, st *store.Store, workers int, stalenessEpochs uint64, label string) *Calvin {
	if workers <= 0 {
		workers = 4
	}
	return &Calvin{
		reg: reg, st: st, workers: workers,
		staleness: stalenessEpochs, lt: locktable.New(), label: label,
	}
}

// Name implements engine.Executor.
func (c *Calvin) Name() string { return c.label }

// Pending returns the number of carried-over transactions awaiting
// re-submission.
func (c *Calvin) Pending() int { return len(c.carry) }

// ExecuteBatch implements engine.Executor.
func (c *Calvin) ExecuteBatch(batch []engine.Request) (*engine.BatchResult, error) {
	start := time.Now()
	epoch := c.st.BeginEpoch()
	writer := c.st.WriterAt(epoch)

	// Reconnaissance snapshot: N epochs older than the fresh snapshot a
	// Prognosticator replica would use.
	prepEpoch := uint64(0)
	if epoch-1 > c.staleness {
		prepEpoch = epoch - 1 - c.staleness
	}
	snap := c.st.ViewAt(prepEpoch)

	// Carried-over transactions re-enter ahead of the new batch (they are
	// older in the total order).
	txs := make([]*calvinTx, 0, len(c.carry)+len(batch))
	txs = append(txs, c.carry...)
	c.carry = nil
	res := &engine.BatchResult{Epoch: epoch, Start: start,
		Outcomes: make([]engine.TxOutcome, 0, len(txs)+len(batch))}
	for _, req := range batch {
		prog, ok := c.reg.Programs[req.TxName]
		if !ok {
			return nil, fmt.Errorf("calvin: unknown transaction %q", req.TxName)
		}
		prof := c.reg.Profiles[req.TxName]
		tx := &calvinTx{req: req, prog: prog, prof: prof, class: c.reg.Classes[req.TxName]}
		txs = append(txs, tx)
	}
	// (Re-)bind outcome slots for everything processed in this batch.
	res.Outcomes = make([]engine.TxOutcome, len(txs))
	for i, tx := range txs {
		res.Outcomes[i] = engine.TxOutcome{Seq: tx.req.Seq, TxName: tx.req.TxName, Class: tx.class}
		tx.out = &res.Outcomes[i]
		if tx.class == profile.ClassROT {
			res.ROTs++
		} else {
			res.Updates++
		}
	}

	// Client-side preparation against the stale snapshot (the paper's
	// Calvin still benefits from the SE profiles: only pivots are read).
	for _, tx := range txs {
		t0 := time.Now()
		ks, err := tx.prof.Instantiate(tx.req.Inputs, snap)
		if err != nil {
			return nil, fmt.Errorf("calvin: instantiate %s(seq %d): %w", tx.req.TxName, tx.req.Seq, err)
		}
		tx.ks = ks
		tx.entry = &locktable.Entry{Seq: tx.req.Seq, Keys: locktable.BuildKeys(ks.Reads, ks.Writes), Payload: tx}
		tx.out.Prepare += time.Since(t0)
	}

	// Strict in-order lock acquisition by the single scheduler thread — no
	// DT-first reordering, and read-only transactions take (exclusive)
	// locks like everything else, Calvin's single-scheduler design.
	sort.Slice(txs, func(i, j int) bool { return txs[i].req.Seq < txs[j].req.Seq })
	c.lt.Reset()
	readyCh := make(chan *locktable.Entry, len(txs)+1)
	for _, tx := range txs {
		if c.lt.Enqueue(tx.entry) {
			readyCh <- tx.entry
		}
	}
	if len(txs) == 0 {
		close(readyCh)
	}

	var remaining atomic.Int32
	remaining.Store(int32(len(txs)))
	var failedMu sync.Mutex
	var failed []*calvinTx
	var errOnce sync.Once
	var firstErr error
	var wg sync.WaitGroup
	for w := 0; w < c.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for entry := range readyCh {
				tx := entry.Payload.(*calvinTx)
				ok, err := c.execute(tx, writer)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
				}
				if err == nil && !ok {
					tx.aborts++
					tx.out.Aborts++
					failedMu.Lock()
					failed = append(failed, tx)
					failedMu.Unlock()
				}
				c.lt.Release(entry, func(n *locktable.Entry) { readyCh <- n })
				if remaining.Add(-1) == 0 {
					close(readyCh)
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// Aborted transactions go back to the client, which re-runs
	// reconnaissance and re-submits them in a future batch.
	sort.Slice(failed, func(i, j int) bool { return failed[i].req.Seq < failed[j].req.Seq })
	for _, tx := range failed {
		tx.out.Pending = true
		c.carry = append(c.carry, tx)
	}

	res.FailRound = 0
	for i := range res.Outcomes {
		res.Aborts += res.Outcomes[i].Aborts
	}
	if epoch%16 == 0 && epoch > c.staleness+1 {
		c.st.GC(epoch - c.staleness - 1)
	}
	res.End = time.Now()
	return res, nil
}

// execute runs one transaction under its locks with OLLP validation: any
// access outside the reconnaissance key-set aborts it.
func (c *Calvin) execute(tx *calvinTx, writer *store.WriteView) (bool, error) {
	t0 := time.Now()
	defer func() { tx.out.Exec += time.Since(t0) }()
	ov := engine.NewOverlay(writer)
	ov.Guard(tx.ks.Reads, tx.ks.Writes)
	if _, err := lang.Run(tx.prog, tx.req.Inputs, ov); err != nil {
		return false, fmt.Errorf("calvin: execute %s(seq %d): %w", tx.req.TxName, tx.req.Seq, err)
	}
	if ov.Violated() {
		return false, nil
	}
	ov.Flush(writer)
	tx.out.Done = time.Now()
	tx.out.Pending = false
	return true, nil
}

// Package rubis implements the RUBiS bidding-site benchmark [5] on the
// stored-procedure IR. As in the paper's §IV-B, the evaluation focuses on
// the five update transactions, all of which are dependent transactions
// (DTs): every one inserts into at least one table whose next unique
// identifier is read from the store (a pivot). Two representative read-only
// transactions are included so mixed workloads exercise the ROT path.
package rubis

import (
	"fmt"
	"math/rand"

	"prognosticator/internal/lang"
	"prognosticator/internal/store"
	"prognosticator/internal/value"
)

// Table names.
const (
	TUsers    = "USERS"
	TItems    = "ITEMS"
	TBids     = "BIDS"
	TBuyNow   = "BUYNOW"
	TComments = "COMMENTS"
	TIDs      = "IDS" // singleton counters for unique id generation
)

// Config scales the benchmark.
type Config struct {
	Users int
	Items int
}

// DefaultConfig returns the default sizing.
func DefaultConfig() Config { return Config{Users: 1000, Items: 1000} }

// Schema returns the RUBiS schema.
func Schema() *lang.Schema {
	return lang.NewSchema(
		lang.TableSpec{Name: TUsers, KeyArity: 1},
		lang.TableSpec{Name: TItems, KeyArity: 1},
		lang.TableSpec{Name: TBids, KeyArity: 2},
		lang.TableSpec{Name: TBuyNow, KeyArity: 2},
		lang.TableSpec{Name: TComments, KeyArity: 2},
		lang.TableSpec{Name: TIDs, KeyArity: 1},
	)
}

// Populate loads the initial state at epoch 0.
func Populate(st *store.Store, cfg Config) {
	for u := 1; u <= cfg.Users; u++ {
		st.Put(0, value.NewKey(TUsers, value.Int(int64(u))), value.Record(map[string]value.Value{
			"name": value.Str(fmt.Sprintf("user-%d", u)), "rating": value.Int(0),
			"balance": value.Int(0), "nbComments": value.Int(0),
		}))
	}
	for i := 1; i <= cfg.Items; i++ {
		st.Put(0, value.NewKey(TItems, value.Int(int64(i))), value.Record(map[string]value.Value{
			"sellerId": value.Int(int64(1 + i%cfg.Users)), "price": value.Int(int64(10 + i%90)),
			"maxBid": value.Int(0), "nbBids": value.Int(0),
			"quantity": value.Int(10), "nbBuyNow": value.Int(0),
		}))
	}
	st.Put(0, value.NewKey(TIDs, value.Str("users")), value.Record(map[string]value.Value{
		"next": value.Int(int64(cfg.Users + 1)),
	}))
	st.Put(0, value.NewKey(TIDs, value.Str("items")), value.Record(map[string]value.Value{
		"next": value.Int(int64(cfg.Items + 1)),
	}))
}

// StoreBidProg: place a bid on an item. DT — the bid's slot index is the
// item's current nbBids, read from the store.
func StoreBidProg(cfg Config) *lang.Program {
	return &lang.Program{
		Name: "storeBid",
		Params: []lang.Param{
			lang.IntParam("itemId", 1, int64(cfg.Items)),
			lang.IntParam("userId", 1, int64(cfg.Users)),
			lang.IntParam("amount", 1, 10000),
		},
		Body: []lang.Stmt{
			lang.GetS("item", TItems, lang.P("itemId")),
			lang.Set("slot", lang.Fld(lang.L("item"), "nbBids")),
			lang.PutS(TBids, lang.Key(lang.P("itemId"), lang.L("slot")),
				lang.RecE(lang.F("userId", lang.P("userId")), lang.F("amount", lang.P("amount")))),
			lang.SetF("item", "nbBids", lang.Add(lang.L("slot"), lang.C(1))),
			// Value-only branch: does not affect the key-set.
			lang.IfS(lang.Gt(lang.P("amount"), lang.Fld(lang.L("item"), "maxBid")),
				lang.SetF("item", "maxBid", lang.P("amount")),
			),
			lang.PutS(TItems, lang.Key(lang.P("itemId")), lang.L("item")),
		},
	}
}

// StoreBuyNowProg: buy an item immediately. DT via the item's nbBuyNow slot.
func StoreBuyNowProg(cfg Config) *lang.Program {
	return &lang.Program{
		Name: "storeBuyNow",
		Params: []lang.Param{
			lang.IntParam("itemId", 1, int64(cfg.Items)),
			lang.IntParam("userId", 1, int64(cfg.Users)),
			lang.IntParam("qty", 1, 5),
		},
		Body: []lang.Stmt{
			lang.GetS("item", TItems, lang.P("itemId")),
			lang.Set("slot", lang.Fld(lang.L("item"), "nbBuyNow")),
			lang.PutS(TBuyNow, lang.Key(lang.P("itemId"), lang.L("slot")),
				lang.RecE(lang.F("userId", lang.P("userId")), lang.F("qty", lang.P("qty")))),
			lang.SetF("item", "nbBuyNow", lang.Add(lang.L("slot"), lang.C(1))),
			lang.SetF("item", "quantity", lang.Sub(lang.Fld(lang.L("item"), "quantity"), lang.P("qty"))),
			lang.PutS(TItems, lang.Key(lang.P("itemId")), lang.L("item")),
		},
	}
}

// StoreCommentProg: comment on a user. DT via the target user's nbComments
// slot; also updates the target's rating.
func StoreCommentProg(cfg Config) *lang.Program {
	return &lang.Program{
		Name: "storeComment",
		Params: []lang.Param{
			lang.IntParam("toId", 1, int64(cfg.Users)),
			lang.IntParam("fromId", 1, int64(cfg.Users)),
			lang.IntParam("rating", -5, 5),
		},
		Body: []lang.Stmt{
			lang.GetS("to", TUsers, lang.P("toId")),
			lang.Set("slot", lang.Fld(lang.L("to"), "nbComments")),
			lang.PutS(TComments, lang.Key(lang.P("toId"), lang.L("slot")),
				lang.RecE(lang.F("fromId", lang.P("fromId")), lang.F("rating", lang.P("rating")))),
			lang.SetF("to", "nbComments", lang.Add(lang.L("slot"), lang.C(1))),
			lang.SetF("to", "rating", lang.Add(lang.Fld(lang.L("to"), "rating"), lang.P("rating"))),
			lang.PutS(TUsers, lang.Key(lang.P("toId")), lang.L("to")),
		},
	}
}

// RegisterUserProg: create a user with a store-generated unique id. DT via
// the IDS counter — the insert key is a pivot.
func RegisterUserProg(cfg Config) *lang.Program {
	return &lang.Program{
		Name: "registerUser",
		Params: []lang.Param{
			lang.IntParam("rating", 0, 5),
		},
		Body: []lang.Stmt{
			lang.GetS("ids", TIDs, lang.Cs("users")),
			lang.Set("uid", lang.Fld(lang.L("ids"), "next")),
			lang.PutS(TUsers, lang.Key(lang.L("uid")),
				lang.RecE(
					lang.F("rating", lang.P("rating")),
					lang.F("balance", lang.C(0)),
					lang.F("nbComments", lang.C(0)),
				)),
			lang.SetF("ids", "next", lang.Add(lang.L("uid"), lang.C(1))),
			lang.PutS(TIDs, lang.Key(lang.Cs("users")), lang.L("ids")),
			lang.EmitS("userId", lang.L("uid")),
		},
	}
}

// RegisterItemProg: list an item for auction. DT via the IDS counter.
func RegisterItemProg(cfg Config) *lang.Program {
	return &lang.Program{
		Name: "registerItem",
		Params: []lang.Param{
			lang.IntParam("sellerId", 1, int64(cfg.Users)),
			lang.IntParam("price", 1, 10000),
			lang.IntParam("quantity", 1, 10),
		},
		Body: []lang.Stmt{
			lang.GetS("ids", TIDs, lang.Cs("items")),
			lang.Set("iid", lang.Fld(lang.L("ids"), "next")),
			lang.PutS(TItems, lang.Key(lang.L("iid")),
				lang.RecE(
					lang.F("sellerId", lang.P("sellerId")),
					lang.F("price", lang.P("price")),
					lang.F("quantity", lang.P("quantity")),
					lang.F("maxBid", lang.C(0)),
					lang.F("nbBids", lang.C(0)),
					lang.F("nbBuyNow", lang.C(0)),
				)),
			lang.SetF("ids", "next", lang.Add(lang.L("iid"), lang.C(1))),
			lang.PutS(TIDs, lang.Key(lang.Cs("items")), lang.L("ids")),
			lang.EmitS("itemId", lang.L("iid")),
		},
	}
}

// ViewItemProg: read-only item view.
func ViewItemProg(cfg Config) *lang.Program {
	return &lang.Program{
		Name:   "viewItem",
		Params: []lang.Param{lang.IntParam("itemId", 1, int64(cfg.Items))},
		Body: []lang.Stmt{
			lang.GetS("item", TItems, lang.P("itemId")),
			lang.EmitS("price", lang.Fld(lang.L("item"), "price")),
			lang.EmitS("maxBid", lang.Fld(lang.L("item"), "maxBid")),
			lang.EmitS("nbBids", lang.Fld(lang.L("item"), "nbBids")),
		},
	}
}

// ViewBidHistoryProg: read-only view of an item's most recent bids. The
// bid count is a pivot, so even this ROT has store-dependent reads — the
// per-slot guard gives the profile one branch per inspected slot, like
// TPC-C's delivery (ROT profiles are analysed but never instantiated, so
// the cost is offline-only).
func ViewBidHistoryProg(cfg Config) *lang.Program {
	return &lang.Program{
		Name:   "viewBidHistory",
		Params: []lang.Param{lang.IntParam("itemId", 1, int64(cfg.Items))},
		Body: []lang.Stmt{
			lang.GetS("item", TItems, lang.P("itemId")),
			lang.Set("nb", lang.Fld(lang.L("item"), "nbBids")),
			lang.Set("sum", lang.C(0)),
			lang.Set("count", lang.C(0)),
			lang.ForS("k", lang.C(1), lang.C(6),
				lang.Set("slot", lang.Sub(lang.L("nb"), lang.L("k"))),
				lang.IfS(lang.Ge(lang.L("slot"), lang.C(0)),
					lang.GetS("bid", TBids, lang.P("itemId"), lang.L("slot")),
					lang.Set("sum", lang.Add(lang.L("sum"), lang.Fld(lang.L("bid"), "amount"))),
					lang.Set("count", lang.Add(lang.L("count"), lang.C(1))),
				),
			),
			lang.EmitS("bids", lang.L("count")),
			lang.EmitS("totalAmount", lang.L("sum")),
		},
	}
}

// ViewUserProg: read-only user view.
func ViewUserProg(cfg Config) *lang.Program {
	return &lang.Program{
		Name:   "viewUser",
		Params: []lang.Param{lang.IntParam("userId", 1, int64(cfg.Users))},
		Body: []lang.Stmt{
			lang.GetS("u", TUsers, lang.P("userId")),
			lang.EmitS("rating", lang.Fld(lang.L("u"), "rating")),
			lang.EmitS("nbComments", lang.Fld(lang.L("u"), "nbComments")),
		},
	}
}

// UpdatePrograms returns the five update transactions (all DT), the
// workload of the paper's Fig. 4.
func UpdatePrograms(cfg Config) []*lang.Program {
	return []*lang.Program{
		StoreBidProg(cfg), StoreBuyNowProg(cfg), StoreCommentProg(cfg),
		RegisterUserProg(cfg), RegisterItemProg(cfg),
	}
}

// Programs returns all transactions including the read-only views.
func Programs(cfg Config) []*lang.Program {
	return append(UpdatePrograms(cfg), ViewItemProg(cfg), ViewUserProg(cfg), ViewBidHistoryProg(cfg))
}

// Generator produces the RUBiS-C update mix of the paper (§IV-B, [21]):
// 50% storeBid, the other four update transactions at 12.5% each.
type Generator struct {
	cfg Config
	r   *rand.Rand
}

// NewGenerator returns a deterministic generator.
func NewGenerator(cfg Config, seed int64) *Generator {
	return &Generator{cfg: cfg, r: rand.New(rand.NewSource(seed))}
}

// Next returns the next transaction in the RUBiS-C mix.
func (g *Generator) Next() (string, map[string]value.Value) {
	p := g.r.Intn(8)
	switch {
	case p < 4:
		return "storeBid", map[string]value.Value{
			"itemId": value.Int(1 + g.r.Int63n(int64(g.cfg.Items))),
			"userId": value.Int(1 + g.r.Int63n(int64(g.cfg.Users))),
			"amount": value.Int(1 + g.r.Int63n(10000)),
		}
	case p == 4:
		return "storeBuyNow", map[string]value.Value{
			"itemId": value.Int(1 + g.r.Int63n(int64(g.cfg.Items))),
			"userId": value.Int(1 + g.r.Int63n(int64(g.cfg.Users))),
			"qty":    value.Int(1 + g.r.Int63n(5)),
		}
	case p == 5:
		return "storeComment", map[string]value.Value{
			"toId":   value.Int(1 + g.r.Int63n(int64(g.cfg.Users))),
			"fromId": value.Int(1 + g.r.Int63n(int64(g.cfg.Users))),
			"rating": value.Int(g.r.Int63n(11) - 5),
		}
	case p == 6:
		return "registerUser", map[string]value.Value{
			"rating": value.Int(g.r.Int63n(6)),
		}
	default:
		return "registerItem", map[string]value.Value{
			"sellerId": value.Int(1 + g.r.Int63n(int64(g.cfg.Users))),
			"price":    value.Int(1 + g.r.Int63n(10000)),
			"quantity": value.Int(1 + g.r.Int63n(10)),
		}
	}
}

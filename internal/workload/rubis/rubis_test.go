package rubis

import (
	"testing"

	"prognosticator/internal/engine"
	"prognosticator/internal/profile"
	"prognosticator/internal/store"
	"prognosticator/internal/symexec"
	"prognosticator/internal/value"
)

func smallConfig() Config { return Config{Users: 50, Items: 50} }

func TestProgramsValidate(t *testing.T) {
	schema := Schema()
	for _, p := range Programs(smallConfig()) {
		if err := schema.Validate(p); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

// TestAllUpdateTransactionsAreDT reproduces the paper's observation: every
// RUBiS update transaction generates a unique identifier by consulting the
// store, so all five are dependent transactions.
func TestAllUpdateTransactionsAreDT(t *testing.T) {
	cfg := smallConfig()
	for _, p := range UpdatePrograms(cfg) {
		prof, err := symexec.AnalyzeOptimized(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if prof.Class() != profile.ClassDT {
			t.Errorf("%s class = %v, want DT", p.Name, prof.Class())
		}
		if prof.Stats.IndirectKeys < 1 {
			t.Errorf("%s has %d indirect keys, want >= 1", p.Name, prof.Stats.IndirectKeys)
		}
	}
}

func TestViewsAreROT(t *testing.T) {
	cfg := smallConfig()
	for _, p := range []interface{ Name() string }{} {
		_ = p
	}
	for _, prog := range []*struct {
		name string
	}{} {
		_ = prog
	}
	for _, prog := range Programs(cfg)[5:] {
		prof, err := symexec.AnalyzeOptimized(prog)
		if err != nil {
			t.Fatal(err)
		}
		if prof.Class() != profile.ClassROT {
			t.Errorf("%s class = %v, want ROT", prog.Name, prof.Class())
		}
	}
}

func registry(t testing.TB) *engine.Registry {
	t.Helper()
	reg, err := engine.NewRegistry(Schema(), Programs(smallConfig())...)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func populated() *store.Store {
	st := store.New()
	Populate(st, smallConfig())
	return st
}

func TestStoreBidEndToEnd(t *testing.T) {
	reg := registry(t)
	st := populated()
	e := engine.New(reg, st, engine.Config{Workers: 4})
	res, err := e.ExecuteBatch([]engine.Request{
		{Seq: 1, TxName: "storeBid", Inputs: map[string]value.Value{
			"itemId": value.Int(3), "userId": value.Int(5), "amount": value.Int(777),
		}},
		{Seq: 2, TxName: "storeBid", Inputs: map[string]value.Value{
			"itemId": value.Int(3), "userId": value.Int(6), "amount": value.Int(888),
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The second bid's slot depends on the first bid's nbBids increment:
	// it must abort once (stale pivot) and land in slot 1 on retry.
	if res.Aborts != 1 {
		t.Fatalf("aborts = %d, want 1 (conflicting bid slots)", res.Aborts)
	}
	item, _ := st.Get(st.Epoch(), value.NewKey(TItems, value.Int(3)))
	if f, _ := item.Field("nbBids"); f.MustInt() != 2 {
		t.Fatalf("nbBids = %v", item)
	}
	if f, _ := item.Field("maxBid"); f.MustInt() != 888 {
		t.Fatalf("maxBid = %v", item)
	}
	bid0, ok := st.Get(st.Epoch(), value.NewKey(TBids, value.Int(3), value.Int(0)))
	if !ok {
		t.Fatal("bid slot 0 missing")
	}
	if f, _ := bid0.Field("amount"); f.MustInt() != 777 {
		t.Fatalf("bid0 = %v", bid0)
	}
	if _, ok := st.Get(st.Epoch(), value.NewKey(TBids, value.Int(3), value.Int(1))); !ok {
		t.Fatal("bid slot 1 missing")
	}
}

// TestRegisterUserAssignsUniqueIDs also reproduces the paper's RUBiS abort
// pathology (§IV-B): N same-batch transactions contending on one id counter
// all predict the same slot; each round of MF re-execution commits exactly
// one, so MF suffers O(N^2) aborts while SF pays N and finishes the rest
// sequentially — the reason MQ-SF beats MQ-MF on RUBiS-C.
func TestRegisterUserAssignsUniqueIDs(t *testing.T) {
	const n = 10
	cases := map[engine.FailMode]int{
		engine.FailReenqueue:  n * (n - 1) / 2, // one commit per MF round
		engine.FailSequential: n - 1,           // one failed round, then sequential
	}
	for failMode, wantAborts := range cases {
		t.Run(failMode.String(), func(t *testing.T) {
			reg := registry(t)
			st := populated()
			e := engine.New(reg, st, engine.Config{Workers: 4, Fail: failMode})
			var batch []engine.Request
			for i := 0; i < n; i++ {
				batch = append(batch, engine.Request{Seq: uint64(i + 1), TxName: "registerUser",
					Inputs: map[string]value.Value{"rating": value.Int(int64(i % 6))}})
			}
			res, err := e.ExecuteBatch(batch)
			if err != nil {
				t.Fatal(err)
			}
			if res.Aborts != wantAborts {
				t.Fatalf("aborts = %d, want %d", res.Aborts, wantAborts)
			}
			seen := map[int64]bool{}
			for _, o := range res.Outcomes {
				id := o.Emitted["userId"].MustInt()
				if seen[id] {
					t.Fatalf("duplicate user id %d", id)
				}
				seen[id] = true
			}
			ids, _ := st.Get(st.Epoch(), value.NewKey(TIDs, value.Str("users")))
			if f, _ := ids.Field("next"); f.MustInt() != int64(smallConfig().Users+n+1) {
				t.Fatalf("ids.next = %v", ids)
			}
		})
	}
}

func TestDeterminismRUBiS(t *testing.T) {
	cfg := smallConfig()
	reg := registry(t)
	makeBatches := func() [][]engine.Request {
		gen := NewGenerator(cfg, 31)
		var out [][]engine.Request
		seq := uint64(0)
		for b := 0; b < 5; b++ {
			var batch []engine.Request
			for i := 0; i < 40; i++ {
				seq++
				tx, inputs := gen.Next()
				batch = append(batch, engine.Request{Seq: seq, TxName: tx, Inputs: inputs})
			}
			out = append(out, batch)
		}
		return out
	}
	batches := makeBatches()
	var first uint64
	firstAborts := -1
	for _, workers := range []int{1, 4, 8} {
		st := populated()
		e := engine.New(reg, st, engine.Config{Workers: workers})
		aborts := 0
		for _, b := range batches {
			res, err := e.ExecuteBatch(b)
			if err != nil {
				t.Fatal(err)
			}
			aborts += res.Aborts
		}
		h := st.StateHash(st.Epoch())
		if firstAborts < 0 {
			first, firstAborts = h, aborts
			continue
		}
		if h != first {
			t.Fatalf("RUBiS state diverged with %d workers", workers)
		}
		if aborts != firstAborts {
			t.Fatalf("RUBiS aborts diverged: %d vs %d", aborts, firstAborts)
		}
	}
}

func TestGeneratorMix(t *testing.T) {
	gen := NewGenerator(smallConfig(), 3)
	counts := map[string]int{}
	const n = 16000
	for i := 0; i < n; i++ {
		tx, _ := gen.Next()
		counts[tx]++
	}
	if f := float64(counts["storeBid"]) / n; f < 0.46 || f > 0.54 {
		t.Fatalf("storeBid fraction = %v, want ~0.5", f)
	}
	for _, tx := range []string{"storeBuyNow", "storeComment", "registerUser", "registerItem"} {
		if f := float64(counts[tx]) / n; f < 0.09 || f > 0.16 {
			t.Fatalf("%s fraction = %v, want ~0.125", tx, f)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1 := NewGenerator(smallConfig(), 9)
	g2 := NewGenerator(smallConfig(), 9)
	for i := 0; i < 100; i++ {
		tx1, in1 := g1.Next()
		tx2, in2 := g2.Next()
		if tx1 != tx2 || len(in1) != len(in2) {
			t.Fatalf("diverged at %d", i)
		}
		for k, v := range in1 {
			if !in2[k].Equal(v) {
				t.Fatalf("input %s diverged at %d", k, i)
			}
		}
	}
}

func TestPopulateCounters(t *testing.T) {
	st := populated()
	cfg := smallConfig()
	ids, ok := st.Get(0, value.NewKey(TIDs, value.Str("users")))
	if !ok {
		t.Fatal("users counter missing")
	}
	if f, _ := ids.Field("next"); f.MustInt() != int64(cfg.Users+1) {
		t.Fatalf("users.next = %v", ids)
	}
	if st.Len() != cfg.Users+cfg.Items+2 {
		t.Fatalf("populated keys = %d", st.Len())
	}
}

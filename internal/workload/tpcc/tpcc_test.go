package tpcc

import (
	"testing"

	"prognosticator/internal/engine"
	"prognosticator/internal/profile"
	"prognosticator/internal/store"
	"prognosticator/internal/symexec"
	"prognosticator/internal/value"
)

func smallConfig(warehouses int) Config {
	return Config{
		Warehouses: warehouses, Items: 50, CustomersPerDistrict: 20,
		OrderLinesMin: 5, OrderLinesMax: 15,
	}
}

func TestProgramsValidate(t *testing.T) {
	cfg := smallConfig(2)
	schema := Schema()
	for _, p := range Programs(cfg) {
		if err := schema.Validate(p); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestClassificationMatchesPaper(t *testing.T) {
	// §IV: TPC-C consists of two ROT, two DT and one IT.
	cfg := smallConfig(2)
	reg, err := engine.NewRegistry(Schema(), Programs(cfg)...)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]profile.Class{
		"newOrder":    profile.ClassDT,
		"payment":     profile.ClassIT,
		"delivery":    profile.ClassDT,
		"orderStatus": profile.ClassROT,
		"stockLevel":  profile.ClassROT,
	}
	for tx, wantClass := range want {
		got, err := reg.Class(tx)
		if err != nil {
			t.Fatal(err)
		}
		if got != wantClass {
			t.Errorf("class(%s) = %v, want %v", tx, got, wantClass)
		}
	}
}

func TestNewOrderProfileShape(t *testing.T) {
	cfg := smallConfig(2)
	prof, err := symexec.Analyze(NewOrderProg(cfg), symexec.Options{
		UseTaint: true, Prune: true, SkipUnoptimized: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// One leaf per possible olCnt value (5..15): the loop bound is the
	// only RWS-relevant branch; the quantity and remote-warehouse branches
	// must not fork.
	if got, want := prof.NumLeaves(), cfg.OrderLinesMax-cfg.OrderLinesMin+1; got != want {
		t.Fatalf("leaves = %d, want %d", got, want)
	}
	// Exactly one pivot: the district's nextOId.
	if prof.Stats.IndirectKeys != 1 {
		t.Fatalf("indirect keys = %d, want 1", prof.Stats.IndirectKeys)
	}
	if prof.PivotFreeTraversal() != true {
		t.Fatal("newOrder's tree traversal must not need pivots (only olCnt)")
	}
}

func TestNewOrderFixedItersCollapses(t *testing.T) {
	// Table I's per-iteration rows: with olCnt fixed, the optimized
	// analysis explores a single state while the unoptimized one explodes
	// as 2^olCnt.
	cfg := smallConfig(2)
	// iters=5: the unoptimized run (2 forks per iteration) fits in the
	// comparison budget and must report exactly 2*(2^10-1)+1 states.
	prof, err := symexec.Analyze(NewOrderProg(cfg), symexec.Options{
		UseTaint: true, Prune: true,
		FixedInputs: map[string]value.Value{"olCnt": value.Int(5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if prof.NumLeaves() != 1 {
		t.Fatalf("leaves = %d, want 1", prof.NumLeaves())
	}
	if prof.Stats.StatesExplored != 1 {
		t.Fatalf("optimized states = %d, want 1", prof.Stats.StatesExplored)
	}
	if want := 2*(1<<10-1) + 1; prof.Stats.StatesUnopt != want {
		t.Fatalf("unoptimized states = %d, want %d", prof.Stats.StatesUnopt, want)
	}
	// iters=10: 2^20 unoptimized states exceed the comparison budget; the
	// run is truncated (the "paper extrapolates" case) but the analytic
	// total still reports the blow-up.
	prof10, err := symexec.Analyze(NewOrderProg(cfg), symexec.Options{
		UseTaint: true, Prune: true,
		FixedInputs: map[string]value.Value{"olCnt": value.Int(10)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !prof10.Stats.UnoptTruncated {
		t.Fatal("unoptimized run should be budget-truncated")
	}
	if prof10.Stats.StatesUnopt < symexec.UnoptComparisonBudget {
		t.Fatalf("unoptimized states = %d, want >= budget", prof10.Stats.StatesUnopt)
	}
	if prof10.Stats.TotalStates < float64(1<<20) {
		t.Fatalf("total states = %v, want >= 2^20", prof10.Stats.TotalStates)
	}
}

func TestDeliveryProfileShape(t *testing.T) {
	// The paper's Table I: delivery has 1024 unique key-sets (one binary
	// "undelivered order exists" decision per district).
	cfg := smallConfig(1)
	prof, err := symexec.Analyze(DeliveryProg(cfg), symexec.Options{
		UseTaint: true, Prune: true, SkipUnoptimized: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := prof.NumLeaves(); got != 1024 {
		t.Fatalf("delivery leaves = %d, want 1024", got)
	}
	if got := prof.Stats.UniqueKeySets; got != 1024 {
		t.Fatalf("delivery unique key-sets = %d, want 1024", got)
	}
	if got := prof.Stats.StatesExplored; got != 2047 {
		t.Fatalf("delivery states = %d, want 2047", got)
	}
	if prof.Class() != profile.ClassDT {
		t.Fatalf("delivery class = %v", prof.Class())
	}
	if prof.PivotFreeTraversal() {
		t.Fatal("delivery traversal depends on pivots")
	}
}

func TestPaymentProfileShape(t *testing.T) {
	cfg := smallConfig(2)
	prof, err := symexec.Analyze(PaymentProg(cfg), symexec.Options{
		UseTaint: true, Prune: true, SkipUnoptimized: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if prof.NumLeaves() != 1 || prof.Stats.IndirectKeys != 0 {
		t.Fatalf("payment profile: leaves=%d indirect=%d", prof.NumLeaves(), prof.Stats.IndirectKeys)
	}
}

func populateStore(cfg Config) *store.Store {
	st := store.New()
	Populate(st, cfg)
	return st
}

func TestPopulateCounts(t *testing.T) {
	cfg := smallConfig(2)
	st := populateStore(cfg)
	want := cfg.Items + // items
		cfg.Warehouses*(1+cfg.Items+Districts*(1+2*cfg.CustomersPerDistrict))
	if got := st.Len(); got != want {
		t.Fatalf("populated keys = %d, want %d", got, want)
	}
}

func TestEndToEndMixExecutes(t *testing.T) {
	cfg := smallConfig(2)
	reg, err := engine.NewRegistry(Schema(), Programs(cfg)...)
	if err != nil {
		t.Fatal(err)
	}
	st := populateStore(cfg)
	e := engine.New(reg, st, engine.Config{Workers: 4})
	gen := NewGenerator(cfg, 1)
	seq := uint64(0)
	totalNewOrders := 0
	for b := 0; b < 5; b++ {
		var batch []engine.Request
		for i := 0; i < 60; i++ {
			seq++
			tx, inputs := gen.Next()
			if tx == "newOrder" {
				totalNewOrders++
			}
			batch = append(batch, engine.Request{Seq: seq, TxName: tx, Inputs: inputs})
		}
		res, err := e.ExecuteBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range res.Outcomes {
			if o.Done.IsZero() {
				t.Fatalf("uncommitted outcome %+v", o)
			}
		}
	}
	// Every committed newOrder advanced some district's nextOId; the total
	// of (nextOId-1) across districts must equal the committed newOrders.
	var orders int64
	for w := 1; w <= cfg.Warehouses; w++ {
		for d := 1; d <= Districts; d++ {
			rec, _ := st.Get(st.Epoch(), value.NewKey(TDistrict, value.Int(int64(w)), value.Int(int64(d))))
			f, _ := rec.Field("nextOId")
			orders += f.MustInt() - 1
		}
	}
	if orders != int64(totalNewOrders) {
		t.Fatalf("district counters show %d orders, want %d", orders, totalNewOrders)
	}
}

// TestDeterminismTPCC: the flagship workload must satisfy the replica
// determinism property across worker counts and variants.
func TestDeterminismTPCC(t *testing.T) {
	cfg := smallConfig(1) // high contention provokes aborts
	reg, err := engine.NewRegistry(Schema(), Programs(cfg)...)
	if err != nil {
		t.Fatal(err)
	}
	makeBatches := func() [][]engine.Request {
		gen := NewGenerator(cfg, 99)
		var out [][]engine.Request
		seq := uint64(0)
		for b := 0; b < 4; b++ {
			var batch []engine.Request
			for i := 0; i < 50; i++ {
				seq++
				tx, inputs := gen.Next()
				batch = append(batch, engine.Request{Seq: seq, TxName: tx, Inputs: inputs})
			}
			out = append(out, batch)
		}
		return out
	}
	batches := makeBatches()
	var first uint64
	firstAborts := -1
	for _, workers := range []int{1, 4, 8} {
		st := populateStore(cfg)
		e := engine.New(reg, st, engine.Config{Workers: workers})
		aborts := 0
		for _, b := range batches {
			res, err := e.ExecuteBatch(b)
			if err != nil {
				t.Fatal(err)
			}
			aborts += res.Aborts
		}
		h := st.StateHash(st.Epoch())
		if firstAborts < 0 {
			first, firstAborts = h, aborts
			continue
		}
		if h != first {
			t.Fatalf("TPC-C state diverged with %d workers", workers)
		}
		if aborts != firstAborts {
			t.Fatalf("TPC-C aborts diverged: %d vs %d", aborts, firstAborts)
		}
	}
}

func TestDeliveryActuallyDelivers(t *testing.T) {
	cfg := smallConfig(1)
	reg, err := engine.NewRegistry(Schema(), Programs(cfg)...)
	if err != nil {
		t.Fatal(err)
	}
	st := populateStore(cfg)
	e := engine.New(reg, st, engine.Config{Workers: 2})
	gen := NewGenerator(cfg, 7)
	// Place one order in district 1.
	no := gen.NewOrderInputs()
	no["wId"] = value.Int(1)
	no["dId"] = value.Int(1)
	if _, err := e.ExecuteBatch([]engine.Request{{Seq: 1, TxName: "newOrder", Inputs: no}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(st.Epoch(), value.NewKey(TNewOrder, value.Int(1), value.Int(1), value.Int(1))); !ok {
		t.Fatal("new-order entry missing after newOrder")
	}
	// Deliver.
	res, err := e.ExecuteBatch([]engine.Request{{Seq: 2, TxName: "delivery",
		Inputs: map[string]value.Value{"wId": value.Int(1), "carrierId": value.Int(3)}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborts != 0 {
		t.Fatalf("delivery aborted %d times", res.Aborts)
	}
	if _, ok := st.Get(st.Epoch(), value.NewKey(TNewOrder, value.Int(1), value.Int(1), value.Int(1))); ok {
		t.Fatal("new-order entry not removed by delivery")
	}
	order, _ := st.Get(st.Epoch(), value.NewKey(TOrder, value.Int(1), value.Int(1), value.Int(1)))
	if f, _ := order.Field("carrierId"); f.MustInt() != 3 {
		t.Fatalf("order carrier = %v", order)
	}
	dist, _ := st.Get(st.Epoch(), value.NewKey(TDistrict, value.Int(1), value.Int(1)))
	if f, _ := dist.Field("nextDeliveryOId"); f.MustInt() != 2 {
		t.Fatalf("nextDeliveryOId = %v", dist)
	}
}

// TestNewOrderThenDeliveryConflictAborts: a delivery prepared against the
// pre-batch snapshot while a same-batch newOrder changes nextOId on the same
// district must abort and re-execute (the paper's DT abort path on TPC-C).
func TestNewOrderThenDeliveryConflictAborts(t *testing.T) {
	cfg := smallConfig(1)
	reg, err := engine.NewRegistry(Schema(), Programs(cfg)...)
	if err != nil {
		t.Fatal(err)
	}
	st := populateStore(cfg)
	e := engine.New(reg, st, engine.Config{Workers: 4})
	gen := NewGenerator(cfg, 13)
	no := gen.NewOrderInputs()
	no["wId"] = value.Int(1)
	no["dId"] = value.Int(1)
	res, err := e.ExecuteBatch([]engine.Request{
		{Seq: 1, TxName: "newOrder", Inputs: no},
		{Seq: 2, TxName: "delivery", Inputs: map[string]value.Value{
			"wId": value.Int(1), "carrierId": value.Int(1)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both are DTs on district 1: the delivery (prepared with nextOId=1,
	// i.e. nothing to deliver) sees nextOId=2 after the newOrder commits,
	// fails validation, and on retry delivers the fresh order.
	if res.Aborts < 1 {
		t.Fatalf("aborts = %d, want >= 1", res.Aborts)
	}
	if _, ok := st.Get(st.Epoch(), value.NewKey(TNewOrder, value.Int(1), value.Int(1), value.Int(1))); ok {
		t.Fatal("retried delivery should have consumed the new order")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	cfg := smallConfig(2)
	g1 := NewGenerator(cfg, 5)
	g2 := NewGenerator(cfg, 5)
	for i := 0; i < 200; i++ {
		tx1, in1 := g1.Next()
		tx2, in2 := g2.Next()
		if tx1 != tx2 {
			t.Fatalf("tx diverged at %d: %s vs %s", i, tx1, tx2)
		}
		for k, v := range in1 {
			if !in2[k].Equal(v) {
				t.Fatalf("input %s diverged at %d", k, i)
			}
		}
	}
}

func TestGeneratorMixProportions(t *testing.T) {
	cfg := smallConfig(2)
	gen := NewGenerator(cfg, 17)
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		tx, _ := gen.Next()
		counts[tx]++
	}
	frac := func(tx string) float64 { return float64(counts[tx]) / n }
	if f := frac("newOrder"); f < 0.41 || f > 0.47 {
		t.Fatalf("newOrder fraction = %v", f)
	}
	if f := frac("payment"); f < 0.41 || f > 0.47 {
		t.Fatalf("payment fraction = %v", f)
	}
	for _, tx := range []string{"delivery", "orderStatus", "stockLevel"} {
		if f := frac(tx); f < 0.025 || f > 0.055 {
			t.Fatalf("%s fraction = %v", tx, f)
		}
	}
}

func TestGeneratorInputsWithinDomains(t *testing.T) {
	cfg := smallConfig(3)
	gen := NewGenerator(cfg, 23)
	progs := map[string]map[string][2]int64{}
	for _, p := range Programs(cfg) {
		doms := map[string][2]int64{}
		for _, prm := range p.Params {
			if prm.Kind.String() == "int" {
				doms[prm.Name] = [2]int64{prm.Lo, prm.Hi}
			}
		}
		progs[p.Name] = doms
	}
	for i := 0; i < 2000; i++ {
		tx, inputs := gen.Next()
		for name, dom := range progs[tx] {
			v, ok := inputs[name]
			if !ok {
				t.Fatalf("%s: missing input %s", tx, name)
			}
			if iv := v.MustInt(); iv < dom[0] || iv > dom[1] {
				t.Fatalf("%s: input %s=%d outside [%d,%d]", tx, name, iv, dom[0], dom[1])
			}
		}
	}
}

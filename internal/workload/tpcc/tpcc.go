// Package tpcc implements the TPC-C benchmark [36] on the stored-procedure
// IR: schema, population, the five transactions, and the standard-mix input
// generator. The number of warehouses is the contention knob used throughout
// the paper's §IV (100 = low, 10 = medium, 1 = high contention).
//
// Simplifications relative to the full TPC-C specification, chosen to
// preserve the paper-relevant structure (transaction classes, pivot
// structure, conflict footprints) while fitting the key/value GET/PUT model
// the paper itself assumes:
//   - customers are selected by id (no last-name secondary index);
//   - the delivery transaction tracks the oldest undelivered order with a
//     per-district counter instead of scanning the NEW-ORDER index, and
//     folds per-order-line delivery dates into the order record — it keeps
//     the per-district "is there an undelivered order" branch that gives
//     the paper its 1024 key-sets and the pivot-heavy profile;
//   - stock-level returns quantities for the most recent orders' first
//     lines; threshold counting happens on emitted values (value-only, so
//     it does not affect the RWS).
package tpcc

import (
	"fmt"
	"math/rand"

	"prognosticator/internal/lang"
	"prognosticator/internal/store"
	"prognosticator/internal/value"
)

// Table names.
const (
	TWarehouse = "WAREHOUSE"
	TDistrict  = "DISTRICT"
	TCustomer  = "CUSTOMER"
	TStock     = "STOCK"
	TItem      = "ITEM"
	TOrder     = "ORDER"
	TNewOrder  = "NEWORDER"
	TOrderLine = "ORDERLINE"
	THistory   = "HISTORY"
)

// Config scales the benchmark. Districts per warehouse is fixed at 10 by
// the specification; the remaining sizes are scaled down from the spec's
// 100k items / 3k customers so populated stores stay laptop-sized — the
// contention structure (the paper's axis) depends on warehouses, not on
// catalog size.
type Config struct {
	Warehouses           int
	Items                int
	CustomersPerDistrict int
	// OrderLinesMin/Max bound olCnt (spec: 5..15).
	OrderLinesMin, OrderLinesMax int
}

// DefaultConfig returns the scaled-down default sizing.
func DefaultConfig(warehouses int) Config {
	return Config{
		Warehouses:           warehouses,
		Items:                1000,
		CustomersPerDistrict: 100,
		OrderLinesMin:        5,
		OrderLinesMax:        15,
	}
}

// Districts per warehouse per the TPC-C specification.
const Districts = 10

// Schema returns the TPC-C schema.
func Schema() *lang.Schema {
	return lang.NewSchema(
		lang.TableSpec{Name: TWarehouse, KeyArity: 1},
		lang.TableSpec{Name: TDistrict, KeyArity: 2},
		lang.TableSpec{Name: TCustomer, KeyArity: 3},
		lang.TableSpec{Name: TStock, KeyArity: 2},
		lang.TableSpec{Name: TItem, KeyArity: 1},
		lang.TableSpec{Name: TOrder, KeyArity: 3},
		lang.TableSpec{Name: TNewOrder, KeyArity: 3},
		lang.TableSpec{Name: TOrderLine, KeyArity: 4},
		lang.TableSpec{Name: THistory, KeyArity: 3},
	)
}

// Populate loads the initial state at epoch 0.
func Populate(st *store.Store, cfg Config) {
	rec := func(fields map[string]value.Value) value.Value { return value.Record(fields) }
	for i := 1; i <= cfg.Items; i++ {
		st.Put(0, value.NewKey(TItem, value.Int(int64(i))), rec(map[string]value.Value{
			"price": value.Int(int64(100 + i%9900)),
			"name":  value.Str(fmt.Sprintf("item-%d", i)),
		}))
	}
	for w := 1; w <= cfg.Warehouses; w++ {
		wi := int64(w)
		st.Put(0, value.NewKey(TWarehouse, value.Int(wi)), rec(map[string]value.Value{
			"ytd": value.Int(0), "tax": value.Int(10),
		}))
		for i := 1; i <= cfg.Items; i++ {
			st.Put(0, value.NewKey(TStock, value.Int(wi), value.Int(int64(i))), rec(map[string]value.Value{
				"quantity": value.Int(50), "ytd": value.Int(0),
				"orderCnt": value.Int(0), "remoteCnt": value.Int(0),
			}))
		}
		for d := 1; d <= Districts; d++ {
			di := int64(d)
			st.Put(0, value.NewKey(TDistrict, value.Int(wi), value.Int(di)), rec(map[string]value.Value{
				"nextOId": value.Int(1), "nextDeliveryOId": value.Int(1),
				"ytd": value.Int(0), "tax": value.Int(5),
			}))
			for c := 1; c <= cfg.CustomersPerDistrict; c++ {
				st.Put(0, value.NewKey(TCustomer, value.Int(wi), value.Int(di), value.Int(int64(c))),
					rec(map[string]value.Value{
						"balance": value.Int(-1000), "ytdPayment": value.Int(1000),
						"paymentCnt": value.Int(1), "deliveryCnt": value.Int(0),
						"discount": value.Int(5),
					}))
				st.Put(0, value.NewKey(THistory, value.Int(wi), value.Int(di), value.Int(int64(c))),
					rec(map[string]value.Value{"amount": value.Int(1000), "count": value.Int(1)}))
			}
		}
	}
}

// NewOrderProg builds the newOrder transaction (DT: the order id comes from
// the district's nextOId pivot). It mirrors the paper's Algorithm 2,
// extended with the spec's item/stock/customer legs and the order/order-line
// inserts.
func NewOrderProg(cfg Config) *lang.Program {
	maxOL := cfg.OrderLinesMax
	return &lang.Program{
		Name: "newOrder",
		Params: []lang.Param{
			lang.IntParam("wId", 1, int64(cfg.Warehouses)),
			lang.IntParam("dId", 1, Districts),
			lang.IntParam("cId", 1, int64(cfg.CustomersPerDistrict)),
			lang.IntParam("olCnt", int64(cfg.OrderLinesMin), int64(cfg.OrderLinesMax)),
			lang.ListParam("olIds", lang.IntParam("", 1, int64(cfg.Items)), maxOL, "olCnt"),
			lang.ListParam("olSupplyW", lang.IntParam("", 1, int64(cfg.Warehouses)), maxOL, "olCnt"),
			lang.ListParam("olQty", lang.IntParam("", 1, 10), maxOL, "olCnt"),
		},
		Body: []lang.Stmt{
			// District: read nextOId (the pivot), bump it.
			lang.GetS("dist", TDistrict, lang.P("wId"), lang.P("dId")),
			lang.Set("oId", lang.Fld(lang.L("dist"), "nextOId")),
			lang.SetF("dist", "nextOId", lang.Add(lang.L("oId"), lang.C(1))),
			lang.PutS(TDistrict, lang.Key(lang.P("wId"), lang.P("dId")), lang.L("dist")),
			// Customer discount (value-only read).
			lang.GetS("cust", TCustomer, lang.P("wId"), lang.P("dId"), lang.P("cId")),
			lang.Set("discount", lang.Fld(lang.L("cust"), "discount")),
			// Order lines.
			lang.Set("total", lang.C(0)),
			lang.Set("allLocal", lang.C(1)),
			lang.ForS("i", lang.C(0), lang.P("olCnt"),
				lang.Set("iid", lang.Idx(lang.P("olIds"), lang.L("i"))),
				lang.Set("sw", lang.Idx(lang.P("olSupplyW"), lang.L("i"))),
				lang.Set("qty", lang.Idx(lang.P("olQty"), lang.L("i"))),
				lang.GetS("item", TItem, lang.L("iid")),
				lang.GetS("stock", TStock, lang.L("sw"), lang.L("iid")),
				// Algorithm 2's branch: only the written VALUE depends on
				// it, so symbolic execution never forks here.
				lang.IfElse(lang.Gt(lang.Fld(lang.L("stock"), "quantity"), lang.Add(lang.L("qty"), lang.C(10))),
					[]lang.Stmt{lang.SetF("stock", "quantity",
						lang.Sub(lang.Fld(lang.L("stock"), "quantity"), lang.L("qty")))},
					[]lang.Stmt{lang.SetF("stock", "quantity",
						lang.Add(lang.Sub(lang.Fld(lang.L("stock"), "quantity"), lang.L("qty")), lang.C(91)))},
				),
				lang.SetF("stock", "ytd", lang.Add(lang.Fld(lang.L("stock"), "ytd"), lang.L("qty"))),
				lang.SetF("stock", "orderCnt", lang.Add(lang.Fld(lang.L("stock"), "orderCnt"), lang.C(1))),
				lang.IfS(lang.Ne(lang.L("sw"), lang.P("wId")),
					lang.SetF("stock", "remoteCnt", lang.Add(lang.Fld(lang.L("stock"), "remoteCnt"), lang.C(1))),
					lang.Set("allLocal", lang.C(0)),
				),
				lang.PutS(TStock, lang.Key(lang.L("sw"), lang.L("iid")), lang.L("stock")),
				lang.Set("amount", lang.Mul(lang.L("qty"), lang.Fld(lang.L("item"), "price"))),
				lang.Set("total", lang.Add(lang.L("total"), lang.L("amount"))),
				// Order line keyed by the pivot order id.
				lang.PutS(TOrderLine,
					lang.Key(lang.P("wId"), lang.P("dId"), lang.L("oId"), lang.L("i")),
					lang.RecE(
						lang.F("iId", lang.L("iid")),
						lang.F("qty", lang.L("qty")),
						lang.F("amount", lang.L("amount")),
						lang.F("deliveryD", lang.C(0)),
					)),
			),
			// Order + new-order entries (indirect keys via the pivot).
			lang.PutS(TOrder, lang.Key(lang.P("wId"), lang.P("dId"), lang.L("oId")),
				lang.RecE(
					lang.F("cId", lang.P("cId")),
					lang.F("olCnt", lang.P("olCnt")),
					lang.F("carrierId", lang.C(0)),
					lang.F("allLocal", lang.L("allLocal")),
					lang.F("total", lang.L("total")),
				)),
			lang.PutS(TNewOrder, lang.Key(lang.P("wId"), lang.P("dId"), lang.L("oId")),
				lang.RecE(lang.F("pending", lang.C(1)))),
			lang.EmitS("orderId", lang.L("oId")),
			lang.EmitS("total", lang.L("total")),
		},
	}
}

// PaymentProg builds the payment transaction (IT: every key derives from
// inputs). The 15% remote-customer case of the spec changes which inputs
// are drawn, not the key structure.
func PaymentProg(cfg Config) *lang.Program {
	return &lang.Program{
		Name: "payment",
		Params: []lang.Param{
			lang.IntParam("wId", 1, int64(cfg.Warehouses)),
			lang.IntParam("dId", 1, Districts),
			lang.IntParam("cWId", 1, int64(cfg.Warehouses)),
			lang.IntParam("cDId", 1, Districts),
			lang.IntParam("cId", 1, int64(cfg.CustomersPerDistrict)),
			lang.IntParam("amount", 1, 5000),
		},
		Body: []lang.Stmt{
			lang.GetS("wh", TWarehouse, lang.P("wId")),
			lang.SetF("wh", "ytd", lang.Add(lang.Fld(lang.L("wh"), "ytd"), lang.P("amount"))),
			lang.PutS(TWarehouse, lang.Key(lang.P("wId")), lang.L("wh")),
			lang.GetS("dist", TDistrict, lang.P("wId"), lang.P("dId")),
			lang.SetF("dist", "ytd", lang.Add(lang.Fld(lang.L("dist"), "ytd"), lang.P("amount"))),
			lang.PutS(TDistrict, lang.Key(lang.P("wId"), lang.P("dId")), lang.L("dist")),
			lang.GetS("cust", TCustomer, lang.P("cWId"), lang.P("cDId"), lang.P("cId")),
			lang.SetF("cust", "balance", lang.Sub(lang.Fld(lang.L("cust"), "balance"), lang.P("amount"))),
			lang.SetF("cust", "ytdPayment", lang.Add(lang.Fld(lang.L("cust"), "ytdPayment"), lang.P("amount"))),
			lang.SetF("cust", "paymentCnt", lang.Add(lang.Fld(lang.L("cust"), "paymentCnt"), lang.C(1))),
			lang.PutS(TCustomer, lang.Key(lang.P("cWId"), lang.P("cDId"), lang.P("cId")), lang.L("cust")),
			lang.GetS("hist", THistory, lang.P("cWId"), lang.P("cDId"), lang.P("cId")),
			lang.SetF("hist", "amount", lang.Add(lang.Fld(lang.L("hist"), "amount"), lang.P("amount"))),
			lang.SetF("hist", "count", lang.Add(lang.Fld(lang.L("hist"), "count"), lang.C(1))),
			lang.PutS(THistory, lang.Key(lang.P("cWId"), lang.P("cDId"), lang.P("cId")), lang.L("hist")),
		},
	}
}

// DeliveryProg builds the delivery transaction (DT): for each of the 10
// districts it checks whether an undelivered order exists (a branch on two
// pivots — this is what makes delivery's profile 2^10 key-sets, as in the
// paper's Table I) and, if so, delivers the oldest one.
func DeliveryProg(cfg Config) *lang.Program {
	return &lang.Program{
		Name: "delivery",
		Params: []lang.Param{
			lang.IntParam("wId", 1, int64(cfg.Warehouses)),
			lang.IntParam("carrierId", 1, 10),
		},
		Body: []lang.Stmt{
			lang.ForS("d", lang.C(1), lang.C(Districts+1),
				lang.GetS("dist", TDistrict, lang.P("wId"), lang.L("d")),
				lang.Set("delOId", lang.Fld(lang.L("dist"), "nextDeliveryOId")),
				// Undelivered order exists iff delOId < nextOId. Both sides
				// are pivots: this branch decides which keys are written.
				lang.IfS(lang.Lt(lang.L("delOId"), lang.Fld(lang.L("dist"), "nextOId")),
					lang.GetS("order", TOrder, lang.P("wId"), lang.L("d"), lang.L("delOId")),
					lang.Set("cId", lang.Fld(lang.L("order"), "cId")),
					lang.SetF("order", "carrierId", lang.P("carrierId")),
					lang.SetF("order", "deliveryD", lang.C(1)),
					lang.PutS(TOrder, lang.Key(lang.P("wId"), lang.L("d"), lang.L("delOId")), lang.L("order")),
					lang.DelS(TNewOrder, lang.P("wId"), lang.L("d"), lang.L("delOId")),
					lang.GetS("cust", TCustomer, lang.P("wId"), lang.L("d"), lang.L("cId")),
					lang.SetF("cust", "balance",
						lang.Add(lang.Fld(lang.L("cust"), "balance"), lang.Fld(lang.L("order"), "total"))),
					lang.SetF("cust", "deliveryCnt",
						lang.Add(lang.Fld(lang.L("cust"), "deliveryCnt"), lang.C(1))),
					lang.PutS(TCustomer, lang.Key(lang.P("wId"), lang.L("d"), lang.L("cId")), lang.L("cust")),
					lang.SetF("dist", "nextDeliveryOId", lang.Add(lang.L("delOId"), lang.C(1))),
					lang.PutS(TDistrict, lang.Key(lang.P("wId"), lang.L("d")), lang.L("dist")),
				),
			),
		},
	}
}

// OrderStatusProg builds the order-status read-only transaction: customer
// standing plus the district's most recent order.
func OrderStatusProg(cfg Config) *lang.Program {
	return &lang.Program{
		Name: "orderStatus",
		Params: []lang.Param{
			lang.IntParam("wId", 1, int64(cfg.Warehouses)),
			lang.IntParam("dId", 1, Districts),
			lang.IntParam("cId", 1, int64(cfg.CustomersPerDistrict)),
		},
		Body: []lang.Stmt{
			lang.GetS("cust", TCustomer, lang.P("wId"), lang.P("dId"), lang.P("cId")),
			lang.EmitS("balance", lang.Fld(lang.L("cust"), "balance")),
			lang.GetS("dist", TDistrict, lang.P("wId"), lang.P("dId")),
			lang.Set("lastOId", lang.Sub(lang.Fld(lang.L("dist"), "nextOId"), lang.C(1))),
			lang.IfS(lang.Ge(lang.L("lastOId"), lang.C(1)),
				lang.GetS("order", TOrder, lang.P("wId"), lang.P("dId"), lang.L("lastOId")),
				lang.EmitS("carrierId", lang.Fld(lang.L("order"), "carrierId")),
				lang.EmitS("total", lang.Fld(lang.L("order"), "total")),
			),
		},
	}
}

// StockLevelProg builds the stock-level read-only transaction: quantities of
// the stock behind the first line of each of the district's last 10 orders;
// the threshold count is computed on emitted (value-only) data, so the
// branch never forks the analysis.
func StockLevelProg(cfg Config) *lang.Program {
	return &lang.Program{
		Name: "stockLevel",
		Params: []lang.Param{
			lang.IntParam("wId", 1, int64(cfg.Warehouses)),
			lang.IntParam("dId", 1, Districts),
			lang.IntParam("threshold", 10, 20),
		},
		Body: []lang.Stmt{
			lang.GetS("dist", TDistrict, lang.P("wId"), lang.P("dId")),
			lang.Set("nextOId", lang.Fld(lang.L("dist"), "nextOId")),
			lang.Set("low", lang.C(0)),
			lang.ForS("k", lang.C(1), lang.C(11),
				lang.Set("oId", lang.Sub(lang.L("nextOId"), lang.L("k"))),
				lang.IfS(lang.Ge(lang.L("oId"), lang.C(1)),
					lang.GetS("ol", TOrderLine, lang.P("wId"), lang.P("dId"), lang.L("oId"), lang.C(0)),
					lang.GetS("stock", TStock, lang.P("wId"), lang.Fld(lang.L("ol"), "iId")),
					lang.IfS(lang.Lt(lang.Fld(lang.L("stock"), "quantity"), lang.P("threshold")),
						lang.Set("low", lang.Add(lang.L("low"), lang.C(1))),
					),
				),
			),
			lang.EmitS("lowStock", lang.L("low")),
		},
	}
}

// Programs returns all five TPC-C transactions for the given scale.
func Programs(cfg Config) []*lang.Program {
	return []*lang.Program{
		NewOrderProg(cfg), PaymentProg(cfg), DeliveryProg(cfg),
		OrderStatusProg(cfg), StockLevelProg(cfg),
	}
}

// UpdatePrograms returns the update transactions (Table I's rows).
func UpdatePrograms(cfg Config) []*lang.Program {
	return []*lang.Program{NewOrderProg(cfg), PaymentProg(cfg), DeliveryProg(cfg)}
}

// Generator produces the standard TPC-C transaction mix: 44% newOrder, 44%
// payment, 4% delivery, 4% orderStatus, 4% stockLevel (the paper's §IV-B
// mix), with NURand-skewed item and customer selection.
type Generator struct {
	cfg Config
	r   *rand.Rand
	// NURand C constants, fixed per generator as the spec requires.
	cItem, cCust int64
}

// NewGenerator returns a deterministic generator for the given seed.
func NewGenerator(cfg Config, seed int64) *Generator {
	r := rand.New(rand.NewSource(seed))
	return &Generator{cfg: cfg, r: r, cItem: r.Int63n(256), cCust: r.Int63n(1024)}
}

// nuRand implements the spec's non-uniform random distribution.
func (g *Generator) nuRand(a, c, x, y int64) int64 {
	return (((g.r.Int63n(a+1) | (x + g.r.Int63n(y-x+1))) + c) % (y - x + 1)) + x
}

func (g *Generator) itemID() int64 {
	return g.nuRand(8191, g.cItem, 1, int64(g.cfg.Items))
}

func (g *Generator) custID() int64 {
	return g.nuRand(1023, g.cCust, 1, int64(g.cfg.CustomersPerDistrict))
}

func (g *Generator) warehouse() int64 { return 1 + g.r.Int63n(int64(g.cfg.Warehouses)) }

// Next returns the next transaction name and inputs in the standard mix.
func (g *Generator) Next() (string, map[string]value.Value) {
	p := g.r.Intn(100)
	switch {
	case p < 44:
		return "newOrder", g.NewOrderInputs()
	case p < 88:
		return "payment", g.PaymentInputs()
	case p < 92:
		return "delivery", g.DeliveryInputs()
	case p < 96:
		return "orderStatus", g.OrderStatusInputs()
	default:
		return "stockLevel", g.StockLevelInputs()
	}
}

// NewOrderInputs draws spec-shaped newOrder inputs (1% of order lines come
// from a remote warehouse when there is more than one).
func (g *Generator) NewOrderInputs() map[string]value.Value {
	w := g.warehouse()
	olCnt := int64(g.cfg.OrderLinesMin) + g.r.Int63n(int64(g.cfg.OrderLinesMax-g.cfg.OrderLinesMin+1))
	ids := make([]value.Value, g.cfg.OrderLinesMax)
	sup := make([]value.Value, g.cfg.OrderLinesMax)
	qty := make([]value.Value, g.cfg.OrderLinesMax)
	for i := 0; i < g.cfg.OrderLinesMax; i++ {
		ids[i] = value.Int(g.itemID())
		sw := w
		if g.cfg.Warehouses > 1 && g.r.Intn(100) == 0 {
			for sw == w {
				sw = g.warehouse()
			}
		}
		sup[i] = value.Int(sw)
		qty[i] = value.Int(1 + g.r.Int63n(10))
	}
	return map[string]value.Value{
		"wId": value.Int(w), "dId": value.Int(1 + g.r.Int63n(Districts)),
		"cId": value.Int(g.custID()), "olCnt": value.Int(olCnt),
		"olIds": value.List(ids...), "olSupplyW": value.List(sup...),
		"olQty": value.List(qty...),
	}
}

// PaymentInputs draws spec-shaped payment inputs (15% remote customers when
// there is more than one warehouse).
func (g *Generator) PaymentInputs() map[string]value.Value {
	w := g.warehouse()
	cw := w
	if g.cfg.Warehouses > 1 && g.r.Intn(100) < 15 {
		for cw == w {
			cw = g.warehouse()
		}
	}
	return map[string]value.Value{
		"wId": value.Int(w), "dId": value.Int(1 + g.r.Int63n(Districts)),
		"cWId": value.Int(cw), "cDId": value.Int(1 + g.r.Int63n(Districts)),
		"cId": value.Int(g.custID()), "amount": value.Int(1 + g.r.Int63n(5000)),
	}
}

// DeliveryInputs draws delivery inputs.
func (g *Generator) DeliveryInputs() map[string]value.Value {
	return map[string]value.Value{
		"wId": value.Int(g.warehouse()), "carrierId": value.Int(1 + g.r.Int63n(10)),
	}
}

// OrderStatusInputs draws order-status inputs.
func (g *Generator) OrderStatusInputs() map[string]value.Value {
	return map[string]value.Value{
		"wId": value.Int(g.warehouse()), "dId": value.Int(1 + g.r.Int63n(Districts)),
		"cId": value.Int(g.custID()),
	}
}

// StockLevelInputs draws stock-level inputs.
func (g *Generator) StockLevelInputs() map[string]value.Value {
	return map[string]value.Value{
		"wId": value.Int(g.warehouse()), "dId": value.Int(1 + g.r.Int63n(Districts)),
		"threshold": value.Int(10 + g.r.Int63n(11)),
	}
}
